# Tier-1 verification: everything a PR must keep green.
# `make verify` = vet + build + race-enabled tests (see also scripts/verify.sh).

GO ?= go

.PHONY: verify build test test-race vet lint chaos storm torture qos elastic blackout grayfail fuzz bench bench-campaign bench-hotpath

verify: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Static analysis beyond go vet. staticcheck is not vendored; CI installs a
# pinned version (see .github/workflows/ci.yml). Locally the target runs it
# when present and explains itself when not, so `make lint` never fails on
# a machine without network access.
STATICCHECK ?= staticcheck
lint:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# Overload-protection suite, run twice under the race detector: the storm
# scenario (12 IONs, one slowed into saturation, concurrent burst +
# well-behaved app) plus the bounded-admission, shed, throttle, and
# overload-steering tests across every layer.
storm:
	$(GO) test -race -count=2 -timeout 300s \
		-run 'Storm|Shed|Busy|Overload|Throttle|Gate|Saturat|QueueCap|Watermark|CloseDuring|PushClose|Inflight|ConnCap|HalfOpen' \
		./internal/livestack ./internal/agios ./internal/ion \
		./internal/rpc ./internal/fwd ./internal/health ./internal/arbiter \
		./internal/faultnet

# Failure-tolerance suite, run twice under the race detector: chaos tests
# that kill or wedge daemons mid-workload, fault injectors, breaker and
# deadline behaviour, and health-driven re-arbitration.
chaos:
	$(GO) test -race -count=2 -timeout 180s \
		-run 'Chaos|Fault|Fail|Breaker|Deadline|Retr|Hang|Delay|Mark|Probe|Refuse|Reset|Drop' \
		./internal/livestack ./internal/faultnet ./internal/faultfs \
		./internal/rpc ./internal/health ./internal/arbiter ./internal/fwd

# Data-integrity campaign, run twice under the race detector: a seeded
# nemesis (kills, warm restarts, wire corruption, delays, resets, mid-frame
# cuts) against a live 12-ION stack with wire checksums and exactly-once
# write dedup on, checked by a byte-level oracle. Reproduce a failing
# schedule with TORTURE_SEED=<n> make torture.
torture:
	$(GO) test -race -count=2 -timeout 300s -run 'TestTorture' \
		./internal/torture

# Multi-tenant QoS suite, run twice under the race detector: the
# noisy-neighbor scenario (12 IONs, one guaranteed tenant with an SLO vs a
# scavenger at 10× traffic) plus the token-bucket, WFQ bounded-inversion/
# no-starvation, weighted-arbitration, and wire-priority tests across every
# layer the qos subsystem touches.
qos:
	$(GO) test -race -count=2 -timeout 300s \
		-run 'QoS|Bucket|WFQ|Inversion|Starvation|Weight|Priority|ParseConfig|ParseBytes|ClassValidation|WriteFrameMatchesReferenceEncoder|ReadMessageRejects' \
		./internal/qos ./internal/livestack ./internal/agios ./internal/fwd \
		./internal/rpc ./internal/policy ./internal/arbiter ./cmd/gkfwd

# Elastic-pool suite, run twice under the race detector: the breathing
# chaos scenario (pool 2→12→2 under burst load with a nemesis killing
# IONs mid-drain and failing provisioning) plus the graceful-drain,
# dynamic-membership, scaler-hysteresis, provisioning-backoff/breaker,
# connection-release, and scaler-flag tests across every layer the
# elastic subsystem touches.
# -p 1 keeps the packages sequential: the chaos scenario's demand signal
# is real queue depth under injected service latency, and sharing the
# machine with five other race-instrumented packages starves the writers
# enough to distort it.
elastic:
	$(GO) test -race -count=2 -timeout 300s -p 1 \
		-run 'Elastic|Drain|Scale|Provision|Hysteresis|Forecast|MarkIdempotency|AddION|RemoveION|ReleaseConn|WaitForAllocation|AddStartsPessimistic|RemoveStopsProbing|LoadReportsSampled|Scaler|MarginalAdvisor' \
		./internal/elastic ./internal/livestack ./internal/arbiter \
		./internal/health ./internal/fwd ./cmd/gkfwd

# Control-plane recovery suite, run twice under the race detector: the
# blackout scenario (12-ION journaled stack, control plane SIGKILLed and
# warm-restarted from the write-ahead journal while writers keep going,
# compounded by an ION death during a blackout) plus the journal
# replay/compaction, arbiter Recover/reconciliation, epoch-fencing, and
# stale-epoch remap-and-retry tests across every layer the journal
# subsystem touches. Reproduce a failing schedule with
# BLACKOUT_SEED=<n> make blackout.
blackout:
	$(GO) test -race -count=2 -timeout 300s \
		-run 'Blackout|Journal|Recover|Snapshot|Replay|Fence|Epoch|Stale|WriteAhead|Torn|Segment' \
		./internal/journal ./internal/arbiter ./internal/ion \
		./internal/fwd ./internal/rpc ./internal/livestack ./cmd/gkfwd

# Gray-failure suite, run twice under the race detector: the fail-slow
# scenario (12 IONs, one ramping to ~50× latency mid-workload; detection
# before the SLO breach, quarantine + re-steer, hedge wins with a
# per-byte exactly-once oracle, bounded p99, full recovery) plus the
# latency-sketch, fail-slow scorer, quarantine arbitration, hedged
# request, slow/asymmetric fault-plan, and stale-sample tests across
# every layer the gray-failure defense touches. Reproduce a failing run
# with GRAYFAIL_SEED=<n> make grayfail.
grayfail:
	$(GO) test -race -count=2 -timeout 300s \
		-run 'GrayFailure|Sketch|Degrad|Quarantine|Hedge|Slow|LoadAges|Stale|IdleRecovery' \
		./internal/livestack ./internal/latency ./internal/health \
		./internal/arbiter ./internal/fwd ./internal/faultnet \
		./internal/elastic ./cmd/gkfwd

# Wire-protocol fuzzers (frame decoder and encode/decode round-trip).
# FUZZTIME bounds each fuzzer; CI runs a short smoke, leave it running
# longer locally to dig.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run - -fuzz FuzzReadMessage -fuzztime $(FUZZTIME) ./internal/rpc
	$(GO) test -run - -fuzz FuzzMessageRoundTrip -fuzztime $(FUZZTIME) ./internal/rpc
	$(GO) test -run - -fuzz FuzzJournalReplay -fuzztime $(FUZZTIME) ./internal/journal

# Telemetry overhead on the forwarding hot path (instrumented vs tracing
# off); writes BENCH_telemetry.json. Tunables: PAIRS, BENCHTIME.
bench:
	sh scripts/bench_telemetry.sh

# The parallel campaign engine's scaling record (serial baseline vs worker
# pool); results are byte-identical at every worker count.
bench-campaign:
	$(GO) test -run - -bench BenchmarkCampaignWorkers -benchtime 1x .

# Forwarded-write hot path after the zero-allocation rewrite: end-to-end
# ns/op vs the committed seed baseline, plus the rpc wire path's
# allocs/op budget (the target FAILS if the budget is exceeded); writes
# BENCH_hotpath.json. Tunables: PAIRS, BENCHTIME, ALLOC_BUDGET.
bench-hotpath:
	sh scripts/bench_hotpath.sh
