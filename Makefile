# Tier-1 verification: everything a PR must keep green.
# `make verify` = vet + build + race-enabled tests (see also scripts/verify.sh).

GO ?= go

.PHONY: verify build test test-race vet chaos bench bench-campaign

verify: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Failure-tolerance suite, run twice under the race detector: chaos tests
# that kill or wedge daemons mid-workload, fault injectors, breaker and
# deadline behaviour, and health-driven re-arbitration.
chaos:
	$(GO) test -race -count=2 -timeout 180s \
		-run 'Chaos|Fault|Fail|Breaker|Deadline|Retr|Hang|Delay|Mark|Probe|Refuse|Reset|Drop' \
		./internal/livestack ./internal/faultnet ./internal/faultfs \
		./internal/rpc ./internal/health ./internal/arbiter ./internal/fwd

# Telemetry overhead on the forwarding hot path (instrumented vs tracing
# off); writes BENCH_telemetry.json. Tunables: PAIRS, BENCHTIME.
bench:
	sh scripts/bench_telemetry.sh

# The parallel campaign engine's scaling record (serial baseline vs worker
# pool); results are byte-identical at every worker count.
bench-campaign:
	$(GO) test -run - -bench BenchmarkCampaignWorkers -benchtime 1x .
