package repro

import (
	"fmt"
	"testing"

	"repro/internal/agios"
	"repro/internal/experiments"
	"repro/internal/forge"
	"repro/internal/fwd"
	"repro/internal/ion"
	"repro/internal/mckp"
	"repro/internal/perfmodel"
	"repro/internal/pfs"
	"repro/internal/policy"
	"repro/internal/units"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Aggregate
// outcomes are reported as benchmark metrics so `go test -bench` output
// doubles as the reproduction record.

// benchSets is the campaign size used by the Figure 2/3 benchmarks. The
// paper uses 10,000 sets; medians are stable well below that, and the full
// size can be reproduced with `go test -bench Figure2 -benchtime 1x
// -timeout 0` after editing this constant.
const benchSets = 2000

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ExpTable1()
		if len(r.Rows) != 4 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ExpFigure1()
		if len(r.Labels) != 8 {
			b.Fatal("figure 1 incomplete")
		}
	}
}

func BenchmarkOptimumDistribution(b *testing.B) {
	var r experiments.OptimumDistributionResult
	for i := 0; i < b.N; i++ {
		r = experiments.ExpOptimumDistribution()
	}
	for _, k := range []int{0, 1, 2, 4, 8} {
		b.ReportMetric(r.SharePct[k], fmt.Sprintf("pct-best-at-%d-IONs", k))
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFigure2(benchSets, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GBps["MCKP"][56], "MCKP-GBps-at-56")
		b.ReportMetric(r.GBps["ORACLE"][56], "ORACLE-GBps-at-56")
		b.ReportMetric(r.GBps["STATIC"][56], "STATIC-GBps-at-56")
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpFigure3(benchSets, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PeakMedian, "peak-median-ratio")
		b.ReportMetric(float64(r.PeakPool), "peak-pool-IONs")
		b.ReportMetric(r.OverallMax, "max-ratio")
	}
}

func BenchmarkPolicyHeadlines(b *testing.B) {
	fig2, err := experiments.ExpFigure2(benchSets, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var h experiments.PolicyHeadlinesResult
	for i := 0; i < b.N; i++ {
		h = experiments.ExpPolicyHeadlines(fig2)
	}
	b.ReportMetric(h.OneVsZeroMedianSlowdownPct, "ONE-vs-ZERO-slowdown-pct")
	b.ReportMetric(h.OracleVsZeroMedianBoostPct, "ORACLE-vs-ZERO-boost-pct")
}

// BenchmarkCampaignWorkers measures the parallel campaign engine behind
// Figures 2–3 at several worker counts. workers=1 is the serial baseline;
// the speedup of workers=N over workers=1 is the engine's scaling record
// (results are byte-identical at every worker count, see
// forge.TestParallelCampaignMatchesSerial).
func BenchmarkCampaignWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := forge.DefaultConfig()
			cfg.Sets = 400
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := forge.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cfg.Sets)*float64(b.N)/b.Elapsed().Seconds(), "sets/s")
		})
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ExpFigure5()
		if len(r.Apps) != 9 {
			b.Fatal("figure 5 incomplete")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	var r experiments.Figure6Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.ExpFigure6()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MCKPOverStatic12, "MCKP-over-STATIC-at-12")
	b.ReportMetric(r.MCKPOverProcess12, "MCKP-over-PROCESS-at-12")
	b.ReportMetric(float64(r.OracleMatchPool), "oracle-match-pool")
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExpTable4()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 6 {
			b.Fatal("table 4 incomplete")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExpFigure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExpFigure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	var r experiments.Figure9Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.ExpFigure9()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MCKPOverStatic, "MCKP-over-STATIC")
	b.ReportMetric(r.AggregateMBps["MCKP"]/1000, "MCKP-aggregate-GBps")
	b.ReportMetric(r.AggregateMBps["STATIC"]/1000, "STATIC-aggregate-GBps")
}

// --- Solver cost (§5.3: 399 µs live case, 2.7 s at 512 jobs × 256 IONs) --

func BenchmarkMCKPSolverLiveCase(b *testing.B) {
	specs := perfmodel.SectionFiveTwoApps()
	apps := make([]policy.Application, 0, len(specs))
	for _, s := range specs {
		apps = append(apps, policy.FromAppSpec(s.Label, s))
	}
	p := policy.MCKP{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Allocate(apps, 12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMCKPSolverPaperScale(b *testing.B) {
	prob := mckp.Problem{Capacity: 256}
	for i := 0; i < 512; i++ {
		c := mckp.Class{Label: fmt.Sprintf("job%03d", i)}
		for j, w := range []int{0, 1, 2, 4, 8} {
			c.Items = append(c.Items, mckp.Item{Weight: w, Value: float64((i*31+j*7)%5000) + 1})
		}
		prob.Classes = append(prob.Classes, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mckp.SolveDP(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCKPSolverAblation compares the exact DP against the greedy
// heuristic and branch-and-bound on the live case (DESIGN.md ablation).
func BenchmarkMCKPSolverAblation(b *testing.B) {
	specs := perfmodel.SectionFiveTwoApps()
	prob := mckp.Problem{Capacity: 12}
	for _, s := range specs {
		c := mckp.Class{Label: s.Label}
		for _, pt := range s.Curve.Points() {
			c.Items = append(c.Items, mckp.Item{Weight: pt.IONs, Value: pt.Bandwidth.MBps()})
		}
		prob.Classes = append(prob.Classes, c)
	}
	for name, solve := range map[string]func(mckp.Problem) (mckp.Solution, error){
		"dp": mckp.SolveDP, "greedy": mckp.SolveGreedy, "branchbound": mckp.SolveBranchBound,
	} {
		b.Run(name, func(b *testing.B) {
			var sol mckp.Solution
			var err error
			for i := 0; i < b.N; i++ {
				sol, err = solve(prob)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sol.Value, "aggregate-MBps")
		})
	}
}

// --- Forwarding stack micro-benchmarks ------------------------------------

func BenchmarkPFSWrite1MiB(b *testing.B) {
	store := pfs.NewStore(pfs.Config{Discard: true})
	buf := make([]byte, units.MiB)
	b.SetBytes(units.MiB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Write("/bench", int64(i)*units.MiB, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAGIOSSchedulers(b *testing.B) {
	for _, name := range []string{"FIFO", "SJF", "AIOLI", "TWINS", "HBRR"} {
		b.Run(name, func(b *testing.B) {
			sched, err := agios.NewByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				sched.Push(&agios.Request{
					Path:   "/f",
					Offset: int64(i%64) * 4096,
					Size:   4096,
					Op:     agios.OpWrite,
					Seq:    uint64(i),
				})
				if i%8 == 7 {
					for {
						if _, ok := sched.Pop(); !ok {
							break
						}
					}
				}
			}
		})
	}
}

// BenchmarkForwardedWrite measures end-to-end client→ION→PFS throughput
// over loopback TCP with 512 KiB chunks.
func BenchmarkForwardedWrite(b *testing.B) {
	store := pfs.NewStore(pfs.Config{Discard: true})
	daemons := make([]*ion.Daemon, 2)
	addrs := make([]string, 2)
	for i := range daemons {
		daemons[i] = ion.New(ion.Config{ID: fmt.Sprintf("ion%d", i)}, store)
		addr, err := daemons[i].Start("")
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = addr
		defer daemons[i].Close()
	}
	client, err := fwd.NewClient(fwd.Config{AppID: "bench", Direct: store})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	client.SetIONs(addrs)

	buf := make([]byte, units.MiB)
	b.SetBytes(units.MiB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Write("/bench", int64(i)*units.MiB, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDynamic quantifies the value of dynamic reallocation
// (the paper's differentiator against DFRA's fixed-at-start sizing) and of
// the future-work idle-node recruiting.
func BenchmarkAblationDynamic(b *testing.B) {
	var r experiments.AblationDynamicResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.ExpAblationDynamic()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Advantage, "dynamic-over-fixed")
	b.ReportMetric(r.RecruitedMBps/r.NoForwardingMBps, "recruit-over-direct")
}

// BenchmarkMCKPReduction measures the dominance-preprocessing speedup on
// the paper-scale instance (512 jobs × 256 I/O nodes).
func BenchmarkMCKPReduction(b *testing.B) {
	prob := mckp.Problem{Capacity: 256}
	for i := 0; i < 512; i++ {
		c := mckp.Class{Label: fmt.Sprintf("job%03d", i)}
		for j, w := range []int{0, 1, 2, 4, 8} {
			c.Items = append(c.Items, mckp.Item{Weight: w, Value: float64((i*31+j*7)%5000) + 1})
		}
		prob.Classes = append(prob.Classes, c)
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mckp.SolveDP(prob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, red := mckp.Reduce(prob)
			sol, err := mckp.SolveDP(r)
			if err != nil {
				b.Fatal(err)
			}
			_ = red.MapChoice(sol)
		}
	})
}

// BenchmarkQueueRobustness runs the §5.3 comparison over a population of
// random queues instead of the paper's single selected one.
func BenchmarkQueueRobustness(b *testing.B) {
	var r experiments.QueueRobustnessResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.ExpQueueRobustness(50)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Summary.Min, "min-ratio")
	b.ReportMetric(r.Summary.Median, "median-ratio")
	b.ReportMetric(r.Summary.Max, "max-ratio")
}
