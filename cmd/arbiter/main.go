// Command arbiter solves one I/O-node allocation problem and prints (or
// writes) the decision — the standalone policy-solver role of the paper's
// §5.3, suitable for invocation from a job manager.
//
// Usage:
//
//	arbiter -policy MCKP -ions 12                     # the §5.2 six apps
//	arbiter -policy STATIC -ions 12 -apps BT-C,BT-D   # a subset
//	arbiter -policy MCKP -ions 12 -mapping map.json   # publish a mapping file
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/mapping"
	"repro/internal/perfmodel"
	"repro/internal/policy"
)

func main() {
	polName := flag.String("policy", "MCKP", "ZERO|ONE|STATIC|SIZE|PROCESS|ORACLE|MCKP")
	ions := flag.Int("ions", 12, "available I/O nodes")
	appsFlag := flag.String("apps", "", "comma-separated Table 3 labels (default: the §5.2 six)")
	mapFile := flag.String("mapping", "", "write the decision as a mapping file (ION names ion00..)")
	explain := flag.Bool("explain", false, "annotate each application with its penalty vs running alone")
	flag.Parse()

	pol, err := policyByName(*polName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbiter:", err)
		os.Exit(1)
	}

	var apps []policy.Application
	if *appsFlag == "" {
		for _, s := range perfmodel.SectionFiveTwoApps() {
			apps = append(apps, policy.FromAppSpec(s.Label, s))
		}
	} else {
		for _, label := range strings.Split(*appsFlag, ",") {
			spec, err := perfmodel.AppByLabel(strings.TrimSpace(label))
			if err != nil {
				fmt.Fprintln(os.Stderr, "arbiter:", err)
				os.Exit(1)
			}
			apps = append(apps, policy.FromAppSpec(spec.Label, spec))
		}
	}

	alloc, err := pol.Allocate(apps, *ions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbiter:", err)
		os.Exit(1)
	}
	total, err := policy.SumBandwidth(apps, alloc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbiter:", err)
		os.Exit(1)
	}

	fmt.Printf("policy %s, %d I/O nodes available:\n", pol.Name(), *ions)
	ids := make([]string, 0, len(alloc))
	for id := range alloc {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		var bw string
		for _, a := range apps {
			if a.ID == id {
				v, _ := a.Curve.At(alloc[id])
				bw = v.String()
			}
		}
		fmt.Printf("  %-10s %d I/O nodes  (%s)\n", id, alloc[id], bw)
	}
	fmt.Printf("allocated %d of %d; aggregate %s\n", alloc.Total(), *ions, total)

	if *explain {
		exps, err := policy.Explain(apps, alloc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arbiter:", err)
			os.Exit(1)
		}
		fmt.Println("\npenalty vs running alone:")
		for _, e := range exps {
			note := ""
			if e.Sacrificed {
				note = "  <- sacrificed for the global optimum"
			}
			fmt.Printf("  %-10s %6.1f%% of alone-best (%.1f of %.1f MB/s at best %d IONs)%s\n",
				e.ID, e.PctOfBest, e.MBps, e.BestMBps, e.BestIONs, note)
		}
	}

	if *mapFile != "" {
		m := mapping.Map{Version: 1, IONs: map[string][]string{}}
		next := 0
		for _, id := range ids {
			var addrs []string
			for i := 0; i < alloc[id]; i++ {
				addrs = append(addrs, fmt.Sprintf("ion%02d", next))
				next++
			}
			m.IONs[id] = addrs
		}
		if err := mapping.WriteFile(*mapFile, m); err != nil {
			fmt.Fprintln(os.Stderr, "arbiter:", err)
			os.Exit(1)
		}
		fmt.Printf("mapping written to %s\n", *mapFile)
	}
}

func policyByName(name string) (policy.Policy, error) {
	switch strings.ToUpper(name) {
	case "ZERO":
		return policy.Zero{}, nil
	case "ONE":
		return policy.One{}, nil
	case "STATIC":
		return policy.Static{}, nil
	case "SIZE":
		return policy.Proportional{}, nil
	case "PROCESS":
		return policy.Proportional{ByProcesses: true}, nil
	case "ORACLE":
		return policy.Oracle{}, nil
	case "MCKP":
		return policy.MCKP{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
