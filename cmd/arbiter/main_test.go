package main

import "testing"

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"ZERO", "ONE", "STATIC", "SIZE", "PROCESS", "ORACLE", "MCKP", "mckp", "static"} {
		p, err := policyByName(name)
		if err != nil {
			t.Errorf("policyByName(%q): %v", name, err)
			continue
		}
		if p == nil {
			t.Errorf("policyByName(%q) returned nil", name)
		}
	}
	if _, err := policyByName("BOGUS"); err == nil {
		t.Error("unknown policy should fail")
	}
}
