// Command calibrate prints the performance model's calibration report: the
// modeled Figure 1 curves and the distribution of optimal I/O-node counts
// over the 189-scenario survey, side by side with the paper's targets.
package main

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/perfmodel"
)

func main() {
	m := perfmodel.Default()
	dist := perfmodel.OptimumDistribution(m.SurveyCurves())
	paper := map[int]float64{0: 33, 1: 6, 2: 44, 4: 8, 8: 9}
	fmt.Println("optimum-ION distribution over the 189-scenario survey:")
	fmt.Printf("  %-10s %10s %10s\n", "I/O nodes", "model %", "paper %")
	for _, k := range []int{0, 1, 2, 4, 8} {
		fmt.Printf("  %-10d %10.1f %10.1f\n", k, dist[k]*100, paper[k])
	}
	fmt.Println("\nFigure 1 patterns (modeled MB/s at 0/1/2/4/8 I/O nodes):")
	labels := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	for _, label := range labels {
		p := pattern.Figure1Patterns()[label]
		c := m.CurveFor(p, 8, true)
		fmt.Printf("  %s %-52s %s\n", label, p, c)
	}
}
