// Command experiments regenerates the paper's tables and figures as text
// tables.
//
// Usage:
//
//	experiments [-sets N] [-workers N] [table1|figure1|distribution|headlines|
//	             figure2|figure3|figure5|figure6|table4|figure7|figure8|
//	             figure9|timing|all]
//
// With no arguments, everything except the slow campaign experiments runs;
// "all" includes those too. -sets controls the Figure 2/3 campaign size
// (default 2000; the paper uses 10000). -workers bounds the campaign worker
// pool (default: all cores); every worker count produces identical tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	sets := flag.Int("sets", 2000, "application sets for the Figure 2/3 campaigns (paper: 10000)")
	workers := flag.Int("workers", 0, "campaign worker goroutines (0 = all cores); results are identical for any value")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"table1", "figure1", "distribution", "figure5",
			"figure6", "table4", "figure7", "figure8", "figure9", "timing", "ablation", "robustness"}
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"table1", "figure1", "distribution", "headlines", "figure2",
			"figure3", "figure5", "figure6", "table4", "figure7", "figure8", "figure9", "timing", "ablation", "robustness"}
	}

	for _, name := range targets {
		if err := run(name, *sets, *workers, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func run(name string, sets, workers int, w io.Writer) error {
	switch name {
	case "table1":
		fmt.Fprintln(w, experiments.ExpTable1().Table())
	case "figure1":
		fmt.Fprintln(w, experiments.ExpFigure1().Table())
	case "figure1live":
		r, err := experiments.ExpFigure1Live(0, 0)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
	case "distribution":
		fmt.Fprintln(w, experiments.ExpOptimumDistribution().Table())
	case "headlines":
		fig2, err := experiments.ExpFigure2(sets, workers)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, experiments.ExpPolicyHeadlines(fig2).Table())
	case "figure2":
		r, err := experiments.ExpFigure2(sets, workers)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
	case "figure3":
		r, err := experiments.ExpFigure3(sets, workers)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
		fmt.Fprintf(w, "peak median %.2f× at %d IONs; overall max %.2f×; mean %.2f×\n\n",
			r.PeakMedian, r.PeakPool, r.OverallMax, r.OverallMean)
	case "figure5":
		fmt.Fprintln(w, experiments.ExpFigure5().Table())
	case "figure6":
		r, err := experiments.ExpFigure6()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
		fmt.Fprintf(w, "MCKP over STATIC/SIZE/PROCESS at 12 IONs: %.2f× / %.2f× / %.2f× (paper: 4.59/4.59/4.1)\n",
			r.MCKPOverStatic12, r.MCKPOverSize12, r.MCKPOverProcess12)
		fmt.Fprintf(w, "MCKP matches ORACLE at %d IONs (paper: 36)\n\n", r.OracleMatchPool)
	case "table4":
		r, err := experiments.ExpTable4()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
	case "figure7":
		r, err := experiments.ExpFigure7()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
	case "figure8":
		r, err := experiments.ExpFigure8()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
	case "figure9live":
		r, err := experiments.ExpFigure9Live()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
	case "figure9":
		r, err := experiments.ExpFigure9()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
		fmt.Fprintf(w, "MCKP over STATIC: %.2f× (paper: 1.9×)\n\n", r.MCKPOverStatic)
	case "timing":
		r, err := experiments.ExpSolverTiming()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
	case "ablation":
		r, err := experiments.ExpAblationDynamic()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
	case "robustness":
		r, err := experiments.ExpQueueRobustness(0)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Table())
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
