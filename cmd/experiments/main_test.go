package main

import (
	"io"
	"testing"
)

// TestRunAllTargets exercises every experiment the CLI can dispatch (with
// a small campaign size) so the wiring cannot rot silently.
func TestRunAllTargets(t *testing.T) {
	targets := []string{"table1", "figure1", "distribution", "headlines", "figure2",
		"figure3", "figure5", "figure6", "table4", "figure7", "figure8",
		"figure9", "timing", "ablation", "robustness"}
	for _, name := range targets {
		if err := run(name, 25, 0, io.Discard); err != nil {
			t.Errorf("run(%q): %v", name, err)
		}
	}
	if err := run("bogus", 25, 0, io.Discard); err == nil {
		t.Error("unknown target should fail")
	}
}
