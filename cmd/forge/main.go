// Command forge is the access-pattern explorer: it predicts the bandwidth
// of an access pattern under different numbers of I/O forwarding nodes,
// the role FORGE plays in the paper's §2 survey.
//
// Usage:
//
//	forge -nodes 32 -ppn 48 -layout shared -spatiality strided -req 512KiB
//	forge -survey          # the full 189-scenario MN4 factorial
//	forge -campaign -sets 10000 -workers 8     # the §3.2 policy campaign
//	forge -live -nodes 2 -ppn 8 -volume 4MiB   # replay on a live stack
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/forge"
	"repro/internal/fwd"
	"repro/internal/livestack"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

func main() {
	nodes := flag.Int("nodes", 32, "compute nodes")
	ppn := flag.Int("ppn", 48, "processes per node")
	layout := flag.String("layout", "shared", "file layout: fpp|shared")
	spatiality := flag.String("spatiality", "contiguous", "spatiality: contiguous|strided")
	req := flag.String("req", "1MiB", "request size (e.g. 32KiB, 4MiB)")
	maxIONs := flag.Int("max-ions", 8, "largest I/O-node count to explore")
	survey := flag.Bool("survey", false, "evaluate the full 189-scenario survey instead")
	campaign := flag.Bool("campaign", false, "run the §3.2 policy campaign (Figures 2–3) instead")
	sets := flag.Int("sets", 10000, "application sets for -campaign (paper: 10000)")
	seed := flag.Int64("seed", 42, "campaign sampling seed")
	workers := flag.Int("workers", 0, "campaign worker goroutines (0 = all cores); results are identical for any value")
	live := flag.Bool("live", false, "replay the pattern's profile on a live forwarding stack instead of the model")
	volume := flag.String("volume", "4MiB", "total volume for -live replay")
	flag.Parse()

	m := perfmodel.Default()
	if *survey {
		runSurvey(m)
		return
	}
	if *campaign {
		if err := runCampaign(os.Stdout, *sets, *seed, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "forge:", err)
			os.Exit(1)
		}
		return
	}

	p, err := buildPattern(*nodes, *ppn, *layout, *spatiality, *req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "forge:", err)
		os.Exit(1)
	}
	if *live {
		if err := runLive(p, *volume, *maxIONs); err != nil {
			fmt.Fprintln(os.Stderr, "forge:", err)
			os.Exit(1)
		}
		return
	}
	c := m.CurveFor(p, *maxIONs, true)
	fmt.Printf("pattern: %s\n", p)
	fmt.Printf("%-10s %s\n", "I/O nodes", "bandwidth")
	for _, pt := range c.Points() {
		marker := ""
		if pt.IONs == c.Best().IONs {
			marker = "   <- best"
		}
		fmt.Printf("%-10d %s%s\n", pt.IONs, pt.Bandwidth, marker)
	}
}

func buildPattern(nodes, ppn int, layout, spatiality, req string) (pattern.Pattern, error) {
	p := pattern.Pattern{Nodes: nodes, ProcsPerNod: ppn, Operation: pattern.Write}
	switch strings.ToLower(layout) {
	case "fpp", "file-per-process":
		p.Layout = pattern.FilePerProcess
	case "shared", "shared-file":
		p.Layout = pattern.SharedFile
	default:
		return p, fmt.Errorf("unknown layout %q", layout)
	}
	switch strings.ToLower(spatiality) {
	case "contiguous", "contig":
		p.Spatiality = pattern.Contiguous
	case "strided", "1d-strided":
		p.Spatiality = pattern.Strided1D
	default:
		return p, fmt.Errorf("unknown spatiality %q", spatiality)
	}
	size, err := parseSize(req)
	if err != nil {
		return p, err
	}
	p.RequestSize = size
	return p, p.Validate()
}

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	for suffix, m := range map[string]int64{"KiB": units.KiB, "MiB": units.MiB, "GiB": units.GiB, "KB": units.KB, "MB": units.MB} {
		if strings.HasSuffix(s, suffix) {
			mult = m
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return int64(v * float64(mult)), nil
}

// runLive replays the pattern's profile through a live forwarding stack at
// each feasible I/O-node count (FORGE's actual deployment-exploration mode,
// at laptop scale).
func runLive(p pattern.Pattern, volumeStr string, maxIONs int) error {
	volume, err := parseSize(volumeStr)
	if err != nil {
		return err
	}
	st, err := livestack.Start(livestack.Config{IONs: maxIONs})
	if err != nil {
		return err
	}
	defer st.Close()
	fmt.Printf("live replay of %s (%s total) on %d I/O nodes:\n",
		p, units.FormatBytes(volume), maxIONs)
	for _, k := range pattern.IONOptions(p.Nodes, maxIONs, true) {
		prof, err := forge.BuildProfile(p, volume, fmt.Sprintf("/live%d", k))
		if err != nil {
			return err
		}
		client, err := fwd.NewClient(fwd.Config{AppID: fmt.Sprintf("replay%d", k), Direct: st.Store})
		if err != nil {
			return err
		}
		client.SetIONs(st.Addrs[:k])
		rep, err := forge.Replay(client, prof)
		client.Close()
		if err != nil {
			return err
		}
		fmt.Printf("  %d I/O nodes: %s (%d requests in %v)\n",
			k, rep.Bandwidth, rep.Requests, rep.Elapsed.Round(1e6))
	}
	return nil
}

// runCampaign executes the §3.2 campaign with the parallel engine and
// prints the Figure 2 medians and Figure 3 ratio bands.
func runCampaign(w io.Writer, sets int, seed int64, workers int) error {
	cfg := forge.DefaultConfig()
	if sets > 0 {
		cfg.Sets = sets
	}
	cfg.Seed = seed
	cfg.Workers = workers
	start := time.Now()
	camp, err := forge.Run(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	med := camp.MedianSeries()
	fmt.Fprintf(w, "§3.2 campaign: %d sets × %d apps, seed %d (%v)\n",
		cfg.Sets, cfg.AppsPerSet, cfg.Seed, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "\nFigure 2 — median aggregate bandwidth (GB/s):\n%-6s", "IONs")
	for _, p := range camp.Policies {
		fmt.Fprintf(w, " %9s", p)
	}
	fmt.Fprintln(w)
	for _, pool := range cfg.PoolSizes {
		fmt.Fprintf(w, "%-6d", pool)
		for _, p := range camp.Policies {
			if v, ok := med[p][pool]; ok {
				fmt.Fprintf(w, " %9.2f", v)
			} else {
				fmt.Fprintf(w, " %9s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nFigure 3 — MCKP over STATIC ratio bands:\n%-6s %8s %8s %8s %8s %8s\n",
		"IONs", "min", "median", "max", "mean", "sets<1")
	for _, b := range camp.RatioSeries("MCKP", "STATIC") {
		fmt.Fprintf(w, "%-6d %8.2f %8.2f %8.2f %8.2f %8d\n",
			b.Pool, b.Min, b.Median, b.Max, b.Mean, b.SetsBelowParityCount)
	}
	h := camp.ComputeHeadlines()
	fmt.Fprintf(w, "\nheadlines: ONE-vs-ZERO median slowdown %.1f%%; ORACLE-vs-ZERO boost min/median/max %.1f%%/%.1f%%/%.1f%%\n",
		h.OneVsZeroMedianSlowdownPct, h.OracleVsZeroMinBoostPct,
		h.OracleVsZeroMedianBoostPct, h.OracleVsZeroMaxBoostPct)
	return nil
}

func runSurvey(m *perfmodel.Model) {
	fmt.Println("189-scenario MN4 survey (bandwidth in MB/s):")
	fmt.Printf("%-52s %8s %8s %8s %8s %8s %6s\n", "pattern", "0", "1", "2", "4", "8", "best")
	for _, p := range pattern.MN4Survey() {
		c := m.CurveFor(p, 8, true)
		row := fmt.Sprintf("%-52s", p)
		for _, k := range []int{0, 1, 2, 4, 8} {
			bw, _ := c.At(k)
			row += fmt.Sprintf(" %8.1f", bw.MBps())
		}
		fmt.Printf("%s %6d\n", row, c.Best().IONs)
	}
	dist := perfmodel.OptimumDistribution(m.SurveyCurves())
	fmt.Println("\noptimum distribution:")
	for _, k := range []int{0, 1, 2, 4, 8} {
		fmt.Printf("  best at %d IONs: %5.1f%%\n", k, dist[k]*100)
	}
}
