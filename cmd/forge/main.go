// Command forge is the access-pattern explorer: it predicts the bandwidth
// of an access pattern under different numbers of I/O forwarding nodes,
// the role FORGE plays in the paper's §2 survey.
//
// Usage:
//
//	forge -nodes 32 -ppn 48 -layout shared -spatiality strided -req 512KiB
//	forge -survey          # the full 189-scenario MN4 factorial
//	forge -live -nodes 2 -ppn 8 -volume 4MiB   # replay on a live stack
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/forge"
	"repro/internal/fwd"
	"repro/internal/livestack"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

func main() {
	nodes := flag.Int("nodes", 32, "compute nodes")
	ppn := flag.Int("ppn", 48, "processes per node")
	layout := flag.String("layout", "shared", "file layout: fpp|shared")
	spatiality := flag.String("spatiality", "contiguous", "spatiality: contiguous|strided")
	req := flag.String("req", "1MiB", "request size (e.g. 32KiB, 4MiB)")
	maxIONs := flag.Int("max-ions", 8, "largest I/O-node count to explore")
	survey := flag.Bool("survey", false, "evaluate the full 189-scenario survey instead")
	live := flag.Bool("live", false, "replay the pattern's profile on a live forwarding stack instead of the model")
	volume := flag.String("volume", "4MiB", "total volume for -live replay")
	flag.Parse()

	m := perfmodel.Default()
	if *survey {
		runSurvey(m)
		return
	}

	p, err := buildPattern(*nodes, *ppn, *layout, *spatiality, *req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "forge:", err)
		os.Exit(1)
	}
	if *live {
		if err := runLive(p, *volume, *maxIONs); err != nil {
			fmt.Fprintln(os.Stderr, "forge:", err)
			os.Exit(1)
		}
		return
	}
	c := m.CurveFor(p, *maxIONs, true)
	fmt.Printf("pattern: %s\n", p)
	fmt.Printf("%-10s %s\n", "I/O nodes", "bandwidth")
	for _, pt := range c.Points() {
		marker := ""
		if pt.IONs == c.Best().IONs {
			marker = "   <- best"
		}
		fmt.Printf("%-10d %s%s\n", pt.IONs, pt.Bandwidth, marker)
	}
}

func buildPattern(nodes, ppn int, layout, spatiality, req string) (pattern.Pattern, error) {
	p := pattern.Pattern{Nodes: nodes, ProcsPerNod: ppn, Operation: pattern.Write}
	switch strings.ToLower(layout) {
	case "fpp", "file-per-process":
		p.Layout = pattern.FilePerProcess
	case "shared", "shared-file":
		p.Layout = pattern.SharedFile
	default:
		return p, fmt.Errorf("unknown layout %q", layout)
	}
	switch strings.ToLower(spatiality) {
	case "contiguous", "contig":
		p.Spatiality = pattern.Contiguous
	case "strided", "1d-strided":
		p.Spatiality = pattern.Strided1D
	default:
		return p, fmt.Errorf("unknown spatiality %q", spatiality)
	}
	size, err := parseSize(req)
	if err != nil {
		return p, err
	}
	p.RequestSize = size
	return p, p.Validate()
}

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	for suffix, m := range map[string]int64{"KiB": units.KiB, "MiB": units.MiB, "GiB": units.GiB, "KB": units.KB, "MB": units.MB} {
		if strings.HasSuffix(s, suffix) {
			mult = m
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return int64(v * float64(mult)), nil
}

// runLive replays the pattern's profile through a live forwarding stack at
// each feasible I/O-node count (FORGE's actual deployment-exploration mode,
// at laptop scale).
func runLive(p pattern.Pattern, volumeStr string, maxIONs int) error {
	volume, err := parseSize(volumeStr)
	if err != nil {
		return err
	}
	st, err := livestack.Start(livestack.Config{IONs: maxIONs})
	if err != nil {
		return err
	}
	defer st.Close()
	fmt.Printf("live replay of %s (%s total) on %d I/O nodes:\n",
		p, units.FormatBytes(volume), maxIONs)
	for _, k := range pattern.IONOptions(p.Nodes, maxIONs, true) {
		prof, err := forge.BuildProfile(p, volume, fmt.Sprintf("/live%d", k))
		if err != nil {
			return err
		}
		client, err := fwd.NewClient(fwd.Config{AppID: fmt.Sprintf("replay%d", k), Direct: st.Store})
		if err != nil {
			return err
		}
		client.SetIONs(st.Addrs[:k])
		rep, err := forge.Replay(client, prof)
		client.Close()
		if err != nil {
			return err
		}
		fmt.Printf("  %d I/O nodes: %s (%d requests in %v)\n",
			k, rep.Bandwidth, rep.Requests, rep.Elapsed.Round(1e6))
	}
	return nil
}

func runSurvey(m *perfmodel.Model) {
	fmt.Println("189-scenario MN4 survey (bandwidth in MB/s):")
	fmt.Printf("%-52s %8s %8s %8s %8s %8s %6s\n", "pattern", "0", "1", "2", "4", "8", "best")
	for _, p := range pattern.MN4Survey() {
		c := m.CurveFor(p, 8, true)
		row := fmt.Sprintf("%-52s", p)
		for _, k := range []int{0, 1, 2, 4, 8} {
			bw, _ := c.At(k)
			row += fmt.Sprintf(" %8.1f", bw.MBps())
		}
		fmt.Printf("%s %6d\n", row, c.Best().IONs)
	}
	dist := perfmodel.OptimumDistribution(m.SurveyCurves())
	fmt.Println("\noptimum distribution:")
	for _, k := range []int{0, 1, 2, 4, 8} {
		fmt.Printf("  best at %d IONs: %5.1f%%\n", k, dist[k]*100)
	}
}
