package main

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/units"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"32KiB", 32 * units.KiB},
		{"1MiB", units.MiB},
		{"4 MiB", 4 * units.MiB},
		{"2GiB", 2 * units.GiB},
		{"100MB", 100 * units.MB},
		{"512KB", 512 * units.KB},
		{"0.5MiB", units.MiB / 2},
		{"4096", 4096},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	if _, err := parseSize("abcMiB"); err == nil {
		t.Error("garbage size should fail")
	}
}

func TestBuildPattern(t *testing.T) {
	p, err := buildPattern(32, 48, "shared", "strided", "512KiB")
	if err != nil {
		t.Fatal(err)
	}
	if p.Layout != pattern.SharedFile || p.Spatiality != pattern.Strided1D || p.RequestSize != 512*units.KiB {
		t.Fatalf("pattern: %+v", p)
	}
	p, err = buildPattern(8, 12, "fpp", "contiguous", "1MiB")
	if err != nil {
		t.Fatal(err)
	}
	if p.Layout != pattern.FilePerProcess {
		t.Fatalf("pattern: %+v", p)
	}
	if _, err := buildPattern(8, 12, "weird", "contiguous", "1MiB"); err == nil {
		t.Error("unknown layout should fail")
	}
	if _, err := buildPattern(8, 12, "shared", "weird", "1MiB"); err == nil {
		t.Error("unknown spatiality should fail")
	}
	// fpp strided is invalid by the pattern model.
	if _, err := buildPattern(8, 12, "fpp", "strided", "1MiB"); err == nil {
		t.Error("fpp+strided should fail validation")
	}
}
