package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/units"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"32KiB", 32 * units.KiB},
		{"1MiB", units.MiB},
		{"4 MiB", 4 * units.MiB},
		{"2GiB", 2 * units.GiB},
		{"100MB", 100 * units.MB},
		{"512KB", 512 * units.KB},
		{"0.5MiB", units.MiB / 2},
		{"4096", 4096},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	if _, err := parseSize("abcMiB"); err == nil {
		t.Error("garbage size should fail")
	}
}

// TestRunCampaignIdenticalAcrossWorkers: the CLI campaign output (tables,
// bands, headlines — everything below the timing line) is byte-identical
// for every worker count.
func TestRunCampaignIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := runCampaign(&buf, 40, 42, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Drop the first line: it reports wall-clock time.
		_, rest, ok := strings.Cut(buf.String(), "\n")
		if !ok {
			t.Fatalf("workers=%d: no output", workers)
		}
		return rest
	}
	serial := render(1)
	if !strings.Contains(serial, "Figure 2") || !strings.Contains(serial, "Figure 3") {
		t.Fatalf("campaign output incomplete:\n%s", serial)
	}
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != serial {
			t.Errorf("workers=%d output differs from serial:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}

func TestBuildPattern(t *testing.T) {
	p, err := buildPattern(32, 48, "shared", "strided", "512KiB")
	if err != nil {
		t.Fatal(err)
	}
	if p.Layout != pattern.SharedFile || p.Spatiality != pattern.Strided1D || p.RequestSize != 512*units.KiB {
		t.Fatalf("pattern: %+v", p)
	}
	p, err = buildPattern(8, 12, "fpp", "contiguous", "1MiB")
	if err != nil {
		t.Fatal(err)
	}
	if p.Layout != pattern.FilePerProcess {
		t.Fatalf("pattern: %+v", p)
	}
	if _, err := buildPattern(8, 12, "weird", "contiguous", "1MiB"); err == nil {
		t.Error("unknown layout should fail")
	}
	if _, err := buildPattern(8, 12, "shared", "weird", "1MiB"); err == nil {
		t.Error("unknown spatiality should fail")
	}
	// fpp strided is invalid by the pattern model.
	if _, err := buildPattern(8, 12, "fpp", "strided", "1MiB"); err == nil {
		t.Error("fpp+strided should fail validation")
	}
}
