// The scaler's perfmodel advisor: a marginal-value forecast built from
// the Figure 5 bandwidth curves of the applications gkfwd is about to
// run. The elastic scaler consults it before every scale-up step — when
// the curves say another I/O node adds no aggregate bandwidth (every app
// is past its peak), growth is vetoed no matter how hot the queues look.
package main

import (
	"strings"

	"repro/internal/perfmodel"
)

// marginalValueFor builds the forecast for a comma-separated -apps list.
// The pool is modeled as divided evenly among the apps (the arbiter's
// exclusive assignment makes shares disjoint), each app's bandwidth read
// off its curve at its share, and the forecast for growing from k to k+1
// nodes is the change in the summed bandwidth. Unknown labels are
// skipped — the kernel lookup reports them properly at run time.
func marginalValueFor(appList string) func(k int) float64 {
	var curves []perfmodel.Curve
	for _, label := range strings.Split(appList, ",") {
		spec, err := perfmodel.AppByLabel(strings.TrimSpace(label))
		if err != nil {
			continue
		}
		curves = append(curves, spec.Curve)
	}
	value := func(k int) float64 {
		if len(curves) == 0 {
			return 0
		}
		share, extra := k/len(curves), k%len(curves)
		total := 0.0
		for i, c := range curves {
			s := share
			if i < extra {
				s++
			}
			total += interpMBps(c, s)
		}
		return total
	}
	return func(k int) float64 { return value(k+1) - value(k) }
}

// interpMBps reads a curve at k I/O nodes, linearly interpolating between
// the measured points (the paper reports 0,1,2,4,8) and holding flat past
// the last one — so the marginal value beyond every app's measured range
// is zero, which the scaler reads as "not worth provisioning".
func interpMBps(c perfmodel.Curve, k int) float64 {
	pts := c.Points()
	if len(pts) == 0 {
		return 0
	}
	if k <= pts[0].IONs {
		return pts[0].Bandwidth.MBps()
	}
	for i := 1; i < len(pts); i++ {
		if k <= pts[i].IONs {
			lo, hi := pts[i-1], pts[i]
			frac := float64(k-lo.IONs) / float64(hi.IONs-lo.IONs)
			return lo.Bandwidth.MBps() + frac*(hi.Bandwidth.MBps()-lo.Bandwidth.MBps())
		}
	}
	return pts[len(pts)-1].Bandwidth.MBps()
}
