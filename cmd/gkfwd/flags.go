// Flag plumbing for gkfwd: every tunable is collected into one options
// struct and validated up front, so a typo'd -call-timeout=-1s dies with a
// clear message at startup instead of silently degrading mid-run (a
// negative timeout used to behave like "no timeout", a negative chunk size
// like the default — both lies about what the operator asked for).
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/elastic"
	"repro/internal/fwd"
	"repro/internal/livestack"
	"repro/internal/policy"
	"repro/internal/qos"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// options is the parsed flag set, kept as a plain struct so validation and
// config assembly are unit-testable without touching the flag package.
type options struct {
	ions      int
	appList   string
	scheduler string
	sweep     string
	queue     bool
	rate      float64

	metricsAddr   string
	chunkSize     int64
	coalesceLimit int64

	callTimeout      time.Duration
	rpcRetries       int
	breakerThreshold int
	breakerCooldown  time.Duration

	healthInterval time.Duration
	healthTimeout  time.Duration

	queueCap    int
	maxInflight int
	maxConns    int
	retryAfter  time.Duration

	throttle    bool
	throttleMin int
	throttleMax int

	overloadDepth int
	overloadShed  int

	wireChecksum bool
	dedupWindow  int

	scaleMin      int
	scaleMax      int
	scaleUp       float64
	scaleDown     float64
	scaleCooldown time.Duration

	journalDir           string
	journalSnapshotEvery int

	slowFactor      float64
	slowWindow      int
	hedgePct        float64
	hedgeBudget     float64
	quarantineFloor int

	qosConfig string
	qosInline string
	// qosReg is the tenant policy parsed from -qos-config/-qos during
	// validate, so a syntax error dies at startup and Start never sees an
	// unvetted registry. nil when neither flag is set.
	qosReg *qos.Registry
}

// parseFlags registers every flag on the default FlagSet and parses the
// command line.
func parseFlags() *options {
	var o options
	flag.IntVar(&o.ions, "ions", 4, "I/O-node daemons to start")
	flag.StringVar(&o.appList, "apps", "IOR-MPI,HACC", "comma-separated Table 3 labels to run concurrently")
	flag.StringVar(&o.scheduler, "scheduler", "", "AGIOS scheduler: FIFO|SJF|AIOLI|TWINS|WFQ (default AIOLI; WFQ when QoS is configured)")
	flag.StringVar(&o.sweep, "sweep", "", "run one kernel at every feasible ION count instead")
	flag.BoolVar(&o.queue, "queue", false, "run the paper's §5.3 queue live (14 tiny-scale jobs)")
	flag.Float64Var(&o.rate, "ost-mbps", 0, "throttle each OST to this MB/s (0 = unthrottled)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics and /trace/recent on this address (e.g. :9090; empty = off)")
	flag.Int64Var(&o.chunkSize, "chunk-size", 0, "forwarding request-splitting unit in bytes (0 = default)")
	flag.Int64Var(&o.coalesceLimit, "coalesce-limit", 0, "max contiguous same-node bytes merged into one wire request (0 = default)")
	flag.DurationVar(&o.callTimeout, "call-timeout", 0, "per-RPC deadline (0 = block forever, the legacy behaviour)")
	flag.IntVar(&o.rpcRetries, "rpc-retries", 0, "transport-failure retries per RPC")
	flag.IntVar(&o.breakerThreshold, "breaker-threshold", 0, "consecutive transport failures that open a circuit breaker (0 = breaker off)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = default)")
	flag.DurationVar(&o.healthInterval, "health-interval", 0, "heartbeat probe interval; >0 enables health-driven re-arbitration")
	flag.DurationVar(&o.healthTimeout, "health-timeout", 0, "per-ping deadline (0 = derived from the interval)")
	flag.IntVar(&o.queueCap, "queue-cap", 0, "bound each daemon's request queue; above it requests get a busy response (0 = unbounded)")
	flag.IntVar(&o.maxInflight, "max-inflight", 0, "bound concurrently-handled requests per daemon (0 = unlimited)")
	flag.IntVar(&o.maxConns, "max-conns", 0, "bound accepted client connections per daemon (0 = unlimited)")
	flag.DurationVar(&o.retryAfter, "retry-after", 0, "retry-after hint carried on busy responses (0 = daemon default)")
	flag.BoolVar(&o.throttle, "throttle", false, "enable adaptive per-ION client throttling (AIMD window)")
	flag.IntVar(&o.throttleMin, "throttle-min", 0, "throttle window floor (0 = default)")
	flag.IntVar(&o.throttleMax, "throttle-max", 0, "throttle window ceiling (0 = default)")
	flag.IntVar(&o.overloadDepth, "overload-depth", 0, "queue depth at which the prober calls an I/O node overloaded (0 = off)")
	flag.IntVar(&o.overloadShed, "overload-shed", 0, "sheds per probe sweep at which the prober calls an I/O node overloaded (0 = off)")
	flag.BoolVar(&o.wireChecksum, "wire-checksum", false, "CRC32C trailers on every RPC frame, verified end to end")
	flag.IntVar(&o.dedupWindow, "dedup-window", 0, "exactly-once writes: per-client outcomes each daemon retains for replay on transport retries (0 = off)")
	flag.IntVar(&o.scaleMax, "scale-max", 0, "pool ceiling for the elastic scaler; >0 enables autoscaling (0 = static pool)")
	flag.IntVar(&o.scaleMin, "scale-min", 0, "pool floor for the elastic scaler (0 = -ions)")
	flag.Float64Var(&o.scaleUp, "scale-up", 0, "average queue depth at or above which the pool grows (sustained)")
	flag.Float64Var(&o.scaleDown, "scale-down", 0, "average queue depth at or below which the pool shrinks (sustained)")
	flag.DurationVar(&o.scaleCooldown, "scale-cooldown", 0, "minimum gap between same-direction scale events (0 = scaler defaults)")
	flag.Float64Var(&o.slowFactor, "slow-factor", 0, "fail-slow detection: quarantine an I/O node whose probe-RTT median exceeds its peers' × this factor, sustained (0 = off)")
	flag.IntVar(&o.slowWindow, "slow-window", 0, "consecutive slow probe sweeps before a node is marked degraded (0 = detector default)")
	flag.Float64Var(&o.hedgePct, "hedge-pct", 0, "hedged requests: per-ION latency quantile in (0,1) used as the hedge deadline; setting this or -hedge-budget enables hedging (requires -dedup-window)")
	flag.Float64Var(&o.hedgeBudget, "hedge-budget", 0, "fraction of a hedge token each request earns, capping the steady-state hedge rate (0 = default 0.1 when hedging is on)")
	flag.IntVar(&o.quarantineFloor, "quarantine-floor", 0, "allocatable I/O nodes the fail-slow quarantine may never dig below (0 = 1)")
	flag.StringVar(&o.journalDir, "journal-dir", "", "control-plane write-ahead journal directory; non-empty enables crash recovery and epoch fencing (empty = off)")
	flag.IntVar(&o.journalSnapshotEvery, "journal-snapshot-every", 0, "journal appends between compacting snapshots (0 = journal default)")
	flag.StringVar(&o.qosConfig, "qos-config", "", "tenant QoS policy file (class/app statements, see internal/qos)")
	flag.StringVar(&o.qosInline, "qos", "", "inline QoS statements (';'-separated) applied after -qos-config")
	flag.Parse()
	return &o
}

// validate rejects flag values that would otherwise misbehave silently at
// runtime. Zero means "feature off" for most knobs, so the rule is:
// negative never, and cross-flag requirements stated explicitly.
func (o *options) validate() error {
	if o.ions <= 0 {
		return fmt.Errorf("-ions must be at least 1, got %d", o.ions)
	}
	if o.rate < 0 {
		return fmt.Errorf("-ost-mbps must not be negative, got %g", o.rate)
	}
	if o.chunkSize < 0 {
		return fmt.Errorf("-chunk-size must not be negative, got %d", o.chunkSize)
	}
	if o.coalesceLimit < 0 {
		return fmt.Errorf("-coalesce-limit must not be negative, got %d", o.coalesceLimit)
	}
	if o.coalesceLimit > 0 && o.chunkSize > 0 && o.coalesceLimit < o.chunkSize {
		return fmt.Errorf("-coalesce-limit (%d) must not be below -chunk-size (%d)", o.coalesceLimit, o.chunkSize)
	}
	for _, d := range []struct {
		name string
		val  time.Duration
	}{
		{"-call-timeout", o.callTimeout},
		{"-breaker-cooldown", o.breakerCooldown},
		{"-health-interval", o.healthInterval},
		{"-health-timeout", o.healthTimeout},
		{"-retry-after", o.retryAfter},
	} {
		if d.val < 0 {
			return fmt.Errorf("%s must not be negative, got %v", d.name, d.val)
		}
	}
	for _, n := range []struct {
		name string
		val  int
	}{
		{"-rpc-retries", o.rpcRetries},
		{"-breaker-threshold", o.breakerThreshold},
		{"-queue-cap", o.queueCap},
		{"-max-inflight", o.maxInflight},
		{"-max-conns", o.maxConns},
		{"-throttle-min", o.throttleMin},
		{"-throttle-max", o.throttleMax},
		{"-overload-depth", o.overloadDepth},
		{"-overload-shed", o.overloadShed},
		{"-dedup-window", o.dedupWindow},
	} {
		if n.val < 0 {
			return fmt.Errorf("%s must not be negative, got %d", n.name, n.val)
		}
	}
	if o.throttleMin > 0 && o.throttleMax > 0 && o.throttleMin > o.throttleMax {
		return fmt.Errorf("-throttle-min (%d) must not exceed -throttle-max (%d)", o.throttleMin, o.throttleMax)
	}
	if !o.throttle && (o.throttleMin > 0 || o.throttleMax > 0) {
		return fmt.Errorf("-throttle-min/-throttle-max require -throttle")
	}
	if o.healthInterval == 0 && (o.overloadDepth > 0 || o.overloadShed > 0) {
		return fmt.Errorf("-overload-depth/-overload-shed require -health-interval")
	}
	if o.queue && o.sweep != "" {
		return fmt.Errorf("-queue and -sweep are mutually exclusive")
	}
	// Cross-flag requirements: each of these knobs tunes a feature some
	// other flag switches on. Alone it is dead configuration — accepting
	// it silently would tell the operator a protection is active when it
	// is not.
	if o.breakerCooldown > 0 && o.breakerThreshold == 0 {
		return fmt.Errorf("-breaker-cooldown requires -breaker-threshold: without a threshold no breaker ever opens, so the cooldown never applies")
	}
	if o.healthTimeout > 0 && o.healthInterval == 0 {
		return fmt.Errorf("-health-timeout requires -health-interval: without an interval no probe runs, so the ping deadline never applies")
	}
	if o.retryAfter > 0 && o.queueCap == 0 && o.maxInflight == 0 {
		return fmt.Errorf("-retry-after requires -queue-cap or -max-inflight: without bounded admission no busy response carries the hint")
	}
	if o.overloadDepth > 0 && o.queueCap > 0 && o.overloadDepth > o.queueCap {
		return fmt.Errorf("-overload-depth (%d) exceeds -queue-cap (%d): the queue sheds before it ever reaches that depth, so overload would never trigger", o.overloadDepth, o.queueCap)
	}
	if o.overloadShed > 0 && o.queueCap == 0 && o.maxInflight == 0 && o.maxConns == 0 {
		return fmt.Errorf("-overload-shed requires a shed source (-queue-cap, -max-inflight, or -max-conns): an unbounded daemon never sheds, so the threshold would never trigger")
	}
	if o.scaleMin < 0 {
		return fmt.Errorf("-scale-min must not be negative, got %d", o.scaleMin)
	}
	if o.scaleMax < 0 {
		return fmt.Errorf("-scale-max must not be negative, got %d", o.scaleMax)
	}
	if o.scaleUp < 0 {
		return fmt.Errorf("-scale-up must not be negative, got %g", o.scaleUp)
	}
	if o.scaleDown < 0 {
		return fmt.Errorf("-scale-down must not be negative, got %g", o.scaleDown)
	}
	if o.scaleCooldown < 0 {
		return fmt.Errorf("-scale-cooldown must not be negative, got %v", o.scaleCooldown)
	}
	if o.scaleMax == 0 {
		// -scale-max is the feature switch; every other scaler knob tunes a
		// scaler that would not exist.
		switch {
		case o.scaleMin > 0:
			return fmt.Errorf("-scale-min requires -scale-max: without a ceiling no scaler runs, so the floor never applies")
		case o.scaleUp > 0 || o.scaleDown > 0:
			return fmt.Errorf("-scale-up/-scale-down require -scale-max: without a ceiling no scaler reads the watermarks")
		case o.scaleCooldown > 0:
			return fmt.Errorf("-scale-cooldown requires -scale-max: without a ceiling no scale event ever fires, so the cooldown never applies")
		}
	} else {
		if o.healthInterval == 0 {
			return fmt.Errorf("-scale-max requires -health-interval: the scaler feeds on the prober's queue-depth samples, so without probes it is blind")
		}
		if o.scaleUp == 0 {
			return fmt.Errorf("-scale-max requires the watermark pair -scale-up/-scale-down: without thresholds the scaler has no demand signal")
		}
		if o.scaleUp <= o.scaleDown {
			return fmt.Errorf("-scale-up (%g) must exceed -scale-down (%g): the gap between them is the hysteresis band that prevents flapping", o.scaleUp, o.scaleDown)
		}
		if o.scaleMin > o.scaleMax {
			return fmt.Errorf("-scale-min (%d) must not exceed -scale-max (%d)", o.scaleMin, o.scaleMax)
		}
		if o.ions > o.scaleMax {
			return fmt.Errorf("-ions (%d) must not start above -scale-max (%d): the scaler would have to shrink a pool the operator explicitly sized", o.ions, o.scaleMax)
		}
		min := o.scaleMin
		if min == 0 {
			min = o.ions
		}
		if o.ions < min {
			return fmt.Errorf("-ions (%d) must not start below -scale-min (%d): the scaler only grows on demand, so the pool would sit under its own floor", o.ions, min)
		}
	}
	if o.slowFactor < 0 {
		return fmt.Errorf("-slow-factor must not be negative, got %g", o.slowFactor)
	}
	if o.slowWindow < 0 {
		return fmt.Errorf("-slow-window must not be negative, got %d", o.slowWindow)
	}
	if o.quarantineFloor < 0 {
		return fmt.Errorf("-quarantine-floor must not be negative, got %d", o.quarantineFloor)
	}
	if o.hedgePct < 0 || o.hedgePct >= 1 {
		return fmt.Errorf("-hedge-pct must be a quantile in [0,1), got %g", o.hedgePct)
	}
	if o.hedgeBudget < 0 || o.hedgeBudget > 1 {
		return fmt.Errorf("-hedge-budget must be a per-request token fraction in [0,1], got %g", o.hedgeBudget)
	}
	if o.slowFactor > 0 && o.healthInterval == 0 {
		return fmt.Errorf("-slow-factor requires -health-interval: the fail-slow scorer feeds on probe round-trips, so without probes it is blind")
	}
	if o.slowWindow > 0 && o.slowFactor == 0 {
		return fmt.Errorf("-slow-window requires -slow-factor: without a slowness factor no scorer runs, so the debounce window never applies")
	}
	if o.quarantineFloor > 0 {
		if o.slowFactor == 0 {
			return fmt.Errorf("-quarantine-floor requires -slow-factor: without detection nothing is ever quarantined, so the floor never applies")
		}
		// The floor must sit strictly below the smallest pool this run can
		// have, or the quarantine could never engage once the pool is there.
		poolMin := o.ions
		if o.scaleMax > 0 && o.scaleMin > 0 && o.scaleMin < poolMin {
			poolMin = o.scaleMin
		}
		if o.quarantineFloor >= poolMin {
			return fmt.Errorf("-quarantine-floor (%d) must be below the pool minimum (%d): a floor the pool cannot dig below disables quarantine entirely", o.quarantineFloor, poolMin)
		}
	}
	if (o.hedgePct > 0 || o.hedgeBudget > 0) && o.dedupWindow == 0 {
		return fmt.Errorf("-hedge-pct/-hedge-budget require -dedup-window: only the dedup window makes a duplicated write exactly-once, so hedging without it could double-apply")
	}
	if o.journalSnapshotEvery < 0 {
		return fmt.Errorf("-journal-snapshot-every must not be negative, got %d", o.journalSnapshotEvery)
	}
	if o.journalSnapshotEvery > 0 && o.journalDir == "" {
		return fmt.Errorf("-journal-snapshot-every requires -journal-dir: without a journal no snapshot is ever taken, so the cadence never applies")
	}
	if o.qosConfig != "" || o.qosInline != "" {
		var (
			reg *qos.Registry
			err error
		)
		if o.qosConfig != "" {
			reg, err = qos.ParseFile(o.qosConfig, o.qosInline)
		} else {
			reg, err = qos.Parse(o.qosInline)
		}
		if err != nil {
			return fmt.Errorf("-qos-config/-qos: %w", err)
		}
		o.qosReg = reg
	}
	return nil
}

// schedulerName reports the scheduler the stack will actually run, for
// startup output: an explicit -scheduler wins, otherwise the livestack
// default (WFQ under a QoS policy, AIOLI without one).
func (o *options) schedulerName() string {
	if o.scheduler != "" {
		return o.scheduler
	}
	if o.qosReg != nil && !o.qosReg.Empty() {
		return "WFQ"
	}
	return "AIOLI"
}

// stackConfig assembles the livestack configuration from validated options.
func (o *options) stackConfig() livestack.Config {
	cfg := livestack.Config{
		IONs:          o.ions,
		Scheduler:     o.scheduler,
		Policy:        policy.MCKP{},
		ChunkSize:     o.chunkSize,
		CoalesceLimit: o.coalesceLimit,
		RPC: rpc.Options{
			CallTimeout:      o.callTimeout,
			MaxRetries:       o.rpcRetries,
			BreakerThreshold: o.breakerThreshold,
			BreakerCooldown:  o.breakerCooldown,
		},
		HealthInterval:       o.healthInterval,
		HealthTimeout:        o.healthTimeout,
		QueueCap:             o.queueCap,
		MaxInflight:          o.maxInflight,
		MaxConns:             o.maxConns,
		RetryAfterHint:       o.retryAfter,
		OverloadQueueDepth:   o.overloadDepth,
		OverloadShedDelta:    o.overloadShed,
		WireChecksum:         o.wireChecksum,
		DedupWindow:          o.dedupWindow,
		JournalDir:           o.journalDir,
		JournalSnapshotEvery: o.journalSnapshotEvery,
		SlowFactor:           o.slowFactor,
		SlowWindow:           o.slowWindow,
		QuarantineFloor:      o.quarantineFloor,
		QoS:                  o.qosReg,
		Throttle: fwd.ThrottleConfig{
			Enabled:   o.throttle,
			MinWindow: o.throttleMin,
			MaxWindow: o.throttleMax,
		},
	}
	if o.scaleMax > 0 {
		min := o.scaleMin
		if min == 0 {
			min = o.ions
		}
		cfg.Elastic = &elastic.Config{
			Min:           min,
			Max:           o.scaleMax,
			UpWatermark:   o.scaleUp,
			DownWatermark: o.scaleDown,
			UpCooldown:    o.scaleCooldown,
			DownCooldown:  o.scaleCooldown,
			// The forecast seam: a scale-up whose predicted aggregate
			// bandwidth gain is zero is vetoed — capacity the running
			// apps' curves say nobody can use is not worth provisioning.
			MarginalValue: marginalValueFor(o.appList),
		}
	}
	if o.hedgePct > 0 || o.hedgeBudget > 0 {
		cfg.Hedge = fwd.HedgeConfig{
			Enabled: true,
			Pct:     o.hedgePct,
			Budget:  o.hedgeBudget,
		}
	}
	if o.rate > 0 {
		cfg.PFS.OSTRate = units.BandwidthFromMBps(o.rate)
	}
	if o.metricsAddr != "" {
		// Tracing is only worth its (small) cost when someone can look at
		// the traces, so it rides the metrics endpoint flag.
		cfg.Tracer = telemetry.NewTracer(0)
	}
	return cfg
}
