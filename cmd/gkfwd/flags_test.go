package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// validOptions mirrors the flag defaults.
func validOptions() options {
	return options{ions: 4, appList: "IOR-MPI,HACC"}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	o := validOptions()
	if err := o.validate(); err != nil {
		t.Fatalf("defaults should validate: %v", err)
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string // substring of the error
	}{
		{"zero ions", func(o *options) { o.ions = 0 }, "-ions"},
		{"negative ions", func(o *options) { o.ions = -3 }, "-ions"},
		{"negative ost rate", func(o *options) { o.rate = -1 }, "-ost-mbps"},
		{"negative chunk size", func(o *options) { o.chunkSize = -4096 }, "-chunk-size"},
		{"negative coalesce limit", func(o *options) { o.coalesceLimit = -1 }, "-coalesce-limit"},
		{"coalesce limit below chunk size", func(o *options) { o.chunkSize = 4096; o.coalesceLimit = 1024 }, "-coalesce-limit"},
		{"negative call timeout", func(o *options) { o.callTimeout = -time.Second }, "-call-timeout"},
		{"negative breaker cooldown", func(o *options) { o.breakerCooldown = -1 }, "-breaker-cooldown"},
		{"negative health interval", func(o *options) { o.healthInterval = -time.Millisecond }, "-health-interval"},
		{"negative health timeout", func(o *options) { o.healthTimeout = -time.Millisecond }, "-health-timeout"},
		{"negative retry after", func(o *options) { o.retryAfter = -time.Millisecond }, "-retry-after"},
		{"negative rpc retries", func(o *options) { o.rpcRetries = -1 }, "-rpc-retries"},
		{"negative breaker threshold", func(o *options) { o.breakerThreshold = -1 }, "-breaker-threshold"},
		{"negative queue cap", func(o *options) { o.queueCap = -1 }, "-queue-cap"},
		{"negative max inflight", func(o *options) { o.maxInflight = -1 }, "-max-inflight"},
		{"negative max conns", func(o *options) { o.maxConns = -1 }, "-max-conns"},
		{"negative throttle min", func(o *options) { o.throttle = true; o.throttleMin = -1 }, "-throttle-min"},
		{"negative overload depth", func(o *options) { o.overloadDepth = -1 }, "-overload-depth"},
		{"negative dedup window", func(o *options) { o.dedupWindow = -1 }, "-dedup-window"},
		{"min above max", func(o *options) { o.throttle = true; o.throttleMin = 8; o.throttleMax = 4 }, "-throttle-min"},
		{"throttle knobs without throttle", func(o *options) { o.throttleMax = 16 }, "-throttle"},
		{"overload without health", func(o *options) { o.overloadDepth = 10 }, "-health-interval"},
		{"queue and sweep", func(o *options) { o.queue = true; o.sweep = "HACC" }, "mutually exclusive"},
		{"breaker cooldown without threshold", func(o *options) { o.breakerCooldown = time.Second }, "-breaker-threshold"},
		{"health timeout without interval", func(o *options) { o.healthTimeout = time.Second }, "-health-interval"},
		{"retry after without admission bound", func(o *options) { o.retryAfter = time.Millisecond }, "-queue-cap or -max-inflight"},
		{"overload depth beyond queue cap", func(o *options) { o.healthInterval = time.Second; o.queueCap = 8; o.overloadDepth = 32 }, "exceeds -queue-cap"},
		{"overload shed without shed source", func(o *options) { o.healthInterval = time.Second; o.overloadShed = 4 }, "shed source"},
		{"negative scale min", func(o *options) { o.scaleMin = -1 }, "-scale-min"},
		{"negative scale max", func(o *options) { o.scaleMax = -1 }, "-scale-max"},
		{"negative scale up", func(o *options) { o.scaleUp = -1 }, "-scale-up"},
		{"negative scale down", func(o *options) { o.scaleDown = -0.5 }, "-scale-down"},
		{"negative scale cooldown", func(o *options) { o.scaleCooldown = -time.Second }, "-scale-cooldown"},
		{"scale min without max", func(o *options) { o.scaleMin = 2 }, "-scale-min requires -scale-max"},
		{"watermarks without max", func(o *options) { o.scaleUp = 8 }, "require -scale-max"},
		{"scale cooldown without max", func(o *options) { o.scaleCooldown = time.Second }, "-scale-cooldown requires -scale-max"},
		{"scaler without health", func(o *options) { o.scaleMax = 8; o.scaleUp = 8; o.scaleDown = 1 }, "-scale-max requires -health-interval"},
		{"scaler without watermarks", func(o *options) {
			o.healthInterval = time.Second
			o.scaleMax = 8
		}, "watermark pair"},
		{"inverted watermarks", func(o *options) {
			o.healthInterval = time.Second
			o.scaleMax = 8
			o.scaleUp = 1
			o.scaleDown = 4
		}, "hysteresis band"},
		{"scale min above scale max", func(o *options) {
			o.healthInterval = time.Second
			o.scaleMax = 4
			o.scaleUp = 8
			o.scaleDown = 1
			o.scaleMin = 6
		}, "-scale-min (6) must not exceed -scale-max (4)"},
		{"ions below scale min", func(o *options) {
			o.healthInterval = time.Second
			o.ions = 2
			o.scaleMin = 3
			o.scaleMax = 8
			o.scaleUp = 8
			o.scaleDown = 1
		}, "below -scale-min"},
		{"ions above scale max", func(o *options) {
			o.healthInterval = time.Second
			o.ions = 10
			o.scaleMax = 8
			o.scaleUp = 8
			o.scaleDown = 1
		}, "above -scale-max"},
		{"negative journal snapshot cadence", func(o *options) { o.journalSnapshotEvery = -1 }, "-journal-snapshot-every"},
		{"journal snapshot cadence without journal", func(o *options) { o.journalSnapshotEvery = 64 }, "-journal-snapshot-every requires -journal-dir"},
		{"negative slow factor", func(o *options) { o.slowFactor = -2 }, "-slow-factor"},
		{"negative slow window", func(o *options) { o.slowWindow = -1 }, "-slow-window"},
		{"negative quarantine floor", func(o *options) { o.quarantineFloor = -1 }, "-quarantine-floor"},
		{"hedge pct not a quantile", func(o *options) { o.dedupWindow = 16; o.hedgePct = 1.5 }, "-hedge-pct"},
		{"negative hedge budget", func(o *options) { o.dedupWindow = 16; o.hedgeBudget = -0.1 }, "-hedge-budget"},
		{"hedge budget above one", func(o *options) { o.dedupWindow = 16; o.hedgeBudget = 2 }, "-hedge-budget"},
		{"slow factor without health", func(o *options) { o.slowFactor = 4 }, "-slow-factor requires -health-interval"},
		{"slow window without factor", func(o *options) { o.slowWindow = 3 }, "-slow-window requires -slow-factor"},
		{"quarantine floor without factor", func(o *options) {
			o.quarantineFloor = 1
			o.ions = 4
		}, "-quarantine-floor requires -slow-factor"},
		{"quarantine floor at pool minimum", func(o *options) {
			o.healthInterval = time.Second
			o.slowFactor = 4
			o.quarantineFloor = 4 // == -ions: nothing could ever be quarantined
		}, "below the pool minimum"},
		{"quarantine floor at elastic pool minimum", func(o *options) {
			o.healthInterval = time.Second
			o.slowFactor = 4
			o.scaleMax = 8
			o.scaleMin = 2
			o.scaleUp = 8
			o.scaleDown = 1
			o.quarantineFloor = 2 // == -scale-min, the smallest pool this run can have
		}, "below the pool minimum"},
		{"hedge pct without dedup", func(o *options) { o.hedgePct = 0.95 }, "require -dedup-window"},
		{"hedge budget without dedup", func(o *options) { o.hedgeBudget = 0.2 }, "require -dedup-window"},
		{"qos inline syntax error", func(o *options) { o.qosInline = "class gold tier=bogus" }, "-qos-config/-qos"},
		{"qos unknown class reference", func(o *options) { o.qosInline = "app a missing" }, "-qos-config/-qos"},
		{"qos missing file", func(o *options) { o.qosConfig = "/nonexistent/qos.conf" }, "-qos-config/-qos"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOptions()
			tc.mut(&o)
			err := o.validate()
			if err == nil {
				t.Fatalf("expected an error mentioning %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsOverloadKnobs(t *testing.T) {
	o := validOptions()
	o.healthInterval = 100 * time.Millisecond
	o.overloadDepth = 32
	o.overloadShed = 4
	o.queueCap = 64
	o.maxInflight = 16
	o.maxConns = 8
	o.throttle = true
	o.throttleMin = 1
	o.throttleMax = 16
	if err := o.validate(); err != nil {
		t.Fatalf("overload/backpressure knobs should validate: %v", err)
	}
}

// TestJournalFlagsCarryIntoStackConfig pins the recovery flag pair: the
// directory and snapshot cadence reach the stack verbatim, and the
// default (no -journal-dir) keeps the journal fully off.
func TestJournalFlagsCarryIntoStackConfig(t *testing.T) {
	o := validOptions()
	o.journalDir = filepath.Join(t.TempDir(), "wal")
	o.journalSnapshotEvery = 128
	if err := o.validate(); err != nil {
		t.Fatalf("journal flags should validate: %v", err)
	}
	cfg := o.stackConfig()
	if cfg.JournalDir != o.journalDir {
		t.Errorf("JournalDir = %q, want %q", cfg.JournalDir, o.journalDir)
	}
	if cfg.JournalSnapshotEvery != 128 {
		t.Errorf("JournalSnapshotEvery = %d, want 128", cfg.JournalSnapshotEvery)
	}

	off := validOptions()
	if err := off.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg := off.stackConfig(); cfg.JournalDir != "" || cfg.JournalSnapshotEvery != 0 {
		t.Errorf("journal on by default: dir=%q every=%d", cfg.JournalDir, cfg.JournalSnapshotEvery)
	}
}

func TestStackConfigCarriesOverloadKnobs(t *testing.T) {
	o := validOptions()
	o.healthInterval = 100 * time.Millisecond
	o.queueCap = 64
	o.maxInflight = 16
	o.maxConns = 8
	o.retryAfter = 5 * time.Millisecond
	o.overloadDepth = 32
	o.overloadShed = 4
	o.throttle = true
	o.throttleMin = 2
	o.throttleMax = 16
	o.chunkSize = 1 << 16
	o.coalesceLimit = 1 << 20
	cfg := o.stackConfig()
	if cfg.QueueCap != 64 || cfg.MaxInflight != 16 || cfg.MaxConns != 8 {
		t.Fatalf("admission knobs not carried: %+v", cfg)
	}
	if cfg.RetryAfterHint != 5*time.Millisecond {
		t.Fatalf("retry-after hint not carried: %v", cfg.RetryAfterHint)
	}
	if cfg.OverloadQueueDepth != 32 || cfg.OverloadShedDelta != 4 {
		t.Fatalf("overload knobs not carried: %+v", cfg)
	}
	if !cfg.Throttle.Enabled || cfg.Throttle.MinWindow != 2 || cfg.Throttle.MaxWindow != 16 {
		t.Fatalf("throttle knobs not carried: %+v", cfg.Throttle)
	}
	if cfg.ChunkSize != 1<<16 {
		t.Fatalf("chunk size not carried: %d", cfg.ChunkSize)
	}
	if cfg.CoalesceLimit != 1<<20 {
		t.Fatalf("coalesce limit not carried: %d", cfg.CoalesceLimit)
	}
}

func TestQoSFlagsParseIntoStackConfig(t *testing.T) {
	conf := filepath.Join(t.TempDir(), "qos.conf")
	if err := os.WriteFile(conf, []byte("class gold tier=guaranteed rate=64MiB weight=4\napp ior gold\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := validOptions()
	o.qosConfig = conf
	o.qosInline = "class scav tier=scavenger rate=1MiB; app bg scav"
	if err := o.validate(); err != nil {
		t.Fatalf("qos flags should validate: %v", err)
	}
	cfg := o.stackConfig()
	if cfg.QoS == nil {
		t.Fatal("validated QoS registry not carried into the stack config")
	}
	if c := cfg.QoS.ClassFor("ior"); c == nil || c.Name != "gold" {
		t.Fatalf("file-declared class not resolvable: %+v", c)
	}
	if c := cfg.QoS.ClassFor("bg"); c == nil || c.Name != "scav" {
		t.Fatalf("inline override class not resolvable: %+v", c)
	}
	if got := o.schedulerName(); got != "WFQ" {
		t.Fatalf("schedulerName with QoS = %q, want WFQ", got)
	}
	o.scheduler = "FIFO"
	if got := o.schedulerName(); got != "FIFO" {
		t.Fatalf("explicit -scheduler must win: %q", got)
	}
	// And the default remains fully off.
	def := validOptions()
	if err := def.validate(); err != nil {
		t.Fatal(err)
	}
	if d := def.stackConfig(); d.QoS != nil || d.Scheduler != "" {
		t.Fatalf("QoS must default off: %+v", d)
	}
	if got := def.schedulerName(); got != "AIOLI" {
		t.Fatalf("default scheduler name = %q, want AIOLI", got)
	}
}

func TestScalerFlagsCarryIntoStackConfig(t *testing.T) {
	o := validOptions()
	o.healthInterval = 100 * time.Millisecond
	o.scaleMax = 12
	o.scaleUp = 8
	o.scaleDown = 1
	o.scaleCooldown = 30 * time.Second
	if err := o.validate(); err != nil {
		t.Fatalf("scaler knobs should validate: %v", err)
	}
	cfg := o.stackConfig()
	if cfg.Elastic == nil {
		t.Fatal("-scale-max did not enable the elastic scaler")
	}
	if cfg.Elastic.Min != o.ions {
		t.Fatalf("Elastic.Min = %d, want the -ions default %d", cfg.Elastic.Min, o.ions)
	}
	if cfg.Elastic.Max != 12 || cfg.Elastic.UpWatermark != 8 || cfg.Elastic.DownWatermark != 1 {
		t.Fatalf("scaler knobs not carried: %+v", cfg.Elastic)
	}
	if cfg.Elastic.UpCooldown != 30*time.Second || cfg.Elastic.DownCooldown != 30*time.Second {
		t.Fatalf("-scale-cooldown not carried to both directions: %+v", cfg.Elastic)
	}
	if cfg.Elastic.MarginalValue == nil {
		t.Fatal("scaler config has no perfmodel forecast")
	}
	// An explicit floor wins over the -ions default.
	o.scaleMin = 2
	o.ions = 4
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	if got := o.stackConfig().Elastic.Min; got != 2 {
		t.Fatalf("explicit -scale-min not carried: %d", got)
	}

	// Default off: with every scaler flag at zero the stack config is the
	// static pool, byte for byte.
	def := validOptions()
	if err := def.validate(); err != nil {
		t.Fatal(err)
	}
	if d := def.stackConfig(); d.Elastic != nil || d.WrapProvisioner != nil {
		t.Fatalf("scaler must default off: %+v", d.Elastic)
	}
}

// TestMarginalAdvisor pins the forecast the scaler consults: positive
// while the apps' curves still climb, zero past every measured peak (the
// scaler reads that as "growth not worth provisioning").
func TestMarginalAdvisor(t *testing.T) {
	mv := marginalValueFor("IOR-MPI,HACC")
	if v := mv(2); v <= 0 {
		t.Fatalf("marginal value at k=2 = %g, want > 0 (both curves still climb)", v)
	}
	if v := mv(16); v != 0 {
		t.Fatalf("marginal value at k=16 = %g, want 0 (past every measured point)", v)
	}
	if mv := marginalValueFor("NOSUCHAPP"); mv(2) != 0 {
		t.Fatal("unknown labels must forecast zero, not panic")
	}
}

// TestGrayFailureFlagsCarryIntoStackConfig pins the gray-failure flag
// set: detection, quarantine, and hedging knobs reach the stack
// verbatim, and the default keeps every plane fully off.
func TestGrayFailureFlagsCarryIntoStackConfig(t *testing.T) {
	o := validOptions()
	o.healthInterval = 100 * time.Millisecond
	o.dedupWindow = 64
	o.slowFactor = 4
	o.slowWindow = 5
	o.quarantineFloor = 2
	o.hedgePct = 0.9
	o.hedgeBudget = 0.25
	if err := o.validate(); err != nil {
		t.Fatalf("gray-failure knobs should validate: %v", err)
	}
	cfg := o.stackConfig()
	if cfg.SlowFactor != 4 || cfg.SlowWindow != 5 {
		t.Fatalf("slow knobs not carried: factor=%g window=%d", cfg.SlowFactor, cfg.SlowWindow)
	}
	if cfg.QuarantineFloor != 2 {
		t.Fatalf("-quarantine-floor not carried: %d", cfg.QuarantineFloor)
	}
	if !cfg.Hedge.Enabled || cfg.Hedge.Pct != 0.9 || cfg.Hedge.Budget != 0.25 {
		t.Fatalf("hedge knobs not carried: %+v", cfg.Hedge)
	}
	// Setting only the budget still enables hedging (the quantile takes
	// its default inside fwd).
	o2 := validOptions()
	o2.dedupWindow = 64
	o2.hedgeBudget = 0.5
	if err := o2.validate(); err != nil {
		t.Fatalf("budget-only hedge should validate: %v", err)
	}
	if cfg2 := o2.stackConfig(); !cfg2.Hedge.Enabled || cfg2.Hedge.Budget != 0.5 {
		t.Fatalf("budget-only hedge not carried: %+v", cfg2.Hedge)
	}
	// And the default remains fully off: zero-value behavior.
	def := validOptions()
	d := def.stackConfig()
	if d.SlowFactor != 0 || d.QuarantineFloor != 0 || d.Hedge.Enabled {
		t.Fatalf("gray-failure planes must default off: %+v", d)
	}
}

func TestStackConfigCarriesIntegrityKnobs(t *testing.T) {
	o := validOptions()
	o.wireChecksum = true
	o.dedupWindow = 128
	if err := o.validate(); err != nil {
		t.Fatalf("integrity knobs should validate: %v", err)
	}
	cfg := o.stackConfig()
	if !cfg.WireChecksum {
		t.Fatal("-wire-checksum not carried into the stack config")
	}
	if cfg.DedupWindow != 128 {
		t.Fatalf("-dedup-window not carried: %d", cfg.DedupWindow)
	}
	// And the default remains fully off: zero-value wire compatibility.
	def := validOptions()
	d := def.stackConfig()
	if d.WireChecksum || d.DedupWindow != 0 {
		t.Fatalf("integrity features must default off: %+v", d)
	}
}
