// Command gkfwd runs the live forwarding system end to end on one machine:
// a PFS store, N I/O-node daemons over loopback TCP, the MCKP arbiter, and
// the Table 3 application kernels issuing real I/O through forwarding
// clients — the paper's GekkoFWD deployment in a box.
//
// Usage:
//
//	gkfwd -ions 4 -apps IOR-MPI,HACC -scheduler AIOLI
//	gkfwd -ions 4 -sweep HACC       # bandwidth vs allocated I/O nodes
package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/apps"
	"repro/internal/livestack"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/units"
)

func main() {
	opts := parseFlags()
	if err := opts.validate(); err != nil {
		fail(err)
	}
	st, err := livestack.Start(opts.stackConfig())
	if err != nil {
		fail(err)
	}
	defer st.Close()
	fmt.Printf("started %d I/O nodes (%s scheduling) and the %s arbiter\n",
		opts.ions, opts.schedulerName(), st.Arbiter.PolicyName())

	if opts.metricsAddr != "" {
		ln, err := net.Listen("tcp", opts.metricsAddr)
		if err != nil {
			fail(err)
		}
		defer ln.Close()
		srv := &http.Server{Handler: telemetry.Handler(st.Telemetry, st.Tracer)}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics and /trace/recent\n", ln.Addr())
	}

	if opts.queue {
		runLiveQueue(st)
		return
	}
	if opts.sweep != "" {
		runSweep(st, opts.sweep, opts.ions)
		return
	}
	runConcurrent(st, strings.Split(opts.appList, ","))
}

func kernelFor(label string) (apps.Kernel, error) {
	k, ok := apps.Registry()[strings.TrimSpace(label)]
	if !ok {
		return nil, fmt.Errorf("unknown application %q", label)
	}
	return k, nil
}

func runConcurrent(st *livestack.Stack, labels []string) {
	var wg sync.WaitGroup
	for i, label := range labels {
		label = strings.TrimSpace(label)
		kernel, err := kernelFor(label)
		if err != nil {
			fail(err)
		}
		spec, err := perfmodel.AppByLabel(label)
		if err != nil {
			fail(err)
		}
		id := fmt.Sprintf("%s#%d", label, i+1)
		client, err := st.NewClient(id)
		if err != nil {
			fail(err)
		}
		got, err := st.Arbiter.JobStarted(policy.FromAppSpec(id, spec))
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %-12s assigned %d I/O nodes (solve %v)\n", id, len(got), st.Arbiter.LastSolveTime())
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := kernel.Run(client, "/"+id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "  %-12s FAILED: %v\n", id, err)
				return
			}
			fmt.Printf("  %-12s wrote %s read %s in %v → %s\n",
				id, units.FormatBytes(rep.WriteBytes), units.FormatBytes(rep.ReadBytes),
				rep.Elapsed.Round(1e6), rep.Bandwidth)
			if err := st.Arbiter.JobFinished(id); err != nil {
				fmt.Fprintf(os.Stderr, "  %-12s finish: %v\n", id, err)
			}
		}()
	}
	wg.Wait()

	fmt.Println("\nI/O-node daemon statistics:")
	for _, d := range st.Daemons {
		s := d.Stats()
		fmt.Printf("  %-6s writes %6d reads %6d in %10s dispatches %6d (merged %d)\n",
			d.ID(), s.Writes, s.Reads, units.FormatBytes(s.BytesIn), s.Dispatches, s.Aggregated)
	}
	m := st.Store.Metrics()
	fmt.Printf("PFS: %s written, %s read, %d seeks, %d lock handoffs, per-OST %v\n",
		units.FormatBytes(m.BytesWritten), units.FormatBytes(m.BytesRead), m.Seeks, m.LockWaits, m.PerOSTBytes)
}

// runSweep measures one kernel's live bandwidth at every ION count — the
// live analogue of a Figure 5 column.
func runSweep(st *livestack.Stack, label string, maxIONs int) {
	kernel, err := kernelFor(label)
	if err != nil {
		fail(err)
	}
	fmt.Printf("live bandwidth sweep for %s:\n", label)
	for k := 0; k <= maxIONs; k++ {
		if k != 0 && k != 1 && k%2 != 0 {
			continue
		}
		client, err := st.NewClient(fmt.Sprintf("%s-k%d", label, k))
		if err != nil {
			fail(err)
		}
		client.SetIONs(st.Addrs[:k])
		rep, err := kernel.Run(client, fmt.Sprintf("/sweep%d", k))
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %d I/O nodes: %s (%s in %v)\n",
			k, rep.Bandwidth, units.FormatBytes(rep.WriteBytes+rep.ReadBytes), rep.Elapsed.Round(1e6))
	}
}

// runLiveQueue replays the §5.3 FIFO queue with tiny-scale kernels.
func runLiveQueue(st *livestack.Stack) {
	q, err := livestack.PaperLiveQueue()
	if err != nil {
		fail(err)
	}
	fmt.Printf("running the §5.3 queue live: %d jobs on 96 virtual compute nodes\n", len(q))
	res, err := livestack.RunQueue(st, q, 96)
	if err != nil {
		fail(err)
	}
	ids := make([]string, 0, len(res.Reports))
	for id := range res.Reports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return res.Start[ids[i]] < res.Start[ids[j]] })
	for _, id := range ids {
		rep := res.Reports[id]
		fmt.Printf("  %-10s %10v → %10v  %12s  %s\n", id,
			res.Start[id].Round(1e6), res.End[id].Round(1e6),
			units.FormatBytes(rep.WriteBytes+rep.ReadBytes), rep.Bandwidth)
	}
	fmt.Printf("queue completed in %v\n", res.Elapsed.Round(1e6))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gkfwd:", err)
	os.Exit(1)
}
