package main

import "testing"

func TestKernelFor(t *testing.T) {
	for _, label := range []string{"BT-C", "HACC", "IOR-MPI", "POSIX-S", "POSIX-L", "MAD", "SIM", "S3D"} {
		k, err := kernelFor(label)
		if err != nil {
			t.Errorf("kernelFor(%q): %v", label, err)
			continue
		}
		if k.Name() != label {
			t.Errorf("kernelFor(%q) returned %q", label, k.Name())
		}
	}
	if _, err := kernelFor("NOPE"); err == nil {
		t.Error("unknown label should fail")
	}
	if _, err := kernelFor(" HACC "); err != nil {
		t.Errorf("labels should be trimmed: %v", err)
	}
}
