// Package repro is a from-scratch Go reproduction of "Arbitration Policies
// for On-Demand User-Level I/O Forwarding on HPC Platforms" (Bez, Miranda,
// Nou, Boito, Cortes, Navaux — IPDPS 2021).
//
// The repository contains the complete system stack the paper builds and
// evaluates:
//
//   - internal/mckp — the Multiple-Choice Knapsack solvers behind the
//     paper's arbitration policy;
//   - internal/policy — ZERO, ONE, STATIC, SIZE, PROCESS, ORACLE, MCKP;
//   - internal/pattern, internal/perfmodel — the access-pattern space and
//     the calibrated performance model standing in for the MareNostrum 4
//     survey measurements;
//   - internal/forge — the FORGE-style policy-evaluation campaign
//     (Figures 2–3);
//   - internal/rpc, internal/pfs, internal/agios, internal/ion,
//     internal/fwd, internal/mapping — the GekkoFWD-style on-demand
//     user-level forwarding stack (client interposition, I/O-node daemons
//     with AGIOS request scheduling, Lustre-like PFS substrate, dynamic
//     remapping);
//   - internal/arbiter, internal/jobs — the live policy solver and the
//     §5.3 dynamic-queue engine (Figure 9);
//   - internal/darshan — Darshan-style characterization feeding MCKP;
//   - internal/apps — the evaluation application kernels of Table 3;
//   - internal/experiments — regeneration of every table and figure.
//
// The benchmarks in bench_test.go regenerate each table/figure; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured comparison.
package repro
