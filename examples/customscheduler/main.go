// Customscheduler shows the AGIOS extension point the paper highlights:
// GekkoFWD embeds a scheduling library precisely so new request schedulers
// can be prototyped at the I/O nodes. Here we implement a deadline-boosted
// shortest-job-first scheduler, plug it into a live daemon, and compare its
// dispatch behaviour against plain FIFO.
//
//	go run ./examples/customscheduler
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/agios"
	"repro/internal/ion"
	"repro/internal/pfs"
	"repro/internal/rpc"
	"repro/internal/units"
)

// DeadlineSJF serves the smallest request first, unless a request has
// waited longer than MaxWait, in which case the oldest starving request is
// served first. It implements agios.Scheduler.
type DeadlineSJF struct {
	MaxWait time.Duration
	q       []*agios.Request
}

// Name implements agios.Scheduler.
func (d *DeadlineSJF) Name() string { return "DEADLINE-SJF" }

// Push implements agios.Scheduler.
func (d *DeadlineSJF) Push(r *agios.Request) { d.q = append(d.q, r) }

// Pop implements agios.Scheduler.
func (d *DeadlineSJF) Pop() (*agios.Request, bool) {
	if len(d.q) == 0 {
		return nil, false
	}
	now := time.Now()
	pick := 0
	starving := false
	for i, r := range d.q {
		if now.Sub(r.Arrival) > d.MaxWait {
			// Oldest starving request wins outright.
			if !starving || r.Arrival.Before(d.q[pick].Arrival) {
				pick, starving = i, true
			}
			continue
		}
		if !starving && r.Size < d.q[pick].Size {
			pick = i
		}
	}
	r := d.q[pick]
	d.q = append(d.q[:pick], d.q[pick+1:]...)
	return r, true
}

// Len implements agios.Scheduler.
func (d *DeadlineSJF) Len() int { return len(d.q) }

func main() {
	store := pfs.NewStore(pfs.Config{})
	daemon := ion.New(ion.Config{
		ID:          "custom0",
		Scheduler:   &DeadlineSJF{MaxWait: 50 * time.Millisecond},
		Dispatchers: 1, // single dispatcher so ordering is observable
	}, store)
	addr, err := daemon.Start("")
	if err != nil {
		log.Fatal(err)
	}
	defer daemon.Close()
	fmt.Printf("I/O node %s running the %s scheduler\n", addr, daemon.SchedulerName())

	// Mixed load: large writes from one client, latency-sensitive small
	// writes from another. SJF lets the small ones jump the queue; the
	// deadline keeps the large ones from starving.
	cli := rpc.Dial(addr, 8)
	defer cli.Close()
	var wg sync.WaitGroup
	results := make(chan string, 64)
	submit := func(tag string, path string, size int64, n int) {
		defer wg.Done()
		buf := make([]byte, size)
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: path, Offset: int64(i) * size, Data: buf}); err != nil {
				results <- fmt.Sprintf("%s: error %v", tag, err)
				return
			}
			results <- fmt.Sprintf("%-6s %8s in %v", tag, units.FormatBytes(size), time.Since(start).Round(time.Microsecond))
		}
	}
	wg.Add(2)
	go submit("bulk", "/bulk", 4*units.MiB, 6)
	go submit("small", "/small", 4*units.KiB, 12)
	wg.Wait()
	close(results)
	for line := range results {
		fmt.Println(" ", line)
	}

	s := daemon.Stats()
	fmt.Printf("daemon handled %d writes, %s ingress\n", s.Writes, units.FormatBytes(s.BytesIn))
	fmt.Println("swap in agios.NewFIFO()/NewSJF()/NewAIOLI()/NewTWINS() to compare policies")
}
