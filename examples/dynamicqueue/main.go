// Dynamicqueue reproduces the paper's §5.3 experiment: the 14-job FIFO
// queue on 96 compute nodes and 12 I/O nodes, executed under ONE, STATIC,
// SIZE, and MCKP, with the per-job allocation timelines that show MCKP
// reshaping allocations as the running mix changes.
//
//	go run ./examples/dynamicqueue
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/jobs"
	"repro/internal/policy"
)

func main() {
	queue, err := jobs.PaperQueue()
	if err != nil {
		log.Fatal(err)
	}
	configs := []struct {
		name   string
		pol    policy.Policy
		sticky bool
	}{
		{"ONE", policy.One{}, true},
		{"STATIC", policy.Static{SystemCompute: 96, SystemIONs: 12}, true},
		{"SIZE", policy.Proportional{}, false},
		{"MCKP", policy.MCKP{}, false},
	}

	var staticAgg, mckpAgg float64
	for _, cfg := range configs {
		res, err := jobs.SimulateQueue(jobs.SimConfig{
			Jobs:         queue,
			ComputeNodes: 96,
			IONs:         12,
			Policy:       cfg.pol,
			Sticky:       cfg.sticky,
			AllowDirect:  false, // the paper's platform restriction
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s — aggregate %.2f GB/s, makespan %.1f s, %d reallocations ===\n",
			cfg.name, res.Aggregate.GBps(), res.Makespan, res.Reallocations)
		ids := make([]string, 0, len(res.PerJob))
		for id := range res.PerJob {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return res.PerJob[ids[i]].Start < res.PerJob[ids[j]].Start })
		for _, id := range ids {
			o := res.PerJob[id]
			fmt.Printf("  %-10s %7.1f→%7.1fs  %9s  allocation:", id, o.Start, o.End, o.Bandwidth)
			for _, span := range o.Timeline {
				fmt.Printf(" %d×%.0fs", span.IONs, span.End-span.Start)
			}
			fmt.Println()
		}
		fmt.Println()
		fmt.Println(res.Gantt(72))
		switch cfg.name {
		case "STATIC":
			staticAgg = float64(res.Aggregate)
		case "MCKP":
			mckpAgg = float64(res.Aggregate)
		}
	}
	fmt.Printf("dynamic MCKP over STATIC: %.2f× (paper: 1.9×, 8.41 → 16.02 GB/s)\n", mckpAgg/staticAgg)
}
