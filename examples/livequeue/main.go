// Livequeue executes the paper's §5.3 job queue LIVE: fourteen real
// application kernels (tiny-scale volumes) run through twelve TCP I/O-node
// daemons on 96 virtual compute nodes, with the MCKP arbiter re-deciding
// allocations every time a job starts or finishes — the whole GekkoFWD
// deployment exercised end to end in a few seconds.
//
//	go run ./examples/livequeue
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/livestack"
	"repro/internal/units"
)

func main() {
	stack, err := livestack.Start(livestack.Config{IONs: 12})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	queue, err := livestack.PaperLiveQueue()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running the §5.3 queue live: %d jobs, 96 compute nodes, 12 I/O nodes, MCKP\n\n", len(queue))

	res, err := livestack.RunQueue(stack, queue, 96)
	if err != nil {
		log.Fatal(err)
	}

	ids := make([]string, 0, len(res.Reports))
	for id := range res.Reports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return res.Start[ids[i]] < res.Start[ids[j]] })
	fmt.Printf("%-10s %12s %12s %14s %12s\n", "job", "start", "end", "volume", "bandwidth")
	for _, id := range ids {
		rep := res.Reports[id]
		fmt.Printf("%-10s %12v %12v %14s %12s\n",
			id, res.Start[id].Round(1e6), res.End[id].Round(1e6),
			units.FormatBytes(rep.WriteBytes+rep.ReadBytes), rep.Bandwidth)
	}

	fmt.Printf("\nqueue completed in %v\n", res.Elapsed.Round(1e6))
	fmt.Println("\nI/O-node daemon statistics:")
	for _, d := range stack.Daemons {
		s := d.Stats()
		fmt.Printf("  %-6s %6d writes %6d reads %10s in, %d dispatches (%d requests merged)\n",
			d.ID(), s.Writes, s.Reads, units.FormatBytes(s.BytesIn), s.Dispatches, s.Aggregated)
	}
	m := stack.Store.Metrics()
	fmt.Printf("PFS totals: %s written, %s read across %d OSTs\n",
		units.FormatBytes(m.BytesWritten), units.FormatBytes(m.BytesRead), len(m.PerOSTBytes))
}
