// Policycompare reproduces the paper's §5.2 allocation analysis: the six
// evaluation applications arbitrated by every policy across pool sizes
// (Figure 6), the Table 4 allocation detail at 12 I/O nodes, and the
// headline improvement ratios.
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	fig6, err := experiments.ExpFigure6()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig6.Table())
	fmt.Printf("MCKP over STATIC at 12 IONs: %.2f×  (paper: 4.59×)\n", fig6.MCKPOverStatic12)
	fmt.Printf("MCKP over SIZE   at 12 IONs: %.2f×  (paper: 4.59×)\n", fig6.MCKPOverSize12)
	fmt.Printf("MCKP over PROCESS at 12 IONs: %.2f× (paper: 4.1×)\n", fig6.MCKPOverProcess12)
	fmt.Printf("MCKP first matches ORACLE with %d I/O nodes (paper: 36)\n\n", fig6.OracleMatchPool)

	t4, err := experiments.ExpTable4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t4.Table())

	fig7, err := experiments.ExpFigure7()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig7.Table())
	fmt.Println("(100% = the bandwidth the application would get running alone")
	fmt.Println(" under the same I/O-node limit; the cost of global optimization.)")
}
