// Quickstart: bring up the live forwarding system, register a job with the
// MCKP arbiter, and move data through the I/O nodes — then watch a dynamic
// remap happen mid-run without disrupting the application.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/livestack"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/units"
)

func main() {
	// A mini cluster: one PFS, four I/O-node daemons over TCP, and an
	// arbiter running the paper's MCKP policy.
	stack, err := livestack.Start(livestack.Config{IONs: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	fmt.Printf("stack up: %d I/O nodes at %v\n", len(stack.Addrs), stack.Addrs)

	// A forwarding client for our application. Until the arbiter assigns
	// I/O nodes, it talks to the PFS directly.
	client, err := stack.NewClient("demo")
	if err != nil {
		log.Fatal(err)
	}

	// Register the job: the arbiter solves the MCKP instance and
	// publishes a mapping, which the client picks up asynchronously.
	spec, err := perfmodel.AppByLabel("IOR-MPI")
	if err != nil {
		log.Fatal(err)
	}
	assigned, err := stack.Arbiter.JobStarted(policy.FromAppSpec("demo", spec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arbiter assigned %d I/O nodes in %v\n", len(assigned), stack.Arbiter.LastSolveTime())
	if err := livestack.WaitForAllocation(client, len(assigned), 2*time.Second); err != nil {
		log.Fatal(err)
	}

	// Do some I/O through the forwarding layer.
	payload := make([]byte, 4*units.MiB)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	if _, err := client.Write("/demo/data", 0, payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s through forwarding in %v\n",
		units.FormatBytes(int64(len(payload))), time.Since(start).Round(time.Millisecond))

	// A second job arrives: the arbiter re-arbitrates and our allocation
	// shrinks — mid-run, without touching the application.
	spec2, _ := perfmodel.AppByLabel("HACC")
	if _, err := stack.Arbiter.JobStarted(policy.FromAppSpec("neighbour", spec2)); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(client.IONs()) == len(assigned) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("after the neighbour arrived our allocation is %d I/O nodes\n", len(client.IONs()))

	// Keep writing and read everything back: the remap was transparent.
	if _, err := client.Write("/demo/data", int64(len(payload)), payload); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 2*len(payload))
	if _, err := client.Read("/demo/data", 0, buf); err != nil {
		log.Fatal(err)
	}
	for i := range payload {
		if buf[i] != payload[i] || buf[len(payload)+i] != payload[i] {
			log.Fatalf("data corrupted at %d", i)
		}
	}
	fmt.Println("read back verified: dynamic remap was transparent")

	st := client.Stats()
	fmt.Printf("client stats: %d forwarded ops, %d direct ops, %d remaps\n",
		st.ForwardedOps, st.DirectOps, st.RemapsApplied)
}
