// Sharednode demonstrates the paper's §3.1 sharing extension: on a
// platform where applications cannot bypass the forwarding layer and I/O
// nodes are scarce, one system-wide shared I/O node absorbs the
// least-performant applications (valued at the paper's pessimistic
// bandwidth(1)/numApps estimate) so the dedicated nodes concentrate on the
// applications that convert them into bandwidth.
//
//	go run ./examples/sharednode
package main

import (
	"fmt"
	"log"

	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/units"
)

func app(id string, mbps1, mbps2, mbps4, mbps8 float64) policy.Application {
	return policy.Application{
		ID: id, Nodes: 16, Processes: 64,
		Curve: perfmodel.NewCurve(
			perfmodel.Point{IONs: 1, Bandwidth: units.BandwidthFromMBps(mbps1)},
			perfmodel.Point{IONs: 2, Bandwidth: units.BandwidthFromMBps(mbps2)},
			perfmodel.Point{IONs: 4, Bandwidth: units.BandwidthFromMBps(mbps4)},
			perfmodel.Point{IONs: 8, Bandwidth: units.BandwidthFromMBps(mbps8)},
		),
	}
}

func main() {
	// One I/O-hungry application and three that barely profit from
	// forwarding — but direct PFS access is not available, so under plain
	// MCKP everyone must occupy at least one dedicated node.
	apps := []policy.Application{
		app("hungry", 500, 1200, 2800, 6000),
		app("meek-1", 50, 55, 58, 60),
		app("meek-2", 40, 44, 46, 48),
		app("meek-3", 30, 33, 35, 36),
	}
	const pool = 10

	evaluate := func(name string, alloc policy.Allocation, shared []string) {
		users := map[string]bool{}
		for _, id := range shared {
			users[id] = true
		}
		var total float64
		fmt.Printf("%s:\n", name)
		for _, a := range apps {
			if users[a.ID] {
				bw1, _ := a.Curve.At(1)
				est := float64(bw1) / float64(len(apps))
				total += est
				fmt.Printf("  %-8s shared node      (est %7.1f MB/s)\n", a.ID, est/1e6)
				continue
			}
			bw, _ := a.Curve.At(alloc[a.ID])
			total += float64(bw)
			fmt.Printf("  %-8s %d dedicated IONs (%9.1f MB/s)\n", a.ID, alloc[a.ID], bw.MBps())
		}
		fmt.Printf("  aggregate: %.1f MB/s\n\n", total/1e6)
	}

	plain, err := (policy.MCKP{}).Allocate(apps, pool)
	if err != nil {
		log.Fatal(err)
	}
	evaluate("plain MCKP (everyone needs a dedicated node)", plain, nil)

	withShared := policy.WithShared{}
	alloc, shared, err := withShared.AllocateShared(apps, pool)
	if err != nil {
		log.Fatal(err)
	}
	evaluate(fmt.Sprintf("%s (one node reserved for sharing)", withShared.Name()), alloc, shared)

	fmt.Println("the meek applications cost almost nothing on the shared node,")
	fmt.Println("freeing the dedicated pool for the application that can use it.")
}
