// Tracedriven shows the paper's §3.1 characterization pipeline end to end:
// run an application once under Darshan-style tracing, extract its base
// access pattern from the counters, estimate its bandwidth-vs-I/O-node
// curve with the performance model, and feed that curve to the MCKP policy
// — no per-configuration profiling runs needed.
//
//	go run ./examples/tracedriven
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/darshan"
	"repro/internal/perfmodel"
	"repro/internal/pfs"
	"repro/internal/policy"
	"repro/internal/units"
)

func main() {
	// First execution of an unknown application: trace it.
	store := pfs.NewStore(pfs.Config{})
	tracer := darshan.NewTracer(store)
	kernel := apps.IOR{
		Label: "mystery-app", Ranks: 32,
		BlockSize: 2 * units.MiB, TransferSize: 128 * units.KiB,
		ReadBack: false,
	}
	if _, err := kernel.Run(tracer, "/run1"); err != nil {
		log.Fatal(err)
	}
	rep := tracer.Report()
	fmt.Printf("trace: %d files, %d writes (%s), %d consecutive, median request %s\n",
		rep.Files, rep.WriteOps, units.FormatBytes(rep.BytesWritten),
		rep.ConsecWrites, units.FormatBytes(rep.MedianReqSize))

	// Extract the base access pattern (the scheduler knows the geometry).
	const nodes, procs = 8, 32
	pat := rep.ExtractPattern(nodes, procs)
	fmt.Printf("extracted pattern: %s\n", pat)

	// Estimate the full curve from the pattern — the paper's alternative
	// to exploratory runs at every forwarding configuration.
	curve := darshan.EstimateCurve(pat, perfmodel.Default(), 8, true)
	fmt.Println("estimated bandwidth curve:")
	for _, pt := range curve.Points() {
		fmt.Printf("  %d I/O nodes: %s\n", pt.IONs, pt.Bandwidth)
	}

	// The curve becomes the application's MCKP class next time it runs
	// alongside others.
	known := policy.Application{ID: "mystery-app", Nodes: nodes, Processes: procs, Curve: curve}
	neighbour, err := perfmodel.AppByLabel("IOR-MPI")
	if err != nil {
		log.Fatal(err)
	}
	appsList := []policy.Application{known, policy.FromAppSpec("IOR-MPI", neighbour)}
	alloc, err := (policy.MCKP{}).Allocate(appsList, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCKP decision with 12 I/O nodes: mystery-app=%d, IOR-MPI=%d\n",
		alloc["mystery-app"], alloc["IOR-MPI"])
	total, err := policy.SumBandwidth(appsList, alloc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted aggregate: %s\n", total)
}
