// Package agios is the request-scheduling library embedded in the I/O-node
// daemons, playing the role AGIOS plays in GekkoFWD: once a forwarded
// request arrives at an I/O node it is handed to a scheduler that decides
// when (and merged with what) it is dispatched to the PFS.
//
// Five schedulers are provided, mirroring the families AGIOS offers:
//
//   - FIFO: arrival order (the baseline in Ohta et al.);
//   - SJF: shortest job (smallest request) first;
//   - HBRR: handle-based round-robin with a per-handle request quantum and
//     contiguous aggregation (Ohta et al.'s quantum-based scheduler);
//   - AIOLI: per-file offset-ordered service with a byte quantum and
//     contiguous aggregation, after the aIOLi scheduler;
//   - TWINS: time-windowed service per storage target, coordinating access
//     to data servers to avoid contention (Bez et al., PDP 2017).
//
// Schedulers are deliberately not safe for concurrent use; wrap them in a
// Queue for the daemon's producer/consumer pattern.
package agios

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// OpType distinguishes reads from writes.
type OpType int

// Request operations.
const (
	OpWrite OpType = iota
	OpRead
)

func (o OpType) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Request is one forwarded I/O request awaiting dispatch.
type Request struct {
	Path   string
	Offset int64
	Size   int64
	Op     OpType
	// Data is the write payload (nil for reads).
	Data []byte
	// Arrival is stamped by the queue when the request is pushed.
	Arrival time.Time
	// Seq is a monotonically increasing tie-breaker set by the queue.
	Seq uint64
	// Trace is the originating request's telemetry trace ID (0 =
	// untraced); the dispatcher uses it to attribute scheduling and PFS
	// hops to the right trace record.
	Trace uint64
	// Priority is the request's QoS scheduling tier as carried on the
	// wire (see internal/qos: 3 guaranteed, 2 standard, 1 scavenger,
	// 0 unclassed — treated like standard). Only WFQ consults it; every
	// other scheduler preserves pre-QoS ordering.
	Priority uint8
	// Children holds the original requests when this request is an
	// aggregate produced by a merging scheduler.
	Children []*Request
	// OnComplete, if set, is invoked by the dispatcher with the
	// execution outcome. Aggregates fan completion out to children.
	OnComplete func(error)
}

// End returns the request's exclusive end offset.
func (r *Request) End() int64 { return r.Offset + r.Size }

// Complete invokes OnComplete on the request, or on every child of an
// aggregate that has no own handler.
func (r *Request) Complete(err error) {
	if r.OnComplete != nil {
		r.OnComplete(err)
		return
	}
	for _, c := range r.Children {
		c.Complete(err)
	}
}

// Scheduler orders requests. Implementations are single-goroutine; use
// Queue to share one across goroutines.
type Scheduler interface {
	// Name identifies the scheduler ("FIFO", "SJF", "AIOLI", "TWINS").
	Name() string
	// Push enqueues a request.
	Push(r *Request)
	// Pop removes and returns the next request to dispatch. ok is false
	// when the scheduler is empty. The returned request may be an
	// aggregate with Children.
	Pop() (r *Request, ok bool)
	// Len reports the number of pending (non-aggregated) requests.
	Len() int
}

// --- FIFO -----------------------------------------------------------------

// FIFO dispatches requests in arrival order.
type FIFO struct {
	q []*Request
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "FIFO" }

// Push implements Scheduler.
func (f *FIFO) Push(r *Request) { f.q = append(f.q, r) }

// Pop implements Scheduler.
func (f *FIFO) Pop() (*Request, bool) {
	if len(f.q) == 0 {
		return nil, false
	}
	r := f.q[0]
	f.q[0] = nil
	f.q = f.q[1:]
	return r, true
}

// Len implements Scheduler.
func (f *FIFO) Len() int { return len(f.q) }

// --- SJF ------------------------------------------------------------------

// SJF dispatches the smallest request first (ties by arrival sequence).
type SJF struct {
	h sjfHeap
}

// NewSJF returns an empty shortest-job-first scheduler.
func NewSJF() *SJF { return &SJF{} }

// Name implements Scheduler.
func (s *SJF) Name() string { return "SJF" }

// Push implements Scheduler.
func (s *SJF) Push(r *Request) { heap.Push(&s.h, r) }

// Pop implements Scheduler.
func (s *SJF) Pop() (*Request, bool) {
	if s.h.Len() == 0 {
		return nil, false
	}
	return heap.Pop(&s.h).(*Request), true
}

// Len implements Scheduler.
func (s *SJF) Len() int { return s.h.Len() }

type sjfHeap []*Request

func (h sjfHeap) Len() int { return len(h) }
func (h sjfHeap) Less(i, j int) bool {
	if h[i].Size != h[j].Size {
		return h[i].Size < h[j].Size
	}
	return h[i].Seq < h[j].Seq
}
func (h sjfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sjfHeap) Push(x any)   { *h = append(*h, x.(*Request)) }
func (h *sjfHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}

// --- AIOLI ----------------------------------------------------------------

// AIOLI serves each file's requests in offset order, aggregating contiguous
// same-operation requests into one dispatch, and switches files after a
// quantum of bytes so no file starves the rest.
type AIOLI struct {
	// Quantum is the byte budget served from one file before moving on;
	// ≤0 selects 8 MiB.
	Quantum int64
	// MaxAggregate bounds the size of a merged dispatch; ≤0 selects the
	// quantum.
	MaxAggregate int64

	files map[string]*fileQueue
	order []string // round-robin order of files with pending work
	cur   int      // index into order
	spent int64    // bytes served from the current file
	count int
}

type fileQueue struct {
	reqs []*Request // kept offset-sorted
}

// NewAIOLI returns an aIOLi-style scheduler with the given quantum.
func NewAIOLI(quantum int64) *AIOLI {
	if quantum <= 0 {
		quantum = 8 << 20
	}
	return &AIOLI{Quantum: quantum, files: make(map[string]*fileQueue)}
}

// Name implements Scheduler.
func (a *AIOLI) Name() string { return "AIOLI" }

// Push implements Scheduler.
func (a *AIOLI) Push(r *Request) {
	fq, ok := a.files[r.Path]
	if !ok {
		fq = &fileQueue{}
		a.files[r.Path] = fq
		a.order = append(a.order, r.Path)
	}
	fq.insert(r) // keeps offset order, stable for equal offsets
	a.count++
}

// Pop implements Scheduler: it returns the lowest-offset pending request of
// the current file, merged with every contiguous successor of the same
// operation up to MaxAggregate.
func (a *AIOLI) Pop() (*Request, bool) {
	if a.count == 0 {
		return nil, false
	}
	// Advance to a file with pending work, honoring the quantum.
	for n := 0; n < len(a.order); n++ {
		path := a.order[a.cur]
		fq := a.files[path]
		if len(fq.reqs) == 0 || a.spent >= a.Quantum {
			a.advance()
			continue
		}
		maxAgg := a.MaxAggregate
		if maxAgg <= 0 {
			maxAgg = a.Quantum
		}
		merged, taken := mergeHead(fq.reqs, maxAgg)
		fq.reqs = fq.reqs[taken:]
		a.count -= len(merged.Children)
		if len(merged.Children) == 0 {
			a.count--
		}
		a.spent += merged.Size
		if len(fq.reqs) == 0 {
			a.advance()
		}
		return merged, true
	}
	// All quanta exhausted: reset and retry once.
	a.spent = 0
	for n := 0; n < len(a.order); n++ {
		if len(a.files[a.order[a.cur]].reqs) > 0 {
			return a.Pop()
		}
		a.cur = (a.cur + 1) % len(a.order)
	}
	return nil, false
}

func (a *AIOLI) advance() {
	a.spent = 0
	if len(a.order) > 0 {
		a.cur = (a.cur + 1) % len(a.order)
	}
}

// Len implements Scheduler.
func (a *AIOLI) Len() int { return a.count }

// mergeHead merges the head request of an offset-sorted slice with every
// directly contiguous successor, up to maxBytes total, returning the merged
// request and how many inputs were consumed. Only writes are merged — a
// merged read would need its result scattered back to the children, which
// the dispatcher does not do. A single request is returned unwrapped.
func mergeHead(reqs []*Request, maxBytes int64) (*Request, int) {
	head := reqs[0]
	if head.Op != OpWrite {
		return head, 1
	}
	taken := 1
	total := head.Size
	for taken < len(reqs) {
		next := reqs[taken]
		if next.Op != head.Op || next.Offset != reqs[taken-1].End() || total+next.Size > maxBytes {
			break
		}
		total += next.Size
		taken++
	}
	if taken == 1 {
		return head, 1
	}
	merged := &Request{
		Path:    head.Path,
		Offset:  head.Offset,
		Size:    total,
		Op:      head.Op,
		Arrival: head.Arrival,
		Seq:     head.Seq,
	}
	merged.Children = append(merged.Children, reqs[:taken]...)
	if head.Op == OpWrite {
		merged.Data = make([]byte, 0, total)
		for _, r := range reqs[:taken] {
			merged.Data = append(merged.Data, r.Data...)
		}
	}
	return merged, taken
}

// --- TWINS ----------------------------------------------------------------

// TWINS serves requests in time windows per storage target: during one
// window only requests destined to the current target are dispatched, so
// the I/O nodes' accesses to each data server are coordinated instead of
// interleaved. Requests for other targets wait for their window.
type TWINS struct {
	// Window is the per-target service window; ≤0 selects 1 ms.
	Window time.Duration
	// Targets is the number of storage targets; ≤0 selects 2.
	Targets int
	// TargetOf maps a request to a target; nil selects offset/stripe
	// modulo Targets with a 1 MiB stripe.
	TargetOf func(*Request) int
	// now is the clock (overridable in tests).
	now func() time.Time

	queues      [][]*Request
	cur         int
	windowStart time.Time
	count       int
}

// NewTWINS returns a TWINS scheduler with the given window and target
// count.
func NewTWINS(window time.Duration, targets int) *TWINS {
	if window <= 0 {
		window = time.Millisecond
	}
	if targets <= 0 {
		targets = 2
	}
	t := &TWINS{Window: window, Targets: targets, now: time.Now}
	t.queues = make([][]*Request, targets)
	return t
}

// Name implements Scheduler.
func (t *TWINS) Name() string { return "TWINS" }

func (t *TWINS) target(r *Request) int {
	if t.TargetOf != nil {
		tg := t.TargetOf(r)
		if tg < 0 || tg >= t.Targets {
			tg = 0
		}
		return tg
	}
	const stripe = 1 << 20
	return int((r.Offset / stripe) % int64(t.Targets))
}

// Push implements Scheduler.
func (t *TWINS) Push(r *Request) {
	tg := t.target(r)
	t.queues[tg] = append(t.queues[tg], r)
	t.count++
}

// Pop implements Scheduler. Within a window only the current target's
// queue is served; when the window expires (or the queue is empty) the
// scheduler rotates to the next target.
func (t *TWINS) Pop() (*Request, bool) {
	if t.count == 0 {
		return nil, false
	}
	now := t.now()
	if t.windowStart.IsZero() {
		t.windowStart = now
	}
	if now.Sub(t.windowStart) >= t.Window {
		t.rotate(now)
	}
	// If the current target has nothing pending, rotate until one does.
	for n := 0; n < t.Targets && len(t.queues[t.cur]) == 0; n++ {
		t.rotate(now)
	}
	q := t.queues[t.cur]
	if len(q) == 0 {
		return nil, false
	}
	r := q[0]
	q[0] = nil
	t.queues[t.cur] = q[1:]
	t.count--
	return r, true
}

func (t *TWINS) rotate(now time.Time) {
	t.cur = (t.cur + 1) % t.Targets
	t.windowStart = now
}

// Len implements Scheduler.
func (t *TWINS) Len() int { return t.count }

// --- Queue ----------------------------------------------------------------

// Typed queue-admission failures, distinguishable with errors.Is so the
// daemon can answer a full queue with a busy (shed) response and a closed
// queue with a terminal error.
var (
	// ErrQueueClosed reports a Push after Close. A racing Push/Close pair
	// resolves deterministically: either the push wins (the request is
	// enqueued and will be drained) or it observes this error — never a
	// panic, never a silent drop.
	ErrQueueClosed = errors.New("agios: queue closed")
	// ErrQueueFull reports a Push rejected by bounded admission: depth
	// reached the capacity (high watermark) and has not yet drained back
	// to the low watermark.
	ErrQueueFull = errors.New("agios: queue full")
)

// Queue makes a Scheduler safe for the daemon's producer/consumer use:
// producers Push, dispatcher goroutines PopWait. Closing wakes all waiters.
//
// A queue may be bounded with SetCapacity: admission then follows a
// high/low-watermark hysteresis — once depth reaches the capacity, Push
// fails with ErrQueueFull until dispatch drains depth back to the low
// watermark. The hysteresis keeps a saturated daemon from flapping between
// accept and reject on every pop.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	sched  Scheduler
	seq    uint64
	closed bool

	capacity  int  // 0 = unbounded (the historical default)
	lowWater  int  // resume-admission threshold (< capacity)
	saturated bool // above high watermark, not yet drained to lowWater

	// Telemetry handles (nil when uninstrumented; all no-ops then).
	telDepth     *telemetry.Gauge
	telCoalesced *telemetry.Counter
	telSaturated *telemetry.Gauge
	telWait      *telemetry.Histogram
}

// NewQueue wraps sched.
func NewQueue(sched Scheduler) *Queue {
	q := &Queue{sched: sched}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// SetCapacity bounds the queue at capacity pending requests with a
// resume-admission threshold of lowWater (≤0 selects capacity/2; values ≥
// capacity are clamped to capacity-1). capacity ≤ 0 removes the bound.
// Call before the queue is shared, or between workloads.
func (q *Queue) SetCapacity(capacity, lowWater int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if capacity <= 0 {
		q.capacity, q.lowWater, q.saturated = 0, 0, false
		q.telSaturated.Set(0)
		return
	}
	if lowWater <= 0 {
		lowWater = capacity / 2
	}
	if lowWater >= capacity {
		lowWater = capacity - 1
	}
	q.capacity, q.lowWater = capacity, lowWater
}

// Capacity reports the admission bound (0 = unbounded).
func (q *Queue) Capacity() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.capacity
}

// Saturated reports whether the queue is currently rejecting pushes
// (depth crossed the capacity and has not drained to the low watermark).
func (q *Queue) Saturated() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.saturated
}

// Instrument attaches queue metrics to reg: pending depth, client
// requests coalesced into aggregates, and queue-wait latency. label is an
// optional Prometheus label set (e.g. `{node="ion00"}`) appended to every
// series name so per-daemon queues stay distinguishable in one registry.
// Call before the queue is shared across goroutines.
func (q *Queue) Instrument(reg *telemetry.Registry, label string) {
	q.telDepth = reg.Gauge("agios_queue_depth" + label)
	q.telCoalesced = reg.Counter("agios_coalesced_total" + label)
	q.telSaturated = reg.Gauge("agios_queue_saturated" + label)
	q.telWait = reg.Histogram("agios_queue_wait_seconds"+label, telemetry.LatencyBuckets())
}

// SchedulerName reports the wrapped scheduler's name.
func (q *Queue) SchedulerName() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sched.Name()
}

// Push enqueues r, stamping arrival time and sequence. It fails with
// ErrQueueClosed after Close, and with ErrQueueFull while a bounded queue
// is saturated (see SetCapacity).
func (q *Queue) Push(r *Request) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.capacity > 0 {
		if depth := q.sched.Len(); q.saturated || depth >= q.capacity {
			if !q.saturated {
				q.saturated = true
				q.telSaturated.Set(1)
			}
			return ErrQueueFull
		}
	}
	q.seq++
	r.Seq = q.seq
	if r.Arrival.IsZero() {
		r.Arrival = time.Now()
	}
	q.sched.Push(r)
	q.telDepth.Add(1)
	q.cond.Signal()
	return nil
}

// recordPop maintains queue metrics and admission state for one popped
// (possibly aggregate) request. Caller holds the lock.
func (q *Queue) recordPop(r *Request) {
	if n := int64(len(r.Children)); n > 0 {
		q.telDepth.Add(-n)
		q.telCoalesced.Add(n)
	} else {
		q.telDepth.Add(-1)
	}
	if q.saturated && q.sched.Len() <= q.lowWater {
		q.saturated = false
		q.telSaturated.Set(0)
	}
	if q.telWait != nil && !r.Arrival.IsZero() {
		q.telWait.ObserveDuration(time.Since(r.Arrival))
	}
}

// PopWait blocks until a request is available or the queue is closed; ok
// is false only when closed and drained.
func (q *Queue) PopWait() (*Request, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if r, ok := q.sched.Pop(); ok {
			q.recordPop(r)
			return r, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// TryPop returns immediately.
func (q *Queue) TryPop() (*Request, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	r, ok := q.sched.Pop()
	if ok {
		q.recordPop(r)
	}
	return r, ok
}

// Len reports pending requests.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sched.Len()
}

// Close marks the queue closed and wakes all waiters. Pending requests can
// still be drained with PopWait/TryPop.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// NewByName constructs a scheduler from its AGIOS-style name. Supported:
// "FIFO", "SJF", "AIOLI", "TWINS", "HBRR", "WFQ".
func NewByName(name string) (Scheduler, error) {
	switch name {
	case "FIFO", "fifo", "":
		return NewFIFO(), nil
	case "SJF", "sjf":
		return NewSJF(), nil
	case "AIOLI", "aioli":
		return NewAIOLI(0), nil
	case "TWINS", "twins":
		return NewTWINS(0, 0), nil
	case "HBRR", "hbrr":
		return NewHBRR(0), nil
	case "WFQ", "wfq":
		return NewWFQ(0), nil
	default:
		return nil, fmt.Errorf("agios: unknown scheduler %q", name)
	}
}
