package agios

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func req(path string, off, size int64) *Request {
	return &Request{Path: path, Offset: off, Size: size, Op: OpWrite, Data: make([]byte, size)}
}

func drain(s Scheduler) []*Request {
	var out []*Request
	for {
		r, ok := s.Pop()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	for i := int64(0); i < 5; i++ {
		r := req("/f", i*10, 10)
		r.Seq = uint64(i)
		f.Push(r)
	}
	got := drain(f)
	if len(got) != 5 {
		t.Fatalf("drained %d", len(got))
	}
	for i, r := range got {
		if r.Offset != int64(i)*10 {
			t.Fatalf("FIFO out of order at %d: %+v", i, r)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("empty pop should be !ok")
	}
}

func TestSJFOrder(t *testing.T) {
	s := NewSJF()
	sizes := []int64{500, 10, 300, 10, 100}
	for i, sz := range sizes {
		r := req("/f", int64(i)*1000, sz)
		r.Seq = uint64(i)
		s.Push(r)
	}
	got := drain(s)
	want := []int64{10, 10, 100, 300, 500}
	for i, r := range got {
		if r.Size != want[i] {
			t.Fatalf("SJF order wrong at %d: got %d want %d", i, r.Size, want[i])
		}
	}
	// Equal sizes: arrival order (seq 1 before seq 3).
	if got[0].Seq > got[1].Seq {
		t.Fatal("SJF tie-break not FIFO")
	}
}

func TestAIOLIAggregatesContiguous(t *testing.T) {
	a := NewAIOLI(1 << 20)
	// Three contiguous writes pushed out of order, plus a distant one.
	for _, off := range []int64{100, 0, 50, 5000} {
		size := int64(50)
		if off == 5000 {
			size = 10
		}
		r := req("/f", off, size)
		r.Data = bytes.Repeat([]byte{byte(off % 251)}, int(size))
		a.Push(r)
	}
	merged, ok := a.Pop()
	if !ok {
		t.Fatal("pop failed")
	}
	if merged.Offset != 0 || merged.Size != 150 {
		t.Fatalf("merge wrong: off=%d size=%d", merged.Offset, merged.Size)
	}
	if len(merged.Children) != 3 {
		t.Fatalf("want 3 children, got %d", len(merged.Children))
	}
	// Payload is the children's payloads in offset order.
	want := append(append(bytes.Repeat([]byte{0}, 50), bytes.Repeat([]byte{50}, 50)...), bytes.Repeat([]byte{100}, 50)...)
	if !bytes.Equal(merged.Data, want) {
		t.Fatal("merged payload wrong")
	}
	rest, ok := a.Pop()
	if !ok || rest.Offset != 5000 {
		t.Fatalf("second pop: %+v %v", rest, ok)
	}
	if a.Len() != 0 {
		t.Fatalf("len = %d", a.Len())
	}
}

func TestAIOLIDoesNotMergeAcrossGapsOrOps(t *testing.T) {
	a := NewAIOLI(1 << 20)
	a.Push(req("/f", 0, 10))
	gap := req("/f", 20, 10) // hole at [10,20)
	a.Push(gap)
	r1, _ := a.Pop()
	if r1.Size != 10 || len(r1.Children) != 0 {
		t.Fatalf("merged across a gap: %+v", r1)
	}
	b := NewAIOLI(1 << 20)
	b.Push(req("/f", 0, 10))
	read := &Request{Path: "/f", Offset: 10, Size: 10, Op: OpRead}
	b.Push(read)
	r2, _ := b.Pop()
	if len(r2.Children) != 0 {
		t.Fatal("merged write with read")
	}
}

func TestAIOLIMaxAggregate(t *testing.T) {
	a := NewAIOLI(1 << 20)
	a.MaxAggregate = 100
	for i := int64(0); i < 4; i++ {
		a.Push(req("/f", i*50, 50))
	}
	r, _ := a.Pop()
	if r.Size != 100 {
		t.Fatalf("aggregate should cap at 100, got %d", r.Size)
	}
}

func TestAIOLIQuantumRotatesFiles(t *testing.T) {
	a := NewAIOLI(100)
	a.MaxAggregate = 100
	// File A has 300 contiguous bytes, file B has 100.
	for i := int64(0); i < 3; i++ {
		a.Push(req("/a", i*100, 100))
	}
	a.Push(req("/b", 0, 100))
	first, _ := a.Pop()
	second, _ := a.Pop()
	if first.Path != "/a" || second.Path != "/b" {
		t.Fatalf("quantum rotation wrong: %s then %s", first.Path, second.Path)
	}
}

func TestAIOLIOffsetOrderWithinFile(t *testing.T) {
	a := NewAIOLI(1 << 30)
	offs := []int64{900, 100, 500, 300, 700}
	for _, o := range offs {
		a.Push(req("/f", o, 10))
	}
	var got []int64
	for {
		r, ok := a.Pop()
		if !ok {
			break
		}
		got = append(got, r.Offset)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("offsets not sorted: %v", got)
		}
	}
}

func TestTWINSWindowsByTarget(t *testing.T) {
	tw := NewTWINS(time.Hour, 2) // window never expires during the test
	now := time.Unix(0, 0)
	tw.now = func() time.Time { return now }
	// Target 0: offsets 0 and 2 MiB; target 1: offset 1 MiB.
	tw.Push(req("/f", 0, 10))
	tw.Push(req("/f", 1<<20, 10))
	tw.Push(req("/f", 2<<20, 10))
	a, _ := tw.Pop()
	b, _ := tw.Pop()
	if a.Offset != 0 || b.Offset != 2<<20 {
		t.Fatalf("window should serve target 0 first: %d then %d", a.Offset, b.Offset)
	}
	c, _ := tw.Pop()
	if c.Offset != 1<<20 {
		t.Fatalf("target 1 request should come last: %d", c.Offset)
	}
}

func TestTWINSWindowExpiryRotates(t *testing.T) {
	tw := NewTWINS(time.Millisecond, 2)
	now := time.Unix(0, 0)
	tw.now = func() time.Time { return now }
	tw.Push(req("/f", 0, 10))     // target 0
	tw.Push(req("/f", 0+10, 10))  // target 0
	tw.Push(req("/f", 1<<20, 10)) // target 1
	first, _ := tw.Pop()
	if first.Offset != 0 {
		t.Fatalf("first pop: %d", first.Offset)
	}
	// Let the window expire: next pop should rotate to target 1.
	now = now.Add(2 * time.Millisecond)
	second, _ := tw.Pop()
	if second.Offset != 1<<20 {
		t.Fatalf("after expiry want target 1, got offset %d", second.Offset)
	}
}

func TestTWINSDrainsEverything(t *testing.T) {
	tw := NewTWINS(time.Microsecond, 3)
	rng := rand.New(rand.NewSource(9))
	const n = 200
	for i := 0; i < n; i++ {
		tw.Push(req("/f", int64(rng.Intn(64))<<20, 10))
	}
	seen := 0
	for {
		_, ok := tw.Pop()
		if !ok {
			break
		}
		seen++
	}
	if seen != n {
		t.Fatalf("drained %d of %d", seen, n)
	}
}

func TestCompleteFansOutToChildren(t *testing.T) {
	var mu sync.Mutex
	done := map[int]bool{}
	parent := &Request{}
	for i := 0; i < 3; i++ {
		i := i
		parent.Children = append(parent.Children, &Request{OnComplete: func(error) {
			mu.Lock()
			done[i] = true
			mu.Unlock()
		}})
	}
	parent.Complete(nil)
	if len(done) != 3 {
		t.Fatalf("fan-out incomplete: %v", done)
	}
}

func TestQueueBlocksAndWakes(t *testing.T) {
	q := NewQueue(NewFIFO())
	got := make(chan *Request, 1)
	go func() {
		r, ok := q.PopWait()
		if ok {
			got <- r
		}
		close(got)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := q.Push(req("/f", 0, 10)); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r == nil || r.Path != "/f" {
			t.Fatalf("bad pop: %+v", r)
		}
	case <-time.After(time.Second):
		t.Fatal("PopWait never woke")
	}
}

func TestQueueCloseWakesWaiters(t *testing.T) {
	q := NewQueue(NewFIFO())
	doneCh := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, ok := q.PopWait()
			doneCh <- ok
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	for i := 0; i < 2; i++ {
		select {
		case ok := <-doneCh:
			if ok {
				t.Fatal("closed empty queue should report !ok")
			}
		case <-time.After(time.Second):
			t.Fatal("waiter never woke after Close")
		}
	}
	if err := q.Push(req("/f", 0, 1)); err == nil {
		t.Fatal("push after close should fail")
	}
}

func TestQueueDrainAfterClose(t *testing.T) {
	q := NewQueue(NewFIFO())
	q.Push(req("/f", 0, 1))
	q.Push(req("/f", 1, 1))
	q.Close()
	if r, ok := q.PopWait(); !ok || r == nil {
		t.Fatal("pending requests must drain after close")
	}
	if _, ok := q.TryPop(); !ok {
		t.Fatal("second request must drain")
	}
	if _, ok := q.PopWait(); ok {
		t.Fatal("drained closed queue should be !ok")
	}
}

func TestQueueAssignsSeqAndArrival(t *testing.T) {
	q := NewQueue(NewFIFO())
	r1, r2 := req("/f", 0, 1), req("/f", 1, 1)
	q.Push(r1)
	q.Push(r2)
	if r1.Seq == 0 || r2.Seq <= r1.Seq {
		t.Fatalf("seq not monotone: %d %d", r1.Seq, r2.Seq)
	}
	if r1.Arrival.IsZero() {
		t.Fatal("arrival not stamped")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue(NewSJF())
	const producers, perProducer, consumers = 4, 100, 3
	var wg sync.WaitGroup
	var consumed sync.WaitGroup
	consumed.Add(producers * perProducer)
	var count int64
	var mu sync.Mutex
	for c := 0; c < consumers; c++ {
		go func() {
			for {
				_, ok := q.PopWait()
				if !ok {
					return
				}
				mu.Lock()
				count++
				mu.Unlock()
				consumed.Done()
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Push(req("/f", int64(i), int64(i%7+1))); err != nil {
					t.Error(err)
				}
			}
		}(p)
	}
	wg.Wait()
	consumed.Wait()
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	if count != producers*perProducer {
		t.Fatalf("consumed %d of %d", count, producers*perProducer)
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"FIFO", "SJF", "AIOLI", "TWINS", "HBRR", ""} {
		if _, err := NewByName(name); err != nil {
			t.Errorf("NewByName(%q): %v", name, err)
		}
	}
	if _, err := NewByName("bogus"); err == nil {
		t.Error("bogus scheduler name should fail")
	}
}

func TestOpTypeString(t *testing.T) {
	if OpWrite.String() != "write" || OpRead.String() != "read" {
		t.Fatal("OpType stringer wrong")
	}
}

func TestHBRRRoundRobinWithQuantum(t *testing.T) {
	h := NewHBRR(2)
	// Two handles, non-contiguous requests so no merging interferes.
	for i := int64(0); i < 4; i++ {
		h.Push(req("/a", i*1000, 10))
		h.Push(req("/b", i*1000, 10))
	}
	var order []string
	for {
		r, ok := h.Pop()
		if !ok {
			break
		}
		order = append(order, r.Path)
	}
	want := []string{"/a", "/a", "/b", "/b", "/a", "/a", "/b", "/b"}
	if len(order) != len(want) {
		t.Fatalf("drained %d, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round-robin order wrong at %d: %v", i, order)
		}
	}
}

func TestHBRRAggregatesWithinTurn(t *testing.T) {
	h := NewHBRR(8)
	for i := int64(0); i < 4; i++ {
		h.Push(req("/f", i*100, 100)) // contiguous
	}
	r, ok := h.Pop()
	if !ok || r.Size != 400 || len(r.Children) != 4 {
		t.Fatalf("merge wrong: size=%d children=%d", r.Size, len(r.Children))
	}
	if h.Len() != 0 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestHBRRQuantumCountsAggregatedRequests(t *testing.T) {
	h := NewHBRR(2)
	h.MaxAggregate = 1 << 20
	// /a has 4 contiguous requests; quantum 2 means the merge consumes
	// the whole turn budget after two requests... mergeHead may take all
	// four at once (a single dispatch), which still counts 4 against the
	// quantum, so /b is served next.
	for i := int64(0); i < 4; i++ {
		h.Push(req("/a", i*100, 100))
	}
	h.Push(req("/b", 0, 10))
	first, _ := h.Pop()
	second, _ := h.Pop()
	if first.Path != "/a" || second.Path != "/b" {
		t.Fatalf("quantum accounting wrong: %s then %s", first.Path, second.Path)
	}
}

func TestHBRRDrainsEverything(t *testing.T) {
	h := NewHBRR(3)
	total := 0
	for f := 0; f < 5; f++ {
		for i := int64(0); i < 7; i++ {
			h.Push(req("/f"+string(rune('0'+f)), i*1000, 10))
			total++
		}
	}
	drained := 0
	for {
		r, ok := h.Pop()
		if !ok {
			break
		}
		if len(r.Children) > 0 {
			drained += len(r.Children)
		} else {
			drained++
		}
	}
	if drained != total {
		t.Fatalf("drained %d of %d", drained, total)
	}
}
