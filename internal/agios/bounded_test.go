package agios

// Bounded-admission and shutdown-race tests for the queue: the watermark
// hysteresis that makes a saturated daemon shed instead of buffering
// unboundedly, and the Push/Close race whose only legal outcomes are
// "enqueued" or "ErrQueueClosed".

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

func TestBoundedQueueWatermarkHysteresis(t *testing.T) {
	q := NewQueue(NewFIFO())
	reg := telemetry.New()
	q.Instrument(reg, "")
	q.SetCapacity(4, 2)
	if q.Capacity() != 4 {
		t.Fatalf("Capacity = %d, want 4", q.Capacity())
	}

	// Fill to the high watermark.
	for i := int64(0); i < 4; i++ {
		if err := q.Push(req("/b", i*10, 10)); err != nil {
			t.Fatalf("push %d within capacity: %v", i, err)
		}
	}
	if err := q.Push(req("/b", 100, 10)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push above capacity: want ErrQueueFull, got %v", err)
	}
	if !q.Saturated() {
		t.Fatal("queue should be saturated after a rejected push")
	}
	if got := reg.Gauge("agios_queue_saturated").Value(); got != 1 {
		t.Fatalf("agios_queue_saturated = %d, want 1", got)
	}

	// One pop (depth 4 → 3) is above the low watermark: still rejecting.
	if _, ok := q.TryPop(); !ok {
		t.Fatal("pop from a full queue failed")
	}
	if err := q.Push(req("/b", 110, 10)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("hysteresis should still reject at depth 3: got %v", err)
	}

	// Drain to the low watermark (depth 2): admission resumes.
	if _, ok := q.TryPop(); !ok {
		t.Fatal("second pop failed")
	}
	if q.Saturated() {
		t.Fatal("queue should desaturate at the low watermark")
	}
	if got := reg.Gauge("agios_queue_saturated").Value(); got != 0 {
		t.Fatalf("agios_queue_saturated = %d, want 0 after drain", got)
	}
	if err := q.Push(req("/b", 120, 10)); err != nil {
		t.Fatalf("push after drain should be admitted: %v", err)
	}
}

func TestSetCapacityClampsAndClears(t *testing.T) {
	q := NewQueue(NewFIFO())
	q.SetCapacity(3, 7) // lowWater ≥ capacity clamps to capacity-1
	for i := int64(0); i < 3; i++ {
		if err := q.Push(req("/c", i*10, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push(req("/c", 100, 10)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	// Clamped lowWater = 2: one pop resumes admission.
	q.TryPop()
	if err := q.Push(req("/c", 110, 10)); err != nil {
		t.Fatalf("clamped low watermark should admit after one pop: %v", err)
	}

	// Removing the bound lifts saturation immediately.
	q.SetCapacity(0, 0)
	for i := int64(0); i < 64; i++ {
		if err := q.Push(req("/c", 200+i*10, 10)); err != nil {
			t.Fatalf("unbounded queue rejected push %d: %v", i, err)
		}
	}
	if q.Saturated() {
		t.Fatal("unbounded queue cannot be saturated")
	}
}

// TestPushCloseRaceIsDeterministic is the shutdown-race regression: many
// producers hammer Push while Close lands mid-storm. Every push must
// either succeed (and the request must then be drainable) or fail with
// exactly ErrQueueClosed — no panics, no other errors, no lost requests.
func TestPushCloseRaceIsDeterministic(t *testing.T) {
	const producers = 8
	const perProducer = 200
	q := NewQueue(NewFIFO())

	var (
		wg      sync.WaitGroup
		okCount int64
		mu      sync.Mutex
	)
	start := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			<-start
			for i := 0; i < perProducer; i++ {
				err := q.Push(req("/race", int64(p*perProducer+i)*8, 8))
				switch {
				case err == nil:
					mu.Lock()
					okCount++
					mu.Unlock()
				case errors.Is(err, ErrQueueClosed):
					// the only legal failure once Close has landed
				default:
					t.Errorf("producer %d push %d: unexpected error %v", p, i, err)
				}
			}
		}(p)
	}
	close(start)
	// Let the storm begin, then close mid-flight.
	for q.Len() == 0 {
		runtime.Gosched()
	}
	q.Close()
	wg.Wait()

	// Every accepted request is still drainable after Close: the closed
	// queue loses nothing that was admitted.
	drained := 0
	for {
		if _, ok := q.TryPop(); !ok {
			break
		}
		drained++
	}
	mu.Lock()
	ok := okCount
	mu.Unlock()
	if int64(drained) != ok {
		t.Fatalf("accepted %d pushes but drained %d", ok, drained)
	}
	// And a post-close push still fails the typed way.
	if err := q.Push(req("/race", 0, 8)); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("post-close push: want ErrQueueClosed, got %v", err)
	}
}
