package agios

// HBRR is the handle-based round-robin scheduler of Ohta et al. (the
// quantum-based scheduler the paper's related work cites for the IOFSL
// forwarding layer): requests are grouped per file handle, handles are
// served round-robin, and each handle may dispatch up to Quantum requests
// per turn — reordered within the turn to be contiguous (ascending
// offsets) and merged when adjacent, which is HBRR's aggregation benefit.
type HBRR struct {
	// Quantum is the number of requests a handle may dispatch per turn;
	// ≤0 selects 8.
	Quantum int
	// MaxAggregate bounds a merged dispatch in bytes; ≤0 selects 8 MiB.
	MaxAggregate int64

	files map[string]*fileQueue
	order []string
	cur   int
	spent int // requests served from the current handle this turn
	count int
}

// NewHBRR returns an HBRR scheduler with the given per-handle quantum.
func NewHBRR(quantum int) *HBRR {
	if quantum <= 0 {
		quantum = 8
	}
	return &HBRR{Quantum: quantum, files: make(map[string]*fileQueue)}
}

// Name implements Scheduler.
func (h *HBRR) Name() string { return "HBRR" }

// Push implements Scheduler. Requests are kept offset-sorted per handle so
// each turn dispatches contiguously.
func (h *HBRR) Push(r *Request) {
	fq, ok := h.files[r.Path]
	if !ok {
		fq = &fileQueue{}
		h.files[r.Path] = fq
		h.order = append(h.order, r.Path)
	}
	fq.insert(r)
	h.count++
}

// Pop implements Scheduler.
func (h *HBRR) Pop() (*Request, bool) {
	if h.count == 0 {
		return nil, false
	}
	for n := 0; n < len(h.order)+1; n++ {
		path := h.order[h.cur]
		fq := h.files[path]
		if len(fq.reqs) == 0 || h.spent >= h.Quantum {
			h.advance()
			continue
		}
		maxAgg := h.MaxAggregate
		if maxAgg <= 0 {
			maxAgg = 8 << 20
		}
		merged, taken := mergeHead(fq.reqs, maxAgg)
		fq.reqs = fq.reqs[taken:]
		if k := len(merged.Children); k > 0 {
			h.count -= k
			h.spent += k
		} else {
			h.count--
			h.spent++
		}
		if len(fq.reqs) == 0 {
			h.advance()
		}
		return merged, true
	}
	return nil, false
}

func (h *HBRR) advance() {
	h.spent = 0
	if len(h.order) > 0 {
		h.cur = (h.cur + 1) % len(h.order)
	}
}

// Len implements Scheduler.
func (h *HBRR) Len() int { return h.count }

// insert keeps the per-file queue offset-sorted (stable on ties).
func (fq *fileQueue) insert(r *Request) {
	lo, hi := 0, len(fq.reqs)
	for lo < hi {
		mid := (lo + hi) / 2
		if fq.reqs[mid].Offset < r.Offset ||
			(fq.reqs[mid].Offset == r.Offset && fq.reqs[mid].Seq <= r.Seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	fq.reqs = append(fq.reqs, nil)
	copy(fq.reqs[lo+1:], fq.reqs[lo:])
	fq.reqs[lo] = r
}
