package agios

import (
	"testing"
)

// TestHBRRRoundRobinAcrossFiles checks the defining HBRR property: handles
// are served round-robin, one quantum of requests per handle per turn.
func TestHBRRRoundRobinAcrossFiles(t *testing.T) {
	h := NewHBRR(2)
	// Three files, three sparse (non-mergeable) requests each, pushed
	// file-by-file so arrival order alone would drain /a entirely first.
	for _, path := range []string{"/a", "/b", "/c"} {
		for i := int64(0); i < 3; i++ {
			r := req(path, i*1000, 10)
			r.Seq = uint64(len(path)) + uint64(i)
			h.Push(r)
		}
	}
	var order []string
	for {
		r, ok := h.Pop()
		if !ok {
			break
		}
		order = append(order, r.Path)
	}
	want := []string{
		"/a", "/a", // quantum 2 from /a
		"/b", "/b",
		"/c", "/c",
		"/a", "/b", "/c", // second turn drains the leftovers
	}
	if len(order) != len(want) {
		t.Fatalf("drained %d requests, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round-robin order wrong at %d: got %v want %v", i, order, want)
		}
	}
}

// TestHBRROffsetOrderWithinHandle checks that a handle's turn serves its
// requests in ascending offset order regardless of arrival order.
func TestHBRROffsetOrderWithinHandle(t *testing.T) {
	h := NewHBRR(8)
	offsets := []int64{3000, 0, 2000, 1000}
	for i, off := range offsets {
		r := req("/f", off, 10)
		r.Seq = uint64(i)
		h.Push(r)
	}
	var got []int64
	for {
		r, ok := h.Pop()
		if !ok {
			break
		}
		got = append(got, r.Offset)
	}
	want := []int64{0, 1000, 2000, 3000}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offset order wrong: got %v want %v", got, want)
		}
	}
}

// TestHBRRMergesAdjacentWithinQuantum checks HBRR's aggregation benefit:
// contiguous same-handle writes inside one turn dispatch as one merged
// request whose children are the originals, and the merged batch charges
// the quantum per child.
func TestHBRRMergesAdjacentWithinQuantum(t *testing.T) {
	h := NewHBRR(4)
	for i := int64(0); i < 3; i++ {
		r := req("/f", i*10, 10)
		r.Seq = uint64(i)
		h.Push(r)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	r, ok := h.Pop()
	if !ok {
		t.Fatal("pop failed")
	}
	if len(r.Children) != 3 {
		t.Fatalf("merged %d children, want 3 (req %+v)", len(r.Children), r)
	}
	if r.Offset != 0 || r.Size != 30 {
		t.Fatalf("merged extent [%d,%d), want [0,30)", r.Offset, r.End())
	}
	if h.Len() != 0 {
		t.Fatalf("Len after merged pop = %d, want 0", h.Len())
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

// TestHBRRMaxAggregateBoundsMerge checks that a merged dispatch never
// exceeds MaxAggregate even when more contiguous data is queued.
func TestHBRRMaxAggregateBoundsMerge(t *testing.T) {
	h := NewHBRR(8)
	h.MaxAggregate = 25
	for i := int64(0); i < 4; i++ {
		r := req("/f", i*10, 10)
		r.Seq = uint64(i)
		h.Push(r)
	}
	first, ok := h.Pop()
	if !ok {
		t.Fatal("pop failed")
	}
	if first.Size > 25 {
		t.Fatalf("merged size %d exceeds MaxAggregate 25", first.Size)
	}
	if len(first.Children) != 2 {
		t.Fatalf("first dispatch merged %d children, want 2", len(first.Children))
	}
	rest := drain(h)
	var total int64 = first.Size
	for _, r := range rest {
		total += r.Size
	}
	if total != 40 {
		t.Fatalf("drained %d bytes total, want 40", total)
	}
}

// TestHBRRQuantumExhaustionRotates checks that a handle with more queued
// requests than its quantum yields the turn rather than starving others.
func TestHBRRQuantumExhaustionRotates(t *testing.T) {
	h := NewHBRR(1)
	// /hog has sparse requests (no merging); /small has one.
	for i := int64(0); i < 3; i++ {
		r := req("/hog", i*1000, 10)
		r.Seq = uint64(i)
		h.Push(r)
	}
	late := req("/small", 0, 10)
	late.Seq = 99
	h.Push(late)

	var order []string
	for {
		r, ok := h.Pop()
		if !ok {
			break
		}
		order = append(order, r.Path)
	}
	want := []string{"/hog", "/small", "/hog", "/hog"}
	if len(order) != len(want) {
		t.Fatalf("drained %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("quantum rotation wrong: got %v want %v", order, want)
		}
	}
}
