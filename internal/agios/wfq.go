package agios

// WFQ is the priority-aware scheduler the QoS layer runs on the I/O
// nodes: three FIFO sub-queues, one per service tier (guaranteed,
// standard, scavenger), served highest tier first with a bounded
// anti-starvation escape.
//
// The scheduling contract, stated as the two properties the tests pin:
//
//   - Bounded inversion: a guaranteed request that arrives behind k
//     already-queued scavenger requests is served after at most one
//     lower-tier dispatch (the one escape Pop may owe), never after the
//     whole burst. This is deliberately NOT strict preemption of work
//     already handed to the dispatcher — only queue order is decided
//     here.
//   - No starvation: while higher tiers stay busy, every EscapeEvery
//     consecutive higher-tier dispatches the scheduler serves one
//     request from the lowest non-empty tier, so a scavenger backlog
//     drains at a bounded fraction of throughput instead of waiting for
//     an idle moment that may never come.
//
// Within one tier, order is plain FIFO — fairness between tenants of the
// same class is the token buckets' job (admission), not the queue's.
type WFQ struct {
	// EscapeEvery is the number of consecutive higher-tier dispatches
	// after which one lower-tier request is served while lower tiers
	// wait; ≤0 selects 4 (a 20% floor for the lowest backlogged tier).
	EscapeEvery int

	tiers [3][]*Request // index: 0 scavenger, 1 standard, 2 guaranteed
	run   int           // consecutive dispatches above the lowest waiting tier
	count int
}

// NewWFQ returns a weighted fair queue with the given escape interval
// (≤0 selects the default, 4).
func NewWFQ(escapeEvery int) *WFQ {
	if escapeEvery <= 0 {
		escapeEvery = 4
	}
	return &WFQ{EscapeEvery: escapeEvery}
}

// Name implements Scheduler.
func (w *WFQ) Name() string { return "WFQ" }

// tierOf maps a wire priority to a sub-queue index. Unclassed requests
// (priority 0, the pre-QoS default) schedule exactly like standard.
func tierOf(p uint8) int {
	switch {
	case p >= 3:
		return 2
	case p == 1:
		return 0
	default: // 0 (unclassed) and 2 (standard)
		return 1
	}
}

// Push implements Scheduler.
func (w *WFQ) Push(r *Request) {
	t := tierOf(r.Priority)
	w.tiers[t] = append(w.tiers[t], r)
	w.count++
}

// Pop implements Scheduler: highest non-empty tier first, except that
// after EscapeEvery consecutive dispatches above a waiting lower tier,
// one request from the lowest non-empty tier is served.
func (w *WFQ) Pop() (*Request, bool) {
	if w.count == 0 {
		return nil, false
	}
	hi, lo := -1, -1
	for t := 2; t >= 0; t-- {
		if len(w.tiers[t]) > 0 {
			hi = t
			break
		}
	}
	for t := 0; t <= 2; t++ {
		if len(w.tiers[t]) > 0 {
			lo = t
			break
		}
	}
	pick := hi
	if lo != hi && w.run >= w.EscapeEvery {
		pick = lo
	}
	if pick == lo {
		// Either only one tier is busy, or this is the escape dispatch:
		// the starvation clock restarts.
		w.run = 0
	} else {
		w.run++
	}
	q := w.tiers[pick]
	r := q[0]
	q[0] = nil
	w.tiers[pick] = q[1:]
	w.count--
	return r, true
}

// Len implements Scheduler.
func (w *WFQ) Len() int { return w.count }
