package agios

import (
	"fmt"
	"testing"
)

// req builds a WFQ test request with the given wire priority and a
// recognisable path.
func wreq(prio uint8, n int) *Request {
	return &Request{Path: fmt.Sprintf("/p%d-%d", prio, n), Priority: prio, Size: 1}
}

// popAll drains the scheduler and returns the priorities in service order.
func popAll(t *testing.T, w *WFQ) []uint8 {
	t.Helper()
	var order []uint8
	for {
		r, ok := w.Pop()
		if !ok {
			break
		}
		order = append(order, r.Priority)
	}
	if w.Len() != 0 {
		t.Fatalf("drained scheduler still reports Len %d", w.Len())
	}
	return order
}

// TestWFQBoundedInversion pins the headline property: a guaranteed
// request admitted behind k queued scavenger requests is served within
// k' < k slots — here k'=0, the very next dispatch, because nothing has
// primed the escape counter.
func TestWFQBoundedInversion(t *testing.T) {
	const k = 16
	w := NewWFQ(0)
	for i := 0; i < k; i++ {
		w.Push(wreq(1, i)) // scavenger burst
	}
	w.Push(wreq(3, 0)) // guaranteed arrives last
	r, ok := w.Pop()
	if !ok || r.Priority != 3 {
		t.Fatalf("first dispatch after guaranteed arrival = %+v, want the guaranteed request", r)
	}
	// The burst then drains alone.
	for i := 0; i < k; i++ {
		if r, ok := w.Pop(); !ok || r.Priority != 1 {
			t.Fatalf("drain slot %d = %+v, want scavenger", i, r)
		}
	}
}

// TestWFQWorstCaseInversionIsOneSlot primes the escape counter so the
// guaranteed request arrives at the worst possible moment: the scheduler
// owes the scavenger tier an escape dispatch. Even then the guaranteed
// request waits exactly one slot — the bound is the escape debt (1), not
// the burst length.
func TestWFQWorstCaseInversionIsOneSlot(t *testing.T) {
	w := NewWFQ(1)     // escape after every higher-tier dispatch
	w.Push(wreq(1, 0)) // scavenger waiting below...
	w.Push(wreq(2, 0)) // ...while standard traffic runs
	if r, _ := w.Pop(); r.Priority != 2 {
		t.Fatalf("setup pop = %d, want standard", r.Priority)
	}
	// Escape now owed. Guaranteed arrives with 1 scavenger still queued.
	w.Push(wreq(3, 0))
	first, _ := w.Pop()
	second, _ := w.Pop()
	if first.Priority != 1 || second.Priority != 3 {
		t.Fatalf("worst case order = %d,%d; want one escape (1) then guaranteed (3)",
			first.Priority, second.Priority)
	}
}

// TestWFQDeterministicSchedule pins an exact mixed-tier service order so
// any change to the arbitration rule shows up as a diff, not a flaky
// latency shift.
func TestWFQDeterministicSchedule(t *testing.T) {
	w := NewWFQ(2)
	for i := 0; i < 4; i++ {
		w.Push(wreq(1, i)) // S1..S4
	}
	for i := 0; i < 3; i++ {
		w.Push(wreq(3, i)) // G1..G3
	}
	got := popAll(t, w)
	want := []uint8{3, 3, 1, 3, 1, 1, 1} // G G escape G then drain
	if len(got) != len(want) {
		t.Fatalf("schedule length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule %v, want %v", got, want)
		}
	}
}

// TestWFQScavengerNoStarvation is the starvation regression: under a
// standing guaranteed backlog, the scavenger tier still drains at its
// 1-in-(EscapeEvery+1) floor instead of waiting for an idle moment.
func TestWFQScavengerNoStarvation(t *testing.T) {
	w := NewWFQ(4)
	const scav = 10
	for i := 0; i < 50; i++ {
		w.Push(wreq(3, i))
	}
	for i := 0; i < scav; i++ {
		w.Push(wreq(1, i))
	}
	served := 0
	for i := 1; i <= 50; i++ {
		r, ok := w.Pop()
		if !ok {
			t.Fatalf("scheduler empty at pop %d", i)
		}
		if r.Priority == 1 {
			served++
			if i%5 != 0 {
				t.Fatalf("scavenger served at slot %d, want only every 5th slot", i)
			}
		}
	}
	if served != scav {
		t.Fatalf("scavenger backlog not drained under guaranteed flood: %d of %d served in 50 slots", served, scav)
	}
}

// TestWFQUnclassedIsStandard pins the opt-in contract at the scheduler:
// priority 0 (no QoS anywhere) and priority 2 (explicit standard) share
// one FIFO tier, so turning QoS on for nobody changes nothing.
func TestWFQUnclassedIsStandard(t *testing.T) {
	w := NewWFQ(0)
	w.Push(&Request{Path: "/a", Priority: 0})
	w.Push(&Request{Path: "/b", Priority: 2})
	w.Push(&Request{Path: "/c", Priority: 0})
	for _, want := range []string{"/a", "/b", "/c"} {
		r, ok := w.Pop()
		if !ok || r.Path != want {
			t.Fatalf("got %+v, want FIFO order %s", r, want)
		}
	}
	if _, ok := w.Pop(); ok {
		t.Fatal("empty scheduler returned a request")
	}
}

// TestWFQByName covers the registry hookup.
func TestWFQByName(t *testing.T) {
	s, err := NewByName("WFQ")
	if err != nil || s.Name() != "WFQ" {
		t.Fatalf("NewByName(WFQ) = %v, %v", s, err)
	}
	if _, err := NewByName("wfq"); err != nil {
		t.Fatal(err)
	}
}
