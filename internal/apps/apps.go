// Package apps reimplements the I/O phases of the application kernels the
// paper evaluates (Table 3): IOR (MPI-IO and POSIX modes), NAS BT-IO,
// HACC-IO, S3D-IO, MADBench2, and S3aSim. Only the I/O behaviour matters to
// the forwarding layer, so compute phases are omitted and volumes are
// scaled down (DefaultScale) so live runs finish in seconds; each kernel
// preserves its file approach, spatiality, request sizing, and phase
// structure.
//
// Every kernel issues its I/O through a pfs.FileSystem, so the same code
// runs against the PFS directly, through the forwarding client, or under
// the darshan tracer. Ranks are goroutines.
package apps

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/pfs"
	"repro/internal/units"
)

// DefaultScale divides the paper's Table 3 volumes for live runs.
const DefaultScale = 64

// Report summarizes one kernel execution.
type Report struct {
	Kernel     string
	Ranks      int
	WriteBytes int64
	ReadBytes  int64
	Elapsed    time.Duration
	// Bandwidth is (WriteBytes+ReadBytes)/Elapsed, the paper's
	// client-side makespan bandwidth.
	Bandwidth units.Bandwidth
}

// Kernel is one application's I/O phase.
type Kernel interface {
	// Name returns the kernel's Table 3 label.
	Name() string
	// Run executes the kernel against fs, placing files under dir.
	Run(fs pfs.FileSystem, dir string) (Report, error)
}

// Registry returns the evaluation kernels keyed by Table 3 label, at the
// default scaled-down geometry.
func Registry() map[string]Kernel {
	return map[string]Kernel{
		"BT-C":    DefaultBTIO(),
		"HACC":    DefaultHACC(),
		"IOR-MPI": DefaultIORMPI(),
		"POSIX-S": DefaultIORPOSIXShared(),
		"POSIX-L": DefaultIORPOSIXFPP(),
		"MAD":     DefaultMADBench(),
		"SIM":     DefaultS3aSim(),
		"S3D":     DefaultS3D(),
	}
}

// TinyRegistry returns every evaluation kernel shrunk to kilobyte-scale
// volumes and few ranks — the same code paths at a size suitable for unit
// and fault-injection tests.
func TinyRegistry() map[string]Kernel {
	return map[string]Kernel{
		"BT-C":    BTIO{Label: "BT-C", Ranks: 16, DumpBytes: 16 << 10, Dumps: 3, RequestSize: 4 << 10, Verify: true},
		"HACC":    HACC{Ranks: 4, Particles: 500, HeaderBytes: 256},
		"IOR-MPI": IOR{Label: "IOR-MPI", Ranks: 8, BlockSize: 32 << 10, TransferSize: 8 << 10, Collective: true, ReadBack: true},
		"POSIX-S": IOR{Label: "POSIX-S", Ranks: 8, BlockSize: 32 << 10, TransferSize: 8 << 10, ReadBack: true},
		"POSIX-L": IOR{Label: "POSIX-L", Ranks: 8, BlockSize: 32 << 10, TransferSize: 8 << 10, FilePerProcess: true, ReadBack: true},
		"MAD":     MADBench{Ranks: 8, Bins: 4, SliceBytes: 2 << 10},
		"SIM":     S3aSim{Ranks: 4, Queries: 10, MinResult: 1 << 10, MaxResult: 4 << 10, WriteSize: 512, Seed: 1},
		"S3D":     S3D{Ranks: 8, Checkpoints: 2, CellsPerRank: 128},
	}
}

// runRanks runs fn for each rank concurrently and returns the first error.
func runRanks(ranks int, fn func(rank int) error) error {
	if ranks <= 0 {
		return errors.New("apps: ranks must be positive")
	}
	errs := make(chan error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs <- fn(r)
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// report assembles a Report from measured totals.
func report(name string, ranks int, wrote, read int64, elapsed time.Duration) Report {
	return Report{
		Kernel:     name,
		Ranks:      ranks,
		WriteBytes: wrote,
		ReadBytes:  read,
		Elapsed:    elapsed,
		Bandwidth:  units.Over(wrote+read, elapsed),
	}
}

// fill deterministically patterns a buffer so data integrity is checkable.
func fill(buf []byte, seed byte) {
	for i := range buf {
		buf[i] = seed + byte(i%97)
	}
}

// pathFor joins dir and name without importing path/filepath (paths here
// are flat namespace keys, not OS paths).
func pathFor(dir, name string) string {
	if dir == "" {
		return "/" + name
	}
	return dir + "/" + name
}

// verifyShort converts a trailing short read into a hard error: kernels
// always read back data they wrote, so a short read is a correctness bug.
func verifyShort(n int, want int64, err error) error {
	if err != nil && !errors.Is(err, pfs.ErrShortRead) {
		return err
	}
	if int64(n) != want {
		return fmt.Errorf("apps: short read: %d of %d bytes", n, want)
	}
	return nil
}
