package apps

import (
	"strings"
	"testing"

	"repro/internal/pfs"
	"repro/internal/units"
)

// smallStore returns a functional PFS for kernel tests.
func smallStore() *pfs.Store { return pfs.NewStore(pfs.Config{}) }

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{"BT-C", "HACC", "IOR-MPI", "POSIX-S", "POSIX-L", "MAD", "SIM", "S3D"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d kernels, want %d", len(reg), len(want))
	}
	for _, label := range want {
		k, ok := reg[label]
		if !ok {
			t.Fatalf("kernel %s missing", label)
		}
		if k.Name() != label {
			t.Fatalf("kernel %s reports name %s", label, k.Name())
		}
	}
}

// shrink reduces a kernel's volume so unit tests stay fast; each helper
// returns the expected write/read volumes alongside the kernel.
func tinyIOR(shared bool, collective bool) IOR {
	k := IOR{
		Label: "IOR-T", Ranks: 8,
		BlockSize:    64 * units.KiB,
		TransferSize: 16 * units.KiB,
		ReadBack:     true,
		Collective:   collective,
	}
	k.FilePerProcess = !shared
	return k
}

func TestIORSharedPOSIX(t *testing.T) {
	store := smallStore()
	k := tinyIOR(true, false)
	rep, err := k.Run(store, "/t")
	if err != nil {
		t.Fatal(err)
	}
	want := k.BlockSize * int64(k.Ranks)
	if rep.WriteBytes != want || rep.ReadBytes != want {
		t.Fatalf("volumes: %+v, want %d", rep, want)
	}
	// One shared file of exactly the right size.
	files := store.List()
	if len(files) != 1 {
		t.Fatalf("files: %v", files)
	}
	info, _ := store.Stat(files[0])
	if info.Size != want {
		t.Fatalf("file size %d, want %d", info.Size, want)
	}
	if rep.Bandwidth <= 0 || rep.Elapsed <= 0 {
		t.Fatalf("report incomplete: %+v", rep)
	}
}

func TestIORFilePerProcess(t *testing.T) {
	store := smallStore()
	k := tinyIOR(false, false)
	rep, err := k.Run(store, "/t")
	if err != nil {
		t.Fatal(err)
	}
	files := store.List()
	if len(files) != k.Ranks {
		t.Fatalf("want %d files, got %d", k.Ranks, len(files))
	}
	if rep.WriteBytes != k.BlockSize*int64(k.Ranks) {
		t.Fatalf("write bytes %d", rep.WriteBytes)
	}
}

func TestIORCollectiveAggregates(t *testing.T) {
	store := smallStore()
	k := tinyIOR(true, true)
	rep, err := k.Run(store, "/t")
	if err != nil {
		t.Fatal(err)
	}
	want := k.BlockSize * int64(k.Ranks)
	if rep.WriteBytes != want {
		t.Fatalf("write bytes %d, want %d", rep.WriteBytes, want)
	}
	// Collective buffering issues fewer, larger requests than
	// independent I/O would (64 requests of 16 KiB → at most 8·span).
	m := store.Metrics()
	independentReqs := want / k.TransferSize * 2 // write+read
	if m.WriteOps+m.ReadOps >= independentReqs {
		t.Fatalf("collective mode did not aggregate: %d ops", m.WriteOps+m.ReadOps)
	}
}

func TestIORInvalidConfig(t *testing.T) {
	if _, err := (IOR{}).Run(smallStore(), "/t"); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestHACCVolumesAndLayout(t *testing.T) {
	store := smallStore()
	k := HACC{Ranks: 4, Particles: 1000, HeaderBytes: 512}
	rep, err := k.Run(store, "/t")
	if err != nil {
		t.Fatal(err)
	}
	perRank := int64(512 + 1000*38)
	if rep.WriteBytes != perRank*4 {
		t.Fatalf("write bytes %d, want %d", rep.WriteBytes, perRank*4)
	}
	files := store.List()
	if len(files) != 4 {
		t.Fatalf("HACC is file-per-process: %v", files)
	}
	for _, f := range files {
		info, _ := store.Stat(f)
		if info.Size != perRank {
			t.Fatalf("file %s size %d, want %d", f, info.Size, perRank)
		}
	}
	if rep.ReadBytes != 0 {
		t.Fatal("HACC-IO is write-only")
	}
}

func TestHACCParticleRecordIs38Bytes(t *testing.T) {
	var total int64
	for _, v := range haccVarBytes {
		total += v
	}
	if total != 38 {
		t.Fatalf("particle record = %d bytes, paper says 38", total)
	}
}

func TestS3DCheckpoints(t *testing.T) {
	store := smallStore()
	k := S3D{Ranks: 8, Checkpoints: 3, CellsPerRank: 64}
	rep, err := k.Run(store, "/t")
	if err != nil {
		t.Fatal(err)
	}
	files := store.List()
	if len(files) != 3 {
		t.Fatalf("want one shared file per checkpoint, got %v", files)
	}
	perCp := int64(64*8) * 8 * s3dVariables
	if rep.WriteBytes != perCp*3 {
		t.Fatalf("write bytes %d, want %d", rep.WriteBytes, perCp*3)
	}
	for _, f := range files {
		info, _ := store.Stat(f)
		if info.Size != perCp {
			t.Fatalf("checkpoint %s size %d, want %d", f, info.Size, perCp)
		}
	}
}

func TestMADBenchPhases(t *testing.T) {
	store := smallStore()
	k := MADBench{Ranks: 8, Bins: 4, SliceBytes: 1024}
	rep, err := k.Run(store, "/t")
	if err != nil {
		t.Fatal(err)
	}
	// S: 4 writers × 4 bins × 1 KiB; W rewrite: 2 writers; reads: S-size
	// + W-size.
	wantWrite := int64(4*4*1024 + 2*4*1024)
	wantRead := int64(4*4*1024 + 2*4*1024)
	if rep.WriteBytes != wantWrite || rep.ReadBytes != wantRead {
		t.Fatalf("volumes: write %d (want %d) read %d (want %d)",
			rep.WriteBytes, wantWrite, rep.ReadBytes, wantRead)
	}
	if len(store.List()) != 1 {
		t.Fatal("MADBench uses a single shared file")
	}
}

func TestS3aSimSequentialMasterWrites(t *testing.T) {
	store := smallStore()
	k := S3aSim{Ranks: 4, Queries: 20, MinResult: 1024, MaxResult: 8192, WriteSize: 512, Seed: 7}
	rep, err := k.Run(store, "/t")
	if err != nil {
		t.Fatal(err)
	}
	if rep.WriteBytes < 20*1024 || rep.WriteBytes > 20*8192 {
		t.Fatalf("total volume %d outside query-size bounds", rep.WriteBytes)
	}
	info, _ := store.Stat("/t/s3asim.results")
	if info.Size != rep.WriteBytes {
		t.Fatalf("file size %d != volume %d (writes must be sequential appends)", info.Size, rep.WriteBytes)
	}
	// Sequential appends never reposition the single OST stream.
	if m := store.Metrics(); m.Seeks > int64(store.Config().OSTs) {
		t.Fatalf("master stream should be sequential, got %d seeks", m.Seeks)
	}
}

func TestS3aSimDeterministicSizes(t *testing.T) {
	k := S3aSim{Ranks: 4, Queries: 10, MinResult: 100, MaxResult: 1000, WriteSize: 64, Seed: 3}
	r1, err := k.Run(smallStore(), "/a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := k.Run(smallStore(), "/a")
	if err != nil {
		t.Fatal(err)
	}
	if r1.WriteBytes != r2.WriteBytes {
		t.Fatal("query sizes not reproducible")
	}
}

func TestBTIODumpsAndVerify(t *testing.T) {
	store := smallStore()
	k := BTIO{Label: "BT-T", Ranks: 16, DumpBytes: 32 * units.KiB, Dumps: 4, RequestSize: 8 * units.KiB, Verify: true}
	rep, err := k.Run(store, "/t")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(4) * 32 * units.KiB
	if rep.WriteBytes != want || rep.ReadBytes != want {
		t.Fatalf("volumes: %+v", rep)
	}
	info, _ := store.Stat("/t/BT-T.btio")
	if info.Size != want {
		t.Fatalf("solution file size %d, want %d", info.Size, want)
	}
}

func TestKernelsRunThroughTinyRegistry(t *testing.T) {
	// Smoke test: every kernel, at tiny scale, runs clean through a
	// fresh store and accounts its volume exactly.
	for label, k := range TinyRegistry() {
		store := smallStore()
		rep, err := k.Run(store, "/"+strings.ToLower(label))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if rep.WriteBytes <= 0 || rep.Elapsed <= 0 || rep.Bandwidth <= 0 {
			t.Fatalf("%s: empty report %+v", label, rep)
		}
		m := store.Metrics()
		if m.BytesWritten != rep.WriteBytes {
			t.Fatalf("%s: store saw %d bytes, report says %d", label, m.BytesWritten, rep.WriteBytes)
		}
	}
}

func TestTinyRegistryMatchesRegistryLabels(t *testing.T) {
	full, tiny := Registry(), TinyRegistry()
	if len(full) != len(tiny) {
		t.Fatalf("registries differ in size: %d vs %d", len(full), len(tiny))
	}
	for label := range full {
		k, ok := tiny[label]
		if !ok {
			t.Fatalf("tiny registry missing %s", label)
		}
		if k.Name() != label {
			t.Fatalf("tiny %s reports name %s", label, k.Name())
		}
	}
}
