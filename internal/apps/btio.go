package apps

import (
	"fmt"
	"time"

	"repro/internal/pfs"
	"repro/internal/units"
)

// BTIO reproduces the NAS BT-IO benchmark's I/O behaviour in its MPI-IO
// "full" (collective buffering) mode: after every five time steps the
// entire solution array is appended to a single shared file, with the
// scattered data gathered on a subset of aggregator ranks that issue
// large contiguous requests (the paper measured 1.34–5.35 MB MPI-IO and
// 5.23–12.31 MB POSIX requests for classes C and D). At the end, the file
// is read back for verification, as BT-IO's verify phase does.
type BTIO struct {
	Label string
	// Ranks is the client process count (a square number in real BT).
	Ranks int
	// DumpBytes is the solution size appended per dump.
	DumpBytes int64
	// Dumps is the number of write phases (steps/5; 40 for 200 steps).
	Dumps int
	// RequestSize is the aggregated POSIX request size.
	RequestSize int64
	// Verify re-reads the whole file at the end.
	Verify bool
}

// Name implements Kernel.
func (k BTIO) Name() string { return k.Label }

// Run implements Kernel.
func (k BTIO) Run(fs pfs.FileSystem, dir string) (Report, error) {
	if k.Ranks <= 0 || k.DumpBytes <= 0 || k.Dumps <= 0 || k.RequestSize <= 0 {
		return Report{}, fmt.Errorf("apps: invalid BT-IO config %+v", k)
	}
	start := time.Now()
	path := pathFor(dir, k.Label+".btio")
	if err := fs.Create(path); err != nil {
		return Report{}, err
	}
	aggs := k.Ranks / 8
	if aggs < 1 {
		aggs = 1
	}
	var wrote, read int64
	for d := 0; d < k.Dumps; d++ {
		base := int64(d) * k.DumpBytes
		span := k.DumpBytes / int64(aggs)
		err := runRanks(aggs, func(a int) error {
			lo := base + int64(a)*span
			hi := lo + span
			if a == aggs-1 {
				hi = base + k.DumpBytes
			}
			buf := make([]byte, k.RequestSize)
			fill(buf, byte(d+a))
			for off := lo; off < hi; off += k.RequestSize {
				n := k.RequestSize
				if off+n > hi {
					n = hi - off
				}
				if _, err := fs.Write(path, off, buf[:n]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Report{}, err
		}
		wrote += k.DumpBytes
	}
	if k.Verify {
		total := int64(k.Dumps) * k.DumpBytes
		span := total / int64(aggs)
		err := runRanks(aggs, func(a int) error {
			lo := int64(a) * span
			hi := lo + span
			if a == aggs-1 {
				hi = total
			}
			buf := make([]byte, k.RequestSize)
			for off := lo; off < hi; off += k.RequestSize {
				n := k.RequestSize
				if off+n > hi {
					n = hi - off
				}
				got, err := fs.Read(path, off, buf[:n])
				if err := verifyShort(got, n, err); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Report{}, err
		}
		read = total
	}
	return report(k.Label, k.Ranks, wrote, read, time.Since(start)), nil
}

// DefaultBTIO is BT-C: 128 processes, 6.3 GB written over 40 dumps with
// ≈5 MiB aggregated requests, verified by a full read-back — at
// 1/DefaultScale volume.
func DefaultBTIO() BTIO {
	return BTIO{
		Label: "BT-C", Ranks: 128,
		DumpBytes:   int64(6.3e9) / 40 / DefaultScale,
		Dumps:       40,
		RequestSize: 5 * units.MiB / DefaultScale * 8,
		Verify:      true,
	}
}

// BTIOClassD is BT-D: 512 processes, 126.5 GB, 12 MiB POSIX requests.
func BTIOClassD() BTIO {
	return BTIO{
		Label: "BT-D", Ranks: 512,
		DumpBytes:   int64(126.5e9) / 40 / DefaultScale,
		Dumps:       40,
		RequestSize: 12 * units.MiB / DefaultScale * 8,
		Verify:      true,
	}
}
