package apps

import (
	"fmt"
	"time"

	"repro/internal/pfs"
)

// HACC reproduces HACC-IO, the I/O kernel of the HACC cosmology code: each
// rank writes a header and its particle payload to its own file through
// POSIX. A particle carries 38 bytes across nine variables (xx, yy, zz,
// vx, vy, vz, phi, pid, mask), written one variable array at a time.
type HACC struct {
	// Ranks is the client process count.
	Ranks int
	// Particles per rank (the paper uses 100k).
	Particles int64
	// HeaderBytes is the per-file header (24 MB in the paper, scaled).
	HeaderBytes int64
}

// Per-particle variable sizes (xx..phi are 4-byte floats, pid is 8 bytes,
// mask 2) totalling 38 bytes.
var haccVarBytes = []int64{4, 4, 4, 4, 4, 4, 4, 8, 2}

// Name implements Kernel.
func (k HACC) Name() string { return "HACC" }

// Run implements Kernel.
func (k HACC) Run(fs pfs.FileSystem, dir string) (Report, error) {
	if k.Ranks <= 0 || k.Particles <= 0 {
		return Report{}, fmt.Errorf("apps: invalid HACC config %+v", k)
	}
	start := time.Now()
	perRank := k.HeaderBytes
	for _, v := range haccVarBytes {
		perRank += v * k.Particles
	}
	err := runRanks(k.Ranks, func(r int) error {
		path := pathFor(dir, fmt.Sprintf("hacc.rank%04d", r))
		off := int64(0)
		if k.HeaderBytes > 0 {
			hdr := make([]byte, k.HeaderBytes)
			fill(hdr, 'H')
			if _, err := fs.Write(path, 0, hdr); err != nil {
				return err
			}
			off = k.HeaderBytes
		}
		for vi, v := range haccVarBytes {
			buf := make([]byte, v*k.Particles)
			fill(buf, byte(vi))
			if _, err := fs.Write(path, off, buf); err != nil {
				return err
			}
			off += int64(len(buf))
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	wrote := perRank * int64(k.Ranks)
	return report("HACC", k.Ranks, wrote, 0, time.Since(start)), nil
}

// DefaultHACC is the paper's HACC-IO setup (8 nodes, 64 processes, 100k
// particles) with the header scaled by DefaultScale.
func DefaultHACC() HACC {
	return HACC{Ranks: 64, Particles: 100_000 / DefaultScale * 8, HeaderBytes: 24 << 20 / DefaultScale}
}
