package apps

import (
	"fmt"
	"time"

	"repro/internal/pfs"
	"repro/internal/units"
)

// IOR reproduces the IOR micro-benchmark's I/O phase. Three of the paper's
// workloads are IOR configurations (Table 3):
//
//   - IOR-MPI: MPI-IO API, single shared file, write + read. Collective
//     buffering gathers the ranks' transfers on a subset of aggregator
//     ranks that issue larger, contiguous requests.
//   - POSIX-S: POSIX API, single shared file, write + read; every rank
//     issues its own requests, segmented layout.
//   - POSIX-L: POSIX API, file per process, write + read.
type IOR struct {
	Label string
	// Ranks is the client process count.
	Ranks int
	// BlockSize is each rank's contiguous region.
	BlockSize int64
	// TransferSize is the request size.
	TransferSize int64
	// FilePerProcess selects one file per rank instead of a shared file.
	FilePerProcess bool
	// Collective simulates MPI-IO collective buffering: transfers are
	// gathered on Aggregators ranks, which write whole blocks at once.
	Collective bool
	// Aggregators is the collective-buffering writer count (≤0: one per
	// eight ranks, minimum one).
	Aggregators int
	// ReadBack re-reads the written data (IOR's -r phase).
	ReadBack bool
}

// Name implements Kernel.
func (k IOR) Name() string { return k.Label }

// Run implements Kernel.
func (k IOR) Run(fs pfs.FileSystem, dir string) (Report, error) {
	if k.Ranks <= 0 || k.BlockSize <= 0 || k.TransferSize <= 0 {
		return Report{}, fmt.Errorf("apps: invalid IOR config %+v", k)
	}
	start := time.Now()
	var wrote, read int64

	if k.Collective && !k.FilePerProcess {
		aggs := k.Aggregators
		if aggs <= 0 {
			aggs = k.Ranks / 8
			if aggs < 1 {
				aggs = 1
			}
		}
		// Collective buffering: each aggregator owns a contiguous span of
		// the file domain (ranks' blocks are gathered before writing).
		path := pathFor(dir, k.Label+".data")
		total := k.BlockSize * int64(k.Ranks)
		span := total / int64(aggs)
		chunk := k.TransferSize * 8 // gathered transfers
		err := runRanks(aggs, func(a int) error {
			base := int64(a) * span
			end := base + span
			if a == aggs-1 {
				end = total
			}
			buf := make([]byte, chunk)
			fill(buf, byte(a))
			for off := base; off < end; off += chunk {
				n := chunk
				if off+n > end {
					n = end - off
				}
				if _, err := fs.Write(path, off, buf[:n]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Report{}, err
		}
		wrote = total
		if k.ReadBack {
			err := runRanks(aggs, func(a int) error {
				base := int64(a) * span
				end := base + span
				if a == aggs-1 {
					end = total
				}
				buf := make([]byte, chunk)
				for off := base; off < end; off += chunk {
					n := chunk
					if off+n > end {
						n = end - off
					}
					got, err := fs.Read(path, off, buf[:n])
					if err := verifyShort(got, n, err); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return Report{}, err
			}
			read = total
		}
		return report(k.Label, k.Ranks, wrote, read, time.Since(start)), nil
	}

	// Independent I/O (POSIX, or MPI-IO without collective buffering).
	err := runRanks(k.Ranks, func(r int) error {
		path := pathFor(dir, fmt.Sprintf("%s.data", k.Label))
		base := int64(r) * k.BlockSize
		if k.FilePerProcess {
			path = pathFor(dir, fmt.Sprintf("%s.rank%04d", k.Label, r))
			base = 0
		}
		buf := make([]byte, k.TransferSize)
		fill(buf, byte(r))
		for off := int64(0); off < k.BlockSize; off += k.TransferSize {
			n := k.TransferSize
			if off+n > k.BlockSize {
				n = k.BlockSize - off
			}
			if _, err := fs.Write(path, base+off, buf[:n]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	wrote = k.BlockSize * int64(k.Ranks)

	if k.ReadBack {
		err := runRanks(k.Ranks, func(r int) error {
			path := pathFor(dir, fmt.Sprintf("%s.data", k.Label))
			base := int64(r) * k.BlockSize
			if k.FilePerProcess {
				path = pathFor(dir, fmt.Sprintf("%s.rank%04d", k.Label, r))
				base = 0
			}
			buf := make([]byte, k.TransferSize)
			for off := int64(0); off < k.BlockSize; off += k.TransferSize {
				n := k.TransferSize
				if off+n > k.BlockSize {
					n = k.BlockSize - off
				}
				got, err := fs.Read(path, base+off, buf[:n])
				if err := verifyShort(got, n, err); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Report{}, err
		}
		read = wrote
	}
	return report(k.Label, k.Ranks, wrote, read, time.Since(start)), nil
}

// DefaultIORMPI is the paper's IOR-MPI workload (16 nodes, 128 processes,
// 32 GB total) at 1/DefaultScale volume.
func DefaultIORMPI() IOR {
	return IOR{
		Label: "IOR-MPI", Ranks: 128,
		BlockSize:    16 * units.GB / 128 / DefaultScale,
		TransferSize: 1 * units.MiB,
		Collective:   true, ReadBack: true,
	}
}

// DefaultIORPOSIXShared is POSIX-S: shared file, independent POSIX I/O.
func DefaultIORPOSIXShared() IOR {
	return IOR{
		Label: "POSIX-S", Ranks: 128,
		BlockSize:    16 * units.GB / 128 / DefaultScale,
		TransferSize: 1 * units.MiB,
		ReadBack:     true,
	}
}

// DefaultIORPOSIXFPP is POSIX-L: file per process.
func DefaultIORPOSIXFPP() IOR {
	return IOR{
		Label: "POSIX-L", Ranks: 512,
		BlockSize:      32 * units.GB / 512 / DefaultScale,
		TransferSize:   1 * units.MiB,
		FilePerProcess: true, ReadBack: true,
	}
}
