package apps

import (
	"fmt"
	"time"

	"repro/internal/pfs"
)

// MADBench reproduces MADBench2's out-of-core matrix phases against a
// single shared file through synchronous MPI-IO-style requests:
//
//   - S: a subset of the ranks writes bin matrices;
//   - W: the data is read back and a smaller subset writes new data;
//   - C: the data is read back.
type MADBench struct {
	// Ranks is the client process count.
	Ranks int
	// Bins is the number of matrix components (8 in typical runs).
	Bins int
	// SliceBytes is each writer's matrix slice per bin.
	SliceBytes int64
	// WriterFrac/RewriterFrac select the S-phase and W-phase writer
	// subsets as fractions of Ranks (paper: "a subset", "a smaller
	// subset"); ≤0 selects 1/2 and 1/4.
	WriterFrac, RewriterFrac float64
}

// Name implements Kernel.
func (k MADBench) Name() string { return "MAD" }

func (k MADBench) writers(frac float64, def float64) int {
	if frac <= 0 {
		frac = def
	}
	n := int(float64(k.Ranks) * frac)
	if n < 1 {
		n = 1
	}
	return n
}

// Run implements Kernel.
func (k MADBench) Run(fs pfs.FileSystem, dir string) (Report, error) {
	if k.Ranks <= 0 || k.Bins <= 0 || k.SliceBytes <= 0 {
		return Report{}, fmt.Errorf("apps: invalid MADBench config %+v", k)
	}
	start := time.Now()
	path := pathFor(dir, "madbench.data")
	if err := fs.Create(path); err != nil {
		return Report{}, err
	}
	var wrote, read int64

	// S: writers dump each bin's slice.
	sWriters := k.writers(k.WriterFrac, 0.5)
	err := runRanks(sWriters, func(r int) error {
		buf := make([]byte, k.SliceBytes)
		fill(buf, byte(r))
		for b := 0; b < k.Bins; b++ {
			base := int64(b)*k.SliceBytes*int64(sWriters) + int64(r)*k.SliceBytes
			if _, err := fs.Write(path, base, buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	wrote += k.SliceBytes * int64(sWriters) * int64(k.Bins)

	// W: read everything back; a smaller subset rewrites.
	err = runRanks(sWriters, func(r int) error {
		buf := make([]byte, k.SliceBytes)
		for b := 0; b < k.Bins; b++ {
			base := int64(b)*k.SliceBytes*int64(sWriters) + int64(r)*k.SliceBytes
			n, err := fs.Read(path, base, buf)
			if err := verifyShort(n, k.SliceBytes, err); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	read += k.SliceBytes * int64(sWriters) * int64(k.Bins)

	wWriters := k.writers(k.RewriterFrac, 0.25)
	err = runRanks(wWriters, func(r int) error {
		buf := make([]byte, k.SliceBytes)
		fill(buf, byte(r)+128)
		for b := 0; b < k.Bins; b++ {
			base := int64(b)*k.SliceBytes*int64(wWriters) + int64(r)*k.SliceBytes
			if _, err := fs.Write(path, base, buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	wrote += k.SliceBytes * int64(wWriters) * int64(k.Bins)

	// C: final read-back of the rewritten data.
	err = runRanks(wWriters, func(r int) error {
		buf := make([]byte, k.SliceBytes)
		for b := 0; b < k.Bins; b++ {
			base := int64(b)*k.SliceBytes*int64(wWriters) + int64(r)*k.SliceBytes
			n, err := fs.Read(path, base, buf)
			if err := verifyShort(n, k.SliceBytes, err); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	read += k.SliceBytes * int64(wWriters) * int64(k.Bins)

	return report("MAD", k.Ranks, wrote, read, time.Since(start)), nil
}

// DefaultMADBench is the paper's MADBench2 setup (32 nodes, 64 processes,
// 32.4 GB total transfer) at 1/DefaultScale volume.
func DefaultMADBench() MADBench {
	// Total S-phase volume ≈ 16.2 GB scaled; slices sized accordingly.
	writers := 32
	bins := 8
	slice := int64(16.2e9) / DefaultScale / int64(writers) / int64(bins)
	return MADBench{Ranks: 64, Bins: bins, SliceBytes: slice}
}
