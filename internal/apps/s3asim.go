package apps

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/pfs"
)

// S3aSim reproduces the mpiBLAST-style master/worker sequence-search
// pattern: workers search query fragments (no I/O), send results to the
// master, and the master sorts and appends each query's result block to a
// single shared file. Result sizes vary widely per query; the paper's runs
// write between ≈4 MB and 328 MB per query (≈100 MB average), issued as
// individual operations without per-query synchronization.
type S3aSim struct {
	// Ranks is the worker count (the master is rank 0).
	Ranks int
	// Queries is the number of queries (the paper uses 100).
	Queries int
	// MinResult/MaxResult bound the per-query result block.
	MinResult, MaxResult int64
	// WriteSize is the master's request size when streaming a block.
	WriteSize int64
	// Seed makes the query-size sequence reproducible.
	Seed int64
}

// Name implements Kernel.
func (k S3aSim) Name() string { return "SIM" }

// Run implements Kernel.
func (k S3aSim) Run(fs pfs.FileSystem, dir string) (Report, error) {
	if k.Ranks <= 0 || k.Queries <= 0 || k.MinResult <= 0 || k.MaxResult < k.MinResult || k.WriteSize <= 0 {
		return Report{}, fmt.Errorf("apps: invalid S3aSim config %+v", k)
	}
	start := time.Now()
	path := pathFor(dir, "s3asim.results")
	if err := fs.Create(path); err != nil {
		return Report{}, err
	}
	rng := rand.New(rand.NewSource(k.Seed))
	var wrote int64
	off := int64(0)
	buf := make([]byte, k.WriteSize)
	for q := 0; q < k.Queries; q++ {
		// Workers' search phase produces a variable-size result block;
		// the master appends it sequentially.
		size := k.MinResult + rng.Int63n(k.MaxResult-k.MinResult+1)
		fill(buf, byte(q))
		for rem := size; rem > 0; {
			n := k.WriteSize
			if n > rem {
				n = rem
			}
			if _, err := fs.Write(path, off, buf[:n]); err != nil {
				return Report{}, err
			}
			off += n
			rem -= n
		}
		wrote += size
	}
	return report("SIM", k.Ranks, wrote, 0, time.Since(start)), nil
}

// DefaultS3aSim is the paper's S3aSim setup (16 processes, 100 queries,
// ≈19.6 GB total) at 1/DefaultScale volume.
func DefaultS3aSim() S3aSim {
	return S3aSim{
		Ranks:     16,
		Queries:   100,
		MinResult: 4 << 20 / DefaultScale,
		MaxResult: 328 << 20 / DefaultScale,
		WriteSize: 1 << 20 / 4, // 256 KiB master writes
		Seed:      1,
	}
}
