package apps

import (
	"fmt"
	"time"

	"repro/internal/pfs"
)

// S3D reproduces the S3D-IO checkpoint kernel: at regular intervals the
// solver writes its three- and four-dimensional double-precision arrays to
// a newly created file (one shared file per checkpoint — the paper's
// "multiple shared files" approach). The 3D arrays are partitioned among
// the ranks; each checkpoint issues four write calls per rank (the
// PnetCDF nonblocking batch) followed by a flush.
type S3D struct {
	// Ranks is the client process count.
	Ranks int
	// Checkpoints is the number of checkpoint files (the paper uses 5).
	Checkpoints int
	// CellsPerRank is each rank's grid partition (cells of 8-byte
	// doubles per variable).
	CellsPerRank int64
}

// s3dVariables is the number of partitioned arrays per checkpoint (the
// kernel batches four nonblocking writes).
const s3dVariables = 4

// Name implements Kernel.
func (k S3D) Name() string { return "S3D" }

// Run implements Kernel.
func (k S3D) Run(fs pfs.FileSystem, dir string) (Report, error) {
	if k.Ranks <= 0 || k.Checkpoints <= 0 || k.CellsPerRank <= 0 {
		return Report{}, fmt.Errorf("apps: invalid S3D config %+v", k)
	}
	start := time.Now()
	slab := k.CellsPerRank * 8 // doubles
	var wrote int64
	for cp := 0; cp < k.Checkpoints; cp++ {
		path := pathFor(dir, fmt.Sprintf("s3d.checkpoint%02d", cp))
		if err := fs.Create(path); err != nil {
			return Report{}, err
		}
		err := runRanks(k.Ranks, func(r int) error {
			buf := make([]byte, slab)
			fill(buf, byte(r+cp))
			for v := 0; v < s3dVariables; v++ {
				// Variable v occupies a contiguous region of the file;
				// each rank owns a slab within it.
				base := int64(v)*slab*int64(k.Ranks) + int64(r)*slab
				if _, err := fs.Write(path, base, buf); err != nil {
					return err
				}
			}
			return fs.Fsync(path)
		})
		if err != nil {
			return Report{}, err
		}
		wrote += slab * int64(k.Ranks) * s3dVariables
	}
	return report("S3D", k.Ranks, wrote, 0, time.Since(start)), nil
}

// DefaultS3D is the paper's S3D-IO setup (64 nodes, 512 processes,
// 33.7 GB over five checkpoints) at 1/DefaultScale volume.
func DefaultS3D() S3D {
	total := int64(33.7e9) / DefaultScale
	perCp := total / 5
	cells := perCp / 512 / s3dVariables / 8
	return S3D{Ranks: 512, Checkpoints: 5, CellsPerRank: cells}
}
