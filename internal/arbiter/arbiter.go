// Package arbiter is the live policy-solver service of the reproduction:
// the component that, on every change of the running-job set, re-runs the
// arbitration policy and publishes a new application → I/O-node mapping for
// the forwarding clients (the paper's solver that "runs on a separate node,
// possibly the same used by a job manager").
//
// Allocation decisions are counts; the arbiter turns them into concrete
// I/O-node addresses, keeping an application's existing nodes when its
// count shrinks or is unchanged so remaps disturb as little routing as
// possible, and never sharing one I/O node between applications.
package arbiter

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/mapping"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// Typed failures, distinguishable with errors.Is so callers (the health
// loop, job managers) can react programmatically instead of parsing text.
var (
	// ErrUnknownJob reports an operation on a job id that is not running.
	ErrUnknownJob = errors.New("arbiter: unknown job")
	// ErrUnknownION reports a mark on an address outside the pool.
	ErrUnknownION = errors.New("arbiter: unknown I/O node")
	// ErrNoLiveIONs reports arbitration over an empty or fully-down pool.
	ErrNoLiveIONs = errors.New("arbiter: no live I/O nodes")
	// ErrIONDown reports a drain request for a node that is already down —
	// there is nothing graceful left to do; the caller wanted MarkDown.
	ErrIONDown = errors.New("arbiter: I/O node is down")
	// ErrIONAssigned reports a removal of a node still routed to some job.
	ErrIONAssigned = errors.New("arbiter: I/O node still assigned")
)

// Arbiter owns a pool of I/O-node addresses and a mapping bus.
type Arbiter struct {
	pol  policy.Policy
	bus  *mapping.Bus
	pool []string

	// weightOf, when set, supplies each application's QoS utility weight
	// at solve time (see WithWeights); nil means unweighted arbitration.
	weightOf func(id string) float64

	mu         sync.Mutex
	down       map[string]bool // addresses marked down (health transitions)
	overloaded map[string]bool // addresses shedding load (overload transitions)
	draining   map[string]bool // addresses leaving gracefully (scaler drains)
	degraded   map[string]bool // addresses marked fail-slow (gray-failure plane)
	// quarFloor bounds the quarantine: degraded nodes are excluded from
	// allocation only while at least quarFloor allocatable nodes remain,
	// so correlated slowness deprioritizes the tail instead of emptying
	// the pool. Always ≥ 1; WithQuarantine raises it.
	quarFloor  int
	running    map[string]policy.Application
	assign     map[string][]string // app → addresses
	// SolveTime records the duration of the last policy invocation (the
	// paper reports 399 µs for its live case).
	lastSolve time.Duration

	// jn, when set via WithJournal, receives every control-plane
	// transition before it becomes visible on the bus; epoch tracks the
	// version the next publish will carry (journaled write-ahead).
	jn    *journal.Journal
	epoch uint64

	// reg is the registry Instrument attached; WithQuarantine uses it to
	// register the quarantine series lazily (only a stack that opts into
	// gray-failure handling exposes arbiter_quarantine_*).
	reg *telemetry.Registry

	// Telemetry handles (nil until Instrument; all no-ops then).
	tel struct {
		solves, solveErrors, published   *telemetry.Counter
		keptMappings                     *telemetry.Counter
		marksDown, marksUp               *telemetry.Counter
		marksOverloaded, marksRecovered  *telemetry.Counter
		drains, drainsAborted            *telemetry.Counter
		ionsAdded, ionsRemoved           *telemetry.Counter
		quarMarks, quarRestores          *telemetry.Counter // nil until WithQuarantine
		jobsRunning                      *telemetry.Gauge
		ionsDown, ionsLive, ionsOverload *telemetry.Gauge
		ionsDraining                     *telemetry.Gauge
		ionsQuarantined, quarFloorHeld   *telemetry.Gauge // nil until WithQuarantine
		solveLatency                     *telemetry.Histogram
	}
}

// New creates an arbiter over the given policy, I/O-node addresses, and
// mapping bus.
func New(pol policy.Policy, ionAddrs []string, bus *mapping.Bus) (*Arbiter, error) {
	if pol == nil {
		return nil, errors.New("arbiter: policy is required")
	}
	if bus == nil {
		return nil, errors.New("arbiter: mapping bus is required")
	}
	uniq := map[string]bool{}
	for _, a := range ionAddrs {
		if uniq[a] {
			return nil, fmt.Errorf("arbiter: duplicate I/O node %s", a)
		}
		uniq[a] = true
	}
	return &Arbiter{
		pol:        pol,
		bus:        bus,
		pool:       append([]string(nil), ionAddrs...),
		down:       map[string]bool{},
		overloaded: map[string]bool{},
		draining:   map[string]bool{},
		degraded:   map[string]bool{},
		quarFloor:  1,
		running:    map[string]policy.Application{},
		assign:     map[string][]string{},
	}, nil
}

// PolicyName reports the active policy.
func (a *Arbiter) PolicyName() string { return a.pol.Name() }

// Instrument attaches arbitration metrics to reg: solve count/latency,
// solver failures, published mappings, re-arbitration fallbacks where the
// pruned previous mapping was kept, and the running-job gauge. Returns a
// for chaining; reg may be nil.
func (a *Arbiter) Instrument(reg *telemetry.Registry) *Arbiter {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reg = reg
	a.tel.solves = reg.Counter("arbiter_solves_total")
	a.tel.solveErrors = reg.Counter("arbiter_solve_errors_total")
	a.tel.published = reg.Counter("arbiter_mappings_published_total")
	a.tel.keptMappings = reg.Counter("arbiter_kept_previous_mapping_total")
	a.tel.marksDown = reg.Counter("arbiter_marked_down_total")
	a.tel.marksUp = reg.Counter("arbiter_marked_up_total")
	a.tel.marksOverloaded = reg.Counter("arbiter_marked_overloaded_total")
	a.tel.marksRecovered = reg.Counter("arbiter_overload_recovered_total")
	a.tel.drains = reg.Counter("arbiter_drains_started_total")
	a.tel.drainsAborted = reg.Counter("arbiter_drains_aborted_total")
	a.tel.ionsAdded = reg.Counter("arbiter_ions_added_total")
	a.tel.ionsRemoved = reg.Counter("arbiter_ions_removed_total")
	a.tel.jobsRunning = reg.Gauge("arbiter_jobs_running")
	a.tel.ionsDown = reg.Gauge("arbiter_ions_down")
	a.tel.ionsLive = reg.Gauge("arbiter_ions_live")
	a.tel.ionsOverload = reg.Gauge("arbiter_ions_overloaded")
	a.tel.ionsDraining = reg.Gauge("arbiter_ions_draining")
	a.tel.ionsLive.Set(int64(len(a.pool)))
	a.tel.solveLatency = reg.Histogram("arbiter_solve_latency_seconds", telemetry.LatencyBuckets())
	return a
}

// WithWeights installs a QoS weight source (typically qos.Registry.Weight):
// on every solve, each application's Weight is stamped from it before the
// policy runs, so class weights apply to jobs registered through any call
// site without those call sites knowing about QoS. An application that
// already carries an explicit non-zero Weight keeps it. Returns a for
// chaining; w may be nil (no weighting). Call before the arbiter is
// shared.
func (a *Arbiter) WithWeights(w func(id string) float64) *Arbiter {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.weightOf = w
	return a
}

// WithQuarantine sets the live-capacity floor for gray-failure
// quarantine: MarkDegraded excludes a node from new allocations only
// while at least floor allocatable nodes remain, so correlated
// slowness (a sick rack, a shared-switch brownout) degrades to
// deprioritization instead of an empty pool. floor values below 1 are
// raised to 1 — the pool can never be quarantined empty. Also
// registers the arbiter_quarantine_* series on the registry given to
// Instrument (call Instrument first); a stack that never opts into
// gray-failure handling exposes none of them. Returns a for chaining;
// call before the arbiter is shared.
func (a *Arbiter) WithQuarantine(floor int) *Arbiter {
	a.mu.Lock()
	defer a.mu.Unlock()
	if floor < 1 {
		floor = 1
	}
	a.quarFloor = floor
	reg := a.reg
	a.tel.quarMarks = reg.Counter("arbiter_quarantine_marked_total")
	a.tel.quarRestores = reg.Counter("arbiter_quarantine_restored_total")
	a.tel.ionsQuarantined = reg.Gauge("arbiter_quarantine_ions")
	a.tel.quarFloorHeld = reg.Gauge("arbiter_quarantine_floor_held")
	return a
}

// LastSolveTime reports how long the most recent policy invocation took.
func (a *Arbiter) LastSolveTime() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastSolve
}

// JobStarted registers a new running application, re-arbitrates, and
// publishes the updated mapping. It returns the addresses assigned to the
// new application.
func (a *Arbiter) JobStarted(app policy.Application) ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.running[app.ID]; dup {
		return nil, fmt.Errorf("arbiter: job %s already running", app.ID)
	}
	if len(a.availablePool()) == 0 {
		return nil, fmt.Errorf("%w: cannot start %s (pool %d, down %d, draining %d)",
			ErrNoLiveIONs, app.ID, len(a.pool), len(a.down), len(a.draining))
	}
	a.running[app.ID] = app
	// Intent first: if the crash lands between this append and the solve,
	// recovery sees the job and solves for it; if the solve below fails,
	// the compensating record undoes the intent.
	a.record(journal.Record{Kind: journal.KindJobStarted, App: appRecord(app)})
	if err := a.rearbitrate(); err != nil {
		delete(a.running, app.ID)
		a.record(journal.Record{Kind: journal.KindJobFinished, Job: app.ID})
		a.tel.jobsRunning.Set(int64(len(a.running)))
		return nil, err
	}
	a.tel.jobsRunning.Set(int64(len(a.running)))
	return append([]string(nil), a.assign[app.ID]...), nil
}

// JobFinished removes an application and re-arbitrates for the remainder.
// If re-arbitration fails, the finished job stays removed and the previous
// assignment — pruned of the finished job — is published, so clients never
// route on a mapping that still advertises the finished job's I/O nodes
// and the remaining jobs keep their established routes.
func (a *Arbiter) JobFinished(id string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.running[id]; !ok {
		return fmt.Errorf("%w: %s is not running", ErrUnknownJob, id)
	}
	delete(a.running, id)
	delete(a.assign, id)
	a.record(journal.Record{Kind: journal.KindJobFinished, Job: id})
	a.tel.jobsRunning.Set(int64(len(a.running)))
	if len(a.running) == 0 {
		a.assign = map[string][]string{}
		a.publish()
		return nil
	}
	if err := a.rearbitrate(); err != nil {
		// rearbitrate mutates a.assign only on success, so the pruned
		// previous assignment is still consistent (the finished job's
		// nodes simply idle until the next successful solve).
		a.tel.keptMappings.Inc()
		a.publish()
		return fmt.Errorf("arbiter: job %s finished, previous mapping kept: %w", id, err)
	}
	return nil
}

// Current returns the present address assignment.
func (a *Arbiter) Current() map[string][]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string][]string, len(a.assign))
	for app, addrs := range a.assign {
		out[app] = append([]string(nil), addrs...)
	}
	return out
}

// availablePool returns the pool minus down, draining, and quarantined
// nodes — the addresses arbitration may hand out — in stable pool
// order. Caller holds the lock.
func (a *Arbiter) availablePool() []string {
	quar := a.quarantinedLocked()
	avail := make([]string, 0, len(a.pool))
	for _, addr := range a.pool {
		if !a.down[addr] && !a.draining[addr] && !quar[addr] {
			avail = append(avail, addr)
		}
	}
	return avail
}

// quarantinedLocked computes the effective quarantine set: degraded
// nodes, taken in stable pool order, excluded from allocation only
// while the remaining allocatable capacity stays at or above the
// floor. Degraded nodes past the floor stay allocatable — rearbitrate
// deprioritizes them like overloaded ones instead. Down and draining
// nodes are never in the set: stronger states already exclude them,
// and counting them would double-charge the floor. Caller holds the
// lock.
func (a *Arbiter) quarantinedLocked() map[string]bool {
	if len(a.degraded) == 0 {
		return nil
	}
	live := 0
	for _, addr := range a.pool {
		if !a.down[addr] && !a.draining[addr] {
			live++
		}
	}
	quar := make(map[string]bool, len(a.degraded))
	for _, addr := range a.pool {
		if !a.degraded[addr] || a.down[addr] || a.draining[addr] {
			continue
		}
		if live-len(quar)-1 < a.quarFloor {
			break // floor reached: the rest stay allocatable, deprioritized
		}
		quar[addr] = true
	}
	return quar
}

func (a *Arbiter) inPool(addr string) bool {
	for _, p := range a.pool {
		if p == addr {
			return true
		}
	}
	return false
}

// Down returns the addresses currently marked down.
func (a *Arbiter) Down() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.down))
	for _, addr := range a.pool {
		if a.down[addr] {
			out = append(out, addr)
		}
	}
	return out
}

// Overloaded returns the addresses currently marked overloaded, in stable
// pool order.
func (a *Arbiter) Overloaded() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.overloaded))
	for _, addr := range a.pool {
		if a.overloaded[addr] {
			out = append(out, addr)
		}
	}
	return out
}

// updatePoolGauges refreshes the live/down/overloaded/draining gauges.
// Caller holds the lock.
func (a *Arbiter) updatePoolGauges() {
	a.tel.ionsDown.Set(int64(len(a.down)))
	a.tel.ionsLive.Set(int64(len(a.pool) - len(a.down)))
	a.tel.ionsOverload.Set(int64(len(a.overloaded)))
	a.tel.ionsDraining.Set(int64(len(a.draining)))
	if a.tel.ionsQuarantined != nil {
		quar := a.quarantinedLocked()
		a.tel.ionsQuarantined.Set(int64(len(quar)))
		held := 0
		for addr := range a.degraded {
			if !quar[addr] && !a.down[addr] && !a.draining[addr] {
				held++
			}
		}
		a.tel.quarFloorHeld.Set(int64(held))
	}
}

// without returns addrs with every occurrence of addr removed (the slice
// is only copied when something is actually removed).
func without(addrs []string, addr string) []string {
	hit := false
	for _, x := range addrs {
		if x == addr {
			hit = true
			break
		}
	}
	if !hit {
		return addrs
	}
	out := make([]string, 0, len(addrs)-1)
	for _, x := range addrs {
		if x != addr {
			out = append(out, x)
		}
	}
	return out
}

// MarkDown removes addr from the live pool (a health prober observed it
// unreachable) and re-arbitrates the surviving jobs. The allocation
// invariant — no job is ever mapped to a down I/O node — holds on every
// published mapping even when the policy solve fails: the down node is
// stripped from the previous assignment first, and that degraded (but
// safe) mapping is what gets published on the failure path. Marking an
// already-down node is a no-op.
func (a *Arbiter) MarkDown(addr string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inPool(addr) {
		return fmt.Errorf("%w: %s", ErrUnknownION, addr)
	}
	if a.down[addr] {
		return nil
	}
	if a.draining[addr] {
		// The node died mid-drain: the graceful exit aborts into the hard
		// one. Whoever was waiting for quiescence observes the node down
		// and gives up; re-arbitration below routes around it either way.
		delete(a.draining, addr)
		a.tel.drainsAborted.Inc()
	}
	a.down[addr] = true
	a.record(journal.Record{Kind: journal.KindMarkDown, Addr: addr})
	a.tel.marksDown.Inc()
	a.updatePoolGauges()

	// Invariant first, policy second: strip the dead node from the
	// current assignment before any solve runs.
	touched := false
	for app, addrs := range a.assign {
		filtered := without(addrs, addr)
		if len(filtered) != len(addrs) {
			a.assign[app] = filtered
			touched = true
		}
	}
	if len(a.running) == 0 {
		if touched {
			a.publish()
		}
		return nil
	}
	if err := a.rearbitrate(); err != nil {
		// The pruned previous assignment is still safe (nothing routes to
		// the dead node); publish it so clients stop using the node now.
		a.tel.keptMappings.Inc()
		a.publish()
		return fmt.Errorf("arbiter: %s marked down, degraded mapping kept: %w", addr, err)
	}
	return nil
}

// MarkUp returns addr to the live pool and re-arbitrates so jobs can grow
// back onto it. Marking a node that is not down is a no-op. If the solve
// fails the previous mapping stays (it is still valid — the recovered
// node simply idles until the next successful solve).
func (a *Arbiter) MarkUp(addr string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inPool(addr) {
		return fmt.Errorf("%w: %s", ErrUnknownION, addr)
	}
	if !a.down[addr] {
		return nil
	}
	delete(a.down, addr)
	a.record(journal.Record{Kind: journal.KindMarkUp, Addr: addr})
	a.tel.marksUp.Inc()
	a.updatePoolGauges()
	if len(a.running) == 0 {
		return nil
	}
	if err := a.rearbitrate(); err != nil {
		a.tel.keptMappings.Inc()
		return fmt.Errorf("arbiter: %s marked up, previous mapping kept: %w", addr, err)
	}
	return nil
}

// MarkOverloaded records that addr is shedding load (a health prober saw
// sustained queue depth or busy responses) and re-arbitrates so jobs drift
// off it. Overload is softer than down: the node stays in the live pool —
// the arbitration invariant "no job maps to a down node" does NOT extend
// to overloaded ones, because a saturated node still completes work and
// removing its capacity under peak load would make the overload worse.
// The solver merely prefers every other live node first, so an overloaded
// node keeps serving only when the pool is too small to avoid it. Marking
// an already-overloaded node is a no-op; marks on down nodes are recorded
// (they take effect when the node comes back up).
func (a *Arbiter) MarkOverloaded(addr string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inPool(addr) {
		return fmt.Errorf("%w: %s", ErrUnknownION, addr)
	}
	if a.overloaded[addr] {
		return nil
	}
	if a.draining[addr] {
		// Drain wins: the node is already excluded from every allocation,
		// which is a strictly stronger steer than the overload preference,
		// and it is about to leave the pool anyway.
		return nil
	}
	a.overloaded[addr] = true
	a.record(journal.Record{Kind: journal.KindMarkOverloaded, Addr: addr})
	a.tel.marksOverloaded.Inc()
	a.updatePoolGauges()
	if len(a.running) == 0 {
		return nil
	}
	if err := a.rearbitrate(); err != nil {
		// The previous mapping is still valid — overloaded nodes are
		// degraded, not gone — so keep it rather than publish nothing.
		a.tel.keptMappings.Inc()
		return fmt.Errorf("arbiter: %s marked overloaded, previous mapping kept: %w", addr, err)
	}
	return nil
}

// MarkRecovered clears addr's overload mark and re-arbitrates so jobs can
// spread back onto it. Marking a node that is not overloaded is a no-op.
func (a *Arbiter) MarkRecovered(addr string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inPool(addr) {
		return fmt.Errorf("%w: %s", ErrUnknownION, addr)
	}
	if !a.overloaded[addr] {
		return nil
	}
	delete(a.overloaded, addr)
	a.record(journal.Record{Kind: journal.KindMarkRecovered, Addr: addr})
	a.tel.marksRecovered.Inc()
	a.updatePoolGauges()
	if len(a.running) == 0 {
		return nil
	}
	if err := a.rearbitrate(); err != nil {
		a.tel.keptMappings.Inc()
		return fmt.Errorf("arbiter: %s recovered from overload, previous mapping kept: %w", addr, err)
	}
	return nil
}

// MarkDegraded quarantines addr as fail-slow (the health scorer saw its
// latency sustained far above its peers'): like a drain, the node keeps
// serving whatever already routes to it but re-arbitration stops
// handing it out, so traffic migrates off under the no-shrink invariant
// — and unlike a drain it is bounded by the quarantine floor (see
// WithQuarantine): when excluding the node would leave fewer than
// floor allocatable nodes, it stays allocatable and is merely
// deprioritized like an overloaded one, so correlated slowness cannot
// empty the pool. Marking an already-degraded node is a no-op; marks
// on down nodes are recorded (they take effect when the node rises);
// marks on draining nodes are dropped — the drain is a strictly
// stronger exclusion and the node is leaving anyway.
func (a *Arbiter) MarkDegraded(addr string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inPool(addr) {
		return fmt.Errorf("%w: %s", ErrUnknownION, addr)
	}
	if a.degraded[addr] {
		return nil
	}
	if a.draining[addr] {
		return nil // drain wins, as with MarkOverloaded
	}
	a.degraded[addr] = true
	a.record(journal.Record{Kind: journal.KindMarkDegraded, Addr: addr})
	a.tel.quarMarks.Inc()
	a.updatePoolGauges()
	if len(a.running) == 0 {
		return nil
	}
	if err := a.rearbitrate(); err != nil {
		// The previous mapping is still valid — a slow node is slow, not
		// gone — so keep it rather than publish nothing.
		a.tel.keptMappings.Inc()
		return fmt.Errorf("arbiter: %s quarantined, previous mapping kept: %w", addr, err)
	}
	return nil
}

// MarkRestored clears addr's fail-slow mark and re-arbitrates so jobs
// can spread back onto it. Marking a node that is not degraded is a
// no-op.
func (a *Arbiter) MarkRestored(addr string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inPool(addr) {
		return fmt.Errorf("%w: %s", ErrUnknownION, addr)
	}
	if !a.degraded[addr] {
		return nil
	}
	delete(a.degraded, addr)
	a.record(journal.Record{Kind: journal.KindMarkRestored, Addr: addr})
	a.tel.quarRestores.Inc()
	a.updatePoolGauges()
	if len(a.running) == 0 {
		return nil
	}
	if err := a.rearbitrate(); err != nil {
		a.tel.keptMappings.Inc()
		return fmt.Errorf("arbiter: %s restored from quarantine, previous mapping kept: %w", addr, err)
	}
	return nil
}

// Degraded returns the addresses currently marked fail-slow, in stable
// pool order — the marks, not the effective quarantine (a mark held
// back by the capacity floor is still listed; see Quarantined).
func (a *Arbiter) Degraded() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.degraded))
	for _, addr := range a.pool {
		if a.degraded[addr] {
			out = append(out, addr)
		}
	}
	return out
}

// IsDegraded reports whether addr carries a fail-slow mark.
func (a *Arbiter) IsDegraded(addr string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.degraded[addr]
}

// Quarantined returns the addresses currently excluded from allocation
// by the gray-failure plane, in stable pool order: the degraded marks
// minus whatever the capacity floor held back.
func (a *Arbiter) Quarantined() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	quar := a.quarantinedLocked()
	out := make([]string, 0, len(quar))
	for _, addr := range a.pool {
		if quar[addr] {
			out = append(out, addr)
		}
	}
	return out
}

// Drain marks addr as leaving the pool gracefully: it stays alive and
// keeps serving whatever is already in flight, but re-arbitration stops
// handing it out, so traffic migrates off under the no-shrink invariant
// (every job keeps its allocated count — on other nodes). Distinct from
// down (the node is healthy) and from overloaded (the node is never
// preferred, not merely deprioritized). Draining an already-draining node
// is a no-op; draining a down node is refused with ErrIONDown. If moving
// the assignments off addr is infeasible (the solve fails or the rest of
// the pool cannot absorb them), the drain is rolled back and refused —
// the caller must not decommission.
func (a *Arbiter) Drain(addr string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inPool(addr) {
		return fmt.Errorf("%w: %s", ErrUnknownION, addr)
	}
	if a.draining[addr] {
		return nil
	}
	if a.down[addr] {
		return fmt.Errorf("%w: cannot drain %s", ErrIONDown, addr)
	}
	a.draining[addr] = true
	// Intent first, like JobStarted: a crash mid-migration must leave a
	// DrainStart in the journal so recovery knows to abort it.
	a.record(journal.Record{Kind: journal.KindDrainStart, Addr: addr})
	if len(a.running) > 0 {
		if err := a.rearbitrate(); err != nil {
			delete(a.draining, addr)
			a.record(journal.Record{Kind: journal.KindDrainAbort, Addr: addr})
			a.updatePoolGauges()
			return fmt.Errorf("arbiter: drain of %s refused, mapping unchanged: %w", addr, err)
		}
	}
	a.tel.drains.Inc()
	a.updatePoolGauges()
	return nil
}

// AbortDrain cancels a drain in progress and returns addr to the
// allocatable pool. Aborting a node that is not draining is a no-op (the
// drain may already have aborted into MarkDown). If the follow-up solve
// fails the previous mapping stays — it is still valid, the node simply
// idles until the next successful solve.
func (a *Arbiter) AbortDrain(addr string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inPool(addr) {
		return fmt.Errorf("%w: %s", ErrUnknownION, addr)
	}
	if !a.draining[addr] {
		return nil
	}
	delete(a.draining, addr)
	a.record(journal.Record{Kind: journal.KindDrainAbort, Addr: addr})
	a.tel.drainsAborted.Inc()
	a.updatePoolGauges()
	if len(a.running) == 0 {
		return nil
	}
	if err := a.rearbitrate(); err != nil {
		a.tel.keptMappings.Inc()
		return fmt.Errorf("arbiter: drain of %s aborted, previous mapping kept: %w", addr, err)
	}
	return nil
}

// AddION grows the pool with a freshly provisioned node and re-arbitrates
// so running jobs can spread onto it. Duplicates are refused. If the
// follow-up solve fails the node stays in the pool and the previous
// mapping stays published (still valid — the new node idles until the
// next successful solve), so the error is advisory.
func (a *Arbiter) AddION(addr string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if addr == "" {
		return errors.New("arbiter: empty I/O node address")
	}
	if a.inPool(addr) {
		return fmt.Errorf("arbiter: duplicate I/O node %s", addr)
	}
	a.pool = append(a.pool, addr)
	a.record(journal.Record{Kind: journal.KindAddION, Addr: addr})
	a.tel.ionsAdded.Inc()
	a.updatePoolGauges()
	if len(a.running) == 0 {
		return nil
	}
	if err := a.rearbitrate(); err != nil {
		a.tel.keptMappings.Inc()
		return fmt.Errorf("arbiter: %s added, previous mapping kept: %w", addr, err)
	}
	return nil
}

// RemoveION forgets addr entirely — pool membership, down/overloaded/
// draining marks, everything. It is the terminal step of a drain (or the
// disposal of a node that never rose) and is refused with ErrIONAssigned
// while any job still routes to addr: remove only what arbitration can no
// longer hand out. No re-arbitration runs — by construction nothing was
// assigned to the node.
func (a *Arbiter) RemoveION(addr string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.inPool(addr) {
		return fmt.Errorf("%w: %s", ErrUnknownION, addr)
	}
	for app, addrs := range a.assign {
		for _, x := range addrs {
			if x == addr {
				return fmt.Errorf("%w: %s still routes %s", ErrIONAssigned, addr, app)
			}
		}
	}
	a.pool = without(a.pool, addr)
	delete(a.down, addr)
	delete(a.overloaded, addr)
	delete(a.draining, addr)
	delete(a.degraded, addr)
	a.record(journal.Record{Kind: journal.KindRemoveION, Addr: addr})
	a.tel.ionsRemoved.Inc()
	a.updatePoolGauges()
	return nil
}

// Draining returns the addresses currently draining, in stable pool order.
func (a *Arbiter) Draining() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.draining))
	for _, addr := range a.pool {
		if a.draining[addr] {
			out = append(out, addr)
		}
	}
	return out
}

// IsDraining reports whether addr is draining.
func (a *Arbiter) IsDraining(addr string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining[addr]
}

// Pool returns the current pool addresses (including down and draining
// members), in stable order.
func (a *Arbiter) Pool() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.pool...)
}

// rearbitrate recomputes counts with the policy and maps them to concrete
// addresses. Caller holds the lock.
func (a *Arbiter) rearbitrate() error {
	apps := make([]policy.Application, 0, len(a.running))
	for _, app := range a.running {
		if a.weightOf != nil && app.Weight == 0 {
			app.Weight = a.weightOf(app.ID)
		}
		apps = append(apps, app)
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].ID < apps[j].ID })

	quar := a.quarantinedLocked()
	avail := a.availablePool()
	if len(avail) == 0 {
		a.tel.solveErrors.Inc()
		return fmt.Errorf("%w: %d of %d marked down, %d draining",
			ErrNoLiveIONs, len(a.down), len(a.pool), len(a.draining))
	}
	start := time.Now()
	alloc, err := a.pol.Allocate(apps, len(avail))
	a.tel.solves.Inc()
	a.tel.solveLatency.ObserveDuration(time.Since(start))
	if err != nil {
		a.tel.solveErrors.Inc()
		return fmt.Errorf("arbiter: %s: %w", a.pol.Name(), err)
	}
	a.lastSolve = time.Since(start)

	// Phase 1: shrink or keep — retain a stable prefix of each app's
	// current addresses, skipping any node marked down, overloaded,
	// draining, or quarantined in the meantime. Dropping overloaded
	// nodes from the kept prefix is what steers load away; dropping
	// draining ones is what migrates traffic off a node headed for
	// decommission; dropping quarantined ones is what re-steers apps
	// away from a fail-slow node. The app re-grows in phase 2, which
	// hands out healthy capacity first.
	next := make(map[string][]string, len(alloc))
	used := map[string]bool{}
	for _, app := range apps {
		want := alloc[app.ID]
		cur := a.assign[app.ID]
		keep := make([]string, 0, len(cur))
		for _, addr := range cur {
			if len(keep) == want {
				break
			}
			if !a.down[addr] && !a.overloaded[addr] && !a.draining[addr] && !quar[addr] {
				keep = append(keep, addr)
			}
		}
		next[app.ID] = keep
		for _, addr := range keep {
			used[addr] = true
		}
	}
	// Phase 2: grow from the free available pool in stable pool order,
	// healthy nodes first — overloaded ones, and degraded ones the
	// quarantine floor held back, are appended last so they absorb load
	// only when the healthy pool cannot cover the allocation (capacity
	// is deprioritized, never destroyed). Draining and quarantined
	// nodes are not in the available pool at all.
	free := make([]string, 0, len(avail))
	for _, addr := range avail {
		if !used[addr] && !a.overloaded[addr] && !a.degraded[addr] {
			free = append(free, addr)
		}
	}
	for _, addr := range avail {
		if !used[addr] && (a.overloaded[addr] || a.degraded[addr]) {
			free = append(free, addr)
		}
	}
	for _, app := range apps {
		want := alloc[app.ID]
		for len(next[app.ID]) < want {
			if len(free) == 0 {
				return fmt.Errorf("arbiter: pool exhausted assigning %s (policy overcommitted)", app.ID)
			}
			next[app.ID] = append(next[app.ID], free[0])
			free = free[1:]
		}
	}
	a.assign = next
	a.publish()
	return nil
}

// publish pushes the current assignment to the bus. Caller holds the lock.
// With a journal attached the publish record is appended (and fsynced)
// BEFORE the bus sees the map — true write-ahead: the journal's epoch can
// run ahead of what clients observed, never behind, so a recovery fence
// computed from the journal always covers every epoch in the wild.
func (a *Arbiter) publish() {
	a.tel.published.Inc()
	if a.jn != nil {
		a.epoch = a.bus.Version() + 1
		a.record(journal.Record{Kind: journal.KindPublish, Assign: a.assign, Epoch: a.epoch})
	}
	a.bus.Publish(a.assign)
}
