// Package arbiter is the live policy-solver service of the reproduction:
// the component that, on every change of the running-job set, re-runs the
// arbitration policy and publishes a new application → I/O-node mapping for
// the forwarding clients (the paper's solver that "runs on a separate node,
// possibly the same used by a job manager").
//
// Allocation decisions are counts; the arbiter turns them into concrete
// I/O-node addresses, keeping an application's existing nodes when its
// count shrinks or is unchanged so remaps disturb as little routing as
// possible, and never sharing one I/O node between applications.
package arbiter

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/mapping"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// Arbiter owns a pool of I/O-node addresses and a mapping bus.
type Arbiter struct {
	pol  policy.Policy
	bus  *mapping.Bus
	pool []string

	mu      sync.Mutex
	running map[string]policy.Application
	assign  map[string][]string // app → addresses
	// SolveTime records the duration of the last policy invocation (the
	// paper reports 399 µs for its live case).
	lastSolve time.Duration

	// Telemetry handles (nil until Instrument; all no-ops then).
	tel struct {
		solves, solveErrors, published *telemetry.Counter
		keptMappings                   *telemetry.Counter
		jobsRunning                    *telemetry.Gauge
		solveLatency                   *telemetry.Histogram
	}
}

// New creates an arbiter over the given policy, I/O-node addresses, and
// mapping bus.
func New(pol policy.Policy, ionAddrs []string, bus *mapping.Bus) (*Arbiter, error) {
	if pol == nil {
		return nil, errors.New("arbiter: policy is required")
	}
	if bus == nil {
		return nil, errors.New("arbiter: mapping bus is required")
	}
	uniq := map[string]bool{}
	for _, a := range ionAddrs {
		if uniq[a] {
			return nil, fmt.Errorf("arbiter: duplicate I/O node %s", a)
		}
		uniq[a] = true
	}
	return &Arbiter{
		pol:     pol,
		bus:     bus,
		pool:    append([]string(nil), ionAddrs...),
		running: map[string]policy.Application{},
		assign:  map[string][]string{},
	}, nil
}

// PolicyName reports the active policy.
func (a *Arbiter) PolicyName() string { return a.pol.Name() }

// Instrument attaches arbitration metrics to reg: solve count/latency,
// solver failures, published mappings, re-arbitration fallbacks where the
// pruned previous mapping was kept, and the running-job gauge. Returns a
// for chaining; reg may be nil.
func (a *Arbiter) Instrument(reg *telemetry.Registry) *Arbiter {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tel.solves = reg.Counter("arbiter_solves_total")
	a.tel.solveErrors = reg.Counter("arbiter_solve_errors_total")
	a.tel.published = reg.Counter("arbiter_mappings_published_total")
	a.tel.keptMappings = reg.Counter("arbiter_kept_previous_mapping_total")
	a.tel.jobsRunning = reg.Gauge("arbiter_jobs_running")
	a.tel.solveLatency = reg.Histogram("arbiter_solve_latency_seconds", telemetry.LatencyBuckets())
	return a
}

// LastSolveTime reports how long the most recent policy invocation took.
func (a *Arbiter) LastSolveTime() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastSolve
}

// JobStarted registers a new running application, re-arbitrates, and
// publishes the updated mapping. It returns the addresses assigned to the
// new application.
func (a *Arbiter) JobStarted(app policy.Application) ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.running[app.ID]; dup {
		return nil, fmt.Errorf("arbiter: job %s already running", app.ID)
	}
	a.running[app.ID] = app
	if err := a.rearbitrate(); err != nil {
		delete(a.running, app.ID)
		a.tel.jobsRunning.Set(int64(len(a.running)))
		return nil, err
	}
	a.tel.jobsRunning.Set(int64(len(a.running)))
	return append([]string(nil), a.assign[app.ID]...), nil
}

// JobFinished removes an application and re-arbitrates for the remainder.
// If re-arbitration fails, the finished job stays removed and the previous
// assignment — pruned of the finished job — is published, so clients never
// route on a mapping that still advertises the finished job's I/O nodes
// and the remaining jobs keep their established routes.
func (a *Arbiter) JobFinished(id string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.running[id]; !ok {
		return fmt.Errorf("arbiter: job %s not running", id)
	}
	delete(a.running, id)
	delete(a.assign, id)
	a.tel.jobsRunning.Set(int64(len(a.running)))
	if len(a.running) == 0 {
		a.assign = map[string][]string{}
		a.publish()
		return nil
	}
	if err := a.rearbitrate(); err != nil {
		// rearbitrate mutates a.assign only on success, so the pruned
		// previous assignment is still consistent (the finished job's
		// nodes simply idle until the next successful solve).
		a.tel.keptMappings.Inc()
		a.publish()
		return fmt.Errorf("arbiter: job %s finished, previous mapping kept: %w", id, err)
	}
	return nil
}

// Current returns the present address assignment.
func (a *Arbiter) Current() map[string][]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string][]string, len(a.assign))
	for app, addrs := range a.assign {
		out[app] = append([]string(nil), addrs...)
	}
	return out
}

// rearbitrate recomputes counts with the policy and maps them to concrete
// addresses. Caller holds the lock.
func (a *Arbiter) rearbitrate() error {
	apps := make([]policy.Application, 0, len(a.running))
	for _, app := range a.running {
		apps = append(apps, app)
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].ID < apps[j].ID })

	start := time.Now()
	alloc, err := a.pol.Allocate(apps, len(a.pool))
	a.tel.solves.Inc()
	a.tel.solveLatency.ObserveDuration(time.Since(start))
	if err != nil {
		a.tel.solveErrors.Inc()
		return fmt.Errorf("arbiter: %s: %w", a.pol.Name(), err)
	}
	a.lastSolve = time.Since(start)

	// Phase 1: shrink or keep — retain a stable prefix of each app's
	// current addresses.
	next := make(map[string][]string, len(alloc))
	used := map[string]bool{}
	for _, app := range apps {
		want := alloc[app.ID]
		cur := a.assign[app.ID]
		if want < len(cur) {
			cur = cur[:want]
		}
		next[app.ID] = append([]string(nil), cur...)
		for _, addr := range cur {
			used[addr] = true
		}
	}
	// Phase 2: grow from the free pool, in stable pool order.
	free := make([]string, 0, len(a.pool))
	for _, addr := range a.pool {
		if !used[addr] {
			free = append(free, addr)
		}
	}
	for _, app := range apps {
		want := alloc[app.ID]
		for len(next[app.ID]) < want {
			if len(free) == 0 {
				return fmt.Errorf("arbiter: pool exhausted assigning %s (policy overcommitted)", app.ID)
			}
			next[app.ID] = append(next[app.ID], free[0])
			free = free[1:]
		}
	}
	a.assign = next
	a.publish()
	return nil
}

// publish pushes the current assignment to the bus. Caller holds the lock.
func (a *Arbiter) publish() {
	a.tel.published.Inc()
	a.bus.Publish(a.assign)
}
