package arbiter

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/mapping"
	"repro/internal/perfmodel"
	"repro/internal/policy"
)

func addrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("ion%d:900%d", i, i)
	}
	return out
}

func app(t *testing.T, label, id string) policy.Application {
	t.Helper()
	spec, err := perfmodel.AppByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return policy.FromAppSpec(id, spec)
}

func TestNewValidation(t *testing.T) {
	bus := mapping.NewBus()
	if _, err := New(nil, addrs(2), bus); err == nil {
		t.Fatal("nil policy should fail")
	}
	if _, err := New(policy.MCKP{}, addrs(2), nil); err == nil {
		t.Fatal("nil bus should fail")
	}
	if _, err := New(policy.MCKP{}, []string{"a", "a"}, bus); err == nil {
		t.Fatal("duplicate addresses should fail")
	}
}

func TestSingleJobGetsItsBestAllocation(t *testing.T) {
	bus := mapping.NewBus()
	arb, err := New(policy.MCKP{}, addrs(12), bus)
	if err != nil {
		t.Fatal(err)
	}
	got, err := arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("IOR-MPI alone should get 8 IONs, got %d", len(got))
	}
	m := bus.Current()
	if len(m.For("ior1")) != 8 {
		t.Fatalf("bus mapping: %v", m.For("ior1"))
	}
	if arb.LastSolveTime() <= 0 {
		t.Fatal("solve time not recorded")
	}
}

func TestNoSharingBetweenApps(t *testing.T) {
	bus := mapping.NewBus()
	arb, _ := New(policy.MCKP{}, addrs(12), bus)
	ids := []string{"a", "b", "c"}
	for i, label := range []string{"IOR-MPI", "POSIX-L", "HACC"} {
		if _, err := arb.JobStarted(app(t, label, ids[i])); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]string{}
	for appID, list := range arb.Current() {
		for _, addr := range list {
			if other, dup := seen[addr]; dup {
				t.Fatalf("ION %s shared between %s and %s", addr, other, appID)
			}
			seen[addr] = appID
		}
	}
}

func TestRemapKeepsStablePrefix(t *testing.T) {
	bus := mapping.NewBus()
	arb, _ := New(policy.MCKP{}, addrs(12), bus)
	if _, err := arb.JobStarted(app(t, "HACC", "hacc1")); err != nil {
		t.Fatal(err)
	}
	before := arb.Current()["hacc1"] // HACC alone: 8 IONs
	if len(before) != 8 {
		t.Fatalf("HACC alone should get 8, got %d", len(before))
	}
	// IOR-MPI arrives; HACC shrinks but keeps a prefix of its nodes.
	if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	after := arb.Current()["hacc1"]
	if len(after) >= len(before) {
		t.Fatalf("HACC should shrink when IOR-MPI arrives: %d → %d", len(before), len(after))
	}
	for i, addr := range after {
		if addr != before[i] {
			t.Fatalf("shrink should keep a stable prefix: %v → %v", before, after)
		}
	}
}

func TestJobFinishedTriggersRegrow(t *testing.T) {
	bus := mapping.NewBus()
	arb, _ := New(policy.MCKP{}, addrs(12), bus)
	arb.JobStarted(app(t, "HACC", "hacc1"))
	arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	shrunk := len(arb.Current()["hacc1"])
	if err := arb.JobFinished("ior1"); err != nil {
		t.Fatal(err)
	}
	regrown := len(arb.Current()["hacc1"])
	if regrown <= shrunk {
		t.Fatalf("HACC should regrow after IOR-MPI finishes: %d → %d", shrunk, regrown)
	}
	if _, ok := arb.Current()["ior1"]; ok {
		t.Fatal("finished job still mapped")
	}
}

func TestLastJobFinishedClearsMapping(t *testing.T) {
	bus := mapping.NewBus()
	arb, _ := New(policy.MCKP{}, addrs(4), bus)
	arb.JobStarted(app(t, "HACC", "h"))
	v := bus.Current().Version
	if err := arb.JobFinished("h"); err != nil {
		t.Fatal(err)
	}
	m := bus.Current()
	if len(m.IONs) != 0 || m.Version <= v {
		t.Fatalf("final mapping: %+v", m)
	}
}

func TestDuplicateAndUnknownJobs(t *testing.T) {
	bus := mapping.NewBus()
	arb, _ := New(policy.MCKP{}, addrs(4), bus)
	if _, err := arb.JobStarted(app(t, "HACC", "h")); err != nil {
		t.Fatal(err)
	}
	if _, err := arb.JobStarted(app(t, "HACC", "h")); err == nil {
		t.Fatal("duplicate start should fail")
	}
	if err := arb.JobFinished("nope"); err == nil {
		t.Fatal("finishing unknown job should fail")
	}
}

func TestFailedArbitrationRollsBack(t *testing.T) {
	bus := mapping.NewBus()
	// ZERO policy fails when an app lacks a 0-ION option.
	arb, _ := New(policy.Zero{}, addrs(4), bus)
	noZero := policy.Application{ID: "x", Nodes: 8, Processes: 8,
		Curve: perfmodel.NewCurve(perfmodel.Point{IONs: 1, Bandwidth: 1})}
	if _, err := arb.JobStarted(noZero); err == nil {
		t.Fatal("expected policy failure")
	}
	// The failed job must not linger.
	withZero := policy.Application{ID: "y", Nodes: 8, Processes: 8,
		Curve: perfmodel.NewCurve(perfmodel.Point{IONs: 0, Bandwidth: 1})}
	if _, err := arb.JobStarted(withZero); err != nil {
		t.Fatalf("arbiter wedged after failure: %v", err)
	}
	if _, ok := arb.Current()["x"]; ok {
		t.Fatal("failed job leaked into assignment")
	}
}

// scriptedPolicy delegates to an inner policy until fail is set, then
// errors on every Allocate — simulating e.g. a transiently overcommitted
// solver during re-arbitration.
type scriptedPolicy struct {
	inner policy.Policy
	fail  bool
}

func (p *scriptedPolicy) Name() string { return "SCRIPTED" }

func (p *scriptedPolicy) Allocate(apps []policy.Application, avail int) (policy.Allocation, error) {
	if p.fail {
		return nil, errors.New("scripted failure")
	}
	return p.inner.Allocate(apps, avail)
}

// TestJobFinishedFailurePublishesPrunedMapping: when re-arbitration fails
// after a job finishes, the bus must stop advertising the finished job's
// I/O nodes while the surviving jobs keep their previous routes — clients
// must never route on a mapping that includes a dead application.
func TestJobFinishedFailurePublishesPrunedMapping(t *testing.T) {
	bus := mapping.NewBus()
	pol := &scriptedPolicy{inner: policy.MCKP{}}
	arb, err := New(pol, addrs(12), bus)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arb.JobStarted(app(t, "HACC", "keep")); err != nil {
		t.Fatal(err)
	}
	if _, err := arb.JobStarted(app(t, "IOR-MPI", "done")); err != nil {
		t.Fatal(err)
	}
	keepBefore := arb.Current()["keep"]
	solveBefore := arb.LastSolveTime()
	versionBefore := bus.Current().Version

	pol.fail = true
	if err := arb.JobFinished("done"); err == nil {
		t.Fatal("expected re-arbitration failure to surface")
	}

	m := bus.Current()
	if m.Version <= versionBefore {
		t.Fatal("failure path must still publish a pruned mapping")
	}
	if len(m.For("done")) != 0 {
		t.Fatalf("finished job still advertised on the bus: %v", m.For("done"))
	}
	if got := arb.Current()["keep"]; !reflect.DeepEqual(got, keepBefore) {
		t.Fatalf("surviving job rerouted on failure: %v → %v", keepBefore, got)
	}
	if arb.LastSolveTime() != solveBefore {
		t.Fatal("failed Allocate must not overwrite lastSolve")
	}

	// The arbiter is not wedged: once the policy recovers, new jobs
	// arbitrate normally and the finished job stays gone.
	pol.fail = false
	if _, err := arb.JobStarted(app(t, "POSIX-L", "next")); err != nil {
		t.Fatalf("arbiter wedged after failed re-arbitration: %v", err)
	}
	if _, ok := arb.Current()["done"]; ok {
		t.Fatal("finished job resurrected")
	}
}

func TestPolicyName(t *testing.T) {
	arb, _ := New(policy.MCKP{}, addrs(1), mapping.NewBus())
	if arb.PolicyName() != "MCKP" {
		t.Fatal("policy name wrong")
	}
}
