package arbiter

// Elasticity tests: the graceful drain state (exclusion under the
// no-shrink invariant, rollback on infeasibility, interleavings with the
// down and overloaded marks) and dynamic pool membership (AddION /
// RemoveION), plus the idempotency table for every mark transition.

import (
	"errors"
	"testing"

	"repro/internal/mapping"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

func TestDrainExcludesNodeKeepsAllocationCount(t *testing.T) {
	bus := mapping.NewBus()
	reg := telemetry.New()
	arb, err := New(policy.MCKP{}, addrs(12), bus)
	if err != nil {
		t.Fatal(err)
	}
	arb.Instrument(reg)
	got, err := arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no initial allocation")
	}
	victim := got[0]
	want := len(got)

	if err := arb.Drain(victim); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	cur := arb.Current()["ior1"]
	if len(cur) != want {
		t.Fatalf("no-shrink violated: %d nodes after drain, want %d", len(cur), want)
	}
	if hit := assignedTo(arb.Current(), victim); len(hit) != 0 {
		t.Fatalf("draining node still assigned to %v", hit)
	}
	for _, addr := range bus.Current().For("ior1") {
		if addr == victim {
			t.Fatalf("published mapping routes to the draining node: %v", bus.Current().For("ior1"))
		}
	}
	if d := arb.Draining(); len(d) != 1 || d[0] != victim {
		t.Fatalf("Draining() = %v, want [%s]", d, victim)
	}
	if !arb.IsDraining(victim) {
		t.Fatal("IsDraining(victim) = false")
	}
	if got := reg.Counter("arbiter_drains_started_total").Value(); got != 1 {
		t.Fatalf("arbiter_drains_started_total = %d, want 1", got)
	}
	if got := reg.Gauge("arbiter_ions_draining").Value(); got != 1 {
		t.Fatalf("arbiter_ions_draining = %d, want 1", got)
	}
	// Unlike down, a draining node still counts as live — it is healthy.
	if got := reg.Gauge("arbiter_ions_live").Value(); got != 12 {
		t.Fatalf("arbiter_ions_live = %d, want 12", got)
	}

	// A new job must not land on the draining node either.
	if _, err := arb.JobStarted(app(t, "HACC", "hacc1")); err != nil {
		t.Fatalf("JobStarted during drain: %v", err)
	}
	if hit := assignedTo(arb.Current(), victim); len(hit) != 0 {
		t.Fatalf("new job placed on draining node: %v", hit)
	}
}

func TestDrainRefusedWhenInfeasible(t *testing.T) {
	bus := mapping.NewBus()
	arb, err := New(policy.MCKP{}, addrs(1), bus)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	only := arb.Pool()[0]
	before := arb.Current()
	if err := arb.Drain(only); err == nil {
		t.Fatal("draining the only node with a running job must be refused")
	} else if !errors.Is(err, ErrNoLiveIONs) {
		t.Fatalf("want ErrNoLiveIONs, got %v", err)
	}
	if arb.IsDraining(only) {
		t.Fatal("refused drain left the draining mark set")
	}
	after := arb.Current()
	if len(after["ior1"]) != len(before["ior1"]) {
		t.Fatalf("refused drain changed the mapping: %v → %v", before, after)
	}
}

func TestDrainOfDownNodeRefused(t *testing.T) {
	arb, err := New(policy.MCKP{}, addrs(3), mapping.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	if err := arb.MarkDown(arb.Pool()[0]); err != nil {
		t.Fatal(err)
	}
	if err := arb.Drain(arb.Pool()[0]); !errors.Is(err, ErrIONDown) {
		t.Fatalf("want ErrIONDown, got %v", err)
	}
	if err := arb.Drain("nobody:1"); !errors.Is(err, ErrUnknownION) {
		t.Fatalf("want ErrUnknownION, got %v", err)
	}
}

func TestMarkDownAbortsDrain(t *testing.T) {
	// The ION dies mid-drain: the graceful exit must collapse cleanly
	// into the hard one — draining mark cleared, down mark set, one
	// aborted-drain count, mapping still avoiding the node.
	reg := telemetry.New()
	arb, err := New(policy.MCKP{}, addrs(4), mapping.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	arb.Instrument(reg)
	if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	victim := arb.Pool()[0]
	if err := arb.Drain(victim); err != nil {
		t.Fatal(err)
	}
	if err := arb.MarkDown(victim); err != nil {
		t.Fatalf("MarkDown mid-drain: %v", err)
	}
	if arb.IsDraining(victim) {
		t.Fatal("down node still marked draining")
	}
	if down := arb.Down(); len(down) != 1 || down[0] != victim {
		t.Fatalf("Down() = %v, want [%s]", down, victim)
	}
	if got := reg.Counter("arbiter_drains_aborted_total").Value(); got != 1 {
		t.Fatalf("arbiter_drains_aborted_total = %d, want 1", got)
	}
	if got := reg.Gauge("arbiter_ions_draining").Value(); got != 0 {
		t.Fatalf("arbiter_ions_draining = %d, want 0", got)
	}
	// The node can come back as a normal member afterwards.
	if err := arb.MarkUp(victim); err != nil {
		t.Fatalf("MarkUp after aborted drain: %v", err)
	}
}

func TestMarkOverloadedOnDrainingNodeIsNoOp(t *testing.T) {
	// Drain wins: an overload signal for a node already excluded from
	// every allocation must not flip state or re-arbitrate.
	reg := telemetry.New()
	arb, err := New(policy.MCKP{}, addrs(4), mapping.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	arb.Instrument(reg)
	if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	victim := arb.Pool()[0]
	if err := arb.Drain(victim); err != nil {
		t.Fatal(err)
	}
	solves := reg.Counter("arbiter_solves_total").Value()
	if err := arb.MarkOverloaded(victim); err != nil {
		t.Fatalf("MarkOverloaded on draining node: %v", err)
	}
	if got := len(arb.Overloaded()); got != 0 {
		t.Fatalf("draining node became overloaded: %v", arb.Overloaded())
	}
	if got := reg.Counter("arbiter_marked_overloaded_total").Value(); got != 0 {
		t.Fatalf("arbiter_marked_overloaded_total = %d, want 0", got)
	}
	if got := reg.Counter("arbiter_solves_total").Value(); got != solves {
		t.Fatalf("MarkOverloaded on draining node re-arbitrated: %d solves, want %d", got, solves)
	}
}

func TestAbortDrainReturnsNodeToPool(t *testing.T) {
	reg := telemetry.New()
	arb, err := New(policy.MCKP{}, addrs(2), mapping.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	arb.Instrument(reg)
	if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	victim := arb.Pool()[0]
	if err := arb.Drain(victim); err != nil {
		t.Fatal(err)
	}
	if err := arb.AbortDrain(victim); err != nil {
		t.Fatalf("AbortDrain: %v", err)
	}
	if arb.IsDraining(victim) {
		t.Fatal("node still draining after abort")
	}
	if got := reg.Counter("arbiter_drains_aborted_total").Value(); got != 1 {
		t.Fatalf("arbiter_drains_aborted_total = %d, want 1", got)
	}
	// Aborting a non-draining node is a no-op, not an error.
	if err := arb.AbortDrain(victim); err != nil {
		t.Fatalf("second AbortDrain: %v", err)
	}
	if got := reg.Counter("arbiter_drains_aborted_total").Value(); got != 1 {
		t.Fatalf("no-op abort counted: %d", got)
	}
}

func TestAddIONGrowsPoolAndSpreads(t *testing.T) {
	reg := telemetry.New()
	arb, err := New(policy.MCKP{}, addrs(1), mapping.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	arb.Instrument(reg)
	got, err := arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("initial allocation %v, want 1 node", got)
	}
	for _, addr := range []string{"new0:1", "new1:1", "new2:1"} {
		if err := arb.AddION(addr); err != nil {
			t.Fatalf("AddION(%s): %v", addr, err)
		}
	}
	if got := len(arb.Pool()); got != 4 {
		t.Fatalf("pool = %d, want 4", got)
	}
	if got := reg.Gauge("arbiter_ions_live").Value(); got != 4 {
		t.Fatalf("arbiter_ions_live = %d, want 4", got)
	}
	if got := len(arb.Current()["ior1"]); got <= 1 {
		t.Fatalf("job did not spread onto added capacity: %d nodes", got)
	}
	if err := arb.AddION("new0:1"); err == nil {
		t.Fatal("duplicate AddION must fail")
	}
	if err := arb.AddION(""); err == nil {
		t.Fatal("empty AddION must fail")
	}
}

func TestRemoveIONRefusedWhileAssigned(t *testing.T) {
	arb, err := New(policy.MCKP{}, addrs(2), mapping.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	got, err := arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	busy := got[0]
	if err := arb.RemoveION(busy); !errors.Is(err, ErrIONAssigned) {
		t.Fatalf("want ErrIONAssigned, got %v", err)
	}
	// After a drain the node routes nothing and removal succeeds.
	if err := arb.Drain(busy); err != nil {
		t.Fatal(err)
	}
	if err := arb.RemoveION(busy); err != nil {
		t.Fatalf("RemoveION after drain: %v", err)
	}
	if got := len(arb.Pool()); got != 1 {
		t.Fatalf("pool = %d, want 1", got)
	}
	if arb.IsDraining(busy) {
		t.Fatal("removed node still tracked as draining")
	}
	if err := arb.RemoveION(busy); !errors.Is(err, ErrUnknownION) {
		t.Fatalf("second RemoveION: want ErrUnknownION, got %v", err)
	}
}

// TestMarkIdempotencyTable pins that every state transition is idempotent
// on repeated calls for the same address: no second re-arbitration, no
// counter double-count, no gauge drift.
func TestMarkIdempotencyTable(t *testing.T) {
	cases := []struct {
		name    string
		prep    func(a *Arbiter, addr string) error // reach the state once
		again   func(a *Arbiter, addr string) error // repeat the call
		counter string
	}{
		{"MarkDown", (*Arbiter).MarkDown, (*Arbiter).MarkDown, "arbiter_marked_down_total"},
		{"MarkUp", func(a *Arbiter, addr string) error {
			if err := a.MarkDown(addr); err != nil {
				return err
			}
			return a.MarkUp(addr)
		}, (*Arbiter).MarkUp, "arbiter_marked_up_total"},
		{"MarkOverloaded", (*Arbiter).MarkOverloaded, (*Arbiter).MarkOverloaded, "arbiter_marked_overloaded_total"},
		{"MarkRecovered", func(a *Arbiter, addr string) error {
			if err := a.MarkOverloaded(addr); err != nil {
				return err
			}
			return a.MarkRecovered(addr)
		}, (*Arbiter).MarkRecovered, "arbiter_overload_recovered_total"},
		{"Drain", (*Arbiter).Drain, (*Arbiter).Drain, "arbiter_drains_started_total"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.New()
			bus := mapping.NewBus()
			arb, err := New(policy.MCKP{}, addrs(6), bus)
			if err != nil {
				t.Fatal(err)
			}
			arb.Instrument(reg)
			if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
				t.Fatal(err)
			}
			addr := arb.Pool()[0]
			if err := tc.prep(arb, addr); err != nil {
				t.Fatalf("prep: %v", err)
			}
			count := reg.Counter(tc.counter).Value()
			solves := reg.Counter("arbiter_solves_total").Value()
			version := bus.Current().Version
			gauges := map[string]int64{}
			for _, g := range []string{"arbiter_ions_down", "arbiter_ions_live", "arbiter_ions_overloaded", "arbiter_ions_draining"} {
				gauges[g] = reg.Gauge(g).Value()
			}

			if err := tc.again(arb, addr); err != nil {
				t.Fatalf("repeat: %v", err)
			}
			if got := reg.Counter(tc.counter).Value(); got != count {
				t.Fatalf("%s drifted on repeat: %d → %d", tc.counter, count, got)
			}
			if got := reg.Counter("arbiter_solves_total").Value(); got != solves {
				t.Fatalf("repeated call re-arbitrated: %d solves, want %d", got, solves)
			}
			if got := bus.Current().Version; got != version {
				t.Fatalf("repeated call published: version %d → %d", version, got)
			}
			for g, want := range gauges {
				if got := reg.Gauge(g).Value(); got != want {
					t.Fatalf("gauge %s drifted on repeat: %d → %d", g, want, got)
				}
			}
		})
	}
}
