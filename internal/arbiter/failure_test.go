package arbiter

// Failure-tolerance tests: health-driven pool shrink/grow (MarkDown /
// MarkUp) and the typed-error edge cases — JobStarted on an empty or
// fully-down pool, JobFinished for an unknown id.

import (
	"errors"
	"testing"

	"repro/internal/mapping"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

func assignedTo(assign map[string][]string, addr string) []string {
	var apps []string
	for app, addrs := range assign {
		for _, a := range addrs {
			if a == addr {
				apps = append(apps, app)
			}
		}
	}
	return apps
}

func TestMarkDownExcludesNodeAndRearbitrates(t *testing.T) {
	bus := mapping.NewBus()
	reg := telemetry.New()
	arb, err := New(policy.MCKP{}, addrs(12), bus)
	if err != nil {
		t.Fatal(err)
	}
	arb.Instrument(reg)
	got, err := arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no initial allocation")
	}
	dead := got[0]
	versionBefore := bus.Current().Version

	if err := arb.MarkDown(dead); err != nil {
		t.Fatalf("MarkDown: %v", err)
	}
	if hit := assignedTo(arb.Current(), dead); len(hit) != 0 {
		t.Fatalf("down node still assigned to %v", hit)
	}
	m := bus.Current()
	if m.Version <= versionBefore {
		t.Fatal("MarkDown must publish a new mapping")
	}
	for _, addr := range m.For("ior1") {
		if addr == dead {
			t.Fatalf("published mapping routes to the down node: %v", m.For("ior1"))
		}
	}
	if got := reg.Counter("arbiter_marked_down_total").Value(); got != 1 {
		t.Fatalf("arbiter_marked_down_total = %d, want 1", got)
	}
	if got := reg.Gauge("arbiter_ions_down").Value(); got != 1 {
		t.Fatalf("arbiter_ions_down = %d, want 1", got)
	}
	if got := reg.Gauge("arbiter_ions_live").Value(); got != 11 {
		t.Fatalf("arbiter_ions_live = %d, want 11", got)
	}
	if down := arb.Down(); len(down) != 1 || down[0] != dead {
		t.Fatalf("Down() = %v, want [%s]", down, dead)
	}

	// Idempotent re-mark: no extra count, no error.
	if err := arb.MarkDown(dead); err != nil {
		t.Fatalf("second MarkDown: %v", err)
	}
	if got := reg.Counter("arbiter_marked_down_total").Value(); got != 1 {
		t.Fatalf("re-mark counted twice: %d", got)
	}
}

func TestMarkDownUnknownAddr(t *testing.T) {
	arb, _ := New(policy.MCKP{}, addrs(2), mapping.NewBus())
	if err := arb.MarkDown("nowhere:1"); !errors.Is(err, ErrUnknownION) {
		t.Fatalf("want ErrUnknownION, got %v", err)
	}
	if err := arb.MarkUp("nowhere:1"); !errors.Is(err, ErrUnknownION) {
		t.Fatalf("MarkUp: want ErrUnknownION, got %v", err)
	}
}

func TestMarkUpRegrowsJobs(t *testing.T) {
	bus := mapping.NewBus()
	arb, _ := New(policy.MCKP{}, addrs(12), bus)
	got, err := arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	dead := got[0]
	if err := arb.MarkDown(dead); err != nil {
		t.Fatal(err)
	}
	shrunk := len(arb.Current()["ior1"])
	if err := arb.MarkUp(dead); err != nil {
		t.Fatalf("MarkUp: %v", err)
	}
	regrown := len(arb.Current()["ior1"])
	if regrown < shrunk {
		t.Fatalf("allocation shrank on MarkUp: %d → %d", shrunk, regrown)
	}
	if len(arb.Down()) != 0 {
		t.Fatalf("Down() = %v after MarkUp", arb.Down())
	}
	// MarkUp of an up node is a no-op.
	if err := arb.MarkUp(dead); err != nil {
		t.Fatalf("second MarkUp: %v", err)
	}
}

// TestMarkDownSolveFailureStillHoldsInvariant: even when the policy solve
// fails during a MarkDown, the published mapping must not route any job to
// the down node — the invariant is enforced before the solve, not by it.
func TestMarkDownSolveFailureStillHoldsInvariant(t *testing.T) {
	bus := mapping.NewBus()
	pol := &scriptedPolicy{inner: policy.MCKP{}}
	arb, err := New(pol, addrs(12), bus)
	if err != nil {
		t.Fatal(err)
	}
	got, err := arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	dead := got[0]
	versionBefore := bus.Current().Version

	pol.fail = true
	if err := arb.MarkDown(dead); err == nil {
		t.Fatal("solve failure must surface from MarkDown")
	}
	m := bus.Current()
	if m.Version <= versionBefore {
		t.Fatal("failure path must still publish the pruned mapping")
	}
	for appID, list := range m.IONs {
		for _, addr := range list {
			if addr == dead {
				t.Fatalf("job %s still routed to down node on the failure path", appID)
			}
		}
	}

	// Recovery: the policy heals, the next change re-arbitrates normally.
	pol.fail = false
	if _, err := arb.JobStarted(app(t, "HACC", "h")); err != nil {
		t.Fatalf("arbiter wedged after failed MarkDown solve: %v", err)
	}
	if hit := assignedTo(arb.Current(), dead); len(hit) != 0 {
		t.Fatalf("down node handed back out after recovery: %v", hit)
	}
}

func TestJobStartedEmptyPoolTypedError(t *testing.T) {
	arb, err := New(policy.MCKP{}, nil, mapping.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arb.JobStarted(app(t, "HACC", "h")); !errors.Is(err, ErrNoLiveIONs) {
		t.Fatalf("empty pool: want ErrNoLiveIONs, got %v", err)
	}
}

func TestJobStartedFullyDownPoolTypedError(t *testing.T) {
	pool := addrs(2)
	arb, err := New(policy.MCKP{}, pool, mapping.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range pool {
		if err := arb.MarkDown(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := arb.JobStarted(app(t, "HACC", "h")); !errors.Is(err, ErrNoLiveIONs) {
		t.Fatalf("fully-down pool: want ErrNoLiveIONs, got %v", err)
	}
	// One node recovers: starting works again.
	if err := arb.MarkUp(pool[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := arb.JobStarted(app(t, "HACC", "h")); err != nil {
		t.Fatalf("start after partial recovery: %v", err)
	}
}

func TestJobFinishedUnknownTypedError(t *testing.T) {
	arb, _ := New(policy.MCKP{}, addrs(2), mapping.NewBus())
	if err := arb.JobFinished("ghost"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("want ErrUnknownJob, got %v", err)
	}
}

// TestRunningJobSurvivesFullOutageAndRecovery: every node dies, then one
// comes back; the job must end up mapped onto the survivor (and only onto
// live nodes at every published step).
func TestRunningJobSurvivesFullOutageAndRecovery(t *testing.T) {
	pool := addrs(4)
	bus := mapping.NewBus()
	arb, _ := New(policy.MCKP{}, pool, bus)
	if _, err := arb.JobStarted(policy.Application{
		ID: "j", Nodes: 8, Processes: 8,
		Curve: perfmodel.NewCurve(
			perfmodel.Point{IONs: 0, Bandwidth: 1},
			perfmodel.Point{IONs: 1, Bandwidth: 10},
			perfmodel.Point{IONs: 2, Bandwidth: 20},
			perfmodel.Point{IONs: 4, Bandwidth: 30},
		),
	}); err != nil {
		t.Fatal(err)
	}
	for _, a := range pool {
		// The final MarkDown leaves no live node: the solve fails with
		// ErrNoLiveIONs but the published mapping must still be safe.
		err := arb.MarkDown(a)
		if len(arb.Down()) == len(pool) {
			if !errors.Is(err, ErrNoLiveIONs) {
				t.Fatalf("full outage should report ErrNoLiveIONs, got %v", err)
			}
		} else if err != nil {
			t.Fatalf("MarkDown %s: %v", a, err)
		}
		for _, list := range arb.Current() {
			for _, x := range list {
				if arbContains(arb.Down(), x) {
					t.Fatalf("assignment routes to down node %s", x)
				}
			}
		}
	}
	if n := len(bus.Current().For("j")); n != 0 {
		t.Fatalf("fully-down pool but job still mapped to %d nodes", n)
	}
	if err := arb.MarkUp(pool[2]); err != nil {
		t.Fatalf("MarkUp after outage: %v", err)
	}
	m := bus.Current().For("j")
	if len(m) != 1 || m[0] != pool[2] {
		t.Fatalf("job should regrow onto the survivor %s, got %v", pool[2], m)
	}
}

func arbContains(list []string, x string) bool {
	for _, v := range list {
		if v == x {
			return true
		}
	}
	return false
}
