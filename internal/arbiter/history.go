package arbiter

import (
	"repro/internal/perfmodel"
	"repro/internal/policy"
)

// CurveSource supplies bandwidth curves for applications from accumulated
// characterization data (implemented by darshan.DB).
type CurveSource interface {
	// Curve returns the stored curve for an application ID, if known.
	Curve(appID string) (perfmodel.Curve, bool)
}

// WithHistory wraps the arbiter so that applications registered without a
// bandwidth curve are completed from the characterization history before
// arbitration — the paper's §3.1 flow where Darshan-derived data replaces
// profiling runs. Applications unknown to the history still fall back to
// the policy's first-run default.
type WithHistory struct {
	*Arbiter
	Source CurveSource
}

// JobStarted completes the application from history when possible, then
// delegates.
func (h WithHistory) JobStarted(app policy.Application) ([]string, error) {
	if app.Curve.Len() == 0 && h.Source != nil {
		if curve, ok := h.Source.Curve(app.ID); ok {
			app.Curve = curve
		}
	}
	return h.Arbiter.JobStarted(app)
}
