package arbiter

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/darshan"
	"repro/internal/mapping"
	"repro/internal/perfmodel"
	"repro/internal/pfs"
	"repro/internal/policy"
)

// TestWithHistoryInformsArbitration: an application whose curve lives only
// in the characterization DB is arbitrated with that curve, not the
// first-run fallback.
func TestWithHistoryInformsArbitration(t *testing.T) {
	// Characterize a shared-file app in a "previous session".
	db := darshan.NewDB()
	tr := darshan.NewTracer(pfs.NewStore(pfs.Config{}))
	kernel := apps.IOR{Label: "k", Ranks: 16, BlockSize: 64 << 10, TransferSize: 16 << 10}
	if _, err := kernel.Run(tr, "/hist"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Record("learned", tr.Report(), 4, 16, nil, 8, true); err != nil {
		t.Fatal(err)
	}
	wantCurve, _ := db.Curve("learned")
	want := wantCurve.Best().IONs

	bus := mapping.NewBus()
	inner, err := New(policy.MCKP{}, addrs(8), bus)
	if err != nil {
		t.Fatal(err)
	}
	arb := WithHistory{Arbiter: inner, Source: db}

	// Register WITHOUT a curve: the history fills it in.
	got, err := arb.JobStarted(policy.Application{ID: "learned", Nodes: 4, Processes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("history-informed arbitration gave %d IONs, curve optimum is %d", len(got), want)
	}
}

// TestWithHistoryUnknownAppFallsBack: no history → the MCKP fallback
// (machine default) applies, exactly as without the wrapper.
func TestWithHistoryUnknownAppFallsBack(t *testing.T) {
	bus := mapping.NewBus()
	inner, err := New(policy.MCKP{}, addrs(8), bus)
	if err != nil {
		t.Fatal(err)
	}
	arb := WithHistory{Arbiter: inner, Source: darshan.NewDB()}
	got, err := arb.JobStarted(policy.Application{ID: "stranger", Nodes: 8, Processes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("fallback should still assign the machine default")
	}
}

// TestWithHistoryExplicitCurveWins: a caller-provided curve is never
// overridden by history.
func TestWithHistoryExplicitCurveWins(t *testing.T) {
	db := darshan.NewDB()
	bus := mapping.NewBus()
	inner, err := New(policy.MCKP{}, addrs(8), bus)
	if err != nil {
		t.Fatal(err)
	}
	arb := WithHistory{Arbiter: inner, Source: db}
	spec, err := perfmodel.AppByLabel("S3D") // best at 0 IONs
	if err != nil {
		t.Fatal(err)
	}
	got, err := arb.JobStarted(policy.FromAppSpec("s3d", spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("explicit S3D curve should yield direct access, got %d IONs", len(got))
	}
}
