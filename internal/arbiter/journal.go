package arbiter

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/journal"
	"repro/internal/mapping"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// WithJournal attaches a write-ahead journal: every control-plane
// transition is appended (and fsynced) before it becomes visible on the
// bus, and a compacting snapshot is written whenever enough records
// accumulate. A baseline snapshot of the current state is taken
// immediately, so even a journal that never sees another append can
// reconstruct pool membership. Call before the arbiter is shared.
//
// Journal I/O failures are advisory: the arbiter keeps serving
// (availability over durability for a single-node control plane) and the
// journal's own journal_append_errors_total counter records the gap.
func (a *Arbiter) WithJournal(j *journal.Journal) *Arbiter {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.jn = j
	if j != nil {
		a.epoch = a.bus.Version()
		j.Snapshot(a.stateLocked())
	}
	return a
}

// record appends one event and hands the journal a compaction snapshot
// when one is due. No-op without a journal. Caller holds a.mu.
func (a *Arbiter) record(r journal.Record) {
	if a.jn == nil {
		return
	}
	a.jn.Append(r)
	if a.jn.SnapshotDue() {
		a.jn.Snapshot(a.stateLocked())
	}
}

// stateLocked captures the arbiter's full control-plane state as a
// journal snapshot. Membership sets are sorted (journal.State's
// convention); the arbiter re-sorts its pool on recovery anyway, so the
// stable pool order survives round trips. Caller holds a.mu.
func (a *Arbiter) stateLocked() journal.State {
	st := journal.State{Epoch: a.epoch}
	st.Pool = append([]string(nil), a.pool...)
	sort.Strings(st.Pool)
	for _, addr := range st.Pool {
		if a.down[addr] {
			st.Down = append(st.Down, addr)
		}
		if a.overloaded[addr] {
			st.Overloaded = append(st.Overloaded, addr)
		}
		if a.draining[addr] {
			st.Draining = append(st.Draining, addr)
		}
		if a.degraded[addr] {
			st.Degraded = append(st.Degraded, addr)
		}
	}
	ids := make([]string, 0, len(a.running))
	for id := range a.running {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st.Running = append(st.Running, *appRecord(a.running[id]))
	}
	if len(a.assign) > 0 {
		st.Assign = make(map[string][]string, len(a.assign))
		for job, addrs := range a.assign {
			st.Assign[job] = append([]string(nil), addrs...)
		}
	}
	return st
}

// appRecord converts a policy application into its journal form,
// flattening the bandwidth curve so the history-informed inputs survive a
// crash (see WithHistory: the curve is completed before JobStarted runs,
// so what lands here is what the solver actually saw).
func appRecord(app policy.Application) *journal.App {
	ja := &journal.App{
		ID: app.ID, Nodes: app.Nodes, Processes: app.Processes,
		WriteBytes: app.WriteBytes, ReadBytes: app.ReadBytes, Weight: app.Weight,
	}
	for _, pt := range app.Curve.Points() {
		ja.Curve = append(ja.Curve, journal.CurvePoint{IONs: pt.IONs, MBps: pt.Bandwidth.MBps()})
	}
	return ja
}

// appFromRecord is the inverse of appRecord.
func appFromRecord(ja journal.App) policy.Application {
	pts := make([]perfmodel.Point, 0, len(ja.Curve))
	for _, p := range ja.Curve {
		pts = append(pts, perfmodel.Point{IONs: p.IONs, Bandwidth: units.BandwidthFromMBps(p.MBps)})
	}
	return policy.Application{
		ID: ja.ID, Nodes: ja.Nodes, Processes: ja.Processes,
		WriteBytes: ja.WriteBytes, ReadBytes: ja.ReadBytes, Weight: ja.Weight,
		Curve: perfmodel.NewCurve(pts...),
	}
}

// Running returns the registered applications, sorted by ID — including
// the characterization curve each one carried into the last solve. Used
// by recovery tests to pin that solve inputs survive a crash.
func (a *Arbiter) Running() []policy.Application {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]policy.Application, 0, len(a.running))
	for _, app := range a.running {
		out = append(out, app)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RecoverConfig parameterizes a warm restart from a journal.
type RecoverConfig struct {
	// Journal is the replayed journal the new arbiter continues into.
	// Required; open it first so its recovered state is available.
	Journal *journal.Journal
	// Policy and Bus are the solver and mapping bus of the new process,
	// exactly as New takes them. Required.
	Policy policy.Policy
	Bus    *mapping.Bus
	// Probe, when set, is asked once per journaled pool member that the
	// journal believes alive; returning false marks the node down before
	// the first solve (it died during the blackout). Nil trusts the
	// journal (reconciliation happens later through the health prober).
	Probe func(addr string) bool
	// PreFence, when set, is called with the new revocation floor BEFORE
	// the recovery mapping is published: push it to every I/O-node daemon
	// so no stale-epoch write can slip in between the republish and the
	// fence taking effect.
	PreFence func(fence uint64)
	// Weights is the optional QoS weight source (see WithWeights).
	Weights func(id string) float64
	// QuarantineFloor, when > 0, re-arms the gray-failure quarantine on
	// the recovered arbiter (see WithQuarantine); journaled degraded
	// marks are restored either way — a slow node is still slow after a
	// control-plane restart.
	QuarantineFloor int
	// Telemetry, when set, instruments the recovered arbiter.
	Telemetry *telemetry.Registry
}

// Recover rebuilds an arbiter from a replayed journal and reconciles it
// against reality: journaled pool members that no longer answer probes
// are marked down (their allocations pruned), half-finished drains are
// aborted (the scaler re-decides with live information), and the
// surviving assignment is republished under the no-shrink invariant —
// every recovered job keeps its allocated node count, preferentially on
// the exact nodes it held before the crash. Every epoch the pre-crash
// arbiter could have published is revoked: PreFence then the bus fence
// guarantee that a client still routing on a pre-crash mapping can never
// land a write on a reassigned I/O node.
//
// A solve failure during the republish is advisory, exactly as on the
// MarkDown path: the pruned pre-crash mapping is published (it is safe —
// nothing routes to a dead node) and the error reports the degradation.
func Recover(cfg RecoverConfig) (*Arbiter, error) {
	if cfg.Journal == nil {
		return nil, errors.New("arbiter: recovery requires a journal")
	}
	st, _ := cfg.Journal.RecoveredState()
	a, err := New(cfg.Policy, st.Pool, cfg.Bus)
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry != nil {
		a.Instrument(cfg.Telemetry)
	}
	a.WithWeights(cfg.Weights)
	if cfg.QuarantineFloor > 0 {
		a.WithQuarantine(cfg.QuarantineFloor)
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	a.jn = cfg.Journal
	a.epoch = st.Epoch
	for _, addr := range st.Down {
		a.down[addr] = true
	}
	for _, addr := range st.Overloaded {
		a.overloaded[addr] = true
	}
	for _, addr := range st.Draining {
		a.draining[addr] = true
	}
	for _, addr := range st.Degraded {
		a.degraded[addr] = true
	}
	for _, ja := range st.Running {
		app := appFromRecord(ja)
		a.running[app.ID] = app
	}
	for job, addrs := range st.Assign {
		if _, ok := a.running[job]; ok {
			a.assign[job] = append([]string(nil), addrs...)
		}
	}

	// Reconcile membership against reality: nodes that died during the
	// blackout are marked down and pruned from every allocation before
	// the first solve, so the invariant "no job maps to a dead node"
	// holds on the very first recovery publish.
	if cfg.Probe != nil {
		for _, addr := range a.pool {
			if a.down[addr] || cfg.Probe(addr) {
				continue
			}
			if a.draining[addr] {
				delete(a.draining, addr)
				a.tel.drainsAborted.Inc()
			}
			a.down[addr] = true
			for app, addrs := range a.assign {
				a.assign[app] = without(addrs, addr)
			}
			a.tel.marksDown.Inc()
			a.record(journal.Record{Kind: journal.KindMarkDown, Addr: addr})
		}
	}
	// Abort half-finished drains: the pre-crash arbiter was migrating
	// traffic off these nodes, but whoever was waiting for quiescence is
	// gone. Returning them to the allocatable pool is always safe; the
	// scaler re-decides with live information.
	draining := make([]string, 0, len(a.draining))
	for addr := range a.draining {
		draining = append(draining, addr)
	}
	sort.Strings(draining)
	for _, addr := range draining {
		delete(a.draining, addr)
		a.tel.drainsAborted.Inc()
		a.record(journal.Record{Kind: journal.KindDrainAbort, Addr: addr})
	}
	a.updatePoolGauges()
	a.tel.jobsRunning.Set(int64(len(a.running)))

	// Epoch handoff. The journal's epoch is ≥ every version a client saw
	// (publishes are journaled write-ahead), so resuming the bus there
	// and fencing one above revokes every pre-crash mapping. Daemons are
	// fenced before the recovery map goes out: between those two steps
	// stale clients degrade to the direct PFS path, which is byte-safe.
	cfg.Bus.Resume(st.Epoch)
	fence := cfg.Bus.Version() + 1
	if cfg.PreFence != nil {
		cfg.PreFence(fence)
	}
	cfg.Bus.Revoke(fence)

	var advisory error
	if len(a.running) > 0 {
		if err := a.rearbitrate(); err != nil {
			a.tel.keptMappings.Inc()
			a.publish()
			advisory = fmt.Errorf("arbiter: recovered with pruned pre-crash mapping kept: %w", err)
		}
	} else {
		a.publish()
	}
	return a, advisory
}
