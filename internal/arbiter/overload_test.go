package arbiter

// Overload-steering tests: MarkOverloaded deprioritizes a node without
// removing it — jobs drift off while healthy capacity exists, but a pool
// too small to avoid the hot node still uses it (capacity is never
// destroyed, unlike MarkDown).

import (
	"errors"
	"testing"

	"repro/internal/mapping"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

func TestMarkOverloadedSteersJobsAway(t *testing.T) {
	bus := mapping.NewBus()
	reg := telemetry.New()
	arb, err := New(policy.MCKP{}, addrs(12), bus)
	if err != nil {
		t.Fatal(err)
	}
	arb.Instrument(reg)
	got, err := arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no initial allocation")
	}
	want := len(got)
	hot := got[0]
	versionBefore := bus.Current().Version

	if err := arb.MarkOverloaded(hot); err != nil {
		t.Fatalf("MarkOverloaded: %v", err)
	}
	// The job moved off the hot node but kept its full allocation width.
	if hit := assignedTo(arb.Current(), hot); len(hit) != 0 {
		t.Fatalf("overloaded node still assigned to %v (12-node pool has room)", hit)
	}
	if now := arb.Current()["ior1"]; len(now) != want {
		t.Fatalf("allocation width changed under overload: %d → %d", want, len(now))
	}
	if m := bus.Current(); m.Version <= versionBefore {
		t.Fatal("MarkOverloaded must publish the re-arbitrated mapping")
	}
	// Unlike MarkDown, the node is still live and not down.
	if down := arb.Down(); len(down) != 0 {
		t.Fatalf("overload leaked into the down set: %v", down)
	}
	if ovl := arb.Overloaded(); len(ovl) != 1 || ovl[0] != hot {
		t.Fatalf("Overloaded() = %v, want [%s]", ovl, hot)
	}
	if got := reg.Counter("arbiter_marked_overloaded_total").Value(); got != 1 {
		t.Fatalf("arbiter_marked_overloaded_total = %d, want 1", got)
	}
	if got := reg.Gauge("arbiter_ions_overloaded").Value(); got != 1 {
		t.Fatalf("arbiter_ions_overloaded = %d, want 1", got)
	}
	if got := reg.Gauge("arbiter_ions_live").Value(); got != 12 {
		t.Fatalf("arbiter_ions_live = %d, want 12 — overload must not shrink the pool", got)
	}

	// Idempotent re-mark.
	if err := arb.MarkOverloaded(hot); err != nil {
		t.Fatalf("second MarkOverloaded: %v", err)
	}
	if got := reg.Counter("arbiter_marked_overloaded_total").Value(); got != 1 {
		t.Fatalf("re-mark counted twice: %d", got)
	}

	// Recovery re-admits the node to the preferred set.
	if err := arb.MarkRecovered(hot); err != nil {
		t.Fatalf("MarkRecovered: %v", err)
	}
	if got := reg.Counter("arbiter_overload_recovered_total").Value(); got != 1 {
		t.Fatalf("arbiter_overload_recovered_total = %d, want 1", got)
	}
	if got := reg.Gauge("arbiter_ions_overloaded").Value(); got != 0 {
		t.Fatalf("arbiter_ions_overloaded = %d, want 0 after recovery", got)
	}
	if err := arb.MarkRecovered(hot); err != nil {
		t.Fatalf("recovering a healthy node must be a no-op: %v", err)
	}
}

func TestOverloadedNodeStillUsedWhenPoolIsTight(t *testing.T) {
	bus := mapping.NewBus()
	arb, err := New(policy.MCKP{}, addrs(2), bus)
	if err != nil {
		t.Fatal(err)
	}
	got, err := arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	want := len(got)
	if want < 2 {
		t.Skipf("policy allocated %d of 2 nodes; need the full pool to exercise tightness", want)
	}

	// Both nodes are in use; marking one overloaded cannot halve the job.
	if err := arb.MarkOverloaded(got[0]); err != nil {
		t.Fatalf("MarkOverloaded: %v", err)
	}
	now := arb.Current()["ior1"]
	if len(now) != want {
		t.Fatalf("tight pool: allocation width %d → %d; overloaded capacity must remain usable", want, len(now))
	}
	used := false
	for _, a := range now {
		if a == got[0] {
			used = true
		}
	}
	if !used {
		t.Fatal("the overloaded node should still serve when the pool cannot cover the allocation without it")
	}
}

func TestOverloadedNodesComeLastWhenGrowing(t *testing.T) {
	pool := addrs(4)
	bus := mapping.NewBus()
	arb, err := New(policy.MCKP{}, pool, bus)
	if err != nil {
		t.Fatal(err)
	}
	// Mark a node overloaded before any job exists: the first arbitration
	// must already prefer the healthy nodes.
	if err := arb.MarkOverloaded(pool[0]); err != nil {
		t.Fatal(err)
	}
	got, err := arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(pool) {
		t.Skipf("job took %d of %d nodes; cannot observe preference", len(got), len(pool))
	}
	for _, a := range got {
		if a == pool[0] {
			t.Fatalf("allocation %v includes the overloaded node although %d healthy nodes sufficed", got, len(got))
		}
	}
}

func TestMarkOverloadedUnknownAddr(t *testing.T) {
	arb, err := New(policy.MCKP{}, addrs(2), mapping.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	if err := arb.MarkOverloaded("10.0.0.99:1"); !errors.Is(err, ErrUnknownION) {
		t.Fatalf("MarkOverloaded(unknown) = %v, want ErrUnknownION", err)
	}
	if err := arb.MarkRecovered("10.0.0.99:1"); !errors.Is(err, ErrUnknownION) {
		t.Fatalf("MarkRecovered(unknown) = %v, want ErrUnknownION", err)
	}
}
