package arbiter

// Gray-failure quarantine tests: MarkDegraded excludes a fail-slow node
// from new allocations like a drain (serving but not allocatable),
// bounded by the capacity floor so correlated slowness degrades to
// deprioritization instead of an empty pool.

import (
	"testing"

	"repro/internal/mapping"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

func TestMarkDegradedQuarantinesAndRestores(t *testing.T) {
	bus := mapping.NewBus()
	reg := telemetry.New()
	arb, err := New(policy.MCKP{}, addrs(12), bus)
	if err != nil {
		t.Fatal(err)
	}
	arb.Instrument(reg).WithQuarantine(2)
	got, err := arb.JobStarted(app(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no initial allocation")
	}
	want := len(got)
	slow := got[0]
	versionBefore := bus.Current().Version

	if err := arb.MarkDegraded(slow); err != nil {
		t.Fatalf("MarkDegraded: %v", err)
	}
	// The job moved off the slow node but kept its full allocation width
	// (the no-shrink invariant holds through a quarantine).
	if hit := assignedTo(arb.Current(), slow); len(hit) != 0 {
		t.Fatalf("quarantined node still assigned to %v (12-node pool has room)", hit)
	}
	if now := arb.Current()["ior1"]; len(now) != want {
		t.Fatalf("allocation width changed under quarantine: %d → %d", want, len(now))
	}
	if m := bus.Current(); m.Version <= versionBefore {
		t.Fatal("MarkDegraded must publish the re-arbitrated mapping")
	}
	// Quarantine is not down, not overloaded, not draining.
	if down := arb.Down(); len(down) != 0 {
		t.Fatalf("quarantine leaked into the down set: %v", down)
	}
	if ovl := arb.Overloaded(); len(ovl) != 0 {
		t.Fatalf("quarantine leaked into the overloaded set: %v", ovl)
	}
	if dr := arb.Draining(); len(dr) != 0 {
		t.Fatalf("quarantine leaked into the draining set: %v", dr)
	}
	if dg := arb.Degraded(); len(dg) != 1 || dg[0] != slow {
		t.Fatalf("Degraded() = %v, want [%s]", dg, slow)
	}
	if q := arb.Quarantined(); len(q) != 1 || q[0] != slow {
		t.Fatalf("Quarantined() = %v, want [%s]", q, slow)
	}
	if got := reg.Counter("arbiter_quarantine_marked_total").Value(); got != 1 {
		t.Fatalf("arbiter_quarantine_marked_total = %d, want 1", got)
	}
	if got := reg.Gauge("arbiter_quarantine_ions").Value(); got != 1 {
		t.Fatalf("arbiter_quarantine_ions = %d, want 1", got)
	}
	if got := reg.Gauge("arbiter_ions_live").Value(); got != 12 {
		t.Fatalf("arbiter_ions_live = %d, want 12 — quarantine must not shrink the pool", got)
	}

	// Idempotent re-mark.
	if err := arb.MarkDegraded(slow); err != nil {
		t.Fatalf("second MarkDegraded: %v", err)
	}
	if got := reg.Counter("arbiter_quarantine_marked_total").Value(); got != 1 {
		t.Fatalf("re-mark counted twice: %d", got)
	}

	// Restore re-admits the node to the allocatable pool.
	if err := arb.MarkRestored(slow); err != nil {
		t.Fatalf("MarkRestored: %v", err)
	}
	if got := reg.Counter("arbiter_quarantine_restored_total").Value(); got != 1 {
		t.Fatalf("arbiter_quarantine_restored_total = %d, want 1", got)
	}
	if q := arb.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined() after restore = %v", q)
	}
	if err := arb.MarkRestored(slow); err != nil { // idempotent
		t.Fatalf("second MarkRestored: %v", err)
	}
	if got := reg.Counter("arbiter_quarantine_restored_total").Value(); got != 1 {
		t.Fatalf("re-restore counted twice: %d", got)
	}
}

// TestQuarantineFloorHoldsCapacity pins the correlated-slowness bound:
// with a floor of 2 on a 3-node pool, degrading every node quarantines
// exactly one — the rest stay allocatable (deprioritized), and the app
// keeps its full width.
func TestQuarantineFloorHoldsCapacity(t *testing.T) {
	bus := mapping.NewBus()
	reg := telemetry.New()
	pool := addrs(3)
	arb, err := New(policy.MCKP{}, pool, bus)
	if err != nil {
		t.Fatal(err)
	}
	arb.Instrument(reg).WithQuarantine(2)
	if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	width := len(arb.Current()["ior1"])
	for _, addr := range pool {
		if err := arb.MarkDegraded(addr); err != nil {
			t.Fatalf("MarkDegraded(%s): %v", addr, err)
		}
	}
	if dg := arb.Degraded(); len(dg) != 3 {
		t.Fatalf("Degraded() = %v, want all 3 marks recorded", dg)
	}
	// Only the first node (stable pool order) is effectively quarantined.
	if q := arb.Quarantined(); len(q) != 1 || q[0] != pool[0] {
		t.Fatalf("Quarantined() = %v, want [%s] (floor 2 on a 3-node pool)", q, pool[0])
	}
	if got := reg.Gauge("arbiter_quarantine_ions").Value(); got != 1 {
		t.Fatalf("arbiter_quarantine_ions = %d, want 1", got)
	}
	if got := reg.Gauge("arbiter_quarantine_floor_held").Value(); got != 2 {
		t.Fatalf("arbiter_quarantine_floor_held = %d, want 2", got)
	}
	// The app still holds its full width on the floor-held nodes.
	if now := arb.Current()["ior1"]; len(now) != width {
		t.Fatalf("allocation width collapsed under correlated slowness: %d → %d", width, len(now))
	}
	if hit := assignedTo(arb.Current(), pool[0]); len(hit) != 0 && width < 3 {
		t.Fatalf("quarantined node %s still assigned: %v", pool[0], hit)
	}
	// New jobs can still start: the floor guarantees allocatable nodes.
	if _, err := arb.JobStarted(app(t, "POSIX-S", "ior2")); err != nil {
		t.Fatalf("JobStarted with every node degraded: %v", err)
	}
}

// TestQuarantineInterplay pins the state lattice against the stronger
// planes: down holds the degraded mark without double-excluding, drain
// wins over a later mark, and a mark on a down node takes effect when
// the node rises.
func TestQuarantineInterplay(t *testing.T) {
	bus := mapping.NewBus()
	arb, err := New(policy.MCKP{}, addrs(4), bus)
	if err != nil {
		t.Fatal(err)
	}
	arb.Instrument(telemetry.New()).WithQuarantine(1)
	pool := arb.Pool()

	// Degrade then down: the mark persists, the down exclusion rules.
	if err := arb.MarkDegraded(pool[0]); err != nil {
		t.Fatal(err)
	}
	if err := arb.MarkDown(pool[0]); err != nil {
		t.Fatal(err)
	}
	if !arb.IsDegraded(pool[0]) {
		t.Fatal("down cleared the degraded mark; it must persist")
	}
	if q := arb.Quarantined(); len(q) != 0 {
		t.Fatalf("down node counted as quarantined: %v", q)
	}
	// It rises still degraded: quarantine resumes.
	if err := arb.MarkUp(pool[0]); err != nil {
		t.Fatal(err)
	}
	if q := arb.Quarantined(); len(q) != 1 || q[0] != pool[0] {
		t.Fatalf("Quarantined() after rise = %v, want [%s]", q, pool[0])
	}
	if err := arb.MarkRestored(pool[0]); err != nil {
		t.Fatal(err)
	}

	// Drain wins: a mark on a draining node is dropped.
	if err := arb.Drain(pool[1]); err != nil {
		t.Fatal(err)
	}
	if err := arb.MarkDegraded(pool[1]); err != nil {
		t.Fatal(err)
	}
	if arb.IsDegraded(pool[1]) {
		t.Fatal("degraded mark stuck to a draining node; drain is stronger")
	}

	// Unknown address is refused.
	if err := arb.MarkDegraded("nope:1"); err == nil {
		t.Fatal("MarkDegraded on an unknown node must fail")
	}
	if err := arb.MarkRestored("nope:1"); err == nil {
		t.Fatal("MarkRestored on an unknown node must fail")
	}

	// RemoveION forgets the mark entirely.
	if err := arb.MarkDegraded(pool[2]); err != nil {
		t.Fatal(err)
	}
	if err := arb.RemoveION(pool[2]); err != nil {
		t.Fatal(err)
	}
	if err := arb.AddION(pool[2]); err != nil {
		t.Fatal(err)
	}
	if arb.IsDegraded(pool[2]) {
		t.Fatal("degraded mark survived RemoveION + AddION")
	}
}

// TestQuarantineSeriesAbsentWithoutOptIn pins the lazy-registration
// contract: an arbiter that never calls WithQuarantine exposes no
// arbiter_quarantine_* series.
func TestQuarantineSeriesAbsentWithoutOptIn(t *testing.T) {
	reg := telemetry.New()
	arb, err := New(policy.MCKP{}, addrs(4), mapping.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	arb.Instrument(reg)
	if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	// MarkDegraded still works without the opt-in chain (default floor
	// 1); it just stays un-instrumented.
	if err := arb.MarkDegraded(arb.Pool()[0]); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for name := range snap.Counters {
		if name == "arbiter_quarantine_marked_total" || name == "arbiter_quarantine_restored_total" {
			t.Fatalf("series %s registered without WithQuarantine", name)
		}
	}
	for name := range snap.Gauges {
		if name == "arbiter_quarantine_ions" || name == "arbiter_quarantine_floor_held" {
			t.Fatalf("gauge %s registered without WithQuarantine", name)
		}
	}
}
