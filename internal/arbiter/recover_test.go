package arbiter

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/journal"
	"repro/internal/mapping"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/units"
)

// journaledArbiter builds an arbiter over n nodes with a journal in dir.
func journaledArbiter(t *testing.T, dir string, n int) (*Arbiter, *journal.Journal, *mapping.Bus) {
	t.Helper()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bus := mapping.NewBus()
	arb, err := New(policy.MCKP{}, addrs(n), bus)
	if err != nil {
		t.Fatal(err)
	}
	return arb.WithJournal(jn), jn, bus
}

// recoverFrom reopens the journal dir and runs Recover with a fresh bus,
// as a restarted control-plane process would.
func recoverFrom(t *testing.T, dir string, cfg RecoverConfig) (*Arbiter, *mapping.Bus, error) {
	t.Helper()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jn.Close() })
	bus := mapping.NewBus()
	cfg.Journal = jn
	if cfg.Policy == nil {
		cfg.Policy = policy.MCKP{}
	}
	cfg.Bus = bus
	arb, rerr := Recover(cfg)
	return arb, bus, rerr
}

// TestRecoverReplaysJournaledState pins the core warm-restart contract:
// pool membership, marks, running jobs, and allocations all survive a
// crash, and every job keeps the exact nodes it held (no-shrink, stable
// prefix) on the recovery publish.
func TestRecoverReplaysJournaledState(t *testing.T) {
	dir := t.TempDir()
	arb, jn, _ := journaledArbiter(t, dir, 12)

	if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	if _, err := arb.JobStarted(app(t, "HACC", "hacc1")); err != nil {
		t.Fatal(err)
	}
	pool := arb.Pool()
	if err := arb.MarkDown(pool[11]); err != nil {
		t.Fatal(err)
	}
	if err := arb.MarkOverloaded(pool[10]); err != nil {
		t.Fatal(err)
	}
	before := arb.Current()
	jn.Close() // SIGKILL: no graceful teardown, the fsynced journal is all that survives

	rec, bus, err := recoverFrom(t, dir, RecoverConfig{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	gotPool := rec.Pool()
	wantPool := append([]string(nil), pool...)
	sort.Strings(gotPool)
	sort.Strings(wantPool)
	if !reflect.DeepEqual(gotPool, wantPool) {
		t.Fatalf("pool lost in recovery:\n  got  %v\n  want %v", gotPool, wantPool)
	}
	if got := rec.Down(); len(got) != 1 || got[0] != pool[11] {
		t.Fatalf("down marks lost: %v", got)
	}
	if got := rec.Overloaded(); len(got) != 1 || got[0] != pool[10] {
		t.Fatalf("overload marks lost: %v", got)
	}
	after := rec.Current()
	for job, had := range before {
		if len(after[job]) < len(had) {
			t.Fatalf("no-shrink violated for %s: %d -> %d nodes", job, len(had), len(after[job]))
		}
		// Stable prefix: the nodes a job held before the crash are the
		// nodes it holds after (recovery adopts, it does not reshuffle).
		for i, addr := range had {
			if after[job][i] != addr {
				t.Fatalf("%s lost node %s in recovery: %v -> %v", job, addr, had, after[job])
			}
		}
	}
	if m := bus.Current(); len(m.For("ior1")) == 0 {
		t.Fatal("recovery did not republish the mapping")
	}
}

// TestRecoverPrunesDeadIONs: a node the journal believes alive but that
// fails the recovery probe is marked down and stripped from every
// allocation before the first publish.
func TestRecoverPrunesDeadIONs(t *testing.T) {
	dir := t.TempDir()
	arb, jn, _ := journaledArbiter(t, dir, 4)
	if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	victim := arb.Current()["ior1"][0]
	jn.Close()

	rec, bus, err := recoverFrom(t, dir, RecoverConfig{
		Probe: func(addr string) bool { return addr != victim },
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := rec.Down(); len(got) != 1 || got[0] != victim {
		t.Fatalf("dead node not marked down: %v", got)
	}
	for job, list := range rec.Current() {
		for _, addr := range list {
			if addr == victim {
				t.Fatalf("%s still routes to the dead node %s", job, victim)
			}
		}
	}
	for _, addr := range bus.Current().For("ior1") {
		if addr == victim {
			t.Fatal("published recovery mapping routes to the dead node")
		}
	}
}

// TestRecoverAbortsDrains: a drain in flight when the arbiter died is
// aborted on recovery — the node returns to the allocatable pool and the
// journal's drain ledger balances (every DrainStart paired with a
// DrainAbort or a RemoveION).
func TestRecoverAbortsDrains(t *testing.T) {
	dir := t.TempDir()
	arb, jn, _ := journaledArbiter(t, dir, 6)
	if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, addr := range arb.Pool() {
		if !journal.Has(arb.Current()["ior1"], addr) {
			victim = addr
			break
		}
	}
	if victim == "" {
		victim = arb.Pool()[0]
	}
	if err := arb.Drain(victim); err != nil {
		t.Fatal(err)
	}
	jn.Close() // crash mid-drain

	rec, _, err := recoverFrom(t, dir, RecoverConfig{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec.IsDraining(victim) {
		t.Fatal("drain survived the crash; recovery must abort it")
	}
	// Ledger balance, read straight from the on-disk journal.
	_, recs, _, err := journal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	starts, ends := 0, 0
	for _, r := range recs {
		switch r.Kind {
		case journal.KindDrainStart:
			starts++
		case journal.KindDrainAbort, journal.KindRemoveION:
			ends++
		}
	}
	if starts == 0 || starts != ends {
		t.Fatalf("drain ledger unbalanced: %d starts, %d ends", starts, ends)
	}
}

// TestRecoverFencesPreCrashEpochs pins the epoch handoff: the fence is
// pushed (PreFence) before the recovery mapping is published, it revokes
// every version the pre-crash arbiter published, and the recovery map
// itself carries the fence.
func TestRecoverFencesPreCrashEpochs(t *testing.T) {
	dir := t.TempDir()
	arb, jn, bus := journaledArbiter(t, dir, 4)
	if _, err := arb.JobStarted(app(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	preCrash := bus.Version()
	if preCrash == 0 {
		t.Fatal("no pre-crash publish")
	}
	jn.Close()

	jn2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	bus2 := mapping.NewBus()
	var fencedAt uint64
	var publishedBeforeFence bool
	_, err = Recover(RecoverConfig{
		Journal: jn2, Policy: policy.MCKP{}, Bus: bus2,
		PreFence: func(fence uint64) {
			fencedAt = fence
			publishedBeforeFence = bus2.Version() > preCrash
		},
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if fencedAt <= preCrash {
		t.Fatalf("fence %d does not revoke pre-crash epochs (max %d)", fencedAt, preCrash)
	}
	if publishedBeforeFence {
		t.Fatal("recovery mapping published before the daemons were fenced")
	}
	m := bus2.Current()
	if m.Fence != fencedAt {
		t.Fatalf("recovery map fence = %d, want %d", m.Fence, fencedAt)
	}
	if m.Version < fencedAt {
		t.Fatalf("recovery map version %d below its own fence %d", m.Version, fencedAt)
	}
}

// TestRecoverMidSolveIntent: a JobStarted intent journaled without a
// following publish (the crash hit mid-solve) is honoured — recovery
// solves for the job and assigns it nodes.
func TestRecoverMidSolveIntent(t *testing.T) {
	dir := t.TempDir()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := addrs(4)
	st := journal.State{Pool: append([]string(nil), pool...)}
	sort.Strings(st.Pool)
	if err := jn.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	spec := app(t, "IOR-MPI", "ior1")
	if _, err := jn.Append(journal.Record{Kind: journal.KindJobStarted, App: appRecord(spec)}); err != nil {
		t.Fatal(err)
	}
	jn.Close() // crash before the solve's publish

	rec, bus, rerr := recoverFrom(t, dir, RecoverConfig{})
	if rerr != nil {
		t.Fatalf("recover: %v", rerr)
	}
	if got := rec.Current()["ior1"]; len(got) == 0 {
		t.Fatal("mid-solve job not assigned on recovery")
	}
	if got := bus.Current().For("ior1"); len(got) == 0 {
		t.Fatal("mid-solve job missing from the recovery publish")
	}
}

// steepCurves is a CurveSource whose curve strongly rewards exactly 4
// I/O nodes, so an allocation made with it is distinguishable from the
// no-characterization fallback.
type steepCurves struct{}

func (steepCurves) Curve(string) (perfmodel.Curve, bool) {
	return perfmodel.NewCurve(
		perfmodel.Point{IONs: 1, Bandwidth: units.BandwidthFromMBps(100)},
		perfmodel.Point{IONs: 2, Bandwidth: units.BandwidthFromMBps(200)},
		perfmodel.Point{IONs: 4, Bandwidth: units.BandwidthFromMBps(4000)},
	), true
}

// TestHistorySurvivesRecover pins the satellite contract for
// arbiter.History: the characterization curve WithHistory attached at
// submission time is journaled with the job, so a recovered arbiter —
// even one with NO history source — re-solves with the same inputs and
// reproduces the same allocation.
func TestHistorySurvivesRecover(t *testing.T) {
	dir := t.TempDir()
	arb, jn, _ := journaledArbiter(t, dir, 8)
	h := WithHistory{Arbiter: arb, Source: steepCurves{}}

	// Registered with an empty curve: WithHistory completes it before the
	// arbiter (and therefore the journal) sees the job.
	got, err := h.JobStarted(policy.Application{ID: "j1", Nodes: 4, Processes: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := len(got)
	jn.Close()

	rec, _, rerr := recoverFrom(t, dir, RecoverConfig{}) // no Source on purpose
	if rerr != nil {
		t.Fatalf("recover: %v", rerr)
	}
	running := rec.Running()
	if len(running) != 1 || running[0].ID != "j1" {
		t.Fatalf("running set lost: %+v", running)
	}
	if running[0].Curve.Len() == 0 {
		t.Fatal("history-informed curve did not survive recovery")
	}
	if after := rec.Current()["j1"]; len(after) != want {
		t.Fatalf("recovered solve diverged: %d nodes, want %d (curve lost?)", len(after), want)
	}
}
