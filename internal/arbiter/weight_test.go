package arbiter

import (
	"testing"

	"repro/internal/mapping"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/units"
)

// oneIONApp is an application whose only useful option is a single I/O
// node at the given bandwidth (plus direct access at zero).
func oneIONApp(id string, mbps float64) policy.Application {
	return policy.Application{
		ID: id, Nodes: 8, Processes: 8,
		Curve: perfmodel.NewCurve(
			perfmodel.Point{IONs: 0, Bandwidth: 0},
			perfmodel.Point{IONs: 1, Bandwidth: units.BandwidthFromMBps(mbps)},
		),
	}
}

// TestWithWeightsFavorsGuaranteedTenant: over one contended I/O node, the
// weight source installed via WithWeights lets a lower-bandwidth tenant
// outbid a faster one — the arbiter stamps class weights at solve time
// without JobStarted callers knowing about QoS.
func TestWithWeightsFavorsGuaranteedTenant(t *testing.T) {
	bus := mapping.NewBus()
	arb, err := New(policy.MCKP{}, addrs(1), bus)
	if err != nil {
		t.Fatal(err)
	}
	arb.WithWeights(func(id string) float64 {
		if id == "gold" {
			return 4
		}
		return 1
	})
	if _, err := arb.JobStarted(oneIONApp("scav", 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := arb.JobStarted(oneIONApp("gold", 8)); err != nil {
		t.Fatal(err)
	}
	cur := arb.Current()
	if len(cur["gold"]) != 1 || len(cur["scav"]) != 0 {
		t.Fatalf("weighted arbitration should give the node to gold: %v", cur)
	}
}

// TestWithWeightsNilSourceIsUnweighted: without a weight source the same
// contest goes to raw bandwidth, pinning that WithWeights is opt-in.
func TestWithWeightsNilSourceIsUnweighted(t *testing.T) {
	bus := mapping.NewBus()
	arb, err := New(policy.MCKP{}, addrs(1), bus)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arb.JobStarted(oneIONApp("scav", 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := arb.JobStarted(oneIONApp("gold", 8)); err != nil {
		t.Fatal(err)
	}
	cur := arb.Current()
	if len(cur["scav"]) != 1 || len(cur["gold"]) != 0 {
		t.Fatalf("unweighted arbitration should favor raw bandwidth: %v", cur)
	}
}

// TestWithWeightsExplicitWeightWins: an application registered with its
// own non-zero Weight keeps it — the installed source only fills blanks.
func TestWithWeightsExplicitWeightWins(t *testing.T) {
	bus := mapping.NewBus()
	arb, err := New(policy.MCKP{}, addrs(1), bus)
	if err != nil {
		t.Fatal(err)
	}
	arb.WithWeights(func(string) float64 { return 1 })
	strong := oneIONApp("gold", 8)
	strong.Weight = 4
	if _, err := arb.JobStarted(oneIONApp("scav", 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := arb.JobStarted(strong); err != nil {
		t.Fatal(err)
	}
	if cur := arb.Current(); len(cur["gold"]) != 1 {
		t.Fatalf("explicit Weight should survive the weight source: %v", cur)
	}
}
