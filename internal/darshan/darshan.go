// Package darshan provides the lightweight I/O characterization layer the
// paper relies on for feeding MCKP (§3.1): instead of profiling every
// application at every forwarding configuration, transparently collected
// I/O counters identify the application's base access pattern (file
// approach, spatiality, request sizes, process count, volume), from which
// the performance model estimates the full bandwidth-vs-I/O-node curve.
//
// The Tracer wraps any pfs.FileSystem and records Darshan-like counters;
// Report distills them; ExtractPattern and EstimateCurve turn them into
// arbitration inputs.
package darshan

import (
	"sort"
	"sync"

	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/pfs"
)

// FileCounters are per-file statistics, after Darshan's POSIX module.
type FileCounters struct {
	Path        string
	WriteOps    int64
	ReadOps     int64
	BytesWriten int64
	BytesRead   int64
	// ConsecWrites counts writes that continue exactly where an earlier
	// write ended (Darshan's CONSEC_WRITES). Because many ranks write one
	// shared file through a single tracer, consecutiveness is tracked
	// against the set of active stream ends, so N interleaved sequential
	// streams still register as consecutive while strided access does
	// not.
	ConsecWrites int64
	// SizeHistogram counts requests per power-of-two size bucket
	// (bucket i covers [2^i, 2^(i+1))).
	SizeHistogram [48]int64
	streamEnds    map[streamKey]struct{}
}

// streamKey identifies a write stream: Darshan's counters are per process,
// so consecutiveness is tracked per (rank, end offset). Anonymous I/O
// (issued through the plain FileSystem interface) uses rank -1 and shares
// one stream space per file.
type streamKey struct {
	rank int
	off  int64
}

// maxStreamEnds bounds the per-file stream-end set; beyond it the oldest
// information is dropped (strided workloads would otherwise grow one entry
// per request).
const maxStreamEnds = 4096

// Tracer wraps a FileSystem and records counters. Safe for concurrent use.
type Tracer struct {
	inner pfs.FileSystem

	mu    sync.Mutex
	files map[string]*FileCounters
}

var _ pfs.FileSystem = (*Tracer)(nil)

// NewTracer wraps fs.
func NewTracer(fs pfs.FileSystem) *Tracer {
	return &Tracer{inner: fs, files: make(map[string]*FileCounters)}
}

func (t *Tracer) counters(path string) *FileCounters {
	fc, ok := t.files[path]
	if !ok {
		fc = &FileCounters{Path: path, streamEnds: make(map[streamKey]struct{})}
		t.files[path] = fc
	}
	return fc
}

func bucket(n int64) int {
	b := 0
	for n > 1 && b < 47 {
		n >>= 1
		b++
	}
	return b
}

// Create implements pfs.FileSystem.
func (t *Tracer) Create(path string) error { return t.inner.Create(path) }

// Write implements pfs.FileSystem (anonymous rank).
func (t *Tracer) Write(path string, off int64, p []byte) (int, error) {
	return t.writeRanked(-1, path, off, p)
}

func (t *Tracer) writeRanked(rank int, path string, off int64, p []byte) (int, error) {
	n, err := t.inner.Write(path, off, p)
	t.mu.Lock()
	fc := t.counters(path)
	fc.WriteOps++
	fc.BytesWriten += int64(n)
	key := streamKey{rank: rank, off: off}
	if _, ok := fc.streamEnds[key]; ok {
		fc.ConsecWrites++
		delete(fc.streamEnds, key)
	} else if len(fc.streamEnds) >= maxStreamEnds {
		// Evict one arbitrary entry to stay bounded.
		for k := range fc.streamEnds {
			delete(fc.streamEnds, k)
			break
		}
	}
	fc.streamEnds[streamKey{rank: rank, off: off + int64(n)}] = struct{}{}
	fc.SizeHistogram[bucket(int64(len(p)))]++
	t.mu.Unlock()
	return n, err
}

// ForRank returns a view of the tracer that attributes writes to one rank,
// the way Darshan's per-process counters do. Use it when the caller knows
// its rank structure (e.g. FORGE profile replay); plain Tracer calls share
// an anonymous stream space, which misclassifies interleaved strided
// writers whose blocks tile the file contiguously.
func (t *Tracer) ForRank(rank int) pfs.FileSystem {
	return &rankedView{t: t, rank: rank}
}

type rankedView struct {
	t    *Tracer
	rank int
}

var _ pfs.FileSystem = (*rankedView)(nil)

func (v *rankedView) Create(path string) error { return v.t.Create(path) }
func (v *rankedView) Write(path string, off int64, p []byte) (int, error) {
	return v.t.writeRanked(v.rank, path, off, p)
}
func (v *rankedView) Read(path string, off int64, p []byte) (int, error) {
	return v.t.Read(path, off, p)
}
func (v *rankedView) Stat(path string) (pfs.FileInfo, error) { return v.t.Stat(path) }
func (v *rankedView) Remove(path string) error               { return v.t.Remove(path) }
func (v *rankedView) Fsync(path string) error                { return v.t.Fsync(path) }

// Read implements pfs.FileSystem.
func (t *Tracer) Read(path string, off int64, p []byte) (int, error) {
	n, err := t.inner.Read(path, off, p)
	t.mu.Lock()
	fc := t.counters(path)
	fc.ReadOps++
	fc.BytesRead += int64(n)
	t.mu.Unlock()
	return n, err
}

// Stat implements pfs.FileSystem.
func (t *Tracer) Stat(path string) (pfs.FileInfo, error) { return t.inner.Stat(path) }

// Remove implements pfs.FileSystem.
func (t *Tracer) Remove(path string) error { return t.inner.Remove(path) }

// Fsync implements pfs.FileSystem.
func (t *Tracer) Fsync(path string) error { return t.inner.Fsync(path) }

// Report is the aggregated characterization of a traced execution.
type Report struct {
	Files         int
	WriteOps      int64
	ReadOps       int64
	BytesWritten  int64
	BytesRead     int64
	ConsecWrites  int64
	MedianReqSize int64

	perFile []*FileCounters
}

// Report snapshots and aggregates the counters.
func (t *Tracer) Report() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := Report{Files: len(t.files)}
	var hist [48]int64
	var totalReqs int64
	for _, fc := range t.files {
		cp := *fc
		cp.streamEnds = nil // internal state, not part of the report
		r.perFile = append(r.perFile, &cp)
		r.WriteOps += fc.WriteOps
		r.ReadOps += fc.ReadOps
		r.BytesWritten += fc.BytesWriten
		r.BytesRead += fc.BytesRead
		r.ConsecWrites += fc.ConsecWrites
		for i, c := range fc.SizeHistogram {
			hist[i] += c
			totalReqs += c
		}
	}
	sort.Slice(r.perFile, func(i, j int) bool { return r.perFile[i].Path < r.perFile[j].Path })
	// Median request size from the histogram (bucket midpoint).
	var cum int64
	for i, c := range hist {
		cum += c
		if totalReqs > 0 && cum*2 >= totalReqs {
			r.MedianReqSize = int64(1) << uint(i)
			break
		}
	}
	return r
}

// PerFile returns the per-file counters in path order.
func (r Report) PerFile() []*FileCounters { return r.perFile }

// ExtractPattern infers the application's base access pattern from the
// report, given the job geometry (which the scheduler knows):
//
//   - layout: roughly one written file per process → file-per-process;
//     otherwise shared;
//   - spatiality: if most writes continue where the previous one ended,
//     the per-process streams are contiguous; a low consecutive fraction
//     on a shared file indicates strided/interleaved access;
//   - request size: the median observed size.
func (r Report) ExtractPattern(nodes, processes int) pattern.Pattern {
	p := pattern.Pattern{
		Nodes:       nodes,
		ProcsPerNod: maxInt(1, processes/maxInt(1, nodes)),
		Operation:   pattern.Write,
		RequestSize: maxInt64(1, r.MedianReqSize),
	}
	writtenFiles := 0
	for _, fc := range r.perFile {
		if fc.WriteOps > 0 {
			writtenFiles++
		}
	}
	if processes > 1 && writtenFiles >= processes/2 {
		p.Layout = pattern.FilePerProcess
		p.Spatiality = pattern.Contiguous
		return p
	}
	p.Layout = pattern.SharedFile
	// Consecutive fraction of writes ≥ ½ → contiguous per-file stream.
	if r.WriteOps > 0 && r.ConsecWrites*2 >= r.WriteOps {
		p.Spatiality = pattern.Contiguous
	} else {
		p.Spatiality = pattern.Strided1D
	}
	return p
}

// EstimateCurve predicts the application's bandwidth curve from its
// extracted pattern using the performance model — the paper's shortcut
// around per-configuration profiling runs.
func EstimateCurve(p pattern.Pattern, m *perfmodel.Model, maxIONs int, allowZero bool) perfmodel.Curve {
	if m == nil {
		m = perfmodel.Default()
	}
	return m.CurveFor(p, maxIONs, allowZero)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
