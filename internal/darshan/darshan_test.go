package darshan

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/pattern"
	"repro/internal/pfs"
	"repro/internal/units"
)

func tracer() (*Tracer, *pfs.Store) {
	store := pfs.NewStore(pfs.Config{})
	return NewTracer(store), store
}

func TestCountersBasic(t *testing.T) {
	tr, _ := tracer()
	tr.Create("/f")
	tr.Write("/f", 0, make([]byte, 100))
	tr.Write("/f", 100, make([]byte, 100)) // consecutive
	tr.Write("/f", 500, make([]byte, 50))  // seek
	tr.Read("/f", 0, make([]byte, 64))
	r := tr.Report()
	if r.Files != 1 || r.WriteOps != 3 || r.ReadOps != 1 {
		t.Fatalf("report: %+v", r)
	}
	if r.BytesWritten != 250 || r.BytesRead != 64 {
		t.Fatalf("bytes: %+v", r)
	}
	if r.ConsecWrites != 1 {
		t.Fatalf("consec = %d, want 1", r.ConsecWrites)
	}
}

func TestInterleavedStreamsStillConsecutive(t *testing.T) {
	tr, _ := tracer()
	// Two logical streams interleaved (rank A at 0.., rank B at 1000..):
	// all four continuation writes are consecutive to their own stream.
	tr.Write("/s", 0, make([]byte, 10))
	tr.Write("/s", 1000, make([]byte, 10))
	tr.Write("/s", 10, make([]byte, 10))
	tr.Write("/s", 1010, make([]byte, 10))
	tr.Write("/s", 20, make([]byte, 10))
	tr.Write("/s", 1020, make([]byte, 10))
	r := tr.Report()
	if r.ConsecWrites != 4 {
		t.Fatalf("consec = %d, want 4 (per-stream detection)", r.ConsecWrites)
	}
}

func TestMedianRequestSize(t *testing.T) {
	tr, _ := tracer()
	for i := 0; i < 10; i++ {
		tr.Write("/f", int64(i)*units.MiB, make([]byte, units.MiB))
	}
	r := tr.Report()
	if r.MedianReqSize != units.MiB {
		t.Fatalf("median = %d, want %d", r.MedianReqSize, units.MiB)
	}
}

func TestExtractPatternFilePerProcess(t *testing.T) {
	tr, _ := tracer()
	const procs = 16
	for p := 0; p < procs; p++ {
		path := fmt.Sprintf("/rank%d", p)
		for i := int64(0); i < 4; i++ {
			tr.Write(path, i*4096, make([]byte, 4096))
		}
	}
	got := tr.Report().ExtractPattern(4, procs)
	if got.Layout != pattern.FilePerProcess {
		t.Fatalf("layout = %v", got.Layout)
	}
	if got.Spatiality != pattern.Contiguous {
		t.Fatalf("spatiality = %v", got.Spatiality)
	}
	if got.Nodes != 4 || got.ProcsPerNod != 4 {
		t.Fatalf("geometry: %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractPatternSharedContiguous(t *testing.T) {
	tr, _ := tracer()
	const procs = 8
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			base := int64(p) * 64 * 1024
			for i := int64(0); i < 16; i++ {
				tr.Write("/shared", base+i*4096, make([]byte, 4096))
			}
		}(p)
	}
	wg.Wait()
	got := tr.Report().ExtractPattern(2, procs)
	if got.Layout != pattern.SharedFile || got.Spatiality != pattern.Contiguous {
		t.Fatalf("pattern: %+v", got)
	}
}

func TestExtractPatternSharedStrided(t *testing.T) {
	tr, _ := tracer()
	const procs = 8
	const req = 4096
	// 1D-strided: process p writes blocks p, p+P, p+2P, ...
	for round := int64(0); round < 16; round++ {
		for p := int64(0); p < procs; p++ {
			off := (round*procs + p) * req * 3 // gaps → never consecutive
			tr.Write("/strided", off, make([]byte, req))
		}
	}
	got := tr.Report().ExtractPattern(2, procs)
	if got.Layout != pattern.SharedFile || got.Spatiality != pattern.Strided1D {
		t.Fatalf("pattern: %+v", got)
	}
}

// TestClassifyRealKernels runs actual application kernels under the tracer
// and checks the extracted layouts match the paper's Table 3.
func TestClassifyRealKernels(t *testing.T) {
	cases := []struct {
		kernel apps.Kernel
		procs  int
		layout pattern.Layout
	}{
		{apps.HACC{Ranks: 8, Particles: 500, HeaderBytes: 128}, 8, pattern.FilePerProcess},
		{apps.IOR{Label: "ior", Ranks: 8, BlockSize: 32 * 1024, TransferSize: 8 * 1024}, 8, pattern.SharedFile},
		{apps.MADBench{Ranks: 8, Bins: 2, SliceBytes: 4096}, 8, pattern.SharedFile},
	}
	for _, c := range cases {
		tr, _ := tracer()
		if _, err := c.kernel.Run(tr, "/k"); err != nil {
			t.Fatalf("%s: %v", c.kernel.Name(), err)
		}
		got := tr.Report().ExtractPattern(2, c.procs)
		if got.Layout != c.layout {
			t.Errorf("%s: layout %v, want %v", c.kernel.Name(), got.Layout, c.layout)
		}
	}
}

func TestEstimateCurve(t *testing.T) {
	p := pattern.Pattern{Nodes: 16, ProcsPerNod: 24, Layout: pattern.SharedFile,
		Spatiality: pattern.Contiguous, RequestSize: 128 * units.KiB, Operation: pattern.Write}
	c := EstimateCurve(p, nil, 8, true)
	if c.Len() != 5 {
		t.Fatalf("curve: %v", c)
	}
	best := c.Best()
	if best.IONs == 0 {
		t.Fatalf("medium shared workload should benefit from forwarding: %v", c)
	}
}

func TestTracerPassesThroughData(t *testing.T) {
	tr, store := tracer()
	tr.Write("/f", 0, []byte("payload"))
	buf := make([]byte, 7)
	if _, err := store.Read("/f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "payload" {
		t.Fatalf("data: %q", buf)
	}
	// Metadata ops pass through too.
	if _, err := tr.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Fsync("/f"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Remove("/f"); err != nil {
		t.Fatal(err)
	}
}

func TestPerFileSorted(t *testing.T) {
	tr, _ := tracer()
	tr.Write("/b", 0, []byte("x"))
	tr.Write("/a", 0, []byte("x"))
	pf := tr.Report().PerFile()
	if len(pf) != 2 || pf[0].Path != "/a" || pf[1].Path != "/b" {
		t.Fatalf("per-file order: %+v", pf)
	}
}
