package darshan

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

// DB is the characterization history the paper's workflow accumulates:
// per-application extracted patterns and estimated bandwidth curves,
// persisted as JSON so future job submissions are arbitrated with
// knowledge from earlier runs ("future runs could make better decisions
// based on the collected data", §3.1).
type DB struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// Entry is one application's stored characterization.
type Entry struct {
	AppID string `json:"app_id"`
	// Pattern is the extracted base access pattern.
	Nodes       int    `json:"nodes"`
	ProcsPerNod int    `json:"procs_per_node"`
	Layout      string `json:"layout"`
	Spatiality  string `json:"spatiality"`
	RequestSize int64  `json:"request_size"`
	// Curve is the estimated bandwidth per ION count (MB/s).
	Curve map[int]float64 `json:"curve_mbps"`
	// Runs counts how many executions contributed.
	Runs int `json:"runs"`
}

// NewDB returns an empty in-memory database.
func NewDB() *DB { return &DB{entries: map[string]Entry{}} }

// Record stores (or refreshes) an application's characterization from a
// trace report and geometry, estimating the curve with the model.
func (db *DB) Record(appID string, rep Report, nodes, processes int, m *perfmodel.Model, maxIONs int, allowZero bool) (Entry, error) {
	if appID == "" {
		return Entry{}, fmt.Errorf("darshan: empty application ID")
	}
	pat := rep.ExtractPattern(nodes, processes)
	if err := pat.Validate(); err != nil {
		return Entry{}, fmt.Errorf("darshan: extracted pattern invalid: %w", err)
	}
	curve := EstimateCurve(pat, m, maxIONs, allowZero)
	e := Entry{
		AppID:       appID,
		Nodes:       pat.Nodes,
		ProcsPerNod: pat.ProcsPerNod,
		Layout:      pat.Layout.String(),
		Spatiality:  pat.Spatiality.String(),
		RequestSize: pat.RequestSize,
		Curve:       map[int]float64{},
	}
	for _, pt := range curve.Points() {
		e.Curve[pt.IONs] = pt.Bandwidth.MBps()
	}
	db.mu.Lock()
	if old, ok := db.entries[appID]; ok {
		e.Runs = old.Runs
	}
	e.Runs++
	db.entries[appID] = e
	db.mu.Unlock()
	return e, nil
}

// Curve returns the stored curve for an application, if known.
func (db *DB) Curve(appID string) (perfmodel.Curve, bool) {
	db.mu.RLock()
	e, ok := db.entries[appID]
	db.mu.RUnlock()
	if !ok {
		return perfmodel.Curve{}, false
	}
	pts := make([]perfmodel.Point, 0, len(e.Curve))
	for k, mbps := range e.Curve {
		pts = append(pts, perfmodel.Point{IONs: k, Bandwidth: units.BandwidthFromMBps(mbps)})
	}
	return perfmodel.NewCurve(pts...), true
}

// Pattern returns the stored pattern for an application, if known.
func (db *DB) Pattern(appID string) (pattern.Pattern, bool) {
	db.mu.RLock()
	e, ok := db.entries[appID]
	db.mu.RUnlock()
	if !ok {
		return pattern.Pattern{}, false
	}
	p := pattern.Pattern{
		Nodes:       e.Nodes,
		ProcsPerNod: e.ProcsPerNod,
		RequestSize: e.RequestSize,
		Operation:   pattern.Write,
	}
	if e.Layout == pattern.SharedFile.String() {
		p.Layout = pattern.SharedFile
	}
	if e.Spatiality == pattern.Strided1D.String() {
		p.Spatiality = pattern.Strided1D
	}
	return p, true
}

// Apps lists the known application IDs in lexical order.
func (db *DB) Apps() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.entries))
	for id := range db.entries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Save writes the database as JSON (atomic rename).
func (db *DB) Save(path string) error {
	db.mu.RLock()
	list := make([]Entry, 0, len(db.entries))
	for _, e := range db.entries {
		list = append(list, e)
	}
	db.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].AppID < list[j].AppID })
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return fmt.Errorf("darshan: encode db: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".darshan-db-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// LoadDB reads a database written by Save. A missing file yields an empty
// database (first boot).
func LoadDB(path string) (*DB, error) {
	db := NewDB()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return db, nil
		}
		return nil, fmt.Errorf("darshan: read db: %w", err)
	}
	var list []Entry
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("darshan: decode db: %w", err)
	}
	for _, e := range list {
		db.entries[e.AppID] = e
	}
	return db, nil
}
