package darshan

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/pattern"
	"repro/internal/pfs"
)

func traceKernel(t *testing.T, k apps.Kernel) Report {
	t.Helper()
	tr := NewTracer(pfs.NewStore(pfs.Config{}))
	if _, err := k.Run(tr, "/run"); err != nil {
		t.Fatal(err)
	}
	return tr.Report()
}

func TestDBRecordAndLookup(t *testing.T) {
	db := NewDB()
	rep := traceKernel(t, apps.IOR{Label: "x", Ranks: 16, BlockSize: 64 << 10, TransferSize: 16 << 10})
	e, err := db.Record("myapp", rep, 4, 16, nil, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if e.Runs != 1 || e.Layout != "shared" {
		t.Fatalf("entry: %+v", e)
	}
	curve, ok := db.Curve("myapp")
	if !ok || curve.Len() == 0 {
		t.Fatal("curve missing")
	}
	pat, ok := db.Pattern("myapp")
	if !ok || pat.Layout != pattern.SharedFile {
		t.Fatalf("pattern: %+v %v", pat, ok)
	}
	if _, ok := db.Curve("unknown"); ok {
		t.Fatal("unknown app should miss")
	}
	// Re-recording bumps the run counter.
	e2, err := db.Record("myapp", rep, 4, 16, nil, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Runs != 2 {
		t.Fatalf("runs = %d", e2.Runs)
	}
}

func TestDBRecordValidation(t *testing.T) {
	db := NewDB()
	rep := traceKernel(t, apps.HACC{Ranks: 4, Particles: 100, HeaderBytes: 64})
	if _, err := db.Record("", rep, 4, 4, nil, 8, true); err == nil {
		t.Fatal("empty app ID should fail")
	}
}

func TestDBPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.json")
	db := NewDB()
	repShared := traceKernel(t, apps.IOR{Label: "s", Ranks: 16, BlockSize: 64 << 10, TransferSize: 16 << 10})
	repFPP := traceKernel(t, apps.HACC{Ranks: 8, Particles: 200, HeaderBytes: 128})
	if _, err := db.Record("shared-app", repShared, 4, 16, nil, 8, true); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Record("fpp-app", repFPP, 2, 8, nil, 8, true); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Apps(); len(got) != 2 || got[0] != "fpp-app" {
		t.Fatalf("apps: %v", got)
	}
	origCurve, _ := db.Curve("shared-app")
	loadedCurve, ok := loaded.Curve("shared-app")
	if !ok {
		t.Fatal("curve lost in round trip")
	}
	for _, pt := range origCurve.Points() {
		lv, ok := loadedCurve.At(pt.IONs)
		if !ok {
			t.Fatalf("point %d lost", pt.IONs)
		}
		diff := float64(lv - pt.Bandwidth)
		if diff > 1 || diff < -1 {
			t.Fatalf("curve value drifted at %d: %v vs %v", pt.IONs, lv, pt.Bandwidth)
		}
	}
	fpat, ok := loaded.Pattern("fpp-app")
	if !ok || fpat.Layout != pattern.FilePerProcess {
		t.Fatalf("fpp pattern lost: %+v", fpat)
	}
}

func TestLoadDBMissingFile(t *testing.T) {
	db, err := LoadDB(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Apps()) != 0 {
		t.Fatal("missing file should yield empty DB")
	}
}

func TestLoadDBCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDB(path); err == nil {
		t.Fatal("corrupt DB should fail to load")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
