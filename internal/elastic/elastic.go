// Package elastic is the capacity plane of the forwarding stack: an
// autoscaler that breathes the I/O-node pool with demand. It watches the
// health prober's per-node queue-depth samples, decides from sustained
// watermark crossings (optionally vetoed by a perfmodel marginal-value
// forecast) whether the pool should grow or shrink, and then walks every
// node through an explicit lifecycle engineered for failure first:
//
//	Provision ─→ provisioning ─(first health rise)─→ member
//	                  │
//	                  └─(rise deadline passes)─→ rolled back, disposed
//
//	member ─(Drain)─→ draining ─(quiesced N sweeps, or deadline)─→ gone
//	                  │
//	                  └─(node dies, or still assigned)─→ drain aborted
//
// Scale-up provisions through a Provisioner seam with jittered
// exponential backoff and a circuit breaker, so a dead provisioner
// degrades the scaler — the pool stops growing — and never the data
// path. Scale-down uses the arbiter's graceful drain: traffic migrates
// off first, decommission happens only after the node has been quiet, so
// no acked write is ever stranded on a vanished daemon.
//
// Anti-flap is structural, not tuned: separate up/down watermarks with a
// mandatory gap, sustained-signal windows (one hot sweep is a burst, not
// a trend), per-direction cooldowns, and a max-step clamp per decision.
// Every transition is clock-injected and deterministic under test.
package elastic

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Provisioner spawns and destroys I/O-node daemons. Provision returns
// the address of a freshly started daemon (not yet trusted — the scaler
// health-checks it before the arbiter may route to it). Decommission
// releases a daemon the scaler is done with; it must be safe to call for
// a daemon that is already dead.
type Provisioner interface {
	Provision() (addr string, err error)
	Decommission(addr string) error
}

// Pool is the arbiter surface the scaler drives (implemented by
// *arbiter.Arbiter).
type Pool interface {
	AddION(addr string) error
	Drain(addr string) error
	AbortDrain(addr string) error
	RemoveION(addr string) error
	IsDraining(addr string) bool
}

// Health is the liveness surface the scaler reads and grows (implemented
// by *health.Prober). Load reports the last sampled queue depth per node
// that is currently up; LoadAges reports how old each of those samples is
// (nodes never sampled are absent), so the scaler can refuse to act on
// evidence from before a probe blackout.
type Health interface {
	Add(addr string, up bool) error
	Remove(addr string)
	IsUp(addr string) bool
	Load() map[string]int64
	LoadAges() map[string]time.Duration
}

// Config parameterizes a Scaler.
type Config struct {
	// Min and Max bound the target pool size (members plus in-flight
	// provisions, minus drains). Min ≥ 1 and Max ≥ Min are required.
	Min, Max int

	// UpWatermark: average queue depth across up, non-draining members at
	// or above this for UpSustain consecutive ticks asks for growth.
	// DownWatermark: average at or below this for DownSustain consecutive
	// ticks asks for shrink. UpWatermark > DownWatermark is required —
	// the gap between them is the hysteresis band that kills flapping.
	UpWatermark, DownWatermark float64
	// UpSustain / DownSustain are the consecutive-tick windows; ≤0
	// selects 3 and 5 (shrinking should take more convincing).
	UpSustain, DownSustain int
	// UpCooldown / DownCooldown gate how soon after a scale event the
	// same direction may fire again; ≤0 selects 5s and 30s.
	UpCooldown, DownCooldown time.Duration
	// FlipQuiet gates how soon after a scale event the OPPOSITE
	// direction may fire. A scale-up is itself evidence of demand, so a
	// shrink moments later is a flap by definition — and each add
	// triggers a re-arbitration whose remap stall briefly collapses the
	// queue-depth signal, which would otherwise feed the down streak.
	// ≤0 selects max(UpCooldown, DownCooldown).
	FlipQuiet time.Duration
	// MaxStep clamps how many nodes one decision may add or drain; ≤0
	// selects 1.
	MaxStep int
	// Interval is the Start loop's tick period; ≤0 selects 1s.
	Interval time.Duration
	// SampleStaleness bounds how old a node's load sample may be before
	// the scaler ignores it: a prober that stopped sampling (a health
	// blackout, a gray-slow probe path) leaves depths frozen at their
	// last value, and scaling on frozen evidence drains busy nodes that
	// merely *look* idle. Stale-skipped nodes count as absent from the
	// demand signal, exactly like down ones. ≤0 selects 3× Interval.
	SampleStaleness time.Duration

	// DrainDeadline bounds how long a drain may wait for quiescence
	// before the node is decommissioned anyway (in-flight work is
	// client-retried; waiting forever would leak the node); ≤0 selects
	// 30s.
	DrainDeadline time.Duration
	// QuiesceSweeps consecutive quiet ticks complete a drain; ≤0 selects
	// 2.
	QuiesceSweeps int
	// Quiesced reports whether addr has no queued or in-flight work.
	// Required when the scaler may shrink (Min < Max); livestack supplies
	// an activity-delta check over the daemon's counters.
	Quiesced func(addr string) bool

	// RiseTimeout bounds how long a provisioned node may take to pass its
	// first health rise before it is rolled back and disposed; ≤0 selects
	// 10s.
	RiseTimeout time.Duration
	// ProvisionBackoff is the base of the jittered exponential backoff
	// after a provisioning failure, ProvisionBackoffMax its cap; ≤0
	// select 100ms and 5s.
	ProvisionBackoff, ProvisionBackoffMax time.Duration
	// BreakerThreshold consecutive provisioning failures (including
	// rollbacks) open the provisioning circuit breaker for
	// BreakerCooldown, after which one half-open attempt probes the
	// provisioner again; ≤0 select 3 and 30s.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// MarginalValue, when non-nil, forecasts the value of growing from k
	// to k+1 nodes (e.g. the summed marginal bandwidth of the running
	// apps' perfmodel curves). A scale-up step is vetoed when the
	// forecast is at or below MinMarginal: capacity the curves say nobody
	// can use is not worth provisioning.
	MarginalValue func(k int) float64
	MinMarginal   float64

	// Seed feeds the backoff jitter; 0 selects 1. Now, when non-nil,
	// replaces time.Now (the unit tests' clock). Both exist so every
	// scaler decision is reproducible.
	Seed int64
	Now  func() time.Time

	// Telemetry receives scaler metrics; nil disables them.
	Telemetry *telemetry.Registry
}

// withDefaults validates cfg and fills the documented defaults.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Min < 1 {
		return cfg, fmt.Errorf("elastic: Min must be at least 1, got %d", cfg.Min)
	}
	if cfg.Max < cfg.Min {
		return cfg, fmt.Errorf("elastic: Max (%d) must be at least Min (%d)", cfg.Max, cfg.Min)
	}
	if cfg.UpWatermark <= cfg.DownWatermark {
		return cfg, fmt.Errorf("elastic: UpWatermark (%g) must exceed DownWatermark (%g) — the gap is the hysteresis band",
			cfg.UpWatermark, cfg.DownWatermark)
	}
	if cfg.Min < cfg.Max && cfg.Quiesced == nil {
		return cfg, errors.New("elastic: Quiesced is required when the pool may shrink")
	}
	if cfg.UpSustain <= 0 {
		cfg.UpSustain = 3
	}
	if cfg.DownSustain <= 0 {
		cfg.DownSustain = 5
	}
	if cfg.UpCooldown <= 0 {
		cfg.UpCooldown = 5 * time.Second
	}
	if cfg.DownCooldown <= 0 {
		cfg.DownCooldown = 30 * time.Second
	}
	if cfg.FlipQuiet <= 0 {
		cfg.FlipQuiet = cfg.UpCooldown
		if cfg.DownCooldown > cfg.FlipQuiet {
			cfg.FlipQuiet = cfg.DownCooldown
		}
	}
	if cfg.MaxStep <= 0 {
		cfg.MaxStep = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.SampleStaleness <= 0 {
		cfg.SampleStaleness = 3 * cfg.Interval
	}
	if cfg.DrainDeadline <= 0 {
		cfg.DrainDeadline = 30 * time.Second
	}
	if cfg.QuiesceSweeps <= 0 {
		cfg.QuiesceSweeps = 2
	}
	if cfg.RiseTimeout <= 0 {
		cfg.RiseTimeout = 10 * time.Second
	}
	if cfg.ProvisionBackoff <= 0 {
		cfg.ProvisionBackoff = 100 * time.Millisecond
	}
	if cfg.ProvisionBackoffMax <= 0 {
		cfg.ProvisionBackoffMax = 5 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg, nil
}

// drainState tracks one draining member.
type drainState struct {
	deadline time.Time
	quiet    int // consecutive quiesced ticks
}

// provState tracks one node between Provision and its first health rise.
type provState struct {
	deadline time.Time
}

// Scaler drives the pool lifecycle. All decisions happen inside Tick;
// Start merely runs Tick on a ticker.
type Scaler struct {
	cfg    Config
	pool   Pool
	prov   Provisioner
	health Health

	mu           sync.Mutex
	members      map[string]bool
	draining     map[string]*drainState
	provisioning map[string]*provState
	upStreak     int
	downStreak   int
	upNotBefore  time.Time
	dnNotBefore  time.Time
	provFails    int       // consecutive provisioning failures
	provNotBefor time.Time // backoff gate
	breakerUntil time.Time
	rng          *rand.Rand

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	done      chan struct{}

	tel struct {
		scaleUps, scaleDowns        *telemetry.Counter
		drainsStarted               *telemetry.Counter
		drainsAborted, drainsForced *telemetry.Counter
		drainsRefused               *telemetry.Counter
		provsStarted, provFailures  *telemetry.Counter
		provRollbacks, breakerOpens *telemetry.Counter
		forecastVetoes              *telemetry.Counter
		staleSkipped                *telemetry.Counter
		poolSize                    *telemetry.Gauge
		provisioning, draining      *telemetry.Gauge
	}
}

// New builds a scaler over an arbiter pool, a provisioner, and a health
// plane. initial seeds the member set (the statically started pool);
// pool, prov, and health must already know these addresses.
func New(cfg Config, pool Pool, prov Provisioner, health Health, initial []string) (*Scaler, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if pool == nil || prov == nil || health == nil {
		return nil, errors.New("elastic: pool, provisioner, and health are all required")
	}
	s := &Scaler{
		cfg:          cfg,
		pool:         pool,
		prov:         prov,
		health:       health,
		members:      make(map[string]bool, len(initial)),
		draining:     map[string]*drainState{},
		provisioning: map[string]*provState{},
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		stopCh:       make(chan struct{}),
		done:         make(chan struct{}),
	}
	for _, addr := range initial {
		s.members[addr] = true
	}
	reg := cfg.Telemetry
	s.tel.scaleUps = reg.Counter("elastic_scale_ups_total")
	s.tel.scaleDowns = reg.Counter("elastic_scale_downs_total")
	s.tel.drainsStarted = reg.Counter("elastic_drains_started_total")
	s.tel.drainsAborted = reg.Counter("elastic_drains_aborted_total")
	s.tel.drainsForced = reg.Counter("elastic_drains_forced_total")
	s.tel.drainsRefused = reg.Counter("elastic_drains_refused_total")
	s.tel.provsStarted = reg.Counter("elastic_provisions_started_total")
	s.tel.provFailures = reg.Counter("elastic_provision_failures_total")
	s.tel.provRollbacks = reg.Counter("elastic_provision_rollbacks_total")
	s.tel.breakerOpens = reg.Counter("elastic_provision_breaker_opens_total")
	s.tel.forecastVetoes = reg.Counter("elastic_forecast_vetoes_total")
	s.tel.staleSkipped = reg.Counter("elastic_stale_samples_skipped_total")
	s.tel.poolSize = reg.Gauge("elastic_pool_size")
	s.tel.provisioning = reg.Gauge("elastic_provisioning")
	s.tel.draining = reg.Gauge("elastic_draining")
	s.tel.poolSize.Set(int64(len(initial)))
	return s, nil
}

// Start runs Tick every Interval until Stop. Safe to call once.
func (s *Scaler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			ticker := time.NewTicker(s.cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-s.stopCh:
					return
				case <-ticker.C:
					s.Tick()
				}
			}
		}()
	})
}

// Stop ends the tick loop. In-progress drains and provisions are left
// where they are — the stack owner decides whether to finish or discard
// them on shutdown. Safe to call even if Start never ran.
func (s *Scaler) Stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.startOnce.Do(func() { close(s.done) }) // never started: nothing to wait for
	<-s.done
}

// Tick advances every lifecycle and takes at most one scaling decision.
// Exported so tests (and callers that want scaling under their own
// timing) can drive the scaler deterministically.
func (s *Scaler) Tick() {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceProvisioning(now)
	s.advanceDraining(now)
	s.decide(now)
	s.updateGauges()
}

// Members returns the current member addresses (including draining
// ones), sorted.
func (s *Scaler) Members() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.members))
	for addr := range s.members {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// advanceProvisioning promotes provisioned nodes that passed their first
// health rise and rolls back the ones that did not make the deadline.
// Caller holds the lock.
func (s *Scaler) advanceProvisioning(now time.Time) {
	for addr, ps := range s.provisioning {
		if s.health.IsUp(addr) {
			// First rise achieved: the node is trusted, hand it to the
			// arbiter. AddION's only failure modes are a duplicate (we
			// never add twice) and an advisory solve failure that still
			// keeps the node pooled, so the promotion stands either way.
			_ = s.pool.AddION(addr)
			delete(s.provisioning, addr)
			s.members[addr] = true
			s.tel.scaleUps.Inc()
			s.provFails = 0
			continue
		}
		if now.After(ps.deadline) {
			// The daemon never rose: roll it back before the arbiter ever
			// hears of it. A rollback is a provisioning failure as far as
			// backoff and the breaker are concerned — the provisioner is
			// handing out duds.
			delete(s.provisioning, addr)
			s.health.Remove(addr)
			_ = s.prov.Decommission(addr)
			s.tel.provRollbacks.Inc()
			s.provisionFailed(now)
		}
	}
}

// advanceDraining completes quiesced drains, forces ones past deadline,
// and abandons drains whose node died underneath them. Caller holds the
// lock.
func (s *Scaler) advanceDraining(now time.Time) {
	for addr, ds := range s.draining {
		if !s.health.IsUp(addr) {
			// Died mid-drain. The prober's MarkDown already aborted the
			// arbiter-side drain (AbortDrain below is a no-op then, and a
			// consistency repair if the arbiter callback has not fired
			// yet). The node stays a member, down — warm restart may
			// revive it; decommissioning a corpse we still count would
			// strand its comeback.
			_ = s.pool.AbortDrain(addr)
			delete(s.draining, addr)
			s.tel.drainsAborted.Inc()
			continue
		}
		if s.cfg.Quiesced(addr) {
			ds.quiet++
		} else {
			ds.quiet = 0
		}
		if ds.quiet >= s.cfg.QuiesceSweeps {
			s.completeDrain(addr)
		} else if now.After(ds.deadline) {
			// Quiescence never came (a wedged op, a chatty client). The
			// deadline bounds how long capacity stays reserved: complete
			// anyway — clients retry through the rpc layer and fail over
			// to the direct PFS path, so forcing is safe, just not free.
			s.tel.drainsForced.Inc()
			s.completeDrain(addr)
		}
	}
}

// completeDrain removes addr everywhere and decommissions the daemon.
// Caller holds the lock.
func (s *Scaler) completeDrain(addr string) {
	if err := s.pool.RemoveION(addr); err != nil {
		// Still assigned — a solve raced the drain. Never yank a routed
		// node: put it back and let a later decision try again.
		_ = s.pool.AbortDrain(addr)
		delete(s.draining, addr)
		s.tel.drainsAborted.Inc()
		return
	}
	s.health.Remove(addr)
	_ = s.prov.Decommission(addr)
	delete(s.draining, addr)
	delete(s.members, addr)
	s.tel.scaleDowns.Inc()
}

// decide reads the demand signal and takes at most one scaling decision.
// Caller holds the lock.
func (s *Scaler) decide(now time.Time) {
	depths := s.health.Load()
	// Drop samples from before a probe blackout: a frozen depth is not
	// evidence of anything but the prober's own trouble. Filtering the
	// map up front keeps stale nodes out of both the demand average and
	// the scale-down victim ranking.
	ages := s.health.LoadAges()
	for addr := range depths {
		if age, ok := ages[addr]; !ok || age > s.cfg.SampleStaleness {
			delete(depths, addr)
			s.tel.staleSkipped.Inc()
		}
	}
	live := 0
	var sum int64
	for addr := range s.members {
		if s.draining[addr] != nil {
			continue
		}
		d, ok := depths[addr] // present only for up nodes
		if !ok {
			continue
		}
		live++
		sum += d
	}
	if live == 0 {
		// All members down is an outage, not a demand signal; scaling on
		// it would thrash a pool that needs repair, not resize.
		s.upStreak, s.downStreak = 0, 0
		return
	}
	avg := float64(sum) / float64(live)
	switch {
	case avg >= s.cfg.UpWatermark:
		s.upStreak++
		s.downStreak = 0
	case avg <= s.cfg.DownWatermark:
		s.downStreak++
		s.upStreak = 0
	default: // inside the hysteresis band: no trend either way
		s.upStreak, s.downStreak = 0, 0
	}

	// Size counts where the pool is heading: draining nodes are leaving,
	// provisioning ones arriving.
	size := len(s.members) - len(s.draining) + len(s.provisioning)

	if s.upStreak >= s.cfg.UpSustain && size < s.cfg.Max && !now.Before(s.upNotBefore) {
		step := s.cfg.MaxStep
		if size+step > s.cfg.Max {
			step = s.cfg.Max - size
		}
		added := 0
		for i := 0; i < step; i++ {
			if s.cfg.MarginalValue != nil && s.cfg.MarginalValue(size+added) <= s.cfg.MinMarginal {
				s.tel.forecastVetoes.Inc()
				break
			}
			if !s.provision(now) {
				break
			}
			added++
		}
		if added > 0 {
			s.upNotBefore = now.Add(s.cfg.UpCooldown)
			s.upStreak = 0
			if flip := now.Add(s.cfg.FlipQuiet); flip.After(s.dnNotBefore) {
				s.dnNotBefore = flip
			}
		}
		return
	}

	// Shrink is budgeted pessimistically, unlike growth: an in-flight
	// provision may still fail its rise and roll back, so it can never
	// cover for a member being drained away — otherwise the drains it
	// "covered" complete and the settled pool undershoots Min.
	settled := len(s.members) - len(s.draining)
	if s.downStreak >= s.cfg.DownSustain && settled > s.cfg.Min && !now.Before(s.dnNotBefore) {
		step := s.cfg.MaxStep
		if settled-step < s.cfg.Min {
			step = settled - s.cfg.Min
		}
		drained := 0
		for _, addr := range s.victims(depths, step) {
			if err := s.pool.Drain(addr); err != nil {
				// The arbiter refused (infeasible move, node just died,
				// …): respect it and stop — conditions that block one
				// drain block them all this tick.
				s.tel.drainsRefused.Inc()
				break
			}
			s.draining[addr] = &drainState{deadline: now.Add(s.cfg.DrainDeadline)}
			s.tel.drainsStarted.Inc()
			drained++
		}
		if drained > 0 {
			s.dnNotBefore = now.Add(s.cfg.DownCooldown)
			s.downStreak = 0
			if flip := now.Add(s.cfg.FlipQuiet); flip.After(s.upNotBefore) {
				s.upNotBefore = flip
			}
		}
	}
}

// victims picks up to n scale-down candidates: up members, not already
// draining, least queue depth first (address as tiebreak, so the choice
// is deterministic). Caller holds the lock.
func (s *Scaler) victims(depths map[string]int64, n int) []string {
	cand := make([]string, 0, len(s.members))
	for addr := range s.members {
		if s.draining[addr] != nil {
			continue
		}
		if _, up := depths[addr]; !up {
			continue
		}
		cand = append(cand, addr)
	}
	sort.Slice(cand, func(i, j int) bool {
		if depths[cand[i]] != depths[cand[j]] {
			return depths[cand[i]] < depths[cand[j]]
		}
		return cand[i] < cand[j]
	})
	if len(cand) > n {
		cand = cand[:n]
	}
	return cand
}

// provision asks the Provisioner for one node, gated by backoff and the
// breaker. Returns whether a provision is now in flight. Caller holds
// the lock.
func (s *Scaler) provision(now time.Time) bool {
	if now.Before(s.provNotBefor) || now.Before(s.breakerUntil) {
		return false
	}
	addr, err := s.prov.Provision()
	if err != nil {
		s.tel.provFailures.Inc()
		s.provisionFailed(now)
		return false
	}
	// Probe the newcomer pessimistically: it must rise on its own merits
	// before the arbiter may route to it.
	if err := s.health.Add(addr, false); err != nil {
		_ = s.prov.Decommission(addr)
		s.tel.provFailures.Inc()
		s.provisionFailed(now)
		return false
	}
	s.provisioning[addr] = &provState{deadline: now.Add(s.cfg.RiseTimeout)}
	s.tel.provsStarted.Inc()
	return true
}

// provisionFailed records one provisioning failure: jittered exponential
// backoff, and the breaker past the threshold. Caller holds the lock.
func (s *Scaler) provisionFailed(now time.Time) {
	s.provFails++
	backoff := s.cfg.ProvisionBackoffMax
	if shift := s.provFails - 1; shift < 16 {
		if b := s.cfg.ProvisionBackoff << shift; b < backoff {
			backoff = b
		}
	}
	// Equal jitter: half deterministic, half random, so synchronized
	// failures (a provisioner outage) do not retry in lockstep.
	backoff = backoff/2 + time.Duration(s.rng.Int63n(int64(backoff/2)+1))
	s.provNotBefor = now.Add(backoff)
	if s.provFails >= s.cfg.BreakerThreshold && !now.Before(s.breakerUntil) {
		s.breakerUntil = now.Add(s.cfg.BreakerCooldown)
		s.tel.breakerOpens.Inc()
	}
}

// updateGauges refreshes the pool gauges. Caller holds the lock.
func (s *Scaler) updateGauges() {
	s.tel.poolSize.Set(int64(len(s.members)))
	s.tel.provisioning.Set(int64(len(s.provisioning)))
	s.tel.draining.Set(int64(len(s.draining)))
}
