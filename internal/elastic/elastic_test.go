package elastic

// Deterministic scaler tests: every case drives Tick by hand with an
// injected clock and fake pool/provisioner/health seams, so hysteresis
// windows, cooldowns, backoff, the breaker, and both lifecycles are
// pinned tick by tick with no real time involved.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/telemetry"
)

type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// fakePool records arbiter calls.
type fakePool struct {
	draining map[string]bool
	assigned map[string]bool // RemoveION refused while set
	drainErr error
	adds     []string
	removes  []string
	aborts   []string
}

func newFakePool() *fakePool {
	return &fakePool{draining: map[string]bool{}, assigned: map[string]bool{}}
}
func (p *fakePool) AddION(addr string) error {
	p.adds = append(p.adds, addr)
	return nil
}
func (p *fakePool) Drain(addr string) error {
	if p.drainErr != nil {
		return p.drainErr
	}
	p.draining[addr] = true
	return nil
}
func (p *fakePool) AbortDrain(addr string) error {
	delete(p.draining, addr)
	p.aborts = append(p.aborts, addr)
	return nil
}
func (p *fakePool) RemoveION(addr string) error {
	if p.assigned[addr] {
		return errors.New("still assigned")
	}
	delete(p.draining, addr)
	p.removes = append(p.removes, addr)
	return nil
}
func (p *fakePool) IsDraining(addr string) bool { return p.draining[addr] }

// fakeHealth is a hand-set liveness/load plane.
type fakeHealth struct {
	up      map[string]bool
	depth   map[string]int64
	age     map[string]time.Duration // sample age override; absent = fresh
	added   map[string]bool          // posture recorded at Add: the seeded up value
	removed []string
}

func newFakeHealth() *fakeHealth {
	return &fakeHealth{
		up: map[string]bool{}, depth: map[string]int64{},
		age: map[string]time.Duration{}, added: map[string]bool{},
	}
}
func (h *fakeHealth) Add(addr string, up bool) error {
	if _, dup := h.up[addr]; dup {
		return errors.New("duplicate")
	}
	h.up[addr] = up
	h.added[addr] = up
	return nil
}
func (h *fakeHealth) Remove(addr string) {
	delete(h.up, addr)
	delete(h.depth, addr)
	h.removed = append(h.removed, addr)
}
func (h *fakeHealth) IsUp(addr string) bool { return h.up[addr] }
func (h *fakeHealth) Load() map[string]int64 {
	out := map[string]int64{}
	for addr, up := range h.up {
		if up {
			out[addr] = h.depth[addr]
		}
	}
	return out
}
func (h *fakeHealth) LoadAges() map[string]time.Duration {
	out := map[string]time.Duration{}
	for addr, up := range h.up {
		if up {
			out[addr] = h.age[addr] // zero (fresh) unless a test sets it
		}
	}
	return out
}

// fakeProv hands out addresses ion10:1, ion11:1, … and can be told to
// fail the next N calls.
type fakeProv struct {
	next           int
	failNext       int
	provisioned    []string
	decommissioned []string
}

func (p *fakeProv) Provision() (string, error) {
	if p.failNext > 0 {
		p.failNext--
		return "", errors.New("provisioner outage")
	}
	addr := fmt.Sprintf("ion%d:1", 10+p.next)
	p.next++
	p.provisioned = append(p.provisioned, addr)
	return addr, nil
}
func (p *fakeProv) Decommission(addr string) error {
	p.decommissioned = append(p.decommissioned, addr)
	return nil
}

// rig bundles a scaler with its seams, two initial up members, and a
// 100ms tick the tests advance by hand.
type rig struct {
	s      *Scaler
	pool   *fakePool
	prov   *fakeProv
	health *fakeHealth
	clk    *fakeClock
	reg    *telemetry.Registry
}

func (r *rig) tick() {
	r.clk.advance(100 * time.Millisecond)
	r.s.Tick()
}

func (r *rig) counter(name string) int64 { return r.reg.Counter(name).Value() }

func newRig(t *testing.T, mutate func(*Config)) *rig {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	pool := newFakePool()
	prov := &fakeProv{}
	health := newFakeHealth()
	reg := telemetry.New()
	quiet := map[string]bool{}
	cfg := Config{
		Min:                 2,
		Max:                 6,
		UpWatermark:         8,
		DownWatermark:       1,
		UpSustain:           3,
		DownSustain:         4,
		UpCooldown:          time.Second,
		DownCooldown:        2 * time.Second,
		MaxStep:             1,
		DrainDeadline:       3 * time.Second,
		QuiesceSweeps:       2,
		RiseTimeout:         time.Second,
		ProvisionBackoff:    200 * time.Millisecond,
		ProvisionBackoffMax: time.Second,
		BreakerThreshold:    3,
		BreakerCooldown:     5 * time.Second,
		Quiesced:            func(addr string) bool { return quiet[addr] },
		Now:                 clk.now,
		Telemetry:           reg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	initial := []string{"ion0:1", "ion1:1"}
	for _, a := range initial {
		health.up[a] = true
	}
	s, err := New(cfg, pool, prov, health, initial)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{s: s, pool: pool, prov: prov, health: health, clk: clk, reg: reg}
}

// setDepth sets every up member's sampled depth.
func (r *rig) setDepth(d int64) {
	for addr, up := range r.health.up {
		if up {
			r.health.depth[addr] = d
		}
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{Min: 1, Max: 2, UpWatermark: 8, DownWatermark: 1, Quiesced: func(string) bool { return true }}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"min zero", func(c *Config) { c.Min = 0 }},
		{"max below min", func(c *Config) { c.Max = 0 }},
		{"no hysteresis band", func(c *Config) { c.DownWatermark = c.UpWatermark }},
		{"shrinkable without quiesce", func(c *Config) { c.Quiesced = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := New(cfg, newFakePool(), &fakeProv{}, newFakeHealth(), nil); err == nil {
				t.Fatal("want config error")
			}
		})
	}
	// Min == Max needs no Quiesced: the pool can never shrink.
	cfg := base
	cfg.Max = cfg.Min
	cfg.Quiesced = nil
	if _, err := New(cfg, newFakePool(), &fakeProv{}, newFakeHealth(), nil); err != nil {
		t.Fatalf("fixed-size config rejected: %v", err)
	}
}

func TestScaleUpNeedsSustainedSignalAndFirstRise(t *testing.T) {
	r := newRig(t, nil)
	r.setDepth(20) // far above the up watermark

	r.tick() // streak 1
	r.tick() // streak 2
	if len(r.prov.provisioned) != 0 {
		t.Fatalf("provisioned before UpSustain: %v", r.prov.provisioned)
	}
	r.tick() // streak 3 = UpSustain → provision
	if len(r.prov.provisioned) != 1 {
		t.Fatalf("provisioned = %v, want one node", r.prov.provisioned)
	}
	newAddr := r.prov.provisioned[0]
	if up, ok := r.health.added[newAddr]; !ok || up {
		t.Fatalf("new node must be health-added pessimistically down, got added=%v up=%v", ok, up)
	}
	if len(r.pool.adds) != 0 {
		t.Fatal("node handed to the arbiter before its first health rise")
	}
	if r.counter("elastic_scale_ups_total") != 0 {
		t.Fatal("scale-up counted before the node rose")
	}

	// The daemon rises; the next tick promotes it.
	r.health.up[newAddr] = true
	r.tick()
	if len(r.pool.adds) != 1 || r.pool.adds[0] != newAddr {
		t.Fatalf("arbiter adds = %v, want [%s]", r.pool.adds, newAddr)
	}
	if r.counter("elastic_scale_ups_total") != 1 {
		t.Fatalf("elastic_scale_ups_total = %d, want 1", r.counter("elastic_scale_ups_total"))
	}
	if got := r.reg.Gauge("elastic_pool_size").Value(); got != 3 {
		t.Fatalf("elastic_pool_size = %d, want 3", got)
	}
}

func TestScaleUpCooldownGatesNextGrowth(t *testing.T) {
	r := newRig(t, nil)
	r.setDepth(20)
	r.tick()
	r.tick()
	r.tick() // provision #1 fires; cooldown = 1s starts
	if len(r.prov.provisioned) != 1 {
		t.Fatalf("provisioned = %v, want 1", r.prov.provisioned)
	}
	r.health.up[r.prov.provisioned[0]] = true
	r.setDepth(20)
	// 5 more hot ticks = 500ms: sustain is long since met, but the
	// cooldown must hold the second grow until a full second passed.
	for i := 0; i < 5; i++ {
		r.tick()
		r.setDepth(20)
	}
	if len(r.prov.provisioned) != 1 {
		t.Fatalf("cooldown violated: provisioned %v", r.prov.provisioned)
	}
	for i := 0; i < 6; i++ { // past the 1s mark
		r.tick()
		r.setDepth(20)
	}
	if len(r.prov.provisioned) != 2 {
		t.Fatalf("provisioned = %v, want 2 after cooldown", r.prov.provisioned)
	}
}

// TestFlipQuietDampsReversal pins the reversal gate: after a scale-up,
// the opposite direction is quiet for FlipQuiet (default max of the two
// cooldowns — 2s in the rig), even once DownSustain is long since met.
// A grow is itself evidence of demand, and the remap stall it triggers
// briefly starves the depth signal, so an immediate shrink is a flap.
func TestFlipQuietDampsReversal(t *testing.T) {
	grow := func(r *rig) {
		r.setDepth(20)
		r.tick()
		r.tick()
		r.tick() // provision fires here: the flip clock starts
		if len(r.prov.provisioned) != 1 {
			t.Fatalf("provisioned = %v, want 1", r.prov.provisioned)
		}
		r.health.up[r.prov.provisioned[0]] = true
		r.tick() // promote: pool 3, shrinkable above Min
		if r.counter("elastic_scale_ups_total") != 1 {
			t.Fatalf("ups = %d, want 1", r.counter("elastic_scale_ups_total"))
		}
		r.setDepth(0) // the signal collapses the instant the node lands
	}

	t.Run("gated", func(t *testing.T) {
		r := newRig(t, nil)
		grow(r)
		// Sustain (4 ticks) is met at t=0.8s; the flip gate holds until
		// 2s after the provision decision at t=0.3s.
		for i := 0; i < 18; i++ { // up to t=2.2s
			r.tick()
		}
		if got := r.counter("elastic_drains_started_total"); got != 0 {
			t.Fatalf("drain started %d inside the flip-quiet window", got)
		}
		r.tick()
		r.tick() // past t=2.3s: the gate lifts, the held streak fires
		if got := r.counter("elastic_drains_started_total"); got != 1 {
			t.Fatalf("drains started = %d after flip-quiet, want 1", got)
		}
	})

	t.Run("near-zero quiet shrinks at sustain", func(t *testing.T) {
		r := newRig(t, func(c *Config) { c.FlipQuiet = time.Millisecond })
		grow(r)
		for i := 0; i < 4; i++ { // exactly DownSustain
			r.tick()
		}
		if got := r.counter("elastic_drains_started_total"); got != 1 {
			t.Fatalf("drains started = %d at sustain with no flip gate, want 1", got)
		}
	})
}

func TestHysteresisBandHoldsSteady(t *testing.T) {
	r := newRig(t, nil)
	r.setDepth(4) // between down (1) and up (8)
	for i := 0; i < 50; i++ {
		r.tick()
	}
	if len(r.prov.provisioned) != 0 || len(r.pool.draining) != 0 || len(r.pool.removes) != 0 {
		t.Fatalf("band breached: prov=%v draining=%v removes=%v",
			r.prov.provisioned, r.pool.draining, r.pool.removes)
	}
}

func TestMaxStepClampAndMaxBound(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.MaxStep = 4
		c.Max = 3 // only one above the initial two
	})
	r.setDepth(20)
	r.tick()
	r.tick()
	r.tick()
	if len(r.prov.provisioned) != 1 {
		t.Fatalf("Max bound violated: provisioned %v", r.prov.provisioned)
	}
}

func TestScaleDownDrainsQuiescesAndDecommissions(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Min = 1 })
	quiet := map[string]bool{}
	r.s.cfg.Quiesced = func(addr string) bool { return quiet[addr] }
	r.health.depth["ion0:1"] = 0
	r.health.depth["ion1:1"] = 1

	for i := 0; i < 3; i++ {
		r.tick()
	}
	if len(r.pool.draining) != 0 {
		t.Fatalf("drained before DownSustain: %v", r.pool.draining)
	}
	r.tick() // streak 4 = DownSustain → drain the least-loaded node
	if !r.pool.draining["ion0:1"] {
		t.Fatalf("victim = %v, want the least-depth node ion0:1", r.pool.draining)
	}
	if r.counter("elastic_drains_started_total") != 1 {
		t.Fatal("drain not counted")
	}

	// Not quiet yet: the drain must wait.
	r.tick()
	if len(r.pool.removes) != 0 {
		t.Fatal("removed before quiescence")
	}
	// Quiet for QuiesceSweeps (2) consecutive ticks completes the drain.
	quiet["ion0:1"] = true
	r.tick()
	r.tick()
	if len(r.pool.removes) != 1 || r.pool.removes[0] != "ion0:1" {
		t.Fatalf("removes = %v, want [ion0:1]", r.pool.removes)
	}
	if len(r.prov.decommissioned) != 1 || r.prov.decommissioned[0] != "ion0:1" {
		t.Fatalf("decommissioned = %v, want [ion0:1]", r.prov.decommissioned)
	}
	if len(r.health.removed) != 1 || r.health.removed[0] != "ion0:1" {
		t.Fatalf("health removed = %v, want [ion0:1]", r.health.removed)
	}
	if r.counter("elastic_scale_downs_total") != 1 {
		t.Fatal("scale-down not counted")
	}
	if got := r.reg.Gauge("elastic_pool_size").Value(); got != 1 {
		t.Fatalf("elastic_pool_size = %d, want 1", got)
	}
}

func TestMinFloorBlocksScaleDown(t *testing.T) {
	r := newRig(t, nil) // Min = 2 = initial size
	r.setDepth(0)
	for i := 0; i < 20; i++ {
		r.tick()
	}
	if len(r.pool.draining) != 0 {
		t.Fatalf("pool shrank below Min: %v", r.pool.draining)
	}
}

// An in-flight provision must never cover for a drain: the rise can
// still roll back, and if it does, the drain it "covered" completes and
// the settled pool undershoots Min. Shrink is budgeted against members
// actually here and staying, growth stays optimistic.
func TestInFlightProvisionNeverCoversADrain(t *testing.T) {
	r := newRig(t, nil) // Min = 2 = initial size
	// Sustained demand starts one provision; the newcomer never rises.
	r.setDepth(10)
	for i := 0; i < 3; i++ {
		r.tick()
	}
	if got := len(r.prov.provisioned); got != 1 {
		t.Fatalf("provisions in flight = %d, want 1", got)
	}
	// The signal collapses while the rise is pending. The optimistic
	// size (members + provisioning = 3) is above Min, but only 2 nodes
	// are settled: no drain may start. Keep ticking through the rise
	// deadline so the rollback lands too.
	r.setDepth(0)
	for i := 0; i < 15; i++ {
		r.tick()
	}
	if got := r.counter("elastic_drains_started_total"); got != 0 {
		t.Fatalf("drains started = %d, want 0 (an in-flight provision covered a drain)", got)
	}
	if got := r.counter("elastic_provision_rollbacks_total"); got != 1 {
		t.Fatalf("rollbacks = %d, want 1 (the pending rise must time out)", got)
	}
	if got := len(r.s.Members()); got != 2 {
		t.Fatalf("members = %d, want 2: the pool left its floor", got)
	}
}

func TestDrainAbortsWhenNodeDies(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Min = 1 })
	r.setDepth(0)
	for i := 0; i < 4; i++ {
		r.tick()
	}
	victim := ""
	for addr := range r.pool.draining {
		victim = addr
	}
	if victim == "" {
		t.Fatal("no drain started")
	}
	// The nemesis kills the draining node: the drain must abort, the
	// node must NOT be decommissioned (warm restart may revive it), and
	// it must stay a member.
	r.health.up[victim] = false
	r.tick()
	if r.counter("elastic_drains_aborted_total") != 1 {
		t.Fatal("aborted drain not counted")
	}
	if len(r.prov.decommissioned) != 0 {
		t.Fatalf("dead draining node was decommissioned: %v", r.prov.decommissioned)
	}
	found := false
	for _, m := range r.s.Members() {
		if m == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("aborted-drain node dropped from members: %v", r.s.Members())
	}
	if len(r.pool.aborts) == 0 {
		t.Fatal("arbiter AbortDrain never called")
	}
}

func TestDrainForcedPastDeadline(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Min = 1 })
	r.s.cfg.Quiesced = func(string) bool { return false } // never quiet
	r.setDepth(0)
	for i := 0; i < 4; i++ {
		r.tick()
	}
	if len(r.pool.draining) != 1 {
		t.Fatalf("draining = %v, want 1", r.pool.draining)
	}
	// DrainDeadline is 3s; 100ms ticks need 30 more to cross it.
	for i := 0; i < 31; i++ {
		r.tick()
	}
	if r.counter("elastic_drains_forced_total") != 1 {
		t.Fatalf("elastic_drains_forced_total = %d, want 1", r.counter("elastic_drains_forced_total"))
	}
	if len(r.pool.removes) != 1 {
		t.Fatalf("forced drain did not complete: removes = %v", r.pool.removes)
	}
}

func TestDrainRefusedByArbiterStopsCleanly(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Min = 1 })
	r.pool.drainErr = errors.New("infeasible")
	r.setDepth(0)
	for i := 0; i < 10; i++ {
		r.tick()
	}
	if r.counter("elastic_drains_refused_total") == 0 {
		t.Fatal("refused drain not counted")
	}
	if len(r.pool.removes) != 0 || len(r.prov.decommissioned) != 0 {
		t.Fatal("refused drain still decommissioned something")
	}
}

func TestProvisionRollbackWhenNodeNeverRises(t *testing.T) {
	r := newRig(t, nil)
	r.setDepth(20)
	r.tick()
	r.tick()
	r.tick() // provision fires; RiseTimeout = 1s
	if len(r.prov.provisioned) != 1 {
		t.Fatalf("provisioned = %v, want 1", r.prov.provisioned)
	}
	dud := r.prov.provisioned[0]
	// The daemon never rises; 11 ticks = 1.1s crosses the deadline.
	for i := 0; i < 11; i++ {
		r.tick()
		r.setDepth(20)
	}
	if r.counter("elastic_provision_rollbacks_total") != 1 {
		t.Fatalf("elastic_provision_rollbacks_total = %d, want 1",
			r.counter("elastic_provision_rollbacks_total"))
	}
	if len(r.prov.decommissioned) != 1 || r.prov.decommissioned[0] != dud {
		t.Fatalf("decommissioned = %v, want [%s]", r.prov.decommissioned, dud)
	}
	if len(r.pool.adds) != 0 {
		t.Fatalf("dud reached the arbiter: %v", r.pool.adds)
	}
	if r.counter("elastic_scale_ups_total") != 0 {
		t.Fatal("rollback counted as a scale-up")
	}
}

func TestProvisionBackoffAndBreaker(t *testing.T) {
	r := newRig(t, nil)
	r.prov.failNext = 1 << 30 // the provisioner is dead
	r.setDepth(20)

	// Walk far enough that, without backoff, dozens of attempts would
	// fire. BreakerThreshold = 3, so at most 3 failures may land before
	// the breaker opens for 5s.
	for i := 0; i < 40; i++ { // 4s
		r.tick()
		r.setDepth(20)
	}
	fails := r.counter("elastic_provision_failures_total")
	if fails != 3 {
		t.Fatalf("elastic_provision_failures_total = %d, want exactly BreakerThreshold (3) before the breaker opens", fails)
	}
	if r.counter("elastic_provision_breaker_opens_total") != 1 {
		t.Fatalf("breaker opens = %d, want 1", r.counter("elastic_provision_breaker_opens_total"))
	}

	// Past the breaker cooldown (5s), a half-open attempt probes the
	// provisioner again — and it succeeds now. Tick until it lands; the
	// cap bounds the wait at 10 virtual seconds.
	r.prov.failNext = 0
	for i := 0; i < 100 && len(r.prov.provisioned) == 0; i++ {
		r.tick()
		r.setDepth(20)
	}
	if len(r.prov.provisioned) != 1 {
		t.Fatalf("provisioned = %v, want one node after the breaker closed", r.prov.provisioned)
	}
	if got := r.counter("elastic_provision_failures_total"); got != 3 {
		t.Fatalf("failures after recovery = %d, want still 3", got)
	}
	// The newcomer rises and promotes: full recovery end to end.
	r.health.up[r.prov.provisioned[0]] = true
	r.tick()
	if r.counter("elastic_scale_ups_total") != 1 {
		t.Fatalf("elastic_scale_ups_total = %d, want 1", r.counter("elastic_scale_ups_total"))
	}
}

func TestForecastVetoBlocksWorthlessGrowth(t *testing.T) {
	r := newRig(t, func(c *Config) {
		// The curves say a third node adds nothing.
		c.MarginalValue = func(k int) float64 {
			if k >= 2 {
				return 0
			}
			return 100
		}
	})
	r.setDepth(20)
	for i := 0; i < 10; i++ {
		r.tick()
	}
	if len(r.prov.provisioned) != 0 {
		t.Fatalf("vetoed growth still provisioned: %v", r.prov.provisioned)
	}
	if r.counter("elastic_forecast_vetoes_total") == 0 {
		t.Fatal("forecast veto not counted")
	}
}

func TestAllMembersDownFreezesScaling(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Min = 1 })
	r.health.up["ion0:1"] = false
	r.health.up["ion1:1"] = false
	for i := 0; i < 20; i++ {
		r.tick()
	}
	if len(r.prov.provisioned) != 0 || len(r.pool.draining) != 0 {
		t.Fatalf("outage treated as demand signal: prov=%v draining=%v",
			r.prov.provisioned, r.pool.draining)
	}
}

func TestCompleteDrainAbortsIfStillAssigned(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Min = 1 })
	quietAll := func(string) bool { return true }
	r.s.cfg.Quiesced = quietAll
	r.setDepth(0)
	for i := 0; i < 4; i++ {
		r.tick()
	}
	victim := ""
	for addr := range r.pool.draining {
		victim = addr
	}
	if victim == "" {
		t.Fatal("no drain started")
	}
	r.pool.assigned[victim] = true // a solve raced the drain
	r.tick()
	r.tick() // quiet twice → completion attempt → RemoveION refused
	if len(r.prov.decommissioned) != 0 {
		t.Fatalf("assigned node decommissioned: %v", r.prov.decommissioned)
	}
	if r.counter("elastic_drains_aborted_total") == 0 {
		t.Fatal("racy completion must abort the drain")
	}
}

func TestStaleSamplesSkipped(t *testing.T) {
	// A node whose load sample predates the staleness bound (3× Interval
	// by default) is dropped from both the demand average and the victim
	// ranking: a frozen depth is evidence of prober trouble, not load.
	r := newRig(t, func(c *Config) { c.Min = 1 })
	// ion1's huge-but-stale depth would otherwise mask the idle trend
	// (avg 50 sits inside the hysteresis band); filtered out, the average
	// is 0 and the only drain candidate is the fresh idle ion0.
	r.health.depth["ion0:1"] = 0
	r.health.depth["ion1:1"] = 100
	r.health.age["ion1:1"] = 10 * time.Second // > the 3s default bound
	for i := 0; i < 4; i++ {                  // DownSustain
		r.tick()
	}
	if !r.pool.draining["ion0:1"] {
		t.Fatalf("fresh idle node not drained; draining=%v", r.pool.draining)
	}
	if r.pool.draining["ion1:1"] {
		t.Fatal("stale-sampled node picked as drain victim")
	}
	if got := r.counter("elastic_stale_samples_skipped_total"); got < 4 {
		t.Fatalf("stale skip counter = %d, want ≥ 4", got)
	}
}

func TestAllSamplesStaleFreezesScaling(t *testing.T) {
	// Every sample stale is a prober blackout, not a demand signal: the
	// scaler must hold position exactly as if all members were down.
	r := newRig(t, func(c *Config) { c.Min = 1 })
	r.setDepth(0) // would otherwise drain after DownSustain
	r.health.age["ion0:1"] = time.Hour
	r.health.age["ion1:1"] = time.Hour
	for i := 0; i < 10; i++ {
		r.tick()
	}
	if len(r.pool.draining) != 0 || len(r.prov.provisioned) != 0 {
		t.Fatalf("scaled on all-stale evidence: draining=%v provisioned=%v",
			r.pool.draining, r.prov.provisioned)
	}
}

func TestStartStopLoop(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Interval = time.Millisecond; c.Now = nil })
	r.s.Start()
	time.Sleep(20 * time.Millisecond)
	r.s.Stop()
	r.s.Stop() // idempotent
}

func TestStopWithoutStart(t *testing.T) {
	r := newRig(t, nil)
	r.s.Stop()
}
