package experiments

import (
	"fmt"

	"repro/internal/jobs"
	"repro/internal/policy"
)

// AblationDynamicResult isolates the value of *dynamic* reallocation — the
// paper's differentiator against DFRA (Ji et al., FAST'19), which sizes an
// application's forwarding allocation once, when the job starts, and never
// adapts afterwards. Both variants use the same MCKP policy; only the
// stickiness differs.
type AblationDynamicResult struct {
	// DynamicMBps and FixedMBps are the Equation-2 aggregates of the
	// §5.3 queue under adaptive and fixed-at-start MCKP.
	DynamicMBps float64
	FixedMBps   float64
	// Advantage is Dynamic/Fixed.
	Advantage float64
	// DynamicReallocs counts the adaptive run's mid-job reallocations.
	DynamicReallocs int
	// RecruitedMBps is the aggregate when, additionally, idle compute
	// nodes are recruited as temporary I/O nodes (the paper's future
	// work) on a machine without a dedicated forwarding partition.
	RecruitedMBps float64
	// NoForwardingMBps is that machine's baseline (direct access only).
	NoForwardingMBps float64
}

// ExpAblationDynamic runs the §5.3 queue under (a) dynamic MCKP, (b)
// fixed-at-start (DFRA-style) MCKP, and (c) the recruiting extension.
func ExpAblationDynamic() (AblationDynamicResult, error) {
	queue, err := jobs.PaperQueue()
	if err != nil {
		return AblationDynamicResult{}, err
	}
	base := jobs.SimConfig{
		Jobs:         queue,
		ComputeNodes: 96,
		IONs:         12,
		Policy:       policy.MCKP{},
		AllowDirect:  false,
	}

	dynamic, err := jobs.SimulateQueue(base)
	if err != nil {
		return AblationDynamicResult{}, fmt.Errorf("experiments: dynamic: %w", err)
	}
	fixedCfg := base
	fixedCfg.Sticky = true
	fixed, err := jobs.SimulateQueue(fixedCfg)
	if err != nil {
		return AblationDynamicResult{}, fmt.Errorf("experiments: fixed: %w", err)
	}

	// Future-work variant: no dedicated forwarding partition at all.
	noFwdCfg := base
	noFwdCfg.IONs = 0
	noFwdCfg.AllowDirect = true
	noFwd, err := jobs.SimulateQueue(noFwdCfg)
	if err != nil {
		return AblationDynamicResult{}, fmt.Errorf("experiments: no-forwarding: %w", err)
	}
	recruitCfg := noFwdCfg
	recruitCfg.Recruit = jobs.RecruitIdleOptions{Enabled: true}
	recruited, err := jobs.SimulateQueue(recruitCfg)
	if err != nil {
		return AblationDynamicResult{}, fmt.Errorf("experiments: recruit: %w", err)
	}

	res := AblationDynamicResult{
		DynamicMBps:      dynamic.Aggregate.MBps(),
		FixedMBps:        fixed.Aggregate.MBps(),
		DynamicReallocs:  dynamic.Reallocations,
		RecruitedMBps:    recruited.Aggregate.MBps(),
		NoForwardingMBps: noFwd.Aggregate.MBps(),
	}
	if res.FixedMBps > 0 {
		res.Advantage = res.DynamicMBps / res.FixedMBps
	}
	return res, nil
}

// Table renders the result.
func (r AblationDynamicResult) Table() Table {
	return Table{
		Title:  "Ablation — dynamic reallocation and idle-node recruiting",
		Header: []string{"Variant", "Aggregate MB/s", "Notes"},
		Rows: [][]string{
			{"MCKP dynamic (paper)", f1(r.DynamicMBps), fmt.Sprintf("%d mid-job reallocations", r.DynamicReallocs)},
			{"MCKP fixed-at-start (DFRA-style)", f1(r.FixedMBps), fmt.Sprintf("dynamic advantage %.2fx", r.Advantage)},
			{"no forwarding (direct only)", f1(r.NoForwardingMBps), "machine without I/O nodes"},
			{"idle-node recruiting (future work)", f1(r.RecruitedMBps), "idle compute nodes as temporary IONs"},
		},
	}
}
