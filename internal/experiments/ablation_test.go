package experiments

import "testing"

func TestExpAblationDynamic(t *testing.T) {
	r, err := ExpAblationDynamic()
	if err != nil {
		t.Fatal(err)
	}
	if r.Advantage < 1.0 {
		t.Fatalf("dynamic MCKP should not lose to fixed-at-start: %.2f", r.Advantage)
	}
	if r.DynamicReallocs == 0 {
		t.Fatal("dynamic run performed no reallocations; ablation is vacuous")
	}
	if r.RecruitedMBps <= r.NoForwardingMBps {
		t.Fatalf("recruiting should beat the no-forwarding baseline: %.0f vs %.0f",
			r.RecruitedMBps, r.NoForwardingMBps)
	}
	t.Logf("dynamic %.0f vs fixed %.0f MB/s (%.2fx, %d reallocs); no-fwd %.0f → recruited %.0f MB/s",
		r.DynamicMBps, r.FixedMBps, r.Advantage, r.DynamicReallocs,
		r.NoForwardingMBps, r.RecruitedMBps)
	r.Table()
}
