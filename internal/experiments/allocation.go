package experiments

import (
	"fmt"
	"sort"

	"repro/internal/perfmodel"
	"repro/internal/policy"
)

// fiveTwoApps converts the §5.2 six-application set.
func fiveTwoApps() []policy.Application {
	specs := perfmodel.SectionFiveTwoApps()
	apps := make([]policy.Application, 0, len(specs))
	for _, s := range specs {
		apps = append(apps, policy.FromAppSpec(s.Label, s))
	}
	return apps
}

// fiveTwoPolicies is the §5.2 policy roster.
func fiveTwoPolicies() []policy.Policy {
	return []policy.Policy{
		policy.Zero{},
		policy.One{},
		policy.Static{},
		policy.Proportional{},
		policy.Proportional{ByProcesses: true},
		policy.MCKP{},
		policy.Oracle{},
	}
}

// Figure5Result holds the per-application bandwidth curves (Table 3 apps).
type Figure5Result struct {
	Apps []perfmodel.AppSpec
}

// ExpFigure5 returns the evaluation applications' curves (digitized from
// the paper's measurements; the live-stack variant is in the livestack
// package's example and tests).
func ExpFigure5() Figure5Result {
	return Figure5Result{Apps: perfmodel.EvaluationApps()}
}

// Table renders the result.
func (r Figure5Result) Table() Table {
	t := Table{
		Title:  "Figure 5 / Table 3 — application bandwidth (MB/s) vs I/O nodes",
		Header: []string{"App", "Nodes", "Procs", "Write GB", "Read GB", "0", "1", "2", "4", "8", "Best"},
	}
	for _, a := range r.Apps {
		row := []string{a.Label, d(a.Nodes), d(a.Processes),
			f1(float64(a.WriteBytes) / 1e9), f1(float64(a.ReadBytes) / 1e9)}
		for _, k := range []int{0, 1, 2, 4, 8} {
			bw, _ := a.Curve.At(k)
			row = append(row, f1(bw.MBps()))
		}
		row = append(row, d(a.Curve.Best().IONs))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure6Result holds the aggregated bandwidth of the six §5.2 apps for
// each policy across available-ION counts.
type Figure6Result struct {
	Pools    []int
	Policies []string
	// GBps[policy][pool]; missing entries mean not applicable.
	GBps map[string]map[int]float64
	// MCKPOverStatic12 etc. are the paper's headline ratios at 12 IONs.
	MCKPOverStatic12  float64
	MCKPOverSize12    float64
	MCKPOverProcess12 float64
	// OracleMatchPool is the smallest pool where MCKP equals ORACLE.
	OracleMatchPool int
}

// ExpFigure6 evaluates the §5.2 allocation decisions.
func ExpFigure6() (Figure6Result, error) {
	apps := fiveTwoApps()
	pools := []int{4, 8, 12, 16, 20, 24, 28, 32, 36}
	res := Figure6Result{Pools: pools, GBps: map[string]map[int]float64{}}
	for _, p := range fiveTwoPolicies() {
		res.Policies = append(res.Policies, p.Name())
		series := map[int]float64{}
		for _, pool := range pools {
			alloc, err := p.Allocate(apps, pool)
			if err != nil {
				continue
			}
			bw, err := policy.SumBandwidth(apps, alloc)
			if err != nil {
				return res, fmt.Errorf("experiments: Figure 6 %s@%d: %w", p.Name(), pool, err)
			}
			series[pool] = bw.GBps()
		}
		res.GBps[p.Name()] = series
	}
	res.MCKPOverStatic12 = res.GBps["MCKP"][12] / res.GBps["STATIC"][12]
	res.MCKPOverSize12 = res.GBps["MCKP"][12] / res.GBps["SIZE"][12]
	res.MCKPOverProcess12 = res.GBps["MCKP"][12] / res.GBps["PROCESS"][12]
	oracle := res.GBps["ORACLE"][36]
	for _, pool := range pools {
		if v, ok := res.GBps["MCKP"][pool]; ok && v >= oracle*(1-1e-9) {
			res.OracleMatchPool = pool
			break
		}
	}
	return res, nil
}

// Table renders the result.
func (r Figure6Result) Table() Table {
	t := Table{
		Title:  "Figure 6 — aggregated bandwidth (GB/s) of the six §5.2 applications",
		Header: append([]string{"IONs"}, r.Policies...),
	}
	for _, pool := range r.Pools {
		row := []string{d(pool)}
		for _, p := range r.Policies {
			if v, ok := r.GBps[p][pool]; ok {
				row = append(row, f2(v))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table4Row is one application's allocation and bandwidth under a policy.
type Table4Row struct {
	App  string
	IONs map[string]int     // policy → allocated I/O nodes
	MBps map[string]float64 // policy → bandwidth
}

// Table4Result reproduces the paper's Table 4 (12 available I/O nodes).
type Table4Result struct {
	Policies []string
	Rows     []Table4Row
	// TotalMBps[policy] is the aggregate.
	TotalMBps map[string]float64
}

// ExpTable4 computes allocations at 12 I/O nodes under STATIC, SIZE, MCKP.
func ExpTable4() (Table4Result, error) {
	apps := fiveTwoApps()
	pols := []policy.Policy{policy.Static{}, policy.Proportional{}, policy.MCKP{}}
	res := Table4Result{TotalMBps: map[string]float64{}}
	rows := map[string]*Table4Row{}
	order := []string{"BT-C", "BT-D", "IOR-MPI", "POSIX-L", "MAD", "S3D"}
	for _, id := range order {
		rows[id] = &Table4Row{App: id, IONs: map[string]int{}, MBps: map[string]float64{}}
	}
	for _, p := range pols {
		res.Policies = append(res.Policies, p.Name())
		alloc, err := p.Allocate(apps, 12)
		if err != nil {
			return res, fmt.Errorf("experiments: Table 4 %s: %w", p.Name(), err)
		}
		for _, a := range apps {
			bw, ok := a.Curve.At(alloc[a.ID])
			if !ok {
				return res, fmt.Errorf("experiments: Table 4 %s: no point at %d", a.ID, alloc[a.ID])
			}
			rows[a.ID].IONs[p.Name()] = alloc[a.ID]
			rows[a.ID].MBps[p.Name()] = bw.MBps()
			res.TotalMBps[p.Name()] += bw.MBps()
		}
	}
	for _, id := range order {
		res.Rows = append(res.Rows, *rows[id])
	}
	return res, nil
}

// Table renders the result.
func (r Table4Result) Table() Table {
	t := Table{
		Title:  "Table 4 — allocations and bandwidth with 12 I/O nodes",
		Header: []string{"App"},
	}
	for _, p := range r.Policies {
		t.Header = append(t.Header, p+" IONs", p+" MB/s")
	}
	for _, row := range r.Rows {
		cells := []string{row.App}
		for _, p := range r.Policies {
			cells = append(cells, d(row.IONs[p]), f1(row.MBps[p]))
		}
		t.Rows = append(t.Rows, cells)
	}
	total := []string{"TOTAL"}
	for _, p := range r.Policies {
		total = append(total, "", f1(r.TotalMBps[p]))
	}
	t.Rows = append(t.Rows, total)
	return t
}

// Figure7Result reports each application's bandwidth under MCKP as a
// percentage of the best it could achieve running alone with the same
// number of available I/O nodes.
type Figure7Result struct {
	Pools []int
	Apps  []string
	// Pct[pool][app].
	Pct map[int]map[string]float64
	// Alloc[pool][app] is the MCKP allocation behind each percentage.
	Alloc map[int]map[string]int
}

// ExpFigure7 computes the §5.2 penalty analysis (the paper shows pools 1,
// 2, 4, 7, 16, 18, 22, 36).
func ExpFigure7() (Figure7Result, error) {
	apps := fiveTwoApps()
	pools := []int{1, 2, 4, 7, 16, 18, 22, 36}
	res := Figure7Result{Pools: pools, Pct: map[int]map[string]float64{}, Alloc: map[int]map[string]int{}}
	for _, a := range apps {
		res.Apps = append(res.Apps, a.ID)
	}
	sort.Strings(res.Apps)
	mckp := policy.MCKP{}
	for _, pool := range pools {
		alloc, err := mckp.Allocate(apps, pool)
		if err != nil {
			return res, fmt.Errorf("experiments: Figure 7 pool %d: %w", pool, err)
		}
		res.Pct[pool] = map[string]float64{}
		res.Alloc[pool] = map[string]int{}
		for _, a := range apps {
			got, ok := a.Curve.At(alloc[a.ID])
			if !ok {
				return res, fmt.Errorf("experiments: Figure 7 %s: no point at %d", a.ID, alloc[a.ID])
			}
			// Best the app could do alone under the same pool limit.
			alone := a.Curve.Restrict(pool).Best().Bandwidth
			pct := 0.0
			if alone > 0 {
				pct = 100 * float64(got) / float64(alone)
			}
			res.Pct[pool][a.ID] = pct
			res.Alloc[pool][a.ID] = alloc[a.ID]
		}
	}
	return res, nil
}

// Table renders the result.
func (r Figure7Result) Table() Table {
	t := Table{
		Title:  "Figure 7 — % of alone-bandwidth achieved under MCKP",
		Header: append([]string{"IONs"}, r.Apps...),
	}
	for _, pool := range r.Pools {
		row := []string{d(pool)}
		for _, app := range r.Apps {
			row = append(row, f1(r.Pct[pool][app]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure8Result reports per-application bandwidth deltas between MCKP and
// STATIC (positive: MCKP faster).
type Figure8Result struct {
	Pools []int
	Apps  []string
	// DeltaMBps[pool][app] = MCKP − STATIC.
	DeltaMBps map[int]map[string]float64
}

// ExpFigure8 computes the per-application STATIC-vs-MCKP differences.
func ExpFigure8() (Figure8Result, error) {
	apps := fiveTwoApps()
	pools := []int{1, 2, 4, 7, 16, 18, 22, 36}
	res := Figure8Result{Pools: pools, DeltaMBps: map[int]map[string]float64{}}
	for _, a := range apps {
		res.Apps = append(res.Apps, a.ID)
	}
	sort.Strings(res.Apps)
	for _, pool := range pools {
		mAlloc, err := (policy.MCKP{}).Allocate(apps, pool)
		if err != nil {
			return res, fmt.Errorf("experiments: Figure 8 MCKP@%d: %w", pool, err)
		}
		sAlloc, err := (policy.Static{}).Allocate(apps, pool)
		if err != nil {
			// STATIC needs at least one ION per app; skip pools where it
			// cannot place everyone (as the paper's plot starts at 1).
			continue
		}
		res.DeltaMBps[pool] = map[string]float64{}
		for _, a := range apps {
			mBW, _ := a.Curve.At(mAlloc[a.ID])
			sBW, _ := a.Curve.At(sAlloc[a.ID])
			res.DeltaMBps[pool][a.ID] = mBW.MBps() - sBW.MBps()
		}
	}
	return res, nil
}

// Table renders the result.
func (r Figure8Result) Table() Table {
	t := Table{
		Title:  "Figure 8 — per-application bandwidth delta MCKP−STATIC (MB/s)",
		Header: append([]string{"IONs"}, r.Apps...),
	}
	for _, pool := range r.Pools {
		deltas, ok := r.DeltaMBps[pool]
		if !ok {
			continue
		}
		row := []string{d(pool)}
		for _, app := range r.Apps {
			row = append(row, f1(deltas[app]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
