package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/jobs"
	"repro/internal/mckp"
	"repro/internal/policy"
)

// Figure9Result holds the dynamic-queue experiment: per-application and
// aggregate bandwidth under the four §5.3 policies on 96 compute nodes and
// 12 I/O nodes, no direct PFS access.
type Figure9Result struct {
	Policies []string
	// PerJobMBps[policy][jobID].
	PerJobMBps map[string]map[string]float64
	// AggregateMBps[policy] is the Equation-2 aggregate.
	AggregateMBps map[string]float64
	// MakespanSec[policy].
	MakespanSec map[string]float64
	// Reallocations[policy].
	Reallocations map[string]int
	// MCKPOverStatic is the §5.3 headline ratio (paper: 1.9×).
	MCKPOverStatic float64
	JobIDs         []string
}

// ExpFigure9 runs the paper's queue under ONE, STATIC, SIZE, and MCKP.
func ExpFigure9() (Figure9Result, error) {
	queue, err := jobs.PaperQueue()
	if err != nil {
		return Figure9Result{}, err
	}
	type entry struct {
		name   string
		pol    policy.Policy
		sticky bool
	}
	entries := []entry{
		{"ONE", policy.One{}, true},
		{"STATIC", policy.Static{SystemCompute: 96, SystemIONs: 12}, true},
		{"SIZE", policy.Proportional{}, false},
		{"MCKP", policy.MCKP{}, false},
	}
	res := Figure9Result{
		PerJobMBps:    map[string]map[string]float64{},
		AggregateMBps: map[string]float64{},
		MakespanSec:   map[string]float64{},
		Reallocations: map[string]int{},
	}
	for _, j := range queue {
		res.JobIDs = append(res.JobIDs, j.ID)
	}
	for _, e := range entries {
		res.Policies = append(res.Policies, e.name)
		sim, err := jobs.SimulateQueue(jobs.SimConfig{
			Jobs:         queue,
			ComputeNodes: 96,
			IONs:         12,
			Policy:       e.pol,
			Sticky:       e.sticky,
			AllowDirect:  false,
		})
		if err != nil {
			return res, fmt.Errorf("experiments: Figure 9 %s: %w", e.name, err)
		}
		per := map[string]float64{}
		for id, o := range sim.PerJob {
			per[id] = o.Bandwidth.MBps()
		}
		res.PerJobMBps[e.name] = per
		res.AggregateMBps[e.name] = sim.Aggregate.MBps()
		res.MakespanSec[e.name] = sim.Makespan
		res.Reallocations[e.name] = sim.Reallocations
	}
	res.MCKPOverStatic = res.AggregateMBps["MCKP"] / res.AggregateMBps["STATIC"]
	return res, nil
}

// Table renders the result.
func (r Figure9Result) Table() Table {
	t := Table{
		Title:  "Figure 9 — dynamic queue on 96 compute + 12 I/O nodes (per-job MB/s)",
		Header: append([]string{"Job"}, r.Policies...),
	}
	for _, id := range r.JobIDs {
		row := []string{id}
		for _, p := range r.Policies {
			row = append(row, f1(r.PerJobMBps[p][id]))
		}
		t.Rows = append(t.Rows, row)
	}
	agg := []string{"AGGREGATE"}
	mk := []string{"makespan (s)"}
	for _, p := range r.Policies {
		agg = append(agg, f1(r.AggregateMBps[p]))
		mk = append(mk, f1(r.MakespanSec[p]))
	}
	t.Rows = append(t.Rows, agg, mk)
	return t
}

// SolverTimingResult measures MCKP solve times at the paper's two scales:
// the live §5.3 case (paper: 399 µs) and 512 jobs × 256 I/O nodes (paper:
// 2.7 s).
type SolverTimingResult struct {
	LiveCase      time.Duration
	PaperScale    time.Duration
	LiveClasses   int
	PaperClasses  int
	PaperCapacity int
}

// ExpSolverTiming times the DP solver on both instance sizes.
func ExpSolverTiming() (SolverTimingResult, error) {
	res := SolverTimingResult{LiveClasses: 6, PaperClasses: 512, PaperCapacity: 256}

	apps := fiveTwoApps()
	start := time.Now()
	if _, err := (policy.MCKP{}).Allocate(apps, 12); err != nil {
		return res, err
	}
	res.LiveCase = time.Since(start)

	rng := rand.New(rand.NewSource(99))
	prob := mckp.Problem{Capacity: 256}
	for i := 0; i < 512; i++ {
		c := mckp.Class{Label: fmt.Sprintf("job%03d", i)}
		for _, w := range []int{0, 1, 2, 4, 8} {
			c.Items = append(c.Items, mckp.Item{Weight: w, Value: rng.Float64() * 5000})
		}
		prob.Classes = append(prob.Classes, c)
	}
	start = time.Now()
	if _, err := mckp.SolveDP(prob); err != nil {
		return res, err
	}
	res.PaperScale = time.Since(start)
	return res, nil
}

// Table renders the result.
func (r SolverTimingResult) Table() Table {
	return Table{
		Title:  "§5.3 — MCKP solver cost",
		Header: []string{"Instance", "Classes", "Capacity", "Measured", "Paper"},
		Rows: [][]string{
			{"live six-app case", d(r.LiveClasses), "12", r.LiveCase.String(), "399µs"},
			{"512 jobs × 256 IONs", d(r.PaperClasses), d(r.PaperCapacity), r.PaperScale.String(), "2.7s"},
		},
	}
}

// PolicyHeadlinesResult carries the §3.2 ZERO/ONE/ORACLE statistics.
type PolicyHeadlinesResult struct {
	Sets                       int
	OneVsZeroMedianSlowdownPct float64
	OracleVsZeroMinBoostPct    float64
	OracleVsZeroMedianBoostPct float64
	OracleVsZeroMaxBoostPct    float64
}

// ExpPolicyHeadlines computes the §3.2 headline statistics from a Figure 2
// campaign result (avoids rerunning the campaign).
func ExpPolicyHeadlines(fig2 Figure2Result) PolicyHeadlinesResult {
	h := fig2.Campaign.ComputeHeadlines()
	return PolicyHeadlinesResult{
		Sets:                       fig2.Campaign.Config.Sets,
		OneVsZeroMedianSlowdownPct: h.OneVsZeroMedianSlowdownPct,
		OracleVsZeroMinBoostPct:    h.OracleVsZeroMinBoostPct,
		OracleVsZeroMedianBoostPct: h.OracleVsZeroMedianBoostPct,
		OracleVsZeroMaxBoostPct:    h.OracleVsZeroMaxBoostPct,
	}
}

// Table renders the result.
func (r PolicyHeadlinesResult) Table() Table {
	return Table{
		Title:  fmt.Sprintf("§3.2 — headline statistics (%d sets)", r.Sets),
		Header: []string{"Statistic", "Measured", "Paper"},
		Rows: [][]string{
			{"ONE vs ZERO median slowdown %", f2(r.OneVsZeroMedianSlowdownPct), "82.11"},
			{"ORACLE vs ZERO min boost %", f2(r.OracleVsZeroMinBoostPct), "0.83"},
			{"ORACLE vs ZERO median boost %", f2(r.OracleVsZeroMedianBoostPct), "25.63"},
			{"ORACLE vs ZERO max boost %", f2(r.OracleVsZeroMaxBoostPct), "121.68"},
		},
	}
}

// sortedKeys is a small helper for deterministic map iteration in tests.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
