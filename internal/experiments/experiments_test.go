package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Header: []string{"A", "Blong"},
		Rows:   [][]string{{"xx", "y"}, {"1", "22222"}},
	}
	s := tbl.String()
	for _, frag := range []string{"== demo ==", "A", "Blong", "xx", "22222", "---"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered table missing %q:\n%s", frag, s)
		}
	}
}

func TestExpTable1(t *testing.T) {
	r := ExpTable1()
	if len(r.Rows) != 4 {
		t.Fatalf("Table 1 rows: %d", len(r.Rows))
	}
	if r.Rows[0].Name != "Sunway TaihuLight" || r.Rows[0].IONodes != 240 {
		t.Fatalf("row 0: %+v", r.Rows[0])
	}
	if !strings.Contains(r.Table().String(), "Trinity") {
		t.Fatal("render incomplete")
	}
}

func TestExpFigure1(t *testing.T) {
	r := ExpFigure1()
	if len(r.Labels) != 8 {
		t.Fatalf("labels: %v", r.Labels)
	}
	// Pattern A (large fpp) must grow with forwarding; pattern D
	// (small strided) must peak at few IONs.
	if r.BestIONs["A"] < 4 {
		t.Errorf("pattern A best = %d, want ≥4", r.BestIONs["A"])
	}
	if r.BestIONs["D"] > 2 {
		t.Errorf("pattern D best = %d, want ≤2", r.BestIONs["D"])
	}
	for _, label := range r.Labels {
		for k, v := range r.MBps[label] {
			if v <= 0 {
				t.Errorf("%s at %d IONs: %v", label, k, v)
			}
		}
	}
	r.Table() // must not panic
}

func TestExpOptimumDistribution(t *testing.T) {
	r := ExpOptimumDistribution()
	var sum float64
	for _, v := range r.SharePct {
		sum += v
	}
	if math.Abs(sum-100) > 0.1 {
		t.Fatalf("shares sum to %v", sum)
	}
	for _, k := range []int{0, 1, 2, 4, 8} {
		if math.Abs(r.SharePct[k]-r.PaperPct[k]) > 6 {
			t.Errorf("share at %d IONs: %.1f%%, paper %.1f%% (tolerance 6pp)", k, r.SharePct[k], r.PaperPct[k])
		}
	}
}

func TestExpFigure2Small(t *testing.T) {
	r, err := ExpFigure2(150, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 7 {
		t.Fatalf("policies: %v", r.Policies)
	}
	if r.GBps["MCKP"][128] < r.GBps["MCKP"][8] {
		t.Fatal("MCKP median should grow with the pool")
	}
	if r.GBps["MCKP"][128] < r.GBps["ORACLE"][128]*0.999 {
		t.Fatal("MCKP should reach ORACLE at 128 IONs")
	}
	r.Table()
}

func TestExpFigure3Small(t *testing.T) {
	r, err := ExpFigure3(150, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bands) == 0 {
		t.Fatal("no bands")
	}
	for _, b := range r.Bands {
		if b.Min < 1-1e-9 {
			t.Errorf("MCKP/STATIC min %v below parity at %d IONs", b.Min, b.Pool)
		}
	}
	if r.PeakMedian < 1.5 {
		t.Errorf("peak median %v too small", r.PeakMedian)
	}
	if r.OverallMax < r.PeakMedian {
		t.Error("max below median")
	}
	r.Table()
}

func TestExpFigure5(t *testing.T) {
	r := ExpFigure5()
	if len(r.Apps) != 9 {
		t.Fatalf("apps: %d", len(r.Apps))
	}
	s := r.Table().String()
	for _, label := range []string{"BT-C", "HACC", "S3D"} {
		if !strings.Contains(s, label) {
			t.Errorf("table missing %s", label)
		}
	}
}

func TestExpFigure6PaperClaims(t *testing.T) {
	r, err := ExpFigure6()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.MCKPOverStatic12-4.59) > 0.02 {
		t.Errorf("MCKP/STATIC@12 = %.3f, paper 4.59", r.MCKPOverStatic12)
	}
	if math.Abs(r.MCKPOverSize12-4.59) > 0.02 {
		t.Errorf("MCKP/SIZE@12 = %.3f, paper 4.59", r.MCKPOverSize12)
	}
	if math.Abs(r.MCKPOverProcess12-4.1) > 0.02 {
		t.Errorf("MCKP/PROCESS@12 = %.3f, paper 4.1", r.MCKPOverProcess12)
	}
	if r.OracleMatchPool != 36 {
		t.Errorf("MCKP matches ORACLE at %d IONs, paper says 36", r.OracleMatchPool)
	}
	r.Table()
}

func TestExpTable4PaperAllocations(t *testing.T) {
	r, err := ExpTable4()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]map[string]int{
		"STATIC": {"BT-C": 1, "BT-D": 2, "IOR-MPI": 1, "POSIX-L": 2, "MAD": 1, "S3D": 2},
		"SIZE":   {"BT-C": 1, "BT-D": 2, "IOR-MPI": 1, "POSIX-L": 2, "MAD": 1, "S3D": 2},
		"MCKP":   {"BT-C": 0, "BT-D": 1, "IOR-MPI": 8, "POSIX-L": 2, "MAD": 0, "S3D": 0},
	}
	for _, row := range r.Rows {
		for pol, alloc := range want {
			if row.IONs[pol] != alloc[row.App] {
				t.Errorf("%s under %s: %d IONs, Table 4 says %d", row.App, pol, row.IONs[pol], alloc[row.App])
			}
		}
	}
	// Table 4 bandwidth anchors.
	for _, row := range r.Rows {
		if row.App == "IOR-MPI" && math.Abs(row.MBps["MCKP"]-5089.9) > 0.1 {
			t.Errorf("IOR-MPI MCKP bandwidth %.1f, want 5089.9", row.MBps["MCKP"])
		}
	}
	r.Table()
}

func TestExpFigure7(t *testing.T) {
	r, err := ExpFigure7()
	if err != nil {
		t.Fatal(err)
	}
	// With 4 IONs, IOR-MPI and S3D achieve exactly their alone-best
	// (paper §5.2).
	if pct := r.Pct[4]["IOR-MPI"]; math.Abs(pct-100) > 0.01 {
		t.Errorf("IOR-MPI at 4 IONs: %.1f%%, paper says 100%%", pct)
	}
	if pct := r.Pct[4]["S3D"]; math.Abs(pct-100) > 0.01 {
		t.Errorf("S3D at 4 IONs: %.1f%%, paper says 100%%", pct)
	}
	// Percentages never exceed 100 (alone under the same constraint is
	// an upper bound).
	for pool, per := range r.Pct {
		for app, pct := range per {
			if pct > 100.000001 {
				t.Errorf("%s at %d IONs exceeds alone-best: %.2f%%", app, pool, pct)
			}
		}
	}
	// At the ORACLE pool (36) everyone achieves 100%.
	for app, pct := range r.Pct[36] {
		if math.Abs(pct-100) > 0.01 {
			t.Errorf("%s at 36 IONs: %.1f%%, want 100%%", app, pct)
		}
	}
	r.Table()
}

func TestExpFigure8(t *testing.T) {
	r, err := ExpFigure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DeltaMBps) == 0 {
		t.Fatal("no pools computed")
	}
	// The paper: MCKP sacrifices BT-D (negative delta) at moderate pools
	// while the total delta stays positive.
	for pool, deltas := range r.DeltaMBps {
		var total float64
		for _, dv := range deltas {
			total += dv
		}
		if total < -1e-6 {
			t.Errorf("total delta at %d IONs is negative: %v", pool, total)
		}
	}
	foundSacrifice := false
	for _, deltas := range r.DeltaMBps {
		if deltas["BT-D"] < 0 {
			foundSacrifice = true
		}
	}
	if !foundSacrifice {
		t.Error("expected BT-D to be sacrificed at some pool (paper §5.2)")
	}
	r.Table()
}

func TestExpFigure9(t *testing.T) {
	r, err := ExpFigure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.JobIDs) != 14 {
		t.Fatalf("jobs: %d", len(r.JobIDs))
	}
	if r.MCKPOverStatic < 1.3 {
		t.Errorf("MCKP/STATIC = %.2f, paper reports ≈1.9", r.MCKPOverStatic)
	}
	order := []string{"ONE", "STATIC", "SIZE", "MCKP"}
	prev := -1.0
	for _, p := range order {
		if r.AggregateMBps[p] < prev {
			t.Errorf("aggregate ordering violated at %s: %v", p, r.AggregateMBps)
		}
		prev = r.AggregateMBps[p]
	}
	r.Table()
}

func TestExpSolverTiming(t *testing.T) {
	r, err := ExpSolverTiming()
	if err != nil {
		t.Fatal(err)
	}
	if r.LiveCase <= 0 || r.PaperScale <= 0 {
		t.Fatalf("timings: %+v", r)
	}
	// Our DP at paper scale should comfortably beat the paper's 2.7 s.
	if r.PaperScale.Seconds() > 2.7 {
		t.Errorf("512×256 solve took %v, paper reports 2.7s", r.PaperScale)
	}
	r.Table()
}

func TestExpPolicyHeadlines(t *testing.T) {
	fig2, err := ExpFigure2(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := ExpPolicyHeadlines(fig2)
	if h.Sets != 100 {
		t.Fatalf("sets: %d", h.Sets)
	}
	if h.OneVsZeroMedianSlowdownPct <= 0 {
		t.Error("ONE should be a slowdown versus ZERO")
	}
	if h.OracleVsZeroMinBoostPct < 0 {
		t.Error("ORACLE should never lose to ZERO")
	}
	h.Table()
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[string]float64{"b": 1, "a": 2})
	if len(got) != 2 || got[0] != "a" {
		t.Fatalf("sortedKeys: %v", got)
	}
}
