package experiments

import (
	"fmt"
	"sort"

	"repro/internal/forge"
	"repro/internal/fwd"
	"repro/internal/livestack"
	"repro/internal/pattern"
	"repro/internal/units"
)

// Figure1LiveResult is the live counterpart of Figure 1: the eight Table 2
// patterns replayed as FORGE profiles through real TCP I/O-node daemons,
// at geometry scaled down by GeometryScale and the given per-pattern
// volume. Absolute numbers are laptop numbers; the point is that the same
// pattern taxonomy runs end to end on the real stack.
type Figure1LiveResult struct {
	Labels []string
	// MBps[label][ions] is the measured client-side bandwidth.
	MBps map[string]map[int]float64
	// Geometry notes the scaled nodes×ppn used per label.
	Geometry map[string]string
	// GeometryScale divides Table 2's nodes and processes-per-node.
	GeometryScale int
	VolumeBytes   int64
}

// ExpFigure1Live replays the Figure 1 patterns live. scale ≤ 0 selects 4
// (pattern A becomes 8 nodes × 12 processes); volume ≤ 0 selects 8 MiB per
// pattern per ION count.
func ExpFigure1Live(scale int, volume int64) (Figure1LiveResult, error) {
	if scale <= 0 {
		scale = 4
	}
	if volume <= 0 {
		volume = 8 * units.MiB
	}
	res := Figure1LiveResult{
		MBps:          map[string]map[int]float64{},
		Geometry:      map[string]string{},
		GeometryScale: scale,
		VolumeBytes:   volume,
	}
	st, err := livestack.Start(livestack.Config{IONs: 8})
	if err != nil {
		return res, err
	}
	defer st.Close()

	pats := pattern.Figure1Patterns()
	for label := range pats {
		res.Labels = append(res.Labels, label)
	}
	sort.Strings(res.Labels)
	for _, label := range res.Labels {
		p := pats[label]
		p.Nodes = maxI(1, p.Nodes/scale)
		p.ProcsPerNod = maxI(1, p.ProcsPerNod/scale)
		res.Geometry[label] = fmt.Sprintf("%dn×%dp", p.Nodes, p.ProcsPerNod)
		series := map[int]float64{}
		for _, k := range pattern.IONOptions(p.Nodes, 8, true) {
			prof, err := forge.BuildProfile(p, volume, fmt.Sprintf("/f1live/%s/%d", label, k))
			if err != nil {
				return res, err
			}
			client, err := fwd.NewClient(fwd.Config{
				AppID:  fmt.Sprintf("f1-%s-%d", label, k),
				Direct: st.Store,
			})
			if err != nil {
				return res, err
			}
			client.SetIONs(st.Addrs[:k])
			rep, err := forge.Replay(client, prof)
			client.Close()
			if err != nil {
				return res, fmt.Errorf("experiments: figure1live %s k=%d: %w", label, k, err)
			}
			series[k] = rep.Bandwidth.MBps()
		}
		res.MBps[label] = series
	}
	return res, nil
}

// Table renders the result.
func (r Figure1LiveResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Figure 1 (live) — Table 2 patterns replayed on the TCP stack (geometry ÷%d, %s per run)",
			r.GeometryScale, units.FormatBytes(r.VolumeBytes)),
		Header: []string{"Pattern", "Geometry", "0", "1", "2", "4", "8"},
	}
	for _, label := range r.Labels {
		row := []string{label, r.Geometry[label]}
		for _, k := range []int{0, 1, 2, 4, 8} {
			if v, ok := r.MBps[label][k]; ok {
				row = append(row, f1(v))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
