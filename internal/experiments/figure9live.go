package experiments

import (
	"fmt"
	"sort"

	"repro/internal/livestack"
)

// Figure9LiveResult is the live execution of the §5.3 queue: fourteen real
// kernels at tiny scale through twelve TCP I/O-node daemons, MCKP
// re-arbitrating on every start/finish. It complements the simulated
// ExpFigure9 with an end-to-end run of the actual stack.
type Figure9LiveResult struct {
	JobIDs []string
	// PerJobMBps/StartMS/EndMS index by job ID.
	PerJobMBps map[string]float64
	StartMS    map[string]float64
	EndMS      map[string]float64
	ElapsedMS  float64
	TotalBytes int64
}

// ExpFigure9Live runs the live queue on a fresh stack.
func ExpFigure9Live() (Figure9LiveResult, error) {
	st, err := livestack.Start(livestack.Config{IONs: 12})
	if err != nil {
		return Figure9LiveResult{}, err
	}
	defer st.Close()
	queue, err := livestack.PaperLiveQueue()
	if err != nil {
		return Figure9LiveResult{}, err
	}
	res, err := livestack.RunQueue(st, queue, 96)
	if err != nil {
		return Figure9LiveResult{}, fmt.Errorf("experiments: live queue: %w", err)
	}
	out := Figure9LiveResult{
		PerJobMBps: map[string]float64{},
		StartMS:    map[string]float64{},
		EndMS:      map[string]float64{},
		ElapsedMS:  float64(res.Elapsed.Milliseconds()),
	}
	for id, rep := range res.Reports {
		out.JobIDs = append(out.JobIDs, id)
		out.PerJobMBps[id] = rep.Bandwidth.MBps()
		out.StartMS[id] = float64(res.Start[id].Microseconds()) / 1000
		out.EndMS[id] = float64(res.End[id].Microseconds()) / 1000
		out.TotalBytes += rep.WriteBytes + rep.ReadBytes
	}
	sort.Slice(out.JobIDs, func(i, j int) bool { return out.StartMS[out.JobIDs[i]] < out.StartMS[out.JobIDs[j]] })
	return out, nil
}

// Table renders the result.
func (r Figure9LiveResult) Table() Table {
	t := Table{
		Title:  "Figure 9 (live) — the §5.3 queue executed on the TCP stack (tiny-scale kernels)",
		Header: []string{"Job", "Start ms", "End ms", "MB/s"},
	}
	for _, id := range r.JobIDs {
		t.Rows = append(t.Rows, []string{id, f1(r.StartMS[id]), f1(r.EndMS[id]), f1(r.PerJobMBps[id])})
	}
	t.Rows = append(t.Rows, []string{"TOTAL", "", f1(r.ElapsedMS), ""})
	return t
}
