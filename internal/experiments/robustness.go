package experiments

import (
	"fmt"

	"repro/internal/jobs"
	"repro/internal/policy"
	"repro/internal/stats"
)

// QueueRobustnessResult extends the paper's single selected queue (§5.3)
// to a population: the distribution of the dynamic-MCKP-over-STATIC
// aggregate ratio across many random queues from the paper's generator
// recipe.
type QueueRobustnessResult struct {
	Queues  int
	Ratios  []float64
	Summary stats.Summary
	// WorstQueueSeed identifies the least favourable queue.
	WorstQueueSeed int64
}

// ExpQueueRobustness simulates n random queues (n ≤ 0 selects 50) under
// dynamic MCKP and sticky STATIC on the §5.3 machine (96 compute nodes,
// 12 I/O nodes, no direct access).
func ExpQueueRobustness(n int) (QueueRobustnessResult, error) {
	if n <= 0 {
		n = 50
	}
	res := QueueRobustnessResult{Queues: n}
	worst := -1.0
	for seed := int64(0); seed < int64(n); seed++ {
		queue, err := jobs.RandomQueue(seed, 14, 8)
		if err != nil {
			return res, err
		}
		base := jobs.SimConfig{
			Jobs: queue, ComputeNodes: 96, IONs: 12, AllowDirect: false,
		}
		mckpCfg := base
		mckpCfg.Policy = policy.MCKP{}
		mckp, err := jobs.SimulateQueue(mckpCfg)
		if err != nil {
			return res, fmt.Errorf("experiments: queue %d MCKP: %w", seed, err)
		}
		staticCfg := base
		staticCfg.Policy = policy.Static{SystemCompute: 96, SystemIONs: 12}
		staticCfg.Sticky = true
		static, err := jobs.SimulateQueue(staticCfg)
		if err != nil {
			return res, fmt.Errorf("experiments: queue %d STATIC: %w", seed, err)
		}
		ratio := float64(mckp.Aggregate) / float64(static.Aggregate)
		res.Ratios = append(res.Ratios, ratio)
		if worst < 0 || ratio < worst {
			worst = ratio
			res.WorstQueueSeed = seed
		}
	}
	summary, err := stats.Summarize(res.Ratios)
	if err != nil {
		return res, err
	}
	res.Summary = summary
	return res, nil
}

// Table renders the result.
func (r QueueRobustnessResult) Table() Table {
	return Table{
		Title:  fmt.Sprintf("Queue robustness — dynamic MCKP ÷ sticky STATIC over %d random queues", r.Queues),
		Header: []string{"Min", "P25", "Median", "P75", "Max", "Mean"},
		Rows: [][]string{{
			f2(r.Summary.Min), f2(r.Summary.P25), f2(r.Summary.Median),
			f2(r.Summary.P75), f2(r.Summary.Max), f2(r.Summary.Mean),
		}},
	}
}
