package experiments

import "testing"

func TestExpQueueRobustness(t *testing.T) {
	r, err := ExpQueueRobustness(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ratios) != 20 {
		t.Fatalf("ratios: %d", len(r.Ratios))
	}
	if r.Summary.Min < 1.0 {
		t.Fatalf("dynamic MCKP lost to STATIC on queue seed %d: %.3f (paper claims it never does)",
			r.WorstQueueSeed, r.Summary.Min)
	}
	if r.Summary.Median < 1.2 {
		t.Fatalf("median improvement %.2f implausibly low (paper's selected queue: 1.9)", r.Summary.Median)
	}
	t.Logf("MCKP/STATIC across %d random queues: min %.2f median %.2f max %.2f (paper's queue: 1.9)",
		r.Queues, r.Summary.Min, r.Summary.Median, r.Summary.Max)
	r.Table()
}

func TestExpFigure1Live(t *testing.T) {
	if testing.Short() {
		t.Skip("live replay experiment")
	}
	r, err := ExpFigure1Live(8, 1<<20) // small for unit tests
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 8 {
		t.Fatalf("labels: %v", r.Labels)
	}
	for _, label := range r.Labels {
		if len(r.MBps[label]) == 0 {
			t.Fatalf("%s: no measurements", label)
		}
		for k, v := range r.MBps[label] {
			if v <= 0 {
				t.Fatalf("%s at %d IONs: %v", label, k, v)
			}
		}
	}
	r.Table()
}

// TestFigure9Golden pins the §5.3 simulation's aggregates (deterministic
// inputs, deterministic engine) so regressions in the policies, the
// curves, or the event loop are caught immediately. EXPERIMENTS.md quotes
// these numbers.
func TestFigure9Golden(t *testing.T) {
	r, err := ExpFigure9()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"ONE":    5997.5,
		"STATIC": 10318.8,
		"SIZE":   17220.7,
		"MCKP":   29840.3,
	}
	for pol, agg := range want {
		got := r.AggregateMBps[pol]
		if got < agg-0.5 || got > agg+0.5 {
			t.Errorf("%s aggregate %.1f MB/s, golden %.1f (update EXPERIMENTS.md if intentional)", pol, got, agg)
		}
	}
}

func TestExpFigure9Live(t *testing.T) {
	if testing.Short() {
		t.Skip("live queue experiment")
	}
	r, err := ExpFigure9Live()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.JobIDs) != 14 {
		t.Fatalf("jobs: %d", len(r.JobIDs))
	}
	if r.TotalBytes <= 0 || r.ElapsedMS <= 0 {
		t.Fatalf("result incomplete: %+v", r)
	}
	r.Table()
}
