package experiments

import (
	"fmt"
	"sort"

	"repro/internal/forge"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
)

// Table1Row is one supercomputer of the paper's Table 1.
type Table1Row struct {
	Rank         int
	Name         string
	ComputeNodes int
	IONodes      int
}

// Table1Result reproduces Table 1 (machines known to use I/O forwarding).
type Table1Result struct{ Rows []Table1Row }

// ExpTable1 returns the paper's Table 1 (static literature data; included
// for completeness of the regeneration harness).
func ExpTable1() Table1Result {
	return Table1Result{Rows: []Table1Row{
		{Rank: 4, Name: "Sunway TaihuLight", ComputeNodes: 40960, IONodes: 240},
		{Rank: 5, Name: "Tianhe-2A", ComputeNodes: 16000, IONodes: 256},
		{Rank: 10, Name: "Piz Daint", ComputeNodes: 6751, IONodes: 54},
		{Rank: 11, Name: "Trinity", ComputeNodes: 19420, IONodes: 576},
	}}
}

// Table renders the result.
func (r Table1Result) Table() Table {
	t := Table{
		Title:  "Table 1 — Top500 machines using I/O forwarding (June 2020)",
		Header: []string{"Rank", "Supercomputer", "Compute Nodes", "I/O Nodes"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{d(row.Rank), row.Name, d(row.ComputeNodes), d(row.IONodes)})
	}
	return t
}

// Figure1Result holds the modeled bandwidth of the eight Table 2 patterns
// across ION counts.
type Figure1Result struct {
	// Labels in Table 2 order.
	Labels []string
	// Patterns by label.
	Patterns map[string]pattern.Pattern
	// MBps[label][ions] is the modeled client-side bandwidth.
	MBps map[string]map[int]float64
	// BestIONs[label] is the argmax of the curve.
	BestIONs map[string]int
}

// ExpFigure1 evaluates the performance model over the Figure 1 patterns.
func ExpFigure1() Figure1Result {
	m := perfmodel.Default()
	pats := pattern.Figure1Patterns()
	res := Figure1Result{
		Patterns: pats,
		MBps:     map[string]map[int]float64{},
		BestIONs: map[string]int{},
	}
	for label := range pats {
		res.Labels = append(res.Labels, label)
	}
	sort.Strings(res.Labels)
	for _, label := range res.Labels {
		c := m.CurveFor(pats[label], 8, true)
		series := map[int]float64{}
		for _, pt := range c.Points() {
			series[pt.IONs] = pt.Bandwidth.MBps()
		}
		res.MBps[label] = series
		res.BestIONs[label] = c.Best().IONs
	}
	return res
}

// Table renders the result.
func (r Figure1Result) Table() Table {
	t := Table{
		Title:  "Figure 1 / Table 2 — bandwidth (MB/s) of write patterns vs I/O nodes",
		Header: []string{"Pattern", "Geometry", "0", "1", "2", "4", "8", "Best"},
	}
	for _, label := range r.Labels {
		p := r.Patterns[label]
		row := []string{label, fmt.Sprintf("%dn×%dp %s %s", p.Nodes, p.ProcsPerNod, p.Layout, p.Spatiality)}
		for _, k := range []int{0, 1, 2, 4, 8} {
			row = append(row, f1(r.MBps[label][k]))
		}
		row = append(row, d(r.BestIONs[label]))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// OptimumDistributionResult is the §2 statistic: the share of the 189
// survey scenarios whose best bandwidth occurs at each ION count.
type OptimumDistributionResult struct {
	// SharePct[ions] is the measured percentage.
	SharePct map[int]float64
	// PaperPct is the paper's reported distribution.
	PaperPct map[int]float64
	Total    int
}

// ExpOptimumDistribution computes the distribution over the model's survey.
func ExpOptimumDistribution() OptimumDistributionResult {
	dist := perfmodel.OptimumDistribution(perfmodel.Default().SurveyCurves())
	res := OptimumDistributionResult{
		SharePct: map[int]float64{},
		PaperPct: map[int]float64{0: 33, 1: 6, 2: 44, 4: 8, 8: 9},
		Total:    189,
	}
	for k, v := range dist {
		res.SharePct[k] = v * 100
	}
	return res
}

// Table renders the result.
func (r OptimumDistributionResult) Table() Table {
	t := Table{
		Title:  "§2 — distribution of the optimal I/O-node count over the 189 scenarios",
		Header: []string{"I/O nodes", "Measured %", "Paper %"},
	}
	for _, k := range []int{0, 1, 2, 4, 8} {
		t.Rows = append(t.Rows, []string{d(k), f1(r.SharePct[k]), f1(r.PaperPct[k])})
	}
	return t
}

// Figure2Result holds the median aggregate bandwidth per policy per pool.
type Figure2Result struct {
	Campaign *forge.Campaign
	// GBps[policy][pool] is the median aggregated bandwidth.
	GBps     map[string]map[int]float64
	Policies []string
	Pools    []int
}

// ExpFigure2 runs the forge campaign (sets × policies × pools). sets ≤ 0
// selects the paper's 10,000. workers bounds the campaign's worker pool
// (≤ 0 selects GOMAXPROCS); every worker count yields identical tables.
func ExpFigure2(sets, workers int) (Figure2Result, error) {
	cfg := forge.DefaultConfig()
	if sets > 0 {
		cfg.Sets = sets
	}
	cfg.Workers = workers
	camp, err := forge.Run(cfg)
	if err != nil {
		return Figure2Result{}, err
	}
	return Figure2Result{
		Campaign: camp,
		GBps:     camp.MedianSeries(),
		Policies: camp.Policies,
		Pools:    cfg.PoolSizes,
	}, nil
}

// Table renders the result.
func (r Figure2Result) Table() Table {
	t := Table{
		Title:  "Figure 2 — median aggregated bandwidth (GB/s) of 16-application sets",
		Header: []string{"IONs"},
	}
	t.Header = append(t.Header, r.Policies...)
	for _, pool := range r.Pools {
		row := []string{d(pool)}
		for _, p := range r.Policies {
			if v, ok := r.GBps[p][pool]; ok {
				row = append(row, f2(v))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure3Result holds the MCKP÷STATIC improvement bands.
type Figure3Result struct {
	Bands []forge.RatioBand
	// Headlines carries the §3.2 ZERO/ONE/ORACLE statistics computed on
	// the same campaign.
	Headlines forge.Headlines
	// PeakMedian and PeakPool locate the largest median improvement.
	PeakMedian float64
	PeakPool   int
	// OverallMax and OverallMean summarize all ratios (paper: 23.75×
	// max, 2.6× mean).
	OverallMax  float64
	OverallMean float64
}

// ExpFigure3 derives the Figure 3 bands from a campaign (rerun here so the
// experiment is self-contained). sets ≤ 0 selects the paper's 10,000.
// workers bounds the campaign's worker pool (≤ 0 selects GOMAXPROCS).
func ExpFigure3(sets, workers int) (Figure3Result, error) {
	cfg := forge.DefaultConfig()
	if sets > 0 {
		cfg.Sets = sets
	}
	cfg.Workers = workers
	camp, err := forge.Run(cfg)
	if err != nil {
		return Figure3Result{}, err
	}
	res := Figure3Result{
		Bands:     camp.RatioSeries("MCKP", "STATIC"),
		Headlines: camp.ComputeHeadlines(),
	}
	var sum float64
	var n int
	for _, b := range res.Bands {
		if b.Median > res.PeakMedian {
			res.PeakMedian, res.PeakPool = b.Median, b.Pool
		}
		if b.Max > res.OverallMax {
			res.OverallMax = b.Max
		}
		sum += b.Mean
		n++
	}
	if n > 0 {
		res.OverallMean = sum / float64(n)
	}
	return res, nil
}

// Table renders the result.
func (r Figure3Result) Table() Table {
	t := Table{
		Title:  "Figure 3 — MCKP over STATIC aggregate-bandwidth ratio",
		Header: []string{"IONs", "Min", "Median", "Max", "Mean", "Sets<1.0"},
	}
	for _, b := range r.Bands {
		t.Rows = append(t.Rows, []string{
			d(b.Pool), f2(b.Min), f2(b.Median), f2(b.Max), f2(b.Mean), d(b.SetsBelowParityCount),
		})
	}
	return t
}
