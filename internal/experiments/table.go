// Package experiments regenerates every table and figure of the paper's
// evaluation. Each ExpXxx function returns typed rows plus a rendered text
// table, shared by the root-level benchmarks and the cmd/experiments tool.
// EXPERIMENTS.md records the paper-vs-measured comparison for each one.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, a header row, and data
// rows, printable as aligned text.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
