// Package faultfs wraps a pfs.FileSystem with deterministic fault
// injection, used to exercise the error paths of the forwarding stack and
// the application kernels: every n-th operation (optionally filtered by
// operation kind or path prefix) fails with a configurable error.
package faultfs

import (
	"errors"
	"strings"
	"sync/atomic"

	"repro/internal/pfs"
)

// ErrInjected is the default injected failure.
var ErrInjected = errors.New("faultfs: injected fault")

// OpKind selects which operations are eligible for injection.
type OpKind int

// Operation kinds.
const (
	KindAny OpKind = iota
	KindWrite
	KindRead
	KindMeta
)

// Config controls injection.
type Config struct {
	// FailEvery injects a fault on every n-th eligible operation
	// (1 = every operation). ≤0 disables injection.
	FailEvery int64
	// Kind restricts injection to one operation class.
	Kind OpKind
	// PathPrefix, when non-empty, restricts injection to paths with the
	// prefix.
	PathPrefix string
	// Err is the injected error; nil selects ErrInjected.
	Err error
}

// FS is the fault-injecting wrapper.
type FS struct {
	inner pfs.FileSystem
	cfg   Config
	n     atomic.Int64
	hits  atomic.Int64
}

var _ pfs.FileSystem = (*FS)(nil)

// Wrap returns a fault-injecting view of inner.
func Wrap(inner pfs.FileSystem, cfg Config) *FS {
	if cfg.Err == nil {
		cfg.Err = ErrInjected
	}
	return &FS{inner: inner, cfg: cfg}
}

// Injected reports how many faults have fired.
func (f *FS) Injected() int64 { return f.hits.Load() }

func (f *FS) should(kind OpKind, path string) bool {
	if f.cfg.FailEvery <= 0 {
		return false
	}
	if f.cfg.Kind != KindAny && f.cfg.Kind != kind {
		return false
	}
	if f.cfg.PathPrefix != "" && !strings.HasPrefix(path, f.cfg.PathPrefix) {
		return false
	}
	if f.n.Add(1)%f.cfg.FailEvery == 0 {
		f.hits.Add(1)
		return true
	}
	return false
}

// Create implements pfs.FileSystem.
func (f *FS) Create(path string) error {
	if f.should(KindMeta, path) {
		return f.cfg.Err
	}
	return f.inner.Create(path)
}

// Write implements pfs.FileSystem.
func (f *FS) Write(path string, off int64, p []byte) (int, error) {
	if f.should(KindWrite, path) {
		return 0, f.cfg.Err
	}
	return f.inner.Write(path, off, p)
}

// Read implements pfs.FileSystem.
func (f *FS) Read(path string, off int64, p []byte) (int, error) {
	if f.should(KindRead, path) {
		return 0, f.cfg.Err
	}
	return f.inner.Read(path, off, p)
}

// Stat implements pfs.FileSystem.
func (f *FS) Stat(path string) (pfs.FileInfo, error) {
	if f.should(KindMeta, path) {
		return pfs.FileInfo{}, f.cfg.Err
	}
	return f.inner.Stat(path)
}

// Remove implements pfs.FileSystem.
func (f *FS) Remove(path string) error {
	if f.should(KindMeta, path) {
		return f.cfg.Err
	}
	return f.inner.Remove(path)
}

// Fsync implements pfs.FileSystem.
func (f *FS) Fsync(path string) error {
	if f.should(KindMeta, path) {
		return f.cfg.Err
	}
	return f.inner.Fsync(path)
}

// WriteAs implements the I/O-node backend contract: attribution passes
// through when the inner file system supports it.
func (f *FS) WriteAs(writer, path string, off int64, p []byte) (int, error) {
	if f.should(KindWrite, path) {
		return 0, f.cfg.Err
	}
	type writerAs interface {
		WriteAs(writer, path string, off int64, p []byte) (int, error)
	}
	if wa, ok := f.inner.(writerAs); ok {
		return wa.WriteAs(writer, path, off, p)
	}
	return f.inner.Write(path, off, p)
}
