// Package faultfs wraps a pfs.FileSystem with deterministic fault
// injection, used to exercise the error paths of the forwarding stack and
// the application kernels. Two independent schedules are supported:
//
//   - failures: every FailEvery-th eligible operation either returns a
//     configurable error (Behavior Fail, the default) or blocks until the
//     wrapper is closed (Behavior Hang — a wedged storage target, the
//     backend counterpart of faultnet's network hang);
//   - latency: every DelayEvery-th eligible operation sleeps Delay before
//     proceeding, modelling a slow or contended PFS without failing it.
//
// Eligibility (operation kind, path prefix) gates both schedules. Close
// releases any operation blocked in a hang or a delay, so tests can always
// tear the stack down in bounded time.
package faultfs

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pfs"
)

// ErrInjected is the default injected failure.
var ErrInjected = errors.New("faultfs: injected fault")

// OpKind selects which operations are eligible for injection.
type OpKind int

// Operation kinds.
const (
	KindAny OpKind = iota
	KindWrite
	KindRead
	KindMeta
)

// Behavior selects what an injected failure does.
type Behavior int

const (
	// Fail returns Config.Err immediately.
	Fail Behavior = iota
	// Hang blocks the operation until Close, then returns Config.Err.
	Hang
)

// Config controls injection.
type Config struct {
	// FailEvery injects a fault on every n-th eligible operation
	// (1 = every operation). ≤0 disables failure injection.
	FailEvery int64
	// Behavior selects between failing fast and hanging until Close.
	Behavior Behavior
	// Kind restricts injection (failures and delays) to one operation
	// class.
	Kind OpKind
	// PathPrefix, when non-empty, restricts injection to paths with the
	// prefix.
	PathPrefix string
	// Err is the injected error; nil selects ErrInjected.
	Err error
	// DelayEvery delays every n-th eligible operation by Delay
	// (1 = every operation). ≤0 disables latency injection.
	DelayEvery int64
	// Delay is the injected latency for DelayEvery.
	Delay time.Duration
}

// FS is the fault-injecting wrapper.
type FS struct {
	inner pfs.FileSystem
	cfg   Config

	n       atomic.Int64 // failure-schedule position
	hits    atomic.Int64
	dn      atomic.Int64 // delay-schedule position
	delayed atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
}

var _ pfs.FileSystem = (*FS)(nil)

// Wrap returns a fault-injecting view of inner.
func Wrap(inner pfs.FileSystem, cfg Config) *FS {
	if cfg.Err == nil {
		cfg.Err = ErrInjected
	}
	return &FS{inner: inner, cfg: cfg, closed: make(chan struct{})}
}

// Injected reports how many faults have fired.
func (f *FS) Injected() int64 { return f.hits.Load() }

// Delayed reports how many operations were slowed by the latency schedule.
func (f *FS) Delayed() int64 { return f.delayed.Load() }

// Close releases every operation currently blocked in an injected hang or
// delay. Idempotent; the wrapped file system is not closed.
func (f *FS) Close() error {
	f.closeOnce.Do(func() { close(f.closed) })
	return nil
}

// eligible applies the kind and path filters shared by both schedules.
func (f *FS) eligible(kind OpKind, path string) bool {
	if f.cfg.Kind != KindAny && f.cfg.Kind != kind {
		return false
	}
	if f.cfg.PathPrefix != "" && !strings.HasPrefix(path, f.cfg.PathPrefix) {
		return false
	}
	return true
}

// inject runs the latency schedule then the failure schedule for one
// operation; a non-nil return aborts the operation with that error.
func (f *FS) inject(kind OpKind, path string) error {
	if !f.eligible(kind, path) {
		return nil
	}
	if f.cfg.DelayEvery > 0 && f.dn.Add(1)%f.cfg.DelayEvery == 0 {
		f.delayed.Add(1)
		t := time.NewTimer(f.cfg.Delay)
		select {
		case <-t.C:
		case <-f.closed:
			t.Stop()
			return f.cfg.Err
		}
	}
	if f.cfg.FailEvery > 0 && f.n.Add(1)%f.cfg.FailEvery == 0 {
		f.hits.Add(1)
		if f.cfg.Behavior == Hang {
			<-f.closed
		}
		return f.cfg.Err
	}
	return nil
}

// Create implements pfs.FileSystem.
func (f *FS) Create(path string) error {
	if err := f.inject(KindMeta, path); err != nil {
		return err
	}
	return f.inner.Create(path)
}

// Write implements pfs.FileSystem.
func (f *FS) Write(path string, off int64, p []byte) (int, error) {
	if err := f.inject(KindWrite, path); err != nil {
		return 0, err
	}
	return f.inner.Write(path, off, p)
}

// Read implements pfs.FileSystem.
func (f *FS) Read(path string, off int64, p []byte) (int, error) {
	if err := f.inject(KindRead, path); err != nil {
		return 0, err
	}
	return f.inner.Read(path, off, p)
}

// Stat implements pfs.FileSystem.
func (f *FS) Stat(path string) (pfs.FileInfo, error) {
	if err := f.inject(KindMeta, path); err != nil {
		return pfs.FileInfo{}, err
	}
	return f.inner.Stat(path)
}

// Remove implements pfs.FileSystem.
func (f *FS) Remove(path string) error {
	if err := f.inject(KindMeta, path); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

// Fsync implements pfs.FileSystem.
func (f *FS) Fsync(path string) error {
	if err := f.inject(KindMeta, path); err != nil {
		return err
	}
	return f.inner.Fsync(path)
}

// WriteAs implements the I/O-node backend contract: attribution passes
// through when the inner file system supports it.
func (f *FS) WriteAs(writer, path string, off int64, p []byte) (int, error) {
	if err := f.inject(KindWrite, path); err != nil {
		return 0, err
	}
	type writerAs interface {
		WriteAs(writer, path string, off int64, p []byte) (int, error)
	}
	if wa, ok := f.inner.(writerAs); ok {
		return wa.WriteAs(writer, path, off, p)
	}
	return f.inner.Write(path, off, p)
}
