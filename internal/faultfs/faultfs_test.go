package faultfs

import (
	"errors"
	"testing"

	"repro/internal/apps"
	"repro/internal/pfs"
)

func TestInjectionCadence(t *testing.T) {
	f := Wrap(pfs.NewStore(pfs.Config{}), Config{FailEvery: 3, Kind: KindWrite})
	fails := 0
	for i := 0; i < 9; i++ {
		if _, err := f.Write("/x", int64(i), []byte("a")); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("fails = %d, want 3", fails)
	}
	if f.Injected() != 3 {
		t.Fatalf("Injected = %d", f.Injected())
	}
}

func TestKindFilter(t *testing.T) {
	f := Wrap(pfs.NewStore(pfs.Config{}), Config{FailEvery: 1, Kind: KindRead})
	if _, err := f.Write("/x", 0, []byte("a")); err != nil {
		t.Fatal("writes should pass with a read-only fault")
	}
	if _, err := f.Read("/x", 0, make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read should fail: %v", err)
	}
	if err := f.Create("/y"); err != nil {
		t.Fatal("meta should pass with a read-only fault")
	}
}

func TestPathFilter(t *testing.T) {
	f := Wrap(pfs.NewStore(pfs.Config{}), Config{FailEvery: 1, PathPrefix: "/bad"})
	if _, err := f.Write("/good/x", 0, []byte("a")); err != nil {
		t.Fatal("non-matching path should pass")
	}
	if _, err := f.Write("/bad/x", 0, []byte("a")); err == nil {
		t.Fatal("matching path should fail")
	}
}

func TestCustomError(t *testing.T) {
	boom := errors.New("boom")
	f := Wrap(pfs.NewStore(pfs.Config{}), Config{FailEvery: 1, Err: boom})
	if err := f.Create("/x"); !errors.Is(err, boom) {
		t.Fatalf("want custom error, got %v", err)
	}
}

func TestDisabled(t *testing.T) {
	f := Wrap(pfs.NewStore(pfs.Config{}), Config{})
	for i := 0; i < 100; i++ {
		if _, err := f.Write("/x", int64(i), []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	if f.Injected() != 0 {
		t.Fatal("disabled injector fired")
	}
}

func TestAllOpsInjectable(t *testing.T) {
	f := Wrap(pfs.NewStore(pfs.Config{}), Config{FailEvery: 1})
	if err := f.Create("/x"); err == nil {
		t.Fatal("create")
	}
	if _, err := f.Write("/x", 0, []byte("a")); err == nil {
		t.Fatal("write")
	}
	if _, err := f.Read("/x", 0, make([]byte, 1)); err == nil {
		t.Fatal("read")
	}
	if _, err := f.Stat("/x"); err == nil {
		t.Fatal("stat")
	}
	if err := f.Remove("/x"); err == nil {
		t.Fatal("remove")
	}
	if err := f.Fsync("/x"); err == nil {
		t.Fatal("fsync")
	}
}

// TestKernelsSurfaceBackendFaults: every application kernel must propagate
// (not swallow) backend failures.
func TestKernelsSurfaceBackendFaults(t *testing.T) {
	for label, k := range apps.TinyRegistry() {
		store := pfs.NewStore(pfs.Config{})
		faulty := Wrap(store, Config{FailEvery: 5})
		if _, err := k.Run(faulty, "/f"); err == nil {
			t.Errorf("%s swallowed injected backend faults", label)
		}
	}
}

// plainFS is a FileSystem without WriteAs, to exercise the fallback.
type plainFS struct{ inner *pfs.Store }

func (p *plainFS) Create(path string) error { return p.inner.Create(path) }
func (p *plainFS) Write(path string, off int64, b []byte) (int, error) {
	return p.inner.Write(path, off, b)
}
func (p *plainFS) Read(path string, off int64, b []byte) (int, error) {
	return p.inner.Read(path, off, b)
}
func (p *plainFS) Stat(path string) (pfs.FileInfo, error) { return p.inner.Stat(path) }
func (p *plainFS) Remove(path string) error               { return p.inner.Remove(path) }
func (p *plainFS) Fsync(path string) error                { return p.inner.Fsync(path) }

func TestWriteAsPassthroughAndFallback(t *testing.T) {
	// Inner supports WriteAs: identity reaches the store's lock model.
	store := pfs.NewStore(pfs.Config{})
	f := Wrap(store, Config{})
	if _, err := f.WriteAs("w1", "/a", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Inner lacks WriteAs: falls back to Write.
	f2 := Wrap(&plainFS{inner: pfs.NewStore(pfs.Config{})}, Config{})
	if _, err := f2.WriteAs("w1", "/a", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Injection applies to WriteAs too.
	f3 := Wrap(store, Config{FailEvery: 1, Kind: KindWrite})
	if _, err := f3.WriteAs("w1", "/a", 0, []byte("x")); err == nil {
		t.Fatal("WriteAs should be injectable")
	}
}
