package faultfs

// Tests for the latency schedule (DelayEvery/Delay) and the Hang behaviour
// released by Close.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/pfs"
)

func TestDelayInjectionCadence(t *testing.T) {
	const d = 20 * time.Millisecond
	f := Wrap(pfs.NewStore(pfs.Config{}), Config{DelayEvery: 2, Delay: d, Kind: KindWrite})
	defer f.Close()
	if err := f.Create("/x"); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := f.Write("/x", int64(i), []byte("a")); err != nil {
			t.Fatalf("delayed write %d must still succeed: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed < 2*d {
		t.Fatalf("4 writes with DelayEvery=2 took %v, want ≥ %v", elapsed, 2*d)
	}
	if got := f.Delayed(); got != 2 {
		t.Fatalf("Delayed() = %d, want 2", got)
	}
	if got := f.Injected(); got != 0 {
		t.Fatalf("latency schedule must not count as failures: Injected() = %d", got)
	}
}

func TestDelayRespectsKindFilter(t *testing.T) {
	f := Wrap(pfs.NewStore(pfs.Config{}), Config{DelayEvery: 1, Delay: time.Hour, Kind: KindRead})
	defer f.Close()
	done := make(chan error, 1)
	go func() { done <- f.Create("/x") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("metadata op hit a read-only delay schedule")
	}
}

func TestHangBlocksUntilClose(t *testing.T) {
	f := Wrap(pfs.NewStore(pfs.Config{}), Config{FailEvery: 1, Behavior: Hang})
	done := make(chan error, 1)
	go func() {
		_, err := f.Write("/x", 0, []byte("a"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hang returned before Close: %v", err)
	case <-time.After(50 * time.Millisecond):
		// still blocked, as intended
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("released hang should surface the injected error, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the hung operation")
	}
	// Close is idempotent.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayReleasedByClose(t *testing.T) {
	f := Wrap(pfs.NewStore(pfs.Config{}), Config{DelayEvery: 1, Delay: time.Hour})
	done := make(chan error, 1)
	go func() {
		_, err := f.Write("/x", 0, []byte("a"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("released delay should surface the injected error, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the delayed operation")
	}
}
