package faultnet

// Composition test: a Delay fault in front of a server that can shed.
// Latency and overload are different signals — a call that crawls through
// a delayed link but completes must count as a plain success (no shed, no
// busy response, no retry), while a genuinely shed call through the same
// slow link must still classify as busy, not as a transport failure.

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

func TestDelayedCallIsNotShedOrRetried(t *testing.T) {
	inj := NewInjector(Plan{Kind: Delay, Delay: 20 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	parked := make(chan struct{}, 1)
	release := make(chan struct{})
	srv := rpc.NewServer(func(req *rpc.Message) *rpc.Message {
		if req.Path == "/hold" {
			parked <- struct{}{}
			<-release
		}
		return &rpc.Message{Op: req.Op, Path: req.Path, Data: req.Data}
	}).WithLimits(rpc.ServerLimits{MaxInflight: 1, RetryAfter: 2 * time.Millisecond}).
		Instrument(reg, "")
	if _, err := srv.ListenOn(WrapListener(ln, inj)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := ln.Addr().String()

	cli := rpc.Dial(addr, 2).
		WithOptions(rpc.Options{CallTimeout: 2 * time.Second, MaxRetries: 3, RetryBackoff: time.Millisecond}).
		Instrument(reg, nil)
	defer cli.Close()

	// Sequential calls through the delayed link: slow, but successful —
	// nothing here is overload.
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := cli.Call(&rpc.Message{Op: rpc.OpPing, Path: "/slowlink"}); err != nil {
			t.Fatalf("delayed call %d failed: %v", i, err)
		}
		if time.Since(start) < 20*time.Millisecond {
			t.Fatalf("call %d did not traverse the delay", i)
		}
	}
	if got := reg.Counter("rpc_server_shed_total").Value(); got != 0 {
		t.Fatalf("delayed-but-successful calls counted as shed: %d", got)
	}
	if got := reg.Counter("rpc_busy_responses_total").Value(); got != 0 {
		t.Fatalf("delayed-but-successful calls produced busy responses: %d", got)
	}
	if got := reg.Counter("rpc_retries_total").Value(); got != 0 {
		t.Fatalf("delayed-but-successful calls were retried %d times", got)
	}

	// Now genuinely saturate the single in-flight slot: the next call is
	// shed through the same slow link, and classifies as busy — not as
	// the transport failure the delay might suggest.
	done := make(chan error, 1)
	go func() {
		_, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/hold"})
		done <- err
	}()
	<-parked
	_, err = cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/shed"})
	if !errors.Is(err, rpc.ErrBusy) {
		t.Fatalf("shed through a delayed link: want ErrBusy, got %v", err)
	}
	if errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("shed misclassified as transport failure: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("held call failed: %v", err)
	}
	if got := reg.Counter("rpc_server_shed_total").Value(); got != 1 {
		t.Fatalf("rpc_server_shed_total = %d, want exactly the one real shed", got)
	}
	if got := reg.Counter("rpc_retries_total").Value(); got != 0 {
		t.Fatalf("busy response was transport-retried %d times, want 0", got)
	}
}
