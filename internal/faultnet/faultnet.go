// Package faultnet injects deterministic network faults between the
// forwarding client and an I/O-node daemon. It wraps a net.Listener so
// every accepted connection observes the Injector's current Plan:
// connections can be refused at accept, reset mid-stream, hung
// indefinitely, delayed per I/O call, or cut after a byte budget.
//
// The injector is the chaos half of the failure-tolerance story: the rpc
// layer's deadlines, retries and circuit breaker (internal/rpc), the
// health prober (internal/health) and the arbiter's MarkDown/MarkUp are
// all exercised against these faults in livestack's chaos tests. Unlike
// faultfs — which injects *storage* faults behind a healthy daemon —
// faultnet makes the daemon itself unreachable, which is what an I/O-node
// crash looks like from a compute node.
//
// Faults are fully deterministic: the Plan is explicit shared state, not a
// probability, and Set replaces it atomically. Setting a new plan releases
// connections currently blocked in a Hang so tests can script
// outage-then-recovery sequences without leaking goroutines.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Kind selects a fault behaviour.
type Kind int

const (
	// None passes traffic through untouched.
	None Kind = iota
	// Refuse closes every new connection immediately at accept, before
	// any bytes flow — what a dead daemon's OS does to SYN packets.
	Refuse
	// Reset closes the connection on the next read or write — an abrupt
	// crash mid-exchange.
	Reset
	// Hang blocks every read and write until the plan changes or the
	// connection is closed — a wedged daemon that accepts but never
	// answers. This is what per-call deadlines exist to catch.
	Hang
	// Delay sleeps before every read and write — a congested or
	// overloaded network path.
	Delay
	// DropAfter lets Bytes flow (summed across reads and writes), then
	// hangs — a failure mid-message, after the client committed to it.
	DropAfter
	// Corrupt flips a single bit in roughly one of every FlipOneIn I/O
	// buffers, in both directions, drawn from a rand stream seeded by
	// Seed — a flaky NIC or a bad switch port. Connections stay up and
	// bytes keep flowing; only their content lies. This is the fault the
	// CRC32C wire trailer (internal/rpc) exists to catch.
	Corrupt
)

// String names the kind for test output.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Refuse:
		return "refuse"
	case Reset:
		return "reset"
	case Hang:
		return "hang"
	case Delay:
		return "delay"
	case DropAfter:
		return "drop-after"
	case Corrupt:
		return "corrupt"
	default:
		return "unknown"
	}
}

// Plan is one fault configuration.
type Plan struct {
	// Kind selects the behaviour.
	Kind Kind
	// Delay is the per-I/O sleep for Kind Delay.
	Delay time.Duration
	// Bytes is the budget for Kind DropAfter.
	Bytes int64
	// Seed starts the deterministic rand stream for Kind Corrupt. The
	// same seed yields the same flip decisions in the same draw order
	// (concurrent connections interleave draws, so cross-run determinism
	// holds per sequence of I/O calls, not per wall clock).
	Seed int64
	// FlipOneIn is the corruption rate for Kind Corrupt: one bit flipped
	// in roughly 1 of every FlipOneIn buffers. ≤0 disables flipping.
	FlipOneIn int
}

// ErrInjected marks errors produced by the injector, so tests can tell a
// scripted fault from a real one.
var ErrInjected = errors.New("faultnet: injected fault")

// Injector holds the current plan, shared by a listener wrapper and all
// its connections.
type Injector struct {
	mu      sync.Mutex
	plan    Plan
	budget  int64         // remaining DropAfter bytes
	wake    chan struct{} // closed (and replaced) on every Set, releasing hangs
	rng     *rand.Rand    // Corrupt flip decisions; non-nil only for that kind
	flipped int64         // bits flipped since the Corrupt plan was installed
}

// NewInjector starts with the given plan.
func NewInjector(plan Plan) *Injector {
	inj := &Injector{wake: make(chan struct{})}
	inj.install(plan)
	return inj
}

// Set atomically replaces the plan. Connections blocked in a Hang (or a
// Delay sleep, or an exhausted DropAfter) re-evaluate the new plan.
func (inj *Injector) Set(plan Plan) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.install(plan)
	close(inj.wake)
	inj.wake = make(chan struct{})
}

func (inj *Injector) install(plan Plan) {
	inj.plan = plan
	inj.budget = plan.Bytes
	inj.rng = nil
	if plan.Kind == Corrupt {
		inj.rng = rand.New(rand.NewSource(plan.Seed))
		inj.flipped = 0
	}
}

// Plan returns the current plan.
func (inj *Injector) Plan() Plan {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.plan
}

// snapshot returns the plan and the wake channel that a blocked operation
// should wait on for plan changes.
func (inj *Injector) snapshot() (Plan, <-chan struct{}) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.plan, inj.wake
}

// consume takes up to n bytes from the DropAfter budget and reports how
// many may flow.
func (inj *Injector) consume(n int) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.budget <= 0 {
		return 0
	}
	if int64(n) > inj.budget {
		n = int(inj.budget)
	}
	inj.budget -= int64(n)
	return n
}

// corrupt possibly flips one bit of p in place, per the Corrupt plan's
// seeded rate, and reports whether it did.
func (inj *Injector) corrupt(p []byte) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.plan.Kind != Corrupt || inj.plan.FlipOneIn <= 0 || len(p) == 0 {
		return false
	}
	if inj.rng.Intn(inj.plan.FlipOneIn) != 0 {
		return false
	}
	p[inj.rng.Intn(len(p))] ^= 1 << inj.rng.Intn(8)
	inj.flipped++
	return true
}

// Flipped reports how many bits the current Corrupt plan has flipped.
func (inj *Injector) Flipped() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.flipped
}

// WrapListener interposes inj on every connection accepted from ln.
func WrapListener(ln net.Listener, inj *Injector) net.Listener {
	return &listener{Listener: ln, inj: inj}
}

type listener struct {
	net.Listener
	inj *Injector
}

// Accept applies the Refuse fault and wraps surviving connections.
func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.inj.Plan().Kind == Refuse {
			c.Close()
			continue // keep serving: the fault is per-connection
		}
		return &Conn{Conn: c, inj: l.inj, closed: make(chan struct{})}, nil
	}
}

// Conn applies the injector's plan to one accepted connection.
type Conn struct {
	net.Conn
	inj       *Injector
	closeOnce sync.Once
	closed    chan struct{}
}

// gate blocks or errors according to the current plan; a nil return means
// the caller may perform its I/O. It re-evaluates the plan every time Set
// wakes it, so a Hang lifts when the fault is cleared.
func (c *Conn) gate() error {
	for {
		plan, wake := c.inj.snapshot()
		switch plan.Kind {
		case Reset:
			c.Close()
			return errInjectedReset
		case Hang:
			select {
			case <-wake:
				continue
			case <-c.closed:
				return errInjectedClosed
			}
		case Delay:
			t := time.NewTimer(plan.Delay)
			select {
			case <-t.C:
				return nil
			case <-wake:
				t.Stop()
				continue
			case <-c.closed:
				t.Stop()
				return errInjectedClosed
			}
		default:
			return nil
		}
	}
}

var (
	errInjectedReset  = &net.OpError{Op: "faultnet", Err: ErrInjected}
	errInjectedClosed = &net.OpError{Op: "faultnet", Err: net.ErrClosed}
)

func (c *Conn) Read(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	if c.inj.Plan().Kind == DropAfter {
		n := c.inj.consume(len(p))
		if n == 0 {
			return 0, c.starve()
		}
		p = p[:n]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.inj.corrupt(p[:n])
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	if c.inj.Plan().Kind == DropAfter {
		n := c.inj.consume(len(p))
		if n == 0 {
			return 0, c.starve()
		}
		k, err := c.Conn.Write(p[:n])
		if err != nil {
			return k, err
		}
		if n < len(p) {
			// The budget ran dry mid-buffer: the remainder is dropped.
			return k, c.starve()
		}
		return k, nil
	}
	if c.inj.Plan().Kind == Corrupt {
		// Never mutate the caller's buffer: rpc reuses encode buffers.
		dirty := make([]byte, len(p))
		copy(dirty, p)
		c.inj.corrupt(dirty)
		return c.Conn.Write(dirty)
	}
	return c.Conn.Write(p)
}

// starve blocks an exhausted DropAfter connection until the plan changes
// or the connection closes — mirroring a peer that went silent.
func (c *Conn) starve() error {
	for {
		plan, wake := c.inj.snapshot()
		if plan.Kind != DropAfter {
			return c.gate()
		}
		select {
		case <-wake:
		case <-c.closed:
			return errInjectedClosed
		}
	}
}

// Close releases any operation blocked by the plan, then closes the
// underlying connection.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}
