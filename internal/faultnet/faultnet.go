// Package faultnet injects deterministic network faults between the
// forwarding client and an I/O-node daemon. It wraps a net.Listener so
// every accepted connection observes the Injector's current Plan:
// connections can be refused at accept, reset mid-stream, hung
// indefinitely, delayed per I/O call, or cut after a byte budget.
//
// The injector is the chaos half of the failure-tolerance story: the rpc
// layer's deadlines, retries and circuit breaker (internal/rpc), the
// health prober (internal/health) and the arbiter's MarkDown/MarkUp are
// all exercised against these faults in livestack's chaos tests. Unlike
// faultfs — which injects *storage* faults behind a healthy daemon —
// faultnet makes the daemon itself unreachable, which is what an I/O-node
// crash looks like from a compute node.
//
// Faults are fully deterministic: the Plan is explicit shared state, not a
// probability, and Set replaces it atomically. Setting a new plan releases
// connections currently blocked in a Hang so tests can script
// outage-then-recovery sequences without leaking goroutines.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Kind selects a fault behaviour.
type Kind int

const (
	// None passes traffic through untouched.
	None Kind = iota
	// Refuse closes every new connection immediately at accept, before
	// any bytes flow — what a dead daemon's OS does to SYN packets.
	Refuse
	// Reset closes the connection on the next read or write — an abrupt
	// crash mid-exchange.
	Reset
	// Hang blocks every read and write until the plan changes or the
	// connection is closed — a wedged daemon that accepts but never
	// answers. This is what per-call deadlines exist to catch.
	Hang
	// Delay sleeps before every read and write — a congested or
	// overloaded network path.
	Delay
	// DropAfter lets Bytes flow (summed across reads and writes), then
	// hangs — a failure mid-message, after the client committed to it.
	DropAfter
	// Corrupt flips a single bit in roughly one of every FlipOneIn I/O
	// buffers, in both directions, drawn from a rand stream seeded by
	// Seed — a flaky NIC or a bad switch port. Connections stay up and
	// bytes keep flowing; only their content lies. This is the fault the
	// CRC32C wire trailer (internal/rpc) exists to catch.
	Corrupt
	// Slow models a gray failure: the connection keeps working and every
	// byte arrives intact, but I/O in the selected direction(s) pays a
	// delay — optionally ramping up from zero over Plan.Ramp (a node
	// going bad gradually, not at once), optionally applied to only 1 in
	// Plan.DelayOneIn calls from a Seed-seeded stream (intermittent
	// stalls), optionally rate-limited to Plan.Rate bytes/second. With
	// Dir set to one direction this is an asymmetric slowdown: requests
	// arrive promptly but responses crawl, or vice versa — the failure
	// mode fail-stop detectors (deadlines, breakers, liveness probes)
	// never see, and the one the fail-slow scorer and hedged requests
	// exist to catch.
	Slow
)

// String names the kind for test output.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Refuse:
		return "refuse"
	case Reset:
		return "reset"
	case Hang:
		return "hang"
	case Delay:
		return "delay"
	case DropAfter:
		return "drop-after"
	case Corrupt:
		return "corrupt"
	case Slow:
		return "slow"
	default:
		return "unknown"
	}
}

// Direction selects which side(s) of a connection a Slow plan throttles,
// named from the wrapped (server) end: Inbound is the server reading the
// client's requests, Outbound is the server writing its responses.
type Direction int

const (
	// Inbound slows server-side reads (client → server bytes).
	Inbound Direction = 1 << iota
	// Outbound slows server-side writes (server → client bytes).
	Outbound
	// Both slows both directions — the zero Plan.Dir also means Both.
	Both = Inbound | Outbound
)

// Plan is one fault configuration.
type Plan struct {
	// Kind selects the behaviour.
	Kind Kind
	// Delay is the per-I/O sleep for Kind Delay.
	Delay time.Duration
	// Bytes is the budget for Kind DropAfter.
	Bytes int64
	// Seed starts the deterministic rand stream for Kind Corrupt. The
	// same seed yields the same flip decisions in the same draw order
	// (concurrent connections interleave draws, so cross-run determinism
	// holds per sequence of I/O calls, not per wall clock).
	Seed int64
	// FlipOneIn is the corruption rate for Kind Corrupt: one bit flipped
	// in roughly 1 of every FlipOneIn buffers. ≤0 disables flipping.
	FlipOneIn int
	// Dir selects the slowed direction(s) for Kind Slow; zero means Both.
	Dir Direction
	// Ramp, for Kind Slow, grows the per-I/O delay linearly from zero at
	// plan-install time to the full Delay after Ramp has elapsed — a node
	// degrading gradually. Zero applies the full Delay immediately.
	Ramp time.Duration
	// DelayOneIn, for Kind Slow, applies the delay to roughly 1 of every
	// DelayOneIn I/O calls, drawn from the Seed-seeded stream; ≤1 delays
	// every call. Intermittent stalls are the hardest gray failure to
	// catch — most calls are fast, the tail is terrible.
	DelayOneIn int
	// Rate, for Kind Slow, caps slowed directions at Rate bytes/second
	// (each I/O sleeps its buffer's transmission time). ≤0 means no cap.
	Rate int64
}

// ErrInjected marks errors produced by the injector, so tests can tell a
// scripted fault from a real one.
var ErrInjected = errors.New("faultnet: injected fault")

// Injector holds the current plan, shared by a listener wrapper and all
// its connections.
type Injector struct {
	mu        sync.Mutex
	plan      Plan
	budget    int64         // remaining DropAfter bytes
	wake      chan struct{} // closed (and replaced) on every Set, releasing hangs
	rng       *rand.Rand    // Corrupt flip / Slow skip decisions; nil for other kinds
	flipped   int64         // bits flipped since the Corrupt plan was installed
	installed time.Time     // when the current plan was set (Slow ramps from here)
}

// NewInjector starts with the given plan.
func NewInjector(plan Plan) *Injector {
	inj := &Injector{wake: make(chan struct{})}
	inj.install(plan)
	return inj
}

// Set atomically replaces the plan. Connections blocked in a Hang (or a
// Delay sleep, or an exhausted DropAfter) re-evaluate the new plan.
func (inj *Injector) Set(plan Plan) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.install(plan)
	close(inj.wake)
	inj.wake = make(chan struct{})
}

func (inj *Injector) install(plan Plan) {
	inj.plan = plan
	inj.budget = plan.Bytes
	inj.installed = time.Now()
	inj.rng = nil
	if plan.Kind == Corrupt {
		inj.rng = rand.New(rand.NewSource(plan.Seed))
		inj.flipped = 0
	}
	if plan.Kind == Slow && plan.DelayOneIn > 1 {
		inj.rng = rand.New(rand.NewSource(plan.Seed))
	}
}

// Plan returns the current plan.
func (inj *Injector) Plan() Plan {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.plan
}

// snapshot returns the plan and the wake channel that a blocked operation
// should wait on for plan changes.
func (inj *Injector) snapshot() (Plan, <-chan struct{}) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.plan, inj.wake
}

// consume takes up to n bytes from the DropAfter budget and reports how
// many may flow.
func (inj *Injector) consume(n int) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.budget <= 0 {
		return 0
	}
	if int64(n) > inj.budget {
		n = int(inj.budget)
	}
	inj.budget -= int64(n)
	return n
}

// corrupt possibly flips one bit of p in place, per the Corrupt plan's
// seeded rate, and reports whether it did.
func (inj *Injector) corrupt(p []byte) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.plan.Kind != Corrupt || inj.plan.FlipOneIn <= 0 || len(p) == 0 {
		return false
	}
	if inj.rng.Intn(inj.plan.FlipOneIn) != 0 {
		return false
	}
	p[inj.rng.Intn(len(p))] ^= 1 << inj.rng.Intn(8)
	inj.flipped++
	return true
}

// slowDelay computes the sleep one I/O of n bytes in direction dir owes
// under the current Slow plan (0 when none applies), along with the wake
// channel a sleeper should watch for plan changes. The DelayOneIn draw
// happens here, so each call to slowDelay is one draw from the seeded
// stream — deterministic per I/O-call sequence, like Corrupt's flips.
func (inj *Injector) slowDelay(dir Direction, n int) (time.Duration, <-chan struct{}) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	p := inj.plan
	if p.Kind != Slow {
		return 0, inj.wake
	}
	d := p.Dir
	if d == 0 {
		d = Both
	}
	if d&dir == 0 {
		return 0, inj.wake
	}
	if p.DelayOneIn > 1 && inj.rng.Intn(p.DelayOneIn) != 0 {
		return 0, inj.wake
	}
	delay := p.Delay
	if p.Ramp > 0 {
		if since := time.Since(inj.installed); since < p.Ramp {
			delay = time.Duration(float64(delay) * float64(since) / float64(p.Ramp))
		}
	}
	if p.Rate > 0 {
		delay += time.Duration(int64(n) * int64(time.Second) / p.Rate)
	}
	return delay, inj.wake
}

// Flipped reports how many bits the current Corrupt plan has flipped.
func (inj *Injector) Flipped() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.flipped
}

// WrapListener interposes inj on every connection accepted from ln.
func WrapListener(ln net.Listener, inj *Injector) net.Listener {
	return &listener{Listener: ln, inj: inj}
}

type listener struct {
	net.Listener
	inj *Injector
}

// Accept applies the Refuse fault and wraps surviving connections.
func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.inj.Plan().Kind == Refuse {
			c.Close()
			continue // keep serving: the fault is per-connection
		}
		return &Conn{Conn: c, inj: l.inj, closed: make(chan struct{})}, nil
	}
}

// Conn applies the injector's plan to one accepted connection.
type Conn struct {
	net.Conn
	inj       *Injector
	closeOnce sync.Once
	closed    chan struct{}
}

// gate blocks or errors according to the current plan; a nil return means
// the caller may perform its I/O. It re-evaluates the plan every time Set
// wakes it, so a Hang lifts when the fault is cleared.
func (c *Conn) gate() error {
	for {
		plan, wake := c.inj.snapshot()
		switch plan.Kind {
		case Reset:
			c.Close()
			return errInjectedReset
		case Hang:
			select {
			case <-wake:
				continue
			case <-c.closed:
				return errInjectedClosed
			}
		case Delay:
			t := time.NewTimer(plan.Delay)
			select {
			case <-t.C:
				return nil
			case <-wake:
				t.Stop()
				continue
			case <-c.closed:
				t.Stop()
				return errInjectedClosed
			}
		default:
			return nil
		}
	}
}

var (
	errInjectedReset  = &net.OpError{Op: "faultnet", Err: ErrInjected}
	errInjectedClosed = &net.OpError{Op: "faultnet", Err: net.ErrClosed}
)

// slowGate sleeps an I/O behind the current Slow plan's delay for its
// direction, re-evaluating on every plan change so a lifted fault releases
// sleepers immediately (like gate does for Hang and Delay).
func (c *Conn) slowGate(dir Direction, n int) error {
	for {
		d, wake := c.inj.slowDelay(dir, n)
		if d <= 0 {
			return nil
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
			return nil
		case <-wake:
			t.Stop()
			continue
		case <-c.closed:
			t.Stop()
			return errInjectedClosed
		}
	}
}

func (c *Conn) Read(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	if err := c.slowGate(Inbound, len(p)); err != nil {
		return 0, err
	}
	if c.inj.Plan().Kind == DropAfter {
		n := c.inj.consume(len(p))
		if n == 0 {
			return 0, c.starve()
		}
		p = p[:n]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.inj.corrupt(p[:n])
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	if err := c.slowGate(Outbound, len(p)); err != nil {
		return 0, err
	}
	if c.inj.Plan().Kind == DropAfter {
		n := c.inj.consume(len(p))
		if n == 0 {
			return 0, c.starve()
		}
		k, err := c.Conn.Write(p[:n])
		if err != nil {
			return k, err
		}
		if n < len(p) {
			// The budget ran dry mid-buffer: the remainder is dropped.
			return k, c.starve()
		}
		return k, nil
	}
	if c.inj.Plan().Kind == Corrupt {
		// Never mutate the caller's buffer: rpc reuses encode buffers.
		dirty := make([]byte, len(p))
		copy(dirty, p)
		c.inj.corrupt(dirty)
		return c.Conn.Write(dirty)
	}
	return c.Conn.Write(p)
}

// starve blocks an exhausted DropAfter connection until the plan changes
// or the connection closes — mirroring a peer that went silent.
func (c *Conn) starve() error {
	for {
		plan, wake := c.inj.snapshot()
		if plan.Kind != DropAfter {
			return c.gate()
		}
		select {
		case <-wake:
		case <-c.closed:
			return errInjectedClosed
		}
	}
}

// Close releases any operation blocked by the plan, then closes the
// underlying connection.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}
