package faultnet

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/rpc"
)

// startServer runs an rpc echo server behind the injector and returns its
// address.
func startServer(t *testing.T, inj *Injector) (*rpc.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(func(req *rpc.Message) *rpc.Message {
		return &rpc.Message{Op: req.Op, Data: req.Data}
	})
	if _, err := srv.ListenOn(WrapListener(ln, inj)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func newClient(t *testing.T, addr string) *rpc.Client {
	t.Helper()
	c := rpc.Dial(addr, 1).WithOptions(rpc.Options{
		CallTimeout:      200 * time.Millisecond,
		BreakerThreshold: 1 << 30, // effectively disabled: these tests probe the faults
	})
	t.Cleanup(func() { c.Close() })
	return c
}

func ping(c *rpc.Client) error {
	_, err := c.Call(&rpc.Message{Op: rpc.OpPing})
	return err
}

func TestNonePassesThrough(t *testing.T) {
	inj := NewInjector(Plan{})
	_, addr := startServer(t, inj)
	if err := ping(newClient(t, addr)); err != nil {
		t.Fatalf("plan None must pass traffic: %v", err)
	}
}

func TestRefuseThenRecover(t *testing.T) {
	inj := NewInjector(Plan{Kind: Refuse})
	_, addr := startServer(t, inj)
	c := newClient(t, addr)
	if err := ping(c); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("refused connection: want ErrUnavailable, got %v", err)
	}
	inj.Set(Plan{})
	if err := ping(c); err != nil {
		t.Fatalf("after clearing Refuse: %v", err)
	}
}

func TestResetKillsInFlightCall(t *testing.T) {
	inj := NewInjector(Plan{})
	_, addr := startServer(t, inj)
	c := newClient(t, addr)
	if err := ping(c); err != nil {
		t.Fatal(err)
	}
	inj.Set(Plan{Kind: Reset})
	if err := ping(c); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("reset connection: want ErrUnavailable, got %v", err)
	}
}

func TestHangTrippedByClientDeadline(t *testing.T) {
	inj := NewInjector(Plan{Kind: Hang})
	_, addr := startServer(t, inj)
	c := newClient(t, addr)
	start := time.Now()
	if err := ping(c); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("hung server: want ErrUnavailable, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the hang: %v", elapsed)
	}
	// Lifting the fault releases the wedged connection and restores service.
	inj.Set(Plan{})
	if err := ping(c); err != nil {
		t.Fatalf("after lifting Hang: %v", err)
	}
}

func TestDelaySlowsCalls(t *testing.T) {
	const d = 30 * time.Millisecond
	inj := NewInjector(Plan{Kind: Delay, Delay: d})
	_, addr := startServer(t, inj)
	c := newClient(t, addr)
	start := time.Now()
	if err := ping(c); err != nil {
		t.Fatalf("delayed call must still succeed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("call finished in %v, plan delays every I/O by %v", elapsed, d)
	}
}

func TestDropAfterStarvesThenRecovers(t *testing.T) {
	inj := NewInjector(Plan{Kind: DropAfter, Bytes: 4})
	_, addr := startServer(t, inj)
	c := newClient(t, addr)
	if err := ping(c); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("starved connection: want ErrUnavailable, got %v", err)
	}
	inj.Set(Plan{})
	if err := ping(c); err != nil {
		t.Fatalf("after lifting DropAfter: %v", err)
	}
}

// TestServerCloseReleasesHungConnections: a daemon shutting down must not
// wait on connections wedged inside an injected hang.
func TestServerCloseReleasesHungConnections(t *testing.T) {
	inj := NewInjector(Plan{Kind: Hang})
	srv, addr := startServer(t, inj)
	c := newClient(t, addr)
	callDone := make(chan struct{})
	go func() {
		ping(c) // will fail: either deadline or server close
		close(callDone)
	}()
	time.Sleep(20 * time.Millisecond) // let the call reach the hang
	closeDone := make(chan struct{})
	go func() {
		srv.Close()
		close(closeDone)
	}()
	for _, ch := range []chan struct{}{closeDone, callDone} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("hung connection was not released")
		}
	}
}

func TestPlanSwapIsAtomic(t *testing.T) {
	inj := NewInjector(Plan{Kind: Delay, Delay: time.Millisecond})
	if got := inj.Plan(); got.Kind != Delay {
		t.Fatalf("Plan() = %v", got)
	}
	inj.Set(Plan{Kind: DropAfter, Bytes: 10})
	if got := inj.Plan(); got.Kind != DropAfter || got.Bytes != 10 {
		t.Fatalf("Plan() after Set = %+v", got)
	}
	if n := inj.consume(6); n != 6 {
		t.Fatalf("consume(6) = %d", n)
	}
	if n := inj.consume(6); n != 4 {
		t.Fatalf("consume beyond budget = %d, want 4", n)
	}
	if n := inj.consume(1); n != 0 {
		t.Fatalf("consume from empty budget = %d", n)
	}
	inj.Set(Plan{Kind: DropAfter, Bytes: 3})
	if n := inj.consume(5); n != 3 {
		t.Fatalf("Set must reset the budget: consume = %d, want 3", n)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Refuse: "refuse", Reset: "reset",
		Hang: "hang", Delay: "delay", DropAfter: "drop-after",
		Kind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
