package faultnet

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// startServer runs an rpc echo server behind the injector and returns its
// address.
func startServer(t *testing.T, inj *Injector) (*rpc.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(func(req *rpc.Message) *rpc.Message {
		return &rpc.Message{Op: req.Op, Data: req.Data}
	})
	if _, err := srv.ListenOn(WrapListener(ln, inj)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func newClient(t *testing.T, addr string) *rpc.Client {
	t.Helper()
	c := rpc.Dial(addr, 1).WithOptions(rpc.Options{
		CallTimeout:      200 * time.Millisecond,
		BreakerThreshold: 1 << 30, // effectively disabled: these tests probe the faults
	})
	t.Cleanup(func() { c.Close() })
	return c
}

func ping(c *rpc.Client) error {
	_, err := c.Call(&rpc.Message{Op: rpc.OpPing})
	return err
}

func TestNonePassesThrough(t *testing.T) {
	inj := NewInjector(Plan{})
	_, addr := startServer(t, inj)
	if err := ping(newClient(t, addr)); err != nil {
		t.Fatalf("plan None must pass traffic: %v", err)
	}
}

func TestRefuseThenRecover(t *testing.T) {
	inj := NewInjector(Plan{Kind: Refuse})
	_, addr := startServer(t, inj)
	c := newClient(t, addr)
	if err := ping(c); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("refused connection: want ErrUnavailable, got %v", err)
	}
	inj.Set(Plan{})
	if err := ping(c); err != nil {
		t.Fatalf("after clearing Refuse: %v", err)
	}
}

func TestResetKillsInFlightCall(t *testing.T) {
	inj := NewInjector(Plan{})
	_, addr := startServer(t, inj)
	c := newClient(t, addr)
	if err := ping(c); err != nil {
		t.Fatal(err)
	}
	inj.Set(Plan{Kind: Reset})
	if err := ping(c); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("reset connection: want ErrUnavailable, got %v", err)
	}
}

func TestHangTrippedByClientDeadline(t *testing.T) {
	inj := NewInjector(Plan{Kind: Hang})
	_, addr := startServer(t, inj)
	c := newClient(t, addr)
	start := time.Now()
	if err := ping(c); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("hung server: want ErrUnavailable, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the hang: %v", elapsed)
	}
	// Lifting the fault releases the wedged connection and restores service.
	inj.Set(Plan{})
	if err := ping(c); err != nil {
		t.Fatalf("after lifting Hang: %v", err)
	}
}

func TestDelaySlowsCalls(t *testing.T) {
	const d = 30 * time.Millisecond
	inj := NewInjector(Plan{Kind: Delay, Delay: d})
	_, addr := startServer(t, inj)
	c := newClient(t, addr)
	start := time.Now()
	if err := ping(c); err != nil {
		t.Fatalf("delayed call must still succeed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("call finished in %v, plan delays every I/O by %v", elapsed, d)
	}
}

func TestDropAfterStarvesThenRecovers(t *testing.T) {
	inj := NewInjector(Plan{Kind: DropAfter, Bytes: 4})
	_, addr := startServer(t, inj)
	c := newClient(t, addr)
	if err := ping(c); !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("starved connection: want ErrUnavailable, got %v", err)
	}
	inj.Set(Plan{})
	if err := ping(c); err != nil {
		t.Fatalf("after lifting DropAfter: %v", err)
	}
}

// TestServerCloseReleasesHungConnections: a daemon shutting down must not
// wait on connections wedged inside an injected hang.
func TestServerCloseReleasesHungConnections(t *testing.T) {
	inj := NewInjector(Plan{Kind: Hang})
	srv, addr := startServer(t, inj)
	c := newClient(t, addr)
	callDone := make(chan struct{})
	go func() {
		ping(c) // will fail: either deadline or server close
		close(callDone)
	}()
	time.Sleep(20 * time.Millisecond) // let the call reach the hang
	closeDone := make(chan struct{})
	go func() {
		srv.Close()
		close(closeDone)
	}()
	for _, ch := range []chan struct{}{closeDone, callDone} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("hung connection was not released")
		}
	}
}

func TestPlanSwapIsAtomic(t *testing.T) {
	inj := NewInjector(Plan{Kind: Delay, Delay: time.Millisecond})
	if got := inj.Plan(); got.Kind != Delay {
		t.Fatalf("Plan() = %v", got)
	}
	inj.Set(Plan{Kind: DropAfter, Bytes: 10})
	if got := inj.Plan(); got.Kind != DropAfter || got.Bytes != 10 {
		t.Fatalf("Plan() after Set = %+v", got)
	}
	if n := inj.consume(6); n != 6 {
		t.Fatalf("consume(6) = %d", n)
	}
	if n := inj.consume(6); n != 4 {
		t.Fatalf("consume beyond budget = %d, want 4", n)
	}
	if n := inj.consume(1); n != 0 {
		t.Fatalf("consume from empty budget = %d", n)
	}
	inj.Set(Plan{Kind: DropAfter, Bytes: 3})
	if n := inj.consume(5); n != 3 {
		t.Fatalf("Set must reset the budget: consume = %d, want 3", n)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Refuse: "refuse", Reset: "reset",
		Hang: "hang", Delay: "delay", DropAfter: "drop-after",
		Corrupt: "corrupt", Kind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestCorruptDetectedByChecksum: a seeded bit-flipper between a
// checksumming client and server produces ErrChecksum transport failures,
// never silently corrupted payloads — and the flip stream is deterministic
// for a given seed.
func TestCorruptDetectedByChecksum(t *testing.T) {
	inj := NewInjector(Plan{Kind: Corrupt, Seed: 7, FlipOneIn: 3})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	srv := rpc.NewServer(func(req *rpc.Message) *rpc.Message {
		return &rpc.Message{Op: req.Op, Data: req.Data}
	}).Instrument(reg, "ion0").WithChecksum(true)
	if _, err := srv.ListenOn(WrapListener(ln, inj)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := rpc.Dial(ln.Addr().String(), 1).WithOptions(rpc.Options{
		CallTimeout:      80 * time.Millisecond,
		MaxRetries:       4,
		RetryBackoff:     time.Millisecond,
		RetryBackoffMax:  2 * time.Millisecond,
		BreakerThreshold: 1 << 30,
		WireChecksum:     true,
	})
	defer c.Close()

	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	var failed int
	for i := 0; i < 30; i++ {
		resp, err := c.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/x", Data: payload})
		if err != nil {
			failed++ // retries exhausted against repeated flips: transport error, fine
			continue
		}
		for j := range resp.Data {
			if resp.Data[j] != payload[j] {
				t.Fatalf("call %d returned silently corrupted data at byte %d", i, j)
			}
		}
	}
	if inj.Flipped() == 0 {
		t.Fatal("the injector never flipped a bit — the test exercised nothing")
	}
	if failed == 30 {
		t.Fatal("no call ever succeeded at FlipOneIn=3 with retries")
	}

	// Determinism: the same seed replays the same flip decisions.
	a := NewInjector(Plan{Kind: Corrupt, Seed: 42, FlipOneIn: 2})
	b := NewInjector(Plan{Kind: Corrupt, Seed: 42, FlipOneIn: 2})
	for i := 0; i < 200; i++ {
		pa := []byte{0xAA, 0xBB, 0xCC, 0xDD}
		pb := []byte{0xAA, 0xBB, 0xCC, 0xDD}
		fa, fb := a.corrupt(pa), b.corrupt(pb)
		if fa != fb || !bytes.Equal(pa, pb) {
			t.Fatalf("draw %d diverged: %v/%v %x/%x", i, fa, fb, pa, pb)
		}
	}
	if a.Flipped() != b.Flipped() {
		t.Fatalf("flip counts diverged: %d vs %d", a.Flipped(), b.Flipped())
	}
}
