package faultnet

// Gray-failure (Slow) plan tests: per-direction selection, linear ramp,
// seeded intermittency, byte-rate throttling, and the wake contract that
// lifting the fault releases sleepers — the chaos primitives the
// fail-slow detection and hedging planes are exercised against.

import (
	"testing"
	"time"

	"repro/internal/rpc"
)

func TestSlowDelaysCallAndLifts(t *testing.T) {
	inj := NewInjector(Plan{Kind: Slow, Delay: 60 * time.Millisecond})
	_, addr := startServer(t, inj)
	c := rpc.Dial(addr, 1).WithOptions(rpc.Options{CallTimeout: 5 * time.Second})
	defer c.Close()

	start := time.Now()
	if err := ping(c); err != nil {
		t.Fatalf("slow connection must still answer: %v", err)
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("slowed call finished in %v, want ≥ 60ms", el)
	}

	inj.Set(Plan{})
	start = time.Now()
	if err := ping(c); err != nil {
		t.Fatalf("after lifting Slow: %v", err)
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("lifted plan still slow: %v", el)
	}
}

func TestSlowDirectionSelection(t *testing.T) {
	inj := NewInjector(Plan{Kind: Slow, Delay: 100 * time.Millisecond, Dir: Inbound})
	if d, _ := inj.slowDelay(Outbound, 64); d != 0 {
		t.Fatalf("Inbound-only plan delayed an Outbound I/O by %v", d)
	}
	if d, _ := inj.slowDelay(Inbound, 64); d != 100*time.Millisecond {
		t.Fatalf("Inbound delay = %v, want 100ms", d)
	}
	// The zero Dir means Both.
	inj.Set(Plan{Kind: Slow, Delay: 10 * time.Millisecond})
	for _, dir := range []Direction{Inbound, Outbound} {
		if d, _ := inj.slowDelay(dir, 64); d != 10*time.Millisecond {
			t.Fatalf("zero-Dir plan: direction %d delay = %v, want 10ms", dir, d)
		}
	}
	// A non-Slow plan never delays.
	inj.Set(Plan{Kind: Delay, Delay: time.Second})
	if d, _ := inj.slowDelay(Inbound, 64); d != 0 {
		t.Fatalf("non-Slow plan leaked a slow delay of %v", d)
	}
}

func TestSlowRampStartsNearZero(t *testing.T) {
	inj := NewInjector(Plan{Kind: Slow, Delay: 200 * time.Millisecond, Ramp: time.Hour})
	// Immediately after install the ramp has barely begun: the delay must
	// be a tiny fraction of the target, not the full 200ms.
	if d, _ := inj.slowDelay(Inbound, 64); d > 10*time.Millisecond {
		t.Fatalf("ramped delay right after install = %v, want ≈0", d)
	}
	// Without a ramp the full delay applies from the first I/O.
	inj.Set(Plan{Kind: Slow, Delay: 200 * time.Millisecond})
	if d, _ := inj.slowDelay(Inbound, 64); d != 200*time.Millisecond {
		t.Fatalf("unramped delay = %v, want 200ms", d)
	}
}

func TestSlowDelayOneInIsSeeded(t *testing.T) {
	draw := func(seed int64, n int) []bool {
		inj := NewInjector(Plan{Kind: Slow, Delay: time.Millisecond, DelayOneIn: 3, Seed: seed})
		out := make([]bool, n)
		for i := range out {
			d, _ := inj.slowDelay(Inbound, 64)
			out[i] = d > 0
		}
		return out
	}
	a, b := draw(42, 200), draw(42, 200)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged across same-seed injectors", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("DelayOneIn=3 delayed %d of %d calls; want intermittent", hits, len(a))
	}
}

func TestSlowRateChargesTransmissionTime(t *testing.T) {
	inj := NewInjector(Plan{Kind: Slow, Rate: 1000}) // 1000 B/s, no base delay
	if d, _ := inj.slowDelay(Outbound, 500); d != 500*time.Millisecond {
		t.Fatalf("500 B at 1000 B/s = %v, want 500ms", d)
	}
}

func TestSlowLiftReleasesSleepers(t *testing.T) {
	inj := NewInjector(Plan{Kind: Slow, Delay: time.Hour})
	_, addr := startServer(t, inj)
	c := rpc.Dial(addr, 1).WithOptions(rpc.Options{CallTimeout: 10 * time.Second})
	defer c.Close()

	done := make(chan error, 1)
	go func() { done <- ping(c) }()
	time.Sleep(50 * time.Millisecond)
	inj.Set(Plan{})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released call failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lifting the Slow plan did not release the sleeping I/O")
	}
}
