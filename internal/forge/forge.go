// Package forge is the reproduction of the paper's FORGE-based policy
// simulation (§3.2): it samples sets of applications from the 189-scenario
// MareNostrum 4 survey, lets every arbitration policy allocate a pool of
// I/O nodes to each set, and aggregates the resulting bandwidth, producing
// the data behind Figures 2 and 3 and the §3.2 headline statistics.
//
// Like the paper, an "application" here is one of the surveyed access
// patterns, ready to run; its bandwidth curve comes from the performance
// model standing in for the MN4 measurements.
package forge

import (
	"fmt"
	"math/rand"

	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/stats"
)

// Config controls a simulation campaign.
type Config struct {
	// Sets is the number of random application sets (the paper uses
	// 10,000).
	Sets int
	// AppsPerSet is the number of applications drawn per set (paper: 16).
	AppsPerSet int
	// PoolSizes are the available-I/O-node counts to sweep (the paper
	// sweeps 0..128 in steps of 8).
	PoolSizes []int
	// Seed makes the sampling reproducible.
	Seed int64
	// Model predicts scenario bandwidth; nil means the calibrated default.
	Model *perfmodel.Model
}

// DefaultConfig returns the paper's §3.2 campaign parameters.
func DefaultConfig() Config {
	sizes := make([]int, 0, 17)
	for n := 0; n <= 128; n += 8 {
		sizes = append(sizes, n)
	}
	return Config{Sets: 10000, AppsPerSet: 16, PoolSizes: sizes, Seed: 42}
}

// SetResult is one application set's aggregate bandwidth (MB/s) per policy
// per pool size. A NaN-free representation: missing entries mean the policy
// was not applicable at that pool size (e.g. STATIC with zero I/O nodes).
type SetResult map[string]map[int]float64

// Campaign is the outcome of a full simulation run.
type Campaign struct {
	Config  Config
	Results []SetResult
	// Policies records the policy names in presentation order.
	Policies []string
}

// scenarios converts the survey into arbitration applications.
func scenarios(m *perfmodel.Model) []policy.Application {
	pats := pattern.MN4Survey()
	curves := m.SurveyCurves()
	apps := make([]policy.Application, len(pats))
	for i, p := range pats {
		apps[i] = policy.Application{
			ID:        fmt.Sprintf("s%03d", i),
			Nodes:     p.Nodes,
			Processes: p.Processes(),
			Curve:     curves[i],
		}
	}
	return apps
}

// Policies returns the §3.2 policy roster in the paper's presentation
// order.
func Policies() []policy.Policy {
	return []policy.Policy{
		policy.Zero{},
		policy.One{},
		policy.Static{},
		policy.Proportional{},
		policy.Proportional{ByProcesses: true},
		policy.MCKP{},
		policy.Oracle{},
	}
}

// Run executes the campaign: cfg.Sets random draws of cfg.AppsPerSet
// scenarios, each evaluated under every policy and pool size.
func Run(cfg Config) (*Campaign, error) {
	if cfg.Sets <= 0 || cfg.AppsPerSet <= 0 || len(cfg.PoolSizes) == 0 {
		return nil, fmt.Errorf("forge: invalid config %+v", cfg)
	}
	m := cfg.Model
	if m == nil {
		m = perfmodel.Default()
	}
	all := scenarios(m)
	if cfg.AppsPerSet > len(all) {
		return nil, fmt.Errorf("forge: set size %d exceeds %d scenarios", cfg.AppsPerSet, len(all))
	}
	pols := Policies()
	camp := &Campaign{Config: cfg, Results: make([]SetResult, 0, cfg.Sets)}
	for _, p := range pols {
		camp.Policies = append(camp.Policies, p.Name())
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	for s := 0; s < cfg.Sets; s++ {
		idx := rng.Perm(len(all))[:cfg.AppsPerSet]
		apps := make([]policy.Application, 0, cfg.AppsPerSet)
		for j, i := range idx {
			a := all[i]
			// Distinct IDs: the same scenario may repeat across sets,
			// and IDs must be unique within a set.
			a.ID = fmt.Sprintf("a%02d-%s", j, a.ID)
			apps = append(apps, a)
		}
		res := make(SetResult, len(pols))
		for _, p := range pols {
			series := make(map[int]float64, len(cfg.PoolSizes))
			for _, pool := range cfg.PoolSizes {
				alloc, err := p.Allocate(apps, pool)
				if err != nil {
					continue // policy not applicable at this pool size
				}
				bw, err := policy.SumBandwidth(apps, alloc)
				if err != nil {
					return nil, fmt.Errorf("forge: %s at pool %d: %w", p.Name(), pool, err)
				}
				series[pool] = bw.GBps()
			}
			res[p.Name()] = series
		}
		camp.Results = append(camp.Results, res)
	}
	return camp, nil
}

// MedianSeries produces the Figure 2 data: for each policy, the median
// across sets of the aggregate bandwidth (GB/s) at each pool size.
// Pool sizes where a policy was never applicable are omitted.
func (c *Campaign) MedianSeries() map[string]map[int]float64 {
	out := make(map[string]map[int]float64, len(c.Policies))
	for _, name := range c.Policies {
		series := make(map[int]float64)
		for _, pool := range c.Config.PoolSizes {
			var vals []float64
			for _, r := range c.Results {
				if v, ok := r[name][pool]; ok {
					vals = append(vals, v)
				}
			}
			if len(vals) > 0 {
				series[pool] = stats.Median(vals)
			}
		}
		out[name] = series
	}
	return out
}

// RatioBand is a min/median/max band of per-set ratios at one pool size.
type RatioBand struct {
	Pool                 int
	Min, Median, Max     float64
	Mean                 float64
	SetsBelowParityCount int // sets where the ratio dipped below 1.0
}

// RatioSeries produces the Figure 3 data: for each pool size, the
// distribution of the per-set ratio between two policies' aggregates
// (num ÷ den, the paper uses MCKP ÷ STATIC).
func (c *Campaign) RatioSeries(num, den string) []RatioBand {
	var out []RatioBand
	for _, pool := range c.Config.PoolSizes {
		var ratios []float64
		below := 0
		for _, r := range c.Results {
			n, okN := r[num][pool]
			d, okD := r[den][pool]
			if !okN || !okD || d == 0 {
				continue
			}
			rat := n / d
			if rat < 1 {
				below++
			}
			ratios = append(ratios, rat)
		}
		if len(ratios) == 0 {
			continue
		}
		out = append(out, RatioBand{
			Pool:                 pool,
			Min:                  stats.Min(ratios),
			Median:               stats.Median(ratios),
			Max:                  stats.Max(ratios),
			Mean:                 stats.Mean(ratios),
			SetsBelowParityCount: below,
		})
	}
	return out
}

// Headlines summarizes the §3.2 comparison statistics.
type Headlines struct {
	// OneVsZeroMedianSlowdownPct is the median per-set slowdown of the
	// ONE policy relative to ZERO (paper: 82.11%).
	OneVsZeroMedianSlowdownPct float64
	// OracleVsZero{Min,Median,Max}BoostPct is the per-set improvement of
	// ORACLE over ZERO (paper: 0.83% / 25.63% / 121.68%).
	OracleVsZeroMinBoostPct    float64
	OracleVsZeroMedianBoostPct float64
	OracleVsZeroMaxBoostPct    float64
}

// ComputeHeadlines derives the §3.2 headline statistics from the campaign.
// Ratios are computed at the largest pool size, where every policy is
// applicable and unconstrained, matching the paper's framing of ZERO, ONE
// and ORACLE as pool-independent diagnostics.
func (c *Campaign) ComputeHeadlines() Headlines {
	pool := c.Config.PoolSizes[len(c.Config.PoolSizes)-1]
	var slowdowns, boosts []float64
	for _, r := range c.Results {
		zero, okZ := r["ZERO"][pool]
		one, okO := r["ONE"][pool]
		oracle, okR := r["ORACLE"][pool]
		if okZ && okO && one > 0 {
			slowdowns = append(slowdowns, (zero/one-1)*100)
		}
		if okZ && okR && zero > 0 {
			boosts = append(boosts, (oracle/zero-1)*100)
		}
	}
	return Headlines{
		OneVsZeroMedianSlowdownPct: stats.Median(slowdowns),
		OracleVsZeroMinBoostPct:    stats.Min(boosts),
		OracleVsZeroMedianBoostPct: stats.Median(boosts),
		OracleVsZeroMaxBoostPct:    stats.Max(boosts),
	}
}
