// Package forge is the reproduction of the paper's FORGE-based policy
// simulation (§3.2): it samples sets of applications from the 189-scenario
// MareNostrum 4 survey, lets every arbitration policy allocate a pool of
// I/O nodes to each set, and aggregates the resulting bandwidth, producing
// the data behind Figures 2 and 3 and the §3.2 headline statistics.
//
// Like the paper, an "application" here is one of the surveyed access
// patterns, ready to run; its bandwidth curve comes from the performance
// model standing in for the MN4 measurements.
package forge

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/stats"
)

// Config controls a simulation campaign.
type Config struct {
	// Sets is the number of random application sets (the paper uses
	// 10,000).
	Sets int
	// AppsPerSet is the number of applications drawn per set (paper: 16).
	AppsPerSet int
	// PoolSizes are the available-I/O-node counts to sweep (the paper
	// sweeps 0..128 in steps of 8).
	PoolSizes []int
	// Seed makes the sampling reproducible.
	Seed int64
	// Model predicts scenario bandwidth; nil means the calibrated default.
	Model *perfmodel.Model
	// Workers bounds the number of goroutines evaluating application sets
	// concurrently; 0 (or negative) selects GOMAXPROCS. Every worker count
	// produces byte-identical results: set s is always sampled from its own
	// RNG stream seeded with Seed+s, never from a shared generator.
	Workers int
}

// DefaultConfig returns the paper's §3.2 campaign parameters.
func DefaultConfig() Config {
	sizes := make([]int, 0, 17)
	for n := 0; n <= 128; n += 8 {
		sizes = append(sizes, n)
	}
	return Config{Sets: 10000, AppsPerSet: 16, PoolSizes: sizes, Seed: 42}
}

// SetResult is one application set's aggregate bandwidth (MB/s) per policy
// per pool size. A NaN-free representation: missing entries mean the policy
// was not applicable at that pool size (e.g. STATIC with zero I/O nodes).
type SetResult map[string]map[int]float64

// Campaign is the outcome of a full simulation run.
type Campaign struct {
	Config  Config
	Results []SetResult
	// Policies records the policy names in presentation order.
	Policies []string
}

// scenarios converts the survey into arbitration applications.
func scenarios(m *perfmodel.Model) []policy.Application {
	pats := pattern.MN4Survey()
	curves := m.SurveyCurves()
	apps := make([]policy.Application, len(pats))
	for i, p := range pats {
		apps[i] = policy.Application{
			ID:        fmt.Sprintf("s%03d", i),
			Nodes:     p.Nodes,
			Processes: p.Processes(),
			Curve:     curves[i],
		}
	}
	return apps
}

// Policies returns the §3.2 policy roster in the paper's presentation
// order.
func Policies() []policy.Policy {
	return []policy.Policy{
		policy.Zero{},
		policy.One{},
		policy.Static{},
		policy.Proportional{},
		policy.Proportional{ByProcesses: true},
		policy.MCKP{},
		policy.Oracle{},
	}
}

// Run executes the campaign: cfg.Sets random draws of cfg.AppsPerSet
// scenarios, each evaluated under every policy and pool size. Sets are
// fanned out over cfg.Workers goroutines; because each set draws from its
// own seeded RNG stream, the outcome is identical for every worker count.
func Run(cfg Config) (*Campaign, error) {
	if cfg.Sets <= 0 || cfg.AppsPerSet <= 0 || len(cfg.PoolSizes) == 0 {
		return nil, fmt.Errorf("forge: invalid config %+v", cfg)
	}
	all := scenarios(campaignModel(cfg))
	if cfg.AppsPerSet > len(all) {
		return nil, fmt.Errorf("forge: set size %d exceeds %d scenarios", cfg.AppsPerSet, len(all))
	}
	pols := Policies()
	camp := &Campaign{Config: cfg, Results: make([]SetResult, cfg.Sets)}
	for _, p := range pols {
		camp.Policies = append(camp.Policies, p.Name())
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Sets {
		workers = cfg.Sets
	}

	var (
		next atomic.Int64 // next set index to claim
		wg   sync.WaitGroup

		// The first error by set order, so failures are as deterministic
		// as the results themselves. errSet doubles as the abort signal.
		errMu  sync.Mutex
		runErr error
		errSet = int64(cfg.Sets)
	)
	fail := func(s int, err error) {
		errMu.Lock()
		if int64(s) < errSet {
			errSet, runErr = int64(s), err
		}
		errMu.Unlock()
	}
	aborted := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return errSet < int64(cfg.Sets)
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1) - 1)
				if s >= cfg.Sets || aborted() {
					return
				}
				res, err := runSet(cfg, all, pols, s)
				if err != nil {
					fail(s, err)
					return
				}
				camp.Results[s] = res
			}
		}()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	return camp, nil
}

// campaignModel resolves cfg's performance model (nil selects the
// calibrated default).
func campaignModel(cfg Config) *perfmodel.Model {
	if cfg.Model != nil {
		return cfg.Model
	}
	return perfmodel.Default()
}

// runSet samples and evaluates one application set. It owns a private RNG
// stream (seeded with cfg.Seed+s), making it independent of every other set
// and safe to run from any goroutine.
func runSet(cfg Config, all []policy.Application, pols []policy.Policy, s int) (SetResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(s)))
	idx := rng.Perm(len(all))[:cfg.AppsPerSet]
	apps := make([]policy.Application, 0, cfg.AppsPerSet)
	for j, i := range idx {
		a := all[i]
		// Distinct IDs: the same scenario may repeat across sets,
		// and IDs must be unique within a set.
		a.ID = fmt.Sprintf("a%02d-%s", j, a.ID)
		apps = append(apps, a)
	}
	res := make(SetResult, len(pols))
	for _, p := range pols {
		series := make(map[int]float64, len(cfg.PoolSizes))
		for _, pool := range cfg.PoolSizes {
			alloc, err := p.Allocate(apps, pool)
			if err != nil {
				continue // policy not applicable at this pool size
			}
			bw, err := policy.SumBandwidth(apps, alloc)
			if err != nil {
				return nil, fmt.Errorf("forge: set %d: %s at pool %d: %w", s, p.Name(), pool, err)
			}
			series[pool] = bw.GBps()
		}
		res[p.Name()] = series
	}
	return res, nil
}

// MedianSeries produces the Figure 2 data: for each policy, the median
// across sets of the aggregate bandwidth (GB/s) at each pool size.
// Pool sizes where a policy was never applicable are omitted.
func (c *Campaign) MedianSeries() map[string]map[int]float64 {
	out := make(map[string]map[int]float64, len(c.Policies))
	for _, name := range c.Policies {
		series := make(map[int]float64)
		for _, pool := range c.Config.PoolSizes {
			var vals []float64
			for _, r := range c.Results {
				if v, ok := r[name][pool]; ok {
					vals = append(vals, v)
				}
			}
			if len(vals) > 0 {
				series[pool] = stats.Median(vals)
			}
		}
		out[name] = series
	}
	return out
}

// RatioBand is a min/median/max band of per-set ratios at one pool size.
type RatioBand struct {
	Pool                 int
	Min, Median, Max     float64
	Mean                 float64
	SetsBelowParityCount int // sets where the ratio dipped below 1.0
}

// RatioSeries produces the Figure 3 data: for each pool size, the
// distribution of the per-set ratio between two policies' aggregates
// (num ÷ den, the paper uses MCKP ÷ STATIC).
func (c *Campaign) RatioSeries(num, den string) []RatioBand {
	var out []RatioBand
	for _, pool := range c.Config.PoolSizes {
		var ratios []float64
		below := 0
		for _, r := range c.Results {
			n, okN := r[num][pool]
			d, okD := r[den][pool]
			if !okN || !okD || d == 0 {
				continue
			}
			rat := n / d
			if rat < 1 {
				below++
			}
			ratios = append(ratios, rat)
		}
		if len(ratios) == 0 {
			continue
		}
		out = append(out, RatioBand{
			Pool:                 pool,
			Min:                  stats.Min(ratios),
			Median:               stats.Median(ratios),
			Max:                  stats.Max(ratios),
			Mean:                 stats.Mean(ratios),
			SetsBelowParityCount: below,
		})
	}
	return out
}

// Headlines summarizes the §3.2 comparison statistics.
type Headlines struct {
	// OneVsZeroMedianSlowdownPct is the median per-set slowdown of the
	// ONE policy relative to ZERO (paper: 82.11%).
	OneVsZeroMedianSlowdownPct float64
	// OracleVsZero{Min,Median,Max}BoostPct is the per-set improvement of
	// ORACLE over ZERO (paper: 0.83% / 25.63% / 121.68%).
	OracleVsZeroMinBoostPct    float64
	OracleVsZeroMedianBoostPct float64
	OracleVsZeroMaxBoostPct    float64
}

// ComputeHeadlines derives the §3.2 headline statistics from the campaign.
// Ratios are computed at the largest pool size, where every policy is
// applicable and unconstrained, matching the paper's framing of ZERO, ONE
// and ORACLE as pool-independent diagnostics.
func (c *Campaign) ComputeHeadlines() Headlines {
	pool := c.Config.PoolSizes[len(c.Config.PoolSizes)-1]
	var slowdowns, boosts []float64
	for _, r := range c.Results {
		zero, okZ := r["ZERO"][pool]
		one, okO := r["ONE"][pool]
		oracle, okR := r["ORACLE"][pool]
		if okZ && okO && one > 0 {
			slowdowns = append(slowdowns, (zero/one-1)*100)
		}
		if okZ && okR && zero > 0 {
			boosts = append(boosts, (oracle/zero-1)*100)
		}
	}
	return Headlines{
		OneVsZeroMedianSlowdownPct: stats.Median(slowdowns),
		OracleVsZeroMinBoostPct:    stats.Min(boosts),
		OracleVsZeroMedianBoostPct: stats.Median(boosts),
		OracleVsZeroMaxBoostPct:    stats.Max(boosts),
	}
}
