package forge

import (
	"testing"

	"repro/internal/perfmodel"
)

// smallConfig keeps unit tests fast; the full 10,000-set campaign runs in
// the benchmark harness.
func smallConfig() Config {
	return Config{
		Sets:       200,
		AppsPerSet: 16,
		PoolSizes:  []int{0, 8, 16, 24, 32, 48, 64, 96, 128},
		Seed:       42,
	}
}

func runSmall(t *testing.T) *Campaign {
	t.Helper()
	c, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunInvalidConfig(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Sets: 1, AppsPerSet: 0, PoolSizes: []int{8}},
		{Sets: 1, AppsPerSet: 16},
		{Sets: 1, AppsPerSet: 500, PoolSizes: []int{8}},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets = 20
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		for name, series := range a.Results[i] {
			for pool, v := range series {
				if b.Results[i][name][pool] != v {
					t.Fatalf("set %d %s pool %d: %v != %v", i, name, pool, v, b.Results[i][name][pool])
				}
			}
		}
	}
}

func TestCampaignShape(t *testing.T) {
	c := runSmall(t)
	if len(c.Results) != 200 {
		t.Fatalf("want 200 set results, got %d", len(c.Results))
	}
	if len(c.Policies) != 7 {
		t.Fatalf("want 7 policies, got %v", c.Policies)
	}
	for _, name := range []string{"ZERO", "ONE", "STATIC", "SIZE", "PROCESS", "MCKP", "ORACLE"} {
		found := false
		for _, p := range c.Policies {
			if p == name {
				found = true
			}
		}
		if !found {
			t.Errorf("policy %s missing from campaign", name)
		}
	}
}

// TestFigure2Shape: the qualitative Figure 2 findings. MCKP dominates every
// capacity-respecting policy, converges to ORACLE as the pool grows, and
// the size-proportional policies trail far behind at moderate pools.
func TestFigure2Shape(t *testing.T) {
	c := runSmall(t)
	med := c.MedianSeries()

	// MCKP ≥ STATIC, SIZE, PROCESS at every pool size where both exist.
	for _, other := range []string{"STATIC", "SIZE", "PROCESS"} {
		for pool, v := range med[other] {
			if m, ok := med["MCKP"][pool]; ok && m < v-1e-9 {
				t.Errorf("median MCKP (%v) below %s (%v) at pool %d", m, other, v, pool)
			}
		}
	}
	// MCKP matches ORACLE at the largest pool (128 = 8 × 16 apps).
	if m, o := med["MCKP"][128], med["ORACLE"][128]; m < o*0.999 {
		t.Errorf("MCKP at 128 (%v) should reach ORACLE (%v)", m, o)
	}
	// ...but not at the smallest nonzero pool.
	if m, o := med["MCKP"][8], med["ORACLE"][8]; m >= o {
		t.Errorf("MCKP at 8 (%v) should trail ORACLE (%v)", m, o)
	}
	// ONE is the worst forwarding policy in the median (the paper's
	// "initial impact" finding).
	if one, mckp := med["ONE"][64], med["MCKP"][64]; one >= mckp {
		t.Errorf("ONE (%v) should trail MCKP (%v)", one, mckp)
	}
}

// TestFigure2MCKPMatchesOracleMidPool: the paper reports the median MCKP
// curve reaching ORACLE around 56 available I/O nodes. Allow a band.
func TestFigure2MCKPMatchesOracleMidPool(t *testing.T) {
	cfg := smallConfig()
	cfg.PoolSizes = []int{32, 40, 48, 56, 64, 72, 80, 128}
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	med := c.MedianSeries()
	oracle := med["ORACLE"][128]
	crossover := -1
	for _, pool := range cfg.PoolSizes {
		if med["MCKP"][pool] >= oracle*0.995 {
			crossover = pool
			break
		}
	}
	if crossover < 0 {
		t.Fatal("MCKP never reached ORACLE")
	}
	if crossover < 32 || crossover > 80 {
		t.Errorf("MCKP/ORACLE crossover at %d IONs, paper reports ≈56 (accepting 32..80)", crossover)
	}
	t.Logf("median MCKP reaches ORACLE at %d available I/O nodes (paper: 56)", crossover)
}

// TestFigure3Band: MCKP never falls below STATIC (minimum ratio ≥ 1), the
// median improvement peaks at a small-to-moderate pool, and improvements
// shrink as the pool grows (the paper's Figure 3 shape).
func TestFigure3Band(t *testing.T) {
	c := runSmall(t)
	bands := c.RatioSeries("MCKP", "STATIC")
	if len(bands) == 0 {
		t.Fatal("no ratio bands")
	}
	var peakPool int
	peak := 0.0
	for _, b := range bands {
		if b.Min < 1-1e-9 {
			t.Errorf("pool %d: MCKP/STATIC minimum %v below parity (%d sets)", b.Pool, b.Min, b.SetsBelowParityCount)
		}
		if b.Median > peak {
			peak, peakPool = b.Median, b.Pool
		}
	}
	if peak < 1.5 {
		t.Errorf("peak median MCKP/STATIC ratio %v too small; paper reports ≈5.11", peak)
	}
	if peakPool > 48 {
		t.Errorf("median ratio should peak at a scarce pool, peaked at %d", peakPool)
	}
	// Ratios at the largest pool are smaller than at the peak.
	last := bands[len(bands)-1]
	if last.Median >= peak {
		t.Errorf("ratio should shrink as the pool grows: last median %v ≥ peak %v", last.Median, peak)
	}
	t.Logf("MCKP/STATIC median peaks at %.2f× with %d IONs; at 128 IONs %.2f× (paper: 5.11× at 24, 1.6–2.7× at 64–128)",
		peak, peakPool, last.Median)
}

// TestHeadlines: §3.2's ZERO/ONE/ORACLE statistics have the right signs and
// magnitudes — ONE is a large median slowdown versus ZERO, and ORACLE's
// boost over ZERO is positive with a modest median.
func TestHeadlines(t *testing.T) {
	c := runSmall(t)
	h := c.ComputeHeadlines()
	if h.OneVsZeroMedianSlowdownPct < 20 {
		t.Errorf("ONE-vs-ZERO median slowdown = %.1f%%, paper reports 82.11%% (want >20%%)",
			h.OneVsZeroMedianSlowdownPct)
	}
	if h.OracleVsZeroMinBoostPct < 0 {
		t.Errorf("ORACLE should never lose to ZERO, min boost %.2f%%", h.OracleVsZeroMinBoostPct)
	}
	if h.OracleVsZeroMedianBoostPct <= 0 || h.OracleVsZeroMedianBoostPct > 150 {
		t.Errorf("ORACLE median boost %.1f%% out of plausible range (paper: 25.63%%)",
			h.OracleVsZeroMedianBoostPct)
	}
	if h.OracleVsZeroMaxBoostPct < h.OracleVsZeroMedianBoostPct {
		t.Error("max boost below median boost")
	}
	t.Logf("headlines: %+v", h)
}

func TestRatioSeriesUnknownPolicy(t *testing.T) {
	c := runSmall(t)
	if bands := c.RatioSeries("NOPE", "STATIC"); len(bands) != 0 {
		t.Fatalf("unknown policy should produce no bands, got %d", len(bands))
	}
}

func TestScenarioConversion(t *testing.T) {
	apps := scenarios(perfmodel.Default())
	if len(apps) != 189 {
		t.Fatalf("want 189 scenario apps, got %d", len(apps))
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.ID] {
			t.Fatalf("duplicate scenario ID %s", a.ID)
		}
		seen[a.ID] = true
		if a.Curve.Len() == 0 {
			t.Fatalf("scenario %s has no curve", a.ID)
		}
	}
}
