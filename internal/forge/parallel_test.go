package forge

import (
	"reflect"
	"testing"
)

// TestParallelCampaignMatchesSerial is the engine's determinism contract:
// the same seed produces byte-identical per-set results, medians, ratio
// bands and headlines at every worker count, because each set draws from
// its own RNG stream rather than a shared generator.
func TestParallelCampaignMatchesSerial(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets = 64

	serialCfg := cfg
	serialCfg.Workers = 1
	serial, err := Run(serialCfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 8} {
		parCfg := cfg
		parCfg.Workers = workers
		par, err := Run(parCfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par.Results) != len(serial.Results) {
			t.Fatalf("workers=%d: %d results, serial has %d", workers, len(par.Results), len(serial.Results))
		}
		for s := range serial.Results {
			if !reflect.DeepEqual(serial.Results[s], par.Results[s]) {
				t.Fatalf("workers=%d: set %d differs:\nserial %v\nparallel %v",
					workers, s, serial.Results[s], par.Results[s])
			}
		}
		if !reflect.DeepEqual(serial.MedianSeries(), par.MedianSeries()) {
			t.Fatalf("workers=%d: Figure 2 medians differ", workers)
		}
		if !reflect.DeepEqual(serial.RatioSeries("MCKP", "STATIC"), par.RatioSeries("MCKP", "STATIC")) {
			t.Fatalf("workers=%d: Figure 3 bands differ", workers)
		}
		if serial.ComputeHeadlines() != par.ComputeHeadlines() {
			t.Fatalf("workers=%d: headlines differ", workers)
		}
	}
}

// TestWorkerCountEdgeCases: more workers than sets, zero (= GOMAXPROCS) and
// negative worker counts all run and agree.
func TestWorkerCountEdgeCases(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets = 3
	var ref *Campaign
	for _, workers := range []int{-1, 0, 1, 3, 16} {
		c := cfg
		c.Workers = workers
		camp, err := Run(c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(camp.Results) != cfg.Sets {
			t.Fatalf("workers=%d: %d results", workers, len(camp.Results))
		}
		for s, r := range camp.Results {
			if len(r) == 0 {
				t.Fatalf("workers=%d: set %d empty", workers, s)
			}
		}
		if ref == nil {
			ref = camp
		} else if !reflect.DeepEqual(ref.Results, camp.Results) {
			t.Fatalf("workers=%d: results differ from reference", workers)
		}
	}
}

// TestRunSetIndependence: evaluating a set in isolation gives the same
// result as evaluating it as part of a campaign — there is no hidden
// cross-set state.
func TestRunSetIndependence(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets = 10
	camp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := scenarios(campaignModel(cfg))
	pols := Policies()
	for _, s := range []int{0, 4, 9} {
		res, err := runSet(cfg, all, pols, s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, camp.Results[s]) {
			t.Fatalf("set %d evaluated standalone differs from campaign", s)
		}
	}
}
