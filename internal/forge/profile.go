package forge

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/pattern"
	"repro/internal/pfs"
	"repro/internal/units"
)

// ProfileRequest is one I/O request of an application profile — the unit
// FORGE replays. A profile captures what an application does without
// running the application itself.
type ProfileRequest struct {
	Rank   int
	Path   string
	Offset int64
	Size   int64
	Op     pattern.Operation
}

// BuildProfile synthesizes the request stream of an access pattern for the
// given total volume, laid out under dir:
//
//   - file-per-process: each rank streams its own file sequentially;
//   - shared contiguous: rank r owns the r-th contiguous segment of one
//     file and streams it;
//   - shared 1D-strided: rank r owns every P-th block of one file.
//
// Requests are emitted in per-rank program order; ranks interleave at
// replay time, as on a real machine.
func BuildProfile(p pattern.Pattern, totalBytes int64, dir string) ([]ProfileRequest, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	procs := p.Processes()
	perRank := totalBytes / int64(procs)
	if perRank < p.RequestSize {
		perRank = p.RequestSize // at least one request per rank
	}
	reqsPerRank := perRank / p.RequestSize
	var out []ProfileRequest
	for r := 0; r < procs; r++ {
		for i := int64(0); i < reqsPerRank; i++ {
			req := ProfileRequest{Rank: r, Size: p.RequestSize, Op: p.Operation}
			switch {
			case p.Layout == pattern.FilePerProcess:
				req.Path = fmt.Sprintf("%s/rank%05d", dir, r)
				req.Offset = i * p.RequestSize
			case p.Spatiality == pattern.Contiguous:
				req.Path = dir + "/shared"
				req.Offset = int64(r)*perRank + i*p.RequestSize
			default: // 1D-strided
				req.Path = dir + "/shared"
				req.Offset = (i*int64(procs) + int64(r)) * p.RequestSize
			}
			out = append(out, req)
		}
	}
	return out, nil
}

// ReplayReport summarizes a profile replay.
type ReplayReport struct {
	Requests  int
	Bytes     int64
	Elapsed   time.Duration
	Bandwidth units.Bandwidth
}

// Replay issues a profile against fs, one goroutine per rank, each rank in
// program order — FORGE's execution model. Write payloads are synthesized;
// reads must find the data present (replay a write profile first, as FORGE
// does for read phases).
func Replay(fs pfs.FileSystem, profile []ProfileRequest) (ReplayReport, error) {
	if len(profile) == 0 {
		return ReplayReport{}, fmt.Errorf("forge: empty profile")
	}
	byRank := map[int][]ProfileRequest{}
	maxSize := int64(0)
	for _, r := range profile {
		byRank[r.Rank] = append(byRank[r.Rank], r)
		if r.Size > maxSize {
			maxSize = r.Size
		}
	}
	// When the target supports per-rank attribution (the Darshan-style
	// tracer), give each rank its own stream identity.
	type ranked interface {
		ForRank(rank int) pfs.FileSystem
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, len(byRank))
	for rank, reqs := range byRank {
		wg.Add(1)
		go func(rank int, reqs []ProfileRequest) {
			defer wg.Done()
			fs := fs
			if rv, ok := fs.(ranked); ok {
				fs = rv.ForRank(rank)
			}
			buf := make([]byte, maxSize)
			for i := range buf {
				buf[i] = byte(rank + i)
			}
			for _, q := range reqs {
				var err error
				if q.Op == pattern.Read {
					_, err = fs.Read(q.Path, q.Offset, buf[:q.Size])
				} else {
					_, err = fs.Write(q.Path, q.Offset, buf[:q.Size])
				}
				if err != nil {
					errs <- fmt.Errorf("forge: rank %d %s @%d: %w", rank, q.Path, q.Offset, err)
					return
				}
			}
		}(rank, reqs)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return ReplayReport{}, err
	}
	rep := ReplayReport{Requests: len(profile), Elapsed: time.Since(start)}
	for _, q := range profile {
		rep.Bytes += q.Size
	}
	rep.Bandwidth = units.Over(rep.Bytes, rep.Elapsed)
	return rep, nil
}
