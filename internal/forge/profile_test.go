package forge

import (
	"strings"
	"testing"

	"repro/internal/darshan"
	"repro/internal/pattern"
	"repro/internal/pfs"
	"repro/internal/units"
)

func tpat(nodes, ppn int, layout pattern.Layout, spat pattern.Spatiality, req int64) pattern.Pattern {
	return pattern.Pattern{Nodes: nodes, ProcsPerNod: ppn, Layout: layout,
		Spatiality: spat, RequestSize: req, Operation: pattern.Write}
}

func TestBuildProfileShapes(t *testing.T) {
	// File-per-process: one file per rank, sequential offsets.
	p := tpat(2, 4, pattern.FilePerProcess, pattern.Contiguous, 1024)
	prof, err := BuildProfile(p, 64*1024, "/x")
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]bool{}
	for _, q := range prof {
		files[q.Path] = true
	}
	if len(files) != 8 {
		t.Fatalf("fpp should produce 8 files, got %d", len(files))
	}

	// Shared strided: one file, interleaved offsets.
	p = tpat(2, 4, pattern.SharedFile, pattern.Strided1D, 1024)
	prof, err = BuildProfile(p, 64*1024, "/x")
	if err != nil {
		t.Fatal(err)
	}
	files = map[string]bool{}
	for _, q := range prof {
		files[q.Path] = true
		if !strings.HasSuffix(q.Path, "/shared") {
			t.Fatalf("strided profile path: %s", q.Path)
		}
	}
	if len(files) != 1 {
		t.Fatalf("shared profile should use one file, got %d", len(files))
	}
	// First round of requests: rank r at block r.
	if prof[0].Offset != 0 {
		t.Fatalf("rank 0 first offset %d", prof[0].Offset)
	}
}

func TestBuildProfileInvalid(t *testing.T) {
	if _, err := BuildProfile(pattern.Pattern{}, 1024, "/x"); err == nil {
		t.Fatal("invalid pattern should fail")
	}
}

func TestReplayWritesLand(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	p := tpat(2, 4, pattern.SharedFile, pattern.Contiguous, 512)
	prof, err := BuildProfile(p, 32*1024, "/r")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(store, prof)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes != 32*1024 || rep.Requests != len(prof) || rep.Bandwidth <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	info, err := store.Stat("/r/shared")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 32*1024 {
		t.Fatalf("file size %d", info.Size)
	}
}

func TestReplayEmptyProfile(t *testing.T) {
	if _, err := Replay(pfs.NewStore(pfs.Config{}), nil); err == nil {
		t.Fatal("empty profile should fail")
	}
}

// TestProfileRoundTripThroughDarshan is the self-consistency loop: build a
// profile from a pattern, replay it under the Darshan-style tracer, and
// the extracted pattern must match the original — layout, spatiality, and
// request size.
func TestProfileRoundTripThroughDarshan(t *testing.T) {
	cases := []pattern.Pattern{
		tpat(2, 8, pattern.FilePerProcess, pattern.Contiguous, 4*units.KiB),
		tpat(2, 8, pattern.SharedFile, pattern.Contiguous, 8*units.KiB),
		tpat(2, 8, pattern.SharedFile, pattern.Strided1D, 4*units.KiB),
	}
	for _, want := range cases {
		tr := darshan.NewTracer(pfs.NewStore(pfs.Config{}))
		prof, err := BuildProfile(want, 512*units.KiB, "/rt")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(tr, prof); err != nil {
			t.Fatal(err)
		}
		got := tr.Report().ExtractPattern(want.Nodes, want.Processes())
		if got.Layout != want.Layout || got.Spatiality != want.Spatiality {
			t.Errorf("%v: extracted %v/%v", want, got.Layout, got.Spatiality)
		}
		if got.RequestSize != want.RequestSize {
			t.Errorf("%v: extracted request size %d", want, got.RequestSize)
		}
	}
}

// TestReplayReadAfterWrite: FORGE read phases replay against data written
// by a prior write profile.
func TestReplayReadAfterWrite(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	w := tpat(2, 4, pattern.SharedFile, pattern.Contiguous, 1024)
	prof, err := BuildProfile(w, 16*1024, "/rw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(store, prof); err != nil {
		t.Fatal(err)
	}
	r := w
	r.Operation = pattern.Read
	rprof, err := BuildProfile(r, 16*1024, "/rw")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(store, rprof)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes != 16*1024 {
		t.Fatalf("read bytes %d", rep.Bytes)
	}
}
