package forge

import (
	"testing"
)

// TestMCKPDominanceAcrossSeeds: the Figure 3 invariant (MCKP never below
// STATIC, and at least matching every other capacity-respecting policy's
// median) must hold regardless of the sampling seed.
func TestMCKPDominanceAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 7, 1234, 99999} {
		cfg := Config{
			Sets:       60,
			AppsPerSet: 16,
			PoolSizes:  []int{8, 24, 64, 128},
			Seed:       seed,
		}
		camp, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, r := range camp.Results {
			for _, pool := range cfg.PoolSizes {
				m, okM := r["MCKP"][pool]
				for _, other := range []string{"STATIC", "SIZE", "PROCESS"} {
					if v, ok := r[other][pool]; ok && okM && m < v-1e-9 {
						t.Fatalf("seed %d pool %d: MCKP %v below %s %v", seed, pool, m, other, v)
					}
				}
				if o, ok := r["ORACLE"][pool]; ok && okM && m > o+1e-9 {
					t.Fatalf("seed %d pool %d: MCKP %v above ORACLE %v", seed, pool, m, o)
				}
			}
		}
	}
}

// TestSetSizeVariants: the campaign machinery works for set sizes other
// than the paper's 16.
func TestSetSizeVariants(t *testing.T) {
	for _, appsPerSet := range []int{1, 4, 32} {
		cfg := Config{Sets: 10, AppsPerSet: appsPerSet, PoolSizes: []int{16}, Seed: 5}
		camp, err := Run(cfg)
		if err != nil {
			t.Fatalf("apps=%d: %v", appsPerSet, err)
		}
		med := camp.MedianSeries()
		if med["MCKP"][16] <= 0 {
			t.Fatalf("apps=%d: empty MCKP median", appsPerSet)
		}
	}
}
