package fwd

import (
	"sync"
	"testing"

	"repro/internal/pfs"
	"repro/internal/rpc"
)

// stampRecorder is an rpc server that records the dedup identity of every
// write it sees and optionally marks responses replayed.
type stampRecorder struct {
	mu       sync.Mutex
	stamps   []rpc.Message // identity fields only
	replayed bool
}

func (r *stampRecorder) handle(req *rpc.Message) *rpc.Message {
	r.mu.Lock()
	r.stamps = append(r.stamps, rpc.Message{ClientID: req.ClientID, Seq: req.Seq, Offset: req.Offset})
	r.mu.Unlock()
	return &rpc.Message{
		Op: req.Op, Path: req.Path, Trace: req.Trace,
		Size: int64(len(req.Data)), Replayed: r.replayed,
	}
}

func startRecorder(t *testing.T, r *stampRecorder) string {
	t.Helper()
	srv := rpc.NewServer(r.handle)
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// TestDedupStampsWrites: with Dedup on, every forwarded write chunk carries
// the client's ID and a unique monotonically increasing seq.
func TestDedupStampsWrites(t *testing.T) {
	rec := &stampRecorder{}
	addr := startRecorder(t, rec)
	// CoalesceLimit == ChunkSize keeps every chunk its own wire request,
	// so the per-request stamping contract is observable chunk by chunk.
	c, err := NewClient(Config{AppID: "app", Direct: pfs.NewStore(pfs.Config{}), ChunkSize: 4, CoalesceLimit: 4, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIONs([]string{addr})

	if _, err := c.Write("/f", 0, make([]byte, 12)); err != nil { // 3 chunks
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.stamps) != 3 {
		t.Fatalf("saw %d writes, want 3", len(rec.stamps))
	}
	seen := map[uint64]bool{}
	for i, s := range rec.stamps {
		if s.ClientID == "" {
			t.Fatalf("write %d unstamped: %+v", i, s)
		}
		if s.ClientID != rec.stamps[0].ClientID {
			t.Fatalf("client id varies: %q vs %q", s.ClientID, rec.stamps[0].ClientID)
		}
		if s.Seq == 0 || seen[s.Seq] {
			t.Fatalf("write %d: seq %d zero or repeated", i, s.Seq)
		}
		seen[s.Seq] = true
	}
}

// TestDedupOffByDefault: the zero-value config sends unstamped frames.
func TestDedupOffByDefault(t *testing.T) {
	rec := &stampRecorder{}
	addr := startRecorder(t, rec)
	c := newTestClient(t, pfs.NewStore(pfs.Config{}), 4)
	c.SetIONs([]string{addr})
	if _, err := c.Write("/f", 0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i, s := range rec.stamps {
		if s.ClientID != "" || s.Seq != 0 {
			t.Fatalf("write %d stamped without Dedup: %+v", i, s)
		}
	}
}

// TestDistinctClientsDistinctIdentity: two clients sharing an AppID must
// not collide in a daemon's dedup window.
func TestDistinctClientsDistinctIdentity(t *testing.T) {
	cfg := Config{AppID: "app", Direct: pfs.NewStore(pfs.Config{}), Dedup: true}
	a, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.clientID == "" || a.clientID == b.clientID {
		t.Fatalf("client ids must be unique and non-empty: %q vs %q", a.clientID, b.clientID)
	}
}

// TestReplayedWritesCounted: responses marked Replayed land in the
// fwd_replayed_writes_total counter and in Stats.
func TestReplayedWritesCounted(t *testing.T) {
	rec := &stampRecorder{replayed: true}
	addr := startRecorder(t, rec)
	c, err := NewClient(Config{AppID: "app", Direct: pfs.NewStore(pfs.Config{}), ChunkSize: 4, CoalesceLimit: 4, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIONs([]string{addr})
	if _, err := c.Write("/f", 0, make([]byte, 8)); err != nil { // 2 chunks
		t.Fatal(err)
	}
	if got := c.Stats().ReplayedWrites; got != 2 {
		t.Fatalf("ReplayedWrites = %d, want 2", got)
	}
}
