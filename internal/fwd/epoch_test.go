package fwd

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mapping"
	"repro/internal/pfs"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// fencedStack starts n fake I/O-node servers that share one fence floor
// and apply accepted writes to ionStore: a write stamped below the fence
// is rejected with the stale-epoch wire error, exactly as a real daemon
// with EpochFencing would. lastEpoch records the stamp of the most recent
// write request seen by any node.
func fencedStack(t *testing.T, n int, ionStore *pfs.Store) (addrs []string, fence, lastEpoch *atomic.Uint64) {
	t.Helper()
	fence = &atomic.Uint64{}
	lastEpoch = &atomic.Uint64{}
	for i := 0; i < n; i++ {
		srv := rpc.NewServer(func(req *rpc.Message) *rpc.Message {
			if req.Op == rpc.OpWrite {
				lastEpoch.Store(req.Epoch)
				if f := fence.Load(); req.Epoch != 0 && req.Epoch < f {
					return &rpc.Message{Op: req.Op, Err: rpc.StaleEpochErrText(req.Epoch, f), Epoch: f}
				}
				k, err := ionStore.Write(req.Path, req.Offset, req.Data)
				if err != nil {
					return &rpc.Message{Op: req.Op, Err: err.Error()}
				}
				return &rpc.Message{Op: req.Op, Size: int64(k)}
			}
			return &rpc.Message{Op: req.Op}
		})
		addr, err := srv.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, addr)
	}
	return addrs, fence, lastEpoch
}

func epochClient(t *testing.T, direct pfs.FileSystem, reg *telemetry.Registry, wait time.Duration) *Client {
	t.Helper()
	c, err := NewClient(Config{
		AppID: "eapp", Direct: direct, ChunkSize: 1024,
		EpochFencing: true, EpochWait: wait, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestWriteRemapsOnStaleEpoch pins the remap-and-retry class: a fenced
// write is not an error — the client waits for the post-recovery mapping,
// rebuilds its routing, and the bytes land through the forwarding path,
// counted exactly once.
func TestWriteRemapsOnStaleEpoch(t *testing.T) {
	ionStore := pfs.NewStore(pfs.Config{})
	directStore := pfs.NewStore(pfs.Config{})
	reg := telemetry.New()
	addrs, fence, _ := fencedStack(t, 2, ionStore)
	c := epochClient(t, directStore, reg, 5*time.Second)

	c.ApplyMap(mapping.Map{Version: 1, IONs: map[string][]string{"eapp": addrs}})
	fence.Store(2) // the arbiter died and recovered: epoch 1 is revoked

	// The post-recovery publish arrives while the write is waiting.
	go func() {
		time.Sleep(50 * time.Millisecond)
		c.ApplyMap(mapping.Map{Version: 2, Fence: 2, IONs: map[string][]string{"eapp": addrs}})
	}()

	data := bytes.Repeat([]byte{5}, 4096) // 4 chunks: exercises span rebuild
	k, err := c.Write("/f", 0, data)
	if err != nil {
		t.Fatalf("fenced write surfaced an error: %v", err)
	}
	if k != len(data) {
		t.Fatalf("short write after remap: %d", k)
	}
	buf := make([]byte, len(data))
	if _, err := ionStore.Read("/f", 0, buf); err != nil {
		t.Fatalf("bytes not in the forwarding backend: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("retried write corrupted")
	}
	if _, err := directStore.Read("/f", 0, make([]byte, 1)); err == nil {
		t.Fatal("remapped write leaked onto the direct path")
	}
	st := c.Stats()
	if st.BytesOut != int64(len(data)) {
		t.Fatalf("BytesOut = %d, want %d (bytes must count once across the retry)", st.BytesOut, len(data))
	}
	if v := reg.Counter(`epoch_stale_retries_total{app="eapp"}`).Value(); v == 0 {
		t.Fatal("epoch_stale_retries_total not incremented")
	}
}

// TestStaleEpochFallsBackDirect: when no fresher mapping arrives inside
// the EpochWait budget, the fenced bytes degrade to the direct PFS path —
// byte-safe, because the fenced write never reached the backend.
func TestStaleEpochFallsBackDirect(t *testing.T) {
	ionStore := pfs.NewStore(pfs.Config{})
	directStore := pfs.NewStore(pfs.Config{})
	reg := telemetry.New()
	addrs, fence, _ := fencedStack(t, 2, ionStore)
	c := epochClient(t, directStore, reg, 30*time.Millisecond)

	c.ApplyMap(mapping.Map{Version: 1, IONs: map[string][]string{"eapp": addrs}})
	fence.Store(2)

	data := bytes.Repeat([]byte{9}, 2048)
	k, err := c.Write("/g", 0, data)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if k != len(data) {
		t.Fatalf("short write: %d", k)
	}
	buf := make([]byte, len(data))
	if _, err := directStore.Read("/g", 0, buf); err != nil {
		t.Fatalf("bytes not on the direct path: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("direct fallback corrupted the payload")
	}
	if _, err := ionStore.Read("/g", 0, make([]byte, 1)); err == nil {
		t.Fatal("fenced write reached the forwarding backend")
	}
	if st := c.Stats(); st.BytesOut != int64(len(data)) {
		t.Fatalf("BytesOut = %d, want %d", st.BytesOut, len(data))
	}
}

// TestWriteStampsViewEpoch: forwarded writes carry the mapping version of
// the route view they were built from; a same-version fence-only
// republish still applies (the recovery path re-announces the surviving
// allocation under a raised floor without re-solving).
func TestWriteStampsViewEpoch(t *testing.T) {
	ionStore := pfs.NewStore(pfs.Config{})
	reg := telemetry.New()
	addrs, _, lastEpoch := fencedStack(t, 1, ionStore)
	c := epochClient(t, pfs.NewStore(pfs.Config{}), reg, time.Second)

	c.ApplyMap(mapping.Map{Version: 7, IONs: map[string][]string{"eapp": addrs}})
	if _, err := c.Write("/h", 0, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if got := lastEpoch.Load(); got != 7 {
		t.Fatalf("write stamped epoch %d, want 7", got)
	}

	// Same version, higher fence: must be applied, not deduped.
	c.ApplyMap(mapping.Map{Version: 7, Fence: 7, IONs: map[string][]string{"eapp": nil}})
	if got := c.IONs(); len(got) != 0 {
		t.Fatalf("fence-only republish ignored: allocation still %v", got)
	}
}

// TestEpochOffByDefault pins the opt-in contract on the client side: no
// EpochFencing means unstamped writes and no epoch_* telemetry series.
func TestEpochOffByDefault(t *testing.T) {
	ionStore := pfs.NewStore(pfs.Config{})
	reg := telemetry.New()
	addrs, _, lastEpoch := fencedStack(t, 1, ionStore)
	c, err := NewClient(Config{AppID: "eapp", Direct: pfs.NewStore(pfs.Config{}), ChunkSize: 1024, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ApplyMap(mapping.Map{Version: 3, IONs: map[string][]string{"eapp": addrs}})
	if _, err := c.Write("/i", 0, []byte("wxyz")); err != nil {
		t.Fatal(err)
	}
	if got := lastEpoch.Load(); got != 0 {
		t.Fatalf("unfenced client stamped epoch %d", got)
	}
	for name := range reg.Snapshot().Counters {
		if strings.HasPrefix(name, "epoch_") {
			t.Fatalf("epoch series registered without fencing: %s", name)
		}
	}
}
