package fwd

// Failover tests: when an allocated I/O node becomes unreachable, the
// client degrades that node's chunks to the direct PFS path instead of
// surfacing transport errors to the application.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/rpc"
)

// failoverOptions makes transport failures fast and deterministic: one
// retry, a breaker that opens after the first failed call (1 call × 2
// attempts = 2 consecutive failures), and a cooldown long enough that the
// breaker stays open for the remainder of the test.
func failoverOptions() rpc.Options {
	return rpc.Options{
		CallTimeout:      500 * time.Millisecond,
		MaxRetries:       1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	}
}

func newFailoverClient(t *testing.T, direct pfs.FileSystem, chunk int64) *Client {
	t.Helper()
	c, err := NewClient(Config{
		AppID:     "app",
		Direct:    direct,
		ChunkSize: chunk,
		RPC:       failoverOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestWriteFailsOverToDirectPFS(t *testing.T) {
	store, addrs, daemons := testStack(t, 1)
	c := newFailoverClient(t, store, 64)
	c.SetIONs(addrs)

	if err := c.Create("/f"); err != nil {
		t.Fatal(err)
	}
	first := bytes.Repeat([]byte{1}, 200)
	if _, err := c.Write("/f", 0, first); err != nil {
		t.Fatalf("forwarded write: %v", err)
	}

	daemons[0].Close() // the only I/O node dies mid-run

	second := bytes.Repeat([]byte{2}, 200)
	n, err := c.Write("/f", 200, second)
	if err != nil {
		t.Fatalf("write after ION death must fail over, got %v", err)
	}
	if n != len(second) {
		t.Fatalf("failover write wrote %d of %d bytes", n, len(second))
	}

	// Byte conservation: both halves are in the backing store.
	got := make([]byte, 400)
	if _, err := store.Read("/f", 0, got); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got[:200], first) || !bytes.Equal(got[200:], second) {
		t.Fatal("failover lost or corrupted bytes")
	}

	s := c.Stats()
	if s.FailoverOps == 0 {
		t.Fatal("fwd_failover_ops_total never incremented")
	}
	if s.BytesOut != 400 {
		t.Fatalf("BytesOut = %d, want 400 (failover must not re-count)", s.BytesOut)
	}
}

func TestReadFailsOverToDirectPFS(t *testing.T) {
	store, addrs, daemons := testStack(t, 1)
	c := newFailoverClient(t, store, 64)
	c.SetIONs(addrs)

	want := bytes.Repeat([]byte{7}, 300)
	if err := store.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write("/f", 0, want); err != nil {
		t.Fatal(err)
	}

	daemons[0].Close()

	got := make([]byte, 300)
	n, err := c.Read("/f", 0, got)
	if err != nil {
		t.Fatalf("read after ION death must fail over, got %v", err)
	}
	if n != 300 || !bytes.Equal(got, want) {
		t.Fatalf("failover read returned %d bytes, content match=%v", n, bytes.Equal(got, want))
	}
	if s := c.Stats(); s.FailoverOps == 0 || s.BytesIn != 300 {
		t.Fatalf("stats after read failover: %+v", s)
	}

	// Short reads keep their semantics on the failover path too.
	long := make([]byte, 400)
	n, err = c.Read("/f", 0, long)
	if n != 300 || !errors.Is(err, pfs.ErrShortRead) {
		t.Fatalf("failover short read: n=%d err=%v", n, err)
	}
}

func TestMetadataFailsOverToDirectPFS(t *testing.T) {
	store, addrs, daemons := testStack(t, 1)
	c := newFailoverClient(t, store, 64)
	c.SetIONs(addrs)
	daemons[0].Close()

	if err := c.Create("/m"); err != nil {
		t.Fatalf("Create failover: %v", err)
	}
	if _, err := c.Write("/m", 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	fi, err := c.Stat("/m")
	if err != nil {
		t.Fatalf("Stat failover: %v", err)
	}
	if fi.Size != 3 {
		t.Fatalf("Stat size = %d, want 3", fi.Size)
	}
	if err := c.Fsync("/m"); err != nil {
		t.Fatalf("Fsync failover: %v", err)
	}
	if err := c.Remove("/m"); err != nil {
		t.Fatalf("Remove failover: %v", err)
	}
	if _, err := store.Stat("/m"); !errors.Is(err, pfs.ErrNotExist) {
		t.Fatal("Remove failover did not reach the store")
	}
	if s := c.Stats(); s.FailoverOps < 4 {
		t.Fatalf("FailoverOps = %d, want ≥4", s.FailoverOps)
	}
}

// TestFailoverRejoinsForwardingOnRemap: after degrading to direct, a remap
// that excludes the dead node routes new requests through live I/O nodes
// again — the failover is per-node, not a one-way door out of forwarding.
func TestFailoverRejoinsForwardingOnRemap(t *testing.T) {
	store, addrs, daemons := testStack(t, 2)
	c := newFailoverClient(t, store, 64)
	c.SetIONs(addrs[:1]) // all chunks route to daemon 0

	if err := c.Create("/f"); err != nil {
		t.Fatal(err)
	}
	daemons[0].Close()
	if _, err := c.Write("/f", 0, bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatalf("failover write: %v", err)
	}
	failoversBefore := c.Stats().FailoverOps
	if failoversBefore == 0 {
		t.Fatal("expected failover before remap")
	}

	c.SetIONs(addrs[1:]) // re-arbitration excludes the dead node
	if _, err := c.Write("/f", 100, bytes.Repeat([]byte{2}, 100)); err != nil {
		t.Fatalf("forwarded write after remap: %v", err)
	}
	if got := c.Stats().FailoverOps; got != failoversBefore {
		t.Fatalf("remapped writes still failing over: %d → %d", failoversBefore, got)
	}
	got := make([]byte, 200)
	if _, err := store.Read("/f", 0, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(1)
		if i >= 100 {
			want = 2
		}
		if b != want {
			t.Fatalf("byte %d = %d, want %d", i, b, want)
		}
	}
}

// TestApplicationErrorsAreNotFailedOver: errors the server *returned* (the
// node is alive and answered) must surface as-is — falling back to the PFS
// would mask real application errors and double-apply semantics.
func TestApplicationErrorsAreNotFailedOver(t *testing.T) {
	store, addrs, _ := testStack(t, 1)
	c := newFailoverClient(t, store, 64)
	c.SetIONs(addrs)

	if _, err := c.Stat("/missing"); !errors.Is(err, pfs.ErrNotExist) {
		t.Fatalf("Stat of missing file: want ErrNotExist, got %v", err)
	}
	if s := c.Stats(); s.FailoverOps != 0 {
		t.Fatalf("application error triggered failover: %+v", s)
	}
}
