package fwd

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/agios"
	"repro/internal/faultfs"
	"repro/internal/ion"
	"repro/internal/pfs"
)

// TestBackendFaultsSurfaceThroughStack injects failures at the PFS behind
// the I/O-node daemons and checks the forwarding client surfaces them
// instead of reporting phantom success.
func TestBackendFaultsSurfaceThroughStack(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	faulty := faultfs.Wrap(store, faultfs.Config{FailEvery: 3, Kind: faultfs.KindWrite})
	d := ion.New(ion.Config{ID: "flaky", Scheduler: agios.NewFIFO()}, faulty)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	c, err := NewClient(Config{AppID: "app", Direct: store, ChunkSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIONs([]string{addr})

	failures := 0
	for i := 0; i < 30; i++ {
		if _, err := c.Write("/f", int64(i)*256, make([]byte, 256)); err != nil {
			failures++
			if !strings.Contains(err.Error(), "injected fault") {
				t.Fatalf("unexpected error text: %v", err)
			}
		}
	}
	if failures == 0 {
		t.Fatal("injected faults never reached the client")
	}
	if got := faulty.Injected(); got == 0 {
		t.Fatal("injector never fired")
	}
}

// TestDirectFaultsSurface checks the direct (0-ION) path too.
func TestDirectFaultsSurface(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	faulty := faultfs.Wrap(store, faultfs.Config{FailEvery: 1, Kind: faultfs.KindRead})
	c, err := NewClient(Config{AppID: "app", Direct: faulty})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write("/f", 0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("/f", 0, make([]byte, 2)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("want injected error on direct read, got %v", err)
	}
}

// TestPartialWriteFailureLeavesConsistentPrefix: when one chunk of a
// multi-chunk write fails, the chunks already written are durable and the
// client reports the failure (no silent data loss, no phantom bytes).
func TestPartialWriteFailureLeavesConsistentPrefix(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	// Fail the 3rd eligible write that reaches the backend.
	faulty := faultfs.Wrap(store, faultfs.Config{FailEvery: 3, Kind: faultfs.KindWrite})
	d := ion.New(ion.Config{ID: "flaky", Scheduler: agios.NewFIFO(), Dispatchers: 1}, faulty)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// CoalesceLimit == ChunkSize: each chunk stays its own dispatched
	// write, so the 3rd-write fault lands mid-operation as intended.
	c, err := NewClient(Config{AppID: "app", Direct: store, ChunkSize: 128, CoalesceLimit: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIONs([]string{addr})

	// 5 chunks; the 3rd dispatched write fails.
	n, err := c.Write("/p", 0, make([]byte, 5*128))
	if err == nil {
		t.Fatal("expected a chunk failure")
	}
	if n >= 5*128 {
		t.Fatalf("write reported %d bytes despite failure", n)
	}
	// Whatever was reported written is really there.
	info, statErr := store.Stat("/p")
	if statErr != nil {
		t.Fatal(statErr)
	}
	if info.Size < int64(n) {
		t.Fatalf("client claims %d bytes, backend has %d", n, info.Size)
	}
}
