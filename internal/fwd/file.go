package fwd

import (
	"errors"
	"io"
	"sync"

	"repro/internal/pfs"
)

// File is a cursor-based convenience handle over any pfs.FileSystem,
// giving application kernels the familiar open/write/read/seek/close
// shape. It is safe for concurrent use; concurrent writers share one
// cursor, so parallel workloads normally use WriteAt/ReadAt.
type File struct {
	fs   pfs.FileSystem
	path string

	mu  sync.Mutex
	off int64
}

// Open returns a handle on path, creating the file if missing.
func Open(fs pfs.FileSystem, path string) (*File, error) {
	if _, err := fs.Stat(path); err != nil {
		if !errors.Is(err, pfs.ErrNotExist) {
			return nil, err
		}
		if err := fs.Create(path); err != nil {
			return nil, err
		}
	}
	return &File{fs: fs, path: path}, nil
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Write appends p at the cursor.
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.fs.Write(f.path, f.off, p)
	f.off += int64(n)
	return n, err
}

// WriteAt writes p at offset off without moving the cursor.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	return f.fs.Write(f.path, off, p)
}

// Read fills p from the cursor.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.fs.Read(f.path, f.off, p)
	f.off += int64(n)
	if errors.Is(err, pfs.ErrShortRead) {
		if n == 0 {
			return 0, io.EOF
		}
		return n, nil
	}
	return n, err
}

// ReadAt fills p from offset off without moving the cursor.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.fs.Read(f.path, off, p)
	if errors.Is(err, pfs.ErrShortRead) {
		return n, io.EOF
	}
	return n, err
}

// Seek repositions the cursor following io.Seeker semantics.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		info, err := f.fs.Stat(f.path)
		if err != nil {
			return f.off, err
		}
		base = info.Size
	default:
		return f.off, errors.New("fwd: invalid whence")
	}
	pos := base + offset
	if pos < 0 {
		return f.off, errors.New("fwd: negative seek position")
	}
	f.off = pos
	return pos, nil
}

// Size reports the file's current size.
func (f *File) Size() (int64, error) {
	info, err := f.fs.Stat(f.path)
	return info.Size, err
}

// Sync flushes the file.
func (f *File) Sync() error { return f.fs.Fsync(f.path) }

// Close releases the handle (the underlying file systems are handle-free,
// so this is a barrier only).
func (f *File) Close() error { return f.fs.Fsync(f.path) }
