package fwd

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/pfs"
)

func TestFileSequentialWriteRead(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	f, err := Open(store, "/seq")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("abc")); err != nil {
			t.Fatal(err)
		}
	}
	if sz, err := f.Size(); err != nil || sz != 9 {
		t.Fatalf("size: %d %v", sz, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := io.ReadFull(f, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abcabcabc" {
		t.Fatalf("content: %q", buf)
	}
	// Cursor at end: next read is EOF.
	if _, err := f.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileAtVariants(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	f, err := Open(store, "/at")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("world"), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "helloworld" {
		t.Fatalf("content: %q", buf)
	}
	// ReadAt past end: io.EOF with partial data.
	n, err := f.ReadAt(make([]byte, 20), 5)
	if n != 5 || err != io.EOF {
		t.Fatalf("past-end ReadAt: %d %v", n, err)
	}
}

func TestFileSeekWhence(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	f, _ := Open(store, "/seek")
	f.Write(bytes.Repeat([]byte{1}, 100))
	if pos, err := f.Seek(-10, io.SeekEnd); err != nil || pos != 90 {
		t.Fatalf("SeekEnd: %d %v", pos, err)
	}
	if pos, err := f.Seek(5, io.SeekCurrent); err != nil || pos != 95 {
		t.Fatalf("SeekCurrent: %d %v", pos, err)
	}
	if _, err := f.Seek(-1000, io.SeekCurrent); err == nil {
		t.Fatal("negative position should fail")
	}
	if _, err := f.Seek(0, 42); err == nil {
		t.Fatal("bad whence should fail")
	}
}

func TestOpenExisting(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	store.Write("/exists", 0, []byte("data"))
	f, err := Open(store, "/exists")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 4 {
		t.Fatalf("open must not truncate, size=%d", sz)
	}
	if f.Path() != "/exists" {
		t.Fatalf("path: %s", f.Path())
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}
