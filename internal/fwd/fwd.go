// Package fwd is the forwarding client: the GekkoFWD client role. It
// exposes the same POSIX-like FileSystem interface as the PFS itself, so
// application kernels are oblivious to whether their I/O goes directly to
// the parallel file system or through I/O nodes.
//
// Where the real GekkoFWD intercepts system calls via the GekkoFS client
// library, Go offers no LD_PRELOAD equivalent, so the interposition point
// is this library boundary (see DESIGN.md §1). Everything downstream is
// structurally faithful:
//
//   - requests are split into fixed-size chunks;
//   - each chunk is routed to one of the application's allocated I/O nodes
//     by hashing the file path and chunk index (GekkoFS's distribution,
//     restricted to the allocation as in GekkoFWD); contiguous chunks that
//     land on the same I/O node are coalesced into one wire request (up to
//     CoalesceLimit), so a large sequential write costs one RPC per
//     responsible node, not one per chunk;
//   - the allocation can change at any time without disrupting the
//     application: a background watcher applies mapping updates, and
//     in-flight requests complete on the old routes;
//   - an empty allocation means direct PFS access;
//   - an unreachable I/O node (rpc.ErrUnavailable: deadlines and retries
//     exhausted, or its circuit breaker open) degrades that node's chunks
//     to direct PFS access — counted as fwd_failover_ops_total — until a
//     fresh mapping re-routes them.
//
// The data path is built to stay allocation-free per operation: the path
// is FNV-hashed once per op and extended per chunk index without
// constructing a hasher (see fnvString/fnvChunk), the route table is an
// immutable snapshot loaded with one atomic read (no lock, no map lookup
// per chunk), and span building works in a caller-provided stack buffer.
package fwd

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/latency"
	"repro/internal/mapping"
	"repro/internal/pfs"
	"repro/internal/qos"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// DefaultChunkSize is the GekkoFS chunking unit (512 KiB).
const DefaultChunkSize = 512 * units.KiB

// DefaultCoalesceLimit caps a coalesced span (one wire request) at 4 MiB:
// large enough to amortize per-RPC overhead over eight default chunks,
// small enough that one span cannot monopolize an I/O node's queue or
// defeat the chunk-level fan-out across nodes.
const DefaultCoalesceLimit = 4 * units.MiB

// Config parameterizes a client.
type Config struct {
	// AppID is the application identity used to look up allocations in
	// mapping updates.
	AppID string
	// Direct is the file system used when the application has no I/O
	// nodes (and for deployments without forwarding).
	Direct pfs.FileSystem
	// ChunkSize is the request-splitting unit; ≤0 selects
	// DefaultChunkSize.
	ChunkSize int64
	// CoalesceLimit caps how many contiguous bytes routed to the same I/O
	// node are merged into a single wire request; ≤0 selects
	// DefaultCoalesceLimit, and any value is clamped to rpc.MaxData so a
	// span always fits one frame. A limit below ChunkSize effectively
	// disables coalescing (every span is a single chunk).
	CoalesceLimit int64
	// PoolSize is the RPC connection pool per I/O node; ≤0 selects the
	// transport default.
	PoolSize int
	// RPC configures the failure-tolerance behaviour of every connection
	// this client dials: per-call deadlines, bounded retries, circuit
	// breaker. The zero value keeps the transport's legacy behaviour
	// (block forever, no retries, no breaker).
	RPC rpc.Options
	// Dedup stamps every forwarded write with this client's (clientID,
	// seq) identity so daemons with a dedup window can recognise
	// transport-retried writes and replay the cached outcome instead of
	// re-applying them (exactly-once; see DESIGN.md "Integrity model").
	// Off by default: unstamped frames are wire-identical to the
	// pre-integrity protocol.
	Dedup bool
	// Throttle configures per-I/O-node adaptive admission (AIMD window,
	// hint-paced busy retries, degrade-to-direct under sustained
	// saturation). The zero value disables throttling; busy responses are
	// then still honoured with hint-paced retries before degrading.
	Throttle ThrottleConfig
	// QoS is the service class this application's traffic belongs to
	// (see internal/qos): its token bucket gates admission to the
	// forwarding path ahead of span building, its tier rides every wire
	// request as the frame priority byte, and scavenger-tier traffic
	// degrades to the direct PFS path when its bucket is empty. Nil (the
	// default) means unclassed: no admission check beyond one nil test,
	// no priority byte, byte-for-byte pre-QoS behaviour.
	QoS *qos.Class
	// EpochFencing stamps every forwarded write with the epoch of the
	// route view it was built from (the mapping version the arbiter
	// published). A daemon whose fence floor is above that epoch rejects
	// the write as rpc.ErrStaleEpoch — a remap signal, not a failure: the
	// client waits for a fresher mapping (up to EpochWait), rebuilds the
	// span routing against it, and retries; if no fresher view arrives it
	// falls back to the direct PFS path, which is byte-safe because a
	// fenced write was never applied. Off by default: requests carry no
	// epoch trailer and are wire-identical to the pre-epoch protocol.
	EpochFencing bool
	// EpochWait bounds how long a fenced write waits for a post-recovery
	// mapping before degrading to the direct path; ≤0 selects 2s. Only
	// meaningful with EpochFencing.
	EpochWait time.Duration
	// Hedge configures tail-tolerant hedged requests (see hedge.go): a
	// span RPC that exceeds an adaptive per-I/O-node latency percentile
	// launches one budget-capped backup attempt — writes as a same-stamp
	// duplicate the daemon's dedup window makes exactly-once (so hedging
	// requires Dedup), reads against the direct PFS path. The zero value
	// disables hedging; the data path then pays one nil check.
	Hedge HedgeConfig
	// Latency, when set, receives one observation per successful span RPC
	// keyed by I/O-node address. Share it with the health prober's sketch
	// so fail-slow scoring sees client-observed service latency, not just
	// probe RTTs; hedging reads its deadlines from the same sketch. Nil
	// disables observation (and a hedging client creates a private one).
	Latency *latency.Sketch
	// Telemetry receives the client's metrics (app-labeled series:
	// fwd_bytes_out_total{app="…"}, …) and is propagated to the rpc
	// connections it dials. Nil selects a private registry so Stats()
	// always works.
	Telemetry *telemetry.Registry
	// Tracer opens one trace per file operation and threads its ID
	// through the rpc layer to the I/O nodes. Nil disables tracing.
	Tracer *telemetry.Tracer
}

// Stats counts client-side activity.
type Stats struct {
	ForwardedOps   int64 // wire requests issued (coalesced spans count once)
	DirectOps      int64
	FailoverOps    int64
	ShedResponses  int64 // busy responses observed (server-side sheds)
	DegradedOps    int64 // ops satisfied on the direct path due to overload
	ReplayedWrites int64 // write responses served from a daemon's dedup window
	BytesOut       int64
	BytesIn        int64
	RemapsApplied  int64
}

// routeView is an immutable snapshot of the routing state: the allocation
// and, position-aligned with it, the connections and throttle gates. The
// data path loads it with one atomic read per operation and never touches
// a lock or a map; SetIONs/ApplyMap publish a fresh snapshot on every
// remap.
type routeView struct {
	addrs []string
	conns []*rpc.Client
	gates []*ionGate // nil entries when throttling is disabled
	epoch uint64     // mapping version this view was built from (0 = manual SetIONs)
}

// Client is the forwarding client. It implements pfs.FileSystem.
type Client struct {
	cfg Config

	// clientID and seq are the exactly-once write identity (set when
	// cfg.Dedup is on). The ID is unique per Client instance so two
	// clients sharing an AppID never collide in a daemon's dedup window;
	// seq starts at 1 and a transport- or busy-retried span reuses the
	// seq of its first attempt (the retry loops sit below the stamping).
	clientID string
	seq      atomic.Uint64

	// view is the lock-free routing snapshot the data path reads; mu
	// guards the slow-path state it is built from (the allocation, the
	// pooled connection and gate maps, and the mapping version).
	view atomic.Pointer[routeView]

	mu    sync.Mutex
	addrs []string               // current allocation (empty = direct)
	conns map[string]*rpc.Client // address → pooled connection, kept across remaps
	gates map[string]*ionGate    // address → AIMD throttle gate, kept across remaps
	ver   uint64
	fence uint64 // highest revocation floor seen in a mapping update

	// Counters live on reg (app-labeled); coupled counters are updated in
	// one reg.Update group and Stats() reads under reg.View, so snapshots
	// are never torn (see ion.Daemon.Stats).
	reg   *telemetry.Registry
	stats struct {
		forwarded, direct, failover, bytesOut, bytesIn, remaps *telemetry.Counter
		shed, degraded, replayed                               *telemetry.Counter
		epochRetries                                           *telemetry.Counter // nil unless EpochFencing
	}

	// hedge is the hedged-request state (nil unless cfg.Hedge.Enabled —
	// the data path pays one nil check).
	hedge *hedgeState

	// qos is the admission state built from cfg.QoS (nil when the app is
	// unclassed — the forwarded data path then pays exactly one nil
	// check), and wirePrio is the priority byte stamped on every
	// forwarded request (0 = no trailer on the wire).
	qos      *qosState
	wirePrio uint8

	watchStop func()
	closed    atomic.Bool
}

// qosState is a classed client's admission machinery: the class, its
// token bucket, and the per-tenant observability series.
type qosState struct {
	class  *qos.Class
	bucket *qos.Bucket
	sleep  func(time.Duration) // pacing seam (time.Sleep in production)

	admitted *telemetry.Counter
	deferred *telemetry.Counter
	degraded *telemetry.Counter
	latency  *telemetry.Histogram
}

// degradeOrPace applies the class's admission policy to an op of n bytes.
// It reports true when the op must be satisfied on the direct PFS path
// (scavenger tier with an empty bucket — no debt, no queueing behind the
// bucket). Guaranteed and standard ops are never refused: an empty bucket
// defers them for the bucket's repayment time instead (pacing), so their
// admitted rate converges on the configured one while order is preserved.
func (q *qosState) degradeOrPace(n int64) (degrade bool) {
	if q.class.Tier == qos.TierScavenger {
		if !q.bucket.TryTake(n) {
			q.degraded.Inc()
			return true
		}
		q.admitted.Inc()
		return false
	}
	if d := q.bucket.Reserve(n); d > 0 {
		q.deferred.Inc()
		q.sleep(d)
	}
	q.admitted.Inc()
	return false
}

var _ pfs.FileSystem = (*Client)(nil)

// NewClient returns a client in direct mode; call SetIONs or Watch to
// attach it to a forwarding allocation.
func NewClient(cfg Config) (*Client, error) {
	if cfg.AppID == "" {
		return nil, errors.New("fwd: AppID is required")
	}
	if cfg.Direct == nil {
		return nil, errors.New("fwd: a direct file system is required")
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.CoalesceLimit <= 0 {
		cfg.CoalesceLimit = DefaultCoalesceLimit
	}
	if cfg.CoalesceLimit > rpc.MaxData {
		cfg.CoalesceLimit = rpc.MaxData
	}
	cfg.Throttle = cfg.Throttle.withDefaults()
	if cfg.Hedge.Enabled {
		if !cfg.Dedup {
			return nil, errors.New("fwd: hedged requests require Dedup (the daemon's dedup window is what makes a duplicated write exactly-once)")
		}
		cfg.Hedge = cfg.Hedge.withDefaults()
		if cfg.Latency == nil {
			cfg.Latency = latency.NewSketch(0)
		}
	}
	c := &Client{cfg: cfg, conns: make(map[string]*rpc.Client), gates: make(map[string]*ionGate)}
	c.reg = cfg.Telemetry
	if c.reg == nil {
		c.reg = telemetry.New()
	}
	label := fmt.Sprintf("{app=%q}", cfg.AppID)
	c.stats.forwarded = c.reg.Counter("fwd_forwarded_ops_total" + label)
	c.stats.direct = c.reg.Counter("fwd_direct_ops_total" + label)
	c.stats.failover = c.reg.Counter("fwd_failover_ops_total" + label)
	c.stats.bytesOut = c.reg.Counter("fwd_bytes_out_total" + label)
	c.stats.bytesIn = c.reg.Counter("fwd_bytes_in_total" + label)
	c.stats.remaps = c.reg.Counter("fwd_remaps_applied_total" + label)
	c.stats.shed = c.reg.Counter("fwd_shed_responses_total" + label)
	c.stats.degraded = c.reg.Counter("fwd_degraded_ops_total" + label)
	c.stats.replayed = c.reg.Counter("fwd_replayed_writes_total" + label)
	if cfg.Dedup {
		c.clientID = fmt.Sprintf("%s#%d", cfg.AppID, clientInstance.Add(1))
	}
	if cfg.EpochFencing {
		if cfg.EpochWait <= 0 {
			cfg.EpochWait = 2 * time.Second
		}
		c.cfg.EpochWait = cfg.EpochWait
		c.stats.epochRetries = c.reg.Counter("epoch_stale_retries_total" + label)
	}
	if cfg.Hedge.Enabled {
		c.hedge = &hedgeState{
			cfg:      cfg.Hedge,
			bucket:   hedgeBucket{tokens: cfg.Hedge.MaxTokens, max: cfg.Hedge.MaxTokens},
			launched: c.reg.Counter("fwd_hedge_launched_total" + label),
			wins:     c.reg.Counter("fwd_hedge_wins_total" + label),
			denied:   c.reg.Counter("fwd_hedge_denied_total" + label),
		}
	}
	if cfg.QoS != nil {
		c.wirePrio = cfg.QoS.WirePriority()
		c.qos = &qosState{
			class:    cfg.QoS,
			bucket:   qos.NewBucket(cfg.QoS.Rate, cfg.QoS.Burst, c.reg.Gauge("qos_tokens_x1000"+label)),
			sleep:    time.Sleep,
			admitted: c.reg.Counter("qos_admitted_total" + label),
			deferred: c.reg.Counter("qos_deferred_total" + label),
			degraded: c.reg.Counter("qos_degraded_total" + label),
			latency: c.reg.Histogram(
				fmt.Sprintf("qos_op_latency_seconds{class=%q}", cfg.QoS.Name),
				telemetry.LatencyBuckets()),
		}
	}
	return c, nil
}

// clientInstance distinguishes Client instances that share an AppID (e.g.
// one per rank) so their dedup identities never collide within a process.
var clientInstance atomic.Uint64

// SetIONs installs a new allocation. Connections to previously used I/O
// nodes are kept pooled so a later remap back is cheap and in-flight
// requests are never disturbed.
func (c *Client) SetIONs(addrs []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setIONsLocked(addrs)
}

// setIONsLocked installs an allocation and publishes the new route view.
// Callers hold c.mu.
func (c *Client) setIONsLocked(addrs []string) {
	c.addrs = append([]string(nil), addrs...)
	v := &routeView{
		addrs: c.addrs,
		conns: make([]*rpc.Client, len(addrs)),
		gates: make([]*ionGate, len(addrs)),
		epoch: c.ver,
	}
	for i, a := range addrs {
		if _, ok := c.conns[a]; !ok {
			c.conns[a] = rpc.Dial(a, c.cfg.PoolSize).
				WithOptions(c.cfg.RPC).
				Instrument(c.reg, c.cfg.Tracer)
		}
		v.conns[i] = c.conns[a]
		if c.cfg.Throttle.Enabled {
			if _, ok := c.gates[a]; !ok {
				c.gates[a] = newIonGate(c.cfg.Throttle,
					c.reg.Gauge(fmt.Sprintf("fwd_throttle_window_x1000{app=%q,ion=%q}", c.cfg.AppID, a)))
			}
			v.gates[i] = c.gates[a]
		}
	}
	c.view.Store(v)
	c.stats.remaps.Add(1)
}

// IONs returns the current allocation.
func (c *Client) IONs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.addrs...)
}

// ApplyMap installs the allocation a mapping update assigns to this
// application. Stale versions are ignored. The version check and the
// install happen under one critical section, so two updates delivered
// out of order can never leave the older allocation installed with the
// newer version recorded (the TOCTOU race the previous
// check-release-reacquire sequence allowed).
func (c *Client) ApplyMap(m mapping.Map) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// A map is fresh if its version advances — or, same-version, if its
	// fence does (an arbiter recovery republishes the surviving allocation
	// under a raised revocation floor without necessarily re-solving).
	// Version 0 always applies, exactly as before epochs existed.
	if m.Version != 0 && m.Version <= c.ver && m.Fence <= c.fence {
		return
	}
	c.ver = m.Version
	if m.Fence > c.fence {
		c.fence = m.Fence
	}
	c.setIONsLocked(m.For(c.cfg.AppID))
}

// Watch consumes mapping updates from ch (a mapping.Bus subscription or a
// mapping.Watcher) in a background goroutine until cancel is called or the
// channel closes. This is GekkoFWD's client-side remapping thread. The
// returned cancel is idempotent and safe to call concurrently.
func (c *Client) Watch(ch <-chan mapping.Map) (cancel func()) {
	stop := make(chan struct{})
	done := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case m, ok := <-ch:
				if !ok {
					return
				}
				c.ApplyMap(m)
			}
		}
	}()
	return func() {
		once.Do(func() { close(stop) })
		<-done
	}
}

// ReleaseConn closes and forgets the pooled connection (and throttle
// gate) for addr, provided addr is not in the current allocation. Remaps
// deliberately keep connections to former nodes pooled so a map-back is
// cheap; a decommissioned I/O node never comes back on its address, so
// the stack calls this when one leaves for good — otherwise an elastic
// pool would grow the conn table with every scale event. Releasing an
// unknown or still-allocated address is a no-op. Ops in flight on an old
// route view may see their calls fail on the closed connection; they
// take the same failover path as any other unreachable node.
func (c *Client) ReleaseConn(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.addrs {
		if a == addr {
			return
		}
	}
	if conn, ok := c.conns[addr]; ok {
		conn.Close()
		delete(c.conns, addr)
	}
	delete(c.gates, addr)
}

// Close releases all pooled connections.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.view.Store(nil)
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = map[string]*rpc.Client{}
	c.addrs = nil
	return nil
}

// Stats returns a consistent snapshot of client counters (read under the
// registry's view gate, so no grouped update is half-visible).
func (c *Client) Stats() Stats {
	var s Stats
	c.reg.View(func() {
		s = Stats{
			ForwardedOps:   c.stats.forwarded.Value(),
			DirectOps:      c.stats.direct.Value(),
			FailoverOps:    c.stats.failover.Value(),
			ShedResponses:  c.stats.shed.Value(),
			DegradedOps:    c.stats.degraded.Value(),
			ReplayedWrites: c.stats.replayed.Value(),
			BytesOut:       c.stats.bytesOut.Value(),
			BytesIn:        c.stats.bytesIn.Value(),
			RemapsApplied:  c.stats.remaps.Value(),
		}
	})
	return s
}

// trace opens a per-operation trace; the zero opTrace (tracing disabled)
// makes every method a no-op so the hot path pays only a nil check.
func (c *Client) trace(op, path string) opTrace {
	tr := c.cfg.Tracer.Start(c.cfg.AppID, op, path)
	if tr == nil {
		return opTrace{}
	}
	return opTrace{t: tr, start: time.Now()}
}

// opTrace pairs a telemetry trace with the operation start time so the
// "fwd" hop — covering chunking and RPC fan-out — is stamped at completion.
type opTrace struct {
	t     *telemetry.Trace
	start time.Time
}

// id returns the wire trace ID (0 when tracing is off).
func (t opTrace) id() uint64 { return t.t.TraceID() }

// done records the fwd hop and finishes the trace.
func (t opTrace) done(bytes int64, note string) {
	if t.t == nil {
		return
	}
	t.t.Hop("fwd", t.start, bytes, note)
	t.t.Finish()
}

// chunkNotes precomputes the common "chunks=N" hop notes so the data path
// never formats a string per operation (the Sprintf argument would be
// evaluated even with tracing off).
var chunkNotes = func() [17]string {
	var n [17]string
	for i := range n {
		n[i] = fmt.Sprintf("chunks=%d", i)
	}
	return n
}()

func chunkNote(n int) string {
	if n < len(chunkNotes) {
		return chunkNotes[n]
	}
	return fmt.Sprintf("chunks=%d", n)
}

// FNV-1a (64-bit) constants, inlined from hash/fnv so per-chunk routing
// never constructs a hasher or materializes index bytes.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvString extends an FNV-1a state with the bytes of s. Seed with
// fnvOffset64 for a fresh hash.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// fnvChunk extends a path hash with the chunk index, encoded as the same
// eight little-endian bytes the original hash/fnv-based routing wrote —
// TestRouteHashMatchesFNV pins the bit-for-bit equivalence, so chunk
// placement is unchanged across the rewrite.
func fnvChunk(h uint64, chunkIdx int64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = (h ^ uint64(byte(chunkIdx>>i))) * fnvPrime64
	}
	return h
}

// loadView returns the current routing snapshot (nil means direct mode).
func (c *Client) loadView() *routeView {
	v := c.view.Load()
	if v == nil || len(v.addrs) == 0 {
		return nil
	}
	return v
}

// route returns the connection for a chunk, or nil for direct mode.
func (c *Client) route(path string, chunkIdx int64) *rpc.Client {
	v := c.loadView()
	if v == nil {
		return nil
	}
	return v.conns[fnvChunk(fnvString(fnvOffset64, path), chunkIdx)%uint64(len(v.addrs))]
}

// metaTarget returns the connection and gate for metadata ops on path
// (nil for direct mode). Metadata always routes by path hash alone, like
// GekkoFS.
func (c *Client) metaTarget(path string) (*rpc.Client, *ionGate) {
	v := c.loadView()
	if v == nil {
		return nil, nil
	}
	i := fnvChunk(fnvString(fnvOffset64, path), 0) % uint64(len(v.addrs))
	return v.conns[i], v.gates[i]
}

// chunkSpan iterates the chunk-aligned extents of [off, off+n).
func (c *Client) chunkSpan(off, n int64, fn func(chunkIdx, off, n int64) error) error {
	cs := c.cfg.ChunkSize
	for n > 0 {
		idx := off / cs
		ext := cs - off%cs
		if ext > n {
			ext = n
		}
		if err := fn(idx, off, ext); err != nil {
			return err
		}
		off += ext
		n -= ext
	}
	return nil
}

// chunkCount returns how many chunks [off, off+n) touches.
func (c *Client) chunkCount(off, n int64) int {
	if n <= 0 {
		return 0
	}
	cs := c.cfg.ChunkSize
	return int((off+n-1)/cs - off/cs + 1)
}

// / span is one coalesced wire request: a contiguous byte range whose chunks
// all route to the same I/O node, capped at cfg.CoalesceLimit.
type span struct {
	off, n int64
	chunks int
	target int // index into the routeView arrays
}

// spanBufSize is the stack-buffer capacity callers pre-size for
// buildSpans; requests that coalesce into more spans spill to the heap.
const spanBufSize = 8

// buildSpans splits [off, off+n) into chunk-aligned extents, routes each
// chunk by the incremental FNV hash, and merges contiguous extents that
// share a target into spans. The caller passes a (typically
// stack-allocated) buffer to append into, so the common case allocates
// nothing.
func (c *Client) buildSpans(v *routeView, path string, off, n int64, out []span) []span {
	cs := c.cfg.ChunkSize
	limit := c.cfg.CoalesceLimit
	ph := fnvString(fnvOffset64, path)
	nAddrs := uint64(len(v.addrs))
	var cur span
	for n > 0 {
		idx := off / cs
		ext := cs - off%cs
		if ext > n {
			ext = n
		}
		t := int(fnvChunk(ph, idx) % nAddrs)
		if cur.chunks > 0 && cur.target == t && cur.n+ext <= limit {
			cur.n += ext
			cur.chunks++
		} else {
			if cur.chunks > 0 {
				out = append(out, cur)
			}
			cur = span{off: off, n: ext, chunks: 1, target: t}
		}
		off += ext
		n -= ext
	}
	if cur.chunks > 0 {
		out = append(out, cur)
	}
	return out
}

// gateFor returns the throttle gate for addr (nil when throttling is off
// or the address is unknown — both mean "send unthrottled").
func (c *Client) gateFor(addr string) *ionGate {
	if !c.cfg.Throttle.Enabled {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gates[addr]
}

// callION issues one RPC through the overload-protection path: the per-ION
// AIMD gate (when throttling is enabled), busy responses paced by the
// server's retry-after hint with jitter, and — after BusyRetries sheds, or
// immediately while the node is marked saturated — degradation to the
// direct PFS path. degraded=true means the request was never accepted by
// the I/O node and the caller must satisfy it directly; resp and err are
// then meaningless. Transport and application errors pass through
// untouched so the existing failover and error semantics are unchanged.
//
// The returned response owns pooled transport buffers: the caller must
// copy what it needs out of resp and call resp.Release (busy responses
// are consumed and released here).
func (c *Client) callION(t *rpc.Client, g *ionGate, req *rpc.Message) (resp *rpc.Message, err error, degraded bool) {
	retries := c.cfg.Throttle.BusyRetries
	if retries <= 0 {
		retries = 2 // throttle disabled: still honour hints before degrading
	}
	for attempt := 0; ; attempt++ {
		if g != nil && !g.acquire() {
			c.stats.degraded.Inc()
			return nil, nil, true
		}
		resp, err = t.Call(req)
		if err != nil && errors.Is(err, rpc.ErrClosed) {
			// The per-node client was released by a decommission that
			// raced this op's route view: the node is gone for good,
			// which is the strongest form of unavailable. Fold it into
			// that class so the caller takes the normal failover path.
			err = fmt.Errorf("%w: %v", rpc.ErrUnavailable, err)
		}
		if err != nil && errors.Is(err, rpc.ErrBusy) {
			resp.Release()
			resp = nil
			c.stats.shed.Inc()
			hint, _ := rpc.RetryAfterHint(err)
			if g != nil {
				g.onBusy(hint)
			}
			if attempt >= retries {
				c.stats.degraded.Inc()
				return nil, nil, true
			}
			if g == nil {
				// No gate to pace the retry: sleep the jittered hint here.
				d := hint
				if d <= 0 {
					d = time.Millisecond
				}
				time.Sleep(equalJitter(d))
			}
			continue
		}
		if g != nil {
			if err != nil && errors.Is(err, rpc.ErrUnavailable) {
				g.onError()
			} else {
				// Success or application error: either way the server took
				// the request on, so the window may grow.
				g.onSuccess()
			}
		}
		return resp, err, false
	}
}

// errIfClosed guards every file operation: a closed client must fail
// loudly rather than silently fall back to the direct path.
func (c *Client) errIfClosed() error {
	if c.closed.Load() {
		return rpc.ErrClosed
	}
	return nil
}

// Create implements pfs.FileSystem.
func (c *Client) Create(path string) error {
	if err := c.errIfClosed(); err != nil {
		return err
	}
	tr := c.trace("create", path)
	if t, g := c.metaTarget(path); t != nil {
		c.stats.forwarded.Inc()
		resp, err, degraded := c.callION(t, g, &rpc.Message{Op: rpc.OpCreate, Path: path, Trace: tr.id(), Priority: c.wirePrio})
		resp.Release()
		if degraded {
			err = c.cfg.Direct.Create(path)
			tr.done(0, "degraded")
			return err
		}
		if errors.Is(err, rpc.ErrUnavailable) {
			c.stats.failover.Inc()
			err = c.cfg.Direct.Create(path)
			tr.done(0, "failover")
			return err
		}
		tr.done(0, "forwarded")
		return err
	}
	c.stats.direct.Inc()
	err := c.cfg.Direct.Create(path)
	tr.done(0, "direct")
	return err
}

// maxParallelSpans bounds the per-request fan-out of span RPCs, like
// GekkoFS's bounded in-flight chunk operations.
const maxParallelSpans = 8

// Write implements pfs.FileSystem: the request is split into chunks, each
// routed to its responsible I/O node; contiguous same-target chunks are
// coalesced into one wire request. Span RPCs are issued concurrently, as
// the GekkoFS client issues chunk RPCs.
func (c *Client) Write(path string, off int64, p []byte) (int, error) {
	if err := c.errIfClosed(); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	tr := c.trace("write", path)
	v := c.loadView()
	if v == nil {
		// Direct mode: no routing decision depends on chunk boundaries, so
		// the write reaches the PFS in one call.
		c.reg.Update(func() {
			c.stats.direct.Inc()
			c.stats.bytesOut.Add(int64(len(p)))
		})
		k, err := c.cfg.Direct.Write(path, off, p)
		tr.done(int64(k), chunkNote(c.chunkCount(off, int64(len(p)))))
		return k, err
	}
	if q := c.qos; q != nil {
		// QoS admission sits ahead of span building so a degraded op never
		// touches the wire. Unclassed clients pay exactly the nil check.
		start := time.Now()
		defer func() { q.latency.ObserveDuration(time.Since(start)) }()
		if q.degradeOrPace(int64(len(p))) {
			// Scavenger with an empty bucket: the whole op goes to the
			// direct PFS path, same as a degrade under overload.
			c.reg.Update(func() {
				c.stats.degraded.Inc()
				c.stats.direct.Inc()
				c.stats.bytesOut.Add(int64(len(p)))
			})
			k, err := c.cfg.Direct.Write(path, off, p)
			tr.done(int64(k), "degraded")
			return k, err
		}
	}
	var sbuf [spanBufSize]span
	spans := c.buildSpans(v, path, off, int64(len(p)), sbuf[:0])
	nchunks := 0
	for _, s := range spans {
		nchunks += s.chunks
	}
	if len(spans) == 1 {
		k, err := c.writeSpan(v, path, off, p, spans[0], tr)
		tr.done(int64(k), chunkNote(nchunks))
		return k, err
	}
	written := make([]int, len(spans))
	err := c.forEachSpan(spans, func(i int, s span) error {
		k, werr := c.writeSpan(v, path, off, p, s, tr)
		written[i] = k
		return werr
	})
	total := 0
	for _, w := range written {
		total += w
	}
	tr.done(int64(total), chunkNote(nchunks))
	return total, err
}

// writeSpan forwards one coalesced span to its I/O node, falling back to
// the direct path on shed-past-budget (degraded) and unreachable-node
// (failover) conditions, exactly as the per-chunk path used to. It counts
// the span's bytes exactly once; the send itself (which may remap and
// retry under epoch fencing) lives in sendSpan.
func (c *Client) writeSpan(v *routeView, path string, off int64, p []byte, s span, tr opTrace) (int, error) {
	rel := s.off - off
	payload := p[rel : rel+s.n]
	c.reg.Update(func() {
		c.stats.forwarded.Inc()
		c.stats.bytesOut.Add(s.n)
	})
	return c.sendSpan(v, path, s, payload, tr, 0)
}

// maxEpochRemaps bounds how many successive stale-epoch rejections one
// span may chase through fresh mappings before degrading to the direct
// path (each hop means the arbiter fenced again while we were in flight).
const maxEpochRemaps = 3

// sendSpan issues one span's wire request. The caller has already counted
// bytesOut/forwarded for the payload, so every fallback and retry below
// lands the bytes exactly once.
func (c *Client) sendSpan(v *routeView, path string, s span, payload []byte, tr opTrace, depth int) (int, error) {
	req := &rpc.Message{Op: rpc.OpWrite, Path: path, Offset: s.off, Data: payload, Trace: tr.id(), Priority: c.wirePrio}
	if c.cfg.EpochFencing {
		req.Epoch = v.epoch
	}
	if c.cfg.Dedup {
		// Stamp once per wire request: the transport retry (inside
		// rpc.Client.Call), the busy retry (inside callION), and a hedge
		// (inside callWrite) all resend this exact identity, so every
		// re-attempt carries the seq of the attempt it duplicates.
		req.ClientID = c.clientID
		req.Seq = c.seq.Add(1)
	}
	resp, err, degraded := c.callWrite(v, s, req)
	if degraded {
		// The I/O node shed this span past the retry budget (or is marked
		// saturated): write it directly. bytesOut was already counted for
		// this span, and the shed request was never enqueued, so the byte
		// lands exactly once.
		return c.cfg.Direct.Write(path, s.off, payload)
	}
	if err == nil {
		k := int(resp.Size)
		if resp.Replayed {
			c.stats.replayed.Inc()
		}
		resp.Release()
		return k, nil
	}
	resp.Release()
	if c.cfg.EpochFencing && errors.Is(err, rpc.ErrStaleEpoch) {
		// The daemon fenced this epoch: the arbiter recovered and revoked
		// every mapping we could have built this span from. Not a failure —
		// a remap signal. The write was NOT applied, so retrying it against
		// a fresher view (or directly) is byte-safe.
		return c.remapAndRetry(path, s.off, payload, req.Epoch, tr, depth)
	}
	if !errors.Is(err, rpc.ErrUnavailable) {
		return 0, err
	}
	// The responsible I/O node is unreachable (deadlines/retries exhausted
	// or its breaker is open): degrade this span to the direct PFS path
	// rather than failing the application's write. bytesOut was already
	// counted for this span.
	c.stats.failover.Inc()
	return c.cfg.Direct.Write(path, s.off, payload)
}

// remapAndRetry handles a fenced write: wait (bounded by EpochWait) for a
// route view whose epoch exceeds the one the daemon rejected, rebuild the
// span routing for this byte range against it, and resend. If no fresher
// view arrives in time, or the fencing has chased us maxEpochRemaps deep,
// the bytes go to the direct PFS path — safe, because a fenced write never
// reached the backend.
func (c *Client) remapAndRetry(path string, off int64, payload []byte, stale uint64, tr opTrace, depth int) (int, error) {
	c.stats.epochRetries.Inc()
	if depth >= maxEpochRemaps {
		return c.cfg.Direct.Write(path, off, payload)
	}
	v := c.awaitEpochAbove(stale)
	if v == nil {
		return c.cfg.Direct.Write(path, off, payload)
	}
	var sbuf [spanBufSize]span
	spans := c.buildSpans(v, path, off, int64(len(payload)), sbuf[:0])
	if len(spans) == 1 {
		return c.sendSpan(v, path, spans[0], payload, tr, depth+1)
	}
	written := make([]int, len(spans))
	err := c.forEachSpan(spans, func(i int, s span) error {
		rel := s.off - off
		k, werr := c.sendSpan(v, path, s, payload[rel:rel+s.n], tr, depth+1)
		written[i] = k
		return werr
	})
	total := 0
	for _, w := range written {
		total += w
	}
	return total, err
}

// awaitEpochAbove polls for a routing snapshot with epoch > stale, backing
// off exponentially within the EpochWait budget. nil means the budget ran
// out (or the client closed, or the fresh map put the app in direct mode).
func (c *Client) awaitEpochAbove(stale uint64) *routeView {
	deadline := time.Now().Add(c.cfg.EpochWait)
	wait := time.Millisecond
	for {
		v := c.loadView()
		if v != nil && v.epoch > stale {
			return v
		}
		if c.closed.Load() || !time.Now().Before(deadline) {
			return nil
		}
		if rem := time.Until(deadline); wait > rem {
			wait = rem
		}
		time.Sleep(wait)
		if wait < 64*time.Millisecond {
			wait *= 2
		}
	}
}

// forEachSpan runs fn over the spans, concurrently when there are
// several, and returns the first error.
func (c *Client) forEachSpan(spans []span, fn func(i int, s span) error) error {
	if len(spans) <= 1 {
		for i, s := range spans {
			if err := fn(i, s); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, maxParallelSpans)
	errs := make(chan error, len(spans))
	var wg sync.WaitGroup
	for i, s := range spans {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, s span) {
			defer wg.Done()
			errs <- fn(i, s)
			<-sem
		}(i, s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Read implements pfs.FileSystem. Span RPCs are issued concurrently, like
// writes. Reads past the end of the file return pfs.ErrShortRead with the
// bytes that were available, like the store. The returned count is the
// contiguous prefix read from off: a span that comes back short stops the
// count even when later spans returned data, so the count never covers a
// hole.
func (c *Client) Read(path string, off int64, p []byte) (int, error) {
	if err := c.errIfClosed(); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	tr := c.trace("read", path)
	v := c.loadView()
	if v == nil {
		c.stats.direct.Inc()
		k, err := c.cfg.Direct.Read(path, off, p)
		c.stats.bytesIn.Add(int64(k))
		tr.done(int64(k), chunkNote(c.chunkCount(off, int64(len(p)))))
		if err != nil && !errors.Is(err, pfs.ErrShortRead) {
			return k, err
		}
		if k < len(p) {
			return k, pfs.ErrShortRead
		}
		return k, nil
	}
	if q := c.qos; q != nil {
		start := time.Now()
		defer func() { q.latency.ObserveDuration(time.Since(start)) }()
		if q.degradeOrPace(int64(len(p))) {
			c.reg.Update(func() {
				c.stats.degraded.Inc()
				c.stats.direct.Inc()
			})
			k, err := c.cfg.Direct.Read(path, off, p)
			c.stats.bytesIn.Add(int64(k))
			tr.done(int64(k), "degraded")
			if err != nil && !errors.Is(err, pfs.ErrShortRead) {
				return k, err
			}
			if k < len(p) {
				return k, pfs.ErrShortRead
			}
			return k, nil
		}
	}
	var sbuf [spanBufSize]span
	spans := c.buildSpans(v, path, off, int64(len(p)), sbuf[:0])
	nchunks := 0
	for _, s := range spans {
		nchunks += s.chunks
	}
	var total int
	var err error
	if len(spans) == 1 {
		total, err = c.readSpan(v, path, off, p, spans[0], tr)
	} else {
		counts := make([]int, len(spans))
		err = c.forEachSpan(spans, func(i int, s span) error {
			k, rerr := c.readSpan(v, path, off, p, s, tr)
			counts[i] = k
			return rerr
		})
		// Contiguous-prefix contract: sum span counts in order and stop at
		// the first short span — bytes read beyond a hole must not inflate
		// the count the application sees.
		for i, s := range spans {
			total += counts[i]
			if int64(counts[i]) < s.n {
				break
			}
		}
	}
	tr.done(int64(total), chunkNote(nchunks))
	if err != nil {
		return total, err
	}
	if total < len(p) {
		return total, pfs.ErrShortRead
	}
	return total, nil
}

// readSpan reads one coalesced span from its I/O node into the right
// window of p, with the same degraded/failover fallbacks as writes and
// the store's short-read semantics.
func (c *Client) readSpan(v *routeView, path string, off int64, p []byte, s span, tr opTrace) (int, error) {
	rel := s.off - off
	dst := p[rel : rel+s.n]
	c.stats.forwarded.Inc()
	req := &rpc.Message{Op: rpc.OpRead, Path: path, Offset: s.off, Size: s.n, Trace: tr.id(), Priority: c.wirePrio}
	resp, err, degraded, hk, won := c.callRead(v, path, s, req, dst)
	if won {
		// The hedge satisfied this span from the PFS directly; its bytes
		// are already in dst and counted, and the primary is being drained
		// in the background.
		return hk, nil
	}
	if degraded {
		// Shed past the retry budget: satisfy this span from the PFS
		// directly with the usual short-read semantics.
		k, derr := c.cfg.Direct.Read(path, s.off, dst)
		c.stats.bytesIn.Add(int64(k))
		if derr != nil && !errors.Is(derr, pfs.ErrShortRead) {
			return k, derr
		}
		return k, nil
	}
	k := 0
	if resp != nil {
		// Copy out of the pooled response buffer, then hand it back to the
		// transport (the release seam — see internal/rpc).
		k = copy(dst, resp.Data)
		c.stats.bytesIn.Add(int64(k))
		resp.Release()
	}
	if err == nil || isShortRead(err) {
		return k, nil
	}
	if !errors.Is(err, rpc.ErrUnavailable) {
		return k, err
	}
	// Unreachable I/O node: satisfy this span from the PFS directly,
	// honouring the same short-read semantics as the direct path.
	c.stats.failover.Inc()
	k, derr := c.cfg.Direct.Read(path, s.off, dst)
	c.stats.bytesIn.Add(int64(k))
	if derr != nil && !errors.Is(derr, pfs.ErrShortRead) {
		return k, derr
	}
	return k, nil
}

// isShortRead recognizes the store's EOF condition after it crossed the
// wire as an error string.
func isShortRead(err error) bool {
	return err != nil && strings.Contains(err.Error(), pfs.ErrShortRead.Error())
}

// Stat implements pfs.FileSystem.
func (c *Client) Stat(path string) (pfs.FileInfo, error) {
	if err := c.errIfClosed(); err != nil {
		return pfs.FileInfo{}, err
	}
	tr := c.trace("stat", path)
	defer tr.done(0, "")
	if t, g := c.metaTarget(path); t != nil {
		c.stats.forwarded.Inc()
		resp, err, degraded := c.callION(t, g, &rpc.Message{Op: rpc.OpStat, Path: path, Trace: tr.id(), Priority: c.wirePrio})
		if degraded {
			return c.cfg.Direct.Stat(path)
		}
		if err != nil {
			resp.Release()
			if errors.Is(err, rpc.ErrUnavailable) {
				c.stats.failover.Inc()
				return c.cfg.Direct.Stat(path)
			}
			return pfs.FileInfo{}, remapError(err, path)
		}
		size := resp.Size
		resp.Release()
		return pfs.FileInfo{Path: path, Size: size}, nil
	}
	c.stats.direct.Inc()
	return c.cfg.Direct.Stat(path)
}

// Remove implements pfs.FileSystem.
func (c *Client) Remove(path string) error {
	if err := c.errIfClosed(); err != nil {
		return err
	}
	tr := c.trace("remove", path)
	defer tr.done(0, "")
	if t, g := c.metaTarget(path); t != nil {
		c.stats.forwarded.Inc()
		resp, err, degraded := c.callION(t, g, &rpc.Message{Op: rpc.OpRemove, Path: path, Trace: tr.id(), Priority: c.wirePrio})
		resp.Release()
		if degraded {
			return c.cfg.Direct.Remove(path)
		}
		if errors.Is(err, rpc.ErrUnavailable) {
			c.stats.failover.Inc()
			return c.cfg.Direct.Remove(path)
		}
		return remapError(err, path)
	}
	c.stats.direct.Inc()
	return c.cfg.Direct.Remove(path)
}

// Fsync implements pfs.FileSystem.
func (c *Client) Fsync(path string) error {
	if err := c.errIfClosed(); err != nil {
		return err
	}
	tr := c.trace("fsync", path)
	defer tr.done(0, "")
	if t, g := c.metaTarget(path); t != nil {
		c.stats.forwarded.Inc()
		resp, err, degraded := c.callION(t, g, &rpc.Message{Op: rpc.OpFsync, Path: path, Trace: tr.id(), Priority: c.wirePrio})
		resp.Release()
		if degraded {
			return c.cfg.Direct.Fsync(path)
		}
		if errors.Is(err, rpc.ErrUnavailable) {
			c.stats.failover.Inc()
			return c.cfg.Direct.Fsync(path)
		}
		return remapError(err, path)
	}
	c.stats.direct.Inc()
	return c.cfg.Direct.Fsync(path)
}

// remapError converts the wire form of ErrNotExist back into the sentinel
// so callers can errors.Is it.
func remapError(err error, path string) error {
	if err == nil {
		return nil
	}
	if strings.Contains(err.Error(), pfs.ErrNotExist.Error()) {
		return fmt.Errorf("%w: %s", pfs.ErrNotExist, path)
	}
	return err
}
