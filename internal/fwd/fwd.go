// Package fwd is the forwarding client: the GekkoFWD client role. It
// exposes the same POSIX-like FileSystem interface as the PFS itself, so
// application kernels are oblivious to whether their I/O goes directly to
// the parallel file system or through I/O nodes.
//
// Where the real GekkoFWD intercepts system calls via the GekkoFS client
// library, Go offers no LD_PRELOAD equivalent, so the interposition point
// is this library boundary (see DESIGN.md §1). Everything downstream is
// structurally faithful:
//
//   - requests are split into fixed-size chunks;
//   - each chunk is routed to one of the application's allocated I/O nodes
//     by hashing the file path and chunk index (GekkoFS's distribution,
//     restricted to the allocation as in GekkoFWD);
//   - the allocation can change at any time without disrupting the
//     application: a background watcher applies mapping updates, and
//     in-flight requests complete on the old routes;
//   - an empty allocation means direct PFS access;
//   - an unreachable I/O node (rpc.ErrUnavailable: deadlines and retries
//     exhausted, or its circuit breaker open) degrades that node's chunks
//     to direct PFS access — counted as fwd_failover_ops_total — until a
//     fresh mapping re-routes them.
package fwd

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapping"
	"repro/internal/pfs"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// DefaultChunkSize is the GekkoFS chunking unit (512 KiB).
const DefaultChunkSize = 512 * units.KiB

// Config parameterizes a client.
type Config struct {
	// AppID is the application identity used to look up allocations in
	// mapping updates.
	AppID string
	// Direct is the file system used when the application has no I/O
	// nodes (and for deployments without forwarding).
	Direct pfs.FileSystem
	// ChunkSize is the request-splitting unit; ≤0 selects
	// DefaultChunkSize.
	ChunkSize int64
	// PoolSize is the RPC connection pool per I/O node; ≤0 selects the
	// transport default.
	PoolSize int
	// RPC configures the failure-tolerance behaviour of every connection
	// this client dials: per-call deadlines, bounded retries, circuit
	// breaker. The zero value keeps the transport's legacy behaviour
	// (block forever, no retries, no breaker).
	RPC rpc.Options
	// Dedup stamps every forwarded write with this client's (clientID,
	// seq) identity so daemons with a dedup window can recognise
	// transport-retried writes and replay the cached outcome instead of
	// re-applying them (exactly-once; see DESIGN.md "Integrity model").
	// Off by default: unstamped frames are wire-identical to the
	// pre-integrity protocol.
	Dedup bool
	// Throttle configures per-I/O-node adaptive admission (AIMD window,
	// hint-paced busy retries, degrade-to-direct under sustained
	// saturation). The zero value disables throttling; busy responses are
	// then still honoured with hint-paced retries before degrading.
	Throttle ThrottleConfig
	// Telemetry receives the client's metrics (app-labeled series:
	// fwd_bytes_out_total{app="…"}, …) and is propagated to the rpc
	// connections it dials. Nil selects a private registry so Stats()
	// always works.
	Telemetry *telemetry.Registry
	// Tracer opens one trace per file operation and threads its ID
	// through the rpc layer to the I/O nodes. Nil disables tracing.
	Tracer *telemetry.Tracer
}

// Stats counts client-side activity.
type Stats struct {
	ForwardedOps  int64
	DirectOps     int64
	FailoverOps   int64
	ShedResponses  int64 // busy responses observed (server-side sheds)
	DegradedOps    int64 // ops satisfied on the direct path due to overload
	ReplayedWrites int64 // write responses served from a daemon's dedup window
	BytesOut       int64
	BytesIn        int64
	RemapsApplied  int64
}

// Client is the forwarding client. It implements pfs.FileSystem.
type Client struct {
	cfg Config

	// clientID and seq are the exactly-once write identity (set when
	// cfg.Dedup is on). The ID is unique per Client instance so two
	// clients sharing an AppID never collide in a daemon's dedup window;
	// seq starts at 1 and a transport- or busy-retried chunk reuses the
	// seq of its first attempt (the retry loops sit below the stamping).
	clientID string
	seq      atomic.Uint64

	mu    sync.RWMutex
	addrs []string               // current allocation (empty = direct)
	conns map[string]*rpc.Client // address → pooled connection, kept across remaps
	gates map[string]*ionGate    // address → AIMD throttle gate, kept across remaps
	ver   uint64

	// Counters live on reg (app-labeled); coupled counters are updated in
	// one reg.Update group and Stats() reads under reg.View, so snapshots
	// are never torn (see ion.Daemon.Stats).
	reg   *telemetry.Registry
	stats struct {
		forwarded, direct, failover, bytesOut, bytesIn, remaps *telemetry.Counter
		shed, degraded, replayed                               *telemetry.Counter
	}

	watchStop func()
	closed    atomic.Bool
}

var _ pfs.FileSystem = (*Client)(nil)

// NewClient returns a client in direct mode; call SetIONs or Watch to
// attach it to a forwarding allocation.
func NewClient(cfg Config) (*Client, error) {
	if cfg.AppID == "" {
		return nil, errors.New("fwd: AppID is required")
	}
	if cfg.Direct == nil {
		return nil, errors.New("fwd: a direct file system is required")
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	cfg.Throttle = cfg.Throttle.withDefaults()
	c := &Client{cfg: cfg, conns: make(map[string]*rpc.Client), gates: make(map[string]*ionGate)}
	c.reg = cfg.Telemetry
	if c.reg == nil {
		c.reg = telemetry.New()
	}
	label := fmt.Sprintf("{app=%q}", cfg.AppID)
	c.stats.forwarded = c.reg.Counter("fwd_forwarded_ops_total" + label)
	c.stats.direct = c.reg.Counter("fwd_direct_ops_total" + label)
	c.stats.failover = c.reg.Counter("fwd_failover_ops_total" + label)
	c.stats.bytesOut = c.reg.Counter("fwd_bytes_out_total" + label)
	c.stats.bytesIn = c.reg.Counter("fwd_bytes_in_total" + label)
	c.stats.remaps = c.reg.Counter("fwd_remaps_applied_total" + label)
	c.stats.shed = c.reg.Counter("fwd_shed_responses_total" + label)
	c.stats.degraded = c.reg.Counter("fwd_degraded_ops_total" + label)
	c.stats.replayed = c.reg.Counter("fwd_replayed_writes_total" + label)
	if cfg.Dedup {
		c.clientID = fmt.Sprintf("%s#%d", cfg.AppID, clientInstance.Add(1))
	}
	return c, nil
}

// clientInstance distinguishes Client instances that share an AppID (e.g.
// one per rank) so their dedup identities never collide within a process.
var clientInstance atomic.Uint64

// SetIONs installs a new allocation. Connections to previously used I/O
// nodes are kept pooled so a later remap back is cheap and in-flight
// requests are never disturbed.
func (c *Client) SetIONs(addrs []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addrs = append([]string(nil), addrs...)
	for _, a := range addrs {
		if _, ok := c.conns[a]; !ok {
			c.conns[a] = rpc.Dial(a, c.cfg.PoolSize).
				WithOptions(c.cfg.RPC).
				Instrument(c.cfg.Telemetry, c.cfg.Tracer)
		}
		if c.cfg.Throttle.Enabled {
			if _, ok := c.gates[a]; !ok {
				c.gates[a] = newIonGate(c.cfg.Throttle,
					c.reg.Gauge(fmt.Sprintf("fwd_throttle_window_x1000{app=%q,ion=%q}", c.cfg.AppID, a)))
			}
		}
	}
	c.stats.remaps.Add(1)
}

// IONs returns the current allocation.
func (c *Client) IONs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.addrs...)
}

// ApplyMap installs the allocation a mapping update assigns to this
// application. Stale versions are ignored.
func (c *Client) ApplyMap(m mapping.Map) {
	c.mu.RLock()
	stale := m.Version != 0 && m.Version <= c.ver
	c.mu.RUnlock()
	if stale {
		return
	}
	c.SetIONs(m.For(c.cfg.AppID))
	c.mu.Lock()
	c.ver = m.Version
	c.mu.Unlock()
}

// Watch consumes mapping updates from ch (a mapping.Bus subscription or a
// mapping.Watcher) in a background goroutine until cancel is called or the
// channel closes. This is GekkoFWD's client-side remapping thread.
func (c *Client) Watch(ch <-chan mapping.Map) (cancel func()) {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case m, ok := <-ch:
				if !ok {
					return
				}
				c.ApplyMap(m)
			}
		}
	}()
	return func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		<-done
	}
}

// Close releases all pooled connections.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = map[string]*rpc.Client{}
	c.addrs = nil
	return nil
}

// Stats returns a consistent snapshot of client counters (read under the
// registry's view gate, so no grouped update is half-visible).
func (c *Client) Stats() Stats {
	var s Stats
	c.reg.View(func() {
		s = Stats{
			ForwardedOps:  c.stats.forwarded.Value(),
			DirectOps:     c.stats.direct.Value(),
			FailoverOps:   c.stats.failover.Value(),
			ShedResponses:  c.stats.shed.Value(),
			DegradedOps:    c.stats.degraded.Value(),
			ReplayedWrites: c.stats.replayed.Value(),
			BytesOut:       c.stats.bytesOut.Value(),
			BytesIn:        c.stats.bytesIn.Value(),
			RemapsApplied:  c.stats.remaps.Value(),
		}
	})
	return s
}

// trace opens a per-operation trace; the zero opTrace (tracing disabled)
// makes every method a no-op so the hot path pays only a nil check.
func (c *Client) trace(op, path string) opTrace {
	tr := c.cfg.Tracer.Start(c.cfg.AppID, op, path)
	if tr == nil {
		return opTrace{}
	}
	return opTrace{t: tr, start: time.Now()}
}

// opTrace pairs a telemetry trace with the operation start time so the
// "fwd" hop — covering chunking and RPC fan-out — is stamped at completion.
type opTrace struct {
	t     *telemetry.Trace
	start time.Time
}

// id returns the wire trace ID (0 when tracing is off).
func (t opTrace) id() uint64 { return t.t.TraceID() }

// done records the fwd hop and finishes the trace.
func (t opTrace) done(bytes int64, note string) {
	if t.t == nil {
		return
	}
	t.t.Hop("fwd", t.start, bytes, note)
	t.t.Finish()
}

// chunkNotes precomputes the common "chunks=N" hop notes so the data path
// never formats a string per operation (the Sprintf argument would be
// evaluated even with tracing off).
var chunkNotes = func() [17]string {
	var n [17]string
	for i := range n {
		n[i] = fmt.Sprintf("chunks=%d", i)
	}
	return n
}()

func chunkNote(n int) string {
	if n < len(chunkNotes) {
		return chunkNotes[n]
	}
	return fmt.Sprintf("chunks=%d", n)
}

// route returns the connection for a chunk, or nil for direct mode.
func (c *Client) route(path string, chunkIdx int64) *rpc.Client {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.addrs) == 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(path))
	var idx [8]byte
	for i := 0; i < 8; i++ {
		idx[i] = byte(chunkIdx >> (8 * i))
	}
	h.Write(idx[:])
	return c.conns[c.addrs[h.Sum64()%uint64(len(c.addrs))]]
}

// metaTarget returns the connection for metadata ops on path (nil for
// direct mode). Metadata always routes by path hash alone, like GekkoFS.
func (c *Client) metaTarget(path string) *rpc.Client {
	return c.route(path, 0)
}

// chunkSpan iterates the chunk-aligned extents of [off, off+n).
func (c *Client) chunkSpan(off, n int64, fn func(chunkIdx, off, n int64) error) error {
	cs := c.cfg.ChunkSize
	for n > 0 {
		idx := off / cs
		ext := cs - off%cs
		if ext > n {
			ext = n
		}
		if err := fn(idx, off, ext); err != nil {
			return err
		}
		off += ext
		n -= ext
	}
	return nil
}

// gateFor returns the throttle gate for addr (nil when throttling is off
// or the address is unknown — both mean "send unthrottled").
func (c *Client) gateFor(addr string) *ionGate {
	if !c.cfg.Throttle.Enabled {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gates[addr]
}

// callION issues one RPC through the overload-protection path: the per-ION
// AIMD gate (when throttling is enabled), busy responses paced by the
// server's retry-after hint with jitter, and — after BusyRetries sheds, or
// immediately while the node is marked saturated — degradation to the
// direct PFS path. degraded=true means the request was never accepted by
// the I/O node and the caller must satisfy it directly; resp and err are
// then meaningless. Transport and application errors pass through
// untouched so the existing failover and error semantics are unchanged.
func (c *Client) callION(t *rpc.Client, req *rpc.Message) (resp *rpc.Message, err error, degraded bool) {
	g := c.gateFor(t.Addr())
	retries := c.cfg.Throttle.BusyRetries
	if retries <= 0 {
		retries = 2 // throttle disabled: still honour hints before degrading
	}
	for attempt := 0; ; attempt++ {
		if g != nil && !g.acquire() {
			c.stats.degraded.Inc()
			return nil, nil, true
		}
		resp, err = t.Call(req)
		if err != nil && errors.Is(err, rpc.ErrBusy) {
			c.stats.shed.Inc()
			hint, _ := rpc.RetryAfterHint(err)
			if g != nil {
				g.onBusy(hint)
			}
			if attempt >= retries {
				c.stats.degraded.Inc()
				return nil, nil, true
			}
			if g == nil {
				// No gate to pace the retry: sleep the jittered hint here.
				d := hint
				if d <= 0 {
					d = time.Millisecond
				}
				time.Sleep(equalJitter(d))
			}
			continue
		}
		if g != nil {
			if err != nil && errors.Is(err, rpc.ErrUnavailable) {
				g.onError()
			} else {
				// Success or application error: either way the server took
				// the request on, so the window may grow.
				g.onSuccess()
			}
		}
		return resp, err, false
	}
}

// errIfClosed guards every file operation: a closed client must fail
// loudly rather than silently fall back to the direct path.
func (c *Client) errIfClosed() error {
	if c.closed.Load() {
		return rpc.ErrClosed
	}
	return nil
}

// Create implements pfs.FileSystem.
func (c *Client) Create(path string) error {
	if err := c.errIfClosed(); err != nil {
		return err
	}
	tr := c.trace("create", path)
	if t := c.metaTarget(path); t != nil {
		c.stats.forwarded.Inc()
		_, err, degraded := c.callION(t, &rpc.Message{Op: rpc.OpCreate, Path: path, Trace: tr.id()})
		if degraded {
			err = c.cfg.Direct.Create(path)
			tr.done(0, "degraded")
			return err
		}
		if errors.Is(err, rpc.ErrUnavailable) {
			c.stats.failover.Inc()
			err = c.cfg.Direct.Create(path)
			tr.done(0, "failover")
			return err
		}
		tr.done(0, "forwarded")
		return err
	}
	c.stats.direct.Inc()
	err := c.cfg.Direct.Create(path)
	tr.done(0, "direct")
	return err
}

// maxParallelChunks bounds the per-request fan-out of chunk RPCs, like
// GekkoFS's bounded in-flight chunk operations.
const maxParallelChunks = 8

// chunkExtent is one chunk-aligned piece of a request.
type chunkExtent struct {
	idx, off, n int64
}

// extents materializes the chunk extents of [off, off+n).
func (c *Client) extents(off, n int64) []chunkExtent {
	var out []chunkExtent
	c.chunkSpan(off, n, func(idx, o, m int64) error {
		out = append(out, chunkExtent{idx: idx, off: o, n: m})
		return nil
	})
	return out
}

// Write implements pfs.FileSystem: the request is split into chunks, each
// forwarded to its responsible I/O node (or written directly). Chunk RPCs
// are issued concurrently, as the GekkoFS client does.
func (c *Client) Write(path string, off int64, p []byte) (int, error) {
	if err := c.errIfClosed(); err != nil {
		return 0, err
	}
	tr := c.trace("write", path)
	exts := c.extents(off, int64(len(p)))
	written := make([]int, len(exts))
	err := c.forEachExtent(exts, func(i int, e chunkExtent) error {
		rel := e.off - off
		payload := p[rel : rel+e.n]
		if t := c.route(path, e.idx); t != nil {
			c.reg.Update(func() {
				c.stats.forwarded.Inc()
				c.stats.bytesOut.Add(e.n)
			})
			req := &rpc.Message{Op: rpc.OpWrite, Path: path, Offset: e.off, Data: payload, Trace: tr.id()}
			if c.cfg.Dedup {
				// Stamp once per chunk: the transport retry (inside
				// rpc.Client.Call) and the busy retry (inside callION)
				// both resend this exact message, so a re-attempt carries
				// the seq of the attempt it duplicates.
				req.ClientID = c.clientID
				req.Seq = c.seq.Add(1)
			}
			resp, err, degraded := c.callION(t, req)
			if degraded {
				// The I/O node shed this chunk past the retry budget (or
				// is marked saturated): write it directly. bytesOut was
				// already counted for this extent above, and the shed
				// request was never enqueued, so the byte lands exactly
				// once.
				k, derr := c.cfg.Direct.Write(path, e.off, payload)
				written[i] = k
				return derr
			}
			if err == nil {
				if resp.Replayed {
					c.stats.replayed.Inc()
				}
				written[i] = int(resp.Size)
				return nil
			}
			if !errors.Is(err, rpc.ErrUnavailable) {
				return err
			}
			// The responsible I/O node is unreachable (deadlines/retries
			// exhausted or its breaker is open): degrade this chunk to the
			// direct PFS path rather than failing the application's write.
			// bytesOut was already counted for this extent above.
			c.stats.failover.Inc()
			k, derr := c.cfg.Direct.Write(path, e.off, payload)
			written[i] = k
			return derr
		}
		c.reg.Update(func() {
			c.stats.direct.Inc()
			c.stats.bytesOut.Add(e.n)
		})
		k, err := c.cfg.Direct.Write(path, e.off, payload)
		written[i] = k
		return err
	})
	total := 0
	for _, w := range written {
		total += w
	}
	tr.done(int64(total), chunkNote(len(exts)))
	return total, err
}

// forEachExtent runs fn over the extents, concurrently when there are
// several, and returns the first error.
func (c *Client) forEachExtent(exts []chunkExtent, fn func(i int, e chunkExtent) error) error {
	if len(exts) <= 1 {
		for i, e := range exts {
			if err := fn(i, e); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, maxParallelChunks)
	errs := make(chan error, len(exts))
	var wg sync.WaitGroup
	for i, e := range exts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, e chunkExtent) {
			defer wg.Done()
			errs <- fn(i, e)
			<-sem
		}(i, e)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Read implements pfs.FileSystem. Chunk RPCs are issued concurrently, like
// writes. Reads past the end of the file return pfs.ErrShortRead with the
// bytes that were available, like the store; chunks beyond EOF simply read
// zero bytes, so the total is the contiguous prefix length.
func (c *Client) Read(path string, off int64, p []byte) (int, error) {
	if err := c.errIfClosed(); err != nil {
		return 0, err
	}
	tr := c.trace("read", path)
	exts := c.extents(off, int64(len(p)))
	counts := make([]int, len(exts))
	err := c.forEachExtent(exts, func(i int, e chunkExtent) error {
		rel := e.off - off
		if t := c.route(path, e.idx); t != nil {
			c.stats.forwarded.Inc()
			resp, err, degraded := c.callION(t, &rpc.Message{Op: rpc.OpRead, Path: path, Offset: e.off, Size: e.n, Trace: tr.id()})
			if degraded {
				// Shed past the retry budget: satisfy this chunk from the
				// PFS directly with the usual short-read semantics.
				k, derr := c.cfg.Direct.Read(path, e.off, p[rel:rel+e.n])
				counts[i] = k
				c.stats.bytesIn.Add(int64(k))
				if derr != nil && !errors.Is(derr, pfs.ErrShortRead) {
					return derr
				}
				return nil
			}
			if resp != nil {
				counts[i] = copy(p[rel:rel+e.n], resp.Data)
				c.stats.bytesIn.Add(int64(counts[i]))
			}
			if err == nil || isShortRead(err) {
				return nil
			}
			if !errors.Is(err, rpc.ErrUnavailable) {
				return err
			}
			// Unreachable I/O node: satisfy this chunk from the PFS
			// directly, honouring the same short-read semantics as the
			// direct branch below.
			c.stats.failover.Inc()
			k, derr := c.cfg.Direct.Read(path, e.off, p[rel:rel+e.n])
			counts[i] = k
			c.stats.bytesIn.Add(int64(k))
			if derr != nil && !errors.Is(derr, pfs.ErrShortRead) {
				return derr
			}
			return nil
		}
		c.stats.direct.Inc()
		k, err := c.cfg.Direct.Read(path, e.off, p[rel:rel+e.n])
		counts[i] = k
		c.stats.bytesIn.Add(int64(k))
		if err != nil && !errors.Is(err, pfs.ErrShortRead) {
			return err
		}
		return nil
	})
	total := 0
	for _, k := range counts {
		total += k
	}
	tr.done(int64(total), chunkNote(len(exts)))
	if err != nil {
		return total, err
	}
	if total < len(p) {
		return total, pfs.ErrShortRead
	}
	return total, nil
}

// isShortRead recognizes the store's EOF condition after it crossed the
// wire as an error string.
func isShortRead(err error) bool {
	return err != nil && strings.Contains(err.Error(), pfs.ErrShortRead.Error())
}

// Stat implements pfs.FileSystem.
func (c *Client) Stat(path string) (pfs.FileInfo, error) {
	if err := c.errIfClosed(); err != nil {
		return pfs.FileInfo{}, err
	}
	tr := c.trace("stat", path)
	defer tr.done(0, "")
	if t := c.metaTarget(path); t != nil {
		c.stats.forwarded.Inc()
		resp, err, degraded := c.callION(t, &rpc.Message{Op: rpc.OpStat, Path: path, Trace: tr.id()})
		if degraded {
			return c.cfg.Direct.Stat(path)
		}
		if err != nil {
			if errors.Is(err, rpc.ErrUnavailable) {
				c.stats.failover.Inc()
				return c.cfg.Direct.Stat(path)
			}
			return pfs.FileInfo{}, remapError(err, path)
		}
		return pfs.FileInfo{Path: path, Size: resp.Size}, nil
	}
	c.stats.direct.Inc()
	return c.cfg.Direct.Stat(path)
}

// Remove implements pfs.FileSystem.
func (c *Client) Remove(path string) error {
	if err := c.errIfClosed(); err != nil {
		return err
	}
	tr := c.trace("remove", path)
	defer tr.done(0, "")
	if t := c.metaTarget(path); t != nil {
		c.stats.forwarded.Inc()
		_, err, degraded := c.callION(t, &rpc.Message{Op: rpc.OpRemove, Path: path, Trace: tr.id()})
		if degraded {
			return c.cfg.Direct.Remove(path)
		}
		if errors.Is(err, rpc.ErrUnavailable) {
			c.stats.failover.Inc()
			return c.cfg.Direct.Remove(path)
		}
		return remapError(err, path)
	}
	c.stats.direct.Inc()
	return c.cfg.Direct.Remove(path)
}

// Fsync implements pfs.FileSystem.
func (c *Client) Fsync(path string) error {
	if err := c.errIfClosed(); err != nil {
		return err
	}
	tr := c.trace("fsync", path)
	defer tr.done(0, "")
	if t := c.metaTarget(path); t != nil {
		c.stats.forwarded.Inc()
		_, err, degraded := c.callION(t, &rpc.Message{Op: rpc.OpFsync, Path: path, Trace: tr.id()})
		if degraded {
			return c.cfg.Direct.Fsync(path)
		}
		if errors.Is(err, rpc.ErrUnavailable) {
			c.stats.failover.Inc()
			return c.cfg.Direct.Fsync(path)
		}
		return remapError(err, path)
	}
	c.stats.direct.Inc()
	return c.cfg.Direct.Fsync(path)
}

// remapError converts the wire form of ErrNotExist back into the sentinel
// so callers can errors.Is it.
func remapError(err error, path string) error {
	if err == nil {
		return nil
	}
	if strings.Contains(err.Error(), pfs.ErrNotExist.Error()) {
		return fmt.Errorf("%w: %s", pfs.ErrNotExist, path)
	}
	return err
}
