package fwd

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/agios"
	"repro/internal/ion"
	"repro/internal/mapping"
	"repro/internal/pfs"
)

// testStack spins up a PFS store and n I/O-node daemons, returning the
// store and daemon addresses.
func testStack(t *testing.T, n int) (*pfs.Store, []string, []*ion.Daemon) {
	t.Helper()
	store := pfs.NewStore(pfs.Config{})
	addrs := make([]string, 0, n)
	daemons := make([]*ion.Daemon, 0, n)
	for i := 0; i < n; i++ {
		d := ion.New(ion.Config{ID: fmt.Sprintf("ion%d", i), Scheduler: agios.NewFIFO()}, store)
		addr, err := d.Start("")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		addrs = append(addrs, addr)
		daemons = append(daemons, d)
	}
	return store, addrs, daemons
}

func newTestClient(t *testing.T, direct pfs.FileSystem, chunk int64) *Client {
	t.Helper()
	c, err := NewClient(Config{AppID: "app", Direct: direct, ChunkSize: chunk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(Config{Direct: pfs.NewStore(pfs.Config{})}); err == nil {
		t.Fatal("missing AppID should fail")
	}
	if _, err := NewClient(Config{AppID: "a"}); err == nil {
		t.Fatal("missing direct FS should fail")
	}
}

func TestDirectMode(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	c := newTestClient(t, store, 0)
	data := []byte("direct bytes")
	if _, err := c.Write("/d", 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := c.Read("/d", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("direct round trip: %q", got)
	}
	st := c.Stats()
	if st.DirectOps == 0 || st.ForwardedOps != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestForwardedRoundTrip(t *testing.T) {
	store, addrs, daemons := testStack(t, 4)
	c := newTestClient(t, store, 1024)
	c.SetIONs(addrs)

	// A write spanning many chunks lands distributed across IONs.
	data := make([]byte, 64*1024)
	rand.New(rand.NewSource(3)).Read(data)
	if n, err := c.Write("/fw", 0, data); err != nil || n != len(data) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	got := make([]byte, len(data))
	if _, err := c.Read("/fw", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("forwarded round trip corrupted")
	}
	// Data truly went through the daemons, spread across several.
	busy := 0
	var totalIn int64
	for _, d := range daemons {
		st := d.Stats()
		totalIn += st.BytesIn
		if st.Writes > 0 {
			busy++
		}
	}
	if totalIn != int64(len(data)) {
		t.Fatalf("daemon ingress %d, want %d", totalIn, len(data))
	}
	if busy < 2 {
		t.Fatalf("chunk distribution degenerate: only %d/4 IONs used", busy)
	}
	if st := c.Stats(); st.DirectOps != 0 {
		t.Fatalf("forwarded client used direct path: %+v", st)
	}
}

func TestChunkRoutingDeterministic(t *testing.T) {
	store, addrs, _ := testStack(t, 4)
	c1 := newTestClient(t, store, 1024)
	c1.SetIONs(addrs)
	c2 := newTestClient(t, store, 1024)
	c2.SetIONs(addrs)
	for idx := int64(0); idx < 32; idx++ {
		a := c1.route("/p", idx)
		b := c2.route("/p", idx)
		if a.Addr() != b.Addr() {
			t.Fatalf("routing differs across clients for chunk %d", idx)
		}
	}
}

func TestUnalignedWritesAndReads(t *testing.T) {
	store, addrs, _ := testStack(t, 3)
	c := newTestClient(t, store, 512)
	c.SetIONs(addrs)
	ref := make([]byte, 8192)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		off := int64(rng.Intn(7000))
		n := rng.Intn(900) + 1
		payload := make([]byte, n)
		rng.Read(payload)
		if _, err := c.Write("/u", off, payload); err != nil {
			t.Fatal(err)
		}
		copy(ref[off:off+int64(n)], payload)
	}
	info, err := c.Stat("/u")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, info.Size)
	if _, err := c.Read("/u", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref[:info.Size]) {
		t.Fatal("unaligned I/O diverged from reference")
	}
}

func TestShortReadThroughStack(t *testing.T) {
	store, addrs, _ := testStack(t, 2)
	c := newTestClient(t, store, 512)
	c.SetIONs(addrs)
	c.Write("/s", 0, []byte("hello"))
	buf := make([]byte, 100)
	n, err := c.Read("/s", 0, buf)
	if n != 5 || !errors.Is(err, pfs.ErrShortRead) {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
	if string(buf[:5]) != "hello" {
		t.Fatalf("payload: %q", buf[:5])
	}
}

func TestMetadataThroughStack(t *testing.T) {
	store, addrs, _ := testStack(t, 2)
	c := newTestClient(t, store, 512)
	c.SetIONs(addrs)
	if err := c.Create("/m"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/m"); err != nil {
		t.Fatal(err)
	}
	if err := c.Fsync("/m"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/m"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/m"); !errors.Is(err, pfs.ErrNotExist) {
		t.Fatalf("want ErrNotExist through the wire, got %v", err)
	}
	if _, err := store.Stat("/m"); !errors.Is(err, pfs.ErrNotExist) {
		t.Fatal("remove did not reach the backend")
	}
}

// TestDynamicRemapMidStream is the paper's key client property: the number
// of I/O nodes assigned to an application changes during its execution
// without disrupting it.
func TestDynamicRemapMidStream(t *testing.T) {
	store, addrs, _ := testStack(t, 4)
	c := newTestClient(t, store, 256)
	c.SetIONs(addrs[:1])

	ref := make([]byte, 0, 40*256)
	var off int64
	writeSome := func(tag byte, n int) {
		for i := 0; i < n; i++ {
			payload := bytes.Repeat([]byte{tag}, 256)
			if _, err := c.Write("/remap", off, payload); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, payload...)
			off += 256
		}
	}
	writeSome('a', 10)
	c.SetIONs(addrs) // grow 1 → 4 mid-stream
	writeSome('b', 10)
	c.SetIONs(addrs[2:3]) // shrink to a different single ION
	writeSome('c', 10)
	c.SetIONs(nil) // drop to direct access
	writeSome('d', 10)

	got := make([]byte, len(ref))
	if _, err := c.Read("/remap", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("remap corrupted the stream")
	}
	if st := c.Stats(); st.RemapsApplied != 4 || st.DirectOps == 0 {
		t.Fatalf("stats after remaps: %+v", st)
	}
}

func TestApplyMapVersioning(t *testing.T) {
	store, addrs, _ := testStack(t, 2)
	c := newTestClient(t, store, 512)
	c.ApplyMap(mapping.Map{Version: 2, IONs: map[string][]string{"app": addrs}})
	if len(c.IONs()) != 2 {
		t.Fatal("map not applied")
	}
	// Stale map must be ignored.
	c.ApplyMap(mapping.Map{Version: 1, IONs: map[string][]string{"app": nil}})
	if len(c.IONs()) != 2 {
		t.Fatal("stale map applied")
	}
	// Newer map wins.
	c.ApplyMap(mapping.Map{Version: 3, IONs: map[string][]string{"app": addrs[:1]}})
	if len(c.IONs()) != 1 {
		t.Fatal("newer map not applied")
	}
}

func TestWatchAppliesBusUpdates(t *testing.T) {
	store, addrs, _ := testStack(t, 2)
	c := newTestClient(t, store, 512)
	bus := mapping.NewBus()
	ch, cancelSub := bus.Subscribe()
	defer cancelSub()
	cancel := c.Watch(ch)
	defer cancel()

	bus.Publish(map[string][]string{"app": addrs})
	deadline := time.After(2 * time.Second)
	for len(c.IONs()) != 2 {
		select {
		case <-deadline:
			t.Fatal("watch never applied the update")
		case <-time.After(time.Millisecond):
		}
	}
	bus.Publish(map[string][]string{"app": nil})
	for len(c.IONs()) != 0 {
		select {
		case <-deadline:
			t.Fatal("watch never applied the second update")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestConcurrentWritersSharedFileThroughStack(t *testing.T) {
	store, addrs, _ := testStack(t, 3)
	const ranks = 8
	const region = 2048
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := NewClient(Config{AppID: "app", Direct: store, ChunkSize: 512})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			c.SetIONs(addrs)
			payload := bytes.Repeat([]byte{byte('A' + r)}, region)
			if _, err := c.Write("/shared", int64(r)*region, payload); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	buf := make([]byte, ranks*region)
	if _, err := store.Read("/shared", 0, buf); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		for i := 0; i < region; i += 97 {
			if buf[r*region+i] != byte('A'+r) {
				t.Fatalf("rank %d corrupted at %d", r, i)
			}
		}
	}
}

func TestClientCloseIdempotent(t *testing.T) {
	store, addrs, _ := testStack(t, 1)
	c := newTestClient(t, store, 512)
	c.SetIONs(addrs)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChunkSpanCoversExactly: the chunk decomposition tiles [off, off+n)
// with no gaps, overlaps, or boundary crossings.
func TestChunkSpanCoversExactly(t *testing.T) {
	c := newTestClient(t, pfs.NewStore(pfs.Config{}), 512)
	f := func(offRaw uint16, nRaw uint16) bool {
		off, n := int64(offRaw), int64(nRaw)+1
		next := off
		var total int64
		err := c.chunkSpan(off, n, func(idx, o, m int64) error {
			if o != next || m <= 0 {
				return errors.New("gap or empty extent")
			}
			if o/512 != idx || (o+m-1)/512 != idx {
				return errors.New("extent crosses a chunk boundary")
			}
			next = o + m
			total += m
			return nil
		})
		return err == nil && total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
