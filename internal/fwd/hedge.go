// Hedged requests: the tail-tolerance half of the gray-failure path. A
// span whose primary RPC exceeds the per-I/O-node hedge deadline — an
// adaptive percentile of that node's recently observed latencies, from
// the same sketch the health prober scores — gets one backup attempt:
//
//   - writes hedge to the SAME I/O node with the same (ClientID, Seq)
//     stamp, so whichever attempt arrives second is coalesced or replayed
//     by the daemon's dedup window (see internal/ion) and the bytes land
//     exactly once. That is why hedging requires Dedup: without the
//     window a duplicate write would be a second apply.
//   - reads hedge to the direct PFS path into a private buffer that is
//     only copied into the caller's slice if the hedge wins, so a late
//     primary can never race the copy.
//
// First usable response wins; the loser is drained in the background and
// its pooled buffers released. Hedges are capped by a Finagle-style token
// budget (each issued span earns a fraction of a token, each hedge spends
// one) so a cluster-wide slowdown degrades into at most Budget extra
// load, never a retry storm. Everything here is opt-in: with Hedge.Enabled
// false the client never constructs hedge state and the data path pays a
// single nil check.
package fwd

import (
	"errors"
	"sync"
	"time"

	"repro/internal/pfs"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// HedgeConfig parameterizes tail-tolerant hedged requests. The zero value
// disables hedging entirely.
type HedgeConfig struct {
	// Enabled turns hedging on. Requires Config.Dedup: the hedged write
	// is a same-stamp duplicate that only the daemon's dedup window can
	// make exactly-once.
	Enabled bool
	// Pct is the latency quantile (0,1) of a node's recent calls used as
	// the hedge deadline: an op slower than this is assumed stuck behind
	// a gray failure and a backup attempt launches. ≤0 or ≥1 selects
	// 0.95 (hedge the slowest ~5%).
	Pct float64
	// MinDelay floors the hedge deadline so microsecond-fast healthy
	// nodes do not hedge on scheduler jitter; ≤0 selects 1ms.
	MinDelay time.Duration
	// Budget is the fraction of a hedge token each issued span earns
	// (Finagle-style): with 0.1, at most ~10% of spans can hedge in
	// steady state. ≤0 selects 0.1.
	Budget float64
	// MaxTokens caps the token bucket so an idle period cannot bank an
	// unbounded hedge burst; ≤0 selects 8.
	MaxTokens float64
}

// withDefaults fills the derived defaults when hedging is enabled.
func (h HedgeConfig) withDefaults() HedgeConfig {
	if !h.Enabled {
		return h
	}
	if h.Pct <= 0 || h.Pct >= 1 {
		h.Pct = 0.95
	}
	if h.MinDelay <= 0 {
		h.MinDelay = time.Millisecond
	}
	if h.Budget <= 0 {
		h.Budget = 0.1
	}
	if h.MaxTokens <= 0 {
		h.MaxTokens = 8
	}
	return h
}

// hedgeState is a hedging client's machinery: the resolved config, the
// token budget, and the observability series. nil on non-hedging clients.
type hedgeState struct {
	cfg    HedgeConfig
	bucket hedgeBucket

	launched *telemetry.Counter
	wins     *telemetry.Counter
	denied   *telemetry.Counter
}

// hedgeBucket is the Finagle-style token budget: issued spans earn
// fractional tokens, a hedge spends a whole one.
type hedgeBucket struct {
	mu     sync.Mutex
	tokens float64
	max    float64
}

func (b *hedgeBucket) earn(x float64) {
	b.mu.Lock()
	b.tokens += x
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

func (b *hedgeBucket) trySpend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// ionResult carries one attempt's raw outcome between goroutines.
type ionResult struct {
	resp     *rpc.Message
	err      error
	degraded bool
}

// usable reports whether the attempt produced a response the span logic
// can consume as a win: any direct-path fallback (degraded, unavailable)
// must not win a write hedge, because the other attempt may still apply
// on the I/O node.
func (r ionResult) usable() bool { return r.err == nil && !r.degraded }

// drainION consumes the losing attempt's result and returns its pooled
// buffers to the transport.
func drainION(ch <-chan ionResult) {
	r := <-ch
	r.resp.Release()
}

// timedCall is callION plus the latency observation that feeds the shared
// sketch (and through it the health prober's fail-slow scorer and this
// client's own hedge deadlines). Sketch-less clients fall straight
// through — one nil check, no clock read.
func (c *Client) timedCall(addr string, t *rpc.Client, g *ionGate, req *rpc.Message) (*rpc.Message, error, bool) {
	if c.cfg.Latency == nil {
		return c.callION(t, g, req)
	}
	start := time.Now()
	resp, err, degraded := c.callION(t, g, req)
	if err == nil && !degraded {
		// Only accepted-and-answered calls are evidence of the node's
		// service latency; sheds and transport failures have their own
		// planes (overload detection, the breaker).
		c.cfg.Latency.Observe(addr, time.Since(start))
	}
	return resp, err, degraded
}

// hedgeDelay resolves the hedge deadline for addr: the configured
// quantile of its recent latencies, floored at MinDelay. ok=false (not
// enough samples yet) means do not hedge — the sketch cannot distinguish
// slow from unknown.
func (c *Client) hedgeDelay(addr string) (time.Duration, bool) {
	d, ok := c.cfg.Latency.Quantile(addr, c.hedge.cfg.Pct)
	if !ok {
		return 0, false
	}
	if d < c.hedge.cfg.MinDelay {
		d = c.hedge.cfg.MinDelay
	}
	return d, true
}

// callWrite issues one span's write RPC, hedged when the client is
// configured for it. The returned triple has exactly callION's contract,
// so sendSpan's fallback chain (degraded → direct, stale-epoch → remap,
// unavailable → failover) is untouched — hedging only changes which
// attempt's outcome feeds it.
func (c *Client) callWrite(v *routeView, s span, req *rpc.Message) (*rpc.Message, error, bool) {
	addr := v.addrs[s.target]
	t, g := v.conns[s.target], v.gates[s.target]
	h := c.hedge
	if h == nil {
		return c.timedCall(addr, t, g, req)
	}
	h.bucket.earn(h.cfg.Budget)
	delay, ok := c.hedgeDelay(addr)
	if !ok {
		return c.timedCall(addr, t, g, req)
	}

	// Both attempts work from a private heap copy of the message. Copying
	// the payload decouples the hedge from the caller's buffer: a losing
	// attempt keeps encoding after callWrite returns — and the moment
	// Write returns, the caller is free to reuse its slice. Copying the
	// Message keeps req itself out of the goroutines below, so the
	// caller's literal stays off the heap on the unhedged path (escape
	// analysis is path-insensitive).
	hreq := new(rpc.Message)
	*hreq = *req
	hreq.Data = append([]byte(nil), req.Data...)

	prim := make(chan ionResult, 1)
	go func() {
		resp, err, degraded := c.timedCall(addr, t, g, hreq)
		prim <- ionResult{resp, err, degraded}
	}()
	timer := time.NewTimer(delay)
	select {
	case r := <-prim:
		timer.Stop()
		return r.resp, r.err, r.degraded
	case <-timer.C:
	}
	if !h.bucket.trySpend() {
		h.denied.Inc()
		r := <-prim
		return r.resp, r.err, r.degraded
	}
	h.launched.Inc()

	// The duplicate shares the payload and — critically — the (ClientID,
	// Seq) stamp, so the daemon's dedup window coalesces the in-flight
	// pair or replays the committed outcome: one apply, two answers. A
	// fresh Message value is used because two concurrent Calls must not
	// share one encode source.
	dup := *hreq
	hch := make(chan ionResult, 1)
	go func() {
		resp, err, degraded := c.callION(t, g, &dup)
		hch <- ionResult{resp, err, degraded}
	}()

	var first ionResult
	firstIsHedge := false
	select {
	case first = <-prim:
	case first = <-hch:
		firstIsHedge = true
	}
	if first.usable() {
		if firstIsHedge {
			h.wins.Inc()
			go drainION(prim)
		} else {
			go drainION(hch)
		}
		return first.resp, first.err, first.degraded
	}
	// The first arrival cannot win (error or direct-path fallback): wait
	// for the other attempt rather than racing a direct write against an
	// ION apply that may still be in flight.
	var second ionResult
	if firstIsHedge {
		second = <-prim
	} else {
		second = <-hch
	}
	if second.usable() {
		if !firstIsHedge {
			h.wins.Inc() // the second arrival was the hedge
		}
		first.resp.Release()
		return second.resp, second.err, second.degraded
	}
	// Both attempts failed: surface the primary's outcome so the error
	// semantics match the unhedged path exactly.
	primary, hedge := first, second
	if firstIsHedge {
		primary, hedge = second, first
	}
	hedge.resp.Release()
	return primary.resp, primary.err, primary.degraded
}

// callRead issues one span's read RPC, hedged to the direct PFS path when
// configured. won=true means the hedge completed first: k bytes are
// already copied into dst and counted, and the caller returns them
// without touching the (possibly still in-flight) primary. Otherwise the
// returned triple is the primary's outcome with callION's contract.
func (c *Client) callRead(v *routeView, path string, s span, req *rpc.Message, dst []byte) (resp *rpc.Message, err error, degraded bool, k int, won bool) {
	addr := v.addrs[s.target]
	t, g := v.conns[s.target], v.gates[s.target]
	h := c.hedge
	if h == nil {
		resp, err, degraded = c.timedCall(addr, t, g, req)
		return resp, err, degraded, 0, false
	}
	h.bucket.earn(h.cfg.Budget)
	delay, ok := c.hedgeDelay(addr)
	if !ok {
		resp, err, degraded = c.timedCall(addr, t, g, req)
		return resp, err, degraded, 0, false
	}

	// A private heap copy keeps req out of the goroutine below, so the
	// caller's Message literal stays off the heap on the unhedged path.
	hreq := new(rpc.Message)
	*hreq = *req

	prim := make(chan ionResult, 1)
	go func() {
		r, e, d := c.timedCall(addr, t, g, hreq)
		prim <- ionResult{r, e, d}
	}()
	timer := time.NewTimer(delay)
	select {
	case r := <-prim:
		timer.Stop()
		return r.resp, r.err, r.degraded, 0, false
	case <-timer.C:
	}
	if !h.bucket.trySpend() {
		h.denied.Inc()
		r := <-prim
		return r.resp, r.err, r.degraded, 0, false
	}
	h.launched.Inc()

	// The hedge reads into a private buffer: the primary owns dst until
	// the hedge is declared the winner, so a late primary copy can never
	// race the application's view of its own slice.
	type directRead struct {
		buf []byte
		n   int
		err error
	}
	hch := make(chan directRead, 1)
	go func() {
		buf := make([]byte, s.n)
		n, derr := c.cfg.Direct.Read(path, s.off, buf)
		hch <- directRead{buf, n, derr}
	}()
	select {
	case r := <-prim:
		go func() { <-hch }() // discard the direct read; it holds no pooled buffers
		return r.resp, r.err, r.degraded, 0, false
	case hr := <-hch:
		if hr.err == nil || errors.Is(hr.err, pfs.ErrShortRead) {
			h.wins.Inc()
			k = copy(dst, hr.buf[:hr.n])
			c.stats.bytesIn.Add(int64(k))
			go drainION(prim)
			return nil, nil, false, k, true
		}
		// The direct path itself failed: the primary is the only hope.
		r := <-prim
		return r.resp, r.err, r.degraded, 0, false
	}
}
