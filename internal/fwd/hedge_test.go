package fwd

// Hedged-request tests: the client contract (opt-in validation, budget,
// win accounting) and the interplay with the daemon's dedup window and
// epoch fencing — the two integrity planes a duplicated write must not
// be able to defeat.

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/agios"
	"repro/internal/faultnet"
	"repro/internal/ion"
	"repro/internal/latency"
	"repro/internal/mapping"
	"repro/internal/pfs"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// slowDaemon starts one real I/O-node daemon behind a faultnet injector,
// so tests can make it arbitrarily (gray-)slow while its dedup window and
// fence enforcement stay fully real.
func slowDaemon(t *testing.T, cfg ion.Config, store *pfs.Store, inj *faultnet.Injector) (*ion.Daemon, string) {
	t.Helper()
	d := ion.New(cfg, store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.StartOn(faultnet.WrapListener(ln, inj))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, addr
}

// seedLatency fills the shared sketch so the hedge deadline for addr is
// known before the first real sample lands.
func seedLatency(sk *latency.Sketch, addr string, d time.Duration) {
	for i := 0; i < latency.DefaultWindow; i++ {
		sk.Observe(addr, d)
	}
}

func TestHedgeRequiresDedup(t *testing.T) {
	_, err := NewClient(Config{
		AppID:  "app",
		Direct: pfs.NewStore(pfs.Config{}),
		Hedge:  HedgeConfig{Enabled: true},
	})
	if err == nil {
		t.Fatal("Hedge.Enabled without Dedup must be rejected")
	}
}

// TestHedgedWriteDedupInFlight drives the hot interplay: the hedge is a
// same-stamp duplicate launched while the primary is still in flight on a
// gray-slow daemon, so the daemon's dedup window must coalesce the pair
// into one apply and answer the loser with a replay.
func TestHedgedWriteDedupInFlight(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	inj := faultnet.NewInjector(faultnet.Plan{})
	d, addr := slowDaemon(t, ion.Config{ID: "ion0", Scheduler: agios.NewFIFO(), DedupWindow: 64}, store, inj)

	sk := latency.NewSketch(0)
	reg := telemetry.New()
	c, err := NewClient(Config{
		AppID: "app", Direct: store, ChunkSize: 256,
		Dedup:     true,
		RPC:       rpc.Options{CallTimeout: 5 * time.Second},
		Hedge:     HedgeConfig{Enabled: true, Pct: 0.5, Budget: 1, MaxTokens: 8},
		Latency:   sk,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIONs([]string{addr})
	if err := c.Create("/h"); err != nil {
		t.Fatal(err)
	}
	seedLatency(sk, addr, 2*time.Millisecond)

	// Every I/O on the daemon now pays 40ms: the primary write is far past
	// the ~2ms hedge deadline when the duplicate launches, and both
	// attempts reach the daemon.
	inj.Set(faultnet.Plan{Kind: faultnet.Slow, Delay: 40 * time.Millisecond})
	payload := bytes.Repeat([]byte{9}, 200) // one span
	n, err := c.Write("/h", 0, payload)
	if err != nil || n != len(payload) {
		t.Fatalf("hedged write: n=%d err=%v", n, err)
	}
	inj.Set(faultnet.Plan{})

	if got := reg.Counter("fwd_hedge_launched_total{app=\"app\"}").Value(); got < 1 {
		t.Fatalf("fwd_hedge_launched_total = %d, want ≥ 1", got)
	}
	// The dedup window turned the duplicate into a replay: exactly one
	// apply, two answers. The losing attempt drains in the background, so
	// poll briefly for its replay to land.
	deadline := time.Now().Add(2 * time.Second)
	for d.Stats().DedupReplays != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("daemon dedup replays = %d, want exactly 1 (one apply for two attempts)", d.Stats().DedupReplays)
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := make([]byte, len(payload))
	if _, err := store.Read("/h", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("hedged write lost or corrupted bytes")
	}
	// The span's bytes were counted exactly once despite two wire attempts.
	if s := c.Stats(); s.BytesOut != int64(len(payload)) {
		t.Fatalf("BytesOut = %d, want %d (hedge must not double-count)", s.BytesOut, len(payload))
	}
}

// TestHedgedReadWinsFromDirectPath pins the deterministic hedge win: a
// gray-slow daemon holds the primary read while the direct-PFS hedge
// completes, and the caller gets correct bytes counted exactly once.
func TestHedgedReadWinsFromDirectPath(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	inj := faultnet.NewInjector(faultnet.Plan{})
	_, addr := slowDaemon(t, ion.Config{ID: "ion0", Scheduler: agios.NewFIFO(), DedupWindow: 64}, store, inj)

	payload := bytes.Repeat([]byte{5}, 300)
	if err := store.Create("/r"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write("/r", 0, payload); err != nil {
		t.Fatal(err)
	}

	sk := latency.NewSketch(0)
	reg := telemetry.New()
	c, err := NewClient(Config{
		AppID: "app", Direct: store, ChunkSize: 512,
		Dedup:     true,
		RPC:       rpc.Options{CallTimeout: 10 * time.Second},
		Hedge:     HedgeConfig{Enabled: true, Pct: 0.5, Budget: 1, MaxTokens: 8},
		Latency:   sk,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIONs([]string{addr})
	seedLatency(sk, addr, 2*time.Millisecond)

	// The daemon stalls every I/O for 2s; the hedge (direct PFS) answers
	// in microseconds, so it must win long before the primary returns.
	inj.Set(faultnet.Plan{Kind: faultnet.Slow, Delay: 2 * time.Second})
	buf := make([]byte, len(payload))
	start := time.Now()
	n, err := c.Read("/r", 0, buf)
	elapsed := time.Since(start)
	inj.Set(faultnet.Plan{}) // release the drained primary promptly
	if err != nil || n != len(payload) {
		t.Fatalf("hedged read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("hedged read returned wrong bytes")
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("read took %v: the hedge never won against the stalled primary", elapsed)
	}
	if got := reg.Counter("fwd_hedge_wins_total{app=\"app\"}").Value(); got != 1 {
		t.Fatalf("fwd_hedge_wins_total = %d, want 1", got)
	}
	if s := c.Stats(); s.BytesIn != int64(len(payload)) {
		t.Fatalf("BytesIn = %d, want %d (winner counts, loser must not)", s.BytesIn, len(payload))
	}
}

// TestHedgeBudgetDenies pins the Finagle-style cap: once the token bucket
// is spent, slow ops wait for their primary instead of hedging.
func TestHedgeBudgetDenies(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	inj := faultnet.NewInjector(faultnet.Plan{})
	_, addr := slowDaemon(t, ion.Config{ID: "ion0", Scheduler: agios.NewFIFO(), DedupWindow: 64}, store, inj)

	payload := bytes.Repeat([]byte{1}, 100)
	if err := store.Create("/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write("/b", 0, payload); err != nil {
		t.Fatal(err)
	}

	sk := latency.NewSketch(0)
	reg := telemetry.New()
	c, err := NewClient(Config{
		AppID: "app", Direct: store, ChunkSize: 512,
		Dedup: true,
		RPC:   rpc.Options{CallTimeout: 10 * time.Second},
		// One banked token, near-zero earn rate: the first slow op spends
		// the bucket, the second is denied.
		Hedge:     HedgeConfig{Enabled: true, Pct: 0.5, Budget: 0.01, MaxTokens: 1},
		Latency:   sk,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIONs([]string{addr})
	seedLatency(sk, addr, 2*time.Millisecond)

	inj.Set(faultnet.Plan{Kind: faultnet.Slow, Delay: 100 * time.Millisecond})
	buf := make([]byte, len(payload))
	for i := 0; i < 2; i++ {
		if _, err := c.Read("/b", 0, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	inj.Set(faultnet.Plan{})
	if got := reg.Counter("fwd_hedge_launched_total{app=\"app\"}").Value(); got != 1 {
		t.Fatalf("fwd_hedge_launched_total = %d, want 1", got)
	}
	if got := reg.Counter("fwd_hedge_denied_total{app=\"app\"}").Value(); got != 1 {
		t.Fatalf("fwd_hedge_denied_total = %d, want 1", got)
	}
}

// TestHedgeEpochFenceInterplay: a fenced daemon rejects both the primary
// and the hedged duplicate as stale; the client must take the normal
// remap-then-direct path exactly once — no double apply, no double count.
func TestHedgeEpochFenceInterplay(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	inj := faultnet.NewInjector(faultnet.Plan{})
	d, addr := slowDaemon(t, ion.Config{
		ID: "ion0", Scheduler: agios.NewFIFO(), DedupWindow: 64, EpochFencing: true,
	}, store, inj)

	sk := latency.NewSketch(0)
	reg := telemetry.New()
	c, err := NewClient(Config{
		AppID: "app", Direct: store, ChunkSize: 256,
		Dedup:        true,
		EpochFencing: true,
		EpochWait:    50 * time.Millisecond,
		RPC:          rpc.Options{CallTimeout: 5 * time.Second},
		Hedge:        HedgeConfig{Enabled: true, Pct: 0.5, Budget: 1, MaxTokens: 8},
		Latency:      sk,
		Telemetry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ApplyMap(mapping.Map{Version: 5, IONs: map[string][]string{"app": {addr}}})
	if err := c.Create("/f"); err != nil {
		t.Fatal(err)
	}
	seedLatency(sk, addr, 2*time.Millisecond)

	// Fence above the client's epoch, and slow the daemon so the hedge
	// launches before the primary's stale rejection arrives.
	d.SetFence(100)
	inj.Set(faultnet.Plan{Kind: faultnet.Slow, Delay: 40 * time.Millisecond})
	payload := bytes.Repeat([]byte{3}, 200)
	n, err := c.Write("/f", 0, payload)
	inj.Set(faultnet.Plan{})
	if err != nil || n != len(payload) {
		t.Fatalf("fenced hedged write: n=%d err=%v", n, err)
	}

	if got := reg.Counter("fwd_hedge_launched_total{app=\"app\"}").Value(); got < 1 {
		t.Fatalf("fwd_hedge_launched_total = %d, want ≥ 1", got)
	}
	if got := reg.Counter("epoch_stale_retries_total{app=\"app\"}").Value(); got != 1 {
		t.Fatalf("epoch_stale_retries_total = %d, want exactly 1 (hedge must not double-count the fence)", got)
	}
	// The fenced daemon never applied; the direct fallback landed the
	// bytes exactly once.
	got := make([]byte, len(payload))
	if _, err := store.Read("/f", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fenced hedged write lost bytes")
	}
	if s := c.Stats(); s.BytesOut != int64(len(payload)) {
		t.Fatalf("BytesOut = %d, want %d", s.BytesOut, len(payload))
	}
}
