package fwd

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/agios"
	"repro/internal/ion"
	"repro/internal/mapping"
	"repro/internal/pfs"
)

// TestRouteHashMatchesFNV pins the inlined incremental FNV-1a routing to
// the original hash/fnv implementation bit for bit: the rewrite must not
// move a single chunk to a different I/O node.
func TestRouteHashMatchesFNV(t *testing.T) {
	paths := []string{"", "/", "/a", "/some/long/path.bin", strings.Repeat("x", 300)}
	idxs := []int64{0, 1, 7, 255, 256, 1 << 20, 1 << 62, -1}
	for _, p := range paths {
		for _, idx := range idxs {
			h := fnv.New64a()
			h.Write([]byte(p))
			var b [8]byte
			for i := 0; i < 8; i++ {
				b[i] = byte(idx >> (8 * i))
			}
			h.Write(b[:])
			want := h.Sum64()
			if got := fnvChunk(fnvString(fnvOffset64, p), idx); got != want {
				t.Fatalf("path %q idx %d: inline hash %#x, hash/fnv %#x", p, idx, got, want)
			}
		}
	}
}

// TestBuildSpansProperties checks the span invariants over many request
// shapes: spans tile [off, off+n) exactly, every chunk inside a span
// routes to the span's target, no span exceeds the coalesce limit, and
// adjacent spans are split for a reason (different target or the limit).
func TestBuildSpansProperties(t *testing.T) {
	c, err := NewClient(Config{
		AppID: "app", Direct: pfs.NewStore(pfs.Config{}),
		ChunkSize: 7, CoalesceLimit: 21, // three chunks per span at most
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v := &routeView{addrs: []string{"a", "b"}} // conns untouched by buildSpans
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		off := rng.Int63n(100)
		n := 1 + rng.Int63n(200)
		path := fmt.Sprintf("/p%d", trial%17)
		spans := c.buildSpans(v, path, off, n, nil)
		pos := off
		for i, s := range spans {
			if s.off != pos || s.n <= 0 || s.chunks <= 0 {
				t.Fatalf("trial %d: span %d not contiguous: %+v at pos %d", trial, i, s, pos)
			}
			if s.n > c.cfg.CoalesceLimit && s.chunks > 1 {
				t.Fatalf("trial %d: span %d exceeds coalesce limit: %+v", trial, i, s)
			}
			ph := fnvString(fnvOffset64, path)
			if err := c.chunkSpan(s.off, s.n, func(idx, _, _ int64) error {
				if got := int(fnvChunk(ph, idx) % 2); got != s.target {
					return fmt.Errorf("chunk %d routes to %d, span target %d", idx, got, s.target)
				}
				return nil
			}); err != nil {
				t.Fatalf("trial %d: span %d: %v", trial, i, err)
			}
			if i > 0 {
				prev := spans[i-1]
				if prev.target == s.target && prev.n+s.n <= c.cfg.CoalesceLimit {
					t.Fatalf("trial %d: spans %d/%d should have merged: %+v %+v", trial, i-1, i, prev, s)
				}
			}
			pos += s.n
		}
		if pos != off+n {
			t.Fatalf("trial %d: spans cover [%d,%d), want [%d,%d)", trial, off, pos, off, off+n)
		}
	}
}

// TestCoalescingMergesContiguousSameTarget: with one I/O node every chunk
// shares a target, so a multi-chunk write travels as ONE wire request —
// and the data still round-trips intact.
func TestCoalescingMergesContiguousSameTarget(t *testing.T) {
	store, addrs, daemons := testStack(t, 1)
	c := newTestClient(t, store, 1024)
	c.SetIONs(addrs)

	data := make([]byte, 16*1024) // 16 chunks
	rand.New(rand.NewSource(5)).Read(data)
	if n, err := c.Write("/coalesce", 0, data); err != nil || n != len(data) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if st := c.Stats(); st.ForwardedOps != 1 {
		t.Fatalf("16 same-target chunks should coalesce to 1 wire request, got %d", st.ForwardedOps)
	}
	if ds := daemons[0].Stats(); ds.Writes != 1 || ds.BytesIn != int64(len(data)) {
		t.Fatalf("daemon saw %d writes / %d bytes, want 1 / %d", ds.Writes, ds.BytesIn, len(data))
	}
	got := make([]byte, len(data))
	if _, err := c.Read("/coalesce", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("coalesced round trip corrupted")
	}
}

// TestCoalesceLimitSplitsSpans: the limit bounds a span even when every
// chunk routes to the same node.
func TestCoalesceLimitSplitsSpans(t *testing.T) {
	rec := &stampRecorder{}
	addr := startRecorder(t, rec)
	c, err := NewClient(Config{
		AppID: "app", Direct: pfs.NewStore(pfs.Config{}),
		ChunkSize: 4, CoalesceLimit: 8, // two chunks per span
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIONs([]string{addr})
	if _, err := c.Write("/lim", 0, make([]byte, 20)); err != nil { // 5 chunks
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.stamps) != 3 { // 8 + 8 + 4
		t.Fatalf("saw %d wire requests, want 3 (limit 8, 5 chunks of 4)", len(rec.stamps))
	}
}

// TestApplyMapOutOfOrderConcurrent: mapping updates delivered concurrently
// and out of order must converge on the highest version's allocation. The
// old check-release-reacquire sequence could install an older allocation
// over a newer one while recording the newer version.
func TestApplyMapOutOfOrderConcurrent(t *testing.T) {
	c := newTestClient(t, pfs.NewStore(pfs.Config{}), 0)
	const versions = 64
	var wg sync.WaitGroup
	for v := 1; v <= versions; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			c.ApplyMap(mapping.Map{
				Version: uint64(v),
				IONs:    map[string][]string{"app": {fmt.Sprintf("127.0.0.1:%d", 10000+v)}},
			})
		}(v)
	}
	wg.Wait()
	want := fmt.Sprintf("127.0.0.1:%d", 10000+versions)
	if got := c.IONs(); len(got) != 1 || got[0] != want {
		t.Fatalf("after concurrent out-of-order delivery: addrs=%v, want [%s]", got, want)
	}
	// A straggler with a stale version must change nothing.
	c.ApplyMap(mapping.Map{Version: 1, IONs: map[string][]string{"app": {"127.0.0.1:1"}}})
	if got := c.IONs(); len(got) != 1 || got[0] != want {
		t.Fatalf("stale map applied: addrs=%v", got)
	}
}

// TestWatchCancelConcurrent: the cancel func returned by Watch must be
// safe to call from several goroutines (the old select-default guard let
// two callers race into close(stop) and panic).
func TestWatchCancelConcurrent(t *testing.T) {
	c := newTestClient(t, pfs.NewStore(pfs.Config{}), 0)
	ch := make(chan mapping.Map)
	cancel := c.Watch(ch)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cancel()
		}()
	}
	wg.Wait()
	cancel() // and again, after the watcher is long gone
}

// TestRPCInstrumentedOnPrivateRegistry: with no Config.Telemetry the
// client falls back to a private registry — and the rpc connections it
// dials must land their series on that SAME registry, next to the fwd
// series (the old code handed the rpc layer the nil config value, losing
// every rpc series).
func TestRPCInstrumentedOnPrivateRegistry(t *testing.T) {
	_, addrs, _ := testStack(t, 1)
	c := newTestClient(t, pfs.NewStore(pfs.Config{}), 0) // nil Telemetry
	c.SetIONs(addrs)
	if err := c.Create("/instrumented"); err != nil {
		t.Fatal(err)
	}
	snap := c.reg.Snapshot()
	if snap.Counters["rpc_calls_total"] == 0 {
		t.Fatalf("rpc series missing from the client registry: %v", snap.Counters)
	}
	if snap.Counters[`fwd_forwarded_ops_total{app="app"}`] == 0 {
		t.Fatalf("fwd series missing from the client registry: %v", snap.Counters)
	}
}

// TestReadHoleContiguousPrefix: a read whose middle chunk comes back
// short must report only the contiguous prefix, even when later chunks
// returned data — the count may never cover a hole. (The old code summed
// every chunk's bytes, so 4 + 0 + 4 reported 8 "read" bytes with a hole
// at [4,8).)
func TestReadHoleContiguousPrefix(t *testing.T) {
	fullStore := pfs.NewStore(pfs.Config{})
	shortStore := pfs.NewStore(pfs.Config{})
	addrs := make([]string, 2)
	for i, st := range []*pfs.Store{fullStore, shortStore} {
		d := ion.New(ion.Config{ID: fmt.Sprintf("hole%d", i), Scheduler: agios.NewFIFO()}, st)
		addr, err := d.Start("")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		addrs[i] = addr
	}
	c, err := NewClient(Config{
		AppID: "app", Direct: pfs.NewStore(pfs.Config{}),
		ChunkSize: 4, CoalesceLimit: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIONs(addrs)

	// Pick a path whose chunk 1 routes to the short daemon and chunk 2 to
	// the full one, so the hole sits between two readable chunks.
	var path string
	for i := 0; ; i++ {
		p := fmt.Sprintf("/hole%d", i)
		if c.route(p, 1).Addr() == addrs[1] && c.route(p, 2).Addr() == addrs[0] {
			path = p
			break
		}
	}
	data := bytes.Repeat([]byte{9}, 12)
	if err := fullStore.Create(path); err != nil {
		t.Fatal(err)
	}
	if _, err := fullStore.Write(path, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := shortStore.Create(path); err != nil {
		t.Fatal(err)
	}
	if _, err := shortStore.Write(path, 0, data[:4]); err != nil { // chunk 1 missing
		t.Fatal(err)
	}

	buf := make([]byte, 12)
	n, err := c.Read(path, 0, buf)
	if !errors.Is(err, pfs.ErrShortRead) {
		t.Fatalf("want ErrShortRead for a holey read, got n=%d err=%v", n, err)
	}
	if n != 4 {
		t.Fatalf("count %d covers the hole at [4,8); want the contiguous prefix 4", n)
	}
}
