package fwd

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/qos"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// ackServer is a minimal I/O-node stand-in that acks writes and records
// the QoS priority byte of every request it sees.
func ackServer(t *testing.T) (addr string, lastPrio *atomic.Uint32) {
	t.Helper()
	lastPrio = &atomic.Uint32{}
	srv := rpc.NewServer(func(req *rpc.Message) *rpc.Message {
		lastPrio.Store(uint32(req.Priority))
		req.Size = int64(len(req.Data))
		req.Data = nil
		return req
	})
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, lastPrio
}

func qosClient(t *testing.T, store pfs.FileSystem, class *qos.Class, reg *telemetry.Registry) *Client {
	t.Helper()
	c, err := NewClient(Config{AppID: "qapp", Direct: store, ChunkSize: 1024, QoS: class, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestQoSScavengerDegradesToDirect pins the scavenger admission contract:
// a write the empty bucket refuses is satisfied on the direct PFS path —
// correctly, with the degrade observable in both the client stats and the
// per-tenant telemetry series.
func TestQoSScavengerDegradesToDirect(t *testing.T) {
	store, addrs, daemons := testStack(t, 2)
	reg := telemetry.New()
	// Burst admits exactly one 4 KiB write; the refill rate is so slow the
	// second write inside the test window must find an empty bucket.
	class := &qos.Class{Name: "scav", Tier: qos.TierScavenger, Rate: 1, Burst: 4096}
	c := qosClient(t, store, class, reg)
	c.SetIONs(addrs)

	data := bytes.Repeat([]byte{7}, 4096)
	if _, err := c.Write("/s", 0, data); err != nil {
		t.Fatal(err)
	}
	data2 := bytes.Repeat([]byte{9}, 4096)
	if _, err := c.Write("/s", 4096, data2); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DegradedOps != 1 {
		t.Fatalf("DegradedOps = %d, want 1 (second write refused by the bucket)", st.DegradedOps)
	}
	// The degraded write bypassed the daemons entirely.
	var daemonBytes int64
	for _, d := range daemons {
		daemonBytes += d.Stats().BytesIn
	}
	if daemonBytes != 4096 {
		t.Fatalf("daemon ingress %d, want only the admitted write (4096)", daemonBytes)
	}
	snap := reg.Snapshot()
	if snap.Counters[`qos_degraded_total{app="qapp"}`] != 1 {
		t.Fatalf("qos_degraded_total missing or wrong: %v", snap.Counters)
	}
	if snap.Counters[`qos_admitted_total{app="qapp"}`] == 0 {
		t.Fatal("qos_admitted_total not counted for the admitted write")
	}
	// Both writes are durable and correct regardless of the path taken
	// (the verification read itself degrades too — the bucket is shared —
	// which is exactly the scavenger contract: correct, just direct).
	got := make([]byte, 8192)
	if _, err := c.Read("/s", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:4096], data) || !bytes.Equal(got[4096:], data2) {
		t.Fatal("degraded write corrupted data")
	}
}

// TestQoSStandardPacesInsteadOfRefusing pins the guaranteed/standard
// admission contract: an empty bucket never refuses the op — it defers it
// for the bucket's repayment time, observable as qos_deferred_total.
func TestQoSStandardPacesInsteadOfRefusing(t *testing.T) {
	store, addrs, _ := testStack(t, 2)
	reg := telemetry.New()
	class := &qos.Class{Name: "std", Tier: qos.TierStandard, Rate: 1 << 20, Burst: 4096}
	c := qosClient(t, store, class, reg)
	c.SetIONs(addrs)
	var paced atomic.Int64
	c.qos.sleep = func(d time.Duration) { paced.Add(int64(d)) }

	data := bytes.Repeat([]byte{3}, 4096)
	if _, err := c.Write("/p", 0, data); err != nil { // drains the burst
		t.Fatal(err)
	}
	if _, err := c.Write("/p", 4096, data); err != nil { // must pace, not refuse
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DegradedOps != 0 {
		t.Fatalf("standard tier degraded: %+v", st)
	}
	if st.ForwardedOps == 0 || st.DirectOps != 0 {
		t.Fatalf("paced write did not stay on the forwarded path: %+v", st)
	}
	if paced.Load() == 0 {
		t.Fatal("second write was not paced despite an empty bucket")
	}
	snap := reg.Snapshot()
	if snap.Counters[`qos_deferred_total{app="qapp"}`] != 1 {
		t.Fatalf("qos_deferred_total = %d, want 1", snap.Counters[`qos_deferred_total{app="qapp"}`])
	}
	if snap.Counters[`qos_admitted_total{app="qapp"}`] != 2 {
		t.Fatalf("qos_admitted_total = %d, want both writes", snap.Counters[`qos_admitted_total{app="qapp"}`])
	}
}

// TestQoSPriorityRidesTheWire checks every forwarded request of a classed
// client carries its tier's priority byte — and that an unclassed client
// stamps nothing (priority 0, no trailer, the pre-QoS frame).
func TestQoSPriorityRidesTheWire(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	addr, lastPrio := ackServer(t)

	gold := &qos.Class{Name: "gold", Tier: qos.TierGuaranteed}
	c := qosClient(t, store, gold, nil)
	c.SetIONs([]string{addr})
	if _, err := c.Write("/w", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := uint8(lastPrio.Load()); got != qos.PriorityGuaranteed {
		t.Fatalf("guaranteed write carried priority %d, want %d", got, qos.PriorityGuaranteed)
	}
	if err := c.Fsync("/w"); err != nil {
		t.Fatal(err)
	}
	if got := uint8(lastPrio.Load()); got != qos.PriorityGuaranteed {
		t.Fatalf("metadata op carried priority %d, want %d", got, qos.PriorityGuaranteed)
	}

	plain := newTestClient(t, store, 1024)
	plain.SetIONs([]string{addr})
	if _, err := plain.Write("/w2", 0, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if got := uint8(lastPrio.Load()); got != 0 {
		t.Fatalf("unclassed write carried priority %d, want 0", got)
	}
}

// TestQoSZeroConfigHasNoSeries pins opt-in observability: a client built
// without a class registers no qos_* series at all.
func TestQoSZeroConfigHasNoSeries(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	reg := telemetry.New()
	c, err := NewClient(Config{AppID: "plain", Direct: store, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write("/z", 0, []byte("z")); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for name := range snap.Counters {
		if strings.HasPrefix(name, "qos_") {
			t.Fatalf("unclassed client registered %s", name)
		}
	}
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "qos_") {
			t.Fatalf("unclassed client registered %s", name)
		}
	}
}
