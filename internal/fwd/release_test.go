package fwd

// ReleaseConn tests: the conn-pool pruning hook the elastic stack calls
// when an I/O node is decommissioned for good.

import "testing"

func TestReleaseConnPrunesOnlyFormerNodes(t *testing.T) {
	store, addrs, _ := testStack(t, 3)
	c := newTestClient(t, store, 64)
	c.SetIONs(addrs)

	// Releasing a node still in the allocation must be refused silently:
	// the route view depends on that connection.
	c.ReleaseConn(addrs[0])
	c.mu.Lock()
	_, kept := c.conns[addrs[0]]
	c.mu.Unlock()
	if !kept {
		t.Fatal("ReleaseConn closed a connection still in the allocation")
	}

	// Remap away from addrs[2]; its connection stays pooled (map-back is
	// cheap) until the release says the node is gone for good.
	c.SetIONs(addrs[:2])
	c.mu.Lock()
	_, pooled := c.conns[addrs[2]]
	c.mu.Unlock()
	if !pooled {
		t.Fatal("remap dropped the pooled connection (pooling across remaps is deliberate)")
	}
	c.ReleaseConn(addrs[2])
	c.mu.Lock()
	_, pooled = c.conns[addrs[2]]
	c.mu.Unlock()
	if pooled {
		t.Fatal("ReleaseConn left the decommissioned node's connection pooled")
	}

	// Unknown address: no-op.
	c.ReleaseConn("nobody:1")

	// I/O keeps working on the surviving allocation.
	if _, err := c.Write("/f", 0, []byte("still forwarding")); err != nil {
		t.Fatalf("write after release: %v", err)
	}
}

func TestReleaseConnThenRemapBackRedials(t *testing.T) {
	store, addrs, _ := testStack(t, 2)
	c := newTestClient(t, store, 64)
	c.SetIONs(addrs)
	c.SetIONs(addrs[:1])
	c.ReleaseConn(addrs[1])

	// The address comes back (a new daemon on the same endpoint would
	// look identical): the client must redial, not reuse a closed conn.
	c.SetIONs(addrs)
	if _, err := c.Write("/g", 0, []byte(pattern(256))); err != nil {
		t.Fatalf("write after remap-back: %v", err)
	}
}

// A decommission can race an op that already picked its route: the op
// holds a view whose pooled rpc client ReleaseConn has just closed. That
// op must take the ordinary failover path to the direct PFS — never
// surface rpc.ErrClosed (or a raw transport error) to the application.
func TestReleaseConnRaceFailsOverClosedClient(t *testing.T) {
	store, addrs, _ := testStack(t, 1)
	c := newTestClient(t, store, 64)
	c.SetIONs(addrs)

	// Close the node's rpc client out from under the live route view —
	// the observable state an in-flight op sees when the remap and the
	// release land between its route pick and its call.
	c.mu.Lock()
	c.conns[addrs[0]].Close()
	c.mu.Unlock()

	data := []byte(pattern(256))
	n, err := c.Write("/race", 0, data)
	if err != nil || n != len(data) {
		t.Fatalf("write on released client: n=%d err=%v (want clean failover)", n, err)
	}
	if c.Stats().FailoverOps == 0 {
		t.Fatal("closed-client write did not count as a failover")
	}
	got := make([]byte, len(data))
	if n, err := store.Read("/race", 0, got); err != nil || n != len(data) || string(got) != string(data) {
		t.Fatalf("bytes not on the PFS via the direct path: n=%d err=%v", n, err)
	}
}

func pattern(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return string(b)
}
