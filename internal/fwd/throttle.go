// Adaptive client-side throttling: the compute-node half of the overload
// protection path. Each I/O node gets an AIMD admission window on the
// client — additive increase on success, multiplicative decrease on a busy
// (shed) response — so a bursty application backs off the moment a daemon
// starts shedding, instead of hammering it with retries. Busy retries are
// paced by the server's retry-after hint with equal jitter; under
// *sustained* saturation (DegradeAfter consecutive sheds) chunks degrade
// to the direct PFS path, and a breaker-style probe after the pacing
// interval lets the window reopen once the daemon drains.
package fwd

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ThrottleConfig parameterizes per-ION adaptive admission. The zero value
// disables throttling entirely: calls pass straight through, preserving
// the historical client behavior byte for byte.
type ThrottleConfig struct {
	// Enabled turns the AIMD window on.
	Enabled bool
	// MinWindow is the floor the window shrinks to; ≤0 selects 1.
	MinWindow int
	// MaxWindow is the ceiling the window recovers to; ≤0 selects 32.
	MaxWindow int
	// InitialWindow is the starting window; ≤0 selects MaxWindow (start
	// optimistic, shrink on evidence).
	InitialWindow int
	// BusyRetries is how many hint-paced retries one chunk gets before it
	// degrades to the direct PFS path; ≤0 selects 2.
	BusyRetries int
	// DegradeAfter is how many consecutive busy responses from one I/O
	// node mark it saturated — after which chunks degrade immediately
	// (without waiting out the pacing interval) until a probe succeeds;
	// ≤0 selects 4.
	DegradeAfter int
	// RetryAfterFloor substitutes for a missing or zero server hint;
	// ≤0 selects 1ms.
	RetryAfterFloor time.Duration
	// RetryAfterCap bounds the exponential hint growth under repeated
	// sheds; ≤0 selects 100ms.
	RetryAfterCap time.Duration
	// IdleRecovery restores a shrunken window to InitialWindow when the
	// gate has been idle (no acquire) for at least this long: the AIMD
	// growth path only runs on successes, so without it a window halved
	// during a burst stays pinned small across an idle gap — the
	// saturation evidence is stale long before the next burst arrives.
	// ≤0 selects 30s.
	IdleRecovery time.Duration
}

// withDefaults fills the derived defaults when throttling is enabled.
func (t ThrottleConfig) withDefaults() ThrottleConfig {
	if !t.Enabled {
		return t
	}
	if t.MinWindow <= 0 {
		t.MinWindow = 1
	}
	if t.MaxWindow < t.MinWindow {
		t.MaxWindow = 32
		if t.MaxWindow < t.MinWindow {
			t.MaxWindow = t.MinWindow
		}
	}
	if t.InitialWindow <= 0 || t.InitialWindow > t.MaxWindow {
		t.InitialWindow = t.MaxWindow
	}
	if t.BusyRetries <= 0 {
		t.BusyRetries = 2
	}
	if t.DegradeAfter <= 0 {
		t.DegradeAfter = 4
	}
	if t.RetryAfterFloor <= 0 {
		t.RetryAfterFloor = time.Millisecond
	}
	if t.RetryAfterCap <= 0 {
		t.RetryAfterCap = 100 * time.Millisecond
	}
	if t.IdleRecovery <= 0 {
		t.IdleRecovery = 30 * time.Second
	}
	return t
}

// ionGate is the per-I/O-node AIMD state. All fields are guarded by mu;
// acquire blocks callers while the in-flight count fills the window, so
// the gate is also the client's local queue — backpressure surfaces to
// the application as write latency, not as lost requests.
type ionGate struct {
	cfg ThrottleConfig
	now func() time.Time // clock seam; time.Now outside tests

	mu         sync.Mutex
	cond       *sync.Cond
	window     float64 // fractional AIMD window; int floor admits
	inflight   int
	consecBusy int       // consecutive sheds; resets on any success
	retryUntil time.Time // pacing gate from the last shed's hint
	lastUse    time.Time // last acquire; zero until the first one

	telWindow *telemetry.Gauge // window ×1000, for observability
}

func newIonGate(cfg ThrottleConfig, telWindow *telemetry.Gauge) *ionGate {
	g := &ionGate{cfg: cfg, now: time.Now, window: float64(cfg.InitialWindow), telWindow: telWindow}
	g.cond = sync.NewCond(&g.mu)
	g.publishWindow()
	return g
}

// publishWindow mirrors the fractional window into its gauge (×1000 so
// sub-integer motion is visible). Caller holds mu.
func (g *ionGate) publishWindow() {
	g.telWindow.Set(int64(g.window * 1000))
}

// admitted returns the integer admission width. Caller holds mu.
func (g *ionGate) admitted() int {
	w := int(g.window)
	if w < g.cfg.MinWindow {
		w = g.cfg.MinWindow
	}
	return w
}

// acquire takes one in-flight slot, blocking while the window is full and
// pacing behind the last shed's retry-after hint. It returns false — do
// not send, degrade to the direct path — when the node is saturated
// (DegradeAfter consecutive sheds) and the pacing interval has not yet
// passed; once it passes, one caller is admitted as the probe that decides
// whether the window reopens.
func (g *ionGate) acquire() bool {
	g.mu.Lock()
	now := g.now()
	if !g.lastUse.IsZero() && now.Sub(g.lastUse) >= g.cfg.IdleRecovery &&
		g.window < float64(g.cfg.InitialWindow) {
		// Idle recovery: the multiplicative decrease is evidence of
		// saturation *at the time of the burst*. After a long idle gap
		// that evidence is stale — and since the window only grows on
		// successes, a gate left small would start the next burst pinned
		// at the floor forever. Reopen to the initial posture and let
		// fresh evidence speak.
		g.window = float64(g.cfg.InitialWindow)
		g.consecBusy = 0
		g.retryUntil = time.Time{}
		g.publishWindow()
	}
	g.lastUse = now
	for {
		if g.consecBusy >= g.cfg.DegradeAfter && g.now().Before(g.retryUntil) {
			g.mu.Unlock()
			return false
		}
		if g.inflight < g.admitted() {
			if wait := g.retryUntil.Sub(g.now()); wait > 0 {
				// Pace behind the hint without holding the lock, then
				// re-evaluate (another caller may have shed meanwhile).
				g.mu.Unlock()
				time.Sleep(wait)
				g.mu.Lock()
				continue
			}
			g.inflight++
			g.mu.Unlock()
			return true
		}
		g.cond.Wait()
	}
}

// onSuccess releases the slot and grows the window additively (classic
// AIMD: +1/window per success, so one full window of successes grows the
// admission width by one).
func (g *ionGate) onSuccess() {
	g.mu.Lock()
	g.inflight--
	g.consecBusy = 0
	if g.window < float64(g.cfg.MaxWindow) {
		g.window += 1 / g.window
		if g.window > float64(g.cfg.MaxWindow) {
			g.window = float64(g.cfg.MaxWindow)
		}
	}
	g.publishWindow()
	g.cond.Broadcast()
	g.mu.Unlock()
}

// onBusy releases the slot, halves the window, and arms the pacing gate
// from the server's hint — grown exponentially with consecutive sheds
// (capped) and jittered so a fleet of clients does not retry in lockstep.
func (g *ionGate) onBusy(hint time.Duration) {
	g.mu.Lock()
	g.inflight--
	g.consecBusy++
	g.window /= 2
	if g.window < float64(g.cfg.MinWindow) {
		g.window = float64(g.cfg.MinWindow)
	}
	d := hint
	if d <= 0 {
		d = g.cfg.RetryAfterFloor
	}
	for i := 1; i < g.consecBusy && d < g.cfg.RetryAfterCap; i++ {
		d *= 2
	}
	if d > g.cfg.RetryAfterCap {
		d = g.cfg.RetryAfterCap
	}
	g.retryUntil = g.now().Add(equalJitter(d))
	g.publishWindow()
	g.cond.Broadcast()
	g.mu.Unlock()
}

// onError releases the slot without touching the window: transport
// failures are the circuit breaker's and failover path's concern, not the
// throttle's.
func (g *ionGate) onError() {
	g.mu.Lock()
	g.inflight--
	g.cond.Broadcast()
	g.mu.Unlock()
}

// saturated reports whether the gate is currently degrading chunks.
func (g *ionGate) saturated() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.consecBusy >= g.cfg.DegradeAfter && g.now().Before(g.retryUntil)
}

// equalJitter spreads d over [d/2, d): half deterministic, half uniform —
// the same shape the rpc retry backoff uses.
func equalJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(half))
}
