package fwd

// Adaptive-throttling tests: the AIMD gate's window arithmetic, the
// degrade/probe cycle under sustained sheds, and the client-level contract
// that a saturated I/O node costs latency and degraded chunks — never lost
// bytes, never breaker trips.

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

func testGate(cfg ThrottleConfig) *ionGate {
	cfg.Enabled = true
	reg := telemetry.New()
	return newIonGate(cfg.withDefaults(), reg.Gauge("test_window"))
}

func TestGateAIMDShrinkAndGrow(t *testing.T) {
	g := testGate(ThrottleConfig{MinWindow: 1, MaxWindow: 8, InitialWindow: 8, RetryAfterCap: time.Millisecond})

	// Multiplicative decrease: 8 → 4 → 2 → 1, floored at MinWindow.
	for _, want := range []int{4, 2, 1, 1} {
		if !g.acquire() {
			t.Fatal("gate should admit below DegradeAfter")
		}
		g.onBusy(0)
		if got := g.admitted(); got != want {
			t.Fatalf("window after shed = %d, want %d", got, want)
		}
	}

	// Additive increase: +1/window per success — roughly one full window
	// of successes grows the admission width by one.
	g.mu.Lock()
	g.window = 4
	g.consecBusy = 0
	g.retryUntil = time.Time{}
	g.mu.Unlock()
	for i := 0; i < 5; i++ {
		if !g.acquire() {
			t.Fatalf("acquire %d blocked", i)
		}
		g.onSuccess()
	}
	if got := g.admitted(); got != 5 {
		t.Fatalf("window after a round of successes = %d, want 5", got)
	}

	// Growth saturates at MaxWindow.
	for i := 0; i < 200; i++ {
		if !g.acquire() {
			t.Fatalf("acquire %d blocked", i)
		}
		g.onSuccess()
	}
	if got := g.admitted(); got != 8 {
		t.Fatalf("window after sustained success = %d, want MaxWindow 8", got)
	}
}

func TestGateBlocksAtWindowAndReleases(t *testing.T) {
	g := testGate(ThrottleConfig{MinWindow: 1, MaxWindow: 4, InitialWindow: 1})
	if !g.acquire() {
		t.Fatal("first acquire should pass")
	}
	second := make(chan bool, 1)
	go func() { second <- g.acquire() }()
	select {
	case <-second:
		t.Fatal("second acquire should block while the window is full")
	case <-time.After(20 * time.Millisecond):
	}
	g.onSuccess() // releases the slot and wakes the waiter
	select {
	case ok := <-second:
		if !ok {
			t.Fatal("released waiter should be admitted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke after release")
	}
	g.onSuccess()
}

func TestGateDegradesAndProbesBack(t *testing.T) {
	g := testGate(ThrottleConfig{
		MinWindow: 1, MaxWindow: 4, InitialWindow: 4,
		DegradeAfter: 2, RetryAfterFloor: 10 * time.Millisecond, RetryAfterCap: 20 * time.Millisecond,
	})

	// Two consecutive sheds mark the node saturated.
	for i := 0; i < 2; i++ {
		if !g.acquire() {
			t.Fatalf("acquire %d should pass before saturation", i)
		}
		g.onBusy(10 * time.Millisecond)
	}
	if !g.saturated() {
		t.Fatal("gate should be saturated after DegradeAfter sheds")
	}
	if g.acquire() {
		t.Fatal("saturated gate must degrade, not admit")
	}

	// Once the pacing interval passes, one probe is admitted; its success
	// reopens the window.
	deadline := time.Now().Add(2 * time.Second)
	for g.saturated() {
		if time.Now().After(deadline) {
			t.Fatal("gate never left saturation")
		}
		time.Sleep(time.Millisecond)
	}
	if !g.acquire() {
		t.Fatal("probe after the pacing interval should be admitted")
	}
	g.onSuccess()
	if g.saturated() {
		t.Fatal("successful probe should clear saturation")
	}
	if !g.acquire() {
		t.Fatal("gate should admit normally after recovery")
	}
	g.onSuccess()
}

// sheddingServer answers every data request busy, counting attempts.
type sheddingServer struct {
	mu    sync.Mutex
	calls int
}

func (s *sheddingServer) start(t *testing.T) string {
	t.Helper()
	srv := rpc.NewServer(func(req *rpc.Message) *rpc.Message {
		if req.Op == rpc.OpPing {
			return &rpc.Message{Op: req.Op}
		}
		s.mu.Lock()
		s.calls++
		s.mu.Unlock()
		resp := &rpc.Message{Op: req.Op, Path: req.Path, Trace: req.Trace, Busy: true, RetryAfter: time.Millisecond}
		return resp
	})
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// TestSaturatedIONDegradesToDirectWithoutByteLoss: an I/O node that sheds
// everything still yields a correct, complete file — chunks degrade to the
// direct PFS path — and the breaker records zero transport failures.
func TestSaturatedIONDegradesToDirectWithoutByteLoss(t *testing.T) {
	shed := &sheddingServer{}
	addr := shed.start(t)
	store := pfs.NewStore(pfs.Config{})
	reg := telemetry.New()
	c, err := NewClient(Config{
		AppID:     "app",
		Direct:    store,
		ChunkSize: 64,
		RPC:       rpc.Options{CallTimeout: time.Second, BreakerThreshold: 2, BreakerCooldown: time.Minute},
		Throttle: ThrottleConfig{
			Enabled: true, MaxWindow: 4, BusyRetries: 1, DegradeAfter: 2,
			RetryAfterFloor: time.Millisecond, RetryAfterCap: 2 * time.Millisecond,
		},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetIONs([]string{addr})

	if err := c.Create("/sat"); err != nil {
		t.Fatalf("create through a shedding node: %v", err)
	}
	payload := bytes.Repeat([]byte{7}, 512)
	n, err := c.Write("/sat", 0, payload)
	if err != nil || n != len(payload) {
		t.Fatalf("write under full shed: n=%d err=%v", n, err)
	}

	// Every byte landed exactly once, via the direct path.
	got := make([]byte, len(payload))
	if _, err := store.Read("/sat", 0, got); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded writes lost or corrupted bytes")
	}

	s := c.Stats()
	if s.ShedResponses == 0 {
		t.Fatal("fwd_shed_responses_total never incremented")
	}
	if s.DegradedOps == 0 {
		t.Fatal("fwd_degraded_ops_total never incremented")
	}
	if s.FailoverOps != 0 {
		t.Fatalf("sheds misrouted through the failover path %d times", s.FailoverOps)
	}
	if got := reg.Counter("rpc_breaker_open_total").Value(); got != 0 {
		t.Fatalf("sheds opened the breaker %d times, want 0", got)
	}

	// Reads degrade the same way.
	rbuf := make([]byte, len(payload))
	rn, err := c.Read("/sat", 0, rbuf)
	if err != nil || rn != len(payload) {
		t.Fatalf("read under full shed: n=%d err=%v", rn, err)
	}
	if !bytes.Equal(rbuf, payload) {
		t.Fatal("degraded read returned wrong bytes")
	}
}

// TestThrottleDisabledIsZeroOverheadPath: with the zero-value config no
// gates exist and calls go straight through — the opt-in contract.
func TestThrottleDisabledIsZeroOverheadPath(t *testing.T) {
	store, addrs, _ := testStack(t, 1)
	c := newTestClient(t, store, 64)
	c.SetIONs(addrs)
	if g := c.gateFor(addrs[0]); g != nil {
		t.Fatal("disabled throttle must not create gates")
	}
	if err := c.Create("/plain"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{3}, 200)
	if _, err := c.Write("/plain", 0, payload); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.ShedResponses != 0 || s.DegradedOps != 0 {
		t.Fatalf("healthy run counted shed=%d degraded=%d", s.ShedResponses, s.DegradedOps)
	}
}

// TestGateIdleRecovery is the regression test for the pinned-window bug:
// the AIMD window only ever grew on successes, so a gate halved during a
// burst stayed small across an idle gap indefinitely — the next burst
// started at the floor on saturation evidence that was minutes stale.
// An idle gap of at least IdleRecovery now restores the initial window.
func TestGateIdleRecovery(t *testing.T) {
	g := testGate(ThrottleConfig{
		MinWindow: 1, MaxWindow: 8, InitialWindow: 8,
		RetryAfterCap: time.Millisecond, IdleRecovery: 10 * time.Second,
	})
	now := time.Unix(2000, 0)
	g.mu.Lock()
	g.now = func() time.Time { return now }
	g.mu.Unlock()

	// A burst shrinks the window to the floor. The clock steps past each
	// shed's pacing hint (the frozen clock would otherwise hold acquire
	// in its pacing loop forever).
	for i := 0; i < 3; i++ {
		if !g.acquire() {
			t.Fatal("gate should admit below DegradeAfter")
		}
		g.onBusy(0)
		now = now.Add(time.Second)
	}
	if got := g.admitted(); got != 1 {
		t.Fatalf("window after burst = %d, want 1", got)
	}

	// A short gap does not reopen it: the evidence is still fresh.
	now = now.Add(5 * time.Second)
	if !g.acquire() {
		t.Fatal("acquire blocked after short gap")
	}
	g.onError()
	if got := g.admitted(); got != 1 {
		t.Fatalf("window after short gap = %d, want still 1", got)
	}

	// An idle gap past IdleRecovery restores the initial posture —
	// window, busy streak, and pacing gate all reset.
	g.mu.Lock()
	g.consecBusy = 5
	g.retryUntil = now.Add(time.Hour) // stale pacing gate must not block
	g.mu.Unlock()
	now = now.Add(11 * time.Second)
	if !g.acquire() {
		t.Fatal("acquire blocked after idle recovery")
	}
	g.onSuccess()
	if got := g.admitted(); got != 8 {
		t.Fatalf("window after idle recovery = %d, want 8", got)
	}
	if g.saturated() {
		t.Fatal("saturation evidence survived idle recovery")
	}
}
