package health

import (
	"errors"
	"time"

	"repro/internal/rpc"
)

// Check pings addr once and reports whether a daemon answered: the
// one-shot reconciliation probe arbiter.Recover uses to tell which
// journaled pool members survived a control-plane blackout. A busy
// (shed) response proves the node alive, exactly as in the prober's
// sweep; only transport failures count as dead. The probe dials a
// dedicated connection with no retries and no breaker so it sees raw
// reachability, and closes it before returning. timeout ≤0 selects
// 500ms.
func Check(addr string, timeout time.Duration) bool {
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	cli := rpc.Dial(addr, 1).WithOptions(rpc.Options{CallTimeout: timeout})
	defer cli.Close()
	resp, err := cli.Call(&rpc.Message{Op: rpc.OpPing})
	if err == nil {
		resp.Release()
		return true
	}
	return errors.Is(err, rpc.ErrBusy)
}
