package health

// Dynamic-membership tests: the Add/Remove hooks the autoscaler drives,
// the pessimistic start posture of freshly provisioned nodes, and the
// Load() demand signal.

import (
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

func TestAddStartsPessimisticAndRises(t *testing.T) {
	srvA, addrA := pingServer(t)
	defer srvA.Close()
	srvB, addrB := pingServer(t)
	defer srvB.Close()

	col := &collector{}
	reg := telemetry.New()
	p, err := New(Config{
		Addrs:         []string{addrA},
		Interval:      time.Second, // driven manually via ProbeOnce
		Timeout:       100 * time.Millisecond,
		FailThreshold: 2,
		RiseThreshold: 2,
		OnTransition:  col.add,
		Telemetry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	if err := p.Add(addrB, false); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if p.IsUp(addrB) {
		t.Fatal("pessimistically added node reported up before any ping")
	}
	if got := reg.Gauge("health_ions_up").Value(); got != 1 {
		t.Fatalf("health_ions_up = %d, want 1 (new node not yet risen)", got)
	}

	p.ProbeOnce() // rise 1 of 2
	if p.IsUp(addrB) {
		t.Fatal("node rose before RiseThreshold")
	}
	p.ProbeOnce() // rise 2 of 2
	if !p.IsUp(addrB) {
		t.Fatal("node did not rise after RiseThreshold successful pings")
	}
	trs := col.all()
	if len(trs) != 1 || trs[0].Addr != addrB || !trs[0].Up {
		t.Fatalf("transitions = %v, want one up for %s", trs, addrB)
	}
	if got := reg.Gauge("health_ions_up").Value(); got != 2 {
		t.Fatalf("health_ions_up = %d, want 2", got)
	}

	if err := p.Add(addrB, false); err == nil {
		t.Fatal("duplicate Add must fail")
	}
}

func TestRemoveStopsProbingAndSettlesGauges(t *testing.T) {
	srvA, addrA := pingServer(t)
	defer srvA.Close()
	srvB, addrB := pingServer(t)

	reg := telemetry.New()
	p, err := New(Config{
		Addrs:     []string{addrA, addrB},
		Interval:  time.Second,
		Timeout:   100 * time.Millisecond,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	p.Remove(addrB)
	srvB.Close() // a dead removed node must not produce transitions
	if p.IsUp(addrB) {
		t.Fatal("removed node still reported up")
	}
	if got := reg.Gauge("health_ions_up").Value(); got != 1 {
		t.Fatalf("health_ions_up = %d, want 1", got)
	}
	for i := 0; i < 5; i++ {
		p.ProbeOnce()
	}
	if got := reg.Counter("health_transitions_down_total").Value(); got != 0 {
		t.Fatalf("removed node produced %d down transitions", got)
	}
	if _, ok := p.Load()[addrB]; ok {
		t.Fatal("removed node still present in Load()")
	}
	p.Remove(addrB) // unknown: no-op
	p.Remove("nobody:1")
}

func TestLoadReportsSampledQueueDepth(t *testing.T) {
	// A ping handler that reports a queue depth of 7 in the Size field,
	// the way ion daemons do.
	srv := rpc.NewServer(func(req *rpc.Message) *rpc.Message {
		return &rpc.Message{Op: req.Op, Size: 7}
	})
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p, err := New(Config{
		Addrs:    []string{addr},
		Interval: time.Second,
		Timeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	if got := p.Load()[addr]; got != 0 {
		t.Fatalf("depth before any sweep = %d, want 0", got)
	}
	p.ProbeOnce()
	if got := p.Load()[addr]; got != 7 {
		t.Fatalf("depth = %d, want 7", got)
	}
}
