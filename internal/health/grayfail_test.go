package health

// Fail-slow (gray-failure) detection tests: the peer-relative scorer
// marks a node degraded when its median latency stands out against its
// peers, debounced over sweeps with hysteresis on recovery — and the
// whole latency plane is strictly opt-in.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/latency"
	"repro/internal/telemetry"
)

// degradeCollector records degradation transitions thread-safely.
type degradeCollector struct {
	mu  sync.Mutex
	dgs []Degradation
}

func (c *degradeCollector) add(d Degradation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dgs = append(c.dgs, d)
}

func (c *degradeCollector) all() []Degradation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Degradation(nil), c.dgs...)
}

// seedSketch loads n synthetic samples for addr. Real probe RTTs keep
// trickling into the same rings during the test (microseconds against a
// loopback server), but 60 seeded samples dominate the 64-slot window,
// so medians stay where the test puts them for the few sweeps it runs.
func seedSketch(sk *latency.Sketch, addr string, d time.Duration, n int) {
	for i := 0; i < n; i++ {
		sk.Observe(addr, d)
	}
}

func TestDegradedDetectionAndRecovery(t *testing.T) {
	var addrs []string
	for i := 0; i < 3; i++ {
		ls := &loadServer{}
		_, addr := ls.start(t)
		addrs = append(addrs, addr)
	}
	sk := latency.NewSketch(0)
	col := &degradeCollector{}
	reg := telemetry.New()
	p, err := New(Config{
		Addrs:        addrs,
		Interval:     time.Second, // driven manually
		Timeout:      100 * time.Millisecond,
		SlowFactor:   4,
		SlowWindow:   2,
		SlowRecovery: 3,
		Latency:      sk,
		OnDegraded:   col.add,
		Telemetry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	// Two healthy peers at ~10ms, one node at 200ms: 20× the peer
	// median, far past the 4× factor and the 1ms default floor.
	seedSketch(sk, addrs[0], 10*time.Millisecond, 60)
	seedSketch(sk, addrs[1], 10*time.Millisecond, 60)
	seedSketch(sk, addrs[2], 200*time.Millisecond, 60)

	p.ProbeOnce()
	if p.IsDegraded(addrs[2]) {
		t.Fatal("one slow sweep must not mark degraded (SlowWindow=2)")
	}
	p.ProbeOnce()
	if !p.IsDegraded(addrs[2]) {
		t.Fatal("two slow sweeps should mark degraded")
	}
	if p.IsDegraded(addrs[0]) || p.IsDegraded(addrs[1]) {
		t.Fatal("healthy peers misread as degraded")
	}
	if dgs := col.all(); len(dgs) != 1 || !dgs[0].Degraded || dgs[0].Addr != addrs[2] {
		t.Fatalf("unexpected degradation transitions: %+v", dgs)
	}
	if got := reg.Counter("health_degraded_transitions_total").Value(); got != 1 {
		t.Fatalf("health_degraded_transitions_total = %d, want 1", got)
	}
	if got := reg.Gauge("health_degraded_ions").Value(); got != 1 {
		t.Fatalf("health_degraded_ions = %d, want 1", got)
	}
	if dl := p.Degraded(); len(dl) != 1 || dl[0] != addrs[2] {
		t.Fatalf("Degraded() = %v", dl)
	}
	// Degraded is not down and not overloaded: the other planes are
	// untouched — the node answers pings and reports an empty queue.
	if !p.IsUp(addrs[2]) {
		t.Fatal("degraded node must remain up")
	}
	if p.IsOverloaded(addrs[2]) {
		t.Fatal("degraded node misread as overloaded")
	}

	// The fault lifts: the node's latency falls back in line with its
	// peers. Recovery needs SlowRecovery=3 clean sweeps (hysteresis).
	sk.Forget(addrs[2])
	seedSketch(sk, addrs[2], 10*time.Millisecond, 60)
	p.ProbeOnce()
	p.ProbeOnce()
	if !p.IsDegraded(addrs[2]) {
		t.Fatal("two clean sweeps must not restore (SlowRecovery=3)")
	}
	p.ProbeOnce()
	if p.IsDegraded(addrs[2]) {
		t.Fatal("three clean sweeps should restore")
	}
	if dgs := col.all(); len(dgs) != 2 || dgs[1].Degraded {
		t.Fatalf("restore transition missing: %+v", dgs)
	}
	if got := reg.Counter("health_degraded_recovered_total").Value(); got != 1 {
		t.Fatalf("health_degraded_recovered_total = %d, want 1", got)
	}
	if got := reg.Gauge("health_degraded_ions").Value(); got != 0 {
		t.Fatalf("health_degraded_ions = %d, want 0 after restore", got)
	}
}

// TestDegradedNeedsPeerQuorum pins that peer-relative scoring refuses
// to judge with fewer than two peers: on a two-node pool the slow node
// has one peer, and "you differ from your only peer" cannot say which
// of the two is the outlier.
func TestDegradedNeedsPeerQuorum(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		ls := &loadServer{}
		_, addr := ls.start(t)
		addrs = append(addrs, addr)
	}
	sk := latency.NewSketch(0)
	p, err := New(Config{
		Addrs:      addrs,
		Interval:   time.Second,
		Timeout:    100 * time.Millisecond,
		SlowFactor: 2,
		SlowWindow: 1,
		Latency:    sk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	seedSketch(sk, addrs[0], 5*time.Millisecond, 60)
	seedSketch(sk, addrs[1], 500*time.Millisecond, 60)
	for i := 0; i < 4; i++ {
		p.ProbeOnce()
	}
	if p.IsDegraded(addrs[0]) || p.IsDegraded(addrs[1]) {
		t.Fatal("scorer judged without a peer quorum")
	}
}

// TestSlowMinLatencyFloor pins the jitter guard: a node 25× its peers
// is still not degraded while its median sits under the floor —
// microsecond-level spread on an idle loopback stack is noise, not a
// gray failure.
func TestSlowMinLatencyFloor(t *testing.T) {
	var addrs []string
	for i := 0; i < 3; i++ {
		ls := &loadServer{}
		_, addr := ls.start(t)
		addrs = append(addrs, addr)
	}
	sk := latency.NewSketch(0)
	p, err := New(Config{
		Addrs:          addrs,
		Interval:       time.Second,
		Timeout:        100 * time.Millisecond,
		SlowFactor:     4,
		SlowWindow:     1,
		SlowMinLatency: time.Millisecond, // the default, stated explicitly
		Latency:        sk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	seedSketch(sk, addrs[0], 2*time.Microsecond, 60)
	seedSketch(sk, addrs[1], 2*time.Microsecond, 60)
	seedSketch(sk, addrs[2], 50*time.Microsecond, 60)
	for i := 0; i < 3; i++ {
		p.ProbeOnce()
	}
	if p.IsDegraded(addrs[2]) {
		t.Fatal("sub-floor median must never degrade")
	}
}

// TestSlowScorerInactiveWithoutFactor pins the opt-in contract: with no
// SlowFactor the prober registers no health_degraded_* series and fires
// no degradations, even when a sketch full of damning samples is handed
// to it.
func TestSlowScorerInactiveWithoutFactor(t *testing.T) {
	var addrs []string
	for i := 0; i < 3; i++ {
		ls := &loadServer{}
		_, addr := ls.start(t)
		addrs = append(addrs, addr)
	}
	sk := latency.NewSketch(0)
	seedSketch(sk, addrs[2], time.Minute, 60) // absurdly slow — must be ignored
	seedSketch(sk, addrs[0], time.Millisecond, 60)
	seedSketch(sk, addrs[1], time.Millisecond, 60)
	col := &degradeCollector{}
	reg := telemetry.New()
	p, err := New(Config{
		Addrs:      addrs,
		Interval:   time.Second,
		Timeout:    100 * time.Millisecond,
		Latency:    sk, // sketch without factor: plane stays off
		OnDegraded: col.add,
		Telemetry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	for i := 0; i < 4; i++ {
		p.ProbeOnce()
	}
	if p.IsDegraded(addrs[2]) || len(col.all()) != 0 {
		t.Fatal("scorer ran without a SlowFactor")
	}
	snap := reg.Snapshot()
	for name := range snap.Counters {
		if name == "health_degraded_transitions_total" || name == "health_degraded_recovered_total" {
			t.Fatalf("series %s registered without a SlowFactor", name)
		}
	}
	if _, ok := snap.Gauges["health_degraded_ions"]; ok {
		t.Fatal("health_degraded_ions registered without a SlowFactor")
	}
}

// TestLoadAges pins the satellite fix: Load snapshots now carry an age,
// so a consumer (the elastic scaler) can tell a fresh sample from a
// stale one instead of reading a wedged node's last depth — or a
// never-sampled node's zero — as current truth.
func TestLoadAges(t *testing.T) {
	ls := &loadServer{}
	_, addr := ls.start(t)
	now := time.Unix(1000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}
	p, err := New(Config{
		Addrs:    []string{addr},
		Interval: time.Second,
		Timeout:  100 * time.Millisecond,
		Now:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	// Before any sweep the node has no sample: Load reports the zero
	// value but LoadAges omits it — absence is the staleness signal.
	if ages := p.LoadAges(); len(ages) != 0 {
		t.Fatalf("LoadAges before any sweep = %v, want empty", ages)
	}
	ls.depth.Store(7)
	p.ProbeOnce()
	if ages := p.LoadAges(); len(ages) != 1 || ages[addr] != 0 {
		t.Fatalf("LoadAges right after a sweep = %v, want {%s: 0}", ages, addr)
	}
	advance(42 * time.Second)
	if ages := p.LoadAges(); ages[addr] != 42*time.Second {
		t.Fatalf("LoadAges after 42s = %v", ages)
	}
	// A busy sweep proves liveness but carries no load sample: the age
	// keeps growing instead of resetting on a sample-free sweep.
	ls.shedding.Store(true)
	p.ProbeOnce()
	advance(8 * time.Second)
	if ages := p.LoadAges(); ages[addr] != 50*time.Second {
		t.Fatalf("LoadAges after busy sweep = %v, want 50s", ages)
	}
	ls.shedding.Store(false)
	p.ProbeOnce()
	if ages := p.LoadAges(); ages[addr] != 0 {
		t.Fatalf("LoadAges after fresh loaded sweep = %v, want 0", ages)
	}
}
