// Package health is the liveness plane of the forwarding stack: a
// heartbeat prober that pings every I/O-node daemon over the existing rpc
// protocol (OpPing) and publishes up/down transitions.
//
// The paper's premise is that forwarding is on-demand and optional — an
// application with an empty allocation accesses the PFS directly — so an
// I/O node that stops answering must be *detected* and *removed from the
// arbitration pool*, not waited on. The prober is the detector half of
// that loop: the arbiter (MarkDown/MarkUp) is the reactor, and livestack
// wires the two together through the OnTransition callback.
//
// Detection is threshold-debounced in both directions: FailThreshold
// consecutive failed pings mark a node down (one lost packet is not an
// outage), RiseThreshold consecutive successful pings mark it back up
// (one lucky ping is not a recovery).
//
// Beyond the binary planes (up/down, overloaded/recovered) the prober
// optionally runs a latency plane for gray failures: every successful
// ping's round-trip time is recorded into a per-node latency sketch
// (shared with the forwarding clients, which feed their own observed
// call latencies into the same rings), and a peer-relative scorer marks
// a node *degraded* when its median latency exceeds the median of its
// peers' medians by a configurable factor, sustained over a window of
// sweeps, with a longer clean window required to restore it. Degraded
// is distinct from down (the node still answers) and from overloaded
// (its queue may be empty — the node is slow, not busy); the arbiter
// reacts by quarantining it from new allocations. The whole plane is
// opt-in: SlowFactor ≤ 0 leaves behavior byte-identical to before.
package health

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/latency"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// Transition is one up/down state change of a probed node.
type Transition struct {
	// Addr is the I/O-node address whose state changed.
	Addr string
	// Up is the new state.
	Up bool
}

// Overload is one overloaded/recovered state change of a probed node.
// Overload is orthogonal to liveness: an overloaded node still answers
// pings (possibly with a busy response) and keeps serving its current
// load — it must be *deprioritized* by the arbiter, not removed.
type Overload struct {
	// Addr is the I/O-node address whose state changed.
	Addr string
	// Overloaded is the new state.
	Overloaded bool
}

// Degradation is one degraded/restored state change of a probed node —
// the gray-failure signal. A degraded node is alive and may be idle;
// it is just slow relative to its peers, so the arbiter quarantines it
// from new allocations rather than removing or deprioritizing it.
type Degradation struct {
	// Addr is the I/O-node address whose state changed.
	Addr string
	// Degraded is the new state.
	Degraded bool
}

// Config parameterizes a prober.
type Config struct {
	// Addrs are the I/O-node addresses to probe. Required.
	Addrs []string
	// Interval between probe sweeps; ≤0 selects 1s.
	Interval time.Duration
	// Timeout is the per-ping deadline; ≤0 selects Interval/2, floored at
	// 100ms — pings are answered inline by the daemon, but on a saturated
	// host scheduling delay alone can cost tens of milliseconds, and a
	// busy-but-alive node must not be mistaken for a dead one. Probes use
	// a dedicated rpc client with no retries and no breaker, so the
	// prober sees raw reachability. Timeout may exceed Interval: sweeps
	// run sequentially and a slow sweep simply delays the next tick.
	Timeout time.Duration
	// FailThreshold consecutive failed pings mark a node down; ≤0
	// selects 3.
	FailThreshold int
	// RiseThreshold consecutive successful pings mark a down node back
	// up; ≤0 selects 1.
	RiseThreshold int
	// OnTransition, when non-nil, is invoked synchronously from the probe
	// goroutine for every up/down transition (e.g. arbiter.MarkDown).
	OnTransition func(Transition)

	// OverloadQueueDepth marks a sweep as overloaded when the daemon's
	// reported queue depth is at least this value; ≤0 disables the
	// depth signal. Daemons report their depth in the ping response
	// (Size field), so overload detection costs no extra RPCs.
	OverloadQueueDepth int
	// OverloadShedDelta marks a sweep as overloaded when the daemon's
	// cumulative reject counter (ping response Offset field) grew by at
	// least this much since the previous sweep; ≤0 disables the shed
	// signal. Overload detection as a whole is active only when at least
	// one of the two signals is enabled; a ping answered with a busy
	// response always counts as an overloaded sweep while active (and as
	// a *successful* probe either way — shedding proves the node alive).
	OverloadShedDelta int
	// OverloadThreshold consecutive overloaded sweeps mark a node
	// overloaded; ≤0 selects 2.
	OverloadThreshold int
	// OverloadRecovery consecutive healthy sweeps clear the mark; ≤0
	// selects 2.
	OverloadRecovery int
	// OnOverload, when non-nil, is invoked synchronously from the probe
	// goroutine for every overloaded/recovered transition (e.g.
	// arbiter.MarkOverloaded).
	OnOverload func(Overload)

	// SlowFactor enables the fail-slow scorer: a node whose median
	// latency exceeds the median of its peers' medians by this factor
	// counts a slow sweep. ≤0 disables the latency plane entirely — no
	// sketch, no scorer, no degraded transitions, no degraded series.
	SlowFactor float64
	// SlowWindow consecutive slow sweeps mark a node degraded; ≤0
	// selects 3.
	SlowWindow int
	// SlowRecovery consecutive clean sweeps restore a degraded node;
	// ≤0 selects 5 — recovery is deliberately slower than detection
	// (hysteresis), so a node flickering around the threshold does not
	// flap in and out of quarantine.
	SlowRecovery int
	// SlowMinLatency floors the scorer: medians below it never count as
	// slow, however fast the peers are, so microsecond-level jitter on
	// an idle stack cannot degrade anything. ≤0 selects 1ms.
	SlowMinLatency time.Duration
	// Latency is the sketch the scorer reads and probe RTTs feed. Leave
	// nil to let the prober own a private sketch; pass a shared one so
	// forwarding clients can feed client-observed call latencies into
	// the same rings (livestack does). Ignored when SlowFactor ≤ 0.
	Latency *latency.Sketch
	// OnDegraded, when non-nil, is invoked synchronously from the probe
	// goroutine for every degraded/restored transition (e.g.
	// arbiter.MarkDegraded).
	OnDegraded func(Degradation)

	// WireChecksum makes probe pings carry a CRC32C trailer, matching a
	// stack that runs with wire checksums on (daemons verify whatever
	// arrives; the trailer keeps the probe path exercised end to end).
	WireChecksum bool

	// Now supplies the clock for load-sample ages; nil selects
	// time.Now. Injected for deterministic tests, mirroring the elastic
	// scaler's seam. (Probe RTTs always use the real monotonic clock —
	// they measure the wire, not the schedule.)
	Now func() time.Time

	// Telemetry receives probe metrics; nil disables them.
	Telemetry *telemetry.Registry
}

// overloadActive reports whether any overload signal is configured.
func (c Config) overloadActive() bool {
	return c.OverloadQueueDepth > 0 || c.OverloadShedDelta > 0
}

// slowActive reports whether the fail-slow latency plane is configured.
func (c Config) slowActive() bool {
	return c.SlowFactor > 0
}

// slowMinSamples is how many sketch samples a node needs before the
// scorer will judge it (or count it as a peer): scoring a node on one
// or two pings would make the first sweep after a restart decisive.
const slowMinSamples = 4

// nodeState tracks one address's debounced liveness and overload.
type nodeState struct {
	up    bool
	fails int // consecutive failures while up
	rises int // consecutive successes while down

	overloaded  bool
	hotSweeps   int   // consecutive overloaded sweeps while healthy
	coolSweeps  int   // consecutive healthy sweeps while overloaded
	lastRejects int64 // cumulative reject counter from the last sweep
	sawRejects  bool  // lastRejects holds a real sample (not the zero value)
	lastDepth   int64 // queue depth from the last loaded sweep
	sampleAt    time.Time // when lastDepth was sampled; zero = never

	degraded    bool
	slowSweeps  int // consecutive slow sweeps while clean
	cleanSweeps int // consecutive clean sweeps while degraded
}

// Prober pings a dynamic set of I/O nodes and reports transitions. The
// set starts as Config.Addrs and breathes through Add/Remove (the
// autoscaler's hooks).
type Prober struct {
	cfg Config

	mu      sync.Mutex
	clients map[string]*rpc.Client
	state   map[string]*nodeState

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	tel struct {
		probes, failures     *telemetry.Counter
		downs, ups           *telemetry.Counter
		overloads, recovers  *telemetry.Counter
		degrades, restores   *telemetry.Counter // registered only when slowActive
		nodesUp              *telemetry.Gauge
		nodesOverloaded      *telemetry.Gauge
		nodesDegraded        *telemetry.Gauge // registered only when slowActive
		queueDepth, shedRate map[string]*telemetry.Gauge // per ION
	}
}

// New builds a prober; every node starts optimistically up. Call Start to
// begin probing, or drive sweeps explicitly with ProbeOnce.
func New(cfg Config) (*Prober, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("health: at least one address is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval / 2
		if cfg.Timeout < 100*time.Millisecond {
			cfg.Timeout = 100 * time.Millisecond
		}
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.RiseThreshold <= 0 {
		cfg.RiseThreshold = 1
	}
	if cfg.OverloadThreshold <= 0 {
		cfg.OverloadThreshold = 2
	}
	if cfg.OverloadRecovery <= 0 {
		cfg.OverloadRecovery = 2
	}
	if cfg.slowActive() {
		if cfg.SlowWindow <= 0 {
			cfg.SlowWindow = 3
		}
		if cfg.SlowRecovery <= 0 {
			cfg.SlowRecovery = 5
		}
		if cfg.SlowMinLatency <= 0 {
			cfg.SlowMinLatency = time.Millisecond
		}
		if cfg.Latency == nil {
			cfg.Latency = latency.NewSketch(0)
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	p := &Prober{
		cfg:     cfg,
		clients: make(map[string]*rpc.Client, len(cfg.Addrs)),
		state:   make(map[string]*nodeState, len(cfg.Addrs)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	reg := cfg.Telemetry
	p.tel.probes = reg.Counter("health_probes_total")
	p.tel.failures = reg.Counter("health_probe_failures_total")
	p.tel.downs = reg.Counter("health_transitions_down_total")
	p.tel.ups = reg.Counter("health_transitions_up_total")
	p.tel.overloads = reg.Counter("health_transitions_overloaded_total")
	p.tel.recovers = reg.Counter("health_transitions_recovered_total")
	p.tel.nodesUp = reg.Gauge("health_ions_up")
	p.tel.nodesOverloaded = reg.Gauge("health_ions_overloaded")
	if cfg.slowActive() {
		// Lazily registered: a stack without a slowness factor must not
		// expose any health_degraded_* series (the absence test pins it).
		p.tel.degrades = reg.Counter("health_degraded_transitions_total")
		p.tel.restores = reg.Counter("health_degraded_recovered_total")
		p.tel.nodesDegraded = reg.Gauge("health_degraded_ions")
	}
	p.tel.queueDepth = make(map[string]*telemetry.Gauge, len(cfg.Addrs))
	p.tel.shedRate = make(map[string]*telemetry.Gauge, len(cfg.Addrs))
	for _, addr := range cfg.Addrs {
		// The initial pool is trusted immediately, New's historical
		// behaviour; nodes added later choose their own posture.
		if err := p.Add(addr, true); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Add starts probing addr. up seeds the debounced state: true trusts the
// node immediately (the posture New gives the initial pool), false makes
// the node start down, so RiseThreshold successful pings must land before
// the first up transition fires — what a freshly provisioned node
// deserves, and the signal the autoscaler's rollback deadline watches.
// Duplicate addresses are refused.
func (p *Prober) Add(addr string, up bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.clients[addr]; dup {
		return errors.New("health: duplicate address " + addr)
	}
	p.clients[addr] = rpc.Dial(addr, 1).
		WithOptions(rpc.Options{CallTimeout: p.cfg.Timeout, WireChecksum: p.cfg.WireChecksum}).
		Instrument(p.cfg.Telemetry, nil)
	p.state[addr] = &nodeState{up: up}
	if up {
		p.tel.nodesUp.Add(1)
	}
	if _, ok := p.tel.queueDepth[addr]; !ok {
		reg := p.cfg.Telemetry
		p.tel.queueDepth[addr] = reg.Gauge(fmt.Sprintf("health_ion_queue_depth{ion=%q}", addr))
		p.tel.shedRate[addr] = reg.Gauge(fmt.Sprintf("health_ion_shed_delta{ion=%q}", addr))
	}
	return nil
}

// Remove stops probing addr and releases its probe connection. A sweep in
// flight may still ping the address once; its result is discarded.
// Removing an unknown address is a no-op.
func (p *Prober) Remove(addr string) {
	p.mu.Lock()
	cli := p.clients[addr]
	st := p.state[addr]
	delete(p.clients, addr)
	delete(p.state, addr)
	if st != nil && st.up {
		p.tel.nodesUp.Add(-1)
	}
	if st != nil && st.overloaded {
		p.tel.nodesOverloaded.Add(-1)
	}
	if st != nil && st.degraded {
		p.tel.nodesDegraded.Add(-1)
	}
	p.mu.Unlock()
	p.cfg.Latency.Forget(addr) // stale samples must not haunt a reused address
	if cli != nil {
		cli.Close()
	}
}

// Load reports the last sampled queue depth of every probed node that is
// currently up — the autoscaler's demand signal. Nodes that are down (or
// have not yet produced a loaded sweep, which report 0) are the liveness
// plane's problem, not the capacity planner's.
func (p *Prober) Load() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.state))
	for addr, st := range p.state {
		if st.up {
			out[addr] = st.lastDepth
		}
	}
	return out
}

// LoadAges reports, for every node that is up, how long ago its Load
// sample was taken. Nodes that have never produced a loaded sweep are
// omitted — their Load entry is the zero value, not a measurement, and
// the autoscaler must not read an idle node into it. Ages use the
// injected clock, so a frozen test clock reports frozen ages.
func (p *Prober) LoadAges() map[string]time.Duration {
	now := p.cfg.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]time.Duration, len(p.state))
	for addr, st := range p.state {
		if st.up && !st.sampleAt.IsZero() {
			out[addr] = now.Sub(st.sampleAt)
		}
	}
	return out
}

// Start launches the periodic probe loop. Safe to call once; Stop ends it.
func (p *Prober) Start() {
	p.startOnce.Do(func() {
		go func() {
			defer close(p.done)
			ticker := time.NewTicker(p.cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-p.stop:
					return
				case <-ticker.C:
					p.ProbeOnce()
				}
			}
		}()
	})
}

// Stop ends probing and releases the probe connections. Safe to call even
// if Start never ran.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() {
		close(p.stop)
	})
	p.startOnce.Do(func() { close(p.done) }) // never started: nothing to wait for
	<-p.done
	p.mu.Lock()
	clients := make([]*rpc.Client, 0, len(p.clients))
	for _, c := range p.clients {
		clients = append(clients, c)
	}
	p.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}

// ProbeOnce performs one synchronous sweep over every address, applying
// thresholds and firing OnTransition for each state change. Exported so
// tests (and callers that want probe timing under their own control) can
// drive the prober deterministically.
func (p *Prober) ProbeOnce() {
	// probeResult is one ping's outcome. A busy (shed) ping proves the
	// node alive — only transport errors count as probe failures — but it
	// carries no load sample, so depth/rejects are valid only when loaded
	// is set.
	type probeResult struct {
		ok      bool
		busy    bool
		loaded  bool
		depth   int64
		rejects int64
	}
	// Snapshot the member set first: Add/Remove may run concurrently (the
	// autoscaler breathes the pool), and pings must not hold the lock.
	p.mu.Lock()
	clients := make(map[string]*rpc.Client, len(p.clients))
	for addr, cli := range p.clients {
		clients[addr] = cli
	}
	p.mu.Unlock()

	results := make(map[string]probeResult, len(clients))
	var (
		rmu sync.Mutex
		wg  sync.WaitGroup
	)
	for addr, cli := range clients {
		wg.Add(1)
		go func(addr string, cli *rpc.Client) {
			defer wg.Done()
			start := time.Now()
			resp, err := cli.Call(&rpc.Message{Op: rpc.OpPing})
			rtt := time.Since(start)
			var r probeResult
			switch {
			case err == nil:
				r = probeResult{ok: true, loaded: true, depth: resp.Size, rejects: resp.Offset}
				// Only clean pings feed the latency sketch: a busy
				// response is shed before queueing and a failed one
				// measures the timeout, not the node.
				p.cfg.Latency.Observe(addr, rtt)
			case errors.Is(err, rpc.ErrBusy):
				r = probeResult{ok: true, busy: true}
			}
			rmu.Lock()
			results[addr] = r
			rmu.Unlock()
		}(addr, cli)
	}
	wg.Wait()

	var (
		fired     []Transition
		hotFired  []Overload
		detecting = p.cfg.overloadActive()
	)
	p.mu.Lock()
	for addr, r := range results {
		st := p.state[addr]
		if st == nil {
			continue // removed while the sweep was in flight
		}
		p.tel.probes.Inc()
		if !r.ok {
			p.tel.failures.Inc()
		}
		switch {
		case st.up && !r.ok:
			st.fails++
			if st.fails >= p.cfg.FailThreshold {
				st.up = false
				st.fails = 0
				st.rises = 0
				p.tel.downs.Inc()
				p.tel.nodesUp.Add(-1)
				fired = append(fired, Transition{Addr: addr, Up: false})
			}
		case st.up && r.ok:
			st.fails = 0
		case !st.up && r.ok:
			st.rises++
			if st.rises >= p.cfg.RiseThreshold {
				st.up = true
				st.fails = 0
				st.rises = 0
				p.tel.ups.Inc()
				p.tel.nodesUp.Add(1)
				fired = append(fired, Transition{Addr: addr, Up: true})
			}
		default: // down and still failing
			st.rises = 0
		}

		// Load bookkeeping and overload debouncing: export the sampled
		// depth and per-sweep shed delta unconditionally, transition
		// state only while a signal is configured.
		var shedDelta int64
		if r.loaded {
			st.lastDepth = r.depth
			st.sampleAt = p.cfg.Now()
			p.tel.queueDepth[addr].Set(r.depth)
			if st.sawRejects && r.rejects >= st.lastRejects {
				shedDelta = r.rejects - st.lastRejects
			}
			st.lastRejects = r.rejects
			st.sawRejects = true
			p.tel.shedRate[addr].Set(shedDelta)
		}
		if !detecting {
			continue
		}
		hot := r.busy ||
			(r.loaded && p.cfg.OverloadQueueDepth > 0 && r.depth >= int64(p.cfg.OverloadQueueDepth)) ||
			(r.loaded && p.cfg.OverloadShedDelta > 0 && shedDelta >= int64(p.cfg.OverloadShedDelta))
		switch {
		case !r.ok:
			// Dead-looking sweeps feed the liveness thresholds, not the
			// overload ones; hold the overload state as-is.
		case !st.overloaded && hot:
			st.coolSweeps = 0
			st.hotSweeps++
			if st.hotSweeps >= p.cfg.OverloadThreshold {
				st.overloaded = true
				st.hotSweeps = 0
				p.tel.overloads.Inc()
				p.tel.nodesOverloaded.Add(1)
				hotFired = append(hotFired, Overload{Addr: addr, Overloaded: true})
			}
		case !st.overloaded:
			st.hotSweeps = 0
		case st.overloaded && !hot:
			st.coolSweeps++
			if st.coolSweeps >= p.cfg.OverloadRecovery {
				st.overloaded = false
				st.coolSweeps = 0
				p.tel.recovers.Inc()
				p.tel.nodesOverloaded.Add(-1)
				hotFired = append(hotFired, Overload{Addr: addr, Overloaded: false})
			}
		default: // overloaded and still hot
			st.coolSweeps = 0
		}
	}
	var slowFired []Degradation
	if p.cfg.slowActive() {
		slowFired = p.scoreSlowLocked()
	}
	p.mu.Unlock()

	// Callbacks run outside the prober lock so they may query the prober
	// (and take arbitrary downstream locks) freely.
	if p.cfg.OnTransition != nil {
		for _, tr := range fired {
			p.cfg.OnTransition(tr)
		}
	}
	if p.cfg.OnOverload != nil {
		for _, ov := range hotFired {
			p.cfg.OnOverload(ov)
		}
	}
	if p.cfg.OnDegraded != nil {
		for _, dg := range slowFired {
			p.cfg.OnDegraded(dg)
		}
	}
}

// scoreSlowLocked runs one sweep of the peer-relative fail-slow scorer
// and returns the transitions it fired. Caller holds p.mu.
//
// A node is slow on a sweep when its median sketch latency exceeds the
// median of its peers' medians × SlowFactor (and the SlowMinLatency
// floor). Judging against peers rather than an absolute bound makes
// the scorer self-calibrating: a cluster that is uniformly slow — cold
// caches, shared-disk contention — degrades nobody, while one node 50×
// off its peers stands out within a window regardless of the absolute
// numbers. Sweep-count debouncing (not wall time) keeps the state
// machine deterministic under test-driven ProbeOnce calls.
func (p *Prober) scoreSlowLocked() []Degradation {
	// Median latency of every up node with enough samples to judge.
	meds := make(map[string]time.Duration, len(p.state))
	for addr, st := range p.state {
		if !st.up || p.cfg.Latency.Samples(addr) < slowMinSamples {
			continue
		}
		if m, ok := p.cfg.Latency.Median(addr); ok {
			meds[addr] = m
		}
	}
	var fired []Degradation
	for addr, st := range p.state {
		med, scored := meds[addr]
		if !st.up || !scored {
			// Down or unsampled nodes hold their degraded state as-is;
			// the liveness plane owns them until they answer again.
			continue
		}
		// Median of the peers' medians, the node under judgment
		// excluded so a very slow node cannot raise its own bar.
		peers := make([]time.Duration, 0, len(meds)-1)
		for a, m := range meds {
			if a != addr {
				peers = append(peers, m)
			}
		}
		if len(peers) < 2 {
			continue // peer-relative scoring needs a quorum of peers
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
		peerMed := peers[len(peers)/2]
		slow := med >= p.cfg.SlowMinLatency &&
			float64(med) > float64(peerMed)*p.cfg.SlowFactor
		switch {
		case !st.degraded && slow:
			st.cleanSweeps = 0
			st.slowSweeps++
			if st.slowSweeps >= p.cfg.SlowWindow {
				st.degraded = true
				st.slowSweeps = 0
				p.tel.degrades.Inc()
				p.tel.nodesDegraded.Add(1)
				fired = append(fired, Degradation{Addr: addr, Degraded: true})
			}
		case !st.degraded:
			st.slowSweeps = 0
		case st.degraded && !slow:
			st.cleanSweeps++
			if st.cleanSweeps >= p.cfg.SlowRecovery {
				st.degraded = false
				st.cleanSweeps = 0
				p.tel.restores.Inc()
				p.tel.nodesDegraded.Add(-1)
				fired = append(fired, Degradation{Addr: addr, Degraded: false})
			}
		default: // degraded and still slow
			st.cleanSweeps = 0
		}
	}
	return fired
}

// IsUp reports the debounced state of addr (false for unknown addresses).
func (p *Prober) IsUp(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[addr]
	return ok && st.up
}

// IsOverloaded reports the debounced overload state of addr (false for
// unknown addresses).
func (p *Prober) IsOverloaded(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[addr]
	return ok && st.overloaded
}

// Overloaded returns the addresses currently marked overloaded.
func (p *Prober) Overloaded() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for addr, st := range p.state {
		if st.overloaded {
			out = append(out, addr)
		}
	}
	return out
}

// IsDegraded reports the debounced fail-slow state of addr (false for
// unknown addresses, and always false when no SlowFactor is set).
func (p *Prober) IsDegraded(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[addr]
	return ok && st.degraded
}

// Degraded returns the addresses currently marked degraded.
func (p *Prober) Degraded() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for addr, st := range p.state {
		if st.degraded {
			out = append(out, addr)
		}
	}
	return out
}

// Down returns the addresses currently marked down.
func (p *Prober) Down() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for addr, st := range p.state {
		if !st.up {
			out = append(out, addr)
		}
	}
	return out
}
