// Package health is the liveness plane of the forwarding stack: a
// heartbeat prober that pings every I/O-node daemon over the existing rpc
// protocol (OpPing) and publishes up/down transitions.
//
// The paper's premise is that forwarding is on-demand and optional — an
// application with an empty allocation accesses the PFS directly — so an
// I/O node that stops answering must be *detected* and *removed from the
// arbitration pool*, not waited on. The prober is the detector half of
// that loop: the arbiter (MarkDown/MarkUp) is the reactor, and livestack
// wires the two together through the OnTransition callback.
//
// Detection is threshold-debounced in both directions: FailThreshold
// consecutive failed pings mark a node down (one lost packet is not an
// outage), RiseThreshold consecutive successful pings mark it back up
// (one lucky ping is not a recovery).
package health

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// Transition is one up/down state change of a probed node.
type Transition struct {
	// Addr is the I/O-node address whose state changed.
	Addr string
	// Up is the new state.
	Up bool
}

// Overload is one overloaded/recovered state change of a probed node.
// Overload is orthogonal to liveness: an overloaded node still answers
// pings (possibly with a busy response) and keeps serving its current
// load — it must be *deprioritized* by the arbiter, not removed.
type Overload struct {
	// Addr is the I/O-node address whose state changed.
	Addr string
	// Overloaded is the new state.
	Overloaded bool
}

// Config parameterizes a prober.
type Config struct {
	// Addrs are the I/O-node addresses to probe. Required.
	Addrs []string
	// Interval between probe sweeps; ≤0 selects 1s.
	Interval time.Duration
	// Timeout is the per-ping deadline; ≤0 selects Interval/2, floored at
	// 100ms — pings are answered inline by the daemon, but on a saturated
	// host scheduling delay alone can cost tens of milliseconds, and a
	// busy-but-alive node must not be mistaken for a dead one. Probes use
	// a dedicated rpc client with no retries and no breaker, so the
	// prober sees raw reachability. Timeout may exceed Interval: sweeps
	// run sequentially and a slow sweep simply delays the next tick.
	Timeout time.Duration
	// FailThreshold consecutive failed pings mark a node down; ≤0
	// selects 3.
	FailThreshold int
	// RiseThreshold consecutive successful pings mark a down node back
	// up; ≤0 selects 1.
	RiseThreshold int
	// OnTransition, when non-nil, is invoked synchronously from the probe
	// goroutine for every up/down transition (e.g. arbiter.MarkDown).
	OnTransition func(Transition)

	// OverloadQueueDepth marks a sweep as overloaded when the daemon's
	// reported queue depth is at least this value; ≤0 disables the
	// depth signal. Daemons report their depth in the ping response
	// (Size field), so overload detection costs no extra RPCs.
	OverloadQueueDepth int
	// OverloadShedDelta marks a sweep as overloaded when the daemon's
	// cumulative reject counter (ping response Offset field) grew by at
	// least this much since the previous sweep; ≤0 disables the shed
	// signal. Overload detection as a whole is active only when at least
	// one of the two signals is enabled; a ping answered with a busy
	// response always counts as an overloaded sweep while active (and as
	// a *successful* probe either way — shedding proves the node alive).
	OverloadShedDelta int
	// OverloadThreshold consecutive overloaded sweeps mark a node
	// overloaded; ≤0 selects 2.
	OverloadThreshold int
	// OverloadRecovery consecutive healthy sweeps clear the mark; ≤0
	// selects 2.
	OverloadRecovery int
	// OnOverload, when non-nil, is invoked synchronously from the probe
	// goroutine for every overloaded/recovered transition (e.g.
	// arbiter.MarkOverloaded).
	OnOverload func(Overload)

	// WireChecksum makes probe pings carry a CRC32C trailer, matching a
	// stack that runs with wire checksums on (daemons verify whatever
	// arrives; the trailer keeps the probe path exercised end to end).
	WireChecksum bool

	// Telemetry receives probe metrics; nil disables them.
	Telemetry *telemetry.Registry
}

// overloadActive reports whether any overload signal is configured.
func (c Config) overloadActive() bool {
	return c.OverloadQueueDepth > 0 || c.OverloadShedDelta > 0
}

// nodeState tracks one address's debounced liveness and overload.
type nodeState struct {
	up    bool
	fails int // consecutive failures while up
	rises int // consecutive successes while down

	overloaded  bool
	hotSweeps   int   // consecutive overloaded sweeps while healthy
	coolSweeps  int   // consecutive healthy sweeps while overloaded
	lastRejects int64 // cumulative reject counter from the last sweep
	sawRejects  bool  // lastRejects holds a real sample (not the zero value)
	lastDepth   int64 // queue depth from the last loaded sweep
}

// Prober pings a dynamic set of I/O nodes and reports transitions. The
// set starts as Config.Addrs and breathes through Add/Remove (the
// autoscaler's hooks).
type Prober struct {
	cfg Config

	mu      sync.Mutex
	clients map[string]*rpc.Client
	state   map[string]*nodeState

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	tel struct {
		probes, failures     *telemetry.Counter
		downs, ups           *telemetry.Counter
		overloads, recovers  *telemetry.Counter
		nodesUp              *telemetry.Gauge
		nodesOverloaded      *telemetry.Gauge
		queueDepth, shedRate map[string]*telemetry.Gauge // per ION
	}
}

// New builds a prober; every node starts optimistically up. Call Start to
// begin probing, or drive sweeps explicitly with ProbeOnce.
func New(cfg Config) (*Prober, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("health: at least one address is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval / 2
		if cfg.Timeout < 100*time.Millisecond {
			cfg.Timeout = 100 * time.Millisecond
		}
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.RiseThreshold <= 0 {
		cfg.RiseThreshold = 1
	}
	if cfg.OverloadThreshold <= 0 {
		cfg.OverloadThreshold = 2
	}
	if cfg.OverloadRecovery <= 0 {
		cfg.OverloadRecovery = 2
	}
	p := &Prober{
		cfg:     cfg,
		clients: make(map[string]*rpc.Client, len(cfg.Addrs)),
		state:   make(map[string]*nodeState, len(cfg.Addrs)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	reg := cfg.Telemetry
	p.tel.probes = reg.Counter("health_probes_total")
	p.tel.failures = reg.Counter("health_probe_failures_total")
	p.tel.downs = reg.Counter("health_transitions_down_total")
	p.tel.ups = reg.Counter("health_transitions_up_total")
	p.tel.overloads = reg.Counter("health_transitions_overloaded_total")
	p.tel.recovers = reg.Counter("health_transitions_recovered_total")
	p.tel.nodesUp = reg.Gauge("health_ions_up")
	p.tel.nodesOverloaded = reg.Gauge("health_ions_overloaded")
	p.tel.queueDepth = make(map[string]*telemetry.Gauge, len(cfg.Addrs))
	p.tel.shedRate = make(map[string]*telemetry.Gauge, len(cfg.Addrs))
	for _, addr := range cfg.Addrs {
		// The initial pool is trusted immediately, New's historical
		// behaviour; nodes added later choose their own posture.
		if err := p.Add(addr, true); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Add starts probing addr. up seeds the debounced state: true trusts the
// node immediately (the posture New gives the initial pool), false makes
// the node start down, so RiseThreshold successful pings must land before
// the first up transition fires — what a freshly provisioned node
// deserves, and the signal the autoscaler's rollback deadline watches.
// Duplicate addresses are refused.
func (p *Prober) Add(addr string, up bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.clients[addr]; dup {
		return errors.New("health: duplicate address " + addr)
	}
	p.clients[addr] = rpc.Dial(addr, 1).
		WithOptions(rpc.Options{CallTimeout: p.cfg.Timeout, WireChecksum: p.cfg.WireChecksum}).
		Instrument(p.cfg.Telemetry, nil)
	p.state[addr] = &nodeState{up: up}
	if up {
		p.tel.nodesUp.Add(1)
	}
	if _, ok := p.tel.queueDepth[addr]; !ok {
		reg := p.cfg.Telemetry
		p.tel.queueDepth[addr] = reg.Gauge(fmt.Sprintf("health_ion_queue_depth{ion=%q}", addr))
		p.tel.shedRate[addr] = reg.Gauge(fmt.Sprintf("health_ion_shed_delta{ion=%q}", addr))
	}
	return nil
}

// Remove stops probing addr and releases its probe connection. A sweep in
// flight may still ping the address once; its result is discarded.
// Removing an unknown address is a no-op.
func (p *Prober) Remove(addr string) {
	p.mu.Lock()
	cli := p.clients[addr]
	st := p.state[addr]
	delete(p.clients, addr)
	delete(p.state, addr)
	if st != nil && st.up {
		p.tel.nodesUp.Add(-1)
	}
	if st != nil && st.overloaded {
		p.tel.nodesOverloaded.Add(-1)
	}
	p.mu.Unlock()
	if cli != nil {
		cli.Close()
	}
}

// Load reports the last sampled queue depth of every probed node that is
// currently up — the autoscaler's demand signal. Nodes that are down (or
// have not yet produced a loaded sweep, which report 0) are the liveness
// plane's problem, not the capacity planner's.
func (p *Prober) Load() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.state))
	for addr, st := range p.state {
		if st.up {
			out[addr] = st.lastDepth
		}
	}
	return out
}

// Start launches the periodic probe loop. Safe to call once; Stop ends it.
func (p *Prober) Start() {
	p.startOnce.Do(func() {
		go func() {
			defer close(p.done)
			ticker := time.NewTicker(p.cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-p.stop:
					return
				case <-ticker.C:
					p.ProbeOnce()
				}
			}
		}()
	})
}

// Stop ends probing and releases the probe connections. Safe to call even
// if Start never ran.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() {
		close(p.stop)
	})
	p.startOnce.Do(func() { close(p.done) }) // never started: nothing to wait for
	<-p.done
	p.mu.Lock()
	clients := make([]*rpc.Client, 0, len(p.clients))
	for _, c := range p.clients {
		clients = append(clients, c)
	}
	p.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}

// ProbeOnce performs one synchronous sweep over every address, applying
// thresholds and firing OnTransition for each state change. Exported so
// tests (and callers that want probe timing under their own control) can
// drive the prober deterministically.
func (p *Prober) ProbeOnce() {
	// probeResult is one ping's outcome. A busy (shed) ping proves the
	// node alive — only transport errors count as probe failures — but it
	// carries no load sample, so depth/rejects are valid only when loaded
	// is set.
	type probeResult struct {
		ok      bool
		busy    bool
		loaded  bool
		depth   int64
		rejects int64
	}
	// Snapshot the member set first: Add/Remove may run concurrently (the
	// autoscaler breathes the pool), and pings must not hold the lock.
	p.mu.Lock()
	clients := make(map[string]*rpc.Client, len(p.clients))
	for addr, cli := range p.clients {
		clients[addr] = cli
	}
	p.mu.Unlock()

	results := make(map[string]probeResult, len(clients))
	var (
		rmu sync.Mutex
		wg  sync.WaitGroup
	)
	for addr, cli := range clients {
		wg.Add(1)
		go func(addr string, cli *rpc.Client) {
			defer wg.Done()
			resp, err := cli.Call(&rpc.Message{Op: rpc.OpPing})
			var r probeResult
			switch {
			case err == nil:
				r = probeResult{ok: true, loaded: true, depth: resp.Size, rejects: resp.Offset}
			case errors.Is(err, rpc.ErrBusy):
				r = probeResult{ok: true, busy: true}
			}
			rmu.Lock()
			results[addr] = r
			rmu.Unlock()
		}(addr, cli)
	}
	wg.Wait()

	var (
		fired     []Transition
		hotFired  []Overload
		detecting = p.cfg.overloadActive()
	)
	p.mu.Lock()
	for addr, r := range results {
		st := p.state[addr]
		if st == nil {
			continue // removed while the sweep was in flight
		}
		p.tel.probes.Inc()
		if !r.ok {
			p.tel.failures.Inc()
		}
		switch {
		case st.up && !r.ok:
			st.fails++
			if st.fails >= p.cfg.FailThreshold {
				st.up = false
				st.fails = 0
				st.rises = 0
				p.tel.downs.Inc()
				p.tel.nodesUp.Add(-1)
				fired = append(fired, Transition{Addr: addr, Up: false})
			}
		case st.up && r.ok:
			st.fails = 0
		case !st.up && r.ok:
			st.rises++
			if st.rises >= p.cfg.RiseThreshold {
				st.up = true
				st.fails = 0
				st.rises = 0
				p.tel.ups.Inc()
				p.tel.nodesUp.Add(1)
				fired = append(fired, Transition{Addr: addr, Up: true})
			}
		default: // down and still failing
			st.rises = 0
		}

		// Load bookkeeping and overload debouncing: export the sampled
		// depth and per-sweep shed delta unconditionally, transition
		// state only while a signal is configured.
		var shedDelta int64
		if r.loaded {
			st.lastDepth = r.depth
			p.tel.queueDepth[addr].Set(r.depth)
			if st.sawRejects && r.rejects >= st.lastRejects {
				shedDelta = r.rejects - st.lastRejects
			}
			st.lastRejects = r.rejects
			st.sawRejects = true
			p.tel.shedRate[addr].Set(shedDelta)
		}
		if !detecting {
			continue
		}
		hot := r.busy ||
			(r.loaded && p.cfg.OverloadQueueDepth > 0 && r.depth >= int64(p.cfg.OverloadQueueDepth)) ||
			(r.loaded && p.cfg.OverloadShedDelta > 0 && shedDelta >= int64(p.cfg.OverloadShedDelta))
		switch {
		case !r.ok:
			// Dead-looking sweeps feed the liveness thresholds, not the
			// overload ones; hold the overload state as-is.
		case !st.overloaded && hot:
			st.coolSweeps = 0
			st.hotSweeps++
			if st.hotSweeps >= p.cfg.OverloadThreshold {
				st.overloaded = true
				st.hotSweeps = 0
				p.tel.overloads.Inc()
				p.tel.nodesOverloaded.Add(1)
				hotFired = append(hotFired, Overload{Addr: addr, Overloaded: true})
			}
		case !st.overloaded:
			st.hotSweeps = 0
		case st.overloaded && !hot:
			st.coolSweeps++
			if st.coolSweeps >= p.cfg.OverloadRecovery {
				st.overloaded = false
				st.coolSweeps = 0
				p.tel.recovers.Inc()
				p.tel.nodesOverloaded.Add(-1)
				hotFired = append(hotFired, Overload{Addr: addr, Overloaded: false})
			}
		default: // overloaded and still hot
			st.coolSweeps = 0
		}
	}
	p.mu.Unlock()

	// Callbacks run outside the prober lock so they may query the prober
	// (and take arbitrary downstream locks) freely.
	if p.cfg.OnTransition != nil {
		for _, tr := range fired {
			p.cfg.OnTransition(tr)
		}
	}
	if p.cfg.OnOverload != nil {
		for _, ov := range hotFired {
			p.cfg.OnOverload(ov)
		}
	}
}

// IsUp reports the debounced state of addr (false for unknown addresses).
func (p *Prober) IsUp(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[addr]
	return ok && st.up
}

// IsOverloaded reports the debounced overload state of addr (false for
// unknown addresses).
func (p *Prober) IsOverloaded(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[addr]
	return ok && st.overloaded
}

// Overloaded returns the addresses currently marked overloaded.
func (p *Prober) Overloaded() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for addr, st := range p.state {
		if st.overloaded {
			out = append(out, addr)
		}
	}
	return out
}

// Down returns the addresses currently marked down.
func (p *Prober) Down() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for addr, st := range p.state {
		if !st.up {
			out = append(out, addr)
		}
	}
	return out
}
