package health

import (
	"sync"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

func pingServer(t *testing.T) (*rpc.Server, string) {
	t.Helper()
	srv := rpc.NewServer(func(req *rpc.Message) *rpc.Message {
		return &rpc.Message{Op: req.Op}
	})
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr
}

// collector records transitions thread-safely.
type collector struct {
	mu  sync.Mutex
	trs []Transition
}

func (c *collector) add(tr Transition) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trs = append(c.trs, tr)
}

func (c *collector) all() []Transition {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Transition(nil), c.trs...)
}

func TestProbeDetectsDownAndRecovery(t *testing.T) {
	srvA, addrA := pingServer(t)
	srvB, addrB := pingServer(t)
	defer srvB.Close()

	col := &collector{}
	reg := telemetry.New()
	p, err := New(Config{
		Addrs:         []string{addrA, addrB},
		Interval:      time.Second, // driven manually via ProbeOnce
		Timeout:       100 * time.Millisecond,
		FailThreshold: 2,
		RiseThreshold: 2,
		OnTransition:  col.add,
		Telemetry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	p.ProbeOnce()
	if !p.IsUp(addrA) || !p.IsUp(addrB) {
		t.Fatal("both nodes should be up")
	}
	if len(col.all()) != 0 {
		t.Fatalf("no transitions expected yet: %v", col.all())
	}

	srvA.Close()
	p.ProbeOnce() // failure 1 of 2: debounced, still up
	if !p.IsUp(addrA) {
		t.Fatal("one failed ping must not mark a node down (FailThreshold=2)")
	}
	p.ProbeOnce() // failure 2 of 2: down
	if p.IsUp(addrA) {
		t.Fatal("node should be down after FailThreshold failures")
	}
	trs := col.all()
	if len(trs) != 1 || trs[0].Up || trs[0].Addr != addrA {
		t.Fatalf("want one down transition for %s, got %v", addrA, trs)
	}
	if got := reg.Counter("health_transitions_down_total").Value(); got != 1 {
		t.Fatalf("health_transitions_down_total = %d, want 1", got)
	}
	if got := reg.Gauge("health_ions_up").Value(); got != 1 {
		t.Fatalf("health_ions_up = %d, want 1", got)
	}
	if down := p.Down(); len(down) != 1 || down[0] != addrA {
		t.Fatalf("Down() = %v", down)
	}

	// Restart on the same address; RiseThreshold=2 debounces recovery.
	srvA2, err2 := rpc.NewServer(func(req *rpc.Message) *rpc.Message {
		return &rpc.Message{Op: req.Op}
	}), error(nil)
	if _, err2 = srvA2.Listen(addrA); err2 != nil {
		t.Fatalf("rebind %s: %v", addrA, err2)
	}
	defer srvA2.Close()
	p.ProbeOnce()
	if p.IsUp(addrA) {
		t.Fatal("one good ping must not mark a node up (RiseThreshold=2)")
	}
	p.ProbeOnce()
	if !p.IsUp(addrA) {
		t.Fatal("node should be back up after RiseThreshold successes")
	}
	trs = col.all()
	if len(trs) != 2 || !trs[1].Up {
		t.Fatalf("want a final up transition, got %v", trs)
	}
	if got := reg.Counter("health_transitions_up_total").Value(); got != 1 {
		t.Fatalf("health_transitions_up_total = %d, want 1", got)
	}
	if got := reg.Gauge("health_ions_up").Value(); got != 2 {
		t.Fatalf("health_ions_up = %d, want 2", got)
	}
}

func TestStartStopLoop(t *testing.T) {
	srv, addr := pingServer(t)
	defer srv.Close()
	reg := telemetry.New()
	p, err := New(Config{
		Addrs:     []string{addr},
		Interval:  2 * time.Millisecond,
		Timeout:   50 * time.Millisecond,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	probes := reg.Counter("health_probes_total")
	deadline := time.Now().Add(2 * time.Second)
	for probes.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never ran")
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	// Stop is idempotent and Stop-after-Stop must not hang.
	p.Stop()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty address set should fail")
	}
	if _, err := New(Config{Addrs: []string{"a:1", "a:1"}}); err == nil {
		t.Fatal("duplicate addresses should fail")
	}
}

func TestStopWithoutStart(t *testing.T) {
	srv, addr := pingServer(t)
	defer srv.Close()
	p, err := New(Config{Addrs: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		p.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop without Start hung")
	}
}
