package health

// Overload-detection tests: pings double as load reports (queue depth and
// cumulative rejects ride the ping response), overload transitions are
// debounced separately from liveness, and a busy ping proves a node alive
// — the one misclassification the design forbids is "overloaded" read as
// "down".

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// loadServer answers pings with a scripted load report, or a busy
// response when shedding is on.
type loadServer struct {
	depth    atomic.Int64
	rejects  atomic.Int64
	shedding atomic.Bool
}

func (l *loadServer) start(t *testing.T) (*rpc.Server, string) {
	t.Helper()
	srv := rpc.NewServer(func(req *rpc.Message) *rpc.Message {
		if l.shedding.Load() {
			return &rpc.Message{Op: req.Op, Busy: true, RetryAfter: time.Millisecond}
		}
		return &rpc.Message{Op: req.Op, Size: l.depth.Load(), Offset: l.rejects.Load()}
	})
	addr, err := srv.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// overloadCollector records overload transitions thread-safely.
type overloadCollector struct {
	mu  sync.Mutex
	ovs []Overload
}

func (c *overloadCollector) add(ov Overload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ovs = append(c.ovs, ov)
}

func (c *overloadCollector) all() []Overload {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Overload(nil), c.ovs...)
}

func TestOverloadDetectionByQueueDepth(t *testing.T) {
	ls := &loadServer{}
	_, addr := ls.start(t)
	col := &overloadCollector{}
	reg := telemetry.New()
	p, err := New(Config{
		Addrs:              []string{addr},
		Interval:           time.Second, // driven manually
		Timeout:            100 * time.Millisecond,
		OverloadQueueDepth: 10,
		OverloadThreshold:  2,
		OverloadRecovery:   2,
		OnOverload:         col.add,
		Telemetry:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	// Healthy depth: no overload state accrues.
	ls.depth.Store(3)
	p.ProbeOnce()
	p.ProbeOnce()
	if p.IsOverloaded(addr) || len(col.all()) != 0 {
		t.Fatal("healthy node misread as overloaded")
	}
	if got := reg.Gauge(fmt.Sprintf("health_ion_queue_depth{ion=%q}", addr)).Value(); got != 3 {
		t.Fatalf("queue-depth gauge = %d, want 3", got)
	}

	// One hot sweep is not enough (debounce), two are.
	ls.depth.Store(25)
	p.ProbeOnce()
	if p.IsOverloaded(addr) {
		t.Fatal("one hot sweep must not mark overload")
	}
	p.ProbeOnce()
	if !p.IsOverloaded(addr) {
		t.Fatal("two hot sweeps should mark overload")
	}
	if ovs := col.all(); len(ovs) != 1 || !ovs[0].Overloaded || ovs[0].Addr != addr {
		t.Fatalf("unexpected overload transitions: %+v", ovs)
	}
	if got := reg.Counter("health_transitions_overloaded_total").Value(); got != 1 {
		t.Fatalf("health_transitions_overloaded_total = %d, want 1", got)
	}
	if got := reg.Gauge("health_ions_overloaded").Value(); got != 1 {
		t.Fatalf("health_ions_overloaded = %d, want 1", got)
	}
	if ovl := p.Overloaded(); len(ovl) != 1 || ovl[0] != addr {
		t.Fatalf("Overloaded() = %v", ovl)
	}
	// Overload is not down: liveness is untouched.
	if !p.IsUp(addr) {
		t.Fatal("overloaded node must remain up")
	}

	// Recovery debounces the same way.
	ls.depth.Store(2)
	p.ProbeOnce()
	if !p.IsOverloaded(addr) {
		t.Fatal("one cool sweep must not clear overload")
	}
	p.ProbeOnce()
	if p.IsOverloaded(addr) {
		t.Fatal("two cool sweeps should clear overload")
	}
	if ovs := col.all(); len(ovs) != 2 || ovs[1].Overloaded {
		t.Fatalf("recovery transition missing: %+v", ovs)
	}
	if got := reg.Counter("health_transitions_recovered_total").Value(); got != 1 {
		t.Fatalf("health_transitions_recovered_total = %d, want 1", got)
	}
	if got := reg.Gauge("health_ions_overloaded").Value(); got != 0 {
		t.Fatalf("health_ions_overloaded = %d, want 0 after recovery", got)
	}
}

func TestOverloadDetectionByShedDelta(t *testing.T) {
	ls := &loadServer{}
	_, addr := ls.start(t)
	p, err := New(Config{
		Addrs:             []string{addr},
		Interval:          time.Second,
		Timeout:           100 * time.Millisecond,
		OverloadShedDelta: 5,
		OverloadThreshold: 1,
		OverloadRecovery:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	// First sweep establishes the baseline; a large cumulative count with
	// no delta yet must not trigger (the counter is cumulative, not a rate).
	ls.rejects.Store(1000)
	p.ProbeOnce()
	if p.IsOverloaded(addr) {
		t.Fatal("baseline sweep has no delta; must not mark overload")
	}
	// +3 rejects: below the delta threshold.
	ls.rejects.Store(1003)
	p.ProbeOnce()
	if p.IsOverloaded(addr) {
		t.Fatal("delta 3 < 5 must not mark overload")
	}
	// +7 rejects: above it.
	ls.rejects.Store(1010)
	p.ProbeOnce()
	if !p.IsOverloaded(addr) {
		t.Fatal("delta 7 ≥ 5 should mark overload")
	}
	// Flat counter: recovery.
	p.ProbeOnce()
	if p.IsOverloaded(addr) {
		t.Fatal("flat reject counter should clear overload")
	}
}

// TestBusyPingIsAliveAndOverloaded: a daemon shedding even its pings is
// the strongest overload signal there is — and explicit proof of life.
// Misreading it as down would remove capacity exactly when removing
// capacity hurts most.
func TestBusyPingIsAliveAndOverloaded(t *testing.T) {
	ls := &loadServer{}
	_, addr := ls.start(t)
	reg := telemetry.New()
	p, err := New(Config{
		Addrs:              []string{addr},
		Interval:           time.Second,
		Timeout:            100 * time.Millisecond,
		FailThreshold:      2,
		OverloadQueueDepth: 100, // depth signal armed but never reached
		OverloadThreshold:  2,
		OverloadRecovery:   1,
		Telemetry:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	ls.shedding.Store(true)
	for i := 0; i < 4; i++ { // well past FailThreshold
		p.ProbeOnce()
	}
	if !p.IsUp(addr) {
		t.Fatal("busy pings misclassified the node as down")
	}
	if got := reg.Counter("health_probe_failures_total").Value(); got != 0 {
		t.Fatalf("busy pings counted as probe failures: %d", got)
	}
	if !p.IsOverloaded(addr) {
		t.Fatal("shed pings should mark the node overloaded")
	}

	ls.shedding.Store(false)
	p.ProbeOnce()
	if p.IsOverloaded(addr) {
		t.Fatal("normal pings should clear busy-driven overload")
	}
	if !p.IsUp(addr) {
		t.Fatal("node should remain up throughout")
	}
}

// TestOverloadInactiveWithoutThresholds: with neither signal configured
// the prober keeps its legacy behavior — busy pings still count as alive,
// but no overload state is tracked.
func TestOverloadInactiveWithoutThresholds(t *testing.T) {
	ls := &loadServer{}
	_, addr := ls.start(t)
	p, err := New(Config{
		Addrs:    []string{addr},
		Interval: time.Second,
		Timeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	ls.shedding.Store(true)
	for i := 0; i < 5; i++ {
		p.ProbeOnce()
	}
	if !p.IsUp(addr) {
		t.Fatal("busy ping misread as down even with detection off")
	}
	if p.IsOverloaded(addr) || len(p.Overloaded()) != 0 {
		t.Fatal("overload state tracked despite no signal being configured")
	}
}
