package ion

import (
	"sync"

	"repro/internal/rpc"
)

// dedupTable gives a daemon exactly-once write semantics over an
// at-least-once transport. Forwarded requests arrive stamped with a
// (clientID, seq) identity; the table remembers, per client, a bounded
// window of recently committed outcomes so a transport-retried request
// whose first attempt was applied (but whose response was lost) replays
// the cached response instead of re-executing.
//
// Three states per (clientID, seq):
//
//   - absent: the caller wins execution and receives a commit closure;
//   - in flight: an earlier attempt is still executing — the caller waits
//     on its done channel and re-claims, so concurrent duplicates coalesce
//     onto one execution instead of racing it;
//   - committed: the cached response is returned for replay.
//
// Outcomes that never reached execution (busy sheds, closed-queue
// rejects) are committed with applied=false, which removes the entry: the
// operation was not performed, so a retry must execute it for real.
// Committed entries are evicted FIFO per client once the window is full;
// in-flight entries are never evicted. Sizing and the guarantee's limits
// are documented in DESIGN.md ("Integrity model").
type dedupTable struct {
	mu      sync.Mutex
	window  int
	clients map[string]*clientWindow
}

type clientWindow struct {
	entries map[uint64]*dedupEntry
	order   []uint64 // committed seqs in commit order, for FIFO eviction
}

type dedupEntry struct {
	done chan struct{} // closed at commit
	resp *rpc.Message  // cached outcome; nil when committed unapplied
}

func newDedupTable(window int) *dedupTable {
	return &dedupTable{window: window, clients: make(map[string]*clientWindow)}
}

// claim resolves one attempt at (clientID, seq). Exactly one of the three
// returns is non-nil: cached (replay it), inflight (wait, then claim
// again), or commit (execute, then call it exactly once; applied=false
// means the operation never ran and the seq must stay claimable).
func (t *dedupTable) claim(clientID string, seq uint64) (cached *rpc.Message, inflight <-chan struct{}, commit func(resp *rpc.Message, applied bool)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cw := t.clients[clientID]
	if cw == nil {
		cw = &clientWindow{entries: make(map[uint64]*dedupEntry)}
		t.clients[clientID] = cw
	}
	if e, ok := cw.entries[seq]; ok {
		select {
		case <-e.done:
			// Committed with a cached outcome (unapplied commits delete the
			// entry before closing done, so resp is always set here).
			cp := *e.resp
			return &cp, nil, nil
		default:
			return nil, e.done, nil
		}
	}
	e := &dedupEntry{done: make(chan struct{})}
	cw.entries[seq] = e
	commit = func(resp *rpc.Message, applied bool) {
		t.mu.Lock()
		if applied {
			cp := *resp
			e.resp = &cp
			cw.order = append(cw.order, seq)
			for len(cw.order) > t.window {
				old := cw.order[0]
				cw.order = cw.order[1:]
				delete(cw.entries, old)
			}
		} else {
			delete(cw.entries, seq)
		}
		t.mu.Unlock()
		close(e.done)
	}
	return nil, nil, commit
}

// size reports the total committed+in-flight entries (tests only).
func (t *dedupTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, cw := range t.clients {
		n += len(cw.entries)
	}
	return n
}
