package ion

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/rpc"
)

// countingBackend counts backend write applications, so exactly-once tests
// can observe double-apply directly at the storage boundary.
type countingBackend struct {
	*pfs.Store
	applies atomic.Int64
}

func (b *countingBackend) WriteAs(writer, path string, off int64, p []byte) (int, error) {
	b.applies.Add(1)
	return b.Store.WriteAs(writer, path, off, p)
}

// sendStamped writes one stamped OpWrite frame on a raw conn — no rpc.Client,
// so the test controls exactly when the connection dies.
func sendStamped(t *testing.T, addr string, read bool) *rpc.Message {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := &rpc.Message{
		Op: rpc.OpWrite, Path: "/dup", Offset: 0, Data: []byte("exactly-once"),
		ClientID: "fwd-A", Seq: 1,
	}
	if err := rpc.WriteMessage(conn, msg); err != nil {
		t.Fatal(err)
	}
	if !read {
		return nil // cut the connection with the response unread
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := rpc.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRetryDuplicateExactlyOnce is the headline regression: the connection
// dies after the server applies a write but before the client reads the
// response; the transport retry resends the same stamped frame. With a
// dedup window the daemon replays the cached outcome — the backend applies
// the bytes exactly once.
func TestRetryDuplicateExactlyOnce(t *testing.T) {
	backend := &countingBackend{Store: pfs.NewStore(pfs.Config{})}
	d := New(Config{ID: "ion0", DedupWindow: 64}, backend)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// First attempt: frame lands, server applies, response is never read —
	// from the client's side this is a broken exchange it must retry.
	sendStamped(t, addr, false)
	deadline := time.Now().Add(5 * time.Second)
	for backend.applies.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first attempt never applied")
		}
		time.Sleep(time.Millisecond)
	}

	// The retry: identical frame on a fresh connection.
	resp := sendStamped(t, addr, true)
	if resp.Err != "" {
		t.Fatalf("retry failed: %s", resp.Err)
	}
	if !resp.Replayed {
		t.Fatal("retry response should be marked Replayed")
	}
	if resp.Size != int64(len("exactly-once")) {
		t.Fatalf("replayed size = %d", resp.Size)
	}
	if got := backend.applies.Load(); got != 1 {
		t.Fatalf("backend applied %d times, want exactly 1", got)
	}
	s := d.Stats()
	if s.Writes != 1 || s.DedupReplays != 1 {
		t.Fatalf("stats: writes=%d replays=%d, want 1/1", s.Writes, s.DedupReplays)
	}
	// Content intact.
	buf := make([]byte, len("exactly-once"))
	if _, err := backend.Read("/dup", 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("exactly-once")) {
		t.Fatalf("content %q", buf)
	}
}

// TestRetryDuplicateWithoutDedupDoubleApplies pins the pre-integrity
// behavior the tentpole fixes: with the window disabled (the default), the
// same retry re-executes and the backend applies twice. If this test ever
// fails, deduplication stopped being opt-in.
func TestRetryDuplicateWithoutDedupDoubleApplies(t *testing.T) {
	backend := &countingBackend{Store: pfs.NewStore(pfs.Config{})}
	d := New(Config{ID: "ion0"}, backend) // DedupWindow 0: off
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	sendStamped(t, addr, false)
	deadline := time.Now().Add(5 * time.Second)
	for backend.applies.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first attempt never applied")
		}
		time.Sleep(time.Millisecond)
	}
	resp := sendStamped(t, addr, true)
	if resp.Replayed {
		t.Fatal("no dedup window, yet response claims replay")
	}
	if got := backend.applies.Load(); got != 2 {
		t.Fatalf("backend applied %d times, want 2 (double-apply without dedup)", got)
	}
}

// TestDedupConcurrentDuplicates: duplicates racing the original execution
// coalesce onto it — one backend apply, every caller sees the same outcome.
func TestDedupConcurrentDuplicates(t *testing.T) {
	backend := &countingBackend{Store: pfs.NewStore(pfs.Config{})}
	d := New(Config{ID: "ion0", DedupWindow: 8}, backend)
	if _, err := d.Start(""); err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const dups = 8
	var wg sync.WaitGroup
	resps := make([]*rpc.Message, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = d.handleOp(&rpc.Message{
				Op: rpc.OpWrite, Path: "/c", Offset: 0, Data: []byte("dup"),
				ClientID: "fwd-B", Seq: 7,
			})
		}(i)
	}
	wg.Wait()
	if got := backend.applies.Load(); got != 1 {
		t.Fatalf("backend applied %d times, want 1", got)
	}
	replays := 0
	for i, r := range resps {
		if r.Err != "" {
			t.Fatalf("dup %d: %s", i, r.Err)
		}
		if r.Size != 3 {
			t.Fatalf("dup %d: size %d", i, r.Size)
		}
		if r.Replayed {
			replays++
		}
	}
	if replays != dups-1 {
		t.Fatalf("replays = %d, want %d", replays, dups-1)
	}
}

// TestDedupWindowEviction: the window is bounded FIFO per client — once a
// seq falls out, a late retry re-executes (the documented limit).
func TestDedupWindowEviction(t *testing.T) {
	backend := &countingBackend{Store: pfs.NewStore(pfs.Config{})}
	d := New(Config{ID: "ion0", DedupWindow: 2}, backend)
	if _, err := d.Start(""); err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	write := func(seq uint64) *rpc.Message {
		return d.handleOp(&rpc.Message{
			Op: rpc.OpWrite, Path: "/w", Offset: int64(seq) * 4, Data: []byte("abcd"),
			ClientID: "fwd-C", Seq: seq,
		})
	}
	write(1)
	write(2)
	write(3) // evicts seq 1
	if d.dedup.size() != 2 {
		t.Fatalf("window size %d, want 2", d.dedup.size())
	}
	// Seq 3 is still cached: replayed. Seq 1 fell out: re-executed.
	if r := write(3); !r.Replayed {
		t.Fatal("seq 3 should replay")
	}
	if r := write(1); r.Replayed {
		t.Fatal("evicted seq 1 should re-execute")
	}
	if got := backend.applies.Load(); got != 4 {
		t.Fatalf("applies = %d, want 4 (3 originals + 1 evicted retry)", got)
	}
}

// TestDedupBusyShedNotCached: a shed write never executed, so its seq must
// stay claimable — the retry after a busy must re-execute for real, and
// busy responses must never leak into the replay cache.
func TestDedupBusyShedNotCached(t *testing.T) {
	backend := &blockingBackend{
		Store:   pfs.NewStore(pfs.Config{}),
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	d := New(Config{
		ID: "ion0", Dispatchers: 1, QueueCap: 1, QueueLowWater: 1,
		RetryAfterHint: time.Millisecond, DedupWindow: 8,
	}, backend)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// A Fatal below must not leave the dispatcher parked in the backend —
	// Close waits for in-flight handlers, so an unreleased backend would
	// hang the whole package.
	releaseBackend := sync.OnceFunc(func() { close(backend.release) })
	defer releaseBackend()
	cli := rpc.Dial(addr, 4)
	defer cli.Close()

	// Occupy the dispatcher, THEN fill the queue to its cap of 1. The
	// second write may only be sent once the first is inside the backend:
	// sent concurrently, it can reach the still-occupied queue first and
	// be shed (or merged into the head), and the queue never fills.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/b", Offset: 0, Data: []byte("abcd"), ClientID: "fwd-D", Seq: 100})
	}()
	<-backend.entered
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/b", Offset: 4, Data: []byte("abcd"), ClientID: "fwd-D", Seq: 101})
	}()
	deadline := time.Now().Add(2 * time.Second)
	for d.QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d", d.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}

	// This stamped write sheds.
	resp, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/b", Offset: 64, Data: []byte("shed"), ClientID: "fwd-D", Seq: 999})
	if !errors.Is(err, rpc.ErrBusy) {
		t.Fatalf("want ErrBusy, got %v", err)
	}
	// Response-hygiene audit (satellite): a busy response carries the busy
	// flag and hint plus identity echoes — and nothing else.
	if resp.Err != "" || resp.Replayed || resp.Size != 0 || len(resp.Data) != 0 {
		t.Fatalf("busy response leaks fields: %+v", resp)
	}
	if resp.ClientID != "fwd-D" || resp.Seq != 999 {
		t.Fatalf("busy response identity echo: %+v", resp)
	}

	// Drain the blocked writes, then retry the shed seq: it must execute.
	releaseBackend()
	wg.Wait()
	resp, err = cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/b", Offset: 64, Data: []byte("shed"), ClientID: "fwd-D", Seq: 999})
	if err != nil {
		t.Fatalf("retry after shed: %v", err)
	}
	if resp.Replayed {
		t.Fatal("retry of a shed (never-executed) write must not be a replay")
	}
	if resp.Size != 4 {
		t.Fatalf("retry size = %d", resp.Size)
	}
}

// TestErrorResponseHygiene audits the pushFailed error path (closed queue):
// Trace echoed, Busy false, RetryAfter zero — no stale request fields.
func TestErrorResponseHygiene(t *testing.T) {
	d := New(Config{ID: "ion0", DedupWindow: 4}, &countingBackend{Store: pfs.NewStore(pfs.Config{})})
	// Never started: close the queue directly so Push fails terminally.
	d.queue.Close()
	resp := d.handleOp(&rpc.Message{
		Op: rpc.OpWrite, Path: "/p", Offset: 4, Data: []byte("x"),
		Trace: 42, ClientID: "fwd-E", Seq: 5,
		Busy: true, RetryAfter: time.Second, Replayed: true, // hostile stale flags
	})
	if resp.Err == "" {
		t.Fatal("closed queue should produce an error response")
	}
	if resp.Busy || resp.RetryAfter != 0 || resp.Replayed {
		t.Fatalf("error response leaks flags: %+v", resp)
	}
	if resp.Trace != 42 || resp.Path != "/p" {
		t.Fatalf("error response must echo identity: %+v", resp)
	}
	if len(resp.Data) != 0 || resp.Size != 0 {
		t.Fatalf("error response leaks payload: %+v", resp)
	}
	// The never-executed write must not be cached: the table is empty.
	if d.dedup.size() != 0 {
		t.Fatalf("dedup cached a never-executed write (size %d)", d.dedup.size())
	}
}
