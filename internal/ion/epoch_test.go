package ion

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/pfs"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// TestFenceRejectsRevokedEpoch pins the fencing contract end to end: a
// write stamped below the fence is rejected as ErrStaleEpoch with the
// floor attached, never touches the backend, and counts a rejection;
// writes at/above the fence and unstamped writes still apply.
func TestFenceRejectsRevokedEpoch(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	reg := telemetry.New()
	d, cli := startDaemon(t, Config{ID: "ion0", EpochFencing: true, Telemetry: reg}, store)

	// Before any fence: stamped writes of any epoch apply.
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/f", Offset: 0, Data: []byte("aaaa"), Epoch: 1}); err != nil {
		t.Fatalf("pre-fence write: %v", err)
	}

	d.SetFence(5)
	if d.Fence() != 5 {
		t.Fatalf("fence = %d, want 5", d.Fence())
	}
	// Monotonic: a lower fence must not lower the floor.
	d.SetFence(3)
	if d.Fence() != 5 {
		t.Fatalf("fence lowered to %d", d.Fence())
	}

	// A revoked-epoch write is fenced and leaves no bytes behind.
	resp, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/f", Offset: 0, Data: []byte("XXXX"), Epoch: 4})
	if !errors.Is(err, rpc.ErrStaleEpoch) {
		t.Fatalf("want ErrStaleEpoch, got %v", err)
	}
	if rpc.FenceHint(err) != 5 {
		t.Fatalf("fence hint = %d, want 5", rpc.FenceHint(err))
	}
	if resp != nil {
		resp.Release()
	}
	buf := make([]byte, 4)
	if _, err := store.Read("/f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "aaaa" {
		t.Fatalf("fenced write reached the backend: %q", buf)
	}
	if v := reg.Counter(`epoch_fence_rejections_total{node="ion0"}`).Value(); v != 1 {
		t.Fatalf("epoch_fence_rejections_total = %d, want 1", v)
	}

	// At the fence: applies.
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/f", Offset: 0, Data: []byte("bbbb"), Epoch: 5}); err != nil {
		t.Fatalf("at-fence write: %v", err)
	}
	// Unstamped (pre-epoch client): never fenced.
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/f", Offset: 0, Data: []byte("cccc")}); err != nil {
		t.Fatalf("unstamped write: %v", err)
	}
	if _, err := store.Read("/f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "cccc" {
		t.Fatalf("post-fence writes lost: %q", buf)
	}
}

// TestFenceRunsBeforeDedup pins the ordering that keeps retries honest:
// a fenced write must not claim a dedup slot, so the same (client, seq)
// re-sent under a fresh epoch executes normally instead of replaying
// the rejection.
func TestFenceRunsBeforeDedup(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	d, cli := startDaemon(t, Config{ID: "ion0", EpochFencing: true, DedupWindow: 16}, store)
	d.SetFence(10)

	stale := &rpc.Message{Op: rpc.OpWrite, Path: "/g", Data: []byte("old!"), ClientID: "c1", Seq: 7, Epoch: 9}
	if _, err := cli.Call(stale); !errors.Is(err, rpc.ErrStaleEpoch) {
		t.Fatalf("want ErrStaleEpoch, got %v", err)
	}

	// Same identity, fresh epoch: must apply (not replay the rejection).
	fresh := &rpc.Message{Op: rpc.OpWrite, Path: "/g", Data: []byte("new!"), ClientID: "c1", Seq: 7, Epoch: 10}
	resp, err := cli.Call(fresh)
	if err != nil {
		t.Fatalf("fresh-epoch retry: %v", err)
	}
	if resp.Replayed {
		t.Fatal("fenced write leaked into the dedup window: retry was replayed")
	}
	buf := make([]byte, 4)
	if _, err := store.Read("/g", 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "new!" {
		t.Fatalf("retry not applied: %q", buf)
	}
}

// TestFenceDisabledByDefault pins the opt-in contract: without
// EpochFencing, SetFence is inert, stamped writes always apply, and no
// epoch_* series is registered.
func TestFenceDisabledByDefault(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	reg := telemetry.New()
	d, cli := startDaemon(t, Config{ID: "ion0", Telemetry: reg}, store)
	d.SetFence(100)
	if d.Fence() != 0 {
		t.Fatalf("SetFence took effect without EpochFencing: %d", d.Fence())
	}
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/h", Data: []byte("ok"), Epoch: 1}); err != nil {
		t.Fatalf("stamped write on unfenced daemon: %v", err)
	}
	for name := range reg.Snapshot().Counters {
		if strings.HasPrefix(name, "epoch_") {
			t.Fatalf("epoch series registered without fencing: %s", name)
		}
	}
}

// TestFenceSurvivesWarmRestart: like the dedup window, the fence floor
// must persist across a daemon warm restart — the stale clients it
// exists to stop are exactly the ones a blackout strands.
func TestFenceSurvivesWarmRestart(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	d, cli := startDaemon(t, Config{ID: "ion0", EpochFencing: true}, store)
	d.SetFence(8)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	addr, err := d.Restart()
	if err != nil {
		t.Fatal(err)
	}
	cli2 := rpc.Dial(addr, 1)
	defer cli2.Close()
	if _, err := cli2.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/r", Data: []byte("x"), Epoch: 7}); !errors.Is(err, rpc.ErrStaleEpoch) {
		t.Fatalf("fence lost across warm restart: %v", err)
	}
}
