// Package ion implements the I/O-node daemon: the GekkoFWD server role.
// A daemon accepts forwarded requests over the rpc transport, feeds data
// operations through an AGIOS scheduler queue, and dispatches them to the
// parallel file system with a fixed-width worker pool. Metadata operations
// bypass the scheduler (as in GekkoFS, where they go straight to the
// daemon's metadata backend).
package ion

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/agios"
	"repro/internal/pfs"
	"repro/internal/rpc"
)

// Backend is the storage interface a daemon dispatches to: the PFS
// contract plus writer attribution, so the shared-file contention model
// can tell I/O-node streams apart. *pfs.Store implements it; test doubles
// (e.g. fault injectors) may wrap one.
type Backend interface {
	pfs.FileSystem
	WriteAs(writer, path string, off int64, p []byte) (int, error)
}

// Stats counts the daemon's activity.
type Stats struct {
	Writes       int64
	Reads        int64
	MetaOps      int64
	BytesIn      int64
	BytesOut     int64
	Dispatches   int64 // PFS dispatches (aggregates count once)
	Aggregated   int64 // client requests that were merged into aggregates
	QueueRejects int64
}

// Config parameterizes a daemon.
type Config struct {
	// ID names the daemon; it is used as the writer identity at the PFS
	// so the shared-file lock model sees per-I/O-node streams.
	ID string
	// Scheduler orders requests; nil selects FIFO.
	Scheduler agios.Scheduler
	// Dispatchers is the PFS worker-pool width; ≤0 selects 2 (matching
	// the performance model's DispatchWidth).
	Dispatchers int
}

// Daemon is one I/O node.
type Daemon struct {
	cfg     Config
	backend Backend
	queue   *agios.Queue
	server  *rpc.Server
	addr    string

	wg     sync.WaitGroup
	closed atomic.Bool

	stats struct {
		writes, reads, meta, bytesIn, bytesOut, dispatches, aggregated, rejects atomic.Int64
	}
}

// New creates a daemon over the given PFS backend.
func New(cfg Config, backend Backend) *Daemon {
	if cfg.Scheduler == nil {
		cfg.Scheduler = agios.NewFIFO()
	}
	if cfg.Dispatchers <= 0 {
		cfg.Dispatchers = 2
	}
	d := &Daemon{
		cfg:     cfg,
		backend: backend,
		queue:   agios.NewQueue(cfg.Scheduler),
	}
	d.server = rpc.NewServer(d.handle)
	return d
}

// Start binds the daemon to addr (empty for an ephemeral localhost port),
// launches the dispatcher pool, and returns the bound address.
func (d *Daemon) Start(addr string) (string, error) {
	bound, err := d.server.Listen(addr)
	if err != nil {
		return "", err
	}
	d.addr = bound
	for i := 0; i < d.cfg.Dispatchers; i++ {
		d.wg.Add(1)
		go d.dispatchLoop()
	}
	return bound, nil
}

// Addr returns the daemon's bound address (empty before Start).
func (d *Daemon) Addr() string { return d.addr }

// ID returns the daemon's identity.
func (d *Daemon) ID() string { return d.cfg.ID }

// SchedulerName reports which AGIOS scheduler the daemon runs.
func (d *Daemon) SchedulerName() string { return d.queue.SchedulerName() }

// Close stops the RPC server, drains the queue, and waits for dispatchers.
func (d *Daemon) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	err := d.server.Close()
	d.queue.Close()
	d.wg.Wait()
	return err
}

// Stats returns a snapshot of the daemon's counters.
func (d *Daemon) Stats() Stats {
	return Stats{
		Writes:       d.stats.writes.Load(),
		Reads:        d.stats.reads.Load(),
		MetaOps:      d.stats.meta.Load(),
		BytesIn:      d.stats.bytesIn.Load(),
		BytesOut:     d.stats.bytesOut.Load(),
		Dispatches:   d.stats.dispatches.Load(),
		Aggregated:   d.stats.aggregated.Load(),
		QueueRejects: d.stats.rejects.Load(),
	}
}

// handle is the RPC entry point.
func (d *Daemon) handle(m *rpc.Message) *rpc.Message {
	resp := &rpc.Message{Op: m.Op, Path: m.Path}
	switch m.Op {
	case rpc.OpPing:
		resp.Data = []byte(d.cfg.ID)

	case rpc.OpWrite:
		d.stats.writes.Add(1)
		d.stats.bytesIn.Add(int64(len(m.Data)))
		done := make(chan error, 1)
		req := &agios.Request{
			Path:   m.Path,
			Offset: m.Offset,
			Size:   int64(len(m.Data)),
			Op:     agios.OpWrite,
			Data:   m.Data,
			OnComplete: func(err error) {
				done <- err
			},
		}
		if err := d.queue.Push(req); err != nil {
			d.stats.rejects.Add(1)
			resp.Err = err.Error()
			return resp
		}
		if err := <-done; err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Size = int64(len(m.Data))

	case rpc.OpRead:
		d.stats.reads.Add(1)
		done := make(chan error, 1)
		req := &agios.Request{
			Path:   m.Path,
			Offset: m.Offset,
			Size:   m.Size,
			Op:     agios.OpRead,
			OnComplete: func(err error) {
				done <- err
			},
		}
		if err := d.queue.Push(req); err != nil {
			d.stats.rejects.Add(1)
			resp.Err = err.Error()
			return resp
		}
		err := <-done
		resp.Data = req.Data // dispatcher stored the bytes read
		resp.Size = int64(len(req.Data))
		d.stats.bytesOut.Add(int64(len(req.Data)))
		if err != nil {
			resp.Err = err.Error()
		}

	case rpc.OpCreate:
		d.stats.meta.Add(1)
		if err := d.backend.Create(m.Path); err != nil {
			resp.Err = err.Error()
		}

	case rpc.OpStat:
		d.stats.meta.Add(1)
		info, err := d.backend.Stat(m.Path)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Size = info.Size
		}

	case rpc.OpRemove:
		d.stats.meta.Add(1)
		if err := d.backend.Remove(m.Path); err != nil {
			resp.Err = err.Error()
		}

	case rpc.OpFsync:
		d.stats.meta.Add(1)
		if err := d.backend.Fsync(m.Path); err != nil {
			resp.Err = err.Error()
		}

	default:
		resp.Err = fmt.Sprintf("ion: unsupported op %s", m.Op)
	}
	return resp
}

// dispatchLoop pops scheduled requests and executes them against the PFS.
func (d *Daemon) dispatchLoop() {
	defer d.wg.Done()
	for {
		req, ok := d.queue.PopWait()
		if !ok {
			return
		}
		d.stats.dispatches.Add(1)
		if n := len(req.Children); n > 0 {
			d.stats.aggregated.Add(int64(n))
		}
		switch req.Op {
		case agios.OpWrite:
			_, err := d.backend.WriteAs(d.cfg.ID, req.Path, req.Offset, req.Data)
			req.Complete(err)
		case agios.OpRead:
			buf := make([]byte, req.Size)
			n, err := d.backend.Read(req.Path, req.Offset, buf)
			req.Data = buf[:n]
			req.Complete(err)
		default:
			req.Complete(fmt.Errorf("ion: unknown scheduled op %v", req.Op))
		}
	}
}
