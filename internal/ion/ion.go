// Package ion implements the I/O-node daemon: the GekkoFWD server role.
// A daemon accepts forwarded requests over the rpc transport, feeds data
// operations through an AGIOS scheduler queue, and dispatches them to the
// parallel file system with a fixed-width worker pool. Metadata operations
// bypass the scheduler (as in GekkoFS, where they go straight to the
// daemon's metadata backend).
package ion

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agios"
	"repro/internal/pfs"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// Backend is the storage interface a daemon dispatches to: the PFS
// contract plus writer attribution, so the shared-file contention model
// can tell I/O-node streams apart. *pfs.Store implements it; test doubles
// (e.g. fault injectors) may wrap one.
type Backend interface {
	pfs.FileSystem
	WriteAs(writer, path string, off int64, p []byte) (int, error)
}

// Stats counts the daemon's activity.
type Stats struct {
	Writes       int64
	Reads        int64
	MetaOps      int64
	BytesIn      int64
	BytesOut     int64
	Dispatches   int64 // PFS dispatches (aggregates count once)
	Aggregated   int64 // client requests that were merged into aggregates
	QueueRejects int64
	DedupReplays int64 // write retries answered from the dedup window
	Restarts     int64 // warm restarts since New
}

// Config parameterizes a daemon.
type Config struct {
	// ID names the daemon; it is used as the writer identity at the PFS
	// so the shared-file lock model sees per-I/O-node streams, and as the
	// `node` label on the daemon's metric series.
	ID string
	// Scheduler orders requests; nil selects FIFO.
	Scheduler agios.Scheduler
	// Dispatchers is the PFS worker-pool width; ≤0 selects 2 (matching
	// the performance model's DispatchWidth).
	Dispatchers int
	// QueueCap bounds the AGIOS queue: at QueueCap pending requests the
	// daemon sheds new data requests with a busy response (retry-after
	// hint attached) instead of enqueueing, until dispatch drains the
	// queue to QueueLowWater. ≤0 keeps the historical unbounded queue.
	QueueCap int
	// QueueLowWater is the resume-admission threshold for a bounded
	// queue; ≤0 selects QueueCap/2.
	QueueLowWater int
	// RetryAfterHint is attached to queue-full busy responses so clients
	// can pace their retries; ≤0 selects 2ms.
	RetryAfterHint time.Duration
	// MaxInflight caps requests concurrently inside the RPC handler
	// (shed with a busy response above it); ≤0 means unlimited.
	MaxInflight int
	// MaxConns caps concurrently served RPC connections (closed at accept
	// above it); ≤0 means unlimited.
	MaxConns int
	// WireChecksum makes the daemon's RPC server append a CRC32C trailer
	// to every response. Inbound frames are verified whenever they carry a
	// trailer regardless of this setting. Off by default.
	WireChecksum bool
	// DedupWindow bounds the per-client exactly-once window: the daemon
	// remembers the outcomes of the last DedupWindow stamped writes per
	// forwarding client and replays them on transport retries instead of
	// re-executing. ≤0 disables deduplication (stamped writes re-execute,
	// the pre-integrity behavior).
	DedupWindow int
	// EpochFencing makes the daemon enforce mapping-epoch fences on
	// writes: once SetFence(f) has been called (by an arbiter recovery
	// publish), any write stamped with an epoch below f is rejected with
	// a stale-epoch response before it can touch the dedup window or the
	// backend. Unstamped writes (epoch 0) are never fenced. Off by
	// default — the pre-epoch behavior.
	EpochFencing bool
	// Telemetry receives the daemon's metrics (per-node labeled series:
	// ion_writes_total{node="…"}, …). Nil selects a private registry so
	// Stats() always works; pass the stack-wide registry to aggregate
	// across daemons (as livestack does).
	Telemetry *telemetry.Registry
	// Tracer receives per-request hops ("ion" at the RPC boundary,
	// "agios" for queue wait, "pfs" for backend dispatch). Nil disables
	// hop recording.
	Tracer *telemetry.Tracer
}

// Daemon is one I/O node.
type Daemon struct {
	cfg     Config
	backend Backend
	label   string

	// mu guards the per-generation state a warm restart replaces (queue,
	// server, addr). Request handlers read queue without the lock: they
	// only run while their generation's server is alive, and Close drains
	// them before Restart swaps anything.
	mu     sync.Mutex
	queue  *agios.Queue
	server *rpc.Server
	addr   string

	// dedup survives warm restarts by design: the retries it must absorb
	// are exactly the ones a restart strands. Nil when DedupWindow ≤ 0.
	dedup *dedupTable

	// fence is the lowest still-valid mapping epoch (0 = nothing fenced).
	// Raised by SetFence on recovery publishes; read lock-free on the
	// write path. Survives warm restarts like the dedup window: the
	// stale clients it must fence are exactly the ones a control-plane
	// blackout strands.
	fence atomic.Uint64

	wg     sync.WaitGroup
	closed atomic.Bool

	// All counters live on reg; logically-coupled counters are updated in
	// one reg.Update group and read back under one reg.View, so a
	// concurrent Stats() can never observe a torn set (e.g. a write
	// counted but its bytes not yet).
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	tel    struct {
		writes, reads, meta, bytesIn, bytesOut *telemetry.Counter
		dispatches, aggregated, rejects        *telemetry.Counter
		dedupReplays, restarts                 *telemetry.Counter
		fenceRejects                           *telemetry.Counter
		dispatchLatency                        *telemetry.Histogram
		requestBytes                           *telemetry.Histogram
	}
}

// New creates a daemon over the given PFS backend.
func New(cfg Config, backend Backend) *Daemon {
	if cfg.Scheduler == nil {
		cfg.Scheduler = agios.NewFIFO()
	}
	if cfg.Dispatchers <= 0 {
		cfg.Dispatchers = 2
	}
	if cfg.RetryAfterHint <= 0 {
		cfg.RetryAfterHint = 2 * time.Millisecond
	}
	d := &Daemon{
		cfg:     cfg,
		backend: backend,
		tracer:  cfg.Tracer,
	}
	d.reg = cfg.Telemetry
	if d.reg == nil {
		d.reg = telemetry.New()
	}
	label := fmt.Sprintf("{node=%q}", cfg.ID)
	d.label = label
	d.tel.writes = d.reg.Counter("ion_writes_total" + label)
	d.tel.reads = d.reg.Counter("ion_reads_total" + label)
	d.tel.meta = d.reg.Counter("ion_meta_ops_total" + label)
	d.tel.bytesIn = d.reg.Counter("ion_bytes_in_total" + label)
	d.tel.bytesOut = d.reg.Counter("ion_bytes_out_total" + label)
	d.tel.dispatches = d.reg.Counter("ion_dispatches_total" + label)
	d.tel.aggregated = d.reg.Counter("ion_aggregated_total" + label)
	d.tel.rejects = d.reg.Counter("ion_queue_rejects_total" + label)
	d.tel.dedupReplays = d.reg.Counter("ion_dedup_replays_total" + label)
	d.tel.restarts = d.reg.Counter("ion_restarts_total" + label)
	d.tel.dispatchLatency = d.reg.Histogram("ion_dispatch_latency_seconds"+label, telemetry.LatencyBuckets())
	d.tel.requestBytes = d.reg.Histogram("ion_request_bytes"+label, telemetry.SizeBuckets())
	if cfg.EpochFencing {
		// Registered only under fencing so a stack without journaling
		// exposes no epoch_* series at all.
		d.tel.fenceRejects = d.reg.Counter("epoch_fence_rejections_total" + label)
	}
	if cfg.DedupWindow > 0 {
		d.dedup = newDedupTable(cfg.DedupWindow)
	}
	d.build()
	return d
}

// build constructs one generation of the daemon's serving state: a fresh
// scheduler queue and RPC server. New calls it once; Restart calls it
// again after Close drained the previous generation. The scheduler
// instance, telemetry registry (counters are get-or-create, so series
// stay monotonic across restarts), dedup table, and backend all carry
// over.
func (d *Daemon) build() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.queue = agios.NewQueue(d.cfg.Scheduler)
	if d.cfg.QueueCap > 0 {
		d.queue.SetCapacity(d.cfg.QueueCap, d.cfg.QueueLowWater)
	}
	d.queue.Instrument(d.reg, d.label)
	d.server = rpc.NewServer(d.handle).
		WithLimits(rpc.ServerLimits{
			MaxConns:    d.cfg.MaxConns,
			MaxInflight: d.cfg.MaxInflight,
			RetryAfter:  d.cfg.RetryAfterHint,
		}).
		WithChecksum(d.cfg.WireChecksum).
		Instrument(d.reg, d.label)
}

// Start binds the daemon to addr (empty for an ephemeral localhost port),
// launches the dispatcher pool, and returns the bound address.
func (d *Daemon) Start(addr string) (string, error) {
	d.mu.Lock()
	server := d.server
	d.mu.Unlock()
	bound, err := server.Listen(addr)
	if err != nil {
		return "", err
	}
	d.launch(bound)
	return bound, nil
}

// StartOn serves on an already-bound listener instead of dialing one up.
// This is the seam fault-injection wrappers (faultnet) and tests use to
// interpose on the daemon's network path.
func (d *Daemon) StartOn(ln net.Listener) (string, error) {
	d.mu.Lock()
	server := d.server
	d.mu.Unlock()
	bound, err := server.ListenOn(ln)
	if err != nil {
		return "", err
	}
	d.launch(bound)
	return bound, nil
}

func (d *Daemon) launch(bound string) {
	d.mu.Lock()
	d.addr = bound
	queue := d.queue
	d.mu.Unlock()
	for i := 0; i < d.cfg.Dispatchers; i++ {
		d.wg.Add(1)
		go d.dispatchLoop(queue)
	}
}

// Restart warm-starts a previously Closed daemon on the address it last
// served: same identity, same backend, same dedup window (so retries
// stranded by the crash still deduplicate), fresh scheduler queue and RPC
// server. It returns the bound address. Restarting a running daemon is an
// error; Close it first.
func (d *Daemon) Restart() (string, error) {
	d.mu.Lock()
	addr := d.addr
	d.mu.Unlock()
	if addr == "" {
		return "", errors.New("ion: restart before first Start")
	}
	// The previous listener's port can linger briefly after Close on some
	// platforms; retry the bind rather than failing the whole rejoin.
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return "", fmt.Errorf("ion: restart rebind %s: %w", addr, err)
	}
	return d.RestartOn(ln)
}

// RestartOn is Restart on a caller-provided listener — the seam livestack
// uses to re-apply its fault-injection wrapper on the restarted daemon's
// network path.
func (d *Daemon) RestartOn(ln net.Listener) (string, error) {
	if !d.closed.Load() {
		ln.Close()
		return "", errors.New("ion: restart of a running daemon")
	}
	d.build()
	d.closed.Store(false)
	bound, err := d.StartOn(ln)
	if err != nil {
		d.closed.Store(true)
		return "", err
	}
	d.tel.restarts.Inc()
	return bound, nil
}

// Addr returns the daemon's bound address (empty before Start).
func (d *Daemon) Addr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.addr
}

// ID returns the daemon's identity.
func (d *Daemon) ID() string { return d.cfg.ID }

// SchedulerName reports which AGIOS scheduler the daemon runs.
func (d *Daemon) SchedulerName() string { return d.q().SchedulerName() }

// QueueDepth reports the pending requests in the scheduler queue.
func (d *Daemon) QueueDepth() int { return d.q().Len() }

// QueueSaturated reports whether the bounded queue is currently shedding.
func (d *Daemon) QueueSaturated() bool { return d.q().Saturated() }

// q returns the current generation's queue for external observers, who
// may race a restart (request handlers use d.queue directly: they cannot
// outlive their generation's server).
func (d *Daemon) q() *agios.Queue {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queue
}

// Close stops the RPC server, drains the queue, and waits for dispatchers.
// A Closed daemon can come back with Restart.
func (d *Daemon) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	d.mu.Lock()
	server, queue := d.server, d.queue
	d.mu.Unlock()
	err := server.Close()
	queue.Close()
	d.wg.Wait()
	return err
}

// Stats returns a consistent snapshot of the daemon's counters: the read
// happens under the registry's view gate, so no concurrently running
// update group is half-visible (previously each field was loaded from an
// independent atomic, and a reader could see a request counted with its
// bytes still missing).
func (d *Daemon) Stats() Stats {
	var s Stats
	d.reg.View(func() {
		s = Stats{
			Writes:       d.tel.writes.Value(),
			Reads:        d.tel.reads.Value(),
			MetaOps:      d.tel.meta.Value(),
			BytesIn:      d.tel.bytesIn.Value(),
			BytesOut:     d.tel.bytesOut.Value(),
			Dispatches:   d.tel.dispatches.Value(),
			Aggregated:   d.tel.aggregated.Value(),
			QueueRejects: d.tel.rejects.Value(),
			DedupReplays: d.tel.dedupReplays.Value(),
			Restarts:     d.tel.restarts.Value(),
		}
	})
	return s
}

// Activity returns a coarse activity stamp for quiescence detection:
// the scheduler queue depth plus a cumulative op count that advances
// whenever the daemon admits or completes work. A node is quiet between
// two samples when depth is zero both times and ops did not move — the
// signal a graceful drain waits on before decommissioning.
func (d *Daemon) Activity() (depth int, ops int64) {
	depth = d.QueueDepth()
	d.reg.View(func() {
		ops = d.tel.writes.Value() + d.tel.reads.Value() + d.tel.meta.Value() +
			d.tel.dispatches.Value() + d.tel.dedupReplays.Value()
	})
	return depth, ops
}

// handle is the RPC entry point. It wraps the per-op handler with the
// daemon's trace hop: one "ion" hop per forwarded request covering the
// whole server-side residence (queue wait and PFS dispatch included).
func (d *Daemon) handle(m *rpc.Message) *rpc.Message {
	start := time.Now()
	resp := d.handleOp(m)
	if d.tracer != nil && m.Trace != 0 {
		bytes := int64(len(m.Data)) + int64(len(resp.Data))
		d.tracer.AddHop(m.Trace, "ion", start, bytes, d.cfg.ID)
	}
	return resp
}

// SetFence raises the daemon's epoch fence: every write stamped with an
// epoch strictly below minEpoch is rejected from now on. Monotonic — a
// lower value never lowers an established fence — and a no-op unless the
// daemon was built with EpochFencing. The arbiter's recovery path calls
// this on every daemon BEFORE publishing the post-recovery mapping, so
// no client can land a revoked-epoch write in the gap.
func (d *Daemon) SetFence(minEpoch uint64) {
	if !d.cfg.EpochFencing {
		return
	}
	for {
		cur := d.fence.Load()
		if minEpoch <= cur || d.fence.CompareAndSwap(cur, minEpoch) {
			return
		}
	}
}

// Fence reports the current fence floor (0 = nothing fenced).
func (d *Daemon) Fence() uint64 { return d.fence.Load() }

func (d *Daemon) handleOp(m *rpc.Message) *rpc.Message {
	// Responses echo the request's identity fields (path, trace, dedup
	// stamp) and nothing else: flags and payload are set per-outcome, so
	// no response path can leak stale request state onto the wire.
	resp := &rpc.Message{Op: m.Op, Path: m.Path, Trace: m.Trace, ClientID: m.ClientID, Seq: m.Seq}
	switch m.Op {
	case rpc.OpPing:
		// Pings double as load reports: Size carries the scheduler queue
		// depth and Offset the cumulative queue rejects, so the health
		// prober can observe saturation without a second op or RPC.
		resp.Data = []byte(d.cfg.ID)
		resp.Size = int64(d.queue.Len())
		resp.Offset = d.tel.rejects.Value()

	case rpc.OpWrite:
		// The fence gate runs before the dedup claim: a fenced write must
		// never enter the dedup window, or a later legitimate retry under
		// a fresh epoch would replay the rejection as if it were applied.
		if d.cfg.EpochFencing && m.Epoch != 0 {
			if f := d.fence.Load(); m.Epoch < f {
				d.tel.fenceRejects.Inc()
				resp.Err = rpc.StaleEpochErrText(m.Epoch, f)
				resp.Epoch = f
				return resp
			}
		}
		if d.dedup == nil || m.Seq == 0 {
			resp, _ = d.applyWrite(m, resp)
			return resp
		}
		for {
			cached, inflight, commit := d.dedup.claim(m.ClientID, m.Seq)
			switch {
			case cached != nil:
				// Already applied: repeat the outcome, do not re-execute.
				cached.Trace = m.Trace
				cached.Replayed = true
				d.tel.dedupReplays.Inc()
				return cached
			case inflight != nil:
				// Another attempt at this seq is mid-execution (a retry
				// racing its original). Wait for its commit and re-claim:
				// either its outcome becomes replayable or (busy/closed,
				// never applied) the seq is claimable again.
				<-inflight
			default:
				result, applied := d.applyWrite(m, resp)
				commit(result, applied)
				return result
			}
		}

	case rpc.OpRead:
		done := make(chan error, 1)
		req := &agios.Request{
			Path:     m.Path,
			Offset:   m.Offset,
			Size:     m.Size,
			Op:       agios.OpRead,
			Trace:    m.Trace,
			Priority: m.Priority,
			OnComplete: func(err error) {
				done <- err
			},
		}
		if m.Size > 0 {
			// Pre-attach a pooled frame buffer as the read destination: the
			// dispatcher fills it in place, and the response frame hands it
			// back to the rpc pool once written, so a read reply costs no
			// allocation and no extra copy.
			req.Data = rpc.GetBuffer(int(m.Size))[:0]
		}
		if err := d.queue.Push(req); err != nil {
			if cap(req.Data) > 0 {
				rpc.PutBuffer(req.Data)
			}
			return d.pushFailed(resp, err)
		}
		d.tel.reads.Inc()
		d.tel.requestBytes.Observe(float64(m.Size))
		err := <-done
		// The dispatcher stored the bytes read in req.Data (reusing the
		// pooled capacity attached above). The transport releases the
		// buffer after the response frame goes out.
		if cap(req.Data) > 0 {
			resp.SetPooledData(req.Data)
		} else {
			resp.Data = req.Data
		}
		resp.Size = int64(len(req.Data))
		d.tel.bytesOut.Add(int64(len(req.Data)))
		if err != nil {
			resp.Err = err.Error()
		}

	case rpc.OpCreate:
		d.tel.meta.Inc()
		if err := d.backend.Create(m.Path); err != nil {
			resp.Err = err.Error()
		}

	case rpc.OpStat:
		d.tel.meta.Inc()
		info, err := d.backend.Stat(m.Path)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Size = info.Size
		}

	case rpc.OpRemove:
		d.tel.meta.Inc()
		if err := d.backend.Remove(m.Path); err != nil {
			resp.Err = err.Error()
		}

	case rpc.OpFsync:
		d.tel.meta.Inc()
		if err := d.backend.Fsync(m.Path); err != nil {
			resp.Err = err.Error()
		}

	default:
		resp.Err = fmt.Sprintf("ion: unsupported op %s", m.Op)
	}
	return resp
}

// applyWrite pushes one write through the scheduler queue and waits for
// its dispatch. applied reports whether the operation reached execution:
// false for queue-admission failures (busy sheds and closed-queue
// rejects), which must stay replayable-by-execution in the dedup window;
// true once the dispatcher ran it, whatever the outcome.
func (d *Daemon) applyWrite(m *rpc.Message, resp *rpc.Message) (_ *rpc.Message, applied bool) {
	done := make(chan error, 1)
	req := &agios.Request{
		Path:     m.Path,
		Offset:   m.Offset,
		Size:     int64(len(m.Data)),
		Op:       agios.OpWrite,
		Data:     m.Data,
		Trace:    m.Trace,
		Priority: m.Priority,
		OnComplete: func(err error) {
			done <- err
		},
	}
	if err := d.queue.Push(req); err != nil {
		return d.pushFailed(resp, err), false
	}
	// Admission succeeded: only now does the request count as
	// ingested (a shed write was never taken on, so its bytes must
	// not appear in the daemon's intake).
	d.reg.Update(func() {
		d.tel.writes.Inc()
		d.tel.bytesIn.Add(int64(len(m.Data)))
	})
	d.tel.requestBytes.Observe(float64(len(m.Data)))
	if err := <-done; err != nil {
		resp.Err = err.Error()
		return resp, true
	}
	resp.Size = int64(len(m.Data))
	return resp, true
}

// pushFailed turns a queue-admission failure into the right wire response:
// a saturated queue sheds with a typed busy response (the client may retry
// after the hint), a closed queue answers with a terminal error. Both
// count as queue rejects.
func (d *Daemon) pushFailed(resp *rpc.Message, err error) *rpc.Message {
	d.tel.rejects.Inc()
	if errors.Is(err, agios.ErrQueueFull) {
		resp.Busy = true
		resp.RetryAfter = d.cfg.RetryAfterHint
		return resp
	}
	resp.Err = err.Error()
	return resp
}

// hopEach records one layer hop on a dispatched request — or on each of
// its children when it is an aggregate, since the children carry the
// client-visible trace IDs.
func (d *Daemon) hopEach(req *agios.Request, layer string, start time.Time, note string) {
	if d.tracer == nil {
		return
	}
	if len(req.Children) == 0 {
		d.tracer.AddHop(req.Trace, layer, start, req.Size, note)
		return
	}
	for _, c := range req.Children {
		d.tracer.AddHop(c.Trace, layer, start, c.Size, note)
	}
}

// dispatchLoop pops scheduled requests and executes them against the PFS.
// It holds its generation's queue by value: a warm restart swaps d.queue,
// but this loop must drain the queue it was launched for.
func (d *Daemon) dispatchLoop(queue *agios.Queue) {
	defer d.wg.Done()
	for {
		req, ok := queue.PopWait()
		if !ok {
			return
		}
		n := len(req.Children)
		d.reg.Update(func() {
			d.tel.dispatches.Inc()
			if n > 0 {
				d.tel.aggregated.Add(int64(n))
			}
		})
		note := queue.SchedulerName()
		if n > 0 {
			note = fmt.Sprintf("%s merged=%d", note, n)
		}
		d.hopEach(req, "agios", req.Arrival, note)
		start := time.Now()
		switch req.Op {
		case agios.OpWrite:
			_, err := d.backend.WriteAs(d.cfg.ID, req.Path, req.Offset, req.Data)
			d.tel.dispatchLatency.ObserveDuration(time.Since(start))
			d.hopEach(req, "pfs", start, "write")
			req.Complete(err)
		case agios.OpRead:
			// Reuse the capacity the request arrived with (the RPC handler
			// pre-attaches a pooled destination buffer); allocate only for
			// requests that came in bare (tests, direct queue users).
			buf := req.Data
			if int64(cap(buf)) < req.Size {
				buf = make([]byte, req.Size)
			}
			buf = buf[:req.Size]
			n, err := d.backend.Read(req.Path, req.Offset, buf)
			req.Data = buf[:n]
			d.tel.dispatchLatency.ObserveDuration(time.Since(start))
			d.hopEach(req, "pfs", start, "read")
			req.Complete(err)
		default:
			req.Complete(fmt.Errorf("ion: unknown scheduled op %v", req.Op))
		}
	}
}
