package ion

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/agios"
	"repro/internal/pfs"
	"repro/internal/rpc"
)

func startDaemon(t *testing.T, cfg Config, store *pfs.Store) (*Daemon, *rpc.Client) {
	t.Helper()
	d := New(cfg, store)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	cli := rpc.Dial(addr, 2)
	t.Cleanup(func() { cli.Close() })
	return d, cli
}

func TestPing(t *testing.T) {
	_, cli := startDaemon(t, Config{ID: "ion0"}, pfs.NewStore(pfs.Config{}))
	resp, err := cli.Call(&rpc.Message{Op: rpc.OpPing})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Data) != "ion0" {
		t.Fatalf("ping: %q", resp.Data)
	}
}

func TestWriteReadThroughDaemon(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	d, cli := startDaemon(t, Config{ID: "ion0"}, store)

	payload := []byte("forwarded payload")
	resp, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/f", Offset: 0, Data: payload})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Size != int64(len(payload)) {
		t.Fatalf("write size = %d", resp.Size)
	}
	// Data visible at the backend.
	buf := make([]byte, len(payload))
	if _, err := store.Read("/f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("backend content %q", buf)
	}
	// Read back through the daemon.
	resp, err = cli.Call(&rpc.Message{Op: rpc.OpRead, Path: "/f", Offset: 0, Size: int64(len(payload))})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, payload) {
		t.Fatalf("read back %q", resp.Data)
	}
	st := d.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.BytesIn != int64(len(payload)) || st.BytesOut != int64(len(payload)) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestShortReadPropagates(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	_, cli := startDaemon(t, Config{ID: "ion0"}, store)
	store.Write("/f", 0, []byte("abc"))
	resp, err := cli.Call(&rpc.Message{Op: rpc.OpRead, Path: "/f", Offset: 0, Size: 10})
	if err == nil || !strings.Contains(err.Error(), "read past end") {
		t.Fatalf("want short-read error, got %v", err)
	}
	if string(resp.Data) != "abc" {
		t.Fatalf("partial data should still arrive, got %q", resp.Data)
	}
}

func TestMetadataOps(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	_, cli := startDaemon(t, Config{ID: "ion0"}, store)
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpCreate, Path: "/meta"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/meta", Offset: 0, Data: []byte("xy")}); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Call(&rpc.Message{Op: rpc.OpStat, Path: "/meta"})
	if err != nil || resp.Size != 2 {
		t.Fatalf("stat: %+v %v", resp, err)
	}
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpFsync, Path: "/meta"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpRemove, Path: "/meta"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpStat, Path: "/meta"}); err == nil {
		t.Fatal("stat after remove should fail")
	}
}

func TestUnsupportedOp(t *testing.T) {
	_, cli := startDaemon(t, Config{ID: "ion0"}, pfs.NewStore(pfs.Config{}))
	if _, err := cli.Call(&rpc.Message{Op: rpc.Op(99)}); err == nil {
		t.Fatal("unsupported op should error")
	}
}

func TestAIOLIAggregationAtDaemon(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	sched := agios.NewAIOLI(1 << 20)
	d := New(Config{ID: "agg", Scheduler: sched, Dispatchers: 1}, store)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Many concurrent contiguous writes: the daemon should merge at least
	// some of them before dispatching to the PFS.
	const n = 32
	const sz = 1024
	var wg sync.WaitGroup
	cli := rpc.Dial(addr, 8)
	defer cli.Close()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(i)}, sz)
			if _, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/big", Offset: int64(i) * sz, Data: payload}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	// Correctness: every byte landed where it should.
	buf := make([]byte, n*sz)
	if _, err := store.Read("/big", 0, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if buf[i*sz] != byte(i) || buf[i*sz+sz-1] != byte(i) {
			t.Fatalf("chunk %d corrupted", i)
		}
	}
	st := d.Stats()
	if st.Writes != n {
		t.Fatalf("writes = %d", st.Writes)
	}
	if st.Dispatches > st.Writes {
		t.Fatalf("dispatches (%d) exceed writes (%d)", st.Dispatches, st.Writes)
	}
	t.Logf("aggregation: %d client writes → %d dispatches (%d merged)", st.Writes, st.Dispatches, st.Aggregated)
}

func TestConcurrentMixedLoad(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	d := New(Config{ID: "mix", Scheduler: agios.NewSJF(), Dispatchers: 4}, store)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli := rpc.Dial(addr, 2)
			defer cli.Close()
			path := fmt.Sprintf("/w%d", w)
			for i := 0; i < 40; i++ {
				payload := bytes.Repeat([]byte{byte(w)}, 64)
				if _, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: path, Offset: int64(i) * 64, Data: payload}); err != nil {
					t.Error(err)
					return
				}
			}
			resp, err := cli.Call(&rpc.Message{Op: rpc.OpRead, Path: path, Offset: 0, Size: 40 * 64})
			if err != nil {
				t.Error(err)
				return
			}
			for _, b := range resp.Data {
				if b != byte(w) {
					t.Errorf("worker %d read corruption", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCloseIdempotentAndRejectsAfter(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	d := New(Config{ID: "x"}, store)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	cli := rpc.Dial(addr, 1)
	defer cli.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpPing}); err == nil {
		t.Fatal("call after daemon close should fail")
	}
}

func TestDefaults(t *testing.T) {
	d := New(Config{ID: "d"}, pfs.NewStore(pfs.Config{}))
	if d.SchedulerName() != "FIFO" {
		t.Fatalf("default scheduler = %s", d.SchedulerName())
	}
	if d.cfg.Dispatchers != 2 {
		t.Fatalf("default dispatchers = %d", d.cfg.Dispatchers)
	}
	if d.ID() != "d" || d.Addr() != "" {
		t.Fatal("identity accessors wrong")
	}
}
