package ion

// Bounded-admission tests for the daemon: queue-cap shedding with the
// retry-after hint on the wire, the ping load report the health prober
// reads, and the Close-vs-inflight-request shutdown race.

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/rpc"
)

// blockingBackend parks every WriteAs until released, so tests can hold
// the dispatcher busy and fill the queue deterministically.
type blockingBackend struct {
	*pfs.Store
	entered chan struct{}
	release chan struct{}
}

func (b *blockingBackend) WriteAs(writer, path string, off int64, p []byte) (int, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.Store.WriteAs(writer, path, off, p)
}

func TestQueueCapShedsWithRetryAfter(t *testing.T) {
	backend := &blockingBackend{
		Store:   pfs.NewStore(pfs.Config{}),
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	d := New(Config{
		ID:             "ion0",
		Dispatchers:    1,
		QueueCap:       2,
		QueueLowWater:  1,
		RetryAfterHint: 5 * time.Millisecond,
	}, backend)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cli := rpc.Dial(addr, 8)
	defer cli.Close()

	// One write occupies the single dispatcher; two more fill the queue.
	var wg sync.WaitGroup
	write := func(off int64) {
		defer wg.Done()
		if _, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/q", Offset: off, Data: []byte("abcd")}); err != nil {
			t.Errorf("admitted write at %d failed: %v", off, err)
		}
	}
	wg.Add(1)
	go write(0)
	<-backend.entered // dispatcher holds write #0
	wg.Add(2)
	go write(4)
	go write(8)
	deadline := time.Now().Add(2 * time.Second)
	for d.QueueDepth() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d", d.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is at capacity: the next write must shed.
	_, err = cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/q", Offset: 12, Data: []byte("abcd")})
	if !errors.Is(err, rpc.ErrBusy) {
		t.Fatalf("write above queue cap: want ErrBusy, got %v", err)
	}
	if hint, ok := rpc.RetryAfterHint(err); !ok || hint != 5*time.Millisecond {
		t.Fatalf("retry-after hint = %v (ok=%v), want 5ms", hint, ok)
	}
	if !d.QueueSaturated() {
		t.Fatal("daemon should report a saturated queue")
	}

	// Pings double as load reports — and keep answering under saturation.
	resp, err := cli.Call(&rpc.Message{Op: rpc.OpPing})
	if err != nil {
		t.Fatalf("ping under saturation: %v", err)
	}
	if resp.Size != 2 {
		t.Fatalf("ping queue-depth report = %d, want 2", resp.Size)
	}
	if resp.Offset != 1 {
		t.Fatalf("ping reject report = %d, want 1", resp.Offset)
	}

	// A shed write was never ingested: only the three admitted writes may
	// appear in the counters once everything drains.
	close(backend.release)
	wg.Wait()
	s := d.Stats()
	if s.Writes != 3 || s.BytesIn != 12 {
		t.Fatalf("writes=%d bytesIn=%d, want 3 admitted writes / 12 bytes", s.Writes, s.BytesIn)
	}
	if s.QueueRejects != 1 {
		t.Fatalf("QueueRejects = %d, want 1", s.QueueRejects)
	}

	// Drained past the low watermark: admission has resumed.
	deadline = time.Now().Add(2 * time.Second)
	for d.QueueSaturated() {
		if time.Now().After(deadline) {
			t.Fatal("queue never desaturated after drain")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/q", Offset: 12, Data: []byte("abcd")}); err != nil {
		t.Fatalf("post-drain write should be admitted: %v", err)
	}
}

// TestCloseDuringInflightWrites is the shutdown-race regression at the
// daemon level: Close lands while writes are in flight. Every call must
// resolve — admitted writes complete (Close drains the queue), late ones
// fail with the typed closed error or a transport error — and nothing
// panics or wedges.
func TestCloseDuringInflightWrites(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	d := New(Config{ID: "ion0", Dispatchers: 2}, store)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	cli := rpc.Dial(addr, 8)
	defer cli.Close()

	const writers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				resp, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/race", Offset: int64((w*50 + i) * 4), Data: []byte("abcd")})
				switch {
				case err != nil:
					return // transport cut by Close: fine
				case resp.Err == "":
					continue // admitted and completed
				case strings.Contains(resp.Err, "queue closed"):
					return // typed closed error: the other legal outcome
				default:
					t.Errorf("writer %d: unexpected app error %q", w, resp.Err)
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let the storm begin
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
