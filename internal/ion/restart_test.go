package ion

import (
	"bytes"
	"testing"

	"repro/internal/pfs"
	"repro/internal/rpc"
)

// TestRestartSameAddress: a Closed daemon comes back on the address it
// last served, with the same identity and monotonic counters.
func TestRestartSameAddress(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	d := New(Config{ID: "ion0"}, store)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	cli := rpc.Dial(addr, 2)
	defer cli.Close()
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/r", Data: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	bound, err := d.Restart()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if bound != addr {
		t.Fatalf("restart moved the daemon: %s -> %s", addr, bound)
	}
	// The old client pool redials transparently (stale-conn retry).
	resp, err := cli.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/r", Offset: 3, Data: []byte("two")})
	if err != nil {
		t.Fatalf("write after restart: %v", err)
	}
	if resp.Size != 3 {
		t.Fatalf("write size = %d", resp.Size)
	}
	buf := make([]byte, 6)
	if _, err := store.Read("/r", 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("onetwo")) {
		t.Fatalf("content %q", buf)
	}
	s := d.Stats()
	if s.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", s.Restarts)
	}
	if s.Writes != 2 {
		t.Fatalf("Writes = %d, want 2 (counters must be monotonic across restart)", s.Writes)
	}
}

// TestRestartPreservesDedupWindow: the retries a crash strands are exactly
// the ones the dedup window must absorb — a stamped write applied before
// the crash replays (not re-executes) when retried against the restarted
// daemon.
func TestRestartPreservesDedupWindow(t *testing.T) {
	backend := &countingBackend{Store: pfs.NewStore(pfs.Config{})}
	d := New(Config{ID: "ion0", DedupWindow: 16}, backend)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	msg := &rpc.Message{Op: rpc.OpWrite, Path: "/d", Data: []byte("payload"), ClientID: "fwd-R", Seq: 11}
	cli := rpc.Dial(addr, 1)
	defer cli.Close()
	if _, err := cli.Call(msg); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // crash: the response may never have reached the app
		t.Fatal(err)
	}
	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	resp, err := cli.Call(msg) // the stranded retry
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Replayed {
		t.Fatal("post-restart retry should replay from the surviving dedup window")
	}
	if got := backend.applies.Load(); got != 1 {
		t.Fatalf("backend applied %d times, want 1", got)
	}
}

// TestRestartGuards: restarting a running daemon is refused; restarting
// before the first Start is refused.
func TestRestartGuards(t *testing.T) {
	d := New(Config{ID: "ion0"}, pfs.NewStore(pfs.Config{}))
	if _, err := d.Restart(); err == nil {
		t.Fatal("restart before Start should fail")
	}
	if _, err := d.Start(""); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Restart(); err == nil {
		t.Fatal("restart of a running daemon should fail")
	}
}

// TestRestartCycleRepeats: several close/restart cycles in a row keep
// working — the torture harness leans on this.
func TestRestartCycleRepeats(t *testing.T) {
	store := pfs.NewStore(pfs.Config{})
	d := New(Config{ID: "ion0"}, store)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d.Close(); err != nil {
			t.Fatalf("cycle %d close: %v", i, err)
		}
		bound, err := d.Restart()
		if err != nil {
			t.Fatalf("cycle %d restart: %v", i, err)
		}
		if bound != addr {
			t.Fatalf("cycle %d: address drifted %s -> %s", i, addr, bound)
		}
		cli := rpc.Dial(addr, 1)
		if _, err := cli.Call(&rpc.Message{Op: rpc.OpPing}); err != nil {
			t.Fatalf("cycle %d ping: %v", i, err)
		}
		cli.Close()
	}
	d.Close()
	if got := d.Stats().Restarts; got != 3 {
		t.Fatalf("Restarts = %d, want 3", got)
	}
}
