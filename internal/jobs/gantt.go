package jobs

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders the simulation's allocation timelines as a fixed-width
// ASCII chart: one row per job in start order, one character per time
// cell, the character being the I/O-node count held during that cell
// ('0'–'9', '+' for ≥10, '.' for not running). It makes the §5.3 dynamics
// — MCKP shrinking HACC from 8 to 4 as IOR-MPI arrives, STATIC's frozen
// rows — visible at a glance.
func (r *SimResult) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	if r.Makespan <= 0 || len(r.PerJob) == 0 {
		return ""
	}
	jobs := make([]*JobOutcome, 0, len(r.PerJob))
	for _, o := range r.PerJob {
		jobs = append(jobs, o)
	}
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].Start != jobs[j].Start {
			return jobs[i].Start < jobs[j].Start
		}
		return jobs[i].ID < jobs[j].ID
	})
	cell := r.Makespan / float64(width)

	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %s  (1 cell ≈ %.1fs)\n", "job", strings.Repeat("-", width), cell)
	for _, o := range jobs {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, span := range o.Timeline {
			lo := int(span.Start / cell)
			hi := int(span.End / cell)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i < width; i++ {
				row[i] = ionChar(span.IONs)
			}
		}
		fmt.Fprintf(&b, "%-12s %s\n", o.ID, row)
	}
	return b.String()
}

func ionChar(n int) byte {
	switch {
	case n < 0:
		return '?'
	case n <= 9:
		return byte('0' + n)
	default:
		return '+'
	}
}
