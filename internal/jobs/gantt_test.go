package jobs

import (
	"strings"
	"testing"

	"repro/internal/policy"
)

func TestGanttRendersAllJobs(t *testing.T) {
	res := runPaperQueue(t, 0)
	g := res.Gantt(60)
	for id := range res.PerJob {
		if !strings.Contains(g, id) {
			t.Fatalf("gantt missing job %s:\n%s", id, g)
		}
	}
	// HACC#1 starts with 8 IONs: its row must contain an '8'.
	for _, line := range strings.Split(g, "\n") {
		if strings.HasPrefix(line, "HACC#1") && !strings.Contains(line, "8") {
			t.Fatalf("HACC#1 row should show its 8-ION phase:\n%s", g)
		}
	}
}

func TestGanttDegenerate(t *testing.T) {
	empty := &SimResult{PerJob: map[string]*JobOutcome{}}
	if g := empty.Gantt(40); g != "" {
		t.Fatalf("empty result should render empty, got %q", g)
	}
}

func TestGanttMinWidth(t *testing.T) {
	queue, err := PaperQueue()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateQueue(SimConfig{
		Jobs: queue[:2], ComputeNodes: 96, IONs: 12,
		Policy: policy.MCKP{}, AllowDirect: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Gantt(1) // clamped to a sane minimum
	if len(g) == 0 {
		t.Fatal("gantt empty")
	}
}

func TestIonChar(t *testing.T) {
	if ionChar(0) != '0' || ionChar(8) != '8' || ionChar(12) != '+' || ionChar(-1) != '?' {
		t.Fatal("ionChar mapping wrong")
	}
}
