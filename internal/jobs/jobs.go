// Package jobs models the batch system of the paper's §5.3 dynamic
// experiment: a strict-FIFO queue of jobs over a fixed pool of compute
// nodes, with the I/O-node arbitration policy re-invoked every time the set
// of running jobs changes.
//
// The event-driven simulator advances jobs through their I/O volume at the
// bandwidth their curve reports for the currently allocated number of I/O
// nodes, so a reallocation mid-run changes a job's progress rate exactly as
// GekkoFWD's dynamic remapping does on the testbed. STATIC's production
// semantics — never reallocating a running application — are modeled by the
// Sticky option.
package jobs

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/units"
)

// QueuedJob is one entry of the FIFO queue.
type QueuedJob struct {
	// ID uniquely identifies the job (several jobs may run the same
	// application kernel).
	ID string
	// Spec is the application: geometry, volumes, bandwidth curve.
	Spec perfmodel.AppSpec
	// Arrival is the submission time in seconds; a job cannot start
	// earlier even if resources are free.
	Arrival float64
}

// SimConfig parameterizes a queue simulation.
type SimConfig struct {
	// Jobs in FIFO order.
	Jobs []QueuedJob
	// ComputeNodes is the size of the compute partition (paper: 96).
	ComputeNodes int
	// IONs is the size of the forwarding pool (paper: 12).
	IONs int
	// Policy arbitrates I/O nodes among running jobs.
	Policy policy.Policy
	// Sticky freezes a job's allocation once it starts (the STATIC and
	// ONE production behaviour); the policy then only decides for newly
	// started jobs within the remaining pool.
	Sticky bool
	// AllowDirect permits zero-I/O-node allocations. The paper's §5.3
	// live experiment disallows direct PFS access to mimic platforms
	// with that restriction.
	AllowDirect bool
	// Recruit enables the future-work extension of arbitrating idle
	// compute nodes as temporary I/O nodes.
	Recruit RecruitIdleOptions
	// RemapDelay is the seconds until a running job observes a changed
	// allocation — GekkoFWD clients poll the mapping every 10 s, so a
	// reallocation takes effect only at the next poll. Zero means
	// instantaneous. A job's first allocation is always immediate (the
	// client reads the mapping before issuing I/O).
	RemapDelay float64
}

// AllocSpan records one stretch of a job's allocation timeline.
type AllocSpan struct {
	Start, End float64 // seconds since simulation start
	IONs       int
}

// JobOutcome summarizes one job's execution.
type JobOutcome struct {
	ID        string
	Label     string
	Start     float64 // seconds
	End       float64 // seconds
	Bytes     int64
	Bandwidth units.Bandwidth // Bytes / (End-Start)
	Timeline  []AllocSpan
}

// SimResult is the outcome of a queue simulation.
type SimResult struct {
	PerJob map[string]*JobOutcome
	// Aggregate is Equation 2 over all jobs: Σ (Wa+Ra)/runtime_a.
	Aggregate units.Bandwidth
	// Makespan is the completion time of the last job (seconds).
	Makespan float64
	// Reallocations counts allocation changes applied to running jobs.
	Reallocations int
	// IONUtilization is the fraction of ION-time actually held by jobs:
	// Σ(alloc·duration) / (IONs·makespan). The paper's first contribution
	// claims dynamic arbitration uses the available I/O nodes
	// efficiently; this metric quantifies it. Zero when IONs == 0.
	IONUtilization float64
}

type runningJob struct {
	job       QueuedJob
	app       policy.Application
	start     float64
	remaining float64 // bytes
	alloc     int
	rate      float64 // bytes/s at current alloc
	timeline  []AllocSpan
	// pendingAlloc/pendingAt model the mapping-poll latency: the new
	// allocation takes effect at pendingAt. pendingAlloc < 0 means no
	// pending change.
	pendingAlloc int
	pendingAt    float64
}

// SimulateQueue runs the event-driven simulation.
func SimulateQueue(cfg SimConfig) (*SimResult, error) {
	if len(cfg.Jobs) == 0 {
		return nil, errors.New("jobs: empty queue")
	}
	if cfg.ComputeNodes <= 0 || cfg.IONs < 0 || cfg.Policy == nil {
		return nil, fmt.Errorf("jobs: invalid config (%d compute nodes, %d IONs, policy %v)",
			cfg.ComputeNodes, cfg.IONs, cfg.Policy)
	}
	seen := map[string]bool{}
	for _, j := range cfg.Jobs {
		if seen[j.ID] {
			return nil, fmt.Errorf("jobs: duplicate job ID %q", j.ID)
		}
		seen[j.ID] = true
		if j.Spec.Nodes > cfg.ComputeNodes {
			return nil, fmt.Errorf("jobs: %s needs %d nodes, cluster has %d", j.ID, j.Spec.Nodes, cfg.ComputeNodes)
		}
	}

	s := &sim{cfg: cfg, result: &SimResult{PerJob: map[string]*JobOutcome{}}}
	return s.run()
}

type sim struct {
	cfg     cfgAlias
	t       float64
	queue   []QueuedJob
	running []*runningJob
	free    int
	result  *SimResult
	// sharedUsers holds the jobs currently parked on the system-wide
	// shared I/O node (policies implementing sharedAllocator, §3.1).
	sharedUsers map[string]bool
}

// sharedAllocator is implemented by policy.WithShared: allocations may park
// some applications on one system-wide shared I/O node.
type sharedAllocator interface {
	AllocateShared(apps []policy.Application, available int) (policy.Allocation, []string, error)
}

type cfgAlias = SimConfig

func (s *sim) run() (*SimResult, error) {
	s.queue = append([]QueuedJob(nil), s.cfg.Jobs...)
	s.free = s.cfg.ComputeNodes

	for len(s.queue) > 0 || len(s.running) > 0 {
		started := s.admit()
		if started {
			if err := s.arbitrate(); err != nil {
				return nil, err
			}
		}
		if len(s.running) == 0 {
			if len(s.queue) > 0 && s.queue[0].Arrival > s.t {
				s.t = s.queue[0].Arrival // idle until the next submission
				continue
			}
			// FIFO head does not fit and nothing is running: the head
			// job is wider than the machine (validated earlier), so
			// this cannot happen; guard anyway.
			return nil, errors.New("jobs: deadlock — queue head cannot start")
		}
		// Advance to the earliest completion, the next submission, or
		// the next pending remap taking effect, whichever comes first.
		dt := math.Inf(1)
		for _, r := range s.running {
			if r.rate <= 0 {
				return nil, fmt.Errorf("jobs: %s has zero bandwidth at %d IONs", r.job.ID, r.alloc)
			}
			if d := r.remaining / r.rate; d < dt {
				dt = d
			}
			if r.pendingAlloc >= 0 {
				if d := r.pendingAt - s.t; d > 0 && d < dt {
					dt = d
				}
			}
		}
		if len(s.queue) > 0 && s.queue[0].Arrival > s.t {
			if d := s.queue[0].Arrival - s.t; d < dt {
				dt = d
			}
		}
		s.t += dt
		var still []*runningJob
		finishedAny := false
		for _, r := range s.running {
			r.remaining -= r.rate * dt
			if r.remaining <= 1e-6*r.rate {
				s.finish(r)
				finishedAny = true
			} else {
				still = append(still, r)
			}
		}
		s.running = still
		// Apply remaps whose poll time has arrived.
		for _, r := range s.running {
			if r.pendingAlloc >= 0 && r.pendingAt <= s.t+1e-9 {
				if err := s.applyAlloc(r, r.pendingAlloc); err != nil {
					return nil, err
				}
				r.pendingAlloc = -1
			}
		}
		if finishedAny && len(s.running) > 0 {
			// The policy is also invoked when jobs finish (paper §5.3),
			// even when no queued job can start yet.
			s.admit()
			if err := s.arbitrate(); err != nil {
				return nil, err
			}
		}
	}

	// Equation 2 aggregate.
	var agg float64
	for _, o := range s.result.PerJob {
		if runtime := o.End - o.Start; runtime > 0 {
			agg += float64(o.Bytes) / runtime
		}
	}
	s.result.Aggregate = units.Bandwidth(agg)
	// ION-time integral over every allocation span.
	if s.cfg.IONs > 0 && s.result.Makespan > 0 {
		var ionSeconds float64
		for _, o := range s.result.PerJob {
			for _, span := range o.Timeline {
				ionSeconds += float64(span.IONs) * (span.End - span.Start)
			}
		}
		s.result.IONUtilization = ionSeconds / (float64(s.cfg.IONs) * s.result.Makespan)
	}
	return s.result, nil
}

// admit starts FIFO-head jobs while compute nodes are available. Strict
// FIFO: a blocked head blocks everyone behind it.
func (s *sim) admit() bool {
	started := false
	for len(s.queue) > 0 && s.queue[0].Arrival <= s.t+1e-9 && s.queue[0].Spec.Nodes <= s.free {
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.free -= j.Spec.Nodes
		curve := j.Spec.Curve
		if !s.cfg.AllowDirect {
			curve = dropDirect(curve)
		}
		r := &runningJob{
			job:          j,
			start:        s.t,
			remaining:    float64(j.Spec.TotalBytes()),
			alloc:        -1, // not yet arbitrated
			pendingAlloc: -1,
			app: policy.Application{
				ID:         j.ID,
				Nodes:      j.Spec.Nodes,
				Processes:  j.Spec.Processes,
				Curve:      curve,
				WriteBytes: j.Spec.WriteBytes,
				ReadBytes:  j.Spec.ReadBytes,
			},
		}
		s.running = append(s.running, r)
		started = true
	}
	return started
}

func dropDirect(c perfmodel.Curve) perfmodel.Curve {
	var pts []perfmodel.Point
	for _, p := range c.Points() {
		if p.IONs > 0 {
			pts = append(pts, p)
		}
	}
	return perfmodel.NewCurve(pts...)
}

// arbitrate re-runs the policy over the running jobs and applies the new
// allocation, honoring stickiness.
func (s *sim) arbitrate() error {
	if len(s.running) == 0 {
		return nil
	}
	sort.Slice(s.running, func(i, j int) bool { return s.running[i].start < s.running[j].start })

	var alloc policy.Allocation
	if s.cfg.Sticky {
		// Only decide for jobs that never got an allocation, using the
		// pool left by the frozen ones.
		used := 0
		var fresh []policy.Application
		for _, r := range s.running {
			if r.alloc >= 0 {
				used += r.alloc
			} else {
				fresh = append(fresh, r.app)
			}
		}
		if len(fresh) == 0 {
			return nil
		}
		remaining := s.effectivePool() - used
		if remaining < 0 {
			remaining = 0
		}
		freshAlloc, err := s.cfg.Policy.Allocate(fresh, remaining)
		if err != nil {
			return fmt.Errorf("jobs: policy %s: %w", s.cfg.Policy.Name(), err)
		}
		alloc = policy.Allocation{}
		for _, r := range s.running {
			if r.alloc >= 0 {
				alloc[r.job.ID] = r.alloc
			}
		}
		for id, n := range freshAlloc {
			alloc[id] = n
		}
	} else {
		apps := make([]policy.Application, 0, len(s.running))
		for _, r := range s.running {
			apps = append(apps, r.app)
		}
		var err error
		var sharedUsers []string
		if sp, ok := s.cfg.Policy.(sharedAllocator); ok {
			alloc, sharedUsers, err = sp.AllocateShared(apps, s.effectivePool())
		} else {
			alloc, err = s.cfg.Policy.Allocate(apps, s.effectivePool())
		}
		if err != nil {
			return fmt.Errorf("jobs: policy %s: %w", s.cfg.Policy.Name(), err)
		}
		s.sharedUsers = map[string]bool{}
		for _, id := range sharedUsers {
			s.sharedUsers[id] = true
		}
	}

	for _, r := range s.running {
		n, ok := alloc[r.job.ID]
		if !ok {
			return fmt.Errorf("jobs: policy %s left %s unallocated", s.cfg.Policy.Name(), r.job.ID)
		}
		if r.alloc >= 0 && s.cfg.RemapDelay > 0 {
			// The running client only notices at its next mapping poll.
			if n != r.alloc {
				r.pendingAlloc = n
				r.pendingAt = s.t + s.cfg.RemapDelay
			} else {
				r.pendingAlloc = -1 // decision reverted before the poll
			}
			continue
		}
		if err := s.applyAlloc(r, n); err != nil {
			return err
		}
	}
	return nil
}

// applyAlloc makes an allocation effective for a running job. A job parked
// on the shared I/O node (allocation 0 without a direct-access option)
// progresses at the paper's naive estimate: bandwidth(1) divided by the
// number of running jobs.
func (s *sim) applyAlloc(r *runningJob, n int) error {
	bw, ok := r.app.Curve.At(n)
	if !ok && n == 0 && s.sharedUsers[r.job.ID] {
		bw1, ok1 := r.app.Curve.At(1)
		if !ok1 {
			return fmt.Errorf("jobs: shared user %s has no 1-ION point", r.job.ID)
		}
		bw = bw1 / units.Bandwidth(float64(len(s.running)))
		ok = true
	}
	if !ok {
		return fmt.Errorf("jobs: %s has no curve point at %d IONs", r.job.ID, n)
	}
	if r.alloc >= 0 && r.alloc != n {
		s.result.Reallocations++
	}
	if r.alloc != n {
		if k := len(r.timeline); k > 0 {
			r.timeline[k-1].End = s.t
		}
		r.timeline = append(r.timeline, AllocSpan{Start: s.t, IONs: n})
	}
	r.alloc = n
	r.rate = float64(bw)
	return nil
}

func (s *sim) finish(r *runningJob) {
	s.free += r.job.Spec.Nodes
	if k := len(r.timeline); k > 0 {
		r.timeline[k-1].End = s.t
	}
	bytes := r.job.Spec.TotalBytes()
	runtime := s.t - r.start
	var bw units.Bandwidth
	if runtime > 0 {
		bw = units.Bandwidth(float64(bytes) / runtime)
	}
	s.result.PerJob[r.job.ID] = &JobOutcome{
		ID:        r.job.ID,
		Label:     r.job.Spec.Label,
		Start:     r.start,
		End:       s.t,
		Bytes:     bytes,
		Bandwidth: bw,
		Timeline:  r.timeline,
	}
	if s.t > s.result.Makespan {
		s.result.Makespan = s.t
	}
}

// PaperQueue returns the §5.3 queue: at least one job of each application,
// in the paper's order — HACC, IOR-MPI, SIM, IOR-MPI, IOR-MPI, POSIX-S,
// POSIX-L, BT-C, MAD, MAD, S3D, HACC, HACC, BT-D. Submissions are staggered
// a few seconds apart, as in the generated queues of the paper's live run
// (the first HACC job runs alone briefly, receives 8 I/O nodes, and is
// reduced to 4 as IOR-MPI and SIM start — §5.3).
func PaperQueue() ([]QueuedJob, error) {
	order := []string{"HACC", "IOR-MPI", "SIM", "IOR-MPI", "IOR-MPI",
		"POSIX-S", "POSIX-L", "BT-C", "MAD", "MAD", "S3D", "HACC", "HACC", "BT-D"}
	const submitGap = 5.0 // seconds between submissions
	var out []QueuedJob
	count := map[string]int{}
	for i, label := range order {
		spec, err := perfmodel.AppByLabel(label)
		if err != nil {
			return nil, err
		}
		count[label]++
		out = append(out, QueuedJob{
			ID:      fmt.Sprintf("%s#%d", label, count[label]),
			Spec:    spec,
			Arrival: float64(i) * submitGap,
		})
	}
	return out, nil
}
