package jobs

import (
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/units"
)

func mustSpec(t *testing.T, label string) perfmodel.AppSpec {
	t.Helper()
	s, err := perfmodel.AppByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func paperConfig(t *testing.T, p policy.Policy, sticky bool) SimConfig {
	t.Helper()
	queue, err := PaperQueue()
	if err != nil {
		t.Fatal(err)
	}
	return SimConfig{
		Jobs:         queue,
		ComputeNodes: 96,
		IONs:         12,
		Policy:       p,
		Sticky:       sticky,
		AllowDirect:  false, // the paper's §5.3 restriction
	}
}

func TestPaperQueueComposition(t *testing.T) {
	q, err := PaperQueue()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 14 {
		t.Fatalf("queue has %d jobs, want 14", len(q))
	}
	if q[0].ID != "HACC#1" || q[13].ID != "BT-D#1" {
		t.Fatalf("queue order wrong: %s ... %s", q[0].ID, q[13].ID)
	}
	labels := map[string]int{}
	for _, j := range q {
		labels[j.Spec.Label]++
	}
	want := map[string]int{"HACC": 3, "IOR-MPI": 3, "SIM": 1, "POSIX-S": 1,
		"POSIX-L": 1, "BT-C": 1, "MAD": 2, "S3D": 1, "BT-D": 1}
	for l, n := range want {
		if labels[l] != n {
			t.Errorf("label %s: %d jobs, want %d", l, labels[l], n)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := SimulateQueue(SimConfig{}); err == nil {
		t.Fatal("empty config should fail")
	}
	spec := mustSpec(t, "HACC")
	jobsList := []QueuedJob{{ID: "a", Spec: spec}, {ID: "a", Spec: spec}}
	if _, err := SimulateQueue(SimConfig{Jobs: jobsList, ComputeNodes: 96, IONs: 12, Policy: policy.MCKP{}}); err == nil {
		t.Fatal("duplicate IDs should fail")
	}
	big := spec
	big.Nodes = 1000
	if _, err := SimulateQueue(SimConfig{Jobs: []QueuedJob{{ID: "x", Spec: big}}, ComputeNodes: 96, IONs: 12, Policy: policy.MCKP{}}); err == nil {
		t.Fatal("oversized job should fail")
	}
}

func TestSingleJobRuntime(t *testing.T) {
	spec := mustSpec(t, "HACC") // 1.8 GB write, 8 nodes
	res, err := SimulateQueue(SimConfig{
		Jobs:         []QueuedJob{{ID: "h", Spec: spec}},
		ComputeNodes: 96, IONs: 12,
		Policy: policy.MCKP{}, AllowDirect: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := res.PerJob["h"]
	if o == nil {
		t.Fatal("job outcome missing")
	}
	// Alone with 12 IONs, MCKP gives HACC its best ≤8 option: 8 IONs at
	// 3850.7 MB/s → 1.8e9/3850.7e6 ≈ 0.467 s.
	want := 1.8e9 / 3850.7e6
	if diff := o.End - o.Start - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("runtime = %v, want %v", o.End-o.Start, want)
	}
	if o.Bandwidth.MBps() < 3850 || o.Bandwidth.MBps() > 3851 {
		t.Fatalf("bandwidth = %v", o.Bandwidth)
	}
	if len(o.Timeline) != 1 || o.Timeline[0].IONs != 8 {
		t.Fatalf("timeline: %+v", o.Timeline)
	}
}

func TestFIFOOrderRespected(t *testing.T) {
	// Two 64-node jobs cannot overlap on 96 nodes; the second must wait.
	spec := mustSpec(t, "BT-D")
	res, err := SimulateQueue(SimConfig{
		Jobs:         []QueuedJob{{ID: "j1", Spec: spec}, {ID: "j2", Spec: spec}},
		ComputeNodes: 96, IONs: 12,
		Policy: policy.MCKP{}, AllowDirect: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerJob["j2"].Start < res.PerJob["j1"].End-1e-9 {
		t.Fatalf("FIFO violated: j2 started at %v before j1 ended at %v",
			res.PerJob["j2"].Start, res.PerJob["j1"].End)
	}
}

func TestStrictFIFOHeadBlocks(t *testing.T) {
	// Queue: wide job (64), then narrow (8). With 70 nodes, after the
	// wide job starts the narrow one fits (64+8=72>70 does not fit; so
	// narrow waits even though an even narrower job behind it would fit —
	// covered implicitly by strict head blocking).
	wide := mustSpec(t, "BT-D")   // 64 nodes
	narrow := mustSpec(t, "HACC") // 8 nodes
	res, err := SimulateQueue(SimConfig{
		Jobs:         []QueuedJob{{ID: "wide", Spec: wide}, {ID: "n1", Spec: narrow}},
		ComputeNodes: 70, IONs: 12,
		Policy: policy.MCKP{}, AllowDirect: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerJob["n1"].Start < res.PerJob["wide"].End-1e-9 {
		t.Fatal("narrow job should wait for the wide head job")
	}
}

func TestDynamicReallocationHappens(t *testing.T) {
	res, err := SimulateQueue(paperConfig(t, policy.MCKP{}, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reallocations == 0 {
		t.Fatal("MCKP should reallocate running jobs as the mix changes (paper: HACC 8 → 4)")
	}
	// The first HACC job starts alone: MCKP gives it 8 I/O nodes, and
	// reduces the allocation once IOR-MPI and SIM arrive (paper §5.3).
	h := res.PerJob["HACC#1"]
	if h == nil || len(h.Timeline) == 0 || h.Timeline[0].IONs != 8 {
		t.Fatalf("HACC#1 should start with 8 IONs: %+v", h)
	}
}

func TestStickyStaticNeverReallocates(t *testing.T) {
	res, err := SimulateQueue(paperConfig(t, policy.Static{SystemCompute: 96, SystemIONs: 12}, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reallocations != 0 {
		t.Fatalf("sticky STATIC reallocated %d times", res.Reallocations)
	}
	// HACC (8 nodes) gets 1 ION under the machine ratio R=8 (paper §5.3).
	h := res.PerJob["HACC#1"]
	if len(h.Timeline) != 1 || h.Timeline[0].IONs != 1 {
		t.Fatalf("HACC#1 under STATIC: %+v", h.Timeline)
	}
}

// TestFigure9MCKPBeatsStatic is the §5.3 headline: dynamic MCKP improves
// the aggregate bandwidth over STATIC by ≈1.9× (we accept >1.3×).
func TestFigure9MCKPBeatsStatic(t *testing.T) {
	mckp, err := SimulateQueue(paperConfig(t, policy.MCKP{}, false))
	if err != nil {
		t.Fatal(err)
	}
	static, err := SimulateQueue(paperConfig(t, policy.Static{SystemCompute: 96, SystemIONs: 12}, true))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(mckp.Aggregate) / float64(static.Aggregate)
	if ratio < 1.3 {
		t.Fatalf("MCKP/STATIC aggregate = %.2f, paper reports ≈1.9", ratio)
	}
	t.Logf("Fig 9: MCKP %.2f GB/s vs STATIC %.2f GB/s (%.2f×; paper: 16.02 vs 8.41, 1.9×)",
		mckp.Aggregate.GBps(), static.Aggregate.GBps(), ratio)
	// MCKP should also finish the queue no later than STATIC (same
	// volumes at higher rates).
	if mckp.Makespan > static.Makespan*1.05 {
		t.Fatalf("MCKP makespan %v much worse than STATIC %v", mckp.Makespan, static.Makespan)
	}
}

// TestFigure9AllPolicies runs the four §5.3 policies and checks ordering.
func TestFigure9AllPolicies(t *testing.T) {
	results := map[string]*SimResult{}
	run := func(name string, p policy.Policy, sticky bool) {
		res, err := SimulateQueue(paperConfig(t, p, sticky))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = res
	}
	run("ONE", policy.One{}, true)
	run("STATIC", policy.Static{SystemCompute: 96, SystemIONs: 12}, true)
	run("SIZE", policy.Proportional{}, false)
	run("MCKP", policy.MCKP{}, false)

	for name, res := range results {
		if len(res.PerJob) != 14 {
			t.Fatalf("%s: %d jobs completed", name, len(res.PerJob))
		}
		t.Logf("%-7s aggregate %8.2f MB/s makespan %6.1f s reallocs %d",
			name, res.Aggregate.MBps(), res.Makespan, res.Reallocations)
	}
	if results["MCKP"].Aggregate <= results["ONE"].Aggregate {
		t.Fatal("MCKP should beat ONE")
	}
	if results["MCKP"].Aggregate <= results["SIZE"].Aggregate {
		t.Fatal("MCKP should beat SIZE")
	}
}

func TestPerJobBandwidthConsistent(t *testing.T) {
	res, err := SimulateQueue(paperConfig(t, policy.MCKP{}, false))
	if err != nil {
		t.Fatal(err)
	}
	for id, o := range res.PerJob {
		if o.End <= o.Start {
			t.Fatalf("%s: non-positive runtime", id)
		}
		want := units.Bandwidth(float64(o.Bytes) / (o.End - o.Start))
		if d := float64(o.Bandwidth - want); d > 1 || d < -1 {
			t.Fatalf("%s: bandwidth %v inconsistent with %v", id, o.Bandwidth, want)
		}
		// Timeline covers [Start, End].
		if len(o.Timeline) == 0 {
			t.Fatalf("%s: empty timeline", id)
		}
		if o.Timeline[0].Start != o.Start || o.Timeline[len(o.Timeline)-1].End != o.End {
			t.Fatalf("%s: timeline %+v does not span [%v,%v]", id, o.Timeline, o.Start, o.End)
		}
	}
}

func TestAllowDirectGivesS3DZero(t *testing.T) {
	spec := mustSpec(t, "S3D")
	res, err := SimulateQueue(SimConfig{
		Jobs:         []QueuedJob{{ID: "s", Spec: spec}},
		ComputeNodes: 96, IONs: 12,
		Policy: policy.MCKP{}, AllowDirect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerJob["s"].Timeline[0].IONs != 0 {
		t.Fatalf("S3D alone with direct access allowed should use 0 IONs: %+v", res.PerJob["s"].Timeline)
	}
}

// TestIONUtilization: the utilization integral is a valid fraction, and
// dynamic MCKP keeps the forwarding pool busier than sticky STATIC on the
// paper queue (the "efficient use of available I/O nodes" contribution).
func TestIONUtilization(t *testing.T) {
	mckp, err := SimulateQueue(paperConfig(t, policy.MCKP{}, false))
	if err != nil {
		t.Fatal(err)
	}
	static, err := SimulateQueue(paperConfig(t, policy.Static{SystemCompute: 96, SystemIONs: 12}, true))
	if err != nil {
		t.Fatal(err)
	}
	for name, u := range map[string]float64{"MCKP": mckp.IONUtilization, "STATIC": static.IONUtilization} {
		if u <= 0 || u > 1.000001 {
			t.Fatalf("%s utilization out of range: %v", name, u)
		}
	}
	if mckp.IONUtilization <= static.IONUtilization {
		t.Fatalf("MCKP should use the pool more efficiently: %.3f vs %.3f",
			mckp.IONUtilization, static.IONUtilization)
	}
	t.Logf("ION utilization: MCKP %.1f%%, STATIC %.1f%%",
		mckp.IONUtilization*100, static.IONUtilization*100)
}
