package jobs

import (
	"fmt"
	"math/rand"

	"repro/internal/perfmodel"
)

// RecruitIdleOptions enables the paper's future-work extension: when the
// machine has no (or few) dedicated forwarding nodes, idle compute nodes
// are recruited as temporary I/O nodes. At each arbitration the effective
// pool becomes IONs + min(free compute nodes, Cap); recruited nodes are
// returned to the compute pool implicitly when the next arbitration sees a
// smaller free set (the simulator arbitrates exactly when job membership
// changes, so a recruited node is never both computing and forwarding).
type RecruitIdleOptions struct {
	// Enabled turns recruiting on.
	Enabled bool
	// Cap bounds how many idle compute nodes may be recruited at once;
	// ≤0 means no bound.
	Cap int
}

// effectivePool computes the arbitration pool under recruiting. Free
// compute nodes counted here are idle by definition: admit() ran first, so
// nothing in the queue fits in them.
func (s *sim) effectivePool() int {
	pool := s.cfg.IONs
	if !s.cfg.Recruit.Enabled {
		return pool
	}
	extra := s.free
	if s.cfg.Recruit.Cap > 0 && extra > s.cfg.Recruit.Cap {
		extra = s.cfg.Recruit.Cap
	}
	return pool + extra
}

// RandomQueue generates a reproducible random job queue from the Table 3
// applications, the way the paper's queue generator builds the §5.3
// workloads: n jobs drawn uniformly, submissions separated by exponential
// gaps with the given mean (seconds).
func RandomQueue(seed int64, n int, meanGap float64) ([]QueuedJob, error) {
	if n <= 0 {
		return nil, fmt.Errorf("jobs: queue length must be positive, got %d", n)
	}
	specs := perfmodel.EvaluationApps()
	rng := rand.New(rand.NewSource(seed))
	count := map[string]int{}
	var out []QueuedJob
	arrival := 0.0
	for i := 0; i < n; i++ {
		spec := specs[rng.Intn(len(specs))]
		count[spec.Label]++
		out = append(out, QueuedJob{
			ID:      fmt.Sprintf("%s#%d", spec.Label, count[spec.Label]),
			Spec:    spec,
			Arrival: arrival,
		})
		arrival += rng.ExpFloat64() * meanGap
	}
	return out, nil
}
