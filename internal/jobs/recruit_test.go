package jobs

import (
	"testing"

	"repro/internal/policy"
)

func TestRandomQueueReproducible(t *testing.T) {
	a, err := RandomQueue(7, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomQueue(7, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Arrival != b[i].Arrival {
			t.Fatalf("queue not reproducible at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Different seeds differ.
	c, _ := RandomQueue(8, 20, 5)
	same := true
	for i := range a {
		if a[i].ID != c[i].ID {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical queues")
	}
}

func TestRandomQueueValidation(t *testing.T) {
	if _, err := RandomQueue(1, 0, 5); err == nil {
		t.Fatal("zero-length queue should fail")
	}
}

func TestRandomQueueArrivalsMonotone(t *testing.T) {
	q, err := RandomQueue(3, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	ids := map[string]bool{}
	for _, j := range q {
		if j.Arrival < prev {
			t.Fatalf("arrivals not monotone: %v", j)
		}
		prev = j.Arrival
		if ids[j.ID] {
			t.Fatalf("duplicate job ID %s", j.ID)
		}
		ids[j.ID] = true
	}
}

// TestRandomQueuesMCKPRobust: across many random queues, dynamic MCKP
// never does worse than sticky STATIC on the Equation-2 aggregate.
func TestRandomQueuesMCKPRobust(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		queue, err := RandomQueue(seed, 12, 8)
		if err != nil {
			t.Fatal(err)
		}
		run := func(p policy.Policy, sticky bool) float64 {
			res, err := SimulateQueue(SimConfig{
				Jobs: queue, ComputeNodes: 96, IONs: 12,
				Policy: p, Sticky: sticky, AllowDirect: false,
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return float64(res.Aggregate)
		}
		mckp := run(policy.MCKP{}, false)
		static := run(policy.Static{SystemCompute: 96, SystemIONs: 12}, true)
		if mckp < static*0.999 {
			t.Fatalf("seed %d: MCKP %.0f below STATIC %.0f", seed, mckp, static)
		}
	}
}

// TestRecruitIdleImproves is the paper's future-work scenario: a machine
// with no forwarding layer at all (every job accesses the PFS directly).
// Recruiting idle compute nodes as temporary I/O nodes gives the arbiter
// something to allocate and must improve the aggregate.
func TestRecruitIdleImproves(t *testing.T) {
	queue, err := PaperQueue()
	if err != nil {
		t.Fatal(err)
	}
	run := func(recruit RecruitIdleOptions) float64 {
		res, err := SimulateQueue(SimConfig{
			Jobs: queue, ComputeNodes: 96, IONs: 0, // no forwarding deployed
			Policy: policy.MCKP{}, AllowDirect: true,
			Recruit: recruit,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Aggregate)
	}
	base := run(RecruitIdleOptions{})
	recruited := run(RecruitIdleOptions{Enabled: true})
	if recruited <= base {
		t.Fatalf("recruiting should improve a machine without forwarding: %.0f vs %.0f", recruited, base)
	}
	t.Logf("no forwarding: %.2f GB/s; with idle-node recruiting: %.2f GB/s (%.2fx)",
		base/1e9, recruited/1e9, recruited/base)
}

func TestRecruitIdleCap(t *testing.T) {
	queue, err := PaperQueue()
	if err != nil {
		t.Fatal(err)
	}
	run := func(cap int) float64 {
		res, err := SimulateQueue(SimConfig{
			Jobs: queue, ComputeNodes: 96, IONs: 0,
			Policy: policy.MCKP{}, AllowDirect: true,
			Recruit: RecruitIdleOptions{Enabled: true, Cap: cap},
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Aggregate)
	}
	unlimited := run(0)
	capped := run(1)
	if capped > unlimited*1.0001 {
		t.Fatalf("capping recruitment cannot improve the aggregate: %.0f vs %.0f", capped, unlimited)
	}
}

// TestInfeasibleWithoutSharing documents the §3.1 motivation for the
// shared-node option: a 2-ION machine without direct access cannot host
// more concurrent jobs than I/O nodes under dedicated-only policies.
func TestInfeasibleWithoutSharing(t *testing.T) {
	queue, err := PaperQueue()
	if err != nil {
		t.Fatal(err)
	}
	_, err = SimulateQueue(SimConfig{
		Jobs: queue, ComputeNodes: 96, IONs: 2,
		Policy: policy.MCKP{}, AllowDirect: false,
	})
	if err == nil {
		t.Fatal("6 concurrent jobs on 2 dedicated IONs without direct access should be infeasible")
	}
}

// TestSharedNodeMakesTightMachineFeasible: the §3.1 sharing extension lets
// the 14-job queue run on a 2-ION machine without direct access, which is
// infeasible for dedicated-only policies (TestInfeasibleWithoutSharing).
func TestSharedNodeMakesTightMachineFeasible(t *testing.T) {
	queue, err := PaperQueue()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateQueue(SimConfig{
		Jobs: queue, ComputeNodes: 96, IONs: 2,
		Policy: policy.WithShared{}, AllowDirect: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerJob) != 14 {
		t.Fatalf("completed %d of 14 jobs", len(res.PerJob))
	}
	if res.Aggregate <= 0 {
		t.Fatal("no aggregate bandwidth")
	}
	t.Logf("2-ION machine with sharing: %.2f GB/s aggregate, makespan %.0f s",
		res.Aggregate.GBps(), res.Makespan)
}
