package jobs

import (
	"testing"

	"repro/internal/policy"
)

func runPaperQueue(t *testing.T, delay float64) *SimResult {
	t.Helper()
	queue, err := PaperQueue()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateQueue(SimConfig{
		Jobs: queue, ComputeNodes: 96, IONs: 12,
		Policy: policy.MCKP{}, AllowDirect: false,
		RemapDelay: delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRemapDelayNearInstant: with the paper's 10-second mapping poll,
// reallocations take effect late. The Equation-2 aggregate is NOT
// monotone in how promptly decisions apply — delaying a downgrade lets
// the downgraded job keep its high rate while the newcomer waits, which
// can slightly raise the sum of per-job average bandwidths even though
// the instantaneous system rate is lower — so we assert the two runs land
// within a tight band of each other rather than an ordering.
func TestRemapDelayNearInstant(t *testing.T) {
	instant := runPaperQueue(t, 0)
	delayed := runPaperQueue(t, 10)
	lo, hi := float64(instant.Aggregate)*0.85, float64(instant.Aggregate)*1.15
	if float64(delayed.Aggregate) < lo || float64(delayed.Aggregate) > hi {
		t.Fatalf("10s-poll aggregate %v far from instantaneous %v",
			delayed.Aggregate, instant.Aggregate)
	}
	// The makespan, however, is never improved by stale allocations.
	if delayed.Makespan < instant.Makespan-1e-6 {
		t.Fatalf("stale mappings shortened the makespan: %.1f vs %.1f",
			delayed.Makespan, instant.Makespan)
	}
	t.Logf("aggregate with instant remaps %.2f GB/s; with 10 s mapping poll %.2f GB/s",
		instant.Aggregate.GBps(), delayed.Aggregate.GBps())
}

// TestRemapDelayStillBeatsStatic: even paying the poll latency, dynamic
// MCKP outperforms sticky STATIC (the paper's live result includes this
// latency and still reports 1.9×).
func TestRemapDelayStillBeatsStatic(t *testing.T) {
	queue, err := PaperQueue()
	if err != nil {
		t.Fatal(err)
	}
	static, err := SimulateQueue(SimConfig{
		Jobs: queue, ComputeNodes: 96, IONs: 12,
		Policy: policy.Static{SystemCompute: 96, SystemIONs: 12},
		Sticky: true, AllowDirect: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	delayed := runPaperQueue(t, 10)
	ratio := float64(delayed.Aggregate) / float64(static.Aggregate)
	if ratio < 1.3 {
		t.Fatalf("MCKP with poll latency over STATIC = %.2f, want >1.3 (paper: 1.9)", ratio)
	}
	t.Logf("MCKP(10s poll)/STATIC = %.2f (paper's live setup: 1.9)", ratio)
}

// TestRemapDelayFirstAllocationImmediate: a job must never start without
// an effective allocation (the client reads the mapping at mount time).
func TestRemapDelayFirstAllocationImmediate(t *testing.T) {
	res := runPaperQueue(t, 10)
	for id, o := range res.PerJob {
		if len(o.Timeline) == 0 {
			t.Fatalf("%s has no allocation timeline", id)
		}
		if o.Timeline[0].Start != o.Start {
			t.Fatalf("%s: first allocation at %v, job started at %v", id, o.Timeline[0].Start, o.Start)
		}
	}
}

// TestRemapDelayRevertedDecision: if the arbiter changes its mind again
// before the poll fires, the job keeps running and ends with a consistent
// timeline.
func TestRemapDelayRevertedDecision(t *testing.T) {
	res := runPaperQueue(t, 3)
	for id, o := range res.PerJob {
		for i := 1; i < len(o.Timeline); i++ {
			if o.Timeline[i].Start < o.Timeline[i-1].End-1e-9 {
				t.Fatalf("%s: overlapping timeline spans %+v", id, o.Timeline)
			}
			if o.Timeline[i].IONs == o.Timeline[i-1].IONs {
				t.Fatalf("%s: zero-change span recorded %+v", id, o.Timeline)
			}
		}
		if o.Timeline[len(o.Timeline)-1].End != o.End {
			t.Fatalf("%s: timeline does not close at job end", id)
		}
	}
}
