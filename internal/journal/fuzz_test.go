package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to the replay path as a
// journal segment (and, mutated, as a snapshot). The contract under
// fuzz: never panic, never error on corrupt input — torn, truncated,
// bit-flipped, resurrected, or garbage segments must all degrade to
// "recover everything up to the last valid record". A recovered record
// set must itself re-append and replay losslessly.
func FuzzJournalReplay(f *testing.F) {
	// Seed with real frames in various states of disrepair.
	valid := func(recs ...Record) []byte {
		var buf []byte
		for _, r := range recs {
			frame, err := encodeRecord(r)
			if err != nil {
				f.Fatal(err)
			}
			buf = append(buf, frame...)
		}
		return buf
	}
	whole := valid(
		Record{LSN: 1, Kind: KindAddION, Addr: "ion-0"},
		Record{LSN: 2, Kind: KindJobStarted, App: &App{ID: "a", Curve: []CurvePoint{{IONs: 1, MBps: 10}}}},
		Record{LSN: 3, Kind: KindPublish, Epoch: 1, Assign: map[string][]string{"a": {"ion-0"}}},
		Record{LSN: 4, Kind: KindDrainStart, Addr: "ion-0"},
	)
	f.Add(whole)
	f.Add(whole[:len(whole)-1]) // torn tail
	f.Add(whole[:len(whole)/2]) // truncated mid-frame
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)                                    // bit flip
	f.Add(append(whole, whole...))                    // resurrected LSNs
	f.Add([]byte{})                                   // empty segment
	f.Add([]byte{0xFF, 0xFF, 0xFF})                   // shorter than a header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // absurd length

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-0000000000000001.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Also present the same bytes as a snapshot: the fallback path
		// must reject anything that is not exactly one valid snapshot
		// record without panicking.
		if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000001.snap"), data, 0o644); err != nil {
			t.Fatal(err)
		}

		st, recs, last, err := Replay(dir)
		if err != nil {
			t.Fatalf("replay errored on corrupt input: %v", err)
		}
		if st == nil {
			t.Fatal("replay returned nil state")
		}
		for i, r := range recs {
			if i > 0 && r.LSN <= recs[i-1].LSN {
				t.Fatalf("non-monotonic LSNs survived replay: %d then %d", recs[i-1].LSN, r.LSN)
			}
			if r.LSN > last {
				t.Fatalf("record LSN %d above reported last %d", r.LSN, last)
			}
		}

		// Whatever was recovered must survive a round trip through a
		// real journal: append the recovered records (renumbered) and
		// replay them back to the same fold.
		dir2 := t.TempDir()
		j, err := Open(dir2, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Kind == KindSnapshot {
				continue
			}
			if _, err := j.Append(r); err != nil {
				t.Fatalf("re-append of recovered record failed: %v", err)
			}
		}
		j.Close()
		st2, recs2, _, err := Replay(dir2)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip lost records: %d -> %d", len(recs), len(recs2))
		}
		// The round-tripped fold must match a direct fold of the
		// recovered records (st itself may include a snapshot base that
		// dir2 never saw, so fold from empty for the comparison).
		direct := &State{}
		for _, r := range recs {
			direct.Apply(r)
		}
		if !reflect.DeepEqual(direct, st2) {
			t.Fatalf("round-trip fold diverged:\n direct %+v\n stored %+v", direct, st2)
		}
	})
}
