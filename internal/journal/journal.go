// Package journal is the arbiter's write-ahead log: a CRC-protected,
// length-prefixed record stream that makes the control plane's state —
// pool membership, health marks, drains, running jobs, and published
// allocation epochs — survive a crash of the process that owns it.
//
// The data plane never reads the journal. Its only consumer is
// arbiter.Recover, which replays the records into a State, reconciles
// that state against live reality, and republishes under a raised fence
// epoch so clients still holding the pre-crash mapping cannot land bytes
// on an I/O node that was reassigned during the blackout.
//
// On-disk layout (all files live in one directory):
//
//	seg-<firstLSN>.wal    length-prefixed records, appended and fsynced
//	snap-<lastLSN>.snap   one full State record, written by Snapshot
//
// Each record is framed as
//
//	uint32 length | uint32 crc32c(payload) | payload (JSON)
//
// big-endian, CRC over the payload bytes only. Replay accepts records in
// LSN order and stops a segment at the first frame that is torn,
// truncated, oversized, bit-flipped, or out of order — everything before
// the bad frame is kept, which is exactly the contract a crashed append
// needs. Appends after recovery go to a fresh segment, so a torn tail is
// superseded rather than overwritten.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// Kind discriminates journal records. Values are part of the on-disk
// format: append only, never renumber.
type Kind uint8

const (
	// KindSnapshot carries a full State and supersedes everything before
	// its LSN. Snapshots live in their own files, not in segments, but
	// share the record framing.
	KindSnapshot Kind = iota + 1
	KindJobStarted
	KindJobFinished
	KindPublish
	KindMarkDown
	KindMarkUp
	KindMarkOverloaded
	KindMarkRecovered
	KindDrainStart
	KindDrainAbort
	KindAddION
	KindRemoveION
	// KindMarkDegraded/KindMarkRestored record the gray-failure
	// quarantine plane. Appended after the original kinds: values are
	// on-disk, so new kinds only ever grow the tail of this block.
	KindMarkDegraded
	KindMarkRestored
)

var kindNames = map[Kind]string{
	KindSnapshot:       "snapshot",
	KindJobStarted:     "job-started",
	KindJobFinished:    "job-finished",
	KindPublish:        "publish",
	KindMarkDown:       "mark-down",
	KindMarkUp:         "mark-up",
	KindMarkOverloaded: "mark-overloaded",
	KindMarkRecovered:  "mark-recovered",
	KindDrainStart:     "drain-start",
	KindDrainAbort:     "drain-abort",
	KindAddION:         "add-ion",
	KindRemoveION:      "remove-ion",
	KindMarkDegraded:   "mark-degraded",
	KindMarkRestored:   "mark-restored",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// CurvePoint is one sampled point of an application's performance curve,
// flattened for the journal (perfmodel keeps its points behind an opaque
// type; the arbiter converts on the way in and out).
type CurvePoint struct {
	IONs int     `json:"ions"`
	MBps float64 `json:"mbps"`
}

// App is the journal's view of a running application: everything the
// arbiter needs to re-solve with the same inputs it had before the
// crash, including the history-informed curve that WithHistory attached
// at submission time.
type App struct {
	ID         string       `json:"id"`
	Nodes      int          `json:"nodes,omitempty"`
	Processes  int          `json:"procs,omitempty"`
	WriteBytes int64        `json:"wbytes,omitempty"`
	ReadBytes  int64        `json:"rbytes,omitempty"`
	Weight     float64      `json:"weight,omitempty"`
	Curve      []CurvePoint `json:"curve,omitempty"`
}

// Record is one journal entry. LSN is assigned by Append and is strictly
// monotonic across segments; replay uses it to detect mixed or resurrected
// tails.
type Record struct {
	LSN    uint64              `json:"lsn"`
	Kind   Kind                `json:"kind"`
	Addr   string              `json:"addr,omitempty"`
	Job    string              `json:"job,omitempty"`
	App    *App                `json:"app,omitempty"`
	Epoch  uint64              `json:"epoch,omitempty"`
	Assign map[string][]string `json:"assign,omitempty"`
	State  *State              `json:"state,omitempty"`
}

// State is the reconstructed control-plane state: the fold of a snapshot
// plus every record after it. Membership sets are sorted slices so the
// JSON is stable and diffable.
type State struct {
	Pool       []string            `json:"pool,omitempty"`
	Down       []string            `json:"down,omitempty"`
	Overloaded []string            `json:"overloaded,omitempty"`
	Draining   []string            `json:"draining,omitempty"`
	Degraded   []string            `json:"degraded,omitempty"`
	Running    []App               `json:"running,omitempty"`
	Assign     map[string][]string `json:"assign,omitempty"`
	Epoch      uint64              `json:"epoch,omitempty"`
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	if s == nil {
		return nil
	}
	c := &State{
		Pool:       append([]string(nil), s.Pool...),
		Down:       append([]string(nil), s.Down...),
		Overloaded: append([]string(nil), s.Overloaded...),
		Draining:   append([]string(nil), s.Draining...),
		Degraded:   append([]string(nil), s.Degraded...),
		Running:    make([]App, len(s.Running)),
		Epoch:      s.Epoch,
	}
	for i, a := range s.Running {
		a.Curve = append([]CurvePoint(nil), a.Curve...)
		c.Running[i] = a
	}
	if s.Assign != nil {
		c.Assign = make(map[string][]string, len(s.Assign))
		for k, v := range s.Assign {
			c.Assign[k] = append([]string(nil), v...)
		}
	}
	return c
}

func addAddr(set []string, addr string) []string {
	for _, a := range set {
		if a == addr {
			return set
		}
	}
	set = append(set, addr)
	sort.Strings(set)
	return set
}

func dropAddr(set []string, addr string) []string {
	out := set[:0]
	for _, a := range set {
		if a != addr {
			out = append(out, a)
		}
	}
	return out
}

// Has reports membership of addr in a sorted-or-not set slice.
func Has(set []string, addr string) bool {
	for _, a := range set {
		if a == addr {
			return true
		}
	}
	return false
}

// Apply folds one record into the state. The fold mirrors the arbiter's
// own transitions closely enough that replaying a journal reproduces the
// arbiter's pre-crash view; reconciliation against live reality is the
// caller's job, not Apply's.
func (s *State) Apply(r Record) {
	switch r.Kind {
	case KindSnapshot:
		if r.State != nil {
			*s = *r.State.Clone()
		}
	case KindJobStarted:
		if r.App == nil {
			return
		}
		for i := range s.Running {
			if s.Running[i].ID == r.App.ID {
				s.Running[i] = *r.App
				return
			}
		}
		s.Running = append(s.Running, *r.App)
	case KindJobFinished:
		for i := range s.Running {
			if s.Running[i].ID == r.Job {
				s.Running = append(s.Running[:i], s.Running[i+1:]...)
				break
			}
		}
		delete(s.Assign, r.Job)
	case KindPublish:
		s.Epoch = r.Epoch
		s.Assign = make(map[string][]string, len(r.Assign))
		for k, v := range r.Assign {
			s.Assign[k] = append([]string(nil), v...)
		}
	case KindMarkDown:
		s.Down = addAddr(s.Down, r.Addr)
		s.Draining = dropAddr(s.Draining, r.Addr) // a dying drain is an aborted drain
		for job, addrs := range s.Assign {
			s.Assign[job] = dropAddr(addrs, r.Addr)
		}
	case KindMarkUp:
		s.Down = dropAddr(s.Down, r.Addr)
	case KindMarkOverloaded:
		s.Overloaded = addAddr(s.Overloaded, r.Addr)
	case KindMarkRecovered:
		s.Overloaded = dropAddr(s.Overloaded, r.Addr)
	case KindDrainStart:
		s.Draining = addAddr(s.Draining, r.Addr)
	case KindDrainAbort:
		s.Draining = dropAddr(s.Draining, r.Addr)
	case KindAddION:
		s.Pool = addAddr(s.Pool, r.Addr)
	case KindRemoveION:
		s.Pool = dropAddr(s.Pool, r.Addr)
		s.Down = dropAddr(s.Down, r.Addr)
		s.Overloaded = dropAddr(s.Overloaded, r.Addr)
		s.Draining = dropAddr(s.Draining, r.Addr)
		s.Degraded = dropAddr(s.Degraded, r.Addr)
	case KindMarkDegraded:
		s.Degraded = addAddr(s.Degraded, r.Addr)
	case KindMarkRestored:
		s.Degraded = dropAddr(s.Degraded, r.Addr)
	}
}

// Options tunes a journal. The zero value is usable.
type Options struct {
	// SnapshotEvery is the append count between automatic compaction
	// points as reported by SnapshotDue. <=0 selects 256.
	SnapshotEvery int
	// SegmentRecords caps records per segment before rotation. <=0
	// selects 1024.
	SegmentRecords int
	// NoSync skips the per-append fsync. Only for tests and benchmarks
	// that do not care about durability.
	NoSync bool
	// Telemetry, when non-nil, registers the journal_* counter family.
	Telemetry *telemetry.Registry
}

const (
	defaultSnapshotEvery  = 256
	defaultSegmentRecords = 1024
	// maxRecord bounds a single record payload. A corrupt length prefix
	// must not ask replay to allocate gigabytes.
	maxRecord = 8 << 20
	headerLen = 8 // uint32 length + uint32 crc32c
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Journal is an open write-ahead log. Not safe for concurrent use; the
// arbiter serialises appends under its own mutex.
type Journal struct {
	dir  string
	opts Options

	seg       *os.File // active segment
	segPath   string
	segCount  int    // records in the active segment
	nextLSN   uint64 // LSN the next Append assigns
	sinceSnap int    // appends since the last snapshot

	recovered *State   // state replayed at Open (never nil)
	replayed  []Record // records after the snapshot, in LSN order

	tel struct {
		appends     *telemetry.Counter
		appendErrs  *telemetry.Counter
		fsyncs      *telemetry.Counter
		compactions *telemetry.Counter
		replays     *telemetry.Counter
	}
}

// Open replays whatever the directory holds (creating it if missing) and
// prepares a fresh segment for appends. Corrupt or torn tails are
// tolerated: replay keeps everything up to the last valid record and new
// appends supersede the rest. The replayed state is available via
// RecoveredState.
func Open(dir string, opts Options) (*Journal, error) {
	if dir == "" {
		return nil, errors.New("journal: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if opts.SegmentRecords <= 0 {
		opts.SegmentRecords = defaultSegmentRecords
	}
	j := &Journal{dir: dir, opts: opts}
	if reg := opts.Telemetry; reg != nil {
		j.tel.appends = reg.Counter("journal_appends_total")
		j.tel.appendErrs = reg.Counter("journal_append_errors_total")
		j.tel.fsyncs = reg.Counter("journal_fsyncs_total")
		j.tel.compactions = reg.Counter("journal_snapshot_compactions_total")
		j.tel.replays = reg.Counter("journal_replay_records_total")
	}

	st, recs, last, err := replayDir(dir)
	if err != nil {
		return nil, err
	}
	j.recovered, j.replayed = st, recs
	if j.tel.replays != nil {
		j.tel.replays.Add(int64(len(recs)))
	}
	j.nextLSN = last + 1
	if err := j.rotate(); err != nil {
		return nil, err
	}
	return j, nil
}

// RecoveredState returns the state replayed at Open (a deep copy) and
// the post-snapshot records it was folded from. An empty directory
// yields an empty state and no records.
func (j *Journal) RecoveredState() (*State, []Record) {
	return j.recovered.Clone(), append([]Record(nil), j.replayed...)
}

// rotate closes the active segment (if any) and opens a fresh one named
// after the next LSN.
func (j *Journal) rotate() error {
	if j.seg != nil {
		j.seg.Close()
		j.seg = nil
	}
	path := filepath.Join(j.dir, fmt.Sprintf("seg-%016d.wal", j.nextLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	j.seg, j.segPath, j.segCount = f, path, 0
	return nil
}

// Append assigns the record the next LSN, frames it, writes it to the
// active segment, and fsyncs. The assigned LSN is returned.
func (j *Journal) Append(r Record) (uint64, error) {
	if j.seg == nil {
		return 0, errors.New("journal: closed")
	}
	r.LSN = j.nextLSN
	frame, err := encodeRecord(r)
	if err != nil {
		j.countErr()
		return 0, err
	}
	if _, err := j.seg.Write(frame); err != nil {
		j.countErr()
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.seg.Sync(); err != nil {
			j.countErr()
			return 0, fmt.Errorf("journal: fsync: %w", err)
		}
		if j.tel.fsyncs != nil {
			j.tel.fsyncs.Inc()
		}
	}
	if j.tel.appends != nil {
		j.tel.appends.Inc()
	}
	j.nextLSN++
	j.segCount++
	j.sinceSnap++
	if j.segCount >= j.opts.SegmentRecords {
		if err := j.rotate(); err != nil {
			j.countErr()
			return r.LSN, err
		}
	}
	return r.LSN, nil
}

func (j *Journal) countErr() {
	if j.tel.appendErrs != nil {
		j.tel.appendErrs.Inc()
	}
}

// SnapshotDue reports whether enough records accumulated since the last
// snapshot that the owner should hand one over.
func (j *Journal) SnapshotDue() bool {
	return j.sinceSnap >= j.opts.SnapshotEvery
}

// Snapshot writes a full-state compaction point and deletes every
// segment and snapshot it supersedes. The snapshot covers all records
// with LSN < nextLSN; appends continue in a fresh segment so the
// snapshot file is never the append target.
func (j *Journal) Snapshot(st State) error {
	if j.seg == nil {
		return errors.New("journal: closed")
	}
	lsn := j.nextLSN
	j.nextLSN++
	frame, err := encodeRecord(Record{LSN: lsn, Kind: KindSnapshot, State: &st})
	if err != nil {
		return err
	}
	path := filepath.Join(j.dir, fmt.Sprintf("snap-%016d.snap", lsn))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, frame, 0o644); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if !j.opts.NoSync {
		if f, err := os.OpenFile(tmp, os.O_RDWR, 0); err == nil {
			f.Sync()
			f.Close()
			if j.tel.fsyncs != nil {
				j.tel.fsyncs.Inc()
			}
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	// Everything below the snapshot LSN is superseded: old snapshots and
	// every non-active segment (the active segment is rotated first so it
	// can be reclaimed too).
	if err := j.rotate(); err != nil {
		return err
	}
	names, _ := os.ReadDir(j.dir)
	for _, de := range names {
		name := de.Name()
		full := filepath.Join(j.dir, name)
		if full == j.segPath || full == path {
			continue
		}
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal"):
			if first, ok := fileLSN(name, "seg-", ".wal"); ok && first < lsn {
				os.Remove(full)
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if slsn, ok := fileLSN(name, "snap-", ".snap"); ok && slsn < lsn {
				os.Remove(full)
			}
		}
	}
	j.sinceSnap = 0
	if j.tel.compactions != nil {
		j.tel.compactions.Inc()
	}
	return nil
}

// Close closes the active segment. Records already appended stay durable;
// this mirrors a process exit, graceful or not.
func (j *Journal) Close() error {
	if j.seg == nil {
		return nil
	}
	err := j.seg.Close()
	j.seg = nil
	return err
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

func encodeRecord(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("journal: encode: %w", err)
	}
	if len(payload) > maxRecord {
		return nil, fmt.Errorf("journal: record too large (%d bytes)", len(payload))
	}
	frame := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[headerLen:], payload)
	return frame, nil
}

// decodeRecords walks one file's frames and returns every record that
// survives the length, CRC, JSON, and LSN-monotonicity gates, stopping
// at the first frame that does not. minLSN is the exclusive lower bound
// carried across files.
func decodeRecords(buf []byte, minLSN uint64) []Record {
	var out []Record
	last := minLSN
	for len(buf) >= headerLen {
		n := binary.BigEndian.Uint32(buf[0:4])
		if n == 0 || n > maxRecord || int(n) > len(buf)-headerLen {
			break // torn, truncated, or corrupt length
		}
		want := binary.BigEndian.Uint32(buf[4:8])
		payload := buf[headerLen : headerLen+int(n)]
		if crc32.Checksum(payload, castagnoli) != want {
			break // bit flip
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			break
		}
		if r.LSN <= last {
			break // resurrected or reordered tail (LSNs start at 1)
		}
		out = append(out, r)
		last = r.LSN
		buf = buf[headerLen+int(n):]
	}
	return out
}

func fileLSN(name, prefix, suffix string) (uint64, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	n, err := strconv.ParseUint(s, 10, 64)
	return n, err == nil
}

// replayDir loads the newest valid snapshot, folds every later record
// into it, and reports the highest LSN seen.
func replayDir(dir string) (*State, []Record, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	var segs, snaps []string
	for _, de := range entries {
		name := de.Name()
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal"):
			segs = append(segs, name)
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			snaps = append(snaps, name)
		}
	}
	sort.Strings(segs) // zero-padded LSN names sort chronologically
	sort.Strings(snaps)

	st := &State{}
	var base uint64
	// Newest parseable snapshot wins; a corrupt snapshot falls back to
	// the one before it (or to a full segment replay).
	for i := len(snaps) - 1; i >= 0; i-- {
		buf, err := os.ReadFile(filepath.Join(dir, snaps[i]))
		if err != nil {
			continue
		}
		recs := decodeRecords(buf, 0)
		if len(recs) == 1 && recs[0].Kind == KindSnapshot && recs[0].State != nil {
			st = recs[0].State.Clone()
			base = recs[0].LSN
			break
		}
	}

	var applied []Record
	last := base
	for _, name := range segs {
		buf, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		for _, r := range decodeRecords(buf, 0) {
			if r.LSN <= last {
				continue // superseded by the snapshot or an earlier segment
			}
			if r.Kind == KindSnapshot {
				continue // snapshots never live in segments; ignore defensively
			}
			st.Apply(r)
			applied = append(applied, r)
			last = r.LSN
		}
	}
	return st, applied, last, nil
}

// Replay reads a journal directory without opening it for writing:
// the reconstructed state, the post-snapshot records, and the highest
// LSN. Safe to call on a directory another process has open, and the
// tool tests and the drain-ledger oracle use it exactly that way.
func Replay(dir string) (*State, []Record, uint64, error) {
	return replayDir(dir)
}
