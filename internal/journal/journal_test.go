package journal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/telemetry"
)

func mustAppend(t *testing.T, j *Journal, r Record) uint64 {
	t.Helper()
	lsn, err := j.Append(r)
	if err != nil {
		t.Fatalf("append %v: %v", r.Kind, err)
	}
	return lsn
}

// workload appends a representative event sequence and returns the state
// an exact replay must reproduce.
func workload(t *testing.T, j *Journal) *State {
	t.Helper()
	for _, a := range []string{"ion-0", "ion-1", "ion-2"} {
		mustAppend(t, j, Record{Kind: KindAddION, Addr: a})
	}
	mustAppend(t, j, Record{Kind: KindJobStarted, App: &App{
		ID: "app1", Nodes: 4, Processes: 16, WriteBytes: 1 << 20,
		Curve: []CurvePoint{{IONs: 1, MBps: 100}, {IONs: 2, MBps: 180}},
	}})
	mustAppend(t, j, Record{Kind: KindPublish, Epoch: 1, Assign: map[string][]string{
		"app1": {"ion-0", "ion-1"},
	}})
	mustAppend(t, j, Record{Kind: KindMarkDown, Addr: "ion-2"})
	mustAppend(t, j, Record{Kind: KindJobStarted, App: &App{ID: "app2", Weight: 2}})
	mustAppend(t, j, Record{Kind: KindPublish, Epoch: 2, Assign: map[string][]string{
		"app1": {"ion-0"}, "app2": {"ion-1"},
	}})
	mustAppend(t, j, Record{Kind: KindDrainStart, Addr: "ion-0"})
	return &State{
		Pool:     []string{"ion-0", "ion-1", "ion-2"},
		Down:     []string{"ion-2"},
		Draining: []string{"ion-0"},
		Running: []App{
			{ID: "app1", Nodes: 4, Processes: 16, WriteBytes: 1 << 20,
				Curve: []CurvePoint{{IONs: 1, MBps: 100}, {IONs: 2, MBps: 180}}},
			{ID: "app2", Weight: 2},
		},
		Assign: map[string][]string{"app1": {"ion-0"}, "app2": {"ion-1"}},
		Epoch:  2,
	}
}

// normalize collapses empty-but-non-nil slices/maps to nil so that
// comparisons test content, not allocation history.
func normalize(s *State) {
	fix := func(v []string) []string {
		if len(v) == 0 {
			return nil
		}
		return v
	}
	s.Pool, s.Down = fix(s.Pool), fix(s.Down)
	s.Overloaded, s.Draining = fix(s.Overloaded), fix(s.Draining)
	if len(s.Assign) == 0 {
		s.Assign = nil
	}
	if len(s.Running) == 0 {
		s.Running = nil
	}
	for i := range s.Running {
		if len(s.Running[i].Curve) == 0 {
			s.Running[i].Curve = nil
		}
	}
	sort.Slice(s.Running, func(i, k int) bool { return s.Running[i].ID < s.Running[k].ID })
}

func stateEqual(t *testing.T, got, want *State) {
	t.Helper()
	normalize(got)
	normalize(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("state mismatch:\n got  %#v\n want %#v", got, want)
	}
}

func TestJournalReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := workload(t, j)
	j.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, recs := j2.RecoveredState()
	if len(recs) != 9 {
		t.Fatalf("replayed %d records, want 9", len(recs))
	}
	stateEqual(t, got, want)
}

func TestJournalSegmentRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := workload(t, j) // 9 records -> several segments
	j.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >=3 segments, got %d", len(segs))
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, _ := j2.RecoveredState()
	stateEqual(t, got, want)
}

func TestJournalSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	j, err := Open(dir, Options{SegmentRecords: 4, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := workload(t, j)
	if err := j.Snapshot(*want.Clone()); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot records must layer on top of the snapshot.
	mustAppend(t, j, Record{Kind: KindDrainAbort, Addr: "ion-0"})
	mustAppend(t, j, Record{Kind: KindMarkUp, Addr: "ion-2"})
	j.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments, want 1 (the active one)", len(segs))
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("compaction left %d snapshots, want 1", len(snaps))
	}
	if v := reg.Counter("journal_snapshot_compactions_total").Value(); v != 1 {
		t.Fatalf("journal_snapshot_compactions_total = %d, want 1", v)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, recs := j2.RecoveredState()
	if len(recs) != 2 {
		t.Fatalf("replayed %d post-snapshot records, want 2", len(recs))
	}
	// Drain aborted and ion-2 back up:
	stateEqual(t, got, workload2Expected())
}

// workload2Expected is the workload() end state after DrainAbort(ion-0)
// and MarkUp(ion-2).
func workload2Expected() *State {
	return &State{
		Pool:     []string{"ion-0", "ion-1", "ion-2"},
		Down:     []string{},
		Draining: []string{},
		Running: []App{
			{ID: "app1", Nodes: 4, Processes: 16, WriteBytes: 1 << 20,
				Curve: []CurvePoint{{IONs: 1, MBps: 100}, {IONs: 2, MBps: 180}}},
			{ID: "app2", Weight: 2},
		},
		Assign: map[string][]string{"app1": {"ion-0"}, "app2": {"ion-1"}},
		Epoch:  2,
	}
}

// TestJournalTornTail truncates the active segment mid-record — the shape
// a crash during an append leaves behind — and checks replay keeps every
// record before the tear and Open resumes with a fresh segment that
// supersedes it.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	workload(t, j)
	seg := j.segPath
	j.Close()

	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 3 bytes.
	if err := os.WriteFile(seg, buf[:len(buf)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, recs := j2.RecoveredState()
	if len(recs) != 8 {
		t.Fatalf("replayed %d records after torn tail, want 8", len(recs))
	}
	// Appends after recovery must land in a new segment and be replayable.
	mustAppend(t, j2, Record{Kind: KindDrainStart, Addr: "ion-1"})
	j2.Close()
	st, _, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !Has(st.Draining, "ion-1") {
		t.Fatalf("post-recovery append lost: draining = %v", st.Draining)
	}
}

// TestJournalBitFlip flips one byte inside a mid-file record: replay must
// stop that segment at the flip, never panic, and keep the prefix.
func TestJournalBitFlip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	workload(t, j)
	seg := j.segPath
	j.Close()

	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	st, recs, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= 9 {
		t.Fatalf("bit flip not detected: %d records survived", len(recs))
	}
	if len(st.Pool) == 0 {
		t.Fatal("prefix before the flip lost")
	}
}

// TestJournalCorruptSnapshotFallsBack corrupts the newest snapshot and
// checks replay falls back to the full segment history.
func TestJournalCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := workload(t, j)
	if err := j.Snapshot(*want.Clone()); err != nil {
		t.Fatal(err)
	}
	j.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}
	buf, _ := os.ReadFile(snaps[0])
	buf[len(buf)-1] ^= 0xFF
	os.WriteFile(snaps[0], buf, 0o644)

	// The snapshot compacted the segments away, so nothing replays — but
	// nothing panics and Open still succeeds with an empty state.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st, _ := j2.RecoveredState()
	if len(st.Pool) != 0 {
		t.Fatalf("corrupt snapshot should yield empty state, got pool %v", st.Pool)
	}
}

func TestJournalAppendCounters(t *testing.T) {
	reg := telemetry.New()
	j, err := Open(t.TempDir(), Options{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, Record{Kind: KindAddION, Addr: "a"})
	mustAppend(t, j, Record{Kind: KindAddION, Addr: "b"})
	if v := reg.Counter("journal_appends_total").Value(); v != 2 {
		t.Fatalf("journal_appends_total = %d, want 2", v)
	}
	if v := reg.Counter("journal_fsyncs_total").Value(); v != 2 {
		t.Fatalf("journal_fsyncs_total = %d, want 2", v)
	}
}

func TestJournalSnapshotDue(t *testing.T) {
	j, err := Open(t.TempDir(), Options{SnapshotEvery: 2, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.SnapshotDue() {
		t.Fatal("fresh journal already due")
	}
	mustAppend(t, j, Record{Kind: KindAddION, Addr: "a"})
	mustAppend(t, j, Record{Kind: KindAddION, Addr: "b"})
	if !j.SnapshotDue() {
		t.Fatal("snapshot not due after SnapshotEvery appends")
	}
	if err := j.Snapshot(State{Pool: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	if j.SnapshotDue() {
		t.Fatal("snapshot did not reset the due counter")
	}
}

// TestDecodeRecordsBounds exercises the frame gates directly: oversized
// declared lengths and zero-length frames must stop decoding cleanly.
func TestDecodeRecordsBounds(t *testing.T) {
	var huge [12]byte
	binary.BigEndian.PutUint32(huge[0:4], maxRecord+1)
	if recs := decodeRecords(huge[:], 0); len(recs) != 0 {
		t.Fatalf("oversized length accepted: %d records", len(recs))
	}
	var zero [8]byte
	if recs := decodeRecords(zero[:], 0); len(recs) != 0 {
		t.Fatalf("zero length accepted: %d records", len(recs))
	}
	frame, err := encodeRecord(Record{LSN: 1, Kind: KindAddION, Addr: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate LSN: second copy must be rejected by the monotonicity gate.
	double := append(append([]byte(nil), frame...), frame...)
	if recs := decodeRecords(double, 0); len(recs) != 1 {
		t.Fatalf("duplicate LSN accepted: %d records", len(recs))
	}
}

func TestJournalOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open accepted an empty directory")
	}
}

// TestReplayConcurrentWithOpenJournal pins that the read-only Replay can
// inspect a directory another Journal has open — the drain-ledger oracle
// depends on this.
func TestReplayConcurrentWithOpenJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, Record{Kind: KindAddION, Addr: "live"})
	st, _, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !Has(st.Pool, "live") {
		t.Fatalf("concurrent replay missed the appended record: %v", st.Pool)
	}
}

func TestStateCloneIsDeep(t *testing.T) {
	s := &State{
		Pool:    []string{"a"},
		Assign:  map[string][]string{"j": {"a"}},
		Running: []App{{ID: "j", Curve: []CurvePoint{{IONs: 1, MBps: 5}}}},
	}
	c := s.Clone()
	c.Pool[0] = "mutated"
	c.Assign["j"][0] = "mutated"
	c.Running[0].Curve[0].MBps = 99
	if s.Pool[0] != "a" || s.Assign["j"][0] != "a" || s.Running[0].Curve[0].MBps != 5 {
		t.Fatal("Clone shares memory with the original")
	}
}
