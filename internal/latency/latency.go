// Package latency keeps small per-key latency sketches: fixed-window
// rings of recent durations with cheap quantile queries. It is the
// shared substrate of the gray-failure defense — the health prober
// feeds probe round-trip times into it, the forwarding client feeds
// client-observed call latencies into the same sketch, the fail-slow
// scorer reads per-node medians out of it, and the hedging layer reads
// per-node tail quantiles to set adaptive hedge deadlines.
//
// A sketch is deliberately tiny: a ring of the last Window samples per
// key, quantiles by sorting a scratch copy. With the default window of
// 64 samples a quantile query is an insertion sort of at most 64
// elements and zero heap allocations after the ring is warm, which
// keeps it acceptable on the forwarding path when hedging is enabled.
// All methods are safe for concurrent use and safe on a nil *Sketch
// (observations are dropped, queries report no data), so layers can
// thread an optional sketch without guarding every call site.
package latency

import (
	"sync"
	"time"
)

// DefaultWindow is the per-key ring size used when NewSketch is given
// a non-positive window.
const DefaultWindow = 64

// Sketch tracks a sliding window of durations per string key.
type Sketch struct {
	window int

	mu    sync.Mutex
	rings map[string]*ring
}

type ring struct {
	buf  []time.Duration
	next int // index of the slot the next sample overwrites
	full bool
	n    uint64 // total samples ever observed
}

// NewSketch returns a sketch holding the last window samples per key.
func NewSketch(window int) *Sketch {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Sketch{window: window, rings: make(map[string]*ring)}
}

// Observe records one sample for key. No-op on a nil sketch.
func (s *Sketch) Observe(key string, d time.Duration) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	r := s.rings[key]
	if r == nil {
		r = &ring{buf: make([]time.Duration, s.window)}
		s.rings[key] = r
	}
	r.buf[r.next] = d
	r.next++
	r.n++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	s.mu.Unlock()
}

// Samples reports how many samples are currently in key's window.
func (s *Sketch) Samples(key string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.rings[key]
	if r == nil {
		return 0
	}
	return r.len()
}

// Total reports how many samples were ever observed for key, including
// ones that have rotated out of the window.
func (s *Sketch) Total(key string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.rings[key]
	if r == nil {
		return 0
	}
	return r.n
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) of key's current window.
// The second return is false when the key has no samples.
func (s *Sketch) Quantile(key string, q float64) (time.Duration, bool) {
	if s == nil {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var scratch [DefaultWindow]time.Duration
	s.mu.Lock()
	r := s.rings[key]
	if r == nil || r.len() == 0 {
		s.mu.Unlock()
		return 0, false
	}
	sorted := r.sortedInto(scratch[:0])
	s.mu.Unlock()
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx], true
}

// Median is Quantile(key, 0.5).
func (s *Sketch) Median(key string) (time.Duration, bool) {
	return s.Quantile(key, 0.5)
}

// Forget drops all samples for key, e.g. when a node leaves the pool.
func (s *Sketch) Forget(key string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.rings, key)
	s.mu.Unlock()
}

func (r *ring) len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// sortedInto appends the occupied window to dst and insertion-sorts it.
// With dst backed by a stack array of DefaultWindow entries and the
// default window size, the append never allocates.
func (r *ring) sortedInto(dst []time.Duration) []time.Duration {
	dst = append(dst, r.buf[:r.len()]...)
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j] < dst[j-1]; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}
