package latency

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSketchQuantiles(t *testing.T) {
	s := NewSketch(0) // default window
	if _, ok := s.Median("a"); ok {
		t.Fatal("median of an empty key reported data")
	}
	for i := 1; i <= 100; i++ { // window keeps the last 64: 37..100
		s.Observe("a", time.Duration(i)*time.Millisecond)
	}
	if got := s.Samples("a"); got != DefaultWindow {
		t.Fatalf("Samples = %d, want %d", got, DefaultWindow)
	}
	if got := s.Total("a"); got != 100 {
		t.Fatalf("Total = %d, want 100", got)
	}
	med, ok := s.Median("a")
	if !ok {
		t.Fatal("median reported no data after 100 observations")
	}
	// Window holds 37ms..100ms; the median index (0.5 * 63 = 31) is 68ms.
	if med != 68*time.Millisecond {
		t.Fatalf("median = %v, want 68ms", med)
	}
	p99, _ := s.Quantile("a", 0.99)
	if p99 < 98*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want ~99ms", p99)
	}
	if min, _ := s.Quantile("a", 0); min != 37*time.Millisecond {
		t.Fatalf("p0 = %v, want 37ms (oldest retained)", min)
	}
	if max, _ := s.Quantile("a", 1); max != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", max)
	}
}

func TestSketchPartialWindowAndForget(t *testing.T) {
	s := NewSketch(8)
	s.Observe("n", 5*time.Millisecond)
	s.Observe("n", 1*time.Millisecond)
	s.Observe("n", 3*time.Millisecond)
	if med, ok := s.Median("n"); !ok || med != 3*time.Millisecond {
		t.Fatalf("median of {5,1,3}ms = %v (ok=%v), want 3ms", med, ok)
	}
	// Out-of-range quantiles clamp instead of panicking.
	if _, ok := s.Quantile("n", -1); !ok {
		t.Fatal("q=-1 should clamp to min")
	}
	if _, ok := s.Quantile("n", 2); !ok {
		t.Fatal("q=2 should clamp to max")
	}
	s.Forget("n")
	if got := s.Samples("n"); got != 0 {
		t.Fatalf("Samples after Forget = %d, want 0", got)
	}
	if _, ok := s.Median("n"); ok {
		t.Fatal("median reported data after Forget")
	}
}

// TestSketchNilSafe pins the contract that lets callers thread an
// optional sketch without nil guards at every site.
func TestSketchNilSafe(t *testing.T) {
	var s *Sketch
	s.Observe("k", time.Second) // must not panic
	s.Forget("k")
	if _, ok := s.Quantile("k", 0.5); ok {
		t.Fatal("nil sketch reported data")
	}
	if s.Samples("k") != 0 || s.Total("k") != 0 {
		t.Fatal("nil sketch reported samples")
	}
}

func TestSketchConcurrent(t *testing.T) {
	s := NewSketch(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("ion%02d", g%4)
			for i := 0; i < 500; i++ {
				s.Observe(key, time.Duration(i)*time.Microsecond)
				s.Quantile(key, 0.9)
				s.Samples(key)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 4; g++ {
		if _, ok := s.Median(fmt.Sprintf("ion%02d", g)); !ok {
			t.Fatalf("key ion%02d lost its samples", g)
		}
	}
}
