package livestack

// Blackout tests: the control plane (arbiter + prober + scaler + fence
// fan-out) is SIGKILLed while the data plane keeps serving, then warm
// restarted from the write-ahead journal. Oracles, per the recovery
// design (DESIGN.md §11):
//
//   - byte conservation — every acked write of every app is on the PFS,
//     bit-exact, across every blackout, daemon kill, and remap;
//   - zero fenced writes applied — a write stamped with a revoked epoch
//     is rejected by the daemons and leaves no bytes behind (probed
//     directly with a hand-built stale request);
//   - recovered state equals the journaled state modulo no-shrink — jobs
//     and pool membership survive, minus nodes that died during the
//     blackout, and no job's allocation shrinks below what the pruning
//     explains;
//   - bounded client stall — writes issued during the blackout and the
//     recovery fence complete within a budget (the direct PFS path and
//     the remap-and-retry loop keep the data plane live, the control
//     plane is not on the write path);
//   - the blackout is observable — journal_* and epoch_* counters move.
//
// `make blackout` runs this twice under the race detector. Reproduce a
// failing schedule with BLACKOUT_SEED=<n> make blackout.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fwd"
	"repro/internal/journal"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// blackoutSeed returns the nemesis schedule seed: BLACKOUT_SEED when
// set, else 1 so CI runs are deterministic.
func blackoutSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("BLACKOUT_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("BLACKOUT_SEED=%q: %v", s, err)
		}
		return v
	}
	return 1
}

// TestBlackoutWritesSurviveControlPlaneCrash is the acceptance scenario:
// a 12-ION journaled stack, two apps writing continuously, and a nemesis
// that kills the control plane twice — once clean, once compounded by an
// I/O-node death during the blackout — and restarts it from the journal
// each time, with a third job submitted between the blackouts to prove
// the recovered arbiter is live, not a read-only replica.
func TestBlackoutWritesSurviveControlPlaneCrash(t *testing.T) {
	seed := blackoutSeed(t)
	rng := rand.New(rand.NewSource(seed))
	st, err := Start(Config{
		IONs:       12,
		Scheduler:  "FIFO",
		ChunkSize:  4096,
		RPC:        chaosRPC(),
		JournalDir: t.TempDir(),

		HealthInterval:      20 * time.Millisecond,
		HealthTimeout:       250 * time.Millisecond,
		HealthFailThreshold: 3,
		HealthRiseThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := st.Telemetry

	const (
		appsN      = 2
		writersN   = 4
		segsPer    = 8
		segSize    = 8192
		appBytes   = writersN * segsPer * segSize
		stallLimit = 10 * time.Second
	)
	labels := []string{"IOR-MPI", "HACC"}
	clients := make([]*clientUnderTest, appsN)
	for a := 0; a < appsN; a++ {
		id := fmt.Sprintf("bo%d", a)
		if _, err := st.Arbiter.JobStarted(appFor(t, labels[a], id)); err != nil {
			t.Fatal(err)
		}
		c, err := st.NewClient(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := waitForSomeAllocation(c, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		path := "/blackout/" + id
		if err := c.Create(path); err != nil {
			t.Fatal(err)
		}
		clients[a] = &clientUnderTest{Client: c, path: path}
	}

	// Writers rewrite their disjoint regions round-robin until told to
	// stop, but never stop before one full pass, so the verification
	// window is always completely acked. Identical bytes per offset make
	// every remap/retry interleaving idempotent. Each write's latency
	// feeds the stall oracle.
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	stopWriters := func() {
		stopOnce.Do(func() { close(stop) })
		wg.Wait()
	}
	// A writer that fails after the test body has bailed out via Fatalf
	// must never Errorf into a completed test: drain the writers first.
	defer stopWriters()
	var maxStallNs atomic.Int64
	for a := range clients {
		for w := 0; w < writersN; w++ {
			wg.Add(1)
			go func(c *clientUnderTest, w int) {
				defer wg.Done()
				seg := make([]byte, segSize)
				for iter := 0; ; iter++ {
					if iter >= segsPer {
						select {
						case <-stop:
							return
						default:
						}
					}
					off := int64(w*segsPer+iter%segsPer) * segSize
					fill(off, seg)
					begin := time.Now()
					n, err := c.Write(c.path, off, seg)
					took := time.Since(begin).Nanoseconds()
					for {
						cur := maxStallNs.Load()
						if took <= cur || maxStallNs.CompareAndSwap(cur, took) {
							break
						}
					}
					if err != nil || n != segSize {
						t.Errorf("%s writer %d: n=%d err=%v", c.path, w, n, err)
						return
					}
				}
			}(clients[a], w)
		}
	}

	var killedDuringBlackout string
	for cycle := 0; cycle < 2; cycle++ {
		time.Sleep(time.Duration(50+rng.Intn(100)) * time.Millisecond)
		before := st.Arbiter.Current()
		preCrashVersion := st.Bus.Version()
		if err := st.CrashControlPlane(); err != nil {
			t.Fatal(err)
		}
		if st.Arbiter != nil || st.Journal != nil || st.Health != nil {
			t.Fatal("control plane still referenced after the crash")
		}

		// Second blackout is compounded: an allocated I/O node dies while
		// nobody is watching. Recovery must find the corpse by probing.
		if cycle == 1 {
			alloc := before["bo0"]
			killedDuringBlackout = alloc[rng.Intn(len(alloc))]
			if d := st.DaemonAt(killedDuringBlackout); d != nil {
				d.Close()
			}
		}
		// The blackout window: the data plane runs headless.
		time.Sleep(time.Duration(100+rng.Intn(150)) * time.Millisecond)

		if err := st.RecoverControlPlane(); err != nil {
			t.Fatalf("cycle %d recover: %v", cycle, err)
		}
		if st.Arbiter == nil || st.Journal == nil {
			t.Fatal("recovery left no control plane")
		}

		// Recovered state equals the journaled state modulo no-shrink:
		// every registered job survives, and on a clean blackout (no
		// capacity change to explain a re-balance) no job's allocation
		// shrinks. A death during the blackout changes the solve's input,
		// so there the oracle is exclusion of the corpse (checked below),
		// not allocation sizes.
		after := st.Arbiter.Current()
		for job, had := range before {
			if _, ok := after[job]; !ok {
				t.Fatalf("cycle %d: job %s lost in recovery", cycle, job)
			}
			if killedDuringBlackout == "" && len(after[job]) < len(had) {
				t.Fatalf("cycle %d: no-shrink violated for %s: %d -> %d nodes",
					cycle, job, len(had), len(after[job]))
			}
		}
		// The fence revokes every pre-crash epoch.
		if m := st.Bus.Current(); m.Fence <= preCrashVersion {
			t.Fatalf("cycle %d: fence %d does not revoke pre-crash version %d", cycle, m.Fence, preCrashVersion)
		}

		// The recovered arbiter is live: a fresh job between blackouts gets
		// an allocation decision (possibly empty at this pool, never an
		// error), proving the solver and journal are accepting writes.
		if cycle == 0 {
			if _, err := st.Arbiter.JobStarted(appFor(t, "BT-C", "bolate")); err != nil {
				t.Fatalf("JobStarted on the recovered arbiter: %v", err)
			}
		}
	}
	if killedDuringBlackout != "" {
		if !contains(st.Arbiter.Down(), killedDuringBlackout) {
			t.Fatalf("node killed during the blackout not marked down on recovery: down=%v", st.Arbiter.Down())
		}
		if contains(st.Arbiter.Current()["bo0"], killedDuringBlackout) {
			t.Fatal("recovered mapping still routes to the node that died during the blackout")
		}
	}

	stopWriters()
	if t.Failed() {
		t.FailNow()
	}

	// Bounded client stall: the control plane is not on the write path,
	// so no single write — issued before, during, or after a blackout —
	// may stall past the budget.
	if stall := time.Duration(maxStallNs.Load()); stall > stallLimit {
		t.Fatalf("a write stalled %v across the blackouts (budget %v)", stall, stallLimit)
	}

	// Zero fenced writes applied, probed directly: a hand-built write
	// stamped with epoch 1 — revoked by both recoveries — must be
	// rejected by a live daemon and leave no bytes behind, while the same
	// write restamped with the current epoch applies.
	target := st.Arbiter.Pool()[0]
	if target == killedDuringBlackout {
		target = st.Arbiter.Pool()[1]
	}
	rejectsBefore := fenceRejectionTotal(reg)
	raw := rpc.Dial(target, 1)
	defer raw.Close()
	resp, err := raw.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/blackout/stale", Data: []byte("REVOKED"), Epoch: 1})
	if !errors.Is(err, rpc.ErrStaleEpoch) {
		t.Fatalf("stale-epoch probe: want ErrStaleEpoch, got %v", err)
	}
	if resp != nil {
		resp.Release()
	}
	if _, err := st.Store.Stat("/blackout/stale"); err == nil {
		t.Fatal("a fenced write left bytes on the PFS")
	}
	fresh := st.Bus.Current().Version
	if _, err := raw.Call(&rpc.Message{Op: rpc.OpWrite, Path: "/blackout/stale", Data: []byte("CURRENT"), Epoch: fresh}); err != nil {
		t.Fatalf("current-epoch write after the probe: %v", err)
	}
	if got := fenceRejectionTotal(reg); got != rejectsBefore+1 {
		t.Fatalf("epoch_fence_rejections_total moved %d -> %d for exactly one probe", rejectsBefore, got)
	}

	// Byte conservation: every region readable bit-exact through the
	// forwarding clients and straight from the PFS.
	for _, c := range clients {
		got := make([]byte, appBytes)
		if n, err := c.Read(c.path, 0, got); err != nil || n != appBytes {
			t.Fatalf("read %s through client: n=%d err=%v", c.path, n, err)
		}
		for i := range got {
			if got[i] != pat(int64(i)) {
				t.Fatalf("%s byte %d corrupted: got %d want %d", c.path, i, got[i], pat(int64(i)))
			}
		}
		direct := make([]byte, appBytes)
		if n, err := st.Store.Read(c.path, 0, direct); err != nil || n != appBytes {
			t.Fatalf("read %s from store: n=%d err=%v", c.path, n, err)
		}
		for i := range direct {
			if direct[i] != pat(int64(i)) {
				t.Fatalf("%s byte %d lost on the PFS: got %d want %d", c.path, i, direct[i], pat(int64(i)))
			}
		}
	}

	// The blackout was observable: the journal recorded the transitions
	// and replayed them on recovery.
	if v := reg.Counter("journal_appends_total").Value(); v == 0 {
		t.Fatal("journal_appends_total = 0 on a journaled stack")
	}
	if v := reg.Counter("journal_replay_records_total").Value(); v == 0 {
		t.Fatal("journal_replay_records_total = 0 after two recoveries")
	}
	t.Logf("seed %d: max stall %v, journal appends %d, fence rejections %d",
		seed, time.Duration(maxStallNs.Load()),
		reg.Counter("journal_appends_total").Value(), fenceRejectionTotal(reg))
}

// clientUnderTest pairs a forwarding client with its file.
type clientUnderTest struct {
	*fwd.Client
	path string
}

// fenceRejectionTotal sums epoch_fence_rejections_total across nodes.
func fenceRejectionTotal(reg *telemetry.Registry) int64 {
	var total int64
	for name, v := range reg.Snapshot().Counters {
		if strings.HasPrefix(name, "epoch_fence_rejections_total") {
			total += v
		}
	}
	return total
}

// TestBlackoutMidDrainMidScaleRecovery is the recovery × drain × elastic
// interleaving: the control plane dies while an I/O node is draining AND
// while a provisioned node has not yet been admitted to the pool (the
// scaler's spawn landed, its AddION never reached the journal). Recovery
// must abort the drain (the node returns to the allocatable pool), roll
// the half-up node back (decommissioned, not leaked as an orphan daemon
// nothing will ever route to or drain), and leave the journal's drain
// ledger balanced.
func TestBlackoutMidDrainMidScaleRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Start(Config{
		IONs:       6,
		Scheduler:  "FIFO",
		ChunkSize:  4096,
		RPC:        chaosRPC(),
		JournalDir: dir,

		HealthInterval:      20 * time.Millisecond,
		HealthTimeout:       250 * time.Millisecond,
		HealthFailThreshold: 3,
		HealthRiseThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if _, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "d1")); err != nil {
		t.Fatal(err)
	}
	// Drain a node the job does not hold, so the drain can only be
	// resolved by whoever started it — who is about to die.
	victim := ""
	for _, addr := range st.Arbiter.Pool() {
		if !contains(st.Arbiter.Current()["d1"], addr) {
			victim = addr
			break
		}
	}
	if victim == "" {
		victim = st.Arbiter.Pool()[0]
	}
	if err := st.Arbiter.Drain(victim); err != nil {
		t.Fatal(err)
	}
	// The half-up node: provisioned into the stack, never admitted to the
	// arbiter pool — exactly the window between a scaler's Provision and
	// its AddION.
	orphan, err := st.SpawnION()
	if err != nil {
		t.Fatal(err)
	}

	if err := st.CrashControlPlane(); err != nil {
		t.Fatal(err)
	}
	if err := st.RecoverControlPlane(); err != nil {
		t.Fatalf("recover: %v", err)
	}

	if st.Arbiter.IsDraining(victim) {
		t.Fatal("drain survived the blackout; recovery must abort it")
	}
	if !contains(st.Arbiter.Pool(), victim) {
		t.Fatalf("aborted drain lost the node: pool %v", st.Arbiter.Pool())
	}
	if contains(st.Arbiter.Pool(), orphan) {
		t.Fatalf("half-provisioned node %s admitted to the recovered pool", orphan)
	}
	// Rolled back, not leaked: the orphan daemon is decommissioned (no
	// longer serving), so nothing can route to an unmanaged node.
	if d := st.DaemonAt(orphan); d != nil {
		if _, err := rpc.Dial(orphan, 1).WithOptions(rpc.Options{CallTimeout: 200 * time.Millisecond}).Call(&rpc.Message{Op: rpc.OpPing}); err == nil {
			t.Fatalf("half-provisioned node %s still serving after rollback", orphan)
		}
	}
	// Drain ledger balance, read straight from the on-disk journal: every
	// DrainStart is paired with a DrainAbort or a RemoveION.
	_, recs, _, err := journal.Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	starts, ends := 0, 0
	for _, r := range recs {
		switch r.Kind {
		case journal.KindDrainStart:
			starts++
		case journal.KindDrainAbort, journal.KindRemoveION:
			ends++
		}
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("drain ledger unbalanced after blackout: %d starts, %d ends", starts, ends)
	}
}

// TestBlackoutSeriesAbsentWithoutJournal pins the opt-in contract at the
// stack level: without JournalDir no journal_* or epoch_* series exists
// anywhere — the journal and the fencing machinery are fully dormant.
func TestBlackoutSeriesAbsentWithoutJournal(t *testing.T) {
	st := startStack(t, 2)
	if st.Journal != nil {
		t.Fatal("journal opened without JournalDir")
	}
	if _, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "plain")); err != nil {
		t.Fatal(err)
	}
	c, err := st.NewClient("plain")
	if err != nil {
		t.Fatal(err)
	}
	if err := waitForSomeAllocation(c, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/plain"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("/plain", 0, []byte("no journal")); err != nil {
		t.Fatal(err)
	}
	snap := st.Telemetry.Snapshot()
	for name := range snap.Counters {
		if strings.HasPrefix(name, "journal_") || strings.HasPrefix(name, "epoch_") {
			t.Errorf("journal-off stack registered %s", name)
		}
	}
	if err := st.CrashControlPlane(); err == nil {
		t.Fatal("CrashControlPlane without a journal must refuse (nothing would survive)")
	}
	if err := st.RecoverControlPlane(); err == nil {
		t.Fatal("RecoverControlPlane without a journal must refuse")
	}
}
