package livestack

// Chaos tests: kill or wedge an I/O-node daemon mid-workload and assert
// the acceptance properties of the failure-tolerance stack — no write is
// ever lost, failover to the direct PFS path is prompt, the health prober
// marks the node down, the arbiter publishes a mapping that excludes it,
// and every transition is observable as a counter.

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/rpc"
)

// chaosRPC makes transport failures fast and deterministic: with
// MaxRetries=1 a single failed Call is two consecutive breaker failures,
// so BreakerThreshold=2 opens the breaker on the first failed call.
func chaosRPC() rpc.Options {
	return rpc.Options{
		CallTimeout:      500 * time.Millisecond,
		MaxRetries:       1,
		RetryBackoff:     time.Millisecond,
		RetryBackoffMax:  5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Second, // dead node stays failed over for the whole test
	}
}

// pat is the deterministic file content: one byte per offset.
func pat(off int64) byte { return byte(off % 251) }

func fill(off int64, p []byte) {
	for i := range p {
		p[i] = pat(off + int64(i))
	}
}

func contains(list []string, x string) bool {
	for _, v := range list {
		if v == x {
			return true
		}
	}
	return false
}

// TestChaosKillDaemonMidWorkload is the acceptance scenario: a 12-ION
// stack, one daemon killed in the middle of a write stream.
func TestChaosKillDaemonMidWorkload(t *testing.T) {
	st, err := Start(Config{
		IONs:      12,
		Scheduler: "FIFO",
		ChunkSize: 4096,
		RPC:       chaosRPC(),

		HealthInterval:      20 * time.Millisecond,
		HealthTimeout:       250 * time.Millisecond,
		HealthFailThreshold: 3,
		HealthRiseThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	client, err := st.NewClient("ior1")
	if err != nil {
		t.Fatal(err)
	}
	allocated, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(allocated) == 0 {
		t.Fatal("no allocation")
	}
	if err := waitForSomeAllocation(client, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	const (
		segSize  = 16 * 1024 // 4 chunks per write
		segments = 40
		killAt   = 12
		total    = segSize * segments
	)
	dead := allocated[0]
	seg := make([]byte, segSize)

	if err := client.Create("/chaos"); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < segments; s++ {
		if s == killAt {
			for i, a := range st.Addrs {
				if a == dead {
					st.Daemons[i].Close()
				}
			}
		}
		off := int64(s) * segSize
		fill(off, seg)
		n, err := client.Write("/chaos", off, seg)
		if err != nil {
			t.Fatalf("write segment %d (dead=%v): %v", s, s >= killAt, err)
		}
		if n != segSize {
			t.Fatalf("segment %d: wrote %d of %d bytes", s, n, segSize)
		}
	}

	// Bounded recovery: the health prober marks the node down, the arbiter
	// re-arbitrates, and the new mapping reaches the client.
	deadline := time.Now().Add(5 * time.Second)
	for contains(client.IONs(), dead) || len(client.IONs()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("client never saw a mapping excluding the dead ION (has %v)", client.IONs())
		}
		time.Sleep(time.Millisecond)
	}
	if m := st.Bus.Current().For("ior1"); contains(m, dead) || len(m) == 0 {
		t.Fatalf("published mapping still includes the dead ION: %v", m)
	}

	// Byte conservation: every byte written exactly once, readable both
	// through the (remapped) forwarding client and directly from the PFS.
	got := make([]byte, total)
	if n, err := client.Read("/chaos", 0, got); err != nil || n != total {
		t.Fatalf("read back through client: n=%d err=%v", n, err)
	}
	for i := range got {
		if got[i] != pat(int64(i)) {
			t.Fatalf("byte %d corrupted: got %d want %d", i, got[i], pat(int64(i)))
		}
	}
	if fi, err := client.Stat("/chaos"); err != nil || fi.Size != total {
		t.Fatalf("Stat: size=%d err=%v, want %d", fi.Size, err, total)
	}
	direct := make([]byte, total)
	if n, err := st.Store.Read("/chaos", 0, direct); err != nil || n != total {
		t.Fatalf("read back from store: n=%d err=%v", n, err)
	}

	// Every transition is observable.
	reg := st.Telemetry
	appLabel := fmt.Sprintf("{app=%q}", "ior1")
	if v := reg.Counter("fwd_failover_ops_total" + appLabel).Value(); v == 0 {
		t.Fatal("no failover recorded despite a mid-workload ION death")
	}
	if v := reg.Counter("rpc_breaker_open_total").Value(); v < 1 {
		t.Fatalf("rpc_breaker_open_total = %d, want ≥1", v)
	}
	if v := reg.Counter("health_transitions_down_total").Value(); v != 1 {
		t.Fatalf("health_transitions_down_total = %d, want 1", v)
	}
	if v := reg.Counter("arbiter_marked_down_total").Value(); v != 1 {
		t.Fatalf("arbiter_marked_down_total = %d, want 1", v)
	}
	if v := reg.Gauge("arbiter_ions_live").Value(); v != 11 {
		t.Fatalf("arbiter_ions_live = %d, want 11", v)
	}
	if v := reg.Counter("fwd_bytes_out_total" + appLabel).Value(); v != total {
		t.Fatalf("fwd_bytes_out_total = %d, want %d (no write lost, none double-counted)", v, total)
	}
}

// TestChaosHangFailoverAndBreakerRecovery wedges a daemon with an injected
// network hang (rather than killing it): per-call deadlines convert the
// hang into failover, the breaker opens, and once the fault lifts the
// breaker's half-open probe restores forwarding.
func TestChaosHangFailoverAndBreakerRecovery(t *testing.T) {
	inj := faultnet.NewInjector(faultnet.Plan{})
	opts := rpc.Options{
		CallTimeout:      100 * time.Millisecond,
		MaxRetries:       1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
	}
	st, err := Start(Config{
		IONs:         1,
		Scheduler:    "FIFO",
		ChunkSize:    4096,
		RPC:          opts,
		WrapListener: func(_ int, ln net.Listener) net.Listener { return faultnet.WrapListener(ln, inj) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	client, err := st.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "app")); err != nil {
		t.Fatal(err)
	}
	// Everything routes through the single (wrapped) daemon.
	if err := WaitForAllocation(client, 1, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	if err := client.Create("/f"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	fill(0, buf)
	if _, err := client.Write("/f", 0, buf); err != nil {
		t.Fatalf("healthy write: %v", err)
	}

	reg := st.Telemetry
	inj.Set(faultnet.Plan{Kind: faultnet.Hang})
	fill(512, buf)
	if _, err := client.Write("/f", 512, buf); err != nil {
		t.Fatalf("write during hang must fail over: %v", err)
	}
	if v := reg.Counter("rpc_deadline_expired_total").Value(); v == 0 {
		t.Fatal("hang was not caught by a per-call deadline")
	}
	if v := reg.Counter("rpc_breaker_open_total").Value(); v < 1 {
		t.Fatalf("rpc_breaker_open_total = %d, want ≥1", v)
	}
	failoversDuringHang := reg.Counter(`fwd_failover_ops_total{app="app"}`).Value()
	if failoversDuringHang == 0 {
		t.Fatal("no failover during the hang")
	}

	// Lift the fault; after the cooldown the next call is the half-open
	// probe and must close the breaker and resume forwarding.
	inj.Set(faultnet.Plan{})
	time.Sleep(opts.BreakerCooldown + 50*time.Millisecond)
	fill(1024, buf)
	if _, err := client.Write("/f", 1024, buf); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if v := reg.Counter("rpc_breaker_close_total").Value(); v < 1 {
		t.Fatalf("rpc_breaker_close_total = %d, want ≥1 (breaker never recovered)", v)
	}
	if v := reg.Counter(`fwd_failover_ops_total{app="app"}`).Value(); v != failoversDuringHang {
		t.Fatalf("writes still failing over after recovery: %d → %d", failoversDuringHang, v)
	}

	// Byte conservation across healthy → hung → recovered phases.
	got := make([]byte, 1536)
	if n, err := client.Read("/f", 0, got); err != nil || n != len(got) {
		t.Fatalf("read back: n=%d err=%v", n, err)
	}
	for i := range got {
		if got[i] != pat(int64(i)) {
			t.Fatalf("byte %d corrupted after chaos: got %d want %d", i, got[i], pat(int64(i)))
		}
	}
}
