package livestack

// Elastic chaos scenario: the acceptance test of the capacity plane. A
// stack starts at the pool floor (2 IONs) with every backend slowed so
// queue depth is a real, observable demand signal. A burst of 32 writers
// across 4 applications pushes sustained depth over the scale-up
// watermark and the pool must breathe out to its ceiling (12 IONs) —
// through a nemesis provisioner that fails some spawns. When the burst
// ends the signal collapses and the pool must breathe back in to the
// floor through graceful drains — while the nemesis kills a draining ION
// mid-flight (the drain must abort into MarkDown, never decommission a
// corpse it still counts, and the warm-restarted node must drain cleanly
// later). Properties asserted at the end:
//
//   - byte conservation — every acked write of all 4 apps is on the PFS
//     and readable through the clients, bit-exact, across every remap,
//     spawn, drain, kill, and decommission;
//   - the pool actually breathed 2→12→2: scale-up and scale-down counts
//     are within the flap budget (no thrash), and re-arbitration stayed
//     bounded;
//   - the chaos was real: ≥1 drain aborted by a mid-drain kill, ≥1
//     provisioning failure injected and counted;
//   - the scaler's counters balance: drains started = drains completed +
//     drains aborted, arbiter adds/removes mirror scaler ups/downs, and
//     every terminal gauge is back at rest.
//
// `make elastic` runs this twice under the race detector.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/elastic"
	"repro/internal/fwd"
	"repro/internal/ion"
	"repro/internal/pfs"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// flakyProvisioner is the nemesis seam: it fails chosen Provision calls
// (deterministically, by call number) and passes the rest through to the
// livestack-backed provisioner.
type flakyProvisioner struct {
	inner elastic.Provisioner
	calls atomic.Int64
	fails atomic.Int64
}

func (p *flakyProvisioner) Provision() (string, error) {
	n := p.calls.Add(1)
	if n == 2 || n == 5 {
		p.fails.Add(1)
		return "", fmt.Errorf("nemesis: provisioning outage (call %d)", n)
	}
	return p.inner.Provision()
}

func (p *flakyProvisioner) Decommission(addr string) error { return p.inner.Decommission(addr) }

// slowFS and slowBackend inject a test-controlled write latency. The
// burst runs with service time far above the client-side cost of issuing
// an op, so queues are deep and service-bound — then the test drops the
// delay to zero the instant the burst ends, so demand collapses as a
// cliff rather than a decaying tail. (Under a slow tail the stragglers
// concentrate on the shrinking pool and make regrowth the CORRECT
// scaling decision; this scenario is probing the breathe, so the
// workload must vanish unambiguously.) The direct-to-PFS path gets the
// same latency: an unallocated app otherwise writes at in-memory line
// rate — a PFS no machine offers — and on a small CI box its spinning
// writers starve the queue signal everything else depends on.
type slowFS struct {
	pfs.FileSystem
	delay *atomic.Int64 // nanoseconds
}

func (f *slowFS) sleep() {
	if d := time.Duration(f.delay.Load()); d > 0 {
		time.Sleep(d)
	}
}

func (f *slowFS) Write(path string, off int64, p []byte) (int, error) {
	f.sleep()
	return f.FileSystem.Write(path, off, p)
}

type slowBackend struct {
	slowFS
	inner ion.Backend
}

func (b *slowBackend) WriteAs(writer, path string, off int64, p []byte) (int, error) {
	b.sleep()
	return b.inner.WriteAs(writer, path, off, p)
}

// waitGauge polls a gauge until it reaches want or the deadline passes.
// On timeout it dumps the capacity plane's whole state — the elastic and
// arbiter series plus the live pool — so a hung breathe is diagnosable
// from the failure log alone.
func waitGauge(t *testing.T, st *Stack, name string, want int64, timeout time.Duration, why string) {
	t.Helper()
	reg := st.Telemetry
	deadline := time.Now().Add(timeout)
	for {
		if v := reg.Gauge(name).Value(); v == want {
			return
		}
		if time.Now().After(deadline) {
			var dump strings.Builder
			for _, s := range []string{
				"elastic_pool_size", "elastic_provisioning", "elastic_draining",
			} {
				fmt.Fprintf(&dump, "  %s = %d\n", s, reg.Gauge(s).Value())
			}
			for _, s := range []string{
				"elastic_scale_ups_total", "elastic_scale_downs_total",
				"elastic_drains_started_total", "elastic_drains_aborted_total",
				"elastic_drains_forced_total", "elastic_drains_refused_total",
				"elastic_provisions_started_total", "elastic_provision_failures_total",
				"elastic_provision_rollbacks_total", "elastic_provision_breaker_opens_total",
				"arbiter_ions_added_total", "arbiter_ions_removed_total",
				"arbiter_solves_total",
			} {
				fmt.Fprintf(&dump, "  %s = %d\n", s, reg.Counter(s).Value())
			}
			fmt.Fprintf(&dump, "  arbiter pool = %v\n", st.Arbiter.Pool())
			fmt.Fprintf(&dump, "  arbiter draining = %v\n", st.Arbiter.Draining())
			fmt.Fprintf(&dump, "  scaler members = %v\n", st.Scaler.Members())
			fmt.Fprintf(&dump, "  health load = %v\n", st.Health.Load())
			t.Fatalf("%s: %s = %d, want %d (waited %v)\ncapacity plane at timeout:\n%s",
				why, name, reg.Gauge(name).Value(), want, timeout, dump.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestElasticPoolBreathesUnderChaos(t *testing.T) {
	const (
		minPool = 2
		maxPool = 12
		// ION assignment is exclusive per app (the paper's arbitration
		// model), so the app count must fit the pool floor.
		appsN         = 2
		writersPerApp = 24
		segsPer       = 24
		segSize       = 8192
	)
	var flaky *flakyProvisioner
	var writeDelay atomic.Int64
	writeDelay.Store(int64(50 * time.Millisecond))
	st, err := Start(Config{
		IONs:        minPool,
		Scheduler:   "FIFO",
		ChunkSize:   segSize,
		Dispatchers: 1,
		// One request rides per pooled connection, so the pool must fit
		// the writer parallelism — otherwise demand queues invisibly on
		// the client side and the prober's depth samples (the scaler's
		// whole signal) read near zero however hard the burst pushes.
		PoolSize:  writersPerApp,
		Telemetry: telemetry.New(),
		RPC: rpc.Options{
			CallTimeout:      10 * time.Second,
			MaxRetries:       2,
			RetryBackoff:     time.Millisecond,
			RetryBackoffMax:  5 * time.Millisecond,
			BreakerThreshold: 4,
			BreakerCooldown:  100 * time.Millisecond,
		},

		HealthInterval:      10 * time.Millisecond,
		HealthTimeout:       250 * time.Millisecond,
		HealthFailThreshold: 2,
		HealthRiseThreshold: 2,

		// Every backend — initial and spawned alike — is slow, so writes
		// queue and the prober's depth samples carry a real demand signal.
		// The delay must dominate the client-side cost of issuing an op:
		// queues then stay deep (service-bound, ~writers − pool in queue)
		// and the signal cannot trough on scheduler noise mid-burst.
		WrapBackend: func(i int, b ion.Backend) ion.Backend {
			return &slowBackend{slowFS: slowFS{FileSystem: b, delay: &writeDelay}, inner: b}
		},
		WrapDirect: func(fs pfs.FileSystem) pfs.FileSystem {
			return &slowFS{FileSystem: fs, delay: &writeDelay}
		},

		Elastic: &elastic.Config{
			Min: minPool, Max: maxPool,
			UpWatermark:   1.0,
			DownWatermark: 0.2,
			UpSustain:     2,
			DownSustain:   5,
			UpCooldown:    100 * time.Millisecond,
			DownCooldown:  150 * time.Millisecond,
			// Each add re-arbitrates, and the remap stall starves the depth
			// signal for longer than DownSustain — the reversal gate is what
			// keeps the breath-out monotonic (see TestFlipQuietDampsReversal).
			FlipQuiet: 600 * time.Millisecond,
			MaxStep:   2,
			Interval:  20 * time.Millisecond,

			// 6 sweeps × 20ms = 120ms of mandatory quiet per drain: wide
			// enough that the nemesis below reliably lands its kill while
			// the drain is still in flight.
			DrainDeadline: 5 * time.Second,
			QuiesceSweeps: 6,

			RiseTimeout:         5 * time.Second,
			ProvisionBackoff:    25 * time.Millisecond,
			ProvisionBackoffMax: 100 * time.Millisecond,
			BreakerThreshold:    5,
			BreakerCooldown:     250 * time.Millisecond,
			Seed:                42,
		},
		WrapProvisioner: func(inner elastic.Provisioner) elastic.Provisioner {
			flaky = &flakyProvisioner{inner: inner}
			return flaky
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := st.Telemetry

	labels := []string{"IOR-MPI", "BT-C"}
	clients := make([]*fwd.Client, appsN)
	paths := make([]string, appsN)
	for a := 0; a < appsN; a++ {
		id := fmt.Sprintf("app%d", a)
		if _, err := st.Arbiter.JobStarted(appFor(t, labels[a], id)); err != nil {
			t.Fatal(err)
		}
		c, err := st.NewClient(id)
		if err != nil {
			t.Fatal(err)
		}
		// At the pool floor the solver may give the second app nothing —
		// the paper's on-demand model: an unallocated app forwards direct
		// to the PFS until a later re-arbitration hands it nodes. Only the
		// first app is guaranteed an allocation at the floor.
		if a == 0 {
			if err := waitForSomeAllocation(c, 2*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		paths[a] = "/elastic/" + id
		if err := c.Create(paths[a]); err != nil {
			t.Fatal(err)
		}
		clients[a] = c
	}

	// The burst: 8 writers per app rewrite their disjoint regions in
	// round-robin until told to stop, but never stop before one full pass
	// — so the final verification window is always completely acked.
	// Rewrites carry identical bytes (pat is a function of offset alone),
	// so any remap/retry interleaving is idempotent.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for a := 0; a < appsN; a++ {
		for w := 0; w < writersPerApp; w++ {
			wg.Add(1)
			go func(c *fwd.Client, path string, w int) {
				defer wg.Done()
				seg := make([]byte, segSize)
				for iter := 0; ; iter++ {
					if iter >= segsPer {
						select {
						case <-stop:
							return
						default:
						}
					}
					off := int64(w*segsPer+iter%segsPer) * segSize
					fill(off, seg)
					if n, err := c.Write(path, off, seg); err != nil || n != segSize {
						t.Errorf("%s writer %d: n=%d err=%v", path, w, n, err)
						return
					}
				}
			}(clients[a], paths[a], w)
		}
	}

	// Breathe out: sustained depth over the watermark must grow the pool
	// to its ceiling, through the flaky provisioner.
	waitGauge(t, st, "elastic_pool_size", maxPool, 90*time.Second,
		"burst never grew the pool to max")
	t.Logf("at max: ups=%d downs=%d solves=%d",
		reg.Counter("elastic_scale_ups_total").Value(),
		reg.Counter("elastic_scale_downs_total").Value(),
		reg.Counter("arbiter_solves_total").Value())
	writeDelay.Store(0) // the demand cliff: in-flight passes finish fast
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Breathe in, under fire: the signal collapses and drains begin. The
	// nemesis kills the first draining ION it can catch mid-flight; the
	// drain must abort (never decommission), the node stays a down member.
	killed := map[string]bool{}
	abortSeen := false
	for attempt := 0; attempt < 5 && !abortSeen; attempt++ {
		// Wait for a FRESH drain — one started after this point — so the
		// kill lands early in its 120ms quiesce window. Killing a drain
		// that is already about to decommission proves nothing: the node
		// leaves cleanly before the prober can see the corpse.
		base := reg.Counter("elastic_drains_started_total").Value()
		victim := ""
		vDeadline := time.Now().Add(20 * time.Second)
		for victim == "" && time.Now().Before(vDeadline) {
			if reg.Counter("elastic_drains_started_total").Value() > base {
				for _, a := range st.Arbiter.Draining() {
					if !killed[a] {
						victim = a
						break
					}
				}
			}
			if victim == "" {
				time.Sleep(200 * time.Microsecond)
			}
		}
		if victim == "" {
			break
		}
		killed[victim] = true
		if d := st.DaemonAt(victim); d != nil {
			d.Close()
		}
		aDeadline := time.Now().Add(3 * time.Second)
		for !abortSeen && time.Now().Before(aDeadline) {
			if reg.Counter("elastic_drains_aborted_total").Value() >= 1 {
				abortSeen = true
			} else {
				time.Sleep(time.Millisecond)
			}
		}
	}
	if !abortSeen {
		t.Fatal("nemesis never caught a drain mid-flight: no drain aborted")
	}

	// Warm-restart every corpse that is still a member so the pool can
	// finish shrinking (a down member can neither drain nor leave).
	for addr := range killed {
		// Let the corpse's own drain resolve first: the abort lands only
		// after the prober marks it down, and a restart is refused while
		// the drain is still in flight.
		rDeadline := time.Now().Add(5 * time.Second)
		for st.Arbiter.IsDraining(addr) && time.Now().Before(rDeadline) {
			time.Sleep(time.Millisecond)
		}
		if !contains(st.Scaler.Members(), addr) {
			continue // its drain completed before the kill landed
		}
		idx := -1
		for i, a := range st.IONAddrs() {
			if a == addr {
				idx = i
				break
			}
		}
		if err := st.RestartION(idx); err != nil {
			t.Fatalf("restart of killed member %s: %v", addr, err)
		}
	}

	waitGauge(t, st, "elastic_pool_size", minPool, 60*time.Second,
		"pool never shrank back to min after the burst")
	waitGauge(t, st, "elastic_draining", 0, 10*time.Second, "drains still pending at rest")
	waitGauge(t, st, "elastic_provisioning", 0, 10*time.Second, "provisions still pending at rest")

	// Freeze the capacity plane before the audit: the verification reads
	// below push real queue depth, and a live scaler would (correctly)
	// start a new breath under the assertions' feet.
	st.Scaler.Stop()
	t.Logf("at rest: ups=%d downs=%d solves=%d",
		reg.Counter("elastic_scale_ups_total").Value(),
		reg.Counter("elastic_scale_downs_total").Value(),
		reg.Counter("arbiter_solves_total").Value())

	// Byte conservation and zero lost acked writes: every writer finished
	// at least one full pass over its region, so every byte of every
	// region was acked — all of it must now be exactly pat, both through
	// the forwarding clients and straight from the PFS.
	const appBytes = writersPerApp * segsPer * segSize
	for a := 0; a < appsN; a++ {
		got := make([]byte, appBytes)
		if n, err := clients[a].Read(paths[a], 0, got); err != nil || n != appBytes {
			t.Fatalf("read %s through client: n=%d err=%v", paths[a], n, err)
		}
		for i := range got {
			if got[i] != pat(int64(i)) {
				t.Fatalf("%s byte %d corrupted: got %d want %d", paths[a], i, got[i], pat(int64(i)))
			}
		}
		direct := make([]byte, appBytes)
		if n, err := st.Store.Read(paths[a], 0, direct); err != nil || n != appBytes {
			t.Fatalf("read %s from store: n=%d err=%v", paths[a], n, err)
		}
		for i := range direct {
			if direct[i] != pat(int64(i)) {
				t.Fatalf("%s byte %d lost on the PFS: got %d want %d", paths[a], i, direct[i], pat(int64(i)))
			}
		}
	}

	// Flap audit: one breath out and one breath in, not a thrash loop.
	// 2→12 is exactly 10 promotions; the demand cliff at burst end leaves
	// no tail that could justify regrowth, so the budget allows only a
	// little slack, not a second cycle.
	ups := reg.Counter("elastic_scale_ups_total").Value()
	downs := reg.Counter("elastic_scale_downs_total").Value()
	const grow = maxPool - minPool
	if ups < grow || ups > grow+2 {
		t.Errorf("elastic_scale_ups_total = %d, want %d (±2 flap budget)", ups, grow)
	}
	// The pool starts and ends at the floor with nothing in flight, so
	// every promotion was matched by exactly one decommission.
	if downs != ups {
		t.Errorf("elastic_scale_downs_total = %d, want exactly the %d ups (pool is back at the floor)", downs, ups)
	}
	if solves := reg.Counter("arbiter_solves_total").Value(); solves > 120 {
		t.Errorf("arbiter_solves_total = %d — re-arbitration is not bounded", solves)
	}

	// The chaos was real and was counted.
	if flaky.fails.Load() < 2 {
		t.Errorf("nemesis injected only %d provisioning failures, want 2", flaky.fails.Load())
	}
	if v := reg.Counter("elastic_provision_failures_total").Value(); v < flaky.fails.Load() {
		t.Errorf("elastic_provision_failures_total = %d, nemesis injected %d", v, flaky.fails.Load())
	}
	if v := reg.Counter("elastic_drains_aborted_total").Value(); v < 1 {
		t.Errorf("elastic_drains_aborted_total = %d, want ≥ 1 (the mid-drain kill)", v)
	}

	// Counter audit: the drain ledger balances and both planes agree.
	started := reg.Counter("elastic_drains_started_total").Value()
	aborted := reg.Counter("elastic_drains_aborted_total").Value()
	if started != downs+aborted {
		t.Errorf("drain ledger imbalance: %d started != %d completed + %d aborted", started, downs, aborted)
	}
	if added := reg.Counter("arbiter_ions_added_total").Value(); added != ups {
		t.Errorf("arbiter_ions_added_total = %d, scaler promoted %d", added, ups)
	}
	if removed := reg.Counter("arbiter_ions_removed_total").Value(); removed != downs {
		t.Errorf("arbiter_ions_removed_total = %d, scaler decommissioned %d", removed, downs)
	}
	if got := len(st.Arbiter.Pool()); got != minPool {
		t.Errorf("arbiter pool has %d IONs at rest, want %d", got, minPool)
	}
	if v := reg.Gauge("arbiter_ions_draining").Value(); v != 0 {
		t.Errorf("arbiter_ions_draining = %d at rest, want 0", v)
	}
}

// TestElasticZeroConfigKeepsStaticPool pins the default-off contract:
// without an Elastic config the stack is the pre-elastic static pool —
// no scaler, no elastic metric series, membership fixed.
func TestElasticZeroConfigKeepsStaticPool(t *testing.T) {
	st := startStack(t, 3)
	if st.Scaler != nil {
		t.Fatal("zero-config stack started a scaler")
	}
	if _, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "static")); err != nil {
		t.Fatal(err)
	}
	c, err := st.NewClient("static")
	if err != nil {
		t.Fatal(err)
	}
	if err := waitForSomeAllocation(c, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("/static"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("/static", 0, []byte("unchanged")); err != nil {
		t.Fatal(err)
	}
	snap := st.Telemetry.Snapshot()
	for name := range snap.Counters {
		if strings.HasPrefix(name, "elastic_") {
			t.Errorf("zero-config stack registered %s", name)
		}
	}
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "elastic_") {
			t.Errorf("zero-config stack registered %s", name)
		}
	}
	if got := len(st.IONAddrs()); got != 3 {
		t.Fatalf("static pool size changed: %d IONs, want 3", got)
	}
}

// TestElasticRequiresHealthProber pins the config cross-check: the scaler
// feeds on prober load samples, so Elastic without HealthInterval is a
// startup error, not a silent no-op.
func TestElasticRequiresHealthProber(t *testing.T) {
	_, err := Start(Config{
		IONs:    2,
		Elastic: &elastic.Config{Min: 2, Max: 4, UpWatermark: 1, DownWatermark: 0.5, Quiesced: func(string) bool { return true }},
	})
	if err == nil || !strings.Contains(err.Error(), "HealthInterval") {
		t.Fatalf("Elastic without HealthInterval: err = %v, want HealthInterval complaint", err)
	}
}

// TestWaitForAllocationDeadlineAndDiagnostics is the regression test for
// the polling-wait bugfix: the wait must respect its deadline (backoff
// never sleeps past it) and the timeout error must carry the mapping the
// client last observed.
func TestWaitForAllocationDeadlineAndDiagnostics(t *testing.T) {
	st := startStack(t, 2)
	c, err := st.NewClient("lonely")
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	err = WaitForAllocation(c, 2, 40*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("no allocation was ever published, want a timeout error")
	}
	if !strings.Contains(err.Error(), "last mapping") || !strings.Contains(err.Error(), "0 nodes") {
		t.Errorf("timeout error does not carry the last observed mapping: %v", err)
	}
	if elapsed > time.Second {
		t.Errorf("40ms wait took %v — backoff slept past the deadline", elapsed)
	}

	// The success path is still prompt once a mapping lands.
	if _, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "lonely")); err != nil {
		t.Fatal(err)
	}
	if err := waitForSomeAllocation(c, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}
