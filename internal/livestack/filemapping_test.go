package livestack

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fwd"
	"repro/internal/mapping"
	"repro/internal/perfmodel"
	"repro/internal/policy"
)

// TestFileBasedMappingDistribution wires the production GekkoFWD flow end
// to end: the arbiter publishes to the bus, a FileSink mirrors decisions
// into a mapping file, a polling Watcher (the client-side thread that
// checks "every 10 s by default", shortened here) picks them up, and the
// forwarding client applies them.
func TestFileBasedMappingDistribution(t *testing.T) {
	st, err := Start(Config{IONs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	mapPath := filepath.Join(t.TempDir(), "gkfwd.map")
	stopSink := mapping.FileSink(st.Bus, mapPath, nil)
	defer stopSink()

	client, err := fwd.NewClient(fwd.Config{AppID: "filejob", Direct: st.Store})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	w := mapping.NewWatcher(mapPath, 5*time.Millisecond)
	defer w.Stop()
	cancel := client.Watch(w.Updates())
	defer cancel()

	spec, err := perfmodel.AppByLabel("IOR-MPI")
	if err != nil {
		t.Fatal(err)
	}
	assigned, err := st.Arbiter.JobStarted(policy.FromAppSpec("filejob", spec))
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitForAllocation(client, len(assigned), 3*time.Second); err != nil {
		t.Fatalf("file-based mapping never reached the client: %v", err)
	}

	// Traffic flows through the file-assigned I/O nodes.
	if _, err := client.Write("/filejob/x", 0, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	var daemonBytes int64
	for _, d := range st.Daemons {
		daemonBytes += d.Stats().BytesIn
	}
	if daemonBytes != 64<<10 {
		t.Fatalf("daemons saw %d bytes", daemonBytes)
	}

	// A reallocation travels the same path.
	if err := st.Arbiter.JobFinished("filejob"); err != nil {
		t.Fatal(err)
	}
	if err := WaitForAllocation(client, 0, 3*time.Second); err != nil {
		t.Fatalf("release never reached the client: %v", err)
	}
}
