package livestack

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/darshan"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/units"
)

// TestFirstRunCharacterizationPipeline exercises the paper's §3.1 data
// path on the live stack:
//
//  1. an unknown application runs with the machine default (MCKP's
//     fallback), traced by the Darshan-style wrapper;
//  2. its access pattern is extracted from the trace and the performance
//     model estimates its full bandwidth curve;
//  3. the next arbitration uses the learned curve, and the decision
//     differs from the default (the system got smarter without
//     profiling runs).
func TestFirstRunCharacterizationPipeline(t *testing.T) {
	st, err := Start(Config{IONs: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// --- Run 1: no curve data. MCKP falls back to the STATIC default.
	unknown := policy.Application{ID: "newapp", Nodes: 8, Processes: 32}
	assigned, err := st.Arbiter.JobStarted(unknown)
	if err != nil {
		t.Fatal(err)
	}
	if len(assigned) == 0 {
		t.Fatal("fallback should assign the machine default, not zero")
	}
	client, err := st.NewClient("newapp")
	if err != nil {
		t.Fatal(err)
	}
	if err := WaitForAllocation(client, len(assigned), 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// Trace the first execution through the forwarding client.
	tracer := darshan.NewTracer(client)
	kernel := apps.IOR{ // a small shared-file workload
		Label: "newapp", Ranks: 32,
		BlockSize: 256 * units.KiB, TransferSize: 32 * units.KiB,
	}
	if _, err := kernel.Run(tracer, "/newapp/run1"); err != nil {
		t.Fatal(err)
	}
	if err := st.Arbiter.JobFinished("newapp"); err != nil {
		t.Fatal(err)
	}

	// --- Characterize: trace → pattern → estimated curve.
	report := tracer.Report()
	pat := report.ExtractPattern(unknown.Nodes, unknown.Processes)
	if pat.Validate() != nil {
		t.Fatalf("extracted pattern invalid: %+v", pat)
	}
	curve := darshan.EstimateCurve(pat, perfmodel.Default(), 8, true)
	if curve.Len() == 0 {
		t.Fatal("no curve estimated")
	}

	// --- Run 2: the arbiter now has real options for this application.
	known := unknown
	known.Curve = curve
	second, err := st.Arbiter.JobStarted(known)
	if err != nil {
		t.Fatal(err)
	}
	want := curve.Best().IONs
	if len(second) != want {
		t.Fatalf("informed arbitration should give the curve optimum (%d), got %d", want, len(second))
	}
	t.Logf("first run (default): %d IONs; after characterization (%s): %d IONs",
		len(assigned), pat, len(second))
}
