package livestack

// Gray-failure acceptance scenario (`make grayfail`): a 12-ION stack
// with fail-slow detection, quarantine arbitration, and hedged requests
// on; one ION ramps to ~50× latency mid-workload while staying fully
// alive — it answers every probe and every call, just slowly. The
// asserted properties:
//
//   - detection before the SLO breaches: the fail-slow scorer marks the
//     node degraded and the arbiter quarantines + re-steers within the
//     latency budget a gold-class tenant could tolerate;
//   - hedge wins: reads stuck behind the gray node are rescued by the
//     direct-PFS hedge at least once;
//   - zero double-applies: a per-byte apply-count oracle on every ION's
//     backend (the torture suite's oracle) proves no hedged or retried
//     write applied twice — every segment here is acknowledged on its
//     first app-level attempt, so any count > 1 is a dedup failure;
//   - bounded p99: once traffic is steered off the gray node, the write
//     tail no longer pays the injected latency;
//   - full recovery: when the fault lifts, hysteresis clears the mark
//     and the node returns to the allocatable pool.
//
// `make grayfail` runs this twice under the race detector. Reproduce a
// failing run with GRAYFAIL_SEED=<n> make grayfail.

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/fwd"
	"repro/internal/ion"
	"repro/internal/rpc"
)

// grayfailSeed returns the scenario seed: GRAYFAIL_SEED when set, else 1
// so CI runs are deterministic.
func grayfailSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("GRAYFAIL_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("GRAYFAIL_SEED=%q: %v", s, err)
		}
		return v
	}
	return 1
}

// grayOracle wraps one I/O node's backend and counts, per byte, how many
// times this node applied a write covering it — the same oracle the
// torture suite uses to pin exactly-once semantics.
type grayOracle struct {
	ion.Backend
	mu    sync.Mutex
	cover map[string][]uint8
}

func (o *grayOracle) record(path string, off int64, n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.cover[path]
	if need := int(off) + n; len(s) < need {
		s = append(s, make([]uint8, need-len(s))...)
	}
	for i := 0; i < n; i++ {
		if s[int(off)+i] < 255 {
			s[int(off)+i]++
		}
	}
	o.cover[path] = s
}

func (o *grayOracle) Write(path string, off int64, p []byte) (int, error) {
	o.record(path, off, len(p))
	return o.Backend.Write(path, off, p)
}

func (o *grayOracle) WriteAs(writer, path string, off int64, p []byte) (int, error) {
	o.record(path, off, len(p))
	return o.Backend.WriteAs(writer, path, off, p)
}

// maxCover returns the highest per-byte apply count recorded for path.
func (o *grayOracle) maxCover(path string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	max := 0
	for _, c := range o.cover[path] {
		if int(c) > max {
			max = int(c)
		}
	}
	return max
}

func TestGrayFailureDetectQuarantineHedgeRecover(t *testing.T) {
	seed := grayfailSeed(t)
	rng := rand.New(rand.NewSource(seed))

	const (
		ions      = 12
		segSize   = 4096 // one chunk: each segment lands on one ION
		file      = "/gray"
		grayDelay = 40 * time.Millisecond // ~50×: healthy loopback ops sit well under 1ms
		grayRamp  = 500 * time.Millisecond
		sloBudget = 8 * time.Second // detection + re-steer must land inside this
	)

	injs := make([]*faultnet.Injector, ions)
	oracles := make([]*grayOracle, ions)
	st, err := Start(Config{
		IONs:      ions,
		Scheduler: "FIFO",
		ChunkSize: segSize,
		// Generous deadlines: the gray node must stay *alive* — if the
		// per-call deadline converted slowness into failure, this would
		// collapse into the fail-stop chaos scenario and test nothing new.
		RPC: rpc.Options{
			CallTimeout:      2 * time.Second,
			MaxRetries:       2,
			RetryBackoff:     time.Millisecond,
			RetryBackoffMax:  10 * time.Millisecond,
			BreakerThreshold: 50,
			BreakerCooldown:  100 * time.Millisecond,
		},

		HealthInterval:      20 * time.Millisecond,
		HealthTimeout:       time.Second,
		HealthFailThreshold: 3,
		HealthRiseThreshold: 2,

		DedupWindow: 256,

		SlowFactor:      8,
		SlowWindow:      3,
		SlowRecovery:    3,
		QuarantineFloor: 4,
		Hedge: fwd.HedgeConfig{
			Enabled:   true,
			Pct:       0.9,
			Budget:    0.5,
			MaxTokens: 16,
		},

		WrapListener: func(i int, ln net.Listener) net.Listener {
			injs[i] = faultnet.NewInjector(faultnet.Plan{})
			return faultnet.WrapListener(ln, injs[i])
		},
		WrapBackend: func(i int, b ion.Backend) ion.Backend {
			oracles[i] = &grayOracle{Backend: b, cover: map[string][]uint8{}}
			return oracles[i]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := st.Telemetry

	client, err := st.NewClient("gray")
	if err != nil {
		t.Fatal(err)
	}
	allocated, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "gray"))
	if err != nil {
		t.Fatal(err)
	}
	if len(allocated) == 0 {
		t.Fatal("no allocation")
	}
	if err := waitForSomeAllocation(client, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := client.Create(file); err != nil {
		t.Fatal(err)
	}

	// The seed picks the victim among the allocated IONs, so every run
	// hits a node that actually carries this app's traffic.
	victim := allocated[rng.Intn(len(allocated))]
	victimIdx := -1
	for i, a := range st.Addrs {
		if a == victim {
			victimIdx = i
		}
	}
	if victimIdx < 0 {
		t.Fatalf("victim %s not in stack addrs", victim)
	}

	seg := make([]byte, segSize)
	segs := 0
	writeSeg := func() time.Duration {
		off := int64(segs) * segSize
		fill(off, seg)
		start := time.Now()
		n, err := client.Write(file, off, seg)
		if err != nil || n != segSize {
			t.Fatalf("write segment %d: n=%d err=%v", segs, n, err)
		}
		segs++
		return time.Since(start)
	}

	// Phase A — healthy baseline: fills the shared latency sketch with
	// peer-relative evidence (probe RTTs are flowing too).
	for i := 0; i < 4*ions; i++ {
		writeSeg()
	}

	// Phase B — gray failure: the victim's latency ramps toward ~50× on
	// both directions while it keeps answering everything. The workload
	// never stops; reads give the direct-PFS hedge races to win.
	injs[victimIdx].Set(faultnet.Plan{
		Kind:  faultnet.Slow,
		Delay: grayDelay,
		Ramp:  grayRamp,
		Seed:  seed,
	})
	faultStart := time.Now()
	rbuf := make([]byte, 8*segSize)
	detected := false
	for time.Since(faultStart) < sloBudget {
		writeSeg()
		// Read a stripe of earlier segments: spans routed at the gray
		// node must be rescued by the hedge.
		if segs%4 == 0 {
			if n, err := client.Read(file, 0, rbuf); err != nil || n != len(rbuf) {
				t.Fatalf("read during gray failure: n=%d err=%v", n, err)
			}
		}
		if !contains(client.IONs(), victim) && len(client.IONs()) > 0 {
			detected = true
			break
		}
	}
	detectLatency := time.Since(faultStart)
	if !detected {
		t.Fatalf("SLO breach: client still mapped to gray ION %s after %v (degraded_ions=%d quarantined=%d)",
			victim, sloBudget,
			reg.Gauge("health_degraded_ions").Value(),
			reg.Counter("arbiter_quarantine_marked_total").Value())
	}
	t.Logf("gray ION detected, quarantined, and steered away from in %v (seed %d)", detectLatency, seed)

	// The detection and the quarantine are observable, and the published
	// mapping no longer hands out the gray node.
	if v := reg.Counter("health_degraded_transitions_total").Value(); v < 1 {
		t.Fatalf("health_degraded_transitions_total = %d, want ≥1", v)
	}
	if v := reg.Gauge("health_degraded_ions").Value(); v != 1 {
		t.Fatalf("health_degraded_ions = %d, want 1", v)
	}
	if v := reg.Counter("arbiter_quarantine_marked_total").Value(); v < 1 {
		t.Fatalf("arbiter_quarantine_marked_total = %d, want ≥1", v)
	}
	if v := reg.Gauge("arbiter_quarantine_ions").Value(); v != 1 {
		t.Fatalf("arbiter_quarantine_ions = %d, want 1", v)
	}
	if m := st.Bus.Current().For("gray"); contains(m, victim) || len(m) == 0 {
		t.Fatalf("published mapping still hands out the gray ION: %v", m)
	}

	// Bounded p99 after the re-steer: the write tail must not pay the
	// injected gray latency once traffic is off the quarantined node.
	post := make([]time.Duration, 0, 200)
	for i := 0; i < 200; i++ {
		post = append(post, writeSeg())
	}
	sort.Slice(post, func(i, j int) bool { return post[i] < post[j] })
	if p99 := post[len(post)*99/100]; p99 >= grayDelay {
		t.Fatalf("post-quarantine write p99 = %v, want < %v (tail still pays the gray latency)", p99, grayDelay)
	}

	// Hedges fired and at least one read was rescued by the direct path.
	appLabel := fmt.Sprintf("{app=%q}", "gray")
	if v := reg.Counter("fwd_hedge_launched_total" + appLabel).Value(); v < 1 {
		t.Fatalf("fwd_hedge_launched_total = %d, want ≥1", v)
	}
	if v := reg.Counter("fwd_hedge_wins_total" + appLabel).Value(); v < 1 {
		t.Fatalf("fwd_hedge_wins_total = %d, want ≥1 (no hedge ever won)", v)
	}

	// Phase C — recovery: lift the fault; clean sweeps plus hysteresis
	// must restore the node to the allocatable pool.
	injs[victimIdx].Set(faultnet.Plan{})
	deadline := time.Now().Add(30 * time.Second)
	for reg.Gauge("arbiter_quarantine_ions").Value() != 0 ||
		reg.Gauge("health_degraded_ions").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("gray ION never restored: degraded_ions=%d quarantine_ions=%d restored=%d",
				reg.Gauge("health_degraded_ions").Value(),
				reg.Gauge("arbiter_quarantine_ions").Value(),
				reg.Counter("arbiter_quarantine_restored_total").Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := reg.Counter("health_degraded_recovered_total").Value(); v < 1 {
		t.Fatalf("health_degraded_recovered_total = %d, want ≥1", v)
	}
	if v := reg.Counter("arbiter_quarantine_restored_total").Value(); v < 1 {
		t.Fatalf("arbiter_quarantine_restored_total = %d, want ≥1", v)
	}

	// Exactly-once: every segment was acknowledged on its first app-level
	// attempt, so no ION may have applied any byte of the file twice —
	// hedged duplicates and transport retries must all have collapsed in
	// the dedup window.
	for i, o := range oracles {
		if m := o.maxCover(file); m > 1 {
			t.Fatalf("ion%02d applied bytes of %s up to %d times — a hedged write double-applied", i, file, m)
		}
	}

	// Byte conservation across healthy → gray → recovered phases.
	total := segs * segSize
	got := make([]byte, total)
	if n, err := client.Read(file, 0, got); err != nil || n != total {
		t.Fatalf("read back: n=%d err=%v", n, err)
	}
	for i := range got {
		if got[i] != pat(int64(i)) {
			t.Fatalf("byte %d corrupted: got %d want %d", i, got[i], pat(int64(i)))
		}
	}
	if v := reg.Counter("fwd_bytes_out_total" + appLabel).Value(); v != int64(total) {
		t.Fatalf("fwd_bytes_out_total = %d, want %d (no write lost, none double-counted)", v, total)
	}
}
