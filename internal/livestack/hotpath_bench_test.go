package livestack

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/units"
)

// BenchmarkHotPathWrite is the forwarding data-plane benchmark behind
// BENCH_hotpath.json (make bench-hotpath): one client forwarding
// 512 KiB writes — exactly one chunk at the default chunk size — through
// one live I/O node over loopback TCP into the in-memory PFS. Allocations
// are reported process-wide, so the figure covers the client encode path,
// the server decode path, the AGIOS queue, and the dispatcher together;
// the per-layer wire budget is enforced separately by
// rpc.BenchmarkWirePathWrite512K.
func BenchmarkHotPathWrite(b *testing.B) {
	for _, sz := range []struct {
		name string
		n    int64
	}{
		{"512K", 512 * units.KiB},
		{"64K", 64 * units.KiB},
	} {
		b.Run(sz.name, func(b *testing.B) {
			benchmarkHotPathWrite(b, sz.n)
		})
	}
}

func benchmarkHotPathWrite(b *testing.B, size int64) {
	st, err := Start(Config{IONs: 1, Scheduler: "FIFO"})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Arbiter.JobStarted(policy.Application{ID: "bench", Nodes: 1, Processes: 1}); err != nil {
		b.Fatal(err)
	}
	client, err := st.NewClient("bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := waitForSomeAllocation(client, 2*time.Second); err != nil {
		b.Fatal(err)
	}
	if err := client.Create("/bench/hot"); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, size)
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Write("/bench/hot", 0, payload); err != nil {
			b.Fatal(err)
		}
	}
}
