// Package livestack assembles the complete live forwarding system — PFS
// store, I/O-node daemons over TCP, mapping bus, arbiter — into one
// harness, used by the examples, the gkfwd command, and the end-to-end
// integration tests. It is the "mini cluster in a box" counterpart of the
// paper's Grid'5000 deployment.
package livestack

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/agios"
	"repro/internal/arbiter"
	"repro/internal/elastic"
	"repro/internal/fwd"
	"repro/internal/health"
	"repro/internal/ion"
	"repro/internal/journal"
	"repro/internal/latency"
	"repro/internal/mapping"
	"repro/internal/pfs"
	"repro/internal/policy"
	"repro/internal/qos"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// Config parameterizes a stack.
type Config struct {
	// IONs is the number of I/O-node daemons (paper §5.3: 12).
	IONs int
	// Policy arbitrates; nil selects MCKP.
	Policy policy.Policy
	// Scheduler names the AGIOS scheduler for the daemons ("FIFO",
	// "SJF", "AIOLI", "TWINS"); empty selects AIOLI, GekkoFWD's
	// aggregating default in this reproduction.
	Scheduler string
	// PFS configures the backing store; zero value = functional store.
	PFS pfs.Config
	// Dispatchers per I/O node; ≤0 selects the daemon default.
	Dispatchers int
	// Telemetry is the stack-wide metrics registry shared by every layer
	// (fwd clients, rpc, daemons, PFS, arbiter); nil creates one.
	Telemetry *telemetry.Registry
	// Tracer joins per-request hops across layers. Nil disables tracing
	// (metrics stay on); pass telemetry.NewTracer to record traces.
	Tracer *telemetry.Tracer

	// ChunkSize is the forwarding clients' request-splitting unit; ≤0
	// selects fwd.DefaultChunkSize.
	ChunkSize int64
	// PoolSize is each client's RPC connection pool per I/O node; ≤0
	// selects rpc.DefaultPoolSize. One request is in flight per
	// connection, so this caps a client's concurrency against one node —
	// size it to the application's writer parallelism when queue-depth
	// signals (overload detection, elastic scaling) must see the demand.
	PoolSize int
	// CoalesceLimit caps how many contiguous same-target bytes a client
	// merges into one wire request; ≤0 selects fwd.DefaultCoalesceLimit
	// (values above the frame ceiling are clamped by the client).
	CoalesceLimit int64
	// RPC is the failure-tolerance configuration (per-call deadlines,
	// retries, circuit breaker) applied to every forwarding client this
	// stack creates. The zero value keeps the legacy block-forever
	// transport behaviour.
	RPC rpc.Options

	// HealthInterval, when >0, runs a heartbeat prober over the daemons
	// and feeds up/down transitions into the arbiter (MarkDown/MarkUp),
	// closing the detect→re-arbitrate loop.
	HealthInterval time.Duration
	// HealthTimeout is the per-ping deadline; ≤0 lets the prober derive
	// it from the interval.
	HealthTimeout time.Duration
	// HealthFailThreshold / HealthRiseThreshold debounce transitions;
	// ≤0 selects the prober defaults.
	HealthFailThreshold int
	HealthRiseThreshold int

	// SlowFactor enables fail-slow (gray failure) detection on the
	// health prober: a node whose probe-RTT median exceeds the median of
	// its peers' medians × SlowFactor for SlowWindow consecutive sweeps
	// is marked degraded, and the arbiter quarantines it — excluded from
	// new allocations while it stays in the pool (MarkDegraded), restored
	// after SlowRecovery clean sweeps (MarkRestored). Requires
	// HealthInterval > 0. ≤0 keeps detection off, behavior byte for byte.
	SlowFactor float64
	// SlowWindow / SlowRecovery debounce degraded transitions; ≤0 selects
	// the prober defaults (3 slow sweeps in, 5 clean sweeps out).
	SlowWindow   int
	SlowRecovery int
	// QuarantineFloor is the live-capacity floor the quarantine may not
	// dig below (see arbiter.WithQuarantine); ≤0 selects 1. Only
	// meaningful with SlowFactor > 0.
	QuarantineFloor int
	// Hedge configures tail-tolerant hedged requests on every forwarding
	// client this stack creates (see fwd.HedgeConfig). Requires
	// DedupWindow > 0: the hedged write is a same-stamp duplicate that
	// only the daemon's dedup window makes exactly-once. When SlowFactor
	// is also set, clients and the prober share one latency sketch, so
	// probe RTTs and data-path RTTs pool into the same per-node
	// distribution the hedge deadline is drawn from.
	Hedge fwd.HedgeConfig

	// QueueCap bounds each daemon's AGIOS queue (requests); >0 enables
	// bounded admission — past the cap, requests are answered with a busy
	// response instead of queued. 0 keeps the legacy unbounded queue.
	QueueCap int
	// QueueLowWater is the drain level at which a saturated queue resumes
	// admitting; ≤0 selects half of QueueCap.
	QueueLowWater int
	// MaxInflight bounds concurrently-handled requests per daemon (shed
	// above it); 0 = unlimited.
	MaxInflight int
	// MaxConns bounds accepted client connections per daemon; 0 =
	// unlimited.
	MaxConns int
	// RetryAfterHint is carried on busy responses; ≤0 selects the daemon
	// default.
	RetryAfterHint time.Duration
	// Throttle configures adaptive per-ION client throttling (AIMD
	// window) on every forwarding client this stack creates. The zero
	// value disables throttling.
	Throttle fwd.ThrottleConfig

	// WireChecksum turns on CRC32C frame trailers end to end: daemons
	// checksum their responses, forwarding clients and the health prober
	// checksum their requests, and every reader verifies trailers it
	// sees. Off by default (zero-value wire compatibility).
	WireChecksum bool
	// DedupWindow enables exactly-once writes: forwarding clients stamp
	// each write with a (clientID, seq) identity and every daemon keeps a
	// window of that many committed outcomes per client, replaying them
	// on transport retries instead of re-applying. 0 disables (the
	// pre-integrity at-least-once behavior).
	DedupWindow int

	// OverloadQueueDepth / OverloadShedDelta / OverloadThreshold /
	// OverloadRecovery configure the prober's overload detection (see
	// health.Config); detected transitions feed the arbiter
	// (MarkOverloaded/MarkRecovered) so load is steered away from
	// saturated I/O nodes without removing them from the pool. Overload
	// detection requires HealthInterval > 0 and at least one of the two
	// signal thresholds.
	OverloadQueueDepth int
	OverloadShedDelta  int
	OverloadThreshold  int
	OverloadRecovery   int

	// JournalDir, when non-empty, makes the control plane crash-safe: the
	// arbiter appends every transition to a write-ahead journal in this
	// directory, and epoch fencing turns on end to end — forwarding
	// clients stamp writes with the mapping epoch, daemons reject writes
	// from revoked epochs, and CrashControlPlane/RecoverControlPlane
	// exercise the warm-restart path. Empty (the default) keeps the
	// pre-journal stack, behavior and wire format byte for byte.
	JournalDir string
	// JournalSnapshotEvery is the append count between compacting journal
	// snapshots; ≤0 selects the journal default (256). Only meaningful
	// with JournalDir.
	JournalSnapshotEvery int

	// QoS, when non-nil, is the stack's tenant policy (internal/qos):
	// clients created by NewClient get their app's class (token-bucket
	// admission + wire priority), the arbiter weights contended
	// allocations by class weight, and — unless Scheduler is set
	// explicitly — daemons run the WFQ scheduler so priorities take
	// effect. nil keeps the pre-QoS stack byte for byte.
	QoS *qos.Registry

	// Elastic, when non-nil, runs the pool autoscaler (internal/elastic):
	// the static pool becomes the floor state of a pool that breathes
	// with demand — SpawnION provisions new daemons, graceful drains
	// decommission idle ones. Requires HealthInterval > 0 (the scaler
	// feeds on the prober's load samples). The scaler's Quiesced and
	// Telemetry seams are filled in by the stack when unset. nil keeps
	// today's static pool byte for byte.
	Elastic *elastic.Config
	// WrapProvisioner, when non-nil, interposes on the scaler's
	// provisioner — the hook chaos tests use to inject provisioning
	// failures. Only meaningful with Elastic set.
	WrapProvisioner func(elastic.Provisioner) elastic.Provisioner

	// WrapListener, when non-nil, interposes on each daemon's listener
	// before it starts serving — the hook chaos tests use to inject
	// network faults (faultnet.WrapListener) on a chosen I/O node.
	WrapListener func(ionIndex int, ln net.Listener) net.Listener
	// WrapBackend, when non-nil, interposes on each daemon's storage
	// backend — the hook chaos tests use to slow one I/O node down
	// (faultfs) and force it into overload.
	WrapBackend func(ionIndex int, b ion.Backend) ion.Backend
	// WrapDirect, when non-nil, interposes on the file system clients use
	// for direct-to-PFS forwarding (no allocation, or failover). Without
	// it the direct path hits the in-memory store at line rate, which no
	// real PFS offers — chaos tests wrap it with the same injected
	// latency as the I/O-node backends.
	WrapDirect func(fs pfs.FileSystem) pfs.FileSystem
}

// Stack is a running live system.
type Stack struct {
	Store   *pfs.Store
	Bus     *mapping.Bus
	Arbiter *arbiter.Arbiter
	Daemons []*ion.Daemon
	Addrs   []string

	// Health is the heartbeat prober (nil unless Config.HealthInterval
	// was set). Its transitions drive Arbiter.MarkDown/MarkUp.
	Health *health.Prober

	// Scaler is the pool autoscaler (nil unless Config.Elastic was set).
	Scaler *elastic.Scaler

	// Journal is the control-plane write-ahead log (nil unless
	// Config.JournalDir was set). CrashControlPlane closes it;
	// RecoverControlPlane reopens and replays it.
	Journal *journal.Journal

	// Telemetry and Tracer are the stack-wide observability handles every
	// layer reports into; serve them with telemetry.Handler.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer

	cfg       Config
	schedName string

	// latSketch is the per-ION latency distribution shared by the health
	// prober's fail-slow scorer and the clients' hedge deadlines (nil
	// unless SlowFactor or Hedge opted in).
	latSketch *latency.Sketch

	// mu guards the mutable pool state below plus the Daemons/Addrs
	// slices, which the scaler's spawn path appends to concurrently with
	// test readers. Static stacks never mutate them after Start.
	mu             sync.Mutex
	clients        []*fwd.Client
	cancels        []func()
	nextION        int             // daemon index source for spawned IONs
	decommissioned map[string]bool // addrs of daemons gone for good
	lastAct        map[string]ionActivity
	fenceCancel    func() // stops the fence fan-out subscriber (journaling only)
}

// ionActivity is one quiescence sample of a daemon (see ionQuiesced).
type ionActivity struct {
	depth int
	ops   int64
}

// Start builds and starts the stack.
func Start(cfg Config) (*Stack, error) {
	if cfg.IONs <= 0 {
		return nil, fmt.Errorf("livestack: need at least one I/O node, got %d", cfg.IONs)
	}
	pol := cfg.Policy
	if pol == nil {
		pol = policy.MCKP{}
	}
	schedName := cfg.Scheduler
	if schedName == "" {
		if cfg.QoS != nil && !cfg.QoS.Empty() {
			schedName = "WFQ" // priorities are inert under a FIFO default
		} else {
			schedName = "AIOLI"
		}
	}

	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	tracer := cfg.Tracer // nil keeps tracing off

	st := &Stack{
		Store:          pfs.NewStore(cfg.PFS).Instrument(reg),
		Bus:            mapping.NewBus(),
		Telemetry:      reg,
		Tracer:         tracer,
		cfg:            cfg,
		schedName:      schedName,
		nextION:        cfg.IONs,
		decommissioned: map[string]bool{},
		lastAct:        map[string]ionActivity{},
	}
	if cfg.Elastic != nil && cfg.HealthInterval <= 0 {
		return nil, errors.New("livestack: Elastic requires HealthInterval > 0 (the scaler feeds on prober load samples)")
	}
	if cfg.SlowFactor > 0 && cfg.HealthInterval <= 0 {
		return nil, errors.New("livestack: SlowFactor requires HealthInterval > 0 (the fail-slow scorer feeds on probe RTTs)")
	}
	if cfg.QuarantineFloor > 0 && cfg.SlowFactor <= 0 {
		return nil, errors.New("livestack: QuarantineFloor requires SlowFactor > 0 (nothing quarantines without detection)")
	}
	if cfg.Hedge.Enabled && cfg.DedupWindow <= 0 {
		return nil, errors.New("livestack: Hedge requires DedupWindow > 0 (dedup is what makes a duplicated write exactly-once)")
	}
	if cfg.SlowFactor > 0 || cfg.Hedge.Enabled {
		st.latSketch = latency.NewSketch(0)
	}
	for i := 0; i < cfg.IONs; i++ {
		d, addr, err := st.newDaemon(i)
		if err != nil {
			st.Close()
			return nil, err
		}
		st.Daemons = append(st.Daemons, d)
		st.Addrs = append(st.Addrs, addr)
	}
	arb, err := arbiter.New(pol, st.Addrs, st.Bus)
	if err != nil {
		st.Close()
		return nil, err
	}
	st.Arbiter = arb.Instrument(reg)
	if cfg.QoS != nil && !cfg.QoS.Empty() {
		st.Arbiter.WithWeights(cfg.QoS.Weight)
	}
	if cfg.SlowFactor > 0 {
		st.Arbiter.WithQuarantine(cfg.QuarantineFloor)
	}

	if cfg.JournalDir != "" {
		jn, err := journal.Open(cfg.JournalDir, journal.Options{
			SnapshotEvery: cfg.JournalSnapshotEvery,
			Telemetry:     reg,
		})
		if err != nil {
			st.Close()
			return nil, err
		}
		st.Journal = jn
		st.Arbiter.WithJournal(jn)
		st.startFenceFanout()
	}

	if cfg.HealthInterval > 0 {
		if err := st.startHealth(st.Arbiter, st.Addrs); err != nil {
			st.Close()
			return nil, err
		}
	}
	if cfg.Elastic != nil {
		if err := st.startScaler(st.Arbiter, st.Addrs); err != nil {
			st.Close()
			return nil, err
		}
	}
	return st, nil
}

// startHealth builds and starts the heartbeat prober over addrs, feeding
// transitions into arb. Used at Start and again by RecoverControlPlane
// (the old prober died with the control plane).
func (s *Stack) startHealth(arb *arbiter.Arbiter, addrs []string) error {
	prober, err := health.New(health.Config{
		Addrs:              addrs,
		Interval:           s.cfg.HealthInterval,
		Timeout:            s.cfg.HealthTimeout,
		FailThreshold:      s.cfg.HealthFailThreshold,
		RiseThreshold:      s.cfg.HealthRiseThreshold,
		OverloadQueueDepth: s.cfg.OverloadQueueDepth,
		OverloadShedDelta:  s.cfg.OverloadShedDelta,
		OverloadThreshold:  s.cfg.OverloadThreshold,
		OverloadRecovery:   s.cfg.OverloadRecovery,
		SlowFactor:         s.cfg.SlowFactor,
		SlowWindow:         s.cfg.SlowWindow,
		SlowRecovery:       s.cfg.SlowRecovery,
		Latency:            s.latSketch,
		WireChecksum:       s.cfg.WireChecksum,
		Telemetry:          s.Telemetry,
		OnTransition: func(tr health.Transition) {
			// MarkDown/MarkUp errors are advisory here: even when a
			// re-solve fails, the arbiter has already published a
			// mapping that excludes down nodes.
			if tr.Up {
				arb.MarkUp(tr.Addr)
			} else {
				arb.MarkDown(tr.Addr)
			}
		},
		OnOverload: func(ov health.Overload) {
			// Errors are advisory for the same reason: an overloaded
			// node is still valid to route to, just undesirable.
			if ov.Overloaded {
				arb.MarkOverloaded(ov.Addr)
			} else {
				arb.MarkRecovered(ov.Addr)
			}
		},
		OnDegraded: func(dg health.Degradation) {
			// Advisory too: a fail-slow node still answers, just slowly.
			// The floor inside MarkDegraded may refuse the quarantine —
			// hedging then carries the tail until capacity returns.
			if dg.Degraded {
				arb.MarkDegraded(dg.Addr)
			} else {
				arb.MarkRestored(dg.Addr)
			}
		},
	})
	if err != nil {
		return err
	}
	s.Health = prober
	prober.Start()
	return nil
}

// startScaler builds and starts the pool autoscaler over arb and addrs.
// Used at Start and again by RecoverControlPlane.
func (s *Stack) startScaler(arb *arbiter.Arbiter, addrs []string) error {
	ecfg := *s.cfg.Elastic
	if ecfg.Telemetry == nil {
		ecfg.Telemetry = s.Telemetry
	}
	if ecfg.Quiesced == nil {
		ecfg.Quiesced = s.ionQuiesced
	}
	var prov elastic.Provisioner = (*stackProvisioner)(s)
	if s.cfg.WrapProvisioner != nil {
		prov = s.cfg.WrapProvisioner(prov)
	}
	sc, err := elastic.New(ecfg, arb, prov, s.Health, addrs)
	if err != nil {
		return err
	}
	s.Scaler = sc
	sc.Start()
	return nil
}

// startFenceFanout subscribes a background goroutine to the mapping bus
// that pushes the revocation floor of every published map to every
// daemon. The critical fence (recovery) is delivered synchronously via
// arbiter.RecoverConfig.PreFence before the recovery map goes out; this
// subscriber is the steady-state redundancy that keeps late joiners and
// warm-restarted daemons converging on the floor.
func (s *Stack) startFenceFanout() {
	ch, cancelSub := s.Bus.Subscribe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range ch {
			if m.Fence == 0 {
				continue
			}
			s.mu.Lock()
			daemons := append([]*ion.Daemon(nil), s.Daemons...)
			s.mu.Unlock()
			for _, d := range daemons {
				d.SetFence(m.Fence)
			}
		}
	}()
	s.fenceCancel = func() {
		cancelSub()
		<-done
	}
}

// CrashControlPlane simulates a SIGKILL of the control plane while the
// data plane keeps running: the scaler, prober, and fence fan-out stop,
// the journal is closed mid-stream (whatever was fsynced is all that
// survives), and the arbiter reference is dropped. Daemons keep serving
// and clients keep writing on their last mapping — exactly the blackout
// the paper's single-node arbiter exposes. Requires JournalDir;
// coordinate with goroutines that use Stack.Arbiter directly.
func (s *Stack) CrashControlPlane() error {
	if s.cfg.JournalDir == "" {
		return errors.New("livestack: CrashControlPlane requires JournalDir (nothing would survive)")
	}
	if s.Scaler != nil {
		s.Scaler.Stop()
		s.Scaler = nil
	}
	if s.Health != nil {
		s.Health.Stop()
		s.Health = nil
	}
	s.mu.Lock()
	cancel := s.fenceCancel
	s.fenceCancel = nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if s.Journal != nil {
		s.Journal.Close()
		s.Journal = nil
	}
	s.Arbiter = nil
	return nil
}

// RecoverControlPlane warm-restarts a crashed control plane from the
// journal: replay, re-probe every journaled pool member, fence every
// pre-crash epoch on the live daemons before the recovery publish, roll
// back half-provisioned I/O nodes the journal never admitted, and
// restart the prober, scaler, and fence fan-out. The returned error is
// advisory when an arbiter came up (degraded recovery, e.g. a failed
// re-solve published the pruned pre-crash mapping) and fatal when nil
// Stack.Arbiter proves no recovery happened.
func (s *Stack) RecoverControlPlane() error {
	if s.cfg.JournalDir == "" {
		return errors.New("livestack: RecoverControlPlane requires JournalDir")
	}
	jn, err := journal.Open(s.cfg.JournalDir, journal.Options{
		SnapshotEvery: s.cfg.JournalSnapshotEvery,
		Telemetry:     s.Telemetry,
	})
	if err != nil {
		return err
	}
	pol := s.cfg.Policy
	if pol == nil {
		pol = policy.MCKP{}
	}
	var weights func(string) float64
	if s.cfg.QoS != nil && !s.cfg.QoS.Empty() {
		weights = s.cfg.QoS.Weight
	}
	quarFloor := 0
	if s.cfg.SlowFactor > 0 {
		// Re-arm the quarantine on the recovered arbiter: journaled
		// degraded marks replay as quarantines again, under the same floor.
		if quarFloor = s.cfg.QuarantineFloor; quarFloor < 1 {
			quarFloor = 1
		}
	}
	arb, rerr := arbiter.Recover(arbiter.RecoverConfig{
		Journal: jn,
		Policy:  pol,
		Bus:     s.Bus,
		Probe: func(addr string) bool {
			return health.Check(addr, s.cfg.HealthTimeout)
		},
		PreFence: func(fence uint64) {
			s.mu.Lock()
			daemons := append([]*ion.Daemon(nil), s.Daemons...)
			s.mu.Unlock()
			for _, d := range daemons {
				d.SetFence(fence)
			}
		},
		Weights:         weights,
		QuarantineFloor: quarFloor,
		Telemetry:       s.Telemetry,
	})
	if arb == nil {
		jn.Close()
		return rerr
	}
	s.Journal = jn
	s.Arbiter = arb

	// Roll back half-provisioned nodes: a daemon the scaler spawned whose
	// AddION never reached the journal is running but unknown to the
	// recovered pool — nothing will ever route to it or drain it, so
	// decommission it and let the scaler re-provision from live demand.
	inPool := make(map[string]bool)
	for _, a := range arb.Pool() {
		inPool[a] = true
	}
	s.mu.Lock()
	var orphans []string
	for _, a := range s.Addrs {
		if !inPool[a] && !s.decommissioned[a] {
			orphans = append(orphans, a)
		}
	}
	s.mu.Unlock()
	for _, a := range orphans {
		s.DecommissionION(a)
	}

	s.startFenceFanout()
	if s.cfg.HealthInterval > 0 {
		if err := s.startHealth(arb, arb.Pool()); err != nil {
			return errors.Join(rerr, err)
		}
	}
	if s.cfg.Elastic != nil {
		if err := s.startScaler(arb, arb.Pool()); err != nil {
			return errors.Join(rerr, err)
		}
	}
	return rerr
}

// newDaemon builds and starts one I/O-node daemon at pool index i,
// threading the backend and listener wrap hooks.
func (s *Stack) newDaemon(i int) (*ion.Daemon, string, error) {
	sched, err := agios.NewByName(s.schedName)
	if err != nil {
		return nil, "", err
	}
	var backend ion.Backend = s.Store
	if s.cfg.WrapBackend != nil {
		backend = s.cfg.WrapBackend(i, backend)
	}
	d := ion.New(ion.Config{
		ID:             fmt.Sprintf("ion%02d", i),
		Scheduler:      sched,
		Dispatchers:    s.cfg.Dispatchers,
		Telemetry:      s.Telemetry,
		Tracer:         s.Tracer,
		QueueCap:       s.cfg.QueueCap,
		QueueLowWater:  s.cfg.QueueLowWater,
		MaxInflight:    s.cfg.MaxInflight,
		MaxConns:       s.cfg.MaxConns,
		RetryAfterHint: s.cfg.RetryAfterHint,
		WireChecksum:   s.cfg.WireChecksum,
		DedupWindow:    s.cfg.DedupWindow,
		EpochFencing:   s.cfg.JournalDir != "",
	}, backend)
	addr, err := startDaemon(d, i, s.cfg.WrapListener)
	if err != nil {
		return nil, "", err
	}
	// A node spawned after a recovery must start at the current revocation
	// floor, not at zero — otherwise a stale pre-crash client could land a
	// revoked-epoch write on the one fresh node.
	if f := s.Bus.Current().Fence; f > 0 {
		d.SetFence(f)
	}
	return d, addr, nil
}

// SpawnION provisions one new I/O-node daemon on an ephemeral port and
// registers it in the stack's daemon table (NOT the arbiter pool — the
// scaler does that only after the node's first health rise). Returns the
// new daemon's address.
func (s *Stack) SpawnION() (string, error) {
	s.mu.Lock()
	i := s.nextION
	s.nextION++
	s.mu.Unlock()
	d, addr, err := s.newDaemon(i)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.Daemons = append(s.Daemons, d)
	s.Addrs = append(s.Addrs, addr)
	s.mu.Unlock()
	return addr, nil
}

// DecommissionION permanently retires the daemon at addr: the daemon is
// closed and every stack client releases its pooled connection to it (a
// decommissioned address never comes back, unlike a killed-and-restarted
// one). Idempotent; unknown addresses error.
func (s *Stack) DecommissionION(addr string) error {
	s.mu.Lock()
	idx := -1
	for i, a := range s.Addrs {
		if a == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.mu.Unlock()
		return fmt.Errorf("livestack: no I/O node at %s", addr)
	}
	if s.decommissioned[addr] {
		s.mu.Unlock()
		return nil
	}
	s.decommissioned[addr] = true
	d := s.Daemons[idx]
	clients := append([]*fwd.Client(nil), s.clients...)
	s.mu.Unlock()

	err := d.Close()
	for _, c := range clients {
		c.ReleaseConn(addr)
	}
	return err
}

// stackProvisioner adapts the stack's spawn/decommission pair to the
// elastic.Provisioner seam.
type stackProvisioner Stack

func (p *stackProvisioner) Provision() (string, error)     { return (*Stack)(p).SpawnION() }
func (p *stackProvisioner) Decommission(addr string) error { return (*Stack)(p).DecommissionION(addr) }

// ionQuiesced reports whether the daemon at addr is quiet: empty queue
// and no op progress since the previous sample. One sample alone is
// never quiet — motion shows only between two looks — so the scaler's
// QuiesceSweeps counts from the second call on.
func (s *Stack) ionQuiesced(addr string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	var d *ion.Daemon
	for i, a := range s.Addrs {
		if a == addr {
			d = s.Daemons[i]
			break
		}
	}
	if d == nil || s.decommissioned[addr] {
		return true // gone is as quiet as it gets
	}
	depth, ops := d.Activity()
	last, seen := s.lastAct[addr]
	s.lastAct[addr] = ionActivity{depth: depth, ops: ops}
	return seen && depth == 0 && last.depth == 0 && ops == last.ops
}

// IONAddrs returns a snapshot of the daemon addresses, safe to call
// while the scaler is growing the pool.
func (s *Stack) IONAddrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.Addrs...)
}

// DaemonAt returns the daemon serving addr (nil when unknown), safe to
// call while the scaler is growing the pool.
func (s *Stack) DaemonAt(addr string) *ion.Daemon {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, a := range s.Addrs {
		if a == addr {
			return s.Daemons[i]
		}
	}
	return nil
}

// startDaemon starts d on an ephemeral port, threading the listener
// through the fault-injection hook when one is configured.
func startDaemon(d *ion.Daemon, idx int, wrap func(int, net.Listener) net.Listener) (string, error) {
	if wrap == nil {
		return d.Start("")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	return d.StartOn(wrap(idx, ln))
}

// RestartION warm-restarts the i-th daemon on its original address,
// re-applying the stack's fault-injection listener wrapper when one is
// configured. The daemon must have been Closed first (a "kill"); once it
// serves again, the health prober observes it and MarkUp re-admits it to
// arbitration — the full crash→rejoin loop. The address is unchanged, so
// existing mappings, client pools, and breaker state converge on their
// own.
func (s *Stack) RestartION(i int) error {
	s.mu.Lock()
	if i < 0 || i >= len(s.Daemons) {
		s.mu.Unlock()
		return fmt.Errorf("livestack: no I/O node %d", i)
	}
	d := s.Daemons[i]
	addr := s.Addrs[i]
	if s.decommissioned[addr] {
		s.mu.Unlock()
		return fmt.Errorf("livestack: %s was decommissioned, spawn a new I/O node instead", addr)
	}
	s.mu.Unlock()
	if s.Arbiter != nil && s.Arbiter.IsDraining(addr) {
		return fmt.Errorf("livestack: %s is draining, restart refused (let the drain finish or abort it first)", addr)
	}
	if s.cfg.WrapListener == nil {
		_, err := d.Restart()
		return err
	}
	// Rebind the original address ourselves so the wrapper can interpose,
	// with the same lingering-port retry Restart applies.
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("livestack: restart rebind %s: %w", addr, err)
	}
	_, err = d.RestartOn(s.cfg.WrapListener(i, ln))
	return err
}

// NewClient creates a forwarding client for an application, subscribed to
// the stack's mapping bus. The client starts in direct mode until the
// arbiter assigns it I/O nodes (via JobStarted).
func (s *Stack) NewClient(appID string) (*fwd.Client, error) {
	rpcOpts := s.cfg.RPC
	rpcOpts.WireChecksum = rpcOpts.WireChecksum || s.cfg.WireChecksum
	direct := pfs.FileSystem(s.Store)
	if s.cfg.WrapDirect != nil {
		direct = s.cfg.WrapDirect(direct)
	}
	c, err := fwd.NewClient(fwd.Config{
		AppID:         appID,
		Direct:        direct,
		ChunkSize:     s.cfg.ChunkSize,
		PoolSize:      s.cfg.PoolSize,
		CoalesceLimit: s.cfg.CoalesceLimit,
		RPC:           rpcOpts,
		Throttle:      s.cfg.Throttle,
		Hedge:         s.cfg.Hedge,
		Latency:       s.latSketch,
		Dedup:         s.cfg.DedupWindow > 0,
		EpochFencing:  s.cfg.JournalDir != "",
		QoS:           s.cfg.QoS.ClassFor(appID),
		Telemetry:     s.Telemetry,
		Tracer:        s.Tracer,
	})
	if err != nil {
		return nil, err
	}
	ch, cancelSub := s.Bus.Subscribe()
	cancelWatch := c.Watch(ch)
	s.mu.Lock()
	s.clients = append(s.clients, c)
	s.cancels = append(s.cancels, func() {
		cancelWatch()
		cancelSub()
	})
	s.mu.Unlock()
	return c, nil
}

// WaitForAllocation blocks until the client observes the given mapping
// version or the timeout elapses (mapping propagation is asynchronous,
// like GekkoFWD's periodic check). Polling backs off geometrically but
// never sleeps past the deadline, so short timeouts stay sharp and long
// ones don't spin; on timeout the error carries the mapping the client
// last observed.
func WaitForAllocation(c *fwd.Client, ions int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	step := time.Millisecond
	for {
		have := c.IONs()
		if len(have) == ions {
			return nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("livestack: client never observed %d I/O nodes within %v (last mapping: %d nodes %v)",
				ions, timeout, len(have), have)
		}
		if step > remaining {
			step = remaining
		}
		time.Sleep(step)
		if step < 16*time.Millisecond {
			step *= 2
		}
	}
}

// waitForSomeAllocation blocks until the client observes any nonzero
// allocation, or the timeout elapses. Same deadline-aware backoff and
// last-observation diagnostics as WaitForAllocation.
func waitForSomeAllocation(c *fwd.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	step := time.Millisecond
	for {
		if len(c.IONs()) > 0 {
			return nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("livestack: client never observed an allocation within %v (last mapping: empty)", timeout)
		}
		if step > remaining {
			step = remaining
		}
		time.Sleep(step)
		if step < 16*time.Millisecond {
			step *= 2
		}
	}
}

// Close stops the scaler, health prober, watchers, clients, and daemons.
// The scaler goes first (no spawns/drains during teardown), then the
// prober so daemon shutdown is not misread as an outage.
func (s *Stack) Close() {
	if s.Scaler != nil {
		s.Scaler.Stop()
	}
	if s.Health != nil {
		s.Health.Stop()
	}
	s.mu.Lock()
	if s.fenceCancel != nil {
		cancel := s.fenceCancel
		s.fenceCancel = nil
		s.mu.Unlock()
		cancel()
		s.mu.Lock()
	}
	cancels := append([]func(){}, s.cancels...)
	clients := append([]*fwd.Client(nil), s.clients...)
	daemons := append([]*ion.Daemon(nil), s.Daemons...)
	s.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	for _, c := range clients {
		c.Close()
	}
	for _, d := range daemons {
		d.Close()
	}
	if s.Journal != nil {
		s.Journal.Close()
		s.Journal = nil
	}
}
