package livestack

import (
	"errors"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/perfmodel"
	"repro/internal/policy"
)

func startStack(t *testing.T, ions int) *Stack {
	t.Helper()
	st, err := Start(Config{IONs: ions})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func appFor(t *testing.T, label, id string) policy.Application {
	t.Helper()
	spec, err := perfmodel.AppByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return policy.FromAppSpec(id, spec)
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Fatal("zero IONs should fail")
	}
	if _, err := Start(Config{IONs: 1, Scheduler: "bogus"}); err == nil {
		t.Fatal("unknown scheduler should fail")
	}
}

// TestEndToEndKernelThroughArbitration is the full §5.3 pipeline in one
// process: a job registers with the arbiter, the MCKP decision propagates
// over the mapping bus to the client, an application kernel runs through
// the forwarding stack, and the daemons show the traffic.
func TestEndToEndKernelThroughArbitration(t *testing.T) {
	st := startStack(t, 4)
	client, err := st.NewClient("ior1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("IOR-MPI with a 4-ION pool should get all 4, got %d", len(got))
	}
	if err := WaitForAllocation(client, 4, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	kernel := apps.IOR{Label: "IOR-T", Ranks: 8, BlockSize: 64 << 10, TransferSize: 16 << 10, ReadBack: true}
	rep, err := kernel.Run(client, "/jobs/ior1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.WriteBytes != 8*64<<10 {
		t.Fatalf("report: %+v", rep)
	}
	// Traffic flowed through daemons, not the direct path.
	var daemonBytes int64
	for _, d := range st.Daemons {
		daemonBytes += d.Stats().BytesIn
	}
	if daemonBytes != rep.WriteBytes {
		t.Fatalf("daemons saw %d bytes, kernel wrote %d", daemonBytes, rep.WriteBytes)
	}
	if st.Arbiter.LastSolveTime() <= 0 {
		t.Fatal("solver time missing")
	}

	if err := st.Arbiter.JobFinished("ior1"); err != nil {
		t.Fatal(err)
	}
	if err := WaitForAllocation(client, 0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicRearbitrationLive reproduces the §5.3 interaction live: HACC
// holds the whole pool, IOR-MPI arrives and takes most of it, HACC's
// client observes the shrink without disruption mid-run.
func TestDynamicRearbitrationLive(t *testing.T) {
	st := startStack(t, 8)
	hacc, err := st.NewClient("hacc1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Arbiter.JobStarted(appFor(t, "HACC", "hacc1")); err != nil {
		t.Fatal(err)
	}
	if err := WaitForAllocation(hacc, 8, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// Start writing, remap mid-stream, keep writing.
	kernel := apps.HACC{Ranks: 4, Particles: 200, HeaderBytes: 128}
	if _, err := kernel.Run(hacc, "/phase1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "ior1")); err != nil {
		t.Fatal(err)
	}
	// HACC shrinks (MCKP gives IOR-MPI the lion's share).
	deadline := time.Now().Add(2 * time.Second)
	for len(hacc.IONs()) >= 8 {
		if time.Now().After(deadline) {
			t.Fatalf("HACC never shrank: %v", hacc.IONs())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := kernel.Run(hacc, "/phase2"); err != nil {
		t.Fatalf("kernel disrupted by remap: %v", err)
	}
	if hacc.Stats().RemapsApplied < 2 {
		t.Fatalf("remaps: %+v", hacc.Stats())
	}
}

func TestNoSharingAcrossClientsLive(t *testing.T) {
	st := startStack(t, 4)
	a, _ := st.NewClient("a")
	bclient, _ := st.NewClient("b")
	if _, err := st.Arbiter.JobStarted(appFor(t, "HACC", "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Arbiter.JobStarted(appFor(t, "POSIX-L", "b")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	seen := map[string]bool{}
	for _, addr := range a.IONs() {
		seen[addr] = true
	}
	for _, addr := range bclient.IONs() {
		if seen[addr] {
			t.Fatalf("ION %s shared between applications", addr)
		}
	}
}

func TestClientErrsAfterStackClose(t *testing.T) {
	st, err := Start(Config{IONs: 1})
	if err != nil {
		t.Fatal(err)
	}
	client, err := st.NewClient("x")
	if err != nil {
		t.Fatal(err)
	}
	client.SetIONs(st.Addrs)
	st.Close()
	if _, err := client.Write("/f", 0, []byte("x")); err == nil {
		t.Fatal("write through closed stack should fail")
	}
	var errCheck error = errors.New("placeholder")
	_ = errCheck
}
