package livestack

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/agios"
	"repro/internal/apps"
	"repro/internal/fwd"
	"repro/internal/ion"
	"repro/internal/pfs"
	"repro/internal/units"
)

// TestAggregationReducesPFSRequests verifies the first mechanism behind
// forwarding gains: many small contiguous client writes are merged by the
// I/O node's AIOLI scheduler into fewer, larger PFS dispatches.
func TestAggregationReducesPFSRequests(t *testing.T) {
	run := func(sched agios.Scheduler) (clientWrites, pfsWrites int64) {
		// A slow backend (per-extent positioning latency) lets requests
		// accumulate in the scheduler queue, as on a loaded I/O node.
		store := pfs.NewStore(pfs.Config{SeekLatency: 200 * time.Microsecond})
		d := ion.New(ion.Config{ID: "agg", Scheduler: sched, Dispatchers: 1}, store)
		addr, err := d.Start("")
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		client, err := fwd.NewClient(fwd.Config{AppID: "a", Direct: store, ChunkSize: 64 * units.KiB, PoolSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		client.SetIONs([]string{addr})

		// 16 ranks writing a 1D-interleaved shared file (rank r owns
		// every 16th 4-KiB block): at any instant the queue holds ~16
		// adjacent blocks, which an offset-sorting scheduler can merge.
		var wg sync.WaitGroup
		for r := 0; r < 16; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				buf := make([]byte, 4*units.KiB)
				for i := int64(0); i < 16; i++ {
					off := (i*16 + int64(r)) * 4 * units.KiB
					if _, err := client.Write("/shared", off, buf); err != nil {
						t.Error(err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
		return d.Stats().Writes, store.Metrics().WriteOps
	}

	fifoClient, fifoPFS := run(agios.NewFIFO())
	aioliClient, aioliPFS := run(agios.NewAIOLI(0))
	if fifoClient != aioliClient {
		t.Fatalf("same client load expected: %d vs %d", fifoClient, aioliClient)
	}
	// FIFO dispatches one PFS write per client write; AIOLI merges.
	if aioliPFS >= fifoPFS {
		t.Fatalf("AIOLI should reduce PFS requests: FIFO %d → AIOLI %d", fifoPFS, aioliPFS)
	}
	t.Logf("256 client writes → %d PFS writes under FIFO, %d under AIOLI", fifoPFS, aioliPFS)
}

// TestFewerWritersReduceLockHandoffs verifies the second mechanism: with a
// lock-penalized shared file, funneling all ranks through one I/O node
// produces one writer stream at the PFS, eliminating lock handoffs that
// direct access provokes.
func TestFewerWritersReduceLockHandoffs(t *testing.T) {
	const ranks = 8
	const writes = 20
	load := func(fs pfs.FileSystem, writer func(rank int) pfs.FileSystem) {
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				target := fs
				if writer != nil {
					target = writer(r)
				}
				buf := make([]byte, 8*units.KiB)
				base := int64(r) * writes * 8 * units.KiB
				for i := int64(0); i < writes; i++ {
					if _, err := target.Write("/locky", base+i*8*units.KiB, buf); err != nil {
						t.Error(err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
	}

	// Direct: each rank is its own writer identity (distinct clients).
	direct := pfs.NewStore(pfs.Config{LockLatency: 100 * time.Microsecond})
	var directClients []*directRank
	for r := 0; r < ranks; r++ {
		directClients = append(directClients, &directRank{store: direct, id: fmt.Sprintf("rank%d", r)})
	}
	load(direct, func(r int) pfs.FileSystem { return directClients[r] })
	directHandoffs := direct.Metrics().LockWaits

	// Forwarded through ONE I/O node: a single writer stream at the PFS.
	fwdStore := pfs.NewStore(pfs.Config{LockLatency: 100 * time.Microsecond})
	d := ion.New(ion.Config{ID: "solo", Scheduler: agios.NewFIFO(), Dispatchers: 1}, fwdStore)
	addr, err := d.Start("")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	client, err := fwd.NewClient(fwd.Config{AppID: "a", Direct: fwdStore})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetIONs([]string{addr})
	load(client, nil)
	fwdHandoffs := fwdStore.Metrics().LockWaits

	if fwdHandoffs >= directHandoffs {
		t.Fatalf("forwarding should reduce shared-file lock handoffs: direct %d vs forwarded %d",
			directHandoffs, fwdHandoffs)
	}
	t.Logf("shared-file lock handoffs: %d direct writers → %d through one I/O node",
		directHandoffs, fwdHandoffs)
}

// directRank attributes writes to a rank identity on the underlying store.
type directRank struct {
	store *pfs.Store
	id    string
}

var _ pfs.FileSystem = (*directRank)(nil)

func (d *directRank) Create(path string) error { return d.store.Create(path) }
func (d *directRank) Write(path string, off int64, p []byte) (int, error) {
	return d.store.WriteAs(d.id, path, off, p)
}
func (d *directRank) Read(path string, off int64, p []byte) (int, error) {
	return d.store.Read(path, off, p)
}
func (d *directRank) Stat(path string) (pfs.FileInfo, error) { return d.store.Stat(path) }
func (d *directRank) Remove(path string) error               { return d.store.Remove(path) }
func (d *directRank) Fsync(path string) error                { return d.store.Fsync(path) }

// TestLiveFigure5Sweep runs a scaled HACC kernel at several allocation
// sizes over a throttled PFS — the live analogue of one Figure 5 column —
// and checks a file-per-process workload scales with I/O nodes until the
// backend saturates.
func TestLiveFigure5Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("live sweep with throttled PFS")
	}
	if raceEnabled {
		t.Skip("bandwidth ratios are unreliable under race-detector overhead")
	}
	// Each I/O node dispatches serially (one dispatcher) against a
	// rate-limited eight-OST backend: with one I/O node the dispatch
	// stream is the bottleneck; with four, streams run in parallel
	// across the OSTs — the regime where MN4's large file-per-process
	// jobs profit from more forwarders (perfmodel's PerStreamRate).
	st, err := Start(Config{
		IONs:        4,
		Dispatchers: 1,
		PFS: pfs.Config{
			OSTs:    8,
			OSTRate: units.Bandwidth(128 * units.MiB),
			Discard: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	kernel := apps.HACC{Ranks: 32, Particles: 20_000, HeaderBytes: 64 * units.KiB}
	bw := map[int]float64{}
	var lastBytes int64
	for _, k := range []int{1, 4} {
		// Standalone client with a pinned allocation (bus-subscribed
		// clients would be remapped by the arbiter's empty map).
		client, err := fwd.NewClient(fwd.Config{AppID: fmt.Sprintf("sweep%d", k), Direct: st.Store})
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		client.SetIONs(st.Addrs[:k])
		rep, err := kernel.Run(client, fmt.Sprintf("/sweep%d", k))
		if err != nil {
			t.Fatal(err)
		}
		// All traffic must actually have gone through the daemons.
		var daemonBytes int64
		for _, d := range st.Daemons {
			daemonBytes += d.Stats().BytesIn
		}
		if daemonBytes-lastBytes != rep.WriteBytes {
			t.Fatalf("k=%d: daemons saw %d bytes, kernel wrote %d — traffic bypassed forwarding",
				k, daemonBytes-lastBytes, rep.WriteBytes)
		}
		lastBytes = daemonBytes
		bw[k] = rep.Bandwidth.MBps()
		t.Logf("%d I/O nodes: %.1f MB/s (%s)", k, bw[k], rep.Elapsed.Round(time.Millisecond))
	}
	if bw[4] <= bw[1]*1.5 {
		t.Fatalf("wide fpp workload should scale with I/O nodes: %v", bw)
	}
}
