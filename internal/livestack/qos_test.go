package livestack

// QoS tests: the multi-tenant isolation acceptance scenario (`make qos`
// runs this twice under the race detector). A 12-ION stack carries one
// guaranteed tenant with an SLO and one scavenger pushing 10× the bytes
// through tiny token buckets. The properties asserted are the contract of
// internal/qos end to end:
//
//   - the guaranteed tenant's p99 write latency stays within its class
//     SLO while the scavenger storm rages;
//   - byte conservation for BOTH tenants — every byte lands exactly once
//     and correct, whether a write was forwarded under WFQ priority or
//     degraded to the direct PFS path by an empty scavenger bucket;
//   - the scavenger still progresses: it is degraded, never blocked;
//   - the per-tenant telemetry tells the story (admitted/degraded series
//     per app);
//   - a stack with no QoS config registers no qos_* series at all — the
//     subsystem is strictly opt-in.

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/qos"
	"repro/internal/telemetry"
)

// noisyNeighborQoS is the exact tenant policy EXPERIMENTS.md documents for
// the scenario: a guaranteed tenant with a generous bucket, a CI-safe SLO
// and arbitration weight 4, against a scavenger squeezed through a 64 KiB
// burst at 256 KiB/s with weight 0.25.
const noisyNeighborQoS = `
class gold tier=guaranteed slo=750ms rate=64MiB burst=1MiB weight=4
class scav tier=scavenger rate=256KiB burst=64KiB weight=0.25
app gold gold
app scav scav
`

func TestQoSNoisyNeighborIsolation(t *testing.T) {
	tenants, err := qos.Parse(noisyNeighborQoS)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Start(Config{
		IONs:        12,
		ChunkSize:   4096,
		Dispatchers: 1,
		QoS:         tenants, // Scheduler unset: QoS selects WFQ
		Telemetry:   telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	gold, err := st.NewClient("gold")
	if err != nil {
		t.Fatal(err)
	}
	scav, err := st.NewClient("scav")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Arbiter.JobStarted(appFor(t, "BT-C", "gold")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "scav")); err != nil {
		t.Fatal(err)
	}
	if err := waitForSomeAllocation(gold, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := waitForSomeAllocation(scav, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := gold.Create("/qos/gold"); err != nil {
		t.Fatal(err)
	}
	if err := scav.Create("/qos/scav"); err != nil {
		t.Fatal(err)
	}

	// The noisy neighbor: 8 scavenger writers push 10× the guaranteed
	// tenant's bytes into disjoint extents of one file, through a bucket
	// that can admit only a sliver of it. The guaranteed tenant writes
	// sequentially, timing every call against its SLO.
	const (
		goldOps   = 64
		goldSize  = 4096 // single chunk
		goldTotal = goldOps * goldSize
		writers   = 8
		segsPer   = 16
		segSize   = 5 * 4096                    // 5 chunks per segment
		scavTotal = writers * segsPer * segSize // = 10 × goldTotal
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seg := make([]byte, segSize)
			for s := 0; s < segsPer; s++ {
				off := int64(w*segsPer+s) * segSize
				fill(off, seg)
				n, err := scav.Write("/qos/scav", off, seg)
				if err != nil || n != segSize {
					t.Errorf("scav writer %d seg %d: n=%d err=%v", w, s, n, err)
					return
				}
			}
		}(w)
	}
	latencies := make([]time.Duration, 0, goldOps)
	buf := make([]byte, goldSize)
	for s := 0; s < goldOps; s++ {
		off := int64(s) * goldSize
		fill(off, buf)
		t0 := time.Now()
		n, err := gold.Write("/qos/gold", off, buf)
		latencies = append(latencies, time.Since(t0))
		if err != nil || n != goldSize {
			t.Fatalf("gold write %d: n=%d err=%v", s, n, err)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// The guaranteed tenant held its SLO under the storm.
	slo := tenants.ClassFor("gold").SLO
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	if p99 > slo {
		t.Fatalf("gold p99 write latency = %v, class SLO is %v", p99, slo)
	}

	// Byte conservation for both tenants, whatever path each chunk took.
	for _, f := range []struct {
		name  string
		total int
	}{
		{"/qos/gold", goldTotal},
		{"/qos/scav", scavTotal},
	} {
		got := make([]byte, f.total)
		if n, err := st.Store.Read(f.name, 0, got); err != nil || n != f.total {
			t.Fatalf("read %s from store: n=%d err=%v", f.name, n, err)
		}
		for i := range got {
			if got[i] != pat(int64(i)) {
				t.Fatalf("%s byte %d corrupted: got %d want %d", f.name, i, got[i], pat(int64(i)))
			}
		}
	}

	reg := st.Telemetry
	// The guaranteed tenant was never degraded off the forwarding path by
	// admission (guaranteed buckets pace, they do not refuse).
	if v := reg.Counter(`qos_degraded_total{app="gold"}`).Value(); v != 0 {
		t.Fatalf(`qos_degraded_total{app="gold"} = %d, want 0`, v)
	}
	if v := reg.Counter(`qos_admitted_total{app="gold"}`).Value(); v == 0 {
		t.Fatal("gold ops were not admitted through its bucket")
	}
	// The scavenger was squeezed — most of its 10× traffic could not fit
	// through a 64 KiB burst — but it still finished everything.
	if v := reg.Counter(`qos_degraded_total{app="scav"}`).Value(); v == 0 {
		t.Fatal("the scavenger bucket never refused anything: the storm did not exercise degradation")
	}
	if v := reg.Counter(`qos_admitted_total{app="scav"}`).Value(); v == 0 {
		t.Fatal("the scavenger never got a single op through its bucket")
	}
	if st := scav.Stats(); st.DegradedOps == 0 || st.BytesOut != scavTotal {
		t.Fatalf("scavenger progress accounting off: %+v", st)
	}
}

// TestQoSZeroConfigStackHasNoSeries pins that the subsystem is opt-in: a
// stack built without a QoS registry (or with an empty one) runs exactly
// the pre-QoS configuration — no qos_* telemetry exists anywhere.
func TestQoSZeroConfigStackHasNoSeries(t *testing.T) {
	for _, cfg := range []Config{
		{IONs: 2, Telemetry: telemetry.New()},
		{IONs: 2, Telemetry: telemetry.New(), QoS: qos.NewRegistry()}, // empty registry
	} {
		st, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		client, err := st.NewClient("plain")
		if err != nil {
			st.Close()
			t.Fatal(err)
		}
		if _, err := st.Arbiter.JobStarted(policy.Application{ID: "plain", Nodes: 2, Processes: 4}); err != nil {
			st.Close()
			t.Fatal(err)
		}
		if err := waitForSomeAllocation(client, 2*time.Second); err != nil {
			st.Close()
			t.Fatal(err)
		}
		if _, err := client.Write("/plain", 0, []byte("plain")); err != nil {
			st.Close()
			t.Fatal(err)
		}
		snap := st.Telemetry.Snapshot()
		check := func(names map[string]int64) {
			for name := range names {
				if strings.HasPrefix(name, "qos_") {
					t.Errorf("zero-config stack registered %s", name)
				}
			}
		}
		check(snap.Counters)
		check(snap.Gauges)
		st.Close()
	}
}
