package livestack

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/perfmodel"
	"repro/internal/policy"
)

// LiveJob is one entry of a live FIFO queue: the arbitration-facing
// application description plus the kernel that actually performs the I/O.
type LiveJob struct {
	ID string
	// App carries the job geometry and bandwidth curve for the arbiter.
	App policy.Application
	// Kernel is the I/O workload run through the forwarding client.
	Kernel apps.Kernel
}

// LiveQueueResult is the outcome of RunQueue.
type LiveQueueResult struct {
	Reports map[string]apps.Report
	// Start/End record each job's span relative to the queue start.
	Start, End map[string]time.Duration
	Elapsed    time.Duration
}

// RunQueue executes a strict-FIFO queue of live jobs on the stack: a job
// starts when enough virtual compute nodes are free, registers with the
// arbiter (triggering a re-arbitration exactly as in §5.3), runs its
// kernel through a mapping-subscribed forwarding client, and releases its
// resources on completion. It is the live counterpart of
// jobs.SimulateQueue, at whatever scale the kernels are configured for.
func RunQueue(st *Stack, queue []LiveJob, computeNodes int) (*LiveQueueResult, error) {
	if len(queue) == 0 {
		return nil, errors.New("livestack: empty queue")
	}
	for _, j := range queue {
		if j.App.Nodes > computeNodes {
			return nil, fmt.Errorf("livestack: %s needs %d nodes, cluster has %d", j.ID, j.App.Nodes, computeNodes)
		}
	}

	var (
		mu     sync.Mutex
		cond   = sync.Cond{L: &mu}
		free   = computeNodes
		result = &LiveQueueResult{
			Reports: map[string]apps.Report{},
			Start:   map[string]time.Duration{},
			End:     map[string]time.Duration{},
		}
		firstErr error
		wg       sync.WaitGroup
	)
	t0 := time.Now()

	for _, job := range queue {
		// Strict FIFO admission: wait for the head job's nodes.
		mu.Lock()
		for free < job.App.Nodes && firstErr == nil {
			cond.Wait()
		}
		if firstErr != nil {
			mu.Unlock()
			break
		}
		free -= job.App.Nodes
		result.Start[job.ID] = time.Since(t0)
		mu.Unlock()

		client, err := st.NewClient(job.ID)
		if err != nil {
			return nil, err
		}
		if _, err := st.Arbiter.JobStarted(job.App); err != nil {
			return nil, fmt.Errorf("livestack: start %s: %w", job.ID, err)
		}
		// Concurrent starts/finishes re-arbitrate continuously, so the
		// exact count may already have changed; the job only needs to
		// observe *a* forwarding allocation before issuing I/O (the
		// queue's curves have no direct-access option).
		if err := waitForSomeAllocation(client, 5*time.Second); err != nil {
			return nil, fmt.Errorf("livestack: %s: %w", job.ID, err)
		}

		wg.Add(1)
		go func(job LiveJob) {
			defer wg.Done()
			rep, err := job.Kernel.Run(client, "/"+job.ID)
			finErr := st.Arbiter.JobFinished(job.ID)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				err = finErr
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("livestack: job %s: %w", job.ID, err)
			}
			result.Reports[job.ID] = rep
			result.End[job.ID] = time.Since(t0)
			free += job.App.Nodes
			cond.Broadcast()
		}(job)
	}

	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	result.Elapsed = time.Since(t0)
	return result, nil
}

// appSpecFor converts a Table 3 label into an arbitration application
// with the paper's geometry and curve. The §5.3 setup disallows direct
// access, so the curve's 0-ION point is dropped.
func appSpecFor(label string) (policy.Application, error) {
	spec, err := perfmodel.AppByLabel(label)
	if err != nil {
		return policy.Application{}, err
	}
	app := policy.FromAppSpec(label, spec)
	var pts []perfmodel.Point
	for _, pt := range app.Curve.Points() {
		if pt.IONs > 0 {
			pts = append(pts, pt)
		}
	}
	app.Curve = perfmodel.NewCurve(pts...)
	return app, nil
}

// PaperLiveQueue builds the §5.3 queue with tiny-scale kernels: the same
// FIFO order and job geometries, with kilobyte-scale volumes so a live run
// completes in seconds.
func PaperLiveQueue() ([]LiveJob, error) {
	order := []string{"HACC", "IOR-MPI", "SIM", "IOR-MPI", "IOR-MPI",
		"POSIX-S", "POSIX-L", "BT-C", "MAD", "MAD", "S3D", "HACC", "HACC", "BT-D"}
	tiny := apps.TinyRegistry()
	specs := map[string]policy.Application{}
	count := map[string]int{}
	var out []LiveJob
	for _, label := range order {
		kernelLabel := label
		if label == "BT-D" {
			kernelLabel = "BT-C" // tiny registry has one BT-IO variant
		}
		k, ok := tiny[kernelLabel]
		if !ok {
			return nil, fmt.Errorf("livestack: no tiny kernel for %s", label)
		}
		spec, ok := specs[label]
		if !ok {
			s, err := appSpecFor(label)
			if err != nil {
				return nil, err
			}
			spec = s
			specs[label] = spec
		}
		count[label]++
		id := fmt.Sprintf("%s#%d", label, count[label])
		app := spec
		app.ID = id
		out = append(out, LiveJob{ID: id, App: app, Kernel: k})
	}
	return out, nil
}
