package livestack

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/pfs"
)

// TestRunLiveQueuePaper executes the §5.3 queue live: 14 real kernels at
// tiny scale on 96 virtual compute nodes and 12 TCP I/O-node daemons,
// arbitrated by MCKP with dynamic re-arbitration on every start/finish.
func TestRunLiveQueuePaper(t *testing.T) {
	st, err := Start(Config{IONs: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	queue, err := PaperLiveQueue()
	if err != nil {
		t.Fatal(err)
	}
	if len(queue) != 14 {
		t.Fatalf("queue length %d", len(queue))
	}
	res, err := RunQueue(st, queue, 96)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 14 {
		t.Fatalf("completed %d of 14 jobs", len(res.Reports))
	}
	var total int64
	for id, rep := range res.Reports {
		if rep.WriteBytes <= 0 || rep.Bandwidth <= 0 {
			t.Fatalf("%s: empty report %+v", id, rep)
		}
		total += rep.WriteBytes + rep.ReadBytes
	}
	// Every byte went through the daemons (direct access is disallowed:
	// all curves lack the 0-ION option, so the arbiter always assigns).
	var daemonBytes int64
	for _, d := range st.Daemons {
		s := d.Stats()
		daemonBytes += s.BytesIn + s.BytesOut
	}
	if daemonBytes != total {
		t.Fatalf("daemons saw %d bytes, kernels moved %d — some traffic bypassed forwarding",
			daemonBytes, total)
	}
	// FIFO: BT-D (64 nodes) cannot overlap the 64-node POSIX-L job.
	if res.Start["BT-D#1"] < res.End["POSIX-L#1"] && res.Start["POSIX-L#1"] < res.End["BT-D#1"] {
		// Overlap is allowed only if 64+64 ≤ 96 is false — so they must
		// not overlap at all.
		t.Fatalf("two 64-node jobs overlapped: POSIX-L [%v,%v] BT-D [%v,%v]",
			res.Start["POSIX-L#1"], res.End["POSIX-L#1"], res.Start["BT-D#1"], res.End["BT-D#1"])
	}
	t.Logf("live queue of 14 jobs finished in %v; %s moved through 12 I/O nodes",
		res.Elapsed.Round(1e6), formatBytes(total))
}

func formatBytes(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%d B", n)
}

// TestRunQueueValidation covers the error paths.
func TestRunQueueValidation(t *testing.T) {
	st, err := Start(Config{IONs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := RunQueue(st, nil, 96); err == nil {
		t.Fatal("empty queue should fail")
	}
	queue, err := PaperLiveQueue()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunQueue(st, queue[:1], 4); err == nil {
		t.Fatal("oversized job should fail")
	}
}

// TestRunQueueSurfacesKernelFailure: a failing kernel mid-queue aborts the
// run with its error instead of hanging or silently succeeding.
func TestRunQueueSurfacesKernelFailure(t *testing.T) {
	st, err := Start(Config{IONs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	queue, err := PaperLiveQueue()
	if err != nil {
		t.Fatal(err)
	}
	queue = queue[:3]
	queue[1].Kernel = failingKernel{}
	_, err = RunQueue(st, queue, 96)
	if err == nil || !strings.Contains(err.Error(), "injected kernel failure") {
		t.Fatalf("kernel failure not surfaced: %v", err)
	}
}

type failingKernel struct{}

func (failingKernel) Name() string { return "FAIL" }
func (failingKernel) Run(fs pfs.FileSystem, dir string) (apps.Report, error) {
	return apps.Report{}, errors.New("injected kernel failure")
}
