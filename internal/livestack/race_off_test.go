//go:build !race

package livestack

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
