//go:build race

package livestack

// raceEnabled reports whether the race detector is active; timing-based
// assertions are skipped under its instrumentation overhead.
const raceEnabled = true
