package livestack

// Restart/rejoin tests: the crash→detect→re-arbitrate loop PR 3 opened is
// closed here — a killed daemon warm-restarts on its old address, the
// health prober observes it rise, MarkUp re-admits it, and traffic flows
// through it again. Run with wire checksums and the dedup window on, so
// the rejoin path is exercised with the full integrity stack.

import (
	"testing"
	"time"

	"repro/internal/rpc"
)

func TestRestartRejoin(t *testing.T) {
	opts := chaosRPC()
	opts.BreakerCooldown = 50 * time.Millisecond // let the breaker probe the revived node
	st, err := Start(Config{
		IONs:      12,
		Scheduler: "FIFO",
		ChunkSize: 4096,
		RPC:       opts,

		WireChecksum: true,
		DedupWindow:  128,

		HealthInterval:      20 * time.Millisecond,
		HealthTimeout:       250 * time.Millisecond,
		HealthFailThreshold: 3,
		HealthRiseThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	client, err := st.NewClient("ior1")
	if err != nil {
		t.Fatal(err)
	}
	allocated, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "ior1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(allocated) == 0 {
		t.Fatal("no allocation")
	}
	if err := waitForSomeAllocation(client, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// Write an initial stream, then kill one allocated daemon.
	const segSize = 16 * 1024
	seg := make([]byte, segSize)
	if err := client.Create("/rejoin"); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		off := int64(s) * segSize
		fill(off, seg)
		if _, err := client.Write("/rejoin", off, seg); err != nil {
			t.Fatalf("write segment %d: %v", s, err)
		}
	}
	victim := -1
	for i, a := range st.Addrs {
		if a == allocated[0] {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("allocated address %s not in stack", allocated[0])
	}
	st.Daemons[victim].Close()

	// Detection: prober marks it down, arbiter shrinks the live pool.
	reg := st.Telemetry
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge("arbiter_ions_live").Value() != 11 {
		if time.Now().After(deadline) {
			t.Fatalf("arbiter never marked the killed ION down (live=%d)", reg.Gauge("arbiter_ions_live").Value())
		}
		time.Sleep(time.Millisecond)
	}

	// Rejoin: warm restart on the same address; the prober must observe
	// the rise and MarkUp must restore the pool.
	if err := st.RestartION(victim); err != nil {
		t.Fatalf("RestartION: %v", err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for reg.Gauge("arbiter_ions_live").Value() != 12 {
		if time.Now().After(deadline) {
			t.Fatalf("arbiter never re-admitted the restarted ION (live=%d)", reg.Gauge("arbiter_ions_live").Value())
		}
		time.Sleep(time.Millisecond)
	}
	if !st.Health.IsUp(st.Addrs[victim]) {
		t.Fatal("prober still reports the restarted ION down")
	}
	if v := reg.Counter("health_transitions_up_total").Value(); v != 1 {
		t.Fatalf("health_transitions_up_total = %d, want 1", v)
	}
	if v := reg.Counter("arbiter_marked_up_total").Value(); v != 1 {
		t.Fatalf("arbiter_marked_up_total = %d, want 1", v)
	}

	// The restarted daemon serves on its old address again: a direct ping
	// proves it, and the per-node restart counter records the cycle.
	cli := rpc.Dial(st.Addrs[victim], 1)
	defer cli.Close()
	if _, err := cli.Call(&rpc.Message{Op: rpc.OpPing}); err != nil {
		t.Fatalf("ping restarted ION: %v", err)
	}
	if got := st.Daemons[victim].Stats().Restarts; got != 1 {
		t.Fatalf("daemon Restarts = %d, want 1", got)
	}

	// Traffic keeps flowing end to end after the rejoin, checksummed and
	// stamped; all content remains intact.
	const total = 16 * segSize
	for s := 8; s < 16; s++ {
		off := int64(s) * segSize
		fill(off, seg)
		if _, err := client.Write("/rejoin", off, seg); err != nil {
			t.Fatalf("write segment %d after rejoin: %v", s, err)
		}
	}
	got := make([]byte, total)
	if n, err := client.Read("/rejoin", 0, got); err != nil || n != total {
		t.Fatalf("read back: n=%d err=%v", n, err)
	}
	for i := range got {
		if got[i] != pat(int64(i)) {
			t.Fatalf("byte %d corrupted after restart: got %d want %d", i, got[i], pat(int64(i)))
		}
	}
	// The integrity path was actually on: no checksum errors counted (the
	// wire is clean), and the restart is visible stack-wide.
	if v := reg.Counter("rpc_checksum_errors_total").Value(); v != 0 {
		t.Fatalf("rpc_checksum_errors_total = %d on a clean wire", v)
	}
}
