package livestack

// Storm test: the overload-protection acceptance scenario. A 12-ION stack
// with shallow bounded queues takes a client burst while one allocated ION
// is slowed to a crawl (faultfs latency injection on its backend). The
// properties asserted are the contract of this layer cake:
//
//   - byte conservation — every byte of both apps lands exactly once,
//     whether a chunk was forwarded, shed-and-retried, or degraded to the
//     direct PFS path;
//   - sheds are not failures — with a hair-trigger breaker configured,
//     zero breaker trips, zero failovers, zero down transitions;
//   - the slow node is detected as overloaded (not dead) and the arbiter
//     steers load away without shrinking the pool;
//   - a well-behaved app keeps a bounded p99 while the burst rages;
//   - the counters balance: busy responses received never exceed busy
//     responses sent, and client-observed sheds never exceed receipts.
//
// `make storm` runs this twice under the race detector.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/fwd"
	"repro/internal/ion"
	"repro/internal/rpc"
)

// slowableBackend interposes a faultfs latency injector on an I/O node's
// storage backend, armable after the stack is up — the test only knows
// which ION to slow once the arbiter has allocated the burst app.
type slowableBackend struct {
	ion.Backend
	slow  ion.Backend
	armed atomic.Bool
}

func (s *slowableBackend) WriteAs(writer, path string, off int64, p []byte) (int, error) {
	if s.armed.Load() {
		return s.slow.WriteAs(writer, path, off, p)
	}
	return s.Backend.WriteAs(writer, path, off, p)
}

func TestStormSlowIONShedsThrottleAndSteer(t *testing.T) {
	const ions = 12
	backends := make([]*slowableBackend, ions)
	st, err := Start(Config{
		IONs:        ions,
		Scheduler:   "FIFO",
		ChunkSize:   4096,
		Dispatchers: 1,
		RPC: rpc.Options{
			CallTimeout:  2 * time.Second,
			MaxRetries:   1,
			RetryBackoff: time.Millisecond,
			// Hair-trigger breaker: a single shed misclassified as a
			// transport failure would open it and fail the test.
			BreakerThreshold: 2,
			BreakerCooldown:  30 * time.Second,
		},

		QueueCap:       2,
		QueueLowWater:  1,
		MaxInflight:    24,
		RetryAfterHint: time.Millisecond,
		Throttle: fwd.ThrottleConfig{
			Enabled:         true,
			MinWindow:       1,
			MaxWindow:       8,
			BusyRetries:     1,
			DegradeAfter:    3,
			RetryAfterFloor: time.Millisecond,
			RetryAfterCap:   4 * time.Millisecond,
		},

		HealthInterval:    10 * time.Millisecond,
		HealthTimeout:     250 * time.Millisecond,
		OverloadShedDelta: 1,
		OverloadThreshold: 1,
		OverloadRecovery:  5,

		WrapBackend: func(i int, b ion.Backend) ion.Backend {
			sb := &slowableBackend{
				Backend: b,
				slow: faultfs.Wrap(b, faultfs.Config{
					DelayEvery: 1,
					Delay:      4 * time.Millisecond,
					Kind:       faultfs.KindWrite,
				}),
			}
			backends[i] = sb
			return sb
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	burst, err := st.NewClient("burst")
	if err != nil {
		t.Fatal(err)
	}
	steady, err := st.NewClient("steady")
	if err != nil {
		t.Fatal(err)
	}
	allocated, err := st.Arbiter.JobStarted(appFor(t, "IOR-MPI", "burst"))
	if err != nil {
		t.Fatal(err)
	}
	if len(allocated) == 0 {
		t.Fatal("no allocation for the burst app")
	}
	if _, err := st.Arbiter.JobStarted(appFor(t, "BT-C", "steady")); err != nil {
		t.Fatal(err)
	}
	if err := waitForSomeAllocation(burst, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := waitForSomeAllocation(steady, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// Slow down one ION the burst app is actually mapped to.
	slowAddr := allocated[0]
	for i, a := range st.Addrs {
		if a == slowAddr {
			backends[i].armed.Store(true)
		}
	}

	if err := burst.Create("/storm/burst"); err != nil {
		t.Fatal(err)
	}
	if err := steady.Create("/storm/steady"); err != nil {
		t.Fatal(err)
	}

	// The storm: 8 concurrent writers hammer disjoint extents of one file
	// while the well-behaved app writes sequentially, timing every call.
	const (
		writers     = 8
		segsPer     = 16
		segSize     = 16 * 1024 // 4 chunks per segment
		burstTotal  = writers * segsPer * segSize
		steadyOps   = 64
		steadySize  = 4096 // single chunk: the polite citizen
		steadyTotal = steadyOps * steadySize
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seg := make([]byte, segSize)
			for s := 0; s < segsPer; s++ {
				off := int64(w*segsPer+s) * segSize
				fill(off, seg)
				n, err := burst.Write("/storm/burst", off, seg)
				if err != nil || n != segSize {
					t.Errorf("burst writer %d seg %d: n=%d err=%v", w, s, n, err)
					return
				}
			}
		}(w)
	}
	latencies := make([]time.Duration, 0, steadyOps)
	buf := make([]byte, steadySize)
	for s := 0; s < steadyOps; s++ {
		off := int64(s) * steadySize
		fill(off, buf)
		t0 := time.Now()
		n, err := steady.Write("/storm/steady", off, buf)
		latencies = append(latencies, time.Since(t0))
		if err != nil || n != steadySize {
			t.Fatalf("steady write %d: n=%d err=%v", s, n, err)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Byte conservation: both files complete and correct, through the
	// clients and straight from the PFS.
	for _, f := range []struct {
		name   string
		client interface {
			Read(string, int64, []byte) (int, error)
		}
		total int
	}{
		{"/storm/burst", burst, burstTotal},
		{"/storm/steady", steady, steadyTotal},
	} {
		got := make([]byte, f.total)
		if n, err := f.client.Read(f.name, 0, got); err != nil || n != f.total {
			t.Fatalf("read %s through client: n=%d err=%v", f.name, n, err)
		}
		for i := range got {
			if got[i] != pat(int64(i)) {
				t.Fatalf("%s byte %d corrupted: got %d want %d", f.name, i, got[i], pat(int64(i)))
			}
		}
		direct := make([]byte, f.total)
		if n, err := st.Store.Read(f.name, 0, direct); err != nil || n != f.total {
			t.Fatalf("read %s from store: n=%d err=%v", f.name, n, err)
		}
	}

	reg := st.Telemetry
	// Snapshot receipt-side counters before send-side ones so that the
	// "received ≤ sent" audit cannot be raced by an in-flight probe ping.
	busyReceived := reg.Counter("rpc_busy_responses_total").Value()
	shedBurst := reg.Counter(`fwd_shed_responses_total{app="burst"}`).Value()
	shedSteady := reg.Counter(`fwd_shed_responses_total{app="steady"}`).Value()
	var rejects, serverSheds int64
	for i, d := range st.Daemons {
		rejects += d.Stats().QueueRejects
		serverSheds += reg.Counter(fmt.Sprintf("rpc_server_shed_total{node=%q}", fmt.Sprintf("ion%02d", i))).Value()
	}

	// Exactly-once accounting survived the sheds, retries, and degrades.
	if v := reg.Counter(`fwd_bytes_out_total{app="burst"}`).Value(); v != burstTotal {
		t.Fatalf(`fwd_bytes_out_total{app="burst"} = %d, want %d`, v, burstTotal)
	}
	if v := reg.Counter(`fwd_bytes_out_total{app="steady"}`).Value(); v != steadyTotal {
		t.Fatalf(`fwd_bytes_out_total{app="steady"} = %d, want %d`, v, steadyTotal)
	}

	// Overload was real and was shed, not buffered.
	if rejects == 0 {
		t.Fatal("the slow ION never rejected a request: the storm did not saturate the bounded queue")
	}
	if shedBurst == 0 {
		t.Fatal("the burst app never observed a shed response")
	}
	if shedBurst+shedSteady > busyReceived {
		t.Fatalf("clients counted %d sheds but only %d busy responses were received", shedBurst+shedSteady, busyReceived)
	}
	if sent := rejects + serverSheds; busyReceived > sent {
		t.Fatalf("%d busy responses received but only %d sent (%d queue rejects + %d server sheds)", busyReceived, sent, rejects, serverSheds)
	}

	// Sheds are backpressure, not failure: with BreakerThreshold=2 a single
	// misclassification would trip a breaker, fail a chunk over, or mark a
	// node down. None of that may happen.
	if v := reg.Counter("rpc_breaker_open_total").Value(); v != 0 {
		t.Fatalf("rpc_breaker_open_total = %d, want 0 — a shed tripped the circuit breaker", v)
	}
	if v := reg.Counter("rpc_deadline_expired_total").Value(); v != 0 {
		t.Fatalf("rpc_deadline_expired_total = %d, want 0", v)
	}
	if v := reg.Counter(`fwd_failover_ops_total{app="burst"}`).Value() +
		reg.Counter(`fwd_failover_ops_total{app="steady"}`).Value(); v != 0 {
		t.Fatalf("fwd_failover_ops_total = %d, want 0 — sheds must degrade, not fail over", v)
	}
	if v := reg.Counter("health_transitions_down_total").Value(); v != 0 {
		t.Fatalf("health_transitions_down_total = %d, want 0 — slow is not dead", v)
	}
	if v := reg.Counter("arbiter_marked_down_total").Value(); v != 0 {
		t.Fatalf("arbiter_marked_down_total = %d, want 0", v)
	}
	if v := reg.Gauge("arbiter_ions_live").Value(); v != ions {
		t.Fatalf("arbiter_ions_live = %d, want %d — overload must not shrink the pool", v, ions)
	}

	// The prober read the load reports and the arbiter steered.
	if v := reg.Counter("health_transitions_overloaded_total").Value(); v == 0 {
		t.Fatal("the slow ION was never detected as overloaded")
	}
	if v := reg.Counter("arbiter_marked_overloaded_total").Value(); v == 0 {
		t.Fatal("the arbiter never steered load away from the overloaded ION")
	}

	// The polite app was never starved: generous but real p99 bound, far
	// below the 2s call timeout (the pre-backpressure failure mode would be
	// unbounded queueing behind the burst on the slow ION).
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	if p99 > time.Second {
		t.Fatalf("steady-app p99 write latency = %v, want ≤ 1s", p99)
	}
}
